// Domain example: evaluate a MaxCut QAOA circuit end to end with the
// compile-once/run-many API — one ExecutionPlan, executed with shots and
// ZZ Pauli observables first-class in ExecOptions. This is the workload
// class the paper's Table III/IV evaluate: many executions (parameter
// points, shot batches) amortizing one partitioning. Usage:
//   qaoa_energy [qubits=14] [rounds=4] [limit=10] [shots=2000]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "circuits/generators.hpp"
#include "hisvsim/engine.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 14;
  const unsigned rounds = argc > 2 ? std::atoi(argv[2]) : 4;
  const unsigned limit = argc > 3 ? std::atoi(argv[3]) : 10;
  const std::size_t shots = argc > 4 ? std::atoi(argv[4]) : 2000;

  const Circuit c = circuits::qaoa(n, rounds, /*seed=*/7);
  std::printf("%s\n", c.summary().c_str());

  // Recover the problem graph edges from the circuit's CX pattern
  // (each cost term is the CX-RZ-CX sandwich the generator emits).
  std::set<std::pair<Qubit, Qubit>> edges;
  const auto& gates = c.gates();
  for (std::size_t i = 0; i + 2 < gates.size(); ++i) {
    if (gates[i].kind == GateKind::CX && gates[i + 1].kind == GateKind::RZ &&
        gates[i + 2].kind == GateKind::CX &&
        gates[i].qubits == gates[i + 2].qubits)
      edges.insert({gates[i].qubits[0], gates[i].qubits[1]});
  }
  std::printf("problem graph: %zu edges\n", edges.size());

  // Compile once...
  Options opt;
  opt.target = Target::Hierarchical;
  opt.strategy = partition::Strategy::DagP;
  opt.limit = limit;
  const ExecutionPlan plan = Engine::compile(c, opt);
  std::printf("%zu parts, compiled in %.3f ms\n", plan.num_parts(),
              plan.compile_seconds() * 1e3);

  // ...and execute with shots and one ZZ observable per edge.
  ExecOptions x;
  x.shots = shots;
  for (const auto& [a, b] : edges) {
    sv::PauliString zz;
    zz.factors = {{a, sv::Pauli::Z}, {b, sv::Pauli::Z}};
    x.observables.push_back(std::move(zz));
  }
  const Result r = plan.execute(x);
  std::printf("executed in %.3f s (simulation %.3f s)\n", r.execute_seconds,
              r.total_seconds());

  // MaxCut expectation: C = sum_e (1 - <Z_a Z_b>) / 2.
  double cut = 0.0;
  for (double zz : r.observables) cut += 0.5 * (1.0 - zz);
  std::printf("expected cut value: %.4f of %zu edges (%.1f%%)\n", cut,
              edges.size(), 100.0 * cut / static_cast<double>(edges.size()));

  // Report the best cut among the sampled bitstrings.
  auto cut_of = [&](Index bits) {
    unsigned v = 0;
    for (const auto& [a, b] : edges)
      v += ((bits >> a) & 1u) != ((bits >> b) & 1u);
    return v;
  };
  unsigned best = 0;
  for (Index s : r.samples) best = std::max(best, cut_of(s));
  std::printf("best sampled cut over %zu shots: %u / %zu edges\n",
              r.samples.size(), best, edges.size());
  return 0;
}
