// Domain example: MaxCut QAOA grid search with one compiled plan.
//
// The parameterized instance (circuits::qaoa_instance) declares symbolic
// gamma/beta angles and exposes the problem-graph edges directly, so the
// (γ, β) landscape — the workload class the paper's Table III/IV evaluate
// — is one Engine::compile followed by a pure execute per grid point via
// ExecutionPlan::execute_sweep. The partitioner runs exactly once for the
// whole search (printed at the end from partition::partition_invocations).
// Usage:
//   qaoa_energy [qubits=14] [rounds=4] [limit=10] [grid=8]
// runs a grid x grid sweep over γ ∈ [0.1, π], β ∈ [0.1, π/2], then draws
// shots at the best point.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "circuits/generators.hpp"
#include "hisvsim/engine.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 14;
  // At least one round: the grid search below indexes gamma0/beta0.
  const unsigned rounds = argc > 2 ? std::max(std::atoi(argv[2]), 1) : 4;
  const unsigned limit = argc > 3 ? std::atoi(argv[3]) : 10;
  const unsigned grid = argc > 4 ? std::max(std::atoi(argv[4]), 1) : 8;

  const circuits::QaoaInstance inst = circuits::qaoa_instance(n, rounds, 7);
  std::printf("%s\n", inst.circuit.summary().c_str());
  std::printf("problem graph: %zu edges, %zu parameters\n",
              inst.edges.size(), inst.circuit.num_params());

  // Compile once: partitioning, layouts — everything structural.
  Options opt;
  opt.target = Target::Hierarchical;
  opt.strategy = partition::Strategy::DagP;
  opt.limit = limit;
  const std::uint64_t partitions_before = partition::partition_invocations();
  const ExecutionPlan plan = Engine::compile(inst.circuit, opt);
  std::printf("%zu parts, compiled in %.3f ms\n", plan.num_parts(),
              plan.compile_seconds() * 1e3);

  // One ZZ observable per problem edge: the MaxCut expectation is
  // C = sum_e (1 - <Z_a Z_b>) / 2.
  ExecOptions x;
  x.want_state = false;  // grid points only need the observables
  for (const auto& [a, b] : inst.edges) {
    sv::PauliString zz;
    zz.factors = {{a, sv::Pauli::Z}, {b, sv::Pauli::Z}};
    x.observables.push_back(std::move(zz));
  }

  // The (γ, β) grid, every round sharing the same point — each entry is a
  // pure execute against the one plan.
  std::vector<ParamBinding> points;
  points.reserve(static_cast<std::size_t>(grid) * grid);
  auto axis = [grid](double lo, double hi, unsigned i) {
    return grid == 1 ? lo : lo + (hi - lo) * i / (grid - 1);
  };
  for (unsigned gi = 0; gi < grid; ++gi)
    for (unsigned bi = 0; bi < grid; ++bi)
      points.push_back(inst.uniform_binding(axis(0.1, M_PI, gi),
                                            axis(0.1, M_PI / 2, bi)));

  const std::vector<Result> results = plan.execute_sweep(points, x);

  double best_cut = -1.0, best_gamma = 0.0, best_beta = 0.0;
  double wall = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    double cut = 0.0;
    for (double zz : results[i].observables) cut += 0.5 * (1.0 - zz);
    wall += results[i].execute_seconds;
    if (cut > best_cut) {
      best_cut = cut;
      best_gamma = points[i].at(inst.gammas[0]);
      best_beta = points[i].at(inst.betas[0]);
    }
  }
  std::printf("swept %zu (γ, β) points (%.3f s execute total); partitioner "
              "ran %llu time(s)\n",
              results.size(), wall,
              static_cast<unsigned long long>(
                  partition::partition_invocations() - partitions_before));
  std::printf("best expected cut %.4f of %zu edges (%.1f%%) at γ=%.3f "
              "β=%.3f\n",
              best_cut, inst.edges.size(),
              100.0 * best_cut / static_cast<double>(inst.edges.size()),
              best_gamma, best_beta);

  // Re-execute the best point with shots — still the same plan.
  ExecOptions best;
  best.bindings = inst.uniform_binding(best_gamma, best_beta);
  best.shots = 2000;
  best.want_state = false;
  const Result r = plan.execute(best);
  auto cut_of = [&inst](Index bits) {
    unsigned v = 0;
    for (const auto& [a, b] : inst.edges)
      v += ((bits >> a) & 1u) != ((bits >> b) & 1u);
    return v;
  };
  unsigned best_sampled = 0;
  for (Index s : r.samples) best_sampled = std::max(best_sampled, cut_of(s));
  std::printf("best sampled cut over %zu shots: %u / %zu edges\n",
              r.samples.size(), best_sampled, inst.edges.size());
  return 0;
}
