// Cache study: replays the exact amplitude access traces of flat vs
// hierarchical simulation through the set-associative LRU cache model —
// the trace-level view behind Table II. Usage:
//   cache_study [circuit=bv] [qubits=12] [limit=6]

#include <cstdio>
#include <cstdlib>

#include "circuits/generators.hpp"
#include "sv/cache_sim.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const std::string name = argc > 1 ? argv[1] : "bv";
  const unsigned n = argc > 2 ? std::atoi(argv[2]) : 12;
  const unsigned limit = argc > 3 ? std::atoi(argv[3]) : 6;

  const Circuit c = circuits::make_by_name(name, n);
  std::printf("%s\n", c.summary().c_str());

  // Scaled hierarchy: L3 == state size, L1 holds the inner vectors.
  sv::CacheHierarchy::Config cfg;
  cfg.l3_bytes = c.memory_bytes();
  cfg.l2_bytes = cfg.l3_bytes / 8;
  cfg.l1_bytes = std::max<Index>(dim(limit) * kAmpBytes, 1024);
  std::printf("cache: L1 %llu KiB / L2 %llu KiB / L3 %llu KiB\n",
              (unsigned long long)cfg.l1_bytes >> 10,
              (unsigned long long)cfg.l2_bytes >> 10,
              (unsigned long long)cfg.l3_bytes >> 10);

  std::printf("\n%-10s %6s %8s %8s %8s %8s\n", "run", "parts", "L1%", "L2%",
              "L3%", "DRAM%");
  {
    sv::CacheHierarchy h{cfg};
    sv::replay_flat_trace(c, h);
    std::printf("%-10s %6s %8.1f %8.1f %8.1f %8.1f\n", "flat", "-", h.pct(0),
                h.pct(1), h.pct(2), h.pct(3));
  }
  const dag::CircuitDag dag(c);
  for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                 partition::Strategy::DagP}) {
    partition::PartitionOptions opt;
    opt.limit = limit;
    opt.strategy = s;
    const auto parts = partition::make_partition(dag, opt);
    sv::CacheHierarchy h{cfg};
    sv::replay_hierarchical_trace(c, parts, h);
    std::printf("%-10s %6zu %8.1f %8.1f %8.1f %8.1f\n",
                partition::strategy_name(s).c_str(), parts.num_parts(),
                h.pct(0), h.pct(1), h.pct(2), h.pct(3));
  }
  std::printf("\nhierarchical runs serve gate traffic from L1; flat sweeps "
              "the full vector per gate.\n");
  return 0;
}
