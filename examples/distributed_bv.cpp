// Distributed demo: runs Bernstein-Vazirani on a simulated cluster and
// contrasts HiSVSIM's per-part redistribution against the IQS-style
// per-gate exchange baseline — both compiled through the same Engine,
// selected purely by Options::target. The HiSVSIM plan is executed twice
// to show that the second run re-uses the compiled exchange schedule.
// Usage:
//   distributed_bv [qubits=16] [process_qubits=3]

#include <cstdio>
#include <cstdlib>

#include "circuits/generators.hpp"
#include "hisvsim/engine.hpp"
#include "sv/simulator.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 16;
  const unsigned p = argc > 2 ? std::atoi(argv[2]) : 3;

  const Circuit c = circuits::bv(n, 0xB57AC1Eull);
  std::printf("%s over %u simulated ranks\n", c.summary().c_str(), 1u << p);

  Options hopt;
  hopt.target = Target::DistributedSerial;
  hopt.process_qubits = p;
  const ExecutionPlan hplan = Engine::compile(c, hopt);
  const Result his = hplan.execute();
  const Result again = hplan.execute();  // same plan, zero re-partitioning

  Options iopt;
  iopt.target = Target::IqsBaseline;
  iopt.process_qubits = p;
  const Result iqs = Engine::compile(c, iopt).execute();

  const auto check = sv::FlatSimulator().simulate(c);
  std::printf("correct: HiSVSIM %.2e, IQS %.2e (max amp diff vs flat); "
              "repeat run identical: %s\n",
              his.state.max_abs_diff(check), iqs.state.max_abs_diff(check),
              his.state.max_abs_diff(again.state) == 0.0 ? "yes" : "NO");

  std::printf("\n%-22s %12s %12s\n", "", "HiSVSIM", "IQS-style");
  std::printf("%-22s %12zu %12s\n", "parts / exchanges", his.parts, "-");
  std::printf("%-22s %12zu %12zu\n", "comm events", his.comm.exchanges,
              iqs.comm.exchanges);
  std::printf("%-22s %12.2f %12.2f\n", "comm volume (MiB)",
              static_cast<double>(his.comm.bytes_total) / (1 << 20),
              static_cast<double>(iqs.comm.bytes_total) / (1 << 20));
  std::printf("%-22s %12.3f %12.3f\n", "modeled comm (ms)",
              his.comm.modeled_max_seconds * 1e3,
              iqs.comm.modeled_max_seconds * 1e3);
  std::printf("%-22s %12.3f %12.3f\n", "modeled total (ms)",
              his.total_seconds() * 1e3, iqs.total_seconds() * 1e3);
  std::printf("%-22s %12.3f %12s\n", "compile, once (ms)",
              his.compile_seconds * 1e3, "-");
  if (his.total_seconds() > 0)
    std::printf("\nimprovement factor over IQS: %.2fx\n",
                iqs.total_seconds() / his.total_seconds());
  return 0;
}
