// Distributed demo: runs Bernstein-Vazirani on a simulated cluster and
// contrasts HiSVSIM's per-part redistribution against the IQS-style
// per-gate exchange baseline. Usage:
//   distributed_bv [qubits=16] [process_qubits=3]

#include <cstdio>
#include <cstdlib>

#include "circuits/generators.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "sv/simulator.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 16;
  const unsigned p = argc > 2 ? std::atoi(argv[2]) : 3;

  const Circuit c = circuits::bv(n, 0xB57AC1Eull);
  std::printf("%s over %u simulated ranks\n", c.summary().c_str(), 1u << p);

  dist::DistState his_state(n, p);
  dist::DistributedHiSvSim::Options opt;
  opt.process_qubits = p;
  const auto his = dist::DistributedHiSvSim().run(c, opt, his_state);

  dist::DistState iqs_state(n, p);
  const auto iqs = dist::IqsBaselineSimulator().run(c, iqs_state);

  const auto check = sv::FlatSimulator().simulate(c);
  std::printf("correct: HiSVSIM %.2e, IQS %.2e (max amp diff vs flat)\n",
              his_state.to_state_vector().max_abs_diff(check),
              iqs_state.to_state_vector().max_abs_diff(check));

  std::printf("\n%-22s %12s %12s\n", "", "HiSVSIM", "IQS-style");
  std::printf("%-22s %12zu %12s\n", "parts / exchanges", his.parts, "-");
  std::printf("%-22s %12zu %12zu\n", "comm events", his.comm.exchanges,
              iqs.comm.exchanges);
  std::printf("%-22s %12.2f %12.2f\n", "comm volume (MiB)",
              static_cast<double>(his.comm.bytes_total) / (1 << 20),
              static_cast<double>(iqs.comm.bytes_total) / (1 << 20));
  std::printf("%-22s %12.3f %12.3f\n", "modeled comm (ms)",
              his.comm.modeled_max_seconds * 1e3,
              iqs.comm.modeled_max_seconds * 1e3);
  std::printf("%-22s %12.3f %12.3f\n", "modeled total (ms)",
              his.total_seconds() * 1e3, iqs.total_seconds() * 1e3);
  if (his.total_seconds() > 0)
    std::printf("\nimprovement factor over IQS: %.2fx\n",
                iqs.total_seconds() / his.total_seconds());
  return 0;
}
