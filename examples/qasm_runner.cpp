// OpenQASM runner: loads a .qasm file (e.g. from QASMBench), compiles it
// with the chosen strategy, executes the plan, and prints the most
// probable measurement outcomes. Usage:
//   qasm_runner <file.qasm> [limit=12] [strategy=dagp|nat|dfs]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hisvsim/engine.hpp"
#include "qasm/parser.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: qasm_runner <file.qasm> [limit] [dagp|nat|dfs]\n");
    return 2;
  }
  qasm::ParseInfo info;
  Circuit c;
  try {
    c = qasm::parse_file(argv[1], &info);
  } catch (const Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  std::printf("%s (%zu measurements, %zu barriers skipped)\n",
              c.summary().c_str(), info.num_measure, info.num_barrier);

  Options opt;
  opt.target = Target::Hierarchical;
  opt.limit = argc > 2 ? std::atoi(argv[2]) : 12;
  if (argc > 3) {
    const std::string s = argv[3];
    opt.strategy = s == "nat"   ? partition::Strategy::Nat
                   : s == "dfs" ? partition::Strategy::Dfs
                                : partition::Strategy::DagP;
  }

  const Result r = Engine::compile(c, opt).execute();
  std::printf("%zu parts, compile %.3f s, total %.3f s (gather %.3f, "
              "apply %.3f, scatter %.3f)\n",
              r.parts, r.compile_seconds, r.total_seconds(),
              r.gather_seconds, r.apply_seconds, r.scatter_seconds);

  // Top-8 outcomes by probability.
  std::vector<std::pair<double, Index>> probs;
  for (Index i = 0; i < r.state.size(); ++i) {
    const double pr = std::norm(r.state[i]);
    if (pr > 1e-9) probs.emplace_back(pr, i);
  }
  std::sort(probs.rbegin(), probs.rend());
  std::printf("top outcomes:\n");
  for (std::size_t k = 0; k < std::min<std::size_t>(8, probs.size()); ++k) {
    std::printf("  |");
    for (unsigned q = c.num_qubits(); q-- > 0;)
      std::printf("%c", (probs[k].second >> q) & 1 ? '1' : '0');
    std::printf(">  p=%.6f\n", probs[k].first);
  }
  return 0;
}
