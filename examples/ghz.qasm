// 8-qubit GHZ state — tiny sample input for qasm_runner (and the CI
// examples smoke job). Expected outcomes: |00000000> and |11111111> with
// probability 0.5 each.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[8];
creg c[8];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
cx q[4],q[5];
cx q[5],q[6];
cx q[6],q[7];
measure q -> c;
