// Partition explorer: compares the three partitioning strategies (Nat,
// DFS, dagP) and the exact solver on any suite circuit, and dumps the
// dagP partition as Graphviz. Usage:
//   partition_explorer [circuit=bv] [qubits=10] [limit=5]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "circuits/generators.hpp"
#include "dag/circuit_dag.hpp"
#include "partition/exact.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const std::string name = argc > 1 ? argv[1] : "bv";
  const unsigned qubits = argc > 2 ? std::atoi(argv[2]) : 10;
  const unsigned limit = argc > 3 ? std::atoi(argv[3]) : 5;

  const Circuit c = circuits::make_by_name(name, qubits);
  std::printf("%s\n", c.summary().c_str());
  const dag::CircuitDag dag(c);

  partition::Partitioning dagp_parts;
  for (auto strategy : {partition::Strategy::Nat, partition::Strategy::Dfs,
                        partition::Strategy::DagP}) {
    partition::PartitionOptions opt;
    opt.limit = limit;
    opt.strategy = strategy;
    const auto parts = partition::make_partition(dag, opt);
    partition::validate(dag, parts);
    std::printf("%-5s: %zu parts in %.1f us  —  %s\n",
                partition::strategy_name(strategy).c_str(), parts.num_parts(),
                parts.partition_seconds * 1e6, parts.summary().c_str());
    if (strategy == partition::Strategy::DagP) dagp_parts = parts;
  }

  // Exact optimum (replaces the paper's ILP) when the instance is small.
  try {
    const auto exact = partition::partition_exact(dag, limit, 1u << 22);
    std::printf("exact: %zu parts (%s, %zu states)\n",
                exact.partitioning.num_parts(),
                exact.proven_optimal ? "proven optimal" : "budget-truncated",
                exact.states_explored);
  } catch (const Error& e) {
    std::printf("exact: skipped (%s)\n", e.what());
  }

  std::ofstream dot(name + "_dagp.dot");
  dot << dag.to_dot(dagp_parts.part_of);
  std::printf("wrote %s_dagp.dot (render with: dot -Tpng)\n", name.c_str());
  return 0;
}
