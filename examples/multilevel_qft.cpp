// Multi-level demo (Sec. IV / Fig. 10): compiles a QFT for the
// single-level and two-level targets and reports the execution-time
// difference the cache-sized second level buys. Usage:
//   multilevel_qft [qubits=16] [l1=12] [l2=8]

#include <cstdio>
#include <cstdlib>

#include "circuits/generators.hpp"
#include "hisvsim/engine.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 16;
  const unsigned l1 = argc > 2 ? std::atoi(argv[2]) : 12;
  const unsigned l2 = argc > 3 ? std::atoi(argv[3]) : 8;

  const Circuit c = circuits::qft(n);
  std::printf("%s\n", c.summary().c_str());

  Options single;
  single.target = Target::Hierarchical;
  single.limit = l1;
  const Result r1 = Engine::compile(c, single).execute();

  Options multi = single;
  multi.target = Target::Multilevel;
  multi.level2_limit = l2;
  const Result r2 = Engine::compile(c, multi).execute();

  std::printf("single-level: %3zu parts,            total %.3f s\n",
              r1.parts, r1.total_seconds());
  std::printf("multi-level : %3zu parts (%zu inner), total %.3f s\n",
              r2.parts, r2.inner_parts, r2.total_seconds());
  std::printf("states agree to %.2e\n", r1.state.max_abs_diff(r2.state));
  if (r2.total_seconds() > 0)
    std::printf("multi-level speedup: %.2fx\n",
                r1.total_seconds() / r2.total_seconds());
  return 0;
}
