// Multi-level demo (Sec. IV / Fig. 10): simulates a QFT with single-level
// and two-level partitioning and reports the execution-time difference the
// cache-sized second level buys. Usage:
//   multilevel_qft [qubits=16] [l1=12] [l2=8]

#include <cstdio>
#include <cstdlib>

#include "circuits/generators.hpp"
#include "hisvsim/hisvsim.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const unsigned n = argc > 1 ? std::atoi(argv[1]) : 16;
  const unsigned l1 = argc > 2 ? std::atoi(argv[2]) : 12;
  const unsigned l2 = argc > 3 ? std::atoi(argv[3]) : 8;

  const Circuit c = circuits::qft(n);
  std::printf("%s\n", c.summary().c_str());

  RunOptions single;
  single.limit = l1;
  RunReport rep1;
  const auto s1 = HiSvSim(single).simulate(c, &rep1);

  RunOptions multi = single;
  multi.level2_limit = l2;
  RunReport rep2;
  const auto s2 = HiSvSim(multi).simulate(c, &rep2);

  std::printf("single-level: %3zu parts,            total %.3f s\n",
              rep1.parts, rep1.hier.total_seconds());
  std::printf("multi-level : %3zu parts (%zu inner), total %.3f s\n",
              rep2.parts, rep2.inner_parts, rep2.hier.total_seconds());
  std::printf("states agree to %.2e\n", s1.max_abs_diff(s2));
  if (rep2.hier.total_seconds() > 0)
    std::printf("multi-level speedup: %.2fx\n",
                rep1.hier.total_seconds() / rep2.hier.total_seconds());
  return 0;
}
