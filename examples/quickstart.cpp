// Quickstart: build a circuit, partition it with dagP, simulate it
// hierarchically, and inspect the report — the five-minute tour of the
// HiSVSIM public API.

#include <cstdio>

#include "hisvsim/hisvsim.hpp"

int main() {
  using namespace hisim;

  // A 12-qubit GHZ-then-QFT circuit.
  Circuit c(12, "quickstart");
  c.add(Gate::h(0));
  for (Qubit q = 1; q < 12; ++q) c.add(Gate::cx(q - 1, q));
  for (Qubit i = 0; i < 12; ++i) {
    c.add(Gate::h(i));
    for (Qubit j = i + 1; j < 12; ++j)
      c.add(Gate::cp(j, i, 3.14159265358979 / (1 << (j - i))));
  }
  std::printf("circuit: %s\n", c.summary().c_str());

  // Simulate hierarchically with the dagP strategy and an 8-qubit
  // working-set limit (inner state vectors of 256 amplitudes).
  RunOptions opt;
  opt.strategy = partition::Strategy::DagP;
  opt.limit = 8;
  RunReport report;
  const sv::StateVector state = HiSvSim(opt).simulate(c, &report);

  std::printf("parts: %zu, partition time: %.3f ms\n", report.parts,
              report.partition_seconds * 1e3);
  std::printf("gather %.3f ms / execute %.3f ms / scatter %.3f ms\n",
              report.hier.gather_seconds * 1e3,
              report.hier.execute_seconds * 1e3,
              report.hier.scatter_seconds * 1e3);
  std::printf("outer traffic: %.1f MiB, norm: %.12f\n",
              static_cast<double>(report.hier.outer_bytes_moved) / (1 << 20),
              state.norm());

  // Sanity: compare against the flat reference simulator.
  const sv::StateVector ref = sv::FlatSimulator().simulate(c);
  std::printf("max |amp diff| vs flat reference: %.2e\n",
              state.max_abs_diff(ref));
  return state.max_abs_diff(ref) < 1e-10 ? 0 : 1;
}
