// Quickstart: build a circuit, compile it ONCE into an ExecutionPlan, and
// execute the plan several times — the five-minute tour of the HiSVSIM
// compile/execute API. Partitioning, lowering, and layout planning all
// happen in Engine::compile(); execute() only moves amplitudes.

#include <cstdio>

#include "hisvsim/engine.hpp"
#include "sv/simulator.hpp"

int main() {
  using namespace hisim;

  // A 12-qubit GHZ-then-QFT circuit.
  Circuit c(12, "quickstart");
  c.add(Gate::h(0));
  for (Qubit q = 1; q < 12; ++q) c.add(Gate::cx(q - 1, q));
  for (Qubit i = 0; i < 12; ++i) {
    c.add(Gate::h(i));
    for (Qubit j = i + 1; j < 12; ++j)
      c.add(Gate::cp(j, i, 3.14159265358979 / (1 << (j - i))));
  }
  std::printf("circuit: %s\n", c.summary().c_str());

  // Compile with the dagP strategy and an 8-qubit working-set limit
  // (inner state vectors of 256 amplitudes). The plan is immutable and
  // shareable; compile cost is paid exactly once.
  Options opt;
  opt.target = Target::Hierarchical;
  opt.strategy = partition::Strategy::DagP;
  opt.limit = 8;
  const ExecutionPlan plan = Engine::compile(c, opt);
  std::printf("compiled: %zu parts in %.3f ms (partitioning %.3f ms)\n",
              plan.num_parts(), plan.compile_seconds() * 1e3,
              plan.partition_seconds() * 1e3);

  // Execute it — once plainly, once more with measurement shots. Every
  // execution starts from |0...0> and pays zero partitioning cost.
  const Result r1 = plan.execute();
  std::printf("run 1: gather %.3f ms / apply %.3f ms / scatter %.3f ms, "
              "outer traffic %.1f MiB, norm %.12f\n",
              r1.gather_seconds * 1e3, r1.apply_seconds * 1e3,
              r1.scatter_seconds * 1e3,
              static_cast<double>(r1.outer_bytes_moved) / (1 << 20), r1.norm);

  ExecOptions shots;
  shots.shots = 1000;
  const Result r2 = plan.execute(shots);
  std::printf("run 2: %zu shots drawn, states agree to %.2e\n",
              r2.samples.size(), r1.state.max_abs_diff(r2.state));

  // Sanity: compare against the flat reference simulator.
  const sv::StateVector ref = sv::FlatSimulator().simulate(c);
  std::printf("max |amp diff| vs flat reference: %.2e\n",
              r1.state.max_abs_diff(ref));
  return r1.state.max_abs_diff(ref) < 1e-10 ? 0 : 1;
}
