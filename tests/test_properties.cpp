// Property-based sweeps: random circuits through every simulation path
// must agree with the flat reference, and every partitioner must emit
// valid acyclic partitionings for arbitrary (seeded) inputs.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "hisvsim/hisvsim.hpp"
#include "partition/exact.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"
#include "testing/random_circuits.hpp"

namespace hisim {
namespace {

using testutil::random_circuit;

class RandomCircuits : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuits, AllPathsAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 77 + 1);
  const unsigned n = 5 + static_cast<unsigned>(rng.below(4));       // 5..8
  const std::size_t gates = 20 + rng.below(60);
  const Circuit c = random_circuit(n, gates, seed);
  const sv::StateVector ref = sv::FlatSimulator().simulate(c);

  const dag::CircuitDag d(c);
  const unsigned limit = 3 + static_cast<unsigned>(rng.below(n - 3));

  for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                 partition::Strategy::DagP}) {
    partition::PartitionOptions opt;
    opt.limit = limit;
    opt.strategy = s;
    opt.seed = seed;
    const auto parts = partition::make_partition(d, opt);
    partition::validate(d, parts);
    const auto state = sv::HierarchicalSimulator().simulate(c, parts);
    EXPECT_LT(state.max_abs_diff(ref), 1e-9)
        << "seed " << seed << " " << partition::strategy_name(s) << " limit "
        << limit;
  }

  // Distributed HiSVSIM and the IQS baseline must agree with flat too.
  const unsigned p = 1 + static_cast<unsigned>(rng.below(2));
  {
    dist::DistState state(n, p);
    dist::DistributedHiSvSim::Options opt;
    opt.process_qubits = p;
    opt.part.seed = seed;
    dist::DistributedHiSvSim().run(c, opt, state);
    EXPECT_LT(state.to_state_vector().max_abs_diff(ref), 1e-9)
        << "dist seed " << seed;
  }
  {
    dist::DistState state(n, p);
    dist::IqsBaselineSimulator().run(c, state);
    EXPECT_LT(state.to_state_vector().max_abs_diff(ref), 1e-9)
        << "iqs seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCircuits,
                         ::testing::Range<std::uint64_t>(1, 21));

class RandomPartitions : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPartitions, ExactNeverWorseThanHeuristics) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  const unsigned n = 4 + static_cast<unsigned>(rng.below(3));
  const Circuit c = random_circuit(n, 10 + rng.below(15), seed + 99);
  const dag::CircuitDag d(c);
  unsigned max_arity = 1;
  for (const Gate& g : c.gates())
    max_arity = std::max(max_arity, g.arity());
  const unsigned limit =
      std::max(max_arity, 3u) + static_cast<unsigned>(rng.below(2));
  const auto exact = partition::partition_exact(d, limit, 1u << 18);
  partition::validate(d, exact.partitioning);
  for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                 partition::Strategy::DagP}) {
    partition::PartitionOptions opt;
    opt.limit = limit;
    opt.strategy = s;
    opt.seed = seed;
    const auto parts = partition::make_partition(d, opt);
    if (exact.proven_optimal) {
      EXPECT_LE(exact.partitioning.num_parts(), parts.num_parts())
          << "seed " << seed << " vs " << partition::strategy_name(s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPartitions,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Properties, NormPreservedThroughEveryPath) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Circuit c = random_circuit(6, 40, seed);
    RunOptions opt;
    opt.limit = 4;
    const auto s1 = HiSvSim(opt).simulate(c);
    EXPECT_NEAR(s1.norm(), 1.0, 1e-9);
    RunOptions opt2;
    opt2.process_qubits = 2;
    const auto s2 = HiSvSim(opt2).simulate_distributed(c);
    EXPECT_NEAR(s2.norm(), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace hisim
