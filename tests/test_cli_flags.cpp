#include "hisvsim/cli_flags.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hisim::cli {
namespace {

TEST(CliFlags, Defaults) {
  const Flags f = parse_flags({});
  EXPECT_EQ(f.qubits, 14u);
  EXPECT_EQ(f.limit, 0u);
  EXPECT_EQ(f.ranks_p, 0u);
  EXPECT_FALSE(f.json);
  EXPECT_EQ(effective_target(f), Target::Hierarchical);
}

TEST(CliFlags, ParsesNumbersAndSwitches) {
  const Flags f = parse_flags({"--qubits=20", "--limit=12", "--level2=6",
                               "--shots=100", "--json", "--exact",
                               "--dot=out.dot"});
  EXPECT_EQ(f.qubits, 20u);
  EXPECT_EQ(f.limit, 12u);
  EXPECT_EQ(f.level2, 6u);
  EXPECT_EQ(f.shots, 100u);
  EXPECT_TRUE(f.json);
  EXPECT_TRUE(f.exact);
  EXPECT_EQ(f.dot, "out.dot");
}

TEST(CliFlags, RanksPowerOfTwoMapsToProcessQubits) {
  EXPECT_EQ(parse_flags({"--ranks=1"}).ranks_p, 0u);
  EXPECT_EQ(parse_flags({"--ranks=2"}).ranks_p, 1u);
  EXPECT_EQ(parse_flags({"--ranks=4"}).ranks_p, 2u);
  EXPECT_EQ(parse_flags({"--ranks=16"}).ranks_p, 4u);
}

TEST(CliFlags, RanksRejectsNonPowerOfTwo) {
  // The old parser silently rounded 3 up to 4 ranks; it must be an error.
  for (const char* bad : {"--ranks=3", "--ranks=5", "--ranks=6",
                          "--ranks=12", "--ranks=0"})
    EXPECT_THROW(parse_flags({bad}), Error) << bad;
  try {
    parse_flags({"--ranks=5"});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos);
  }
}

TEST(CliFlags, RejectsMalformedNumbers) {
  EXPECT_THROW(parse_flags({"--qubits=abc"}), Error);
  EXPECT_THROW(parse_flags({"--ranks=4x"}), Error);
  EXPECT_THROW(parse_flags({"--shots=-2"}), Error);
  EXPECT_THROW(parse_flags({"--limit="}), Error);
  // Values that only fit after truncation are errors, not wrap-arounds
  // (2^32 + 1 would otherwise silently become qubits=1).
  EXPECT_THROW(parse_flags({"--qubits=4294967297"}), Error);
  EXPECT_THROW(parse_flags({"--limit=99999999999999999999999"}), Error);
}

TEST(CliFlags, RejectsUnknownFlagAndNames) {
  EXPECT_THROW(parse_flags({"--frobnicate=1"}), Error);
  EXPECT_THROW(parse_flags({"--strategy=greedy"}), Error);
  EXPECT_THROW(parse_flags({"--backend=mpi"}), Error);
  EXPECT_THROW(parse_flags({"--target=gpu"}), Error);
}

TEST(CliFlags, StrategyAndBackendNames) {
  EXPECT_EQ(parse_flags({"--strategy=nat"}).strategy,
            partition::Strategy::Nat);
  EXPECT_EQ(parse_flags({"--strategy=dfs"}).strategy,
            partition::Strategy::Dfs);
  EXPECT_EQ(parse_flags({"--strategy=dagp"}).strategy,
            partition::Strategy::DagP);
  EXPECT_EQ(parse_flags({"--backend=threaded"}).backend,
            dist::BackendKind::Threaded);
}

TEST(CliFlags, TargetDerivation) {
  EXPECT_EQ(effective_target(parse_flags({"--ranks=4"})),
            Target::DistributedSerial);
  EXPECT_EQ(effective_target(parse_flags({"--ranks=4", "--backend=threaded"})),
            Target::DistributedThreaded);
  EXPECT_EQ(effective_target(parse_flags({"--level2=5"})),
            Target::Multilevel);
  EXPECT_EQ(effective_target(parse_flags({"--target=flat"})), Target::Flat);
  EXPECT_EQ(effective_target(parse_flags({"--target=iqs-baseline",
                                          "--ranks=4"})),
            Target::IqsBaseline);
  // An explicit distributed target agreeing with an explicit backend is
  // fine; --level2 composes with the targets that honor it.
  EXPECT_EQ(effective_target(parse_flags({"--target=distributed-threaded",
                                          "--ranks=4",
                                          "--backend=threaded"})),
            Target::DistributedThreaded);
  EXPECT_EQ(effective_target(parse_flags({"--target=distributed-serial",
                                          "--ranks=4", "--level2=5"})),
            Target::DistributedSerial);
}

TEST(CliFlags, DistributedTargetRequiresRanks) {
  EXPECT_THROW(effective_target(parse_flags({"--target=distributed-serial"})),
               Error);
}

TEST(CliFlags, RejectsContradictoryTargetFlags) {
  // --target silently overriding another explicit flag would be the same
  // "fix it quietly" failure mode as the old --ranks rounding.
  EXPECT_THROW(
      effective_target(parse_flags(
          {"--target=distributed-serial", "--ranks=4", "--backend=threaded"})),
      Error);
  EXPECT_THROW(
      effective_target(parse_flags(
          {"--target=distributed-threaded", "--ranks=4", "--backend=serial"})),
      Error);
  EXPECT_THROW(
      effective_target(parse_flags({"--target=flat", "--level2=5"})), Error);
  EXPECT_THROW(
      effective_target(parse_flags({"--target=hierarchical", "--level2=5"})),
      Error);
  // Flags that the chosen target ignores are errors, not no-ops.
  EXPECT_THROW(
      effective_target(parse_flags({"--target=multilevel", "--ranks=8"})),
      Error);
  EXPECT_THROW(
      effective_target(parse_flags(
          {"--target=iqs-baseline", "--ranks=4", "--backend=threaded"})),
      Error);
  EXPECT_THROW(effective_target(parse_flags({"--backend=threaded"})), Error);
}

TEST(CliFlags, OptLevelParsesAndFlowsToOptions) {
  EXPECT_EQ(parse_flags({}).opt_level, 1u);
  EXPECT_EQ(parse_flags({"--opt-level=0"}).opt_level, 0u);
  EXPECT_EQ(parse_flags({"--opt-level=1"}).opt_level, 1u);
  EXPECT_EQ(engine_options(parse_flags({"--opt-level=0"})).opt_level, 0u);
  EXPECT_EQ(engine_options(parse_flags({})).opt_level, 1u);
}

TEST(CliFlags, OptLevelRejectsUnknownLevels) {
  // Unknown levels are parse errors, not something for the engine to
  // discover later — consistent with the loud-rejection flag policy.
  EXPECT_THROW(parse_flags({"--opt-level=2"}), Error);
  EXPECT_THROW(parse_flags({"--opt-level=7"}), Error);
  EXPECT_THROW(parse_flags({"--opt-level=abc"}), Error);
  EXPECT_THROW(parse_flags({"--opt-level="}), Error);
}

TEST(CliFlags, EngineOptionsRoundTrip) {
  const Options o = engine_options(
      parse_flags({"--ranks=8", "--backend=threaded", "--limit=10",
                   "--level2=4", "--strategy=dfs"}));
  EXPECT_EQ(o.target, Target::DistributedThreaded);
  EXPECT_EQ(o.process_qubits, 3u);
  EXPECT_EQ(o.limit, 10u);
  EXPECT_EQ(o.level2_limit, 4u);
  EXPECT_EQ(o.strategy, partition::Strategy::Dfs);
}

TEST(CliFlags, BindParsesBothSpellings) {
  const Flags f = parse_flags(
      {"--bind", "gamma0=0.5", "--bind=beta0=-1.25e-1"});
  ASSERT_EQ(f.bindings.size(), 2u);
  EXPECT_EQ(f.bindings.at("gamma0"), 0.5);
  EXPECT_EQ(f.bindings.at("beta0"), -0.125);
  // Subnormal underflow is a representable finite value (glibc sets
  // ERANGE for it); only real overflow/NaN are rejected.
  EXPECT_EQ(parse_flags({"--bind=g=1e-310"}).bindings.at("g"), 1e-310);
  EXPECT_THROW(parse_flags({"--bind=g=1e999"}), Error);
}

TEST(CliFlags, SweepParsesAxes) {
  const Flags f = parse_flags({"--sweep", "gamma0=0:3:4",
                               "--sweep=beta0=0.5:0.5:1"});
  ASSERT_EQ(f.sweeps.size(), 2u);
  EXPECT_EQ(f.sweeps[0].name, "gamma0");
  EXPECT_EQ(f.sweeps[0].start, 0.0);
  EXPECT_EQ(f.sweeps[0].stop, 3.0);
  EXPECT_EQ(f.sweeps[0].steps, 4u);
  EXPECT_EQ(f.sweeps[1].steps, 1u);

  const auto points = sweep_points(f);
  ASSERT_EQ(points.size(), 4u);  // 4 x 1 grid
  EXPECT_EQ(points[0].at("gamma0"), 0.0);
  EXPECT_EQ(points[1].at("gamma0"), 1.0);
  EXPECT_EQ(points[3].at("gamma0"), 3.0);
  for (const ParamBinding& p : points) EXPECT_EQ(p.at("beta0"), 0.5);
}

TEST(CliFlags, SweepPointsAreCartesianWithBinds) {
  const Flags f = parse_flags({"--sweep=a=0:1:2", "--sweep=b=0:2:3",
                               "--bind=c=9"});
  const auto points = sweep_points(f);
  ASSERT_EQ(points.size(), 6u);  // 2 x 3, last axis fastest
  EXPECT_EQ(points[0].at("a"), 0.0);
  EXPECT_EQ(points[0].at("b"), 0.0);
  EXPECT_EQ(points[1].at("b"), 1.0);
  EXPECT_EQ(points[2].at("b"), 2.0);
  EXPECT_EQ(points[3].at("a"), 1.0);
  for (const ParamBinding& p : points) EXPECT_EQ(p.at("c"), 9.0);
  // No --sweep: nothing to expand (plain single execution).
  EXPECT_TRUE(sweep_points(parse_flags({"--bind=c=9"})).empty());
}

TEST(CliFlags, RejectsMalformedAndContradictoryParams) {
  EXPECT_THROW(parse_flags({"--bind=gamma0"}), Error);          // no value
  EXPECT_THROW(parse_flags({"--bind==0.5"}), Error);            // no name
  EXPECT_THROW(parse_flags({"--bind=g=abc"}), Error);           // not a number
  EXPECT_THROW(parse_flags({"--bind=g=nan"}), Error);           // non-finite
  EXPECT_THROW(parse_flags({"--bind"}), Error);                 // dangling
  EXPECT_THROW(parse_flags({"--sweep=g=0:1"}), Error);          // no steps
  EXPECT_THROW(parse_flags({"--sweep=g=0:1:0"}), Error);        // steps=0
  EXPECT_THROW(parse_flags({"--sweep=g=0:1:1"}), Error);  // 1 step, 2 values
  // Duplicates and bind/sweep contradictions, in either flag order.
  EXPECT_THROW(parse_flags({"--bind=g=1", "--bind=g=2"}), Error);
  EXPECT_THROW(parse_flags({"--sweep=g=0:1:2", "--sweep=g=0:2:3"}), Error);
  EXPECT_THROW(parse_flags({"--bind=g=1", "--sweep=g=0:1:2"}), Error);
  EXPECT_THROW(parse_flags({"--sweep=g=0:1:2", "--bind=g=1"}), Error);
  try {
    parse_flags({"--bind=g=1", "--sweep=g=0:1:2"});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'g'"), std::string::npos);
  }
  // --shots is single-run only; silently dropping it in sweep mode would
  // be the quiet-fix failure mode this parser exists to reject.
  EXPECT_THROW(parse_flags({"--sweep=g=0:1:2", "--shots=100"}), Error);
  EXPECT_NO_THROW(parse_flags({"--bind=g=1", "--shots=100"}));
}

TEST(CliFlags, SweepGridSizeIsCapped) {
  // A typo'd steps value must fail with a clear Error, not OOM while
  // materializing the grid (overflow-safe across axes too).
  EXPECT_THROW(sweep_points(parse_flags({"--sweep=a=0:1:4294967295"})),
               Error);
  EXPECT_THROW(sweep_points(parse_flags({"--sweep=a=0:1:100000",
                                         "--sweep=b=0:1:100000"})),
               Error);
  EXPECT_EQ(sweep_points(parse_flags({"--sweep=a=0:1:1000"})).size(), 1000u);
}

TEST(CliFlags, NoiseAndTrajectoriesParse) {
  const Flags f = parse_flags({"--noise=depolarizing=0.02", "--noise",
                               "readout=0.01", "--trajectories=500",
                               "--noise-seed=99", "--observable=Z0*Z3",
                               "--observable", "X1"});
  ASSERT_EQ(f.noise.size(), 2u);
  EXPECT_EQ(f.noise[0].first, "depolarizing");
  EXPECT_EQ(f.noise[0].second, 0.02);
  EXPECT_EQ(f.noise[1].first, "readout");
  EXPECT_EQ(f.trajectories, 500u);
  EXPECT_EQ(f.noise_seed, 99u);
  ASSERT_EQ(f.observables.size(), 2u);
  EXPECT_EQ(f.observables[0], "Z0*Z3");
  EXPECT_EQ(f.observables[1], "X1");
  // The model carries every channel; its slots are reserved at compile.
  EXPECT_FALSE(noise_model(f).empty());
  EXPECT_FALSE(engine_options(f).noise.empty());
  EXPECT_TRUE(noise_model(parse_flags({})).empty());
}

TEST(CliFlags, NoiseRejectionsAreLoud) {
  // Malformed specs and unknown kinds.
  EXPECT_THROW(parse_flags({"--noise=depolarizing"}), Error);  // no value
  EXPECT_THROW(parse_flags({"--noise==0.1"}), Error);          // no kind
  EXPECT_THROW(
      parse_flags({"--noise=cosmic=0.1", "--trajectories=10"}), Error);
  // Noise and trajectories must come as a pair, in either order.
  EXPECT_THROW(parse_flags({"--noise=depolarizing=0.1"}), Error);
  EXPECT_THROW(parse_flags({"--trajectories=10"}), Error);
  EXPECT_THROW(parse_flags({"--trajectories=0"}), Error);
  // Trajectories are incompatible with sweep grids.
  EXPECT_THROW(parse_flags({"--noise=bitflip=0.1", "--trajectories=5",
                            "--sweep=g=0:1:3"}),
               Error);
  // A repeated kind would silently double the channel strength.
  EXPECT_THROW(parse_flags({"--noise=bitflip=0.1", "--noise=bitflip=0.1",
                            "--trajectories=5"}),
               Error);
  EXPECT_THROW(parse_flags({"--noise=readout=0.1", "--noise=readout=0.2",
                            "--trajectories=5"}),
               Error);
  EXPECT_NO_THROW(parse_flags({"--noise=bitflip=0.1",
                               "--noise=phaseflip=0.1",
                               "--trajectories=5"}));
  // A probability outside [0, 1] parses but is rejected when the model
  // is built (before any compile), naming the offending value.
  const Flags bad =
      parse_flags({"--noise=depolarizing=1.5", "--trajectories=10"});
  try {
    (void)noise_model(bad);
    FAIL() << "expected invalid-probability error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("outside [0, 1]"),
              std::string::npos);
  }
  EXPECT_THROW(noise_model(parse_flags(
                   {"--noise=damping=-0.5", "--trajectories=2"})),
               Error);
  EXPECT_THROW(noise_model(parse_flags(
                   {"--noise=readout=1.1", "--trajectories=2"})),
               Error);
}

TEST(CliFlags, TargetNameRoundTrip) {
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline})
    EXPECT_EQ(parse_target(target_name(t)), t);
}

}  // namespace
}  // namespace hisim::cli
