// Edge cases and failure injection across modules: tiny registers, empty
// circuits, adversarial partitions, malformed layouts, and boundary qubit
// positions — the inputs that break naive index arithmetic.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "hisvsim/hisvsim.hpp"
#include "qasm/parser.hpp"
#include "partition/exact.hpp"
#include "sv/hierarchical.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace hisim {
namespace {

TEST(EdgeCase, OneQubitCircuitAllPaths) {
  Circuit c(1);
  c.add(Gate::h(0));
  c.add(Gate::t(0));
  c.add(Gate::h(0));
  const auto ref = sv::FlatSimulator().simulate(c);
  RunOptions opt;
  opt.limit = 1;
  EXPECT_LT(HiSvSim(opt).simulate(c).max_abs_diff(ref), 1e-12);
}

TEST(EdgeCase, EmptyCircuitSimulates) {
  const Circuit c(4);
  RunOptions opt;
  opt.limit = 2;
  const auto s = HiSvSim(opt).simulate(c);
  EXPECT_NEAR(std::abs(s[0] - 1.0), 0.0, 1e-15);
}

TEST(EdgeCase, EmptyCircuitDistributed) {
  const Circuit c(5);
  RunOptions opt;
  opt.process_qubits = 2;
  const auto s = HiSvSim(opt).simulate_distributed(c);
  EXPECT_NEAR(std::abs(s[0] - 1.0), 0.0, 1e-15);
}

TEST(EdgeCase, GateOnHighestQubit) {
  // Index arithmetic on the top bit (sign-extension traps).
  for (unsigned n : {2u, 8u, 16u}) {
    Circuit c(n);
    c.add(Gate::h(n - 1));
    c.add(Gate::cx(n - 1, 0));
    const auto s = sv::FlatSimulator().simulate(c);
    EXPECT_NEAR(s.prob_one(n - 1), 0.5, 1e-10) << n;
    EXPECT_NEAR(s.prob_one(0), 0.5, 1e-10) << n;
  }
}

TEST(EdgeCase, PartHoldingEveryQubit) {
  const Circuit c = circuits::qft(6);
  const dag::CircuitDag d(c);
  const auto parts = partition::partition_nat(d, 6);
  ASSERT_EQ(parts.num_parts(), 1u);
  // Inner state vector == outer: gather degenerates to a copy.
  sv::StateVector state(6);
  sv::HierarchicalStats stats;
  sv::run_part(c, parts.parts[0].gates, parts.parts[0].qubits, state, stats);
  EXPECT_LT(state.max_abs_diff(sv::FlatSimulator().simulate(c)), 1e-10);
}

TEST(EdgeCase, SingleQubitParts) {
  // limit 1: every gate is single-qubit -> per-gate parts are legal.
  Circuit c(4);
  for (Qubit q = 0; q < 4; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q < 4; ++q) c.add(Gate::rz(q, 0.3 * (q + 1)));
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = 1;
  for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                 partition::Strategy::DagP}) {
    opt.strategy = s;
    const auto parts = partition::make_partition(d, opt);
    partition::validate(d, parts);
    sv::StateVector state(4);
    sv::HierarchicalSimulator().run(c, parts, state);
    EXPECT_LT(state.max_abs_diff(sv::FlatSimulator().simulate(c)), 1e-10);
  }
}

TEST(EdgeCase, TwoLocalQubitsExtreme) {
  // Extreme distribution: l = 2 (every rank holds 4 amplitudes); every CX
  // still fits a part exactly.
  Circuit c(4);
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  c.add(Gate::cx(1, 2));
  c.add(Gate::cx(2, 3));
  dist::DistState state(4, 2);
  dist::DistributedHiSvSim::Options opt;
  opt.process_qubits = 2;
  dist::DistributedHiSvSim().run(c, opt, state);
  EXPECT_LT(state.to_state_vector().max_abs_diff(
                sv::FlatSimulator().simulate(c)),
            1e-10);
}

TEST(EdgeCase, OneLocalQubitWithTwoQubitGatesRejected) {
  // l = 1 cannot hold a CX part; the runner must fail loudly, not wedge.
  Circuit c(4);
  c.add(Gate::cx(0, 1));
  dist::DistState state(4, 3);
  dist::DistributedHiSvSim::Options opt;
  opt.process_qubits = 3;
  EXPECT_THROW(dist::DistributedHiSvSim().run(c, opt, state), Error);
}

TEST(EdgeCase, IqsAllGlobalGates) {
  // Every gate targets a process qubit: maximal exchange pressure.
  Circuit c(6);
  c.add(Gate::h(4));
  c.add(Gate::h(5));
  c.add(Gate::cx(4, 5));
  c.add(Gate::x(5));
  dist::DistState state(6, 2);
  const auto rep = dist::IqsBaselineSimulator().run(c, state);
  EXPECT_LT(state.to_state_vector().max_abs_diff(
                sv::FlatSimulator().simulate(c)),
            1e-10);
  EXPECT_GE(rep.comm.exchanges, 3u);
}

TEST(EdgeCase, IqsBothGlobalSwap) {
  Circuit c(6);
  c.add(Gate::h(4));
  c.add(Gate::swap(4, 5));
  dist::DistState state(6, 2);
  dist::IqsBaselineSimulator().run(c, state);
  const auto flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.to_state_vector().max_abs_diff(flat), 1e-10);
}

TEST(EdgeCase, IqsGenericGlobalGate) {
  // RXX across the local/global boundary exercises the fallback path.
  Circuit c(6);
  c.add(Gate::h(0));
  c.add(Gate::rxx(0, 5, 0.9));
  dist::DistState state(6, 2);
  dist::IqsBaselineSimulator().run(c, state);
  EXPECT_LT(state.to_state_vector().max_abs_diff(
                sv::FlatSimulator().simulate(c)),
            1e-10);
}

TEST(EdgeCase, ExactSolverLimitEqualsMaxArity) {
  Circuit c(5);
  c.add(Gate::ccx(0, 1, 2));
  c.add(Gate::ccx(2, 3, 4));
  c.add(Gate::ccx(0, 3, 4));
  const dag::CircuitDag d(c);
  const auto r = partition::partition_exact(d, 3);
  EXPECT_TRUE(r.proven_optimal);
  partition::validate(d, r.partitioning);
  EXPECT_EQ(r.partitioning.num_parts(), 3u);  // no two CCXs share 3 qubits
}

TEST(EdgeCase, ValidateRejectsCyclicHandCraft) {
  Circuit c(3);
  c.add(Gate::cx(0, 1));  // g0
  c.add(Gate::cx(1, 2));  // g1
  c.add(Gate::cx(0, 1));  // g2
  const dag::CircuitDag d(c);
  partition::Partitioning p;
  p.limit = 2;
  p.parts.resize(2);
  p.parts[0].gates = {0, 2};
  p.parts[0].qubits = {0, 1};
  p.parts[1].gates = {1};
  p.parts[1].qubits = {1, 2};
  p.part_of = {0, 1, 0};
  EXPECT_THROW(partition::validate(d, p), Error);
}

TEST(EdgeCase, HierarchicalWithPrePreparedState) {
  // run() must act on the provided state, not reset it.
  Circuit prep(5), body(5);
  prep.add(Gate::x(4));
  body.add(Gate::cx(4, 0));
  sv::StateVector state(5);
  sv::FlatSimulator().run(prep, state);
  const dag::CircuitDag d(body);
  const auto parts = partition::partition_nat(d, 2);
  sv::HierarchicalSimulator().run(body, parts, state);
  EXPECT_NEAR(state.prob_one(0), 1.0, 1e-12);
  EXPECT_NEAR(state.prob_one(4), 1.0, 1e-12);
}

TEST(EdgeCase, DeepCircuitManyParts) {
  // Hundreds of parts: alternating disjoint pairs defeat merging.
  Circuit c(8);
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const Qubit a = static_cast<Qubit>(rng.below(8));
    Qubit b = static_cast<Qubit>(rng.below(8));
    while (b == a) b = static_cast<Qubit>(rng.below(8));
    c.add(Gate::cp(a, b, rng.uniform(-1, 1)));
    c.add(Gate::h(a));
  }
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = 3;
  const auto parts = partition::make_partition(d, opt);
  partition::validate(d, parts);
  sv::StateVector state(8);
  sv::HierarchicalSimulator().run(c, parts, state);
  EXPECT_LT(state.max_abs_diff(sv::FlatSimulator().simulate(c)), 1e-9);
}

TEST(EdgeCase, StateVectorTooLargeRejected) {
  EXPECT_THROW(sv::StateVector(40), Error);
}

TEST(EdgeCase, QasmEmptyProgram) {
  const Circuit c = qasm::parse("OPENQASM 2.0;\nqreg q[3];\n");
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.num_gates(), 0u);
}

}  // namespace
}  // namespace hisim
