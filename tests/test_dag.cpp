#include "dag/circuit_dag.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "common/rng.hpp"
#include "testing/random_circuits.hpp"

namespace hisim::dag {
namespace {

Circuit ghz3() {
  Circuit c(3);
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  c.add(Gate::cx(1, 2));
  return c;
}

TEST(CircuitDag, NodeLayout) {
  const Circuit c = ghz3();
  const CircuitDag d(c);
  EXPECT_EQ(d.num_nodes(), 3u + 3u + 3u);
  EXPECT_EQ(d.kind(d.entry_node(0)), NodeKind::Entry);
  EXPECT_EQ(d.kind(d.gate_node(0)), NodeKind::Gate);
  EXPECT_EQ(d.kind(d.exit_node(2)), NodeKind::Exit);
  EXPECT_EQ(d.gate_index(d.gate_node(2)), 2u);
  EXPECT_EQ(d.qubit_of(d.exit_node(1)), 1u);
}

TEST(CircuitDag, EntryAndExitDegrees) {
  const Circuit c = ghz3();
  const CircuitDag d(c);
  for (Qubit q = 0; q < 3; ++q) {
    EXPECT_EQ(d.preds(d.entry_node(q)).size(), 0u);
    EXPECT_EQ(d.succs(d.entry_node(q)).size(), 1u);
    EXPECT_EQ(d.succs(d.exit_node(q)).size(), 0u);
    EXPECT_EQ(d.preds(d.exit_node(q)).size(), 1u);
  }
}

TEST(CircuitDag, GateInOutDegreesEqualArity) {
  const Circuit c = circuits::qft(5);
  const CircuitDag d(c);
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    const NodeId v = d.gate_node(i);
    EXPECT_EQ(d.preds(v).size(), c.gate(i).arity());
    EXPECT_EQ(d.succs(v).size(), c.gate(i).arity());
  }
}

TEST(CircuitDag, EdgesTraceQubits) {
  const Circuit c = ghz3();
  const CircuitDag d(c);
  // entry(0) -> h(gate0) on q0; gate0 -> gate1 on q0; entry(1) -> gate1.
  const auto s0 = d.succs(d.entry_node(0));
  ASSERT_EQ(s0.size(), 1u);
  EXPECT_EQ(s0[0].to, d.gate_node(0));
  EXPECT_EQ(s0[0].qubit, 0u);
  bool found = false;
  for (const Edge& e : d.succs(d.gate_node(0)))
    if (e.to == d.gate_node(1) && e.qubit == 0) found = true;
  EXPECT_TRUE(found);
}

TEST(CircuitDag, NaturalOrderIsTopological) {
  const Circuit c = circuits::qaoa(8, 2, 3);
  const CircuitDag d(c);
  EXPECT_TRUE(d.is_topological_gate_order(d.natural_order()));
}

TEST(CircuitDag, RandomCircuitsBuildConsistentDags) {
  // A circuit's natural gate order is topological by construction, and
  // the DAG's node count is gates + entry/exit pairs — over the shared
  // random generator's whole alphabet (ccx/cswap included).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Circuit c = testutil::random_circuit(6, 40, seed);
    const CircuitDag d(c);
    EXPECT_EQ(d.num_nodes(), c.num_gates() + 2u * 6u) << "seed " << seed;
    EXPECT_TRUE(d.is_topological_gate_order(d.natural_order()))
        << "seed " << seed;
  }
}

TEST(CircuitDag, RandomDfsOrdersAreTopological) {
  const Circuit c = circuits::qft(6);
  const CircuitDag d(c);
  Rng rng(99);
  for (int t = 0; t < 10; ++t)
    EXPECT_TRUE(d.is_topological_gate_order(d.random_dfs_order(rng)));
}

TEST(CircuitDag, RandomKahnOrdersAreTopological) {
  const Circuit c = circuits::grover(6, 1);
  const CircuitDag d(c);
  Rng rng(7);
  for (int t = 0; t < 10; ++t)
    EXPECT_TRUE(d.is_topological_gate_order(d.random_kahn_order(rng)));
}

TEST(CircuitDag, NonTopologicalOrderRejected) {
  const Circuit c = ghz3();
  const CircuitDag d(c);
  std::vector<NodeId> bad = {d.gate_node(1), d.gate_node(0), d.gate_node(2)};
  EXPECT_FALSE(d.is_topological_gate_order(bad));
  std::vector<NodeId> dup = {d.gate_node(0), d.gate_node(0), d.gate_node(2)};
  EXPECT_FALSE(d.is_topological_gate_order(dup));
}

TEST(PartGraph, AcyclicForSegments) {
  const Circuit c = circuits::ising(6, 2, 1);
  const CircuitDag d(c);
  // Assign first half to part 0, second half to part 1 (natural order).
  std::vector<int> part_of(c.num_gates());
  for (std::size_t i = 0; i < c.num_gates(); ++i)
    part_of[i] = i < c.num_gates() / 2 ? 0 : 1;
  const PartGraph pg = build_part_graph(d, part_of, 2);
  EXPECT_TRUE(pg.is_acyclic());
  const auto order = pg.topological_order();
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
}

TEST(PartGraph, DetectsCycle) {
  // Interleave gates of a dependent chain between two parts -> cycle.
  Circuit c(2);
  c.add(Gate::h(0));      // part 0
  c.add(Gate::cx(0, 1));  // part 1
  c.add(Gate::h(0));      // part 0 again -> 0 -> 1 -> 0 cycle
  const CircuitDag d(c);
  std::vector<int> part_of = {0, 1, 0};
  const PartGraph pg = build_part_graph(d, part_of, 2);
  EXPECT_FALSE(pg.is_acyclic());
}

TEST(PartGraph, Reachability) {
  PartGraph pg;
  pg.num_parts = 4;
  pg.succs = {{1}, {2}, {}, {2}};
  pg.preds = {{}, {0}, {1, 3}, {}};
  const auto reach = pg.reachability();
  EXPECT_TRUE(reach[0][1]);
  EXPECT_TRUE(reach[0][2]);
  EXPECT_FALSE(reach[0][3]);
  EXPECT_TRUE(reach[3][2]);
  EXPECT_FALSE(reach[2][0]);
}

TEST(CircuitDag, DotExportContainsNodes) {
  const Circuit c = ghz3();
  const CircuitDag d(c);
  const std::string dot = d.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("cx"), std::string::npos);
  EXPECT_NE(dot.find("exit q2"), std::string::npos);
}

}  // namespace
}  // namespace hisim::dag
