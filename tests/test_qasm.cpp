#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "sv/simulator.hpp"

namespace hisim::qasm {
namespace {

TEST(Lexer, BasicTokens) {
  const auto toks = tokenize("h q[0]; // comment\ncx q[0],q[1];");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokKind::Identifier);
  EXPECT_EQ(toks[0].text, "h");
  EXPECT_EQ(toks[2].kind, TokKind::LBracket);
  EXPECT_EQ(toks[3].kind, TokKind::Integer);
  EXPECT_EQ(toks.back().kind, TokKind::End);
}

TEST(Lexer, Numbers) {
  const auto toks = tokenize("3.14 42 1e-3 2.5e2");
  EXPECT_EQ(toks[0].kind, TokKind::Real);
  EXPECT_DOUBLE_EQ(toks[0].value, 3.14);
  EXPECT_EQ(toks[1].kind, TokKind::Integer);
  EXPECT_DOUBLE_EQ(toks[1].value, 42.0);
  EXPECT_EQ(toks[2].kind, TokKind::Real);
  EXPECT_DOUBLE_EQ(toks[2].value, 1e-3);
  EXPECT_DOUBLE_EQ(toks[3].value, 250.0);
}

TEST(Lexer, StringAndArrow) {
  const auto toks = tokenize("include \"qelib1.inc\"; measure q -> c;");
  EXPECT_EQ(toks[1].kind, TokKind::String);
  EXPECT_EQ(toks[1].text, "qelib1.inc");
  bool has_arrow = false;
  for (const auto& t : toks) has_arrow |= t.kind == TokKind::Arrow;
  EXPECT_TRUE(has_arrow);
}

TEST(Lexer, RejectsUnknownChar) {
  EXPECT_THROW(tokenize("h q[0]; @"), Error);
}

TEST(Parser, MinimalProgram) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/2) q[2];
)");
  EXPECT_EQ(c.num_qubits(), 3u);
  ASSERT_EQ(c.num_gates(), 3u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
  EXPECT_EQ(c.gate(2).kind, GateKind::RZ);
  EXPECT_NEAR(c.gate(2).params[0].value(), M_PI / 2, 1e-12);
}

TEST(Parser, ExpressionEvaluation) {
  const Circuit c = parse(
      "qreg q[1]; rz(-pi/4 + 2*0.5) q[0]; ry(cos(0)) q[0]; rx(2^3) q[0];");
  EXPECT_NEAR(c.gate(0).params[0].value(), -M_PI / 4 + 1.0, 1e-12);
  EXPECT_NEAR(c.gate(1).params[0].value(), 1.0, 1e-12);
  EXPECT_NEAR(c.gate(2).params[0].value(), 8.0, 1e-12);
}

TEST(Parser, RegisterBroadcast) {
  const Circuit c = parse("qreg q[4]; h q;");
  EXPECT_EQ(c.num_gates(), 4u);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(c.gate(i).qubits[0], i);
}

TEST(Parser, TwoRegistersFlatten) {
  const Circuit c = parse("qreg a[2]; qreg b[2]; cx a[1],b[0];");
  EXPECT_EQ(c.num_qubits(), 4u);
  EXPECT_EQ(c.gate(0).qubits[0], 1u);
  EXPECT_EQ(c.gate(0).qubits[1], 2u);
}

TEST(Parser, CustomGateExpansion) {
  const Circuit c = parse(R"(
qreg q[2];
gate bell a,b { h a; cx a,b; }
bell q[0],q[1];
)");
  ASSERT_EQ(c.num_gates(), 2u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
}

TEST(Parser, ParameterizedCustomGate) {
  const Circuit c = parse(R"(
qreg q[1];
gate rot(t) a { rz(t/2) a; rz(t/2) a; }
rot(pi) q[0];
)");
  ASSERT_EQ(c.num_gates(), 2u);
  EXPECT_NEAR(c.gate(0).params[0].value(), M_PI / 2, 1e-12);
}

TEST(Parser, NestedCustomGates) {
  const Circuit c = parse(R"(
qreg q[2];
gate inner a { h a; }
gate outer a,b { inner a; cx a,b; inner b; }
outer q[0],q[1];
)");
  EXPECT_EQ(c.num_gates(), 3u);
}

TEST(Parser, MeasureAndBarrierCounted) {
  ParseInfo info;
  const Circuit c = parse(
      "qreg q[2]; creg c[2]; h q[0]; barrier q; measure q -> c;", &info);
  EXPECT_EQ(c.num_gates(), 1u);
  EXPECT_EQ(info.num_barrier, 1u);
  EXPECT_EQ(info.num_measure, 1u);
}

TEST(Parser, ErrorsAreInformative) {
  EXPECT_THROW(parse("qreg q[2]; h q[5];"), Error);
  EXPECT_THROW(parse("qreg q[2]; frobnicate q[0];"), Error);
  EXPECT_THROW(parse("qreg q[2]; rz() q[0];"), Error);
  EXPECT_THROW(parse("qreg q[2]; reset q[0];"), Error);
}

TEST(Writer, RoundTripSimulatesIdentically) {
  Circuit c(4, "rt");
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  c.add(Gate::rz(2, 0.7));
  c.add(Gate::cp(1, 2, 0.3));
  c.add(Gate::ccx(0, 1, 3));
  c.add(Gate::swap(2, 3));
  c.add(Gate::rzz(0, 3, -0.4));
  c.add(Gate::u3(1, 0.1, 0.2, 0.3));
  const Circuit back = parse(write(c));
  EXPECT_EQ(back.num_qubits(), 4u);
  sv::FlatSimulator sim;
  EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(back)), 1e-9);
}

TEST(Writer, McxLoweredOnWrite) {
  Circuit c(5, "mcx");
  for (Qubit q = 0; q < 5; ++q) c.add(Gate::h(q));
  c.add(Gate::mcx({0, 1, 2, 3, 4}));
  const Circuit back = parse(write(c));
  sv::FlatSimulator sim;
  EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(back)), 1e-8);
}

}  // namespace
}  // namespace hisim::qasm
