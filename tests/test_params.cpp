// Symbolic parameters and bind-at-execute sweeps: the ParamExpr algebra,
// gate/circuit materialization, binding validation, fusion parity, and the
// headline contract — one compiled plan, bit-identical to per-point
// recompilation, across every target. The concurrency tests run under TSan
// in CI (see .github/workflows/ci.yml).

#include "circuit/param.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/decompose.hpp"
#include "circuit/fusion.hpp"
#include "circuit/gate.hpp"
#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "hisvsim/engine.hpp"
#include "partition/partition.hpp"
#include "sv/simulator.hpp"

namespace hisim {
namespace {

void expect_bit_identical(const sv::StateVector& a, const sv::StateVector& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (Index i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].real(), b[i].real()) << what << " amp " << i;
    ASSERT_EQ(a[i].imag(), b[i].imag()) << what << " amp " << i;
  }
}

/// One Options instance per target, sized for 9-qubit circuits.
std::vector<Options> all_target_options() {
  std::vector<Options> out;
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline}) {
    Options o;
    o.target = t;
    o.limit = 5;
    if (t == Target::Multilevel) o.level2_limit = 3;
    if (target_is_distributed(t)) o.process_qubits = 2;
    out.push_back(o);
  }
  return out;
}

TEST(ParamExpr, AffineAlgebra) {
  const ParamExpr c = 0.5;
  EXPECT_FALSE(c.symbolic);
  EXPECT_EQ(c.value(), 0.5);

  Circuit circ(2);
  const Param g = circ.param("gamma");
  const ParamExpr e = 2.0 * g + 0.25;
  EXPECT_TRUE(e.symbolic);
  EXPECT_EQ(e.coeff, 2.0);
  EXPECT_EQ(e.offset, 0.25);
  const std::vector<double> vals{1.5};
  EXPECT_EQ(e.value_at(vals), 2.0 * 1.5 + 0.25);

  EXPECT_EQ((g * 3.0).coeff, 3.0);
  EXPECT_EQ((ParamExpr(g) / 2.0).coeff, 0.5);
  EXPECT_EQ((-ParamExpr(g)).coeff, -1.0);
  EXPECT_EQ((1.0 - ParamExpr(g)).offset, 1.0);
  EXPECT_EQ((1.0 - ParamExpr(g)).coeff, -1.0);
  EXPECT_EQ((g + 1.0).offset, 1.0);

  EXPECT_EQ(ParamExpr(g).to_string(), "gamma");
  EXPECT_EQ((2.0 * g).to_string(), "2*gamma");
  EXPECT_EQ((-ParamExpr(g)).to_string(), "-gamma");
  EXPECT_EQ((2.0 * g + 0.25).to_string(), "2*gamma+0.25");
  EXPECT_EQ(ParamExpr(0.5).to_string(), "0.5");

  EXPECT_THROW(e.value(), Error);  // symbolic without a binding
  try {
    e.value_at({});
    FAIL() << "expected unbound-parameter error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("gamma"), std::string::npos);
  }
}

TEST(ParamExpr, GateMaterialization) {
  Circuit c(2);
  const Param th = c.param("theta");
  const Gate sym = Gate::rz(0, th);
  EXPECT_TRUE(sym.is_parametric());
  EXPECT_TRUE(sym.is_diagonal());  // kind-based, no binding needed
  EXPECT_THROW(sym.matrix(), Error);
  EXPECT_THROW(sym.target_matrix(), Error);

  const std::vector<double> vals{0.7};
  EXPECT_EQ(sym.matrix(vals).max_abs_diff(Gate::rz(0, 0.7).matrix()), 0.0);
  EXPECT_EQ(sym.target_matrix(vals).max_abs_diff(
                Gate::rz(0, 0.7).target_matrix()),
            0.0);

  const Gate zz = Gate::rzz(0, 1, 2.0 * th);
  EXPECT_TRUE(zz.is_parametric());
  EXPECT_EQ(zz.matrix(vals).max_abs_diff(Gate::rzz(0, 1, 1.4).matrix()), 0.0);
  EXPECT_FALSE(Gate::rz(0, 0.3).is_parametric());
  EXPECT_EQ(sym.to_string(), "rz(theta) q[0]");
}

TEST(ParamExpr, CircuitRegistryAndBound) {
  Circuit c(2, "pc");
  const Param a = c.param("a");
  const Param b = c.param("b");
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(c.param("a").id, 0u);  // lookup, not re-registration
  EXPECT_EQ(c.num_params(), 2u);
  EXPECT_TRUE(c.is_parameterized());
  EXPECT_THROW(c.param(""), Error);

  c.add(Gate::rx(0, a));
  c.add(Gate::ry(1, 2.0 * b + 0.1));
  const Circuit bound = c.bound(ParamBinding{{"a", 0.3}, {"b", 0.5}});
  EXPECT_FALSE(bound.is_parameterized());
  EXPECT_EQ(bound.gate(0), Gate::rx(0, 0.3));
  EXPECT_EQ(bound.gate(1), Gate::ry(1, 2.0 * 0.5 + 0.1));

  // Unknown, unbound, and non-finite bindings all throw with the name.
  try {
    c.bound(ParamBinding{{"a", 0.3}, {"b", 0.5}, {"zz", 1.0}});
    FAIL() << "expected unknown-parameter error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown parameter 'zz'"),
              std::string::npos);
  }
  try {
    c.bound(ParamBinding{{"a", 0.3}});
    FAIL() << "expected unbound-parameter error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unbound parameter 'b'"),
              std::string::npos);
  }
  EXPECT_THROW(c.bound(ParamBinding{{"a", std::nan("")}, {"b", 0.5}}), Error);
}

TEST(ParamExpr, AppendMergesRegistriesByName) {
  Circuit lhs(2);
  const Param x = lhs.param("x");
  lhs.add(Gate::rx(0, x));

  Circuit rhs(2);
  const Param y = rhs.param("y");   // id 0 on rhs
  const Param x2 = rhs.param("x");  // id 1 on rhs, same name as lhs's id 0
  rhs.add(Gate::ry(1, y));
  rhs.add(Gate::rz(0, x2));

  lhs.append(rhs);
  ASSERT_EQ(lhs.num_params(), 2u);  // x, y — unified by name
  const Circuit bound = lhs.bound(ParamBinding{{"x", 0.2}, {"y", 0.9}});
  EXPECT_EQ(bound.gate(1), Gate::ry(1, 0.9));
  EXPECT_EQ(bound.gate(2), Gate::rz(0, 0.2));
}

TEST(ParamExpr, AddRejectsForeignParamHandles) {
  Circuit a(2);
  const Param x = a.param("x");
  Circuit b(2);
  b.param("y");  // id 0 on b, like x on a — must not silently alias
  EXPECT_THROW(b.add(Gate::rx(0, x)), Error);
  Circuit empty(2);  // no registry at all
  EXPECT_THROW(empty.add(Gate::rx(0, x)), Error);
  a.add(Gate::rx(0, x));  // the owning circuit accepts it
}

TEST(ParamExpr, FusionArityPolicyAppliesToSymbolicGates) {
  Circuit c(2);
  const Param th = c.param("theta");
  c.add(Gate::rzz(0, 1, th));
  // keep_wide_gates=false promises no gate wider than max_qubits in the
  // output — a symbolic wide gate must trip it like a concrete one.
  EXPECT_THROW(
      fuse(c, FusionOptions{.max_qubits = 1, .keep_wide_gates = false}),
      Error);
  const Circuit fused =
      fuse(c, FusionOptions{.max_qubits = 1, .keep_wide_gates = true});
  EXPECT_EQ(fused.num_gates(), 1u);  // passed through unchanged
  EXPECT_TRUE(fused.gate(0).is_parametric());
}

TEST(ParamExpr, SymbolicZyzLoweringThrowsClearly) {
  Circuit c(2);
  const Param th = c.param("theta");
  c.add(Gate::crx(0, 1, th));
  // The ZYZ angles are nonlinear in theta; lowering must say so instead
  // of surfacing a generic unbound-parameter error from deep inside.
  try {
    lower_to_1q_cx(c);
    FAIL() << "expected symbolic-lowering error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bind the parameter"),
              std::string::npos)
        << e.what();
  }
  // Bound first, it lowers fine.
  const Circuit low = lower_to_1q_cx(c.bound(ParamBinding{{"theta", 0.6}}));
  const sv::StateVector direct =
      sv::FlatSimulator().simulate(c.bound(ParamBinding{{"theta", 0.6}}));
  EXPECT_LT(sv::FlatSimulator().simulate(low).max_abs_diff(direct), 1e-12);
}

TEST(ParamExpr, LoweringKeepsExpressionsSymbolic) {
  Circuit c(2, "sym");
  const Param lam = c.param("lam");
  c.add(Gate::cp(0, 1, lam));
  c.add(Gate::crz(0, 1, lam));
  c.add(Gate::rzz(0, 1, 2.0 * lam));

  const Circuit low = lower_to_1q_cx(c);
  EXPECT_TRUE(low.is_parameterized());

  const ParamBinding b{{"lam", 0.77}};
  const sv::StateVector direct = sv::FlatSimulator().simulate(c.bound(b));
  const sv::StateVector lowered =
      sv::FlatSimulator().simulate(low.bound(b));
  EXPECT_LT(direct.max_abs_diff(lowered), 1e-12);
}

TEST(ParamExpr, FusionParityOnMixedCircuit) {
  Circuit c(3, "mixed");
  const Param th = c.param("theta");
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  c.add(Gate::rz(1, th));       // symbolic: breaks the fusion run
  c.add(Gate::h(2));
  c.add(Gate::cx(1, 2));
  c.add(Gate::rx(2, 2.0 * th));
  c.add(Gate::t(0));
  c.add(Gate::cx(0, 1));

  const Circuit fused = fuse(c, FusionOptions{.max_qubits = 2});
  EXPECT_TRUE(fused.is_parameterized());
  EXPECT_LT(fused.num_gates(), c.num_gates());  // concrete runs fused
  std::size_t symbolic = 0;
  for (const Gate& g : fused.gates()) symbolic += g.is_parametric();
  EXPECT_EQ(symbolic, 2u);  // both symbolic gates passed through intact

  for (double v : {0.0, 0.4, 2.9}) {
    const ParamBinding b{{"theta", v}};
    const sv::StateVector ref = sv::FlatSimulator().simulate(c.bound(b));
    const sv::StateVector fb = sv::FlatSimulator().simulate(fused.bound(b));
    EXPECT_LT(ref.max_abs_diff(fb), 1e-12) << "theta=" << v;
  }
}

TEST(ParamExpr, QaoaInstanceMatchesLegacyQaoa) {
  const auto inst = circuits::qaoa_instance(9, 3, 7);
  EXPECT_EQ(inst.circuit.num_params(), 6u);  // gamma0..2, beta0..2
  EXPECT_FALSE(inst.edges.empty());
  ASSERT_EQ(inst.gammas.size(), 3u);
  ASSERT_EQ(inst.betas.size(), 3u);

  // Binding the instance at the legacy angle draw reproduces qaoa()
  // exactly — the concrete generator is the instance, bound.
  Rng rng(7ull ^ 0xA0A0ull);
  ParamBinding b;
  for (unsigned r = 0; r < 3; ++r) {
    b[inst.gammas[r]] = rng.uniform(0.1, M_PI);
    b[inst.betas[r]] = rng.uniform(0.1, M_PI / 2);
  }
  EXPECT_TRUE(inst.circuit.bound(b) == circuits::qaoa(9, 3, 7));
}

// The headline bind-at-execute contract on every target: executing a
// parameterized plan under a binding is bit-identical to compiling that
// binding's concrete circuit from scratch.
TEST(ParamSweep, BindingMatchesRecompileOnAllTargets) {
  const auto inst = circuits::qaoa_instance(9, 2, 11);
  for (const Options& o : all_target_options()) {
    const ExecutionPlan plan = Engine::compile(inst.circuit, o);
    EXPECT_TRUE(plan.parameterized()) << target_name(o.target);
    EXPECT_EQ(plan.param_names().size(), 4u) << target_name(o.target);
    const std::uint64_t compiled = partition::partition_invocations();
    for (double point : {0.3, 1.1, 2.4}) {
      ExecOptions x;
      x.bindings = inst.uniform_binding(point, point / 2);
      const Result bound_run = plan.execute(x);
      const Result recompiled =
          Engine::compile(inst.circuit.bound(x.bindings), o).execute();
      expect_bit_identical(bound_run.state, recompiled.state,
                           std::string(target_name(o.target)) + " point " +
                               std::to_string(point));
      EXPECT_EQ(bound_run.params, x.bindings);
    }
    // The recompile arm re-partitioned; the plan's executes never do.
    // (Delta from the recompiles is expected — what matters is that the
    // plan executes added nothing, checked via a second pure execute.)
    const std::uint64_t before = partition::partition_invocations();
    ExecOptions x;
    x.bindings = inst.uniform_binding(0.5, 0.25);
    (void)plan.execute(x);
    EXPECT_EQ(partition::partition_invocations(), before)
        << "execute() re-partitioned on " << target_name(o.target);
    (void)compiled;
  }
}

// Acceptance: a 4-round QAOA sweep over >= 50 points compiles exactly
// once, and every point is bit-identical to per-point recompilation — on
// a single-node and a distributed target.
TEST(ParamSweep, FiftyPointSweepCompilesOnce) {
  const auto inst = circuits::qaoa_instance(8, 4, 7);
  std::vector<ParamBinding> points;
  for (unsigned i = 0; i < 50; ++i)
    points.push_back(inst.uniform_binding(0.05 + 0.06 * i, 0.02 + 0.03 * i));

  std::vector<Options> targets(2);
  targets[0].target = Target::Hierarchical;
  targets[0].limit = 5;
  targets[1].target = Target::DistributedSerial;
  targets[1].process_qubits = 2;

  for (const Options& o : targets) {
    const std::uint64_t before_compile = partition::partition_invocations();
    const ExecutionPlan plan = Engine::compile(inst.circuit, o);
    const std::uint64_t after_compile = partition::partition_invocations();
    EXPECT_GT(after_compile, before_compile) << target_name(o.target);

    ExecOptions x;
    const std::vector<Result> swept = plan.execute_sweep(points, x);
    ASSERT_EQ(swept.size(), points.size());
    // The whole 50-point sweep ran without a single further partitioner
    // invocation: the plan really was compiled exactly once.
    EXPECT_EQ(partition::partition_invocations(), after_compile)
        << "sweep re-partitioned on " << target_name(o.target);

    for (std::size_t i = 0; i < points.size(); ++i) {
      const Result ref =
          Engine::compile(inst.circuit.bound(points[i]), o).execute();
      expect_bit_identical(swept[i].state, ref.state,
                           std::string(target_name(o.target)) + " point " +
                               std::to_string(i));
    }
  }
}

TEST(ParamSweep, ExecuteSweepMatchesSerialExecutes) {
  const auto inst = circuits::qaoa_instance(9, 2, 5);
  Options o;
  o.target = Target::Hierarchical;
  o.limit = 5;
  const ExecutionPlan plan = Engine::compile(inst.circuit, o);

  std::vector<ParamBinding> points;
  for (unsigned i = 0; i < 8; ++i)
    points.push_back(inst.uniform_binding(0.1 * (i + 1), 0.07 * (i + 1)));

  ExecOptions x;
  x.shots = 16;
  const std::vector<Result> swept = plan.execute_sweep(points, x);
  ASSERT_EQ(swept.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ExecOptions serial = x;
    serial.bindings = points[i];
    const Result ref = plan.execute(serial);
    expect_bit_identical(swept[i].state, ref.state,
                         "point " + std::to_string(i));
    EXPECT_EQ(swept[i].samples, ref.samples) << i;
    EXPECT_EQ(swept[i].params, points[i]) << i;
  }
}

// One shared plan, several threads each running a whole sweep — the
// concurrency contract execute_sweep inherits from execute(). TSan'd in CI.
TEST(ParamSweep, ConcurrentSweepsShareOnePlan) {
  const auto inst = circuits::qaoa_instance(8, 2, 3);
  for (Target t : {Target::Hierarchical, Target::DistributedThreaded}) {
    Options o;
    o.target = t;
    o.limit = 4;
    if (target_is_distributed(t)) o.process_qubits = 2;
    const ExecutionPlan plan = Engine::compile(inst.circuit, o);

    std::vector<ParamBinding> points;
    for (unsigned i = 0; i < 6; ++i)
      points.push_back(inst.uniform_binding(0.2 + 0.1 * i, 0.1 + 0.05 * i));
    const std::vector<Result> ref = plan.execute_sweep(points);

    constexpr int kThreads = 3;
    std::vector<std::vector<Result>> all(kThreads);
    {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&plan, &points, &all, i] {
          all[i] = plan.execute_sweep(points);
        });
      for (std::thread& th : threads) th.join();
    }
    for (int i = 0; i < kThreads; ++i) {
      ASSERT_EQ(all[i].size(), points.size()) << target_name(t);
      for (std::size_t p = 0; p < points.size(); ++p)
        expect_bit_identical(all[i][p].state, ref[p].state,
                             std::string(target_name(t)) + " thread " +
                                 std::to_string(i));
    }
  }
}

TEST(ParamSweep, ValidatesBindingsAtExecute) {
  const auto inst = circuits::qaoa_instance(8, 1, 3);
  Options o;
  o.limit = 4;
  const ExecutionPlan plan = Engine::compile(inst.circuit, o);

  // Unbound: no bindings at all on a parameterized plan.
  try {
    plan.execute();
    FAIL() << "expected unbound-parameter error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unbound parameter"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("gamma0"), std::string::npos);
  }
  // Extra name on top of a complete binding.
  {
    ExecOptions x;
    x.bindings = inst.uniform_binding(0.1, 0.2);
    x.bindings["not_a_param"] = 1.0;
    EXPECT_THROW(plan.execute(x), Error);
  }
  // Non-finite value.
  {
    ExecOptions x;
    x.bindings = inst.uniform_binding(0.1, 0.2);
    x.bindings["gamma0"] = std::numeric_limits<double>::infinity();
    EXPECT_THROW(plan.execute(x), Error);
  }
  // Bindings against a concrete plan are rejected too.
  {
    const ExecutionPlan concrete =
        Engine::compile(circuits::bv(8), Options{});
    EXPECT_FALSE(concrete.parameterized());
    ExecOptions x;
    x.bindings["gamma0"] = 0.5;
    EXPECT_THROW(concrete.execute(x), Error);
  }
  // execute_sweep validates every point up front, naming the point.
  {
    std::vector<ParamBinding> points{inst.uniform_binding(0.1, 0.2),
                                     ParamBinding{{"gamma0", 0.3}}};
    try {
      plan.execute_sweep(points);
      FAIL() << "expected sweep-point error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("sweep point 1"),
                std::string::npos);
    }
  }
  // Non-binding ExecOptions errors surface as a clean Error from
  // execute_sweep too (never std::terminate on a pool worker).
  {
    const sv::StateVector wrong_size(5);
    ExecOptions x;
    x.bindings = inst.uniform_binding(0.1, 0.2);  // unused per-point copy
    x.initial_state = &wrong_size;
    std::vector<ParamBinding> points{inst.uniform_binding(0.1, 0.2),
                                     inst.uniform_binding(0.3, 0.4)};
    EXPECT_THROW(plan.execute_sweep(points, x), Error);
  }
}

TEST(ParamSweep, ResultJsonCarriesBoundParams) {
  const auto inst = circuits::qaoa_instance(8, 1, 3);
  Options o;
  o.limit = 4;
  ExecOptions x;
  x.bindings = inst.uniform_binding(0.25, 0.125);
  const std::string j = Engine::compile(inst.circuit, o).execute(x).to_json();
  EXPECT_NE(j.find("\"params\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"gamma0\": 0.25"), std::string::npos) << j;
  EXPECT_NE(j.find("\"beta0\": 0.125"), std::string::npos) << j;
}

}  // namespace
}  // namespace hisim
