#include "hisvsim/hisvsim.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"

namespace hisim {
namespace {

TEST(Facade, DefaultSimulateMatchesFlat) {
  const Circuit c = circuits::qft(8);
  RunReport rep;
  const auto state = HiSvSim().simulate(c, &rep);
  const auto flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.max_abs_diff(flat), 1e-10);
  EXPECT_FALSE(rep.distributed);
  EXPECT_GE(rep.parts, 1u);
}

TEST(Facade, ExplicitLimitCreatesParts) {
  RunOptions opt;
  opt.limit = 4;
  const Circuit c = circuits::qft(8);
  RunReport rep;
  HiSvSim(opt).simulate(c, &rep);
  EXPECT_GT(rep.parts, 1u);
}

TEST(Facade, PlanExposesPartitioning) {
  RunOptions opt;
  opt.limit = 4;
  opt.strategy = partition::Strategy::Nat;
  const Circuit c = circuits::bv(9);
  const auto plan = HiSvSim(opt).plan(c);
  EXPECT_LE(plan.max_working_set(), 4u);
  const dag::CircuitDag d(c);
  partition::validate(d, plan);
}

TEST(Facade, MultiLevelMatchesFlat) {
  RunOptions opt;
  opt.limit = 5;
  opt.level2_limit = 3;
  const Circuit c = circuits::qaoa(8, 2, 4);
  RunReport rep;
  const auto state = HiSvSim(opt).simulate(c, &rep);
  const auto flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.max_abs_diff(flat), 1e-10);
  EXPECT_GE(rep.inner_parts, rep.parts);
}

TEST(Facade, DistributedMatchesFlat) {
  RunOptions opt;
  opt.process_qubits = 2;
  const Circuit c = circuits::ising(8, 2, 9);
  RunReport rep;
  const auto state = HiSvSim(opt).simulate_distributed(c, &rep);
  const auto flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.max_abs_diff(flat), 1e-10);
  EXPECT_TRUE(rep.distributed);
  EXPECT_EQ(rep.dist.ranks, 4u);
}

TEST(Facade, DistributedRequiresProcessQubits) {
  const Circuit c = circuits::bv(6);
  EXPECT_THROW(HiSvSim().simulate_distributed(c), Error);
}

TEST(Facade, StrategiesAllAgree) {
  const Circuit c = circuits::cc(9);
  sv::StateVector ref = sv::FlatSimulator().simulate(c);
  for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                 partition::Strategy::DagP}) {
    RunOptions opt;
    opt.strategy = s;
    opt.limit = 5;
    const auto state = HiSvSim(opt).simulate(c);
    EXPECT_LT(state.max_abs_diff(ref), 1e-10) << partition::strategy_name(s);
  }
}

}  // namespace
}  // namespace hisim
