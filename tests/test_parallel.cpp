#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"

namespace hisim::parallel {
namespace {

TEST(Parallel, CoversRangeExactlyOnce) {
  for (unsigned workers : {1u, 2u, 4u}) {
    set_num_threads(workers);
    std::vector<std::atomic<int>> hits(10000);
    for_range(0, hits.size(),
              [&](Index lo, Index hi) {
                for (Index i = lo; i < hi; ++i) hits[i].fetch_add(1);
              },
              /*grain=*/64);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  set_num_threads(0);
}

TEST(Parallel, EmptyAndTinyRanges) {
  set_num_threads(4);
  bool called = false;
  for_range(5, 5, [&](Index, Index) { called = true; });
  EXPECT_FALSE(called);
  std::atomic<Index> sum{0};
  for_range(0, 3, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3u);
  set_num_threads(0);
}

TEST(Parallel, SumMatchesSerial) {
  set_num_threads(3);
  const Index n = 1 << 16;
  std::atomic<long long> total{0};
  for_range(0, n,
            [&](Index lo, Index hi) {
              long long local = 0;
              for (Index i = lo; i < hi; ++i) local += static_cast<long long>(i);
              total += local;
            },
            1 << 8);
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
  set_num_threads(0);
}

TEST(Parallel, ReentrantAcrossWidthChanges) {
  // Switching widths rebuilds the pool; results must stay exact.
  for (unsigned w : {2u, 1u, 4u, 2u}) {
    set_num_threads(w);
    std::atomic<Index> count{0};
    for_range(0, 1000, [&](Index lo, Index hi) { count += hi - lo; }, 16);
    EXPECT_EQ(count.load(), 1000u);
  }
  set_num_threads(0);
}

TEST(Parallel, NestedForRangeRunsInlineAndCoversOnce) {
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  for_range(
      0, 64,
      [&](Index olo, Index ohi) {
        for (Index o = olo; o < ohi; ++o) {
          // Nested call from inside a region: must run inline (no pool
          // re-entry, no deadlock) and still cover its range exactly.
          for_range(
              0, 64,
              [&, o](Index ilo, Index ihi) {
                for (Index i = ilo; i < ihi; ++i) hits[o * 64 + i].fetch_add(1);
              },
              /*grain=*/4);
        }
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  set_num_threads(0);
}

TEST(Parallel, InlineScopeForcesSingleChunk) {
  set_num_threads(4);
  std::atomic<int> calls{0};
  {
    inline_scope guard;
    // Large range, tiny grain: without the scope this would be chunked
    // across the pool; under it, fn sees the whole range in one call.
    for_range(0, 1 << 16, [&](Index lo, Index hi) {
      calls.fetch_add(1);
      EXPECT_EQ(lo, 0u);
      EXPECT_EQ(hi, Index{1} << 16);
    }, /*grain=*/1);
  }
  EXPECT_EQ(calls.load(), 1);
  set_num_threads(0);
}

TEST(Parallel, LatchCountsDownAndReleases) {
  latch gate(3);
  EXPECT_FALSE(gate.try_wait());
  gate.count_down();
  gate.count_down(2);
  EXPECT_TRUE(gate.try_wait());
  gate.wait();  // must not block once the count hit zero

  // Producer threads release a waiting consumer.
  latch ready(4);
  std::atomic<int> produced{0};
  task_group group;
  for (int i = 0; i < 4; ++i)
    group.spawn([&] {
      produced.fetch_add(1);
      ready.count_down();
    });
  ready.wait();
  EXPECT_EQ(produced.load(), 4);
  group.join();
}

TEST(Parallel, TaskGroupJoinsAllAndIsIdempotent) {
  std::atomic<int> ran{0};
  task_group group;
  for (int i = 0; i < 8; ++i) group.spawn([&] { ran.fetch_add(1); });
  EXPECT_EQ(group.size(), 8u);
  group.join();
  EXPECT_EQ(ran.load(), 8);
  group.join();  // second join is a no-op
  EXPECT_EQ(group.size(), 0u);
}

TEST(Parallel, TaskGroupThreadsRunUnderInlineScope) {
  set_num_threads(4);
  std::atomic<int> calls{0};
  task_group group;
  group.spawn([&] {
    for_range(0, 1 << 16, [&](Index, Index) { calls.fetch_add(1); },
              /*grain=*/1);
  });
  group.join();
  // Spawned threads never fan out over the shared pool.
  EXPECT_EQ(calls.load(), 1);
  set_num_threads(0);
}

TEST(Parallel, ConcurrentTopLevelRegionsSerialize) {
  set_num_threads(3);
  // Two threads issuing pool regions at once: both must complete with
  // exact coverage (regions are serialized internally).
  std::vector<std::atomic<int>> hits(2 * 4096);
  task_group issuers;
  for (int t = 0; t < 2; ++t)
    issuers.spawn([&, t] {
      // inline_scope from task_group makes this run inline; exercise the
      // pool from plain threads instead.
      std::thread raw([&, t] {
        for_range(
            Index{static_cast<unsigned>(t)} * 4096,
            Index{static_cast<unsigned>(t) + 1} * 4096,
            [&](Index lo, Index hi) {
              for (Index i = lo; i < hi; ++i) hits[i].fetch_add(1);
            },
            /*grain=*/64);
      });
      raw.join();
    });
  issuers.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  set_num_threads(0);
}

TEST(Rng, DeterministicStreams) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 10; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  std::vector<int> hist(8, 0);
  for (int i = 0; i < 8000; ++i) ++hist[rng.below(8)];
  for (int h : hist) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

TEST(Timers, StopwatchAccumulates) {
  Stopwatch sw;
  sw.start();
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  sw.stop();
  const double first = sw.seconds();
  EXPECT_GT(first, 0.0);
  sw.start();
  for (int i = 0; i < 100000; ++i) x = x + i;
  sw.stop();
  EXPECT_GT(sw.seconds(), first);
  sw.clear();
  EXPECT_EQ(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace hisim::parallel
