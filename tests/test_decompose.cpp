#include "circuit/decompose.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

namespace hisim {
namespace {

constexpr cplx kI{0.0, 1.0};

Matrix rz(double t) {
  return Matrix::from_rows(2, 2,
                           {std::exp(-kI * (t / 2)), 0.0, 0.0,
                            std::exp(kI * (t / 2))});
}
Matrix ry(double t) {
  return Matrix::from_rows(
      2, 2, {std::cos(t / 2), -std::sin(t / 2), std::sin(t / 2),
             std::cos(t / 2)});
}

void expect_zyz_reconstructs(const Matrix& u) {
  const ZyzAngles a = zyz_decompose(u);
  const Matrix rec =
      (rz(a.beta) * ry(a.gamma) * rz(a.delta)) * std::exp(kI * a.alpha);
  EXPECT_LT(rec.max_abs_diff(u), 1e-10);
}

TEST(Zyz, ReconstructsStandardGates) {
  expect_zyz_reconstructs(Gate::h(0).matrix());
  expect_zyz_reconstructs(Gate::x(0).matrix());
  expect_zyz_reconstructs(Gate::y(0).matrix());
  expect_zyz_reconstructs(Gate::z(0).matrix());
  expect_zyz_reconstructs(Gate::t(0).matrix());
  expect_zyz_reconstructs(Gate::sx(0).matrix());
  expect_zyz_reconstructs(Gate::u3(0, 0.7, -0.3, 2.1).matrix());
  expect_zyz_reconstructs(Gate::rx(0, 1.3).matrix());
}

TEST(SqrtUnitary, SquaresBack) {
  for (const Gate& g :
       {Gate::x(0), Gate::y(0), Gate::h(0), Gate::t(0), Gate::sx(0),
        Gate::u3(0, 0.4, 1.1, -0.2), Gate::rz(0, 0.9)}) {
    const Matrix u = g.matrix();
    const Matrix v = sqrt_unitary_2x2(u);
    EXPECT_LT((v * v).max_abs_diff(u), 1e-9) << g.to_string();
    EXPECT_TRUE(v.is_unitary(1e-9)) << g.to_string();
  }
}

/// Simulation-level equivalence of a gate and its decomposition.
void expect_equivalent(const Gate& g, const std::vector<Gate>& dec,
                       unsigned n) {
  Circuit orig(n), low(n);
  // Prepare a non-trivial state first so equivalence is not vacuous.
  for (Qubit q = 0; q < n; ++q) orig.add(Gate::u3(q, 0.3 + q, 0.1 * q, -0.2));
  for (Qubit q = 0; q < n; ++q) low.add(Gate::u3(q, 0.3 + q, 0.1 * q, -0.2));
  orig.add(g);
  for (const Gate& e : dec) low.add(e);
  sv::FlatSimulator sim;
  const auto s1 = sim.simulate(orig);
  const auto s2 = sim.simulate(low);
  EXPECT_LT(s1.max_abs_diff(s2), 1e-9) << g.to_string();
}

TEST(Decompose, CcxToCliffordT) {
  const Gate g = Gate::ccx(0, 1, 2);
  expect_equivalent(g, decompose_gate(g, 2), 3);
}

TEST(Decompose, CswapToTwoQubit) {
  const Gate g = Gate::cswap(0, 1, 2);
  const auto dec = decompose_gate(g, 2);
  for (const Gate& e : dec) EXPECT_LE(e.arity(), 2u);
  expect_equivalent(g, dec, 3);
}

TEST(Decompose, McxThreeControls) {
  const Gate g = Gate::mcx({0, 1, 2, 3});
  const auto dec = decompose_gate(g, 2);
  for (const Gate& e : dec) EXPECT_LE(e.arity(), 2u);
  expect_equivalent(g, dec, 4);
}

TEST(Decompose, McxFourControlsKeepCcx) {
  const Gate g = Gate::mcx({0, 1, 2, 3, 4});
  const auto dec = decompose_gate(g, 3);
  for (const Gate& e : dec) EXPECT_LE(e.arity(), 3u);
  expect_equivalent(g, dec, 5);
}

TEST(Decompose, WithinLimitIsIdentity) {
  const Gate g = Gate::cx(0, 1);
  const auto dec = decompose_gate(g, 2);
  ASSERT_EQ(dec.size(), 1u);
  EXPECT_TRUE(dec[0] == g);
}

TEST(LowerTo1qCx, AllTwoQubitKinds) {
  Circuit c(3);
  c.add(Gate::cz(0, 1));
  c.add(Gate::cy(1, 2));
  c.add(Gate::ch(0, 2));
  c.add(Gate::swap(0, 2));
  c.add(Gate::rzz(0, 1, 0.7));
  c.add(Gate::rxx(1, 2, -0.4));
  c.add(Gate::cp(0, 1, 1.1));
  c.add(Gate::crz(1, 2, 0.6));
  c.add(Gate::crx(0, 1, 0.9));
  c.add(Gate::cry(1, 2, -1.3));
  c.add(Gate::cu3(0, 2, 0.5, 0.2, -0.1));
  c.add(Gate::ccx(0, 1, 2));
  const Circuit low = lower_to_1q_cx(c);
  for (const Gate& g : low.gates())
    EXPECT_TRUE(g.arity() == 1 || g.kind == GateKind::CX) << g.to_string();
  sv::FlatSimulator sim;
  EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(low)), 1e-9);
}

TEST(Lower, ThrowsOnUndecomposableWideUnitary) {
  const Gate g = Gate::unitary({0, 1, 2}, Matrix::identity(8));
  EXPECT_THROW(decompose_gate(g, 2), Error);
}

TEST(Lower, CircuitLowerRespectsMaxArity) {
  Circuit c(5);
  c.add(Gate::mcx({0, 1, 2, 3, 4}));
  c.add(Gate::ccx(1, 2, 3));
  const Circuit low = lower(c, 3);
  for (const Gate& g : low.gates()) EXPECT_LE(g.arity(), 3u);
  sv::FlatSimulator sim;
  Circuit pre(5), pre2(5);
  for (Qubit q = 0; q < 5; ++q) pre.add(Gate::h(q)), pre2.add(Gate::h(q));
  pre.append(c);
  pre2.append(low);
  EXPECT_LT(sim.simulate(pre).max_abs_diff(sim.simulate(pre2)), 1e-9);
}

}  // namespace
}  // namespace hisim
