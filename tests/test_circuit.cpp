#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hisim {
namespace {

TEST(Circuit, AddValidatesQubitRange) {
  Circuit c(3);
  c.add(Gate::h(2));
  EXPECT_THROW(c.add(Gate::h(3)), Error);
  EXPECT_THROW(c.add(Gate::cx(0, 5)), Error);
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(Circuit, DepthLinearChain) {
  Circuit c(2);
  for (int i = 0; i < 5; ++i) c.add(Gate::h(0));
  EXPECT_EQ(c.depth(), 5u);
  c.add(Gate::h(1));  // parallel with the chain
  EXPECT_EQ(c.depth(), 5u);
}

TEST(Circuit, DepthTwoQubitSync) {
  Circuit c(3);
  c.add(Gate::h(0));      // level 1
  c.add(Gate::h(1));      // level 1
  c.add(Gate::cx(0, 1));  // level 2
  c.add(Gate::h(2));      // level 1
  c.add(Gate::cx(1, 2));  // level 3
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, Histogram) {
  Circuit c(3);
  c.add(Gate::h(0));
  c.add(Gate::h(1));
  c.add(Gate::cx(0, 1));
  const auto hist = c.gate_histogram();
  EXPECT_EQ(hist.at("h"), 2u);
  EXPECT_EQ(hist.at("cx"), 1u);
}

TEST(Circuit, UsedQubits) {
  Circuit c(10);
  c.add(Gate::cx(2, 7));
  c.add(Gate::h(2));
  EXPECT_EQ(c.used_qubits(), 2u);
}

TEST(Circuit, MemoryBytes) {
  Circuit c(10);
  EXPECT_EQ(c.memory_bytes(), (Index{1} << 10) * 16);
}

TEST(Circuit, AppendChecksWidth) {
  Circuit a(3), b(2);
  b.add(Gate::h(1));
  a.append(b);
  EXPECT_EQ(a.num_gates(), 1u);
  Circuit wide(5);
  wide.add(Gate::h(4));
  EXPECT_THROW(b.append(wide), Error);
}

TEST(Circuit, EqualityIgnoresName) {
  Circuit a(2, "a"), b(2, "b");
  a.add(Gate::cx(0, 1));
  b.add(Gate::cx(0, 1));
  EXPECT_TRUE(a == b);
  b.add(Gate::h(0));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace hisim
