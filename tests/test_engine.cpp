#include "hisvsim/engine.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "dag/circuit_dag.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "partition/multilevel.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"

namespace hisim {
namespace {

void expect_bit_identical(const sv::StateVector& a, const sv::StateVector& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (Index i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].real(), b[i].real()) << what << " amp " << i;
    ASSERT_EQ(a[i].imag(), b[i].imag()) << what << " amp " << i;
  }
}

/// One Options instance per target, sized for a 10-qubit circuit.
std::vector<Options> all_target_options() {
  std::vector<Options> out;
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline}) {
    Options o;
    o.target = t;
    o.limit = 5;
    if (t == Target::Multilevel) o.level2_limit = 3;
    if (target_is_distributed(t)) o.process_qubits = 2;
    out.push_back(o);
  }
  return out;
}

// The headline contract: one plan, compiled once, executes any number of
// times with bit-identical states — on every target — and stays within
// numerical tolerance of the flat reference.
TEST(Engine, CompileOnceExecuteManyBitIdentical) {
  const Circuit c = circuits::qft(10);
  const sv::StateVector flat = sv::FlatSimulator().simulate(c);
  for (const Options& o : all_target_options()) {
    const ExecutionPlan plan = Engine::compile(c, o);
    const Result r1 = plan.execute();
    const Result r2 = plan.execute();
    const Result r3 = plan.execute();
    expect_bit_identical(r1.state, r2.state, target_name(o.target));
    expect_bit_identical(r1.state, r3.state, target_name(o.target));
    EXPECT_LT(r1.state.max_abs_diff(flat), 1e-10) << target_name(o.target);
    EXPECT_NEAR(r1.norm, 1.0, 1e-10) << target_name(o.target);
  }
}

// No-regression against the pre-Engine paths: the plan must reproduce the
// legacy simulators bit for bit (same operation sequence, same kernels).
TEST(Engine, MatchesLegacyPathsBitForBit) {
  const Circuit c = circuits::ising(9, 2, 11);
  const unsigned n = c.num_qubits();

  {  // Flat vs FlatSimulator.
    Options o;
    o.target = Target::Flat;
    expect_bit_identical(Engine::compile(c, o).execute().state,
                         sv::FlatSimulator().simulate(c), "flat");
  }
  {  // Hierarchical vs make_partition + HierarchicalSimulator.
    Options o;
    o.target = Target::Hierarchical;
    o.limit = 5;
    const dag::CircuitDag dag(c);
    partition::PartitionOptions po;
    po.limit = 5;
    const auto parts = partition::make_partition(dag, po);
    sv::StateVector legacy(n);
    sv::HierarchicalSimulator().run(c, parts, legacy);
    expect_bit_identical(Engine::compile(c, o).execute().state, legacy,
                         "hierarchical");
  }
  {  // Multilevel vs partition_two_level + HierarchicalSimulator.
    Options o;
    o.target = Target::Multilevel;
    o.limit = 5;
    o.level2_limit = 3;
    const dag::CircuitDag dag(c);
    partition::PartitionOptions po;
    po.limit = 5;
    const auto two = partition::partition_two_level(dag, po, 3);
    sv::StateVector legacy(n);
    sv::HierarchicalSimulator().run(c, two, legacy);
    expect_bit_identical(Engine::compile(c, o).execute().state, legacy,
                         "multilevel");
  }
  for (Target t : {Target::DistributedSerial, Target::DistributedThreaded}) {
    // Distributed vs DistributedHiSvSim::run on a fresh DistState.
    Options o;
    o.target = t;
    o.process_qubits = 2;
    dist::DistState state(n, 2);
    dist::DistOptions dopt;
    dopt.process_qubits = 2;
    dopt.backend = t == Target::DistributedThreaded
                       ? &dist::threaded_backend()
                       : &dist::serial_backend();
    dist::DistributedHiSvSim().run(c, dopt, state);
    expect_bit_identical(Engine::compile(c, o).execute().state,
                         state.to_state_vector(), target_name(t));
  }
  {  // IQS baseline vs IqsBaselineSimulator.
    Options o;
    o.target = Target::IqsBaseline;
    o.process_qubits = 2;
    dist::DistState state(n, 2);
    dist::IqsBaselineSimulator().run(c, state);
    expect_bit_identical(Engine::compile(c, o).execute().state,
                         state.to_state_vector(), "iqs-baseline");
  }
}

// Partition/compile work happens at compile time only: execute() never
// calls the partitioner again, and the compile-side numbers in Result are
// the plan's constants.
TEST(Engine, PartitionWorkOnlyAtCompile) {
  const Circuit c = circuits::qaoa(9, 2, 4);
  for (const Options& o : all_target_options()) {
    const std::uint64_t before = partition::partition_invocations();
    const ExecutionPlan plan = Engine::compile(c, o);
    const std::uint64_t after_compile = partition::partition_invocations();
    if (o.target != Target::Flat && o.target != Target::IqsBaseline) {
      EXPECT_GT(after_compile, before) << target_name(o.target);
    }

    const Result r1 = plan.execute();
    const Result r2 = plan.execute();
    EXPECT_EQ(partition::partition_invocations(), after_compile)
        << "execute() re-partitioned on " << target_name(o.target);

    EXPECT_EQ(r1.partition_seconds, plan.partition_seconds());
    EXPECT_EQ(r2.partition_seconds, plan.partition_seconds());
    EXPECT_EQ(r1.compile_seconds, plan.compile_seconds());
    EXPECT_EQ(r1.parts, plan.num_parts());
    EXPECT_EQ(r1.inner_parts, plan.num_inner_parts());
  }
}

// One shared plan, many threads: Engine's thread-safety contract. Runs
// under TSan in CI (see .github/workflows/ci.yml).
TEST(Engine, SharedPlanExecutesConcurrently) {
  const Circuit c = circuits::qft(9);
  for (Target t : {Target::Hierarchical, Target::DistributedSerial,
                   Target::DistributedThreaded}) {
    Options o;
    o.target = t;
    o.limit = 5;
    if (target_is_distributed(t)) o.process_qubits = 2;
    const ExecutionPlan plan = Engine::compile(c, o);
    const Result ref = plan.execute();

    constexpr int kThreads = 4;
    std::vector<Result> results(kThreads);
    {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&plan, &results, i] {
          ExecOptions x;
          x.shots = 16;  // exercise the sampling path concurrently too
          results[i] = plan.execute(x);
        });
      for (std::thread& th : threads) th.join();
    }
    for (int i = 0; i < kThreads; ++i) {
      expect_bit_identical(results[i].state, ref.state, target_name(t));
      EXPECT_EQ(results[i].samples, results[0].samples) << target_name(t);
    }
  }
}

TEST(Engine, ExecutesFromCallerSuppliedInitialState) {
  const Circuit prep = circuits::cat_state(8);
  const Circuit c = circuits::qft(8);
  const sv::StateVector start = sv::FlatSimulator().simulate(prep);

  sv::StateVector expected = start;
  sv::FlatSimulator().run(c, expected);

  for (const Options& base : all_target_options()) {
    Options o = base;
    const ExecutionPlan plan = Engine::compile(c, o);
    ExecOptions x;
    x.initial_state = &start;
    const Result r = plan.execute(x);
    EXPECT_LT(r.state.max_abs_diff(expected), 1e-10) << target_name(o.target);
    // The input state is untouched: plans never mutate caller data.
    EXPECT_LT(start.max_abs_diff(sv::FlatSimulator().simulate(prep)), 1e-15);
  }

  const sv::StateVector wrong_size(5);
  ExecOptions bad;
  bad.initial_state = &wrong_size;
  EXPECT_THROW(Engine::compile(c, Options{}).execute(bad), Error);
}

TEST(Engine, ShotsAndObservablesFirstClass) {
  const Circuit c = circuits::cat_state(8);
  const ExecutionPlan plan = Engine::compile(c, Options{});

  ExecOptions x;
  x.shots = 200;
  x.observables.push_back(sv::PauliString::parse("Z0*Z7"));
  x.observables.push_back(sv::PauliString::parse("Z0"));
  const Result r = plan.execute(x);

  ASSERT_EQ(r.samples.size(), 200u);
  const Index all_ones = (Index{1} << 8) - 1;
  for (Index s : r.samples) EXPECT_TRUE(s == 0 || s == all_ones) << s;

  ASSERT_EQ(r.observables.size(), 2u);
  EXPECT_NEAR(r.observables[0], 1.0, 1e-10);   // qubits perfectly correlated
  EXPECT_NEAR(r.observables[1], 0.0, 1e-10);   // each marginal is 50/50

  // Same shot seed, same samples; different seed, (almost surely) same
  // distribution but independent draws.
  const Result r2 = plan.execute(x);
  EXPECT_EQ(r.samples, r2.samples);
}

TEST(Engine, ResultJsonCarriesReportFields) {
  const Circuit c = circuits::bv(8);
  {
    Options o;
    o.target = Target::DistributedThreaded;
    o.process_qubits = 2;
    ExecOptions x;
    x.shots = 8;
    const std::string j = Engine::compile(c, o).execute(x).to_json();
    for (const char* key :
         {"\"circuit\": \"bv\"", "\"target\": \"distributed-threaded\"",
          "\"parts\":", "\"ranks\": 4", "\"compile_seconds\":",
          "\"partition_seconds\":", "\"execute_wall_seconds\":",
          "\"comm_bytes\":", "\"comm_seconds_modeled\":",
          "\"wall_seconds_measured\":", "\"shots\": 8", "\"norm\":"})
      EXPECT_NE(j.find(key), std::string::npos) << key << "\n" << j;
  }
  {
    const std::string j = Engine::compile(c, Options{}).execute().to_json();
    for (const char* key : {"\"target\": \"hierarchical\"",
                            "\"gather_seconds\":", "\"apply_seconds\":",
                            "\"scatter_seconds\":", "\"outer_bytes_moved\":"})
      EXPECT_NE(j.find(key), std::string::npos) << key << "\n" << j;
    EXPECT_EQ(j.find("\"comm_bytes\""), std::string::npos) << j;
  }
}

TEST(Engine, ValidatesOptions) {
  const Circuit c = circuits::bv(8);
  Options o;
  o.target = Target::DistributedSerial;
  EXPECT_THROW(Engine::compile(c, o), Error);  // process_qubits == 0
  o.target = Target::IqsBaseline;
  EXPECT_THROW(Engine::compile(c, o), Error);
  EXPECT_THROW(ExecutionPlan().execute(), Error);  // empty plan
  EXPECT_FALSE(ExecutionPlan().valid());
  EXPECT_THROW(parse_target("warp-drive"), Error);
}

// Report-only executions skip the state (and, on sharded targets, the
// O(2^n) gather) but still carry the full report.
TEST(Engine, ReportOnlyExecutionSkipsState) {
  const Circuit c = circuits::bv(9);
  Options o;
  o.target = Target::DistributedSerial;
  o.process_qubits = 2;
  const ExecutionPlan plan = Engine::compile(c, o);

  ExecOptions x;
  x.want_state = false;
  const Result r = plan.execute(x);
  EXPECT_EQ(r.state.size(), 0u);
  EXPECT_NEAR(r.norm, 1.0, 1e-10);
  EXPECT_EQ(r.parts, plan.num_parts());
  EXPECT_GT(r.comm.exchanges, 0u);

  // Shots force the gather internally but the state is still dropped.
  x.shots = 4;
  const Result rs = plan.execute(x);
  EXPECT_EQ(rs.state.size(), 0u);
  EXPECT_EQ(rs.samples.size(), 4u);
}

// The multilevel target picks a sane cache level when none is given.
TEST(Engine, MultilevelAutoLevel2) {
  const Circuit c = circuits::qft(9);
  Options o;
  o.target = Target::Multilevel;
  o.limit = 6;
  const ExecutionPlan plan = Engine::compile(c, o);
  EXPECT_GE(plan.num_inner_parts(), plan.num_parts());
  EXPECT_LT(plan.execute().state.max_abs_diff(
                sv::FlatSimulator().simulate(c)),
            1e-10);
}

}  // namespace
}  // namespace hisim
