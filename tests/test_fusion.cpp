#include "circuit/fusion.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"

namespace hisim {
namespace {

TEST(EmbedUnitary, SingleQubitIntoPair) {
  // X on qubit 2 embedded into support {0, 2}: X on bit 1, I on bit 0.
  const Matrix m = embed_unitary(Gate::x(2), {0, 2});
  const Matrix expect = Gate::x(0).matrix().kron(Matrix::identity(2));
  EXPECT_LT(m.max_abs_diff(expect), 1e-14);
}

TEST(EmbedUnitary, KeepsUnitarity) {
  for (const Gate& g : {Gate::h(1), Gate::cx(0, 2), Gate::rzz(0, 1, 0.7),
                        Gate::ccx(0, 1, 2)}) {
    const Matrix m = embed_unitary(g, {0, 1, 2});
    EXPECT_TRUE(m.is_unitary(1e-10)) << g.to_string();
  }
}

TEST(EmbedUnitary, RequiresSupportSuperset) {
  EXPECT_THROW(embed_unitary(Gate::cx(0, 3), {0, 1}), Error);
}

TEST(Fusion, ReducesGateCount) {
  const Circuit c = circuits::qft(8);
  const Circuit f = fuse(c, {.max_qubits = 3, .keep_wide_gates = true});
  EXPECT_LT(f.num_gates(), c.num_gates());
  for (const Gate& g : f.gates()) EXPECT_LE(g.arity(), 3u);
}

TEST(Fusion, SingleGateRunsUntouched) {
  Circuit c(4);
  c.add(Gate::cx(0, 1));
  c.add(Gate::cx(2, 3));  // disjoint support: 4 qubits > 3 -> new run
  const Circuit f = fuse(c, {.max_qubits = 3, .keep_wide_gates = true});
  ASSERT_EQ(f.num_gates(), 2u);
  EXPECT_EQ(f.gate(0).kind, GateKind::CX);
  EXPECT_EQ(f.gate(1).kind, GateKind::CX);
}

struct FuseCase {
  std::string name;
  unsigned qubits;
  unsigned max_qubits;
};

class FusionEquivalence : public ::testing::TestWithParam<FuseCase> {};

TEST_P(FusionEquivalence, SimulatesIdentically) {
  const FuseCase& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);
  const Circuit f = fuse(c, {.max_qubits = tc.max_qubits,
                             .keep_wide_gates = true});
  sv::FlatSimulator sim;
  EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(f)), 1e-9)
      << tc.name << " k=" << tc.max_qubits;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, FusionEquivalence,
    ::testing::Values(FuseCase{"bv", 8, 2}, FuseCase{"bv", 8, 4},
                      FuseCase{"qft", 7, 3}, FuseCase{"ising", 8, 3},
                      FuseCase{"qaoa", 7, 4}, FuseCase{"cat_state", 8, 2},
                      FuseCase{"qnn", 7, 3}, FuseCase{"qpe", 7, 4},
                      FuseCase{"adder37", 8, 4}, FuseCase{"cc", 8, 3},
                      FuseCase{"grover", 7, 5}),
    [](const auto& ti) {
      return ti.param.name + "_k" + std::to_string(ti.param.max_qubits);
    });

TEST(Fusion, WideGatesPassThrough) {
  Circuit c(6);
  c.add(Gate::h(0));
  c.add(Gate::mcx({0, 1, 2, 3, 4}));
  c.add(Gate::h(0));
  const Circuit f = fuse(c, {.max_qubits = 2, .keep_wide_gates = true});
  bool has_mcx = false;
  for (const Gate& g : f.gates()) has_mcx |= g.kind == GateKind::MCX;
  EXPECT_TRUE(has_mcx);
  sv::FlatSimulator sim;
  EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(f)), 1e-9);
}

TEST(Fusion, ThrowsWhenWideGatesForbidden) {
  Circuit c(6);
  c.add(Gate::mcx({0, 1, 2, 3, 4}));
  EXPECT_THROW(fuse(c, {.max_qubits = 2, .keep_wide_gates = false}), Error);
}

TEST(Fusion, ComposesWithPartitioning) {
  // The paper's orthogonality claim: fusion before partitioning keeps
  // hierarchical simulation exact and typically shrinks the gate count.
  const Circuit c = circuits::ising(9, 3, 4);
  const Circuit f = fuse(c, {.max_qubits = 3, .keep_wide_gates = true});
  const dag::CircuitDag d(f);
  partition::PartitionOptions opt;
  opt.limit = 5;
  const auto parts = partition::make_partition(d, opt);
  partition::validate(d, parts);
  const auto ref = sv::FlatSimulator().simulate(c);
  sv::StateVector state(9);
  sv::HierarchicalSimulator().run(f, parts, state);
  EXPECT_LT(state.max_abs_diff(ref), 1e-9);
}

}  // namespace
}  // namespace hisim
