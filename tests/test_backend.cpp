// CommBackend contract: SerialBackend and ThreadedBackend must be
// observationally identical — bit-identical shard contents and identical
// CommStats on any exchange sequence — differing only in *when* data moves
// (the threaded backend overlaps movement with compute and reports
// measured wall-clock comm/overlap).

#include "dist/backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "circuits/generators.hpp"
#include "common/rng.hpp"
#include "dist/dist_state.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "sv/simulator.hpp"
#include "testing/random_circuits.hpp"

namespace hisim::dist {
namespace {

/// Exact (bitwise) shard comparison — backends move amplitudes, they never
/// do arithmetic, so even the doubles must match exactly.
void expect_bit_identical(const DistState& a, const DistState& b) {
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  ASSERT_TRUE(a.layout() == b.layout());
  for (unsigned r = 0; r < a.num_ranks(); ++r) {
    const sv::StateVector &sa = a.local(r), &sb = b.local(r);
    ASSERT_EQ(sa.size(), sb.size());
    for (Index i = 0; i < sa.size(); ++i)
      ASSERT_EQ(sa[i], sb[i]) << "rank " << r << " amp " << i;
  }
}

void scribble(DistState& st) {
  for (unsigned r = 0; r < st.num_ranks(); ++r)
    for (Index i = 0; i < st.local(r).size(); ++i)
      st.local(r)[i] =
          cplx(static_cast<double>(st.layout().global_index(r, i)), 0.25);
}

/// Random subset of at most n - p qubits (possibly empty).
std::vector<Qubit> random_part(Rng& rng, unsigned n, unsigned p) {
  return testutil::random_qubit_subset(rng, n, n - p);
}

TEST(BackendParity, RandomRedistributeChains) {
  Rng rng(0xBACC);
  for (unsigned chain = 0; chain < 8; ++chain) {
    const unsigned n = 7 + chain % 3;  // 7..9 qubits
    const unsigned p = 1 + chain % 3;  // 2..8 ranks
    const unsigned hosts = chain % 2 == 0 ? 0 : (1u << p) - 1;  // virtual too
    DistState serial_st(n, p, hosts), threaded_st(n, p, hosts);
    scribble(serial_st);
    scribble(threaded_st);
    NetworkModel net;
    CommStats serial_stats, threaded_stats;
    for (unsigned step = 0; step < 6; ++step) {
      const std::vector<Qubit> part = random_part(rng, n, p);
      const RankLayout target =
          RankLayout::for_part(n, p, part, serial_st.layout());
      serial_st.redistribute(target, net, serial_stats, serial_backend());
      threaded_st.redistribute(target, net, threaded_stats,
                               threaded_backend());
      expect_bit_identical(serial_st, threaded_st);
      EXPECT_EQ(serial_stats, threaded_stats) << "chain " << chain << " step "
                                              << step;
    }
    // The chains did move data (unless every random part was local).
    EXPECT_EQ(serial_stats.exchanges, threaded_stats.exchanges);
  }
}

TEST(BackendParity, AsyncShardWaitsOutOfOrder) {
  const unsigned n = 9, p = 3;
  DistState serial_st(n, p), threaded_st(n, p);
  scribble(serial_st);
  scribble(threaded_st);
  NetworkModel net;
  CommStats s1, s2;
  const RankLayout target =
      RankLayout::for_part(n, p, {6, 7, 8}, serial_st.layout());
  serial_st.redistribute(target, net, s1, serial_backend());
  auto handle = threaded_st.redistribute_async(target, net, s2,
                                               threaded_backend());
  ASSERT_NE(handle, nullptr);
  // Touch shards in reverse arrival-agnostic order; each wait must make
  // exactly that shard safe to read.
  for (unsigned r = threaded_st.num_ranks(); r-- > 0;) {
    handle->wait_shard(r);
    for (Index i = 0; i < threaded_st.local(r).size(); ++i)
      EXPECT_EQ(threaded_st.local(r)[i], serial_st.local(r)[i]);
  }
  handle->wait_all();
  EXPECT_GE(handle->seconds(), 0.0);
  EXPECT_EQ(s1, s2);
}

TEST(BackendParity, NoOpRedistributeReturnsNullHandle) {
  DistState st(6, 2);
  NetworkModel net;
  CommStats stats;
  EXPECT_EQ(st.redistribute_async(st.layout(), net, stats,
                                  threaded_backend()),
            nullptr);
  EXPECT_EQ(stats.exchanges, 0u);
}

struct CircuitCase {
  const char* name;
  unsigned qubits;
  unsigned p;
  unsigned level2;
};

class BackendCircuitParity : public ::testing::TestWithParam<CircuitCase> {};

TEST_P(BackendCircuitParity, StatesAndStatsMatchSerial) {
  const auto& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);

  auto run_with = [&](CommBackend& backend, DistState& state) {
    DistributedHiSvSim::Options opt;
    opt.process_qubits = tc.p;
    opt.level2_limit = tc.level2;
    opt.backend = &backend;
    return DistributedHiSvSim().run(c, opt, state);
  };
  DistState serial_st(tc.qubits, tc.p), threaded_st(tc.qubits, tc.p);
  const DistRunReport serial_rep = run_with(serial_backend(), serial_st);
  const DistRunReport threaded_rep = run_with(threaded_backend(), threaded_st);

  expect_bit_identical(serial_st, threaded_st);
  EXPECT_EQ(serial_rep.comm, threaded_rep.comm);
  EXPECT_EQ(serial_rep.parts, threaded_rep.parts);

  // Both stay correct against the flat reference.
  const sv::StateVector flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(threaded_st.to_state_vector().max_abs_diff(flat), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BackendCircuitParity,
    ::testing::Values(CircuitCase{"bv", 9, 2, 0}, CircuitCase{"qft", 8, 3, 0},
                      CircuitCase{"ising", 9, 2, 0},
                      CircuitCase{"qaoa", 8, 2, 4},
                      CircuitCase{"grover", 7, 2, 0},
                      CircuitCase{"cc", 9, 3, 0}),
    [](const auto& ti) {
      return std::string(ti.param.name) + "_p" +
             std::to_string(ti.param.p) + "_l2" +
             std::to_string(ti.param.level2);
    });

TEST(BackendParity, IqsBaselineMatchesSerial) {
  for (const char* name : {"bv", "qft", "cc"}) {
    const Circuit c = circuits::make_by_name(name, 8);
    DistState serial_st(8, 2), threaded_st(8, 2);
    const IqsRunReport a =
        IqsBaselineSimulator().run(c, serial_st, {}, &serial_backend());
    const IqsRunReport b =
        IqsBaselineSimulator().run(c, threaded_st, {}, &threaded_backend());
    expect_bit_identical(serial_st, threaded_st);
    EXPECT_EQ(a.comm, b.comm) << name;
  }
}

TEST(Backend, MeasuredTimesAreReportedAndBounded) {
  const Circuit c = circuits::qft(9);
  for (BackendKind kind : {BackendKind::Serial, BackendKind::Threaded}) {
    DistState state(9, 2);
    DistributedHiSvSim::Options opt;
    opt.process_qubits = 2;
    opt.backend = &backend_for(kind);
    const DistRunReport rep = DistributedHiSvSim().run(c, opt, state);

    EXPECT_GT(rep.measured_wall_seconds, 0.0);
    EXPECT_GT(rep.measured_comm_seconds, 0.0);  // qft relayouts at least once
    const double overlap = rep.measured_overlap_seconds;
    EXPECT_GE(overlap, 0.0);
    // Overlap is a window intersection: it cannot exceed the comm window,
    // the compute window, or (a fortiori) their sum.
    EXPECT_LE(overlap, rep.measured_comm_seconds + 1e-9);
    EXPECT_LE(overlap, rep.compute_seconds + 1e-9);
    EXPECT_LE(overlap,
              rep.measured_comm_seconds + rep.compute_seconds + 1e-9);
    if (kind == BackendKind::Serial) {
      // Synchronous backend: the exchange finished before any rank began
      // computing, so the windows never intersect.
      EXPECT_EQ(overlap, 0.0);
    }
  }
}

TEST(Backend, RunGroupsCoversEveryGroupOnce) {
  for (BackendKind kind : {BackendKind::Serial, BackendKind::Threaded}) {
    CommBackend& backend = backend_for(kind);
    std::vector<std::atomic<int>> hits(37);
    backend.run_groups(hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Backend, ParseAndNames) {
  EXPECT_EQ(parse_backend("serial"), BackendKind::Serial);
  EXPECT_EQ(parse_backend("threaded"), BackendKind::Threaded);
  EXPECT_THROW(parse_backend("mpi"), Error);
  EXPECT_STREQ(backend_kind_name(BackendKind::Serial), "serial");
  EXPECT_STREQ(backend_kind_name(BackendKind::Threaded), "threaded");
  EXPECT_STREQ(serial_backend().name(), "serial");
  EXPECT_STREQ(threaded_backend().name(), "threaded");
}

TEST(Validation, DistStateRejectsBadShapes) {
  EXPECT_THROW(DistState(0, 0), Error);           // no qubits
  EXPECT_THROW(DistState(4, 5), Error);           // p > n
  EXPECT_THROW(DistState(6, 2, 5), Error);        // 5 hosts for 4 vranks
  EXPECT_NO_THROW(DistState(6, 2, 3));            // virtual ranks OK
  EXPECT_NO_THROW(DistState(6, 6));               // p == n is a valid corner
}

TEST(Validation, RankLayoutRejectsBadPermutations) {
  EXPECT_THROW(RankLayout(4, 5, {0, 1, 2, 3}), Error);     // p > n
  EXPECT_THROW(RankLayout(4, 2, {0, 1, 2}), Error);        // wrong size
  EXPECT_THROW(RankLayout(4, 2, {0, 1, 2, 4}), Error);     // slot out of range
  EXPECT_THROW(RankLayout(4, 2, {0, 1, 1, 3}), Error);     // duplicate slot
  EXPECT_THROW(RankLayout::for_part(6, 2, {0, 1, 2, 3, 4},
                                    RankLayout::identity(6, 2)),
               Error);  // part wider than the shard
}

}  // namespace
}  // namespace hisim::dist
