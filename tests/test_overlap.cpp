// Communication/computation overlap accounting (paper Sec. V-C: ranks
// continue computing while later data arrives, so HiSVSIM reports the
// overlapped estimate alongside the conservative sum).

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "dist/hisvsim_dist.hpp"

namespace hisim::dist {
namespace {

DistRunReport run(const Circuit& c, unsigned p) {
  DistState state(c.num_qubits(), p);
  DistributedHiSvSim::Options opt;
  opt.process_qubits = p;
  return DistributedHiSvSim().run(c, opt, state);
}

TEST(Overlap, PerPartTimesRecorded) {
  const Circuit c = circuits::ising(9, 3, 5);
  const auto rep = run(c, 2);
  ASSERT_EQ(rep.part_times.size(), rep.parts);
  double comm_sum = 0, comp_sum = 0;
  for (const auto& [comm, comp] : rep.part_times) {
    EXPECT_GE(comm, 0.0);
    EXPECT_GE(comp, 0.0);
    comm_sum += comm;
    comp_sum += comp;
  }
  EXPECT_NEAR(comm_sum, rep.comm.modeled_max_seconds, 1e-9);
  EXPECT_NEAR(comp_sum, rep.compute_seconds, 0.2 * rep.compute_seconds + 1e-6);
}

TEST(Overlap, NeverExceedsSerialTotal) {
  for (const char* name : {"bv", "qft", "qaoa", "cc"}) {
    const Circuit c = circuits::make_by_name(name, 9);
    const auto rep = run(c, 2);
    EXPECT_LE(rep.total_seconds_overlapped(), rep.total_seconds() + 1e-9)
        << name;
    // Lower bound: cannot beat either resource alone.
    EXPECT_GE(rep.total_seconds_overlapped() + 1e-9,
              rep.comm.modeled_max_seconds) << name;
    EXPECT_GE(rep.total_seconds_overlapped() + 1e-9,
              rep.compute_seconds * 0.8) << name;
  }
}

TEST(Overlap, SinglePartDegeneratesToSum) {
  // One part: nothing to overlap with — estimate equals comm + compute.
  const Circuit c = circuits::cat_state(8);
  DistState state(8, 1);  // l = 7 >= 8? no: l = 7, cat needs 8 -> 2 parts.
  DistributedHiSvSim::Options opt;
  opt.process_qubits = 1;
  const auto rep = DistributedHiSvSim().run(c, opt, state);
  if (rep.parts == 1) {
    EXPECT_NEAR(rep.total_seconds_overlapped(), rep.total_seconds(), 1e-9);
  } else {
    EXPECT_LE(rep.total_seconds_overlapped(), rep.total_seconds() + 1e-9);
  }
}

TEST(Overlap, MeasuredOverlapBoundedByCommPlusCompute) {
  // The measured counterpart of the modeled estimate: hidden work can
  // never exceed the comm + compute work actually performed, under either
  // backend.
  for (const char* name : {"qft", "ising"}) {
    const Circuit c = circuits::make_by_name(name, 9);
    for (CommBackend* backend :
         {&serial_backend(), &threaded_backend()}) {
      DistState state(9, 2);
      DistributedHiSvSim::Options opt;
      opt.process_qubits = 2;
      opt.backend = backend;
      const auto rep = DistributedHiSvSim().run(c, opt, state);
      EXPECT_GT(rep.measured_wall_seconds, 0.0) << name;
      EXPECT_GE(rep.measured_comm_seconds, 0.0) << name;
      EXPECT_GE(rep.measured_overlap_seconds, 0.0) << name;
      EXPECT_LE(rep.measured_overlap_seconds,
                rep.measured_comm_seconds + 1e-9)
          << name << " on " << backend->name();
      EXPECT_LE(rep.measured_overlap_seconds, rep.compute_seconds + 1e-9)
          << name << " on " << backend->name();
      EXPECT_LE(rep.measured_overlap_seconds,
                rep.measured_comm_seconds + rep.compute_seconds + 1e-9)
          << name << " on " << backend->name();
    }
  }
}

TEST(Overlap, EmptyReportFallsBack) {
  DistRunReport rep;
  rep.compute_seconds = 1.0;
  rep.comm.modeled_max_seconds = 0.5;
  EXPECT_NEAR(rep.total_seconds_overlapped(), 1.5, 1e-12);
}

}  // namespace
}  // namespace hisim::dist
