#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "common/error.hpp"

namespace hisim::partition {
namespace {

TEST(SegmentOrder, GreedyCutoffRespectsLimit) {
  const Circuit c = circuits::bv(8);
  const dag::CircuitDag d(c);
  const Partitioning p = segment_order(d, d.natural_order(), 4);
  validate(d, p);
  EXPECT_LE(p.max_working_set(), 4u);
}

TEST(SegmentOrder, LimitEqualWidthGivesOnePart) {
  const Circuit c = circuits::qft(6);
  const dag::CircuitDag d(c);
  const Partitioning p = segment_order(d, d.natural_order(), 6);
  EXPECT_EQ(p.num_parts(), 1u);
  validate(d, p);
}

TEST(Nat, MatchesPaperToyExample) {
  // Fig. 4: bv with 6 qubits, limit 4 -> Nat yields more parts than dagP.
  const Circuit c = circuits::bv(6, /*secret=*/0b11111);
  const dag::CircuitDag d(c);
  const Partitioning nat = partition_nat(d, 4);
  validate(d, nat);
  PartitionOptions opt;
  opt.limit = 4;
  const Partitioning dagp = partition_dagp(d, opt);
  validate(d, dagp);
  EXPECT_LE(dagp.num_parts(), nat.num_parts());
}

TEST(Dfs, NeverWorseThanWorstTrial) {
  const Circuit c = circuits::qaoa(8, 2, 5);
  const dag::CircuitDag d(c);
  const Partitioning p = partition_dfs(d, 5, 8, 1234);
  validate(d, p);
}

TEST(Dfs, DeterministicForFixedSeed) {
  const Circuit c = circuits::ising(8, 2, 3);
  const dag::CircuitDag d(c);
  const Partitioning a = partition_dfs(d, 4, 8, 42);
  const Partitioning b = partition_dfs(d, 4, 8, 42);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(MakePartition, RejectsTooWideGates) {
  Circuit c(5);
  c.add(Gate::mcx({0, 1, 2, 3, 4}));
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = 4;
  opt.strategy = Strategy::Nat;
  EXPECT_THROW(make_partition(d, opt), Error);
}

TEST(MakePartition, AllStrategiesValidateOnSuite) {
  for (const auto& bench : circuits::qasmbench_suite()) {
    const Circuit c = bench.make(10);
    const dag::CircuitDag d(c);
    unsigned max_arity = 1;
    for (const Gate& g : c.gates())
      max_arity = std::max(max_arity, g.arity());
    const unsigned limit = std::max(9u, max_arity);
    for (Strategy s : {Strategy::Nat, Strategy::Dfs, Strategy::DagP}) {
      PartitionOptions opt;
      opt.limit = limit;
      opt.strategy = s;
      const Partitioning p = make_partition(d, opt);
      validate(d, p);
      EXPECT_LE(p.max_working_set(), limit) << bench.name << strategy_name(s);
    }
  }
}

TEST(Validate, CatchesWorkingSetViolation) {
  const Circuit c = circuits::qft(5);
  const dag::CircuitDag d(c);
  Partitioning p = partition_nat(d, 5);
  p.limit = 2;  // pretend a tighter limit
  EXPECT_THROW(validate(d, p), Error);
}

TEST(Validate, CatchesMissingGate) {
  const Circuit c = circuits::cat_state(4);
  const dag::CircuitDag d(c);
  Partitioning p = partition_nat(d, 4);
  p.parts[0].gates.pop_back();
  EXPECT_THROW(validate(d, p), Error);
}

TEST(Validate, CatchesBadPartOrder) {
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  const dag::CircuitDag d(c);
  Partitioning p;
  p.limit = 2;
  p.parts.resize(2);
  p.parts[0].gates = {1};
  p.parts[0].qubits = {0, 1};
  p.parts[1].gates = {0};
  p.parts[1].qubits = {0};
  p.part_of = {1, 0};
  EXPECT_THROW(validate(d, p), Error);
}

TEST(Partitioning, SummaryMentionsParts) {
  const Circuit c = circuits::bv(8);
  const dag::CircuitDag d(c);
  const Partitioning p = partition_nat(d, 4);
  EXPECT_NE(p.summary().find("parts"), std::string::npos);
}

}  // namespace
}  // namespace hisim::partition
