// The optimization pass pipeline (src/opt/pass_manager.*): per-pass unit
// tests on hand-built circuits, negative pins for the rewrites that look
// safe but are not, barrier pins for noisy/parameterized structure, and
// the headline differential harness — hundreds of seeded random circuits
// compiled at opt_level 0 and 1 must produce the same state (up to global
// phase) on every target.

#include "opt/pass_manager.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "hisvsim/engine.hpp"
#include "noise/noise_model.hpp"
#include "sv/simulator.hpp"
#include "testing/random_circuits.hpp"

namespace hisim {
namespace {

using passes::cancel_inverses;
using passes::commute_diagonals;
using passes::drop_identities;
using passes::merge_rotations;

constexpr double kTwoPi = 6.283185307179586476925286766559;

const Target kAllTargets[] = {
    Target::Flat,
    Target::Hierarchical,
    Target::Multilevel,
    Target::DistributedSerial,
    Target::DistributedThreaded,
    Target::IqsBaseline,
};

/// Flat-simulated state of `c` — the semantic yardstick for every pass.
sv::StateVector flat(const Circuit& c) {
  return sv::FlatSimulator().simulate(c);
}

// ---- cancel_inverses -------------------------------------------------

TEST(CancelInverses, AdjacentSelfInversePairsVanish) {
  Circuit c(3);
  c.add(Gate::h(0));
  c.add(Gate::h(0));
  c.add(Gate::x(1));
  c.add(Gate::x(1));
  c.add(Gate::cx(0, 1));
  c.add(Gate::cx(0, 1));
  c.add(Gate::s(2));
  c.add(Gate::sdg(2));
  c.add(Gate::tdg(2));
  c.add(Gate::t(2));
  c.add(Gate::ccx(0, 1, 2));
  c.add(Gate::ccx(1, 0, 2));  // controls are a set: still cancels
  EXPECT_EQ(cancel_inverses(c).num_gates(), 0u);
}

TEST(CancelInverses, CascadesThroughExposedPairs) {
  // h x x h: cancelling the inner x-x exposes the outer h-h pair to the
  // same sweep.
  Circuit c(1);
  c.add(Gate::h(0));
  c.add(Gate::x(0));
  c.add(Gate::x(0));
  c.add(Gate::h(0));
  EXPECT_EQ(cancel_inverses(c).num_gates(), 0u);
}

TEST(CancelInverses, DisjointGatesInBetweenDoNotBlock) {
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::x(1));
  c.add(Gate::h(0));  // adjacent to the first h on qubit 0
  c.add(Gate::x(1));
  EXPECT_EQ(cancel_inverses(c).num_gates(), 0u);
}

TEST(CancelInverses, GateOnSharedQubitBlocks) {
  // cx·rz(target)·cx: the rz breaks adjacency on the target, and the cx
  // pair must NOT cancel (the classic unsound rewrite).
  Circuit c(2);
  c.add(Gate::cx(0, 1));
  c.add(Gate::rz(1, 0.4));
  c.add(Gate::cx(0, 1));
  EXPECT_TRUE(cancel_inverses(c) == c);
  EXPECT_TRUE(optimize(c, 1) == c);  // the full pipeline agrees
}

TEST(CancelInverses, ControlTargetRolesMustMatch) {
  Circuit c(2);
  c.add(Gate::cx(0, 1));
  c.add(Gate::cx(1, 0));  // roles swapped: not an inverse pair
  EXPECT_EQ(cancel_inverses(c).num_gates(), 2u);

  Circuit sym(2);
  sym.add(Gate::cz(0, 1));
  sym.add(Gate::cz(1, 0));  // cz is symmetric: cancels in either order
  sym.add(Gate::swap(0, 1));
  sym.add(Gate::swap(1, 0));
  EXPECT_EQ(cancel_inverses(sym).num_gates(), 0u);
}

// ---- merge_rotations -------------------------------------------------

TEST(MergeRotations, SameAxisAnglesSum) {
  Circuit c(2);
  c.add(Gate::rz(0, 0.3));
  c.add(Gate::rz(0, 0.5));
  c.add(Gate::cp(0, 1, 0.2));
  c.add(Gate::cp(1, 0, 0.4));  // cp is symmetric in its pair
  const Circuit m = merge_rotations(c);
  ASSERT_EQ(m.num_gates(), 2u);
  EXPECT_EQ(m.gate(0).kind, GateKind::RZ);
  EXPECT_NEAR(m.gate(0).params[0].value(), 0.8, 1e-15);
  EXPECT_EQ(m.gate(1).kind, GateKind::CP);
  EXPECT_NEAR(m.gate(1).params[0].value(), 0.6, 1e-15);
  EXPECT_LT(testutil::max_abs_diff_up_to_phase(flat(c), flat(m)), 1e-12);
}

TEST(MergeRotations, DifferentAxesDoNotMerge) {
  Circuit c(1);
  c.add(Gate::rx(0, 0.3));
  c.add(Gate::rz(0, 0.5));
  EXPECT_TRUE(merge_rotations(c) == c);
}

TEST(MergeRotations, ControlledRotationRolesMustMatch) {
  Circuit c(2);
  c.add(Gate::crz(0, 1, 0.3));
  c.add(Gate::crz(1, 0, 0.5));  // roles swapped: different operators
  EXPECT_TRUE(merge_rotations(c) == c);
}

TEST(MergeRotations, MergedPairThatSumsToZeroThenDrops) {
  Circuit c(2);
  c.add(Gate::rz(0, 1.1));
  c.add(Gate::x(1));  // disjoint: does not block the merge
  c.add(Gate::rz(0, -1.1));
  const Circuit o = optimize(c, 1);
  ASSERT_EQ(o.num_gates(), 1u);
  EXPECT_EQ(o.gate(0).kind, GateKind::X);
}

// ---- drop_identities -------------------------------------------------

TEST(DropIdentities, IdentityAngleRotationsDrop) {
  Circuit c(2);
  c.add(Gate::rz(0, 0.0));
  c.add(Gate::rx(0, kTwoPi));  // -I: identity up to global phase
  c.add(Gate::rzz(0, 1, -kTwoPi));
  c.add(Gate::p(1, 0.0));
  c.add(Gate::cp(0, 1, 2.0 * kTwoPi));
  EXPECT_EQ(drop_identities(c).num_gates(), 0u);
}

TEST(DropIdentities, NonTrivialAnglesAndPlainIdSurvive) {
  Circuit c(1);
  c.add(Gate::rz(0, 0.1));
  c.add(Gate::i(0));  // deliberate idle marker (noise attachment point)
  EXPECT_TRUE(drop_identities(c) == c);
}

TEST(DropIdentities, ControlledRotationAtTwoPiIsNotIdentity) {
  // CRZ(2pi) applies a phase flip controlled on the first qubit — it is
  // NOT the identity. Verify semantically, then pin that only 4pi drops.
  Circuit with(2), without(2);
  with.add(Gate::h(0));
  without.add(Gate::h(0));
  with.add(Gate::crz(0, 1, kTwoPi));
  EXPECT_GT(testutil::max_abs_diff_up_to_phase(flat(with), flat(without)),
            0.1);

  Circuit c(2);
  c.add(Gate::crz(0, 1, kTwoPi));
  EXPECT_TRUE(drop_identities(c) == c);
  EXPECT_TRUE(optimize(c, 1) == c);

  Circuit c4(2);
  c4.add(Gate::crz(0, 1, 2.0 * kTwoPi));
  EXPECT_EQ(drop_identities(c4).num_gates(), 0u);

  // And through the pipeline: two adjacent CRZ(2pi) merge to 4pi, then
  // drop — each alone must stay.
  Circuit pair(2);
  pair.add(Gate::crz(0, 1, kTwoPi));
  pair.add(Gate::crz(0, 1, kTwoPi));
  EXPECT_EQ(optimize(pair, 1).num_gates(), 0u);
}

// ---- commute_diagonals -----------------------------------------------

TEST(CommuteDiagonals, RzOnControlHopsToExposeCancellation) {
  Circuit c(2);
  c.add(Gate::cx(0, 1));
  c.add(Gate::rz(0, 0.7));  // on the control: commutes with the cx
  c.add(Gate::cx(0, 1));
  const Circuit o = optimize(c, 1);
  ASSERT_EQ(o.num_gates(), 1u);
  EXPECT_EQ(o.gate(0).kind, GateKind::RZ);
  EXPECT_LT(flat(o).max_abs_diff(flat(c)), 1e-12);
}

TEST(CommuteDiagonals, RzOnTargetStaysPut) {
  Circuit c(2);
  c.add(Gate::cx(0, 1));
  c.add(Gate::rz(1, 0.7));  // on the target: does NOT commute
  c.add(Gate::cx(0, 1));
  EXPECT_TRUE(commute_diagonals(c) == c);
  EXPECT_TRUE(optimize(c, 1) == c);
}

TEST(CommuteDiagonals, HopsPastDiagonalTwoQubitGates) {
  Circuit c(2);
  c.add(Gate::rz(0, 0.2));
  c.add(Gate::cp(0, 1, 0.3));  // diagonal: the later rz hops past it
  c.add(Gate::rz(0, 0.5));
  const Circuit moved = commute_diagonals(c);
  ASSERT_EQ(moved.num_gates(), 3u);
  EXPECT_EQ(moved.gate(0).kind, GateKind::RZ);
  EXPECT_EQ(moved.gate(1).kind, GateKind::RZ);
  EXPECT_EQ(moved.gate(2).kind, GateKind::CP);
  const Circuit o = optimize(c, 1);
  ASSERT_EQ(o.num_gates(), 2u);  // the two rz merged behind the cp
  EXPECT_NEAR(o.gate(0).params[0].value(), 0.7, 1e-15);
  EXPECT_LT(flat(o).max_abs_diff(flat(c)), 1e-12);
}

// ---- barriers: symbolic parameters and noise slots -------------------

TEST(Barriers, SymbolicGatesBlockEveryRewrite) {
  Circuit c(1);
  const Param th = c.param("theta");
  c.add(Gate::h(0));
  c.add(Gate::rz(0, th));  // unbound symbolic: a barrier on qubit 0
  c.add(Gate::h(0));
  EXPECT_TRUE(optimize(c, 1) == c);

  Circuit two(1);
  const Param phi = two.param("phi");
  two.add(Gate::rz(0, phi));
  two.add(Gate::rz(0, phi));  // symbolic rotations never merge
  EXPECT_TRUE(optimize(two, 1) == two);
}

TEST(Barriers, NoiseSlotsBlockAndSurvive) {
  Circuit c(1);
  c.add(Gate::x(0));
  c.add(Gate::noise_slot(0, 0));
  c.add(Gate::x(0));
  EXPECT_TRUE(optimize(c, 1) == c);
}

TEST(Barriers, NoisyPlanStructureUnchangedByOptLevel) {
  // An instrumented plan's structure — the gate list trajectories
  // substitute into — must be bit-identical at opt_level 0 and 1: every
  // slot is a barrier, so the pipeline must find nothing to rewrite.
  const Circuit c = circuits::noise_calibration(5);
  Options o1;
  o1.target = Target::Flat;
  o1.noise.after_all_gates(noise::Channel::depolarizing(0.05));
  Options o0 = o1;
  o0.opt_level = 0;
  const ExecutionPlan p1 = Engine::compile(c, o1);
  const ExecutionPlan p0 = Engine::compile(c, o0);
  EXPECT_EQ(p0.num_noise_slots(), p1.num_noise_slots());
  EXPECT_TRUE(p0.circuit() == p1.circuit());
  // Same seed, same structure: trajectories replay bit-identically.
  const Result r0 = p0.execute_trajectory(123);
  const Result r1 = p1.execute_trajectory(123);
  ASSERT_EQ(r0.state.size(), r1.state.size());
  for (Index i = 0; i < r0.state.size(); ++i)
    ASSERT_EQ(r0.state[i], r1.state[i]) << "amp " << i;
}

TEST(Barriers, ParameterizedPlanStructureUnchangedByOptLevel) {
  const auto inst = circuits::qaoa_instance(6, 2);
  Options o1;
  o1.target = Target::Hierarchical;
  o1.limit = 4;
  Options o0 = o1;
  o0.opt_level = 0;
  const ExecutionPlan p1 = Engine::compile(inst.circuit, o1);
  const ExecutionPlan p0 = Engine::compile(inst.circuit, o0);
  EXPECT_EQ(p0.param_names(), p1.param_names());
  EXPECT_TRUE(p0.circuit() == p1.circuit());
  ExecOptions x;
  for (const std::string& name : p0.param_names()) x.bindings[name] = 0.37;
  const Result r0 = p0.execute(x);
  const Result r1 = p1.execute(x);
  ASSERT_EQ(r0.state.size(), r1.state.size());
  for (Index i = 0; i < r0.state.size(); ++i)
    ASSERT_EQ(r0.state[i], r1.state[i]) << "amp " << i;
}

// ---- pipeline plumbing: levels, report, json -------------------------

TEST(PassManager, ReportAccountsPerPassRemovals) {
  const Circuit bv = circuits::bv(10);
  const ExecutionPlan plan = Engine::compile(bv, Options{});
  const OptReport& rep = plan.opt_report();
  EXPECT_EQ(rep.opt_level, 1u);
  EXPECT_EQ(rep.gates_before, bv.num_gates());
  EXPECT_EQ(rep.gates_after, plan.circuit().num_gates());
  EXPECT_GT(rep.removed(), 0u);  // bv has h·h pairs on unset secret bits
  ASSERT_EQ(rep.deltas.size(), 4u);
  EXPECT_EQ(rep.deltas[0].pass, "commute-diagonals");
  EXPECT_EQ(rep.deltas[1].pass, "cancel-inverses");
  EXPECT_EQ(rep.deltas[2].pass, "merge-rotations");
  EXPECT_EQ(rep.deltas[3].pass, "drop-identities");
  std::size_t sum = 0;
  for (const PassDelta& d : rep.deltas) sum += d.removed;
  EXPECT_EQ(sum, rep.removed());
}

TEST(PassManager, OptLevelZeroCompilesTheCircuitAsGiven) {
  const Circuit bv = circuits::bv(10);
  Options o;
  o.opt_level = 0;
  const ExecutionPlan plan = Engine::compile(bv, o);
  EXPECT_TRUE(plan.circuit() == bv);
  EXPECT_EQ(plan.opt_report().removed(), 0u);
  EXPECT_EQ(plan.opt_report().gates_before, bv.num_gates());
}

TEST(PassManager, RejectsUnknownLevels) {
  Options o;
  o.opt_level = 2;
  EXPECT_THROW(Engine::compile(circuits::bv(6), o), Error);
  EXPECT_THROW(optimize(circuits::bv(6), 7), Error);
}

TEST(PassManager, UntouchedCircuitsAreFixpoints) {
  // qft offers the pipeline nothing: no adjacent inverse pairs, every cp
  // angle pi/2^k, every diagonal gate multi-qubit. The compiled plan must
  // be bit-for-bit the input circuit (the guarantee the bit-identical
  // engine tests lean on).
  const Circuit q = circuits::qft(8);
  EXPECT_TRUE(optimize(q, 1) == q);
  const Circuit is = circuits::ising(8, 2, 3);
  EXPECT_TRUE(optimize(is, 1) == is);
}

TEST(ResultJson, CarriesOptReportFields) {
  const Result r = Engine::compile(circuits::bv(8), Options{}).execute();
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"opt_level\": 1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"gates_pre_opt\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"opt_passes\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"cancel-inverses\""), std::string::npos) << j;
  EXPECT_GT(r.gates_pre_opt, r.gates);
}

// ---- table1 suite reduction (the bench_passes acceptance bar) --------

TEST(SuiteReduction, MeanGateReductionAtLeastTenPercent) {
  double sum = 0.0;
  int count = 0;
  for (const auto& b : circuits::qasmbench_suite()) {
    const Circuit c = b.make(b.default_qubits);
    const Circuit o = optimize(c, 1);
    const double reduction =
        1.0 - static_cast<double>(o.num_gates()) /
                  static_cast<double>(c.num_gates());
    EXPECT_GE(reduction, 0.0) << b.name;
    sum += reduction;
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_GE(sum / count, 0.10);
}

// ---- the differential-equivalence harness ----------------------------

/// 200 seeded random circuits (knobs planting cancellations, merges, and
/// identity angles), each compiled at opt_level 0 and 1 and executed on
/// every target: the states must agree up to a global phase within 1e-10.
class DifferentialEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialEquivalence, OptimizedPlansMatchUnoptimizedEverywhere) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 101 + 3);
  const unsigned n = 4 + static_cast<unsigned>(rng.below(3));  // 4..6
  testutil::CircuitKnobs knobs;
  knobs.duplicate_prob = 0.25;
  knobs.trivial_angle_prob = 0.10;
  const Circuit c =
      testutil::random_circuit(n, 24 + rng.below(25), seed, knobs);
  const unsigned p = 1 + static_cast<unsigned>(rng.below(2));  // 1..2

  for (Target t : kAllTargets) {
    Options o1;
    o1.target = t;
    o1.limit = 4;
    if (t == Target::Multilevel) o1.level2_limit = 3;
    if (target_is_distributed(t)) o1.process_qubits = p;
    Options o0 = o1;
    o0.opt_level = 0;
    const Result r0 = Engine::compile(c, o0).execute();
    const Result r1 = Engine::compile(c, o1).execute();
    ASSERT_EQ(r0.state.size(), r1.state.size()) << target_name(t);
    EXPECT_LT(testutil::max_abs_diff_up_to_phase(r0.state, r1.state),
              1e-10)
        << target_name(t) << " seed " << seed;
    EXPECT_LE(r1.gates, r0.gates) << target_name(t) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialEquivalence,
                         ::testing::Range<std::uint64_t>(1, 201));

}  // namespace
}  // namespace hisim
