#include "dist/hisvsim_dist.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "dist/dist_state.hpp"
#include "sv/simulator.hpp"

namespace hisim::dist {
namespace {

TEST(DistState, InitialStateIsGround) {
  DistState st(6, 2);
  const sv::StateVector full = st.to_state_vector();
  EXPECT_NEAR(std::abs(full[0] - 1.0), 0.0, 1e-15);
  EXPECT_NEAR(full.norm(), 1.0, 1e-15);
}

TEST(DistState, RedistributePreservesAmplitudes) {
  DistState st(6, 2);
  // Scribble a recognizable pattern through rank-local access.
  for (unsigned r = 0; r < st.num_ranks(); ++r)
    for (Index i = 0; i < st.local(r).size(); ++i)
      st.local(r)[i] = cplx(static_cast<double>(st.layout().global_index(r, i)), 0);
  const sv::StateVector before = st.to_state_vector();
  NetworkModel net;
  CommStats stats;
  const RankLayout target =
      RankLayout::for_part(6, 2, {4, 5}, st.layout());
  st.redistribute(target, net, stats);
  const sv::StateVector after = st.to_state_vector();
  EXPECT_LT(before.max_abs_diff(after), 1e-15);
  EXPECT_GT(stats.bytes_total, 0u);
  EXPECT_EQ(stats.exchanges, 1u);
  EXPECT_GT(stats.modeled_max_seconds, 0.0);
  EXPECT_GE(stats.modeled_max_seconds, stats.modeled_avg_seconds);
}

TEST(DistState, RedistributeToSameLayoutIsFree) {
  DistState st(5, 1);
  NetworkModel net;
  CommStats stats;
  st.redistribute(st.layout(), net, stats);
  EXPECT_EQ(stats.exchanges, 0u);
  EXPECT_EQ(stats.bytes_total, 0u);
}

struct DistCase {
  std::string name;
  unsigned qubits;
  unsigned p;
  partition::Strategy strategy;
  unsigned level2;
};

class DistributedMatchesFlat : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedMatchesFlat, SameAmplitudes) {
  const DistCase& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);
  DistState state(tc.qubits, tc.p);
  DistributedHiSvSim::Options opt;
  opt.process_qubits = tc.p;
  opt.part.strategy = tc.strategy;
  opt.level2_limit = tc.level2;
  const DistRunReport rep = DistributedHiSvSim().run(c, opt, state);
  const sv::StateVector flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.to_state_vector().max_abs_diff(flat), 1e-10)
      << tc.name << " p=" << tc.p;
  EXPECT_GT(rep.parts, 0u);
  EXPECT_EQ(rep.ranks, 1u << tc.p);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, DistributedMatchesFlat,
    ::testing::Values(
        DistCase{"bv", 9, 2, partition::Strategy::DagP, 0},
        DistCase{"bv", 9, 3, partition::Strategy::Nat, 0},
        DistCase{"cat_state", 8, 2, partition::Strategy::Dfs, 0},
        DistCase{"qft", 8, 2, partition::Strategy::DagP, 0},
        DistCase{"qft", 8, 3, partition::Strategy::DagP, 3},
        DistCase{"ising", 9, 2, partition::Strategy::DagP, 0},
        DistCase{"qaoa", 8, 2, partition::Strategy::DagP, 4},
        DistCase{"cc", 9, 3, partition::Strategy::DagP, 0},
        DistCase{"qpe", 8, 2, partition::Strategy::DagP, 0},
        DistCase{"qnn", 8, 2, partition::Strategy::Nat, 0},
        DistCase{"adder37", 10, 2, partition::Strategy::DagP, 0},
        DistCase{"grover", 7, 2, partition::Strategy::DagP, 0}),
    [](const auto& ti) {
      return ti.param.name + "_p" + std::to_string(ti.param.p) + "_" +
             partition::strategy_name(ti.param.strategy) + "_l2" +
             std::to_string(ti.param.level2);
    });

TEST(Distributed, AtMostOneRedistributionPerPart) {
  const Circuit c = circuits::cat_state(8);
  DistState state(8, 2);
  DistributedHiSvSim::Options opt;
  opt.process_qubits = 2;
  const DistRunReport rep = DistributedHiSvSim().run(c, opt, state);
  // A part whose qubits are already local (the first one under the
  // identity layout) costs no exchange, so exchanges <= parts.
  EXPECT_GT(rep.parts, 1u);
  EXPECT_LE(rep.comm.exchanges, rep.parts);
  EXPECT_GE(rep.comm.exchanges, 1u);
}

TEST(Distributed, CommDecreasesWithFewerParts) {
  const Circuit c = circuits::ising(9, 3, 5);
  DistributedHiSvSim sim;
  DistState s1(9, 2), s2(9, 2);
  DistributedHiSvSim::Options nat, dagp;
  nat.process_qubits = dagp.process_qubits = 2;
  nat.part.strategy = partition::Strategy::Nat;
  dagp.part.strategy = partition::Strategy::DagP;
  const auto rep_nat = sim.run(c, nat, s1);
  const auto rep_dagp = sim.run(c, dagp, s2);
  EXPECT_LE(rep_dagp.parts, rep_nat.parts);
  EXPECT_LE(rep_dagp.comm.exchanges, rep_nat.comm.exchanges);
}

TEST(DistState, RedistributeRejectsMismatchedTarget) {
  DistState st(6, 2);
  NetworkModel net;
  CommStats stats;
  // Wrong qubit count and wrong process-qubit split both throw.
  EXPECT_THROW(st.redistribute(RankLayout::identity(5, 2), net, stats), Error);
  EXPECT_THROW(st.redistribute(RankLayout::identity(6, 3), net, stats), Error);
  EXPECT_EQ(stats.exchanges, 0u);
}

TEST(DistState, RedistributeWithExplicitBackendsAgree) {
  // Same scenario as RedistributePreservesAmplitudes, through both
  // backends explicitly: contents and accounting must be identical.
  NetworkModel net;
  sv::StateVector results[2];
  CommStats stats[2];
  CommBackend* backends[2] = {&serial_backend(), &threaded_backend()};
  for (int b = 0; b < 2; ++b) {
    DistState st(6, 2);
    for (unsigned r = 0; r < st.num_ranks(); ++r)
      for (Index i = 0; i < st.local(r).size(); ++i)
        st.local(r)[i] =
            cplx(static_cast<double>(st.layout().global_index(r, i)), 0);
    const RankLayout target = RankLayout::for_part(6, 2, {4, 5}, st.layout());
    st.redistribute(target, net, stats[b], *backends[b]);
    results[b] = st.to_state_vector();
  }
  EXPECT_EQ(stats[0], stats[1]);
  for (Index i = 0; i < results[0].size(); ++i)
    EXPECT_EQ(results[0][i], results[1][i]);
}

TEST(Distributed, ThreadedBackendMatchesFlatReference) {
  const Circuit c = circuits::qft(9);
  DistState state(9, 2);
  DistributedHiSvSim::Options opt;
  opt.process_qubits = 2;
  opt.backend = &threaded_backend();
  const DistRunReport rep = DistributedHiSvSim().run(c, opt, state);
  const sv::StateVector flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.to_state_vector().max_abs_diff(flat), 1e-10);
  EXPECT_GT(rep.measured_wall_seconds, 0.0);
  EXPECT_GE(rep.measured_overlap_seconds, 0.0);
}

TEST(Distributed, ReportTotalsConsistent) {
  const Circuit c = circuits::qft(8);
  DistState state(8, 2);
  DistributedHiSvSim::Options opt;
  opt.process_qubits = 2;
  const DistRunReport rep = DistributedHiSvSim().run(c, opt, state);
  EXPECT_NEAR(rep.total_seconds(),
              rep.compute_seconds + rep.comm.modeled_max_seconds, 1e-12);
  EXPECT_GE(rep.comm_ratio(), 0.0);
  EXPECT_LE(rep.comm_ratio(), 1.0);
}

}  // namespace
}  // namespace hisim::dist
