// Fuzz-style round-trip testing of the OpenQASM path: random circuits are
// written, re-parsed, and must simulate to the same state; suite circuits
// round-trip too. Complements the targeted cases in test_qasm.cpp.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "common/rng.hpp"
#include "hisvsim/engine.hpp"
#include "opt/pass_manager.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "sv/simulator.hpp"
#include "testing/random_circuits.hpp"

namespace hisim::qasm {
namespace {

Circuit random_qelib_circuit(unsigned n, std::size_t gates,
                             std::uint64_t seed,
                             const testutil::CircuitKnobs& extra = {}) {
  testutil::CircuitKnobs knobs = extra;
  knobs.qasm_safe = true;
  Circuit c = testutil::random_circuit(n, gates, seed, knobs);
  c.set_name("fuzz");
  return c;
}

class QasmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QasmFuzz, WriteParseSimulateIdentical) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const unsigned n = 4 + static_cast<unsigned>(rng.below(4));
  const Circuit c = random_qelib_circuit(n, 30 + rng.below(40), seed * 13);
  const std::string text = write(c);
  const Circuit back = parse(text);
  EXPECT_EQ(back.num_qubits(), c.num_qubits());
  sv::FlatSimulator sim;
  EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(back)), 1e-9)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, QasmFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

class QasmOptFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// The optimizer's output must survive the QASM path: every gate the
// passes emit (or merge into existence — e.g. summed rotation angles)
// must be writable, re-parseable, and recompile to an equivalent plan.
// The knobs plant cancellations and identity angles so the pipeline
// actually fires on most seeds.
TEST_P(QasmOptFuzz, OptimizedCircuitsRoundTripAndRecompile) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  const unsigned n = 4 + static_cast<unsigned>(rng.below(4));
  testutil::CircuitKnobs knobs;
  knobs.duplicate_prob = 0.3;
  knobs.trivial_angle_prob = 0.15;
  const Circuit c =
      random_qelib_circuit(n, 40 + rng.below(30), seed * 7 + 1, knobs);
  const Circuit opt = optimize(c, 1);
  const Circuit back = parse(write(opt));  // writer must accept all of opt
  EXPECT_EQ(back.num_gates(), opt.num_gates()) << "seed " << seed;
  sv::FlatSimulator sim;
  const sv::StateVector ref = sim.simulate(c);
  // Optimization preserves the state up to a global phase; the QASM
  // round-trip itself is exact up to angle-printing precision.
  EXPECT_LT(testutil::max_abs_diff_up_to_phase(ref, sim.simulate(back)),
            1e-9)
      << "seed " << seed;
  // Recompiling the parsed text re-runs the default pipeline on its own
  // output plus anything printing exposed — still the same state.
  const Result r = Engine::compile(back, Options{}).execute();
  EXPECT_LT(testutil::max_abs_diff_up_to_phase(ref, r.state), 1e-9)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, QasmOptFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(QasmSuiteRoundTrip, AllBenchmarkFamilies) {
  for (const auto& b : circuits::qasmbench_suite()) {
    const Circuit c = b.make(8);
    const Circuit back = parse(write(c));
    sv::FlatSimulator sim;
    EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(back)), 1e-8)
        << b.name;
  }
}

TEST(QasmWriter, EmitsHeaderAndRegister) {
  Circuit c(3);
  c.add(Gate::h(0));
  const std::string text = write(c);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
}

TEST(QasmWriter, HighPrecisionAngles) {
  Circuit c(1);
  c.add(Gate::rz(0, 0.12345678901234567));
  const Circuit back = parse(write(c));
  EXPECT_NEAR(back.gate(0).params[0].value(), 0.12345678901234567, 1e-15);
}

TEST(QasmParser, WhitespaceAndCommentsRobust) {
  const Circuit c = parse(
      "// header comment\nOPENQASM 2.0;\n\n\nqreg   q[2]  ;\n"
      "h\nq[0];  // trailing\ncx q[0] , q[1];");
  EXPECT_EQ(c.num_gates(), 2u);
}

}  // namespace
}  // namespace hisim::qasm
