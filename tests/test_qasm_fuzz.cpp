// Fuzz-style round-trip testing of the OpenQASM path: random circuits are
// written, re-parsed, and must simulate to the same state; suite circuits
// round-trip too. Complements the targeted cases in test_qasm.cpp.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "common/rng.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "sv/simulator.hpp"

namespace hisim::qasm {
namespace {

Circuit random_qelib_circuit(unsigned n, std::size_t gates,
                             std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n, "fuzz");
  for (std::size_t i = 0; i < gates; ++i) {
    const Qubit a = static_cast<Qubit>(rng.below(n));
    Qubit b = static_cast<Qubit>(rng.below(n));
    while (b == a) b = static_cast<Qubit>(rng.below(n));
    Qubit d = static_cast<Qubit>(rng.below(n));
    while (d == a || d == b) d = static_cast<Qubit>(rng.below(n));
    const double th = rng.uniform(-3.14, 3.14);
    switch (rng.below(16)) {
      case 0: c.add(Gate::h(a)); break;
      case 1: c.add(Gate::x(a)); break;
      case 2: c.add(Gate::y(a)); break;
      case 3: c.add(Gate::sdg(a)); break;
      case 4: c.add(Gate::t(a)); break;
      case 5: c.add(Gate::rx(a, th)); break;
      case 6: c.add(Gate::ry(a, th)); break;
      case 7: c.add(Gate::u2(a, th, -th)); break;
      case 8: c.add(Gate::u3(a, th, th / 2, -th)); break;
      case 9: c.add(Gate::cx(a, b)); break;
      case 10: c.add(Gate::cz(a, b)); break;
      case 11: c.add(Gate::ch(a, b)); break;
      case 12: c.add(Gate::crz(a, b, th)); break;
      case 13: c.add(Gate::cu3(a, b, th, -th, th / 3)); break;
      case 14: c.add(Gate::swap(a, b)); break;
      case 15: c.add(Gate::ccx(a, b, d)); break;
    }
  }
  return c;
}

class QasmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QasmFuzz, WriteParseSimulateIdentical) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const unsigned n = 4 + static_cast<unsigned>(rng.below(4));
  const Circuit c = random_qelib_circuit(n, 30 + rng.below(40), seed * 13);
  const std::string text = write(c);
  const Circuit back = parse(text);
  EXPECT_EQ(back.num_qubits(), c.num_qubits());
  sv::FlatSimulator sim;
  EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(back)), 1e-9)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, QasmFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(QasmSuiteRoundTrip, AllBenchmarkFamilies) {
  for (const auto& b : circuits::qasmbench_suite()) {
    const Circuit c = b.make(8);
    const Circuit back = parse(write(c));
    sv::FlatSimulator sim;
    EXPECT_LT(sim.simulate(c).max_abs_diff(sim.simulate(back)), 1e-8)
        << b.name;
  }
}

TEST(QasmWriter, EmitsHeaderAndRegister) {
  Circuit c(3);
  c.add(Gate::h(0));
  const std::string text = write(c);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
}

TEST(QasmWriter, HighPrecisionAngles) {
  Circuit c(1);
  c.add(Gate::rz(0, 0.12345678901234567));
  const Circuit back = parse(write(c));
  EXPECT_NEAR(back.gate(0).params[0].value(), 0.12345678901234567, 1e-15);
}

TEST(QasmParser, WhitespaceAndCommentsRobust) {
  const Circuit c = parse(
      "// header comment\nOPENQASM 2.0;\n\n\nqreg   q[2]  ;\n"
      "h\nq[0];  // trailing\ncx q[0] , q[1];");
  EXPECT_EQ(c.num_gates(), 2u);
}

}  // namespace
}  // namespace hisim::qasm
