#include "circuit/gate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hisim {
namespace {

/// Every gate kind with a representative instance.
std::vector<Gate> representative_gates() {
  return {
      Gate::i(0),        Gate::x(0),         Gate::y(0),
      Gate::z(0),        Gate::h(0),         Gate::s(0),
      Gate::sdg(0),      Gate::t(0),         Gate::tdg(0),
      Gate::sx(0),       Gate::rx(0, 0.7),   Gate::ry(0, 1.1),
      Gate::rz(0, -0.4), Gate::p(0, 2.2),    Gate::u2(0, 0.3, 0.9),
      Gate::u3(0, 1.0, 0.5, -0.8),
      Gate::cx(0, 1),    Gate::cy(0, 1),     Gate::cz(0, 1),
      Gate::ch(0, 1),    Gate::crx(0, 1, 0.6), Gate::cry(0, 1, -1.2),
      Gate::crz(0, 1, 0.35), Gate::cp(0, 1, 1.7),
      Gate::cu3(0, 1, 0.4, 0.2, -0.6),
      Gate::swap(0, 1),  Gate::rzz(0, 1, 0.8), Gate::rxx(0, 1, -0.5),
      Gate::ccx(0, 1, 2), Gate::cswap(0, 1, 2),
      Gate::mcx({0, 1, 2, 3}),
  };
}

class GateUnitarity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GateUnitarity, MatrixIsUnitary) {
  const Gate g = representative_gates()[GetParam()];
  EXPECT_TRUE(g.matrix().is_unitary(1e-10)) << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GateUnitarity,
                         ::testing::Range<std::size_t>(
                             0, representative_gates().size()));

TEST(Gate, XMatrix) {
  const Matrix m = Gate::x(0).matrix();
  EXPECT_EQ(m(0, 1), cplx(1.0));
  EXPECT_EQ(m(1, 0), cplx(1.0));
  EXPECT_EQ(m(0, 0), cplx(0.0));
}

TEST(Gate, HMatrix) {
  const Matrix m = Gate::h(0).matrix();
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(m(1, 1) + s), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m(0, 0) - s), 0.0, 1e-12);
}

TEST(Gate, CxMatrixConvention) {
  // qubits [control=bit0, target=bit1]: |01> (idx 1: c=1,t=0) -> |11> (3).
  const Matrix m = Gate::cx(0, 1).matrix();
  EXPECT_EQ(m(3, 1), cplx(1.0));
  EXPECT_EQ(m(1, 3), cplx(1.0));
  EXPECT_EQ(m(0, 0), cplx(1.0));
  EXPECT_EQ(m(2, 2), cplx(1.0));
  EXPECT_EQ(m(1, 1), cplx(0.0));
}

TEST(Gate, CcxOnlyFlipsWithBothControls) {
  const Matrix m = Gate::ccx(0, 1, 2).matrix();
  // idx 3 = controls set, target 0 -> idx 7.
  EXPECT_EQ(m(7, 3), cplx(1.0));
  EXPECT_EQ(m(3, 7), cplx(1.0));
  for (std::size_t i : {0u, 1u, 2u, 4u, 5u, 6u}) EXPECT_EQ(m(i, i), cplx(1.0));
}

TEST(Gate, RzzDiagonalPhases) {
  const double th = 0.8;
  const Matrix m = Gate::rzz(0, 1, th).matrix();
  EXPECT_NEAR(std::arg(m(0, 0)), -th / 2, 1e-12);
  EXPECT_NEAR(std::arg(m(1, 1)), th / 2, 1e-12);
  EXPECT_NEAR(std::arg(m(2, 2)), th / 2, 1e-12);
  EXPECT_NEAR(std::arg(m(3, 3)), -th / 2, 1e-12);
}

TEST(Gate, RzRotationComposition) {
  // Rz(a) * Rz(b) == Rz(a+b).
  const Matrix ab = Gate::rz(0, 0.3).matrix() * Gate::rz(0, 0.9).matrix();
  EXPECT_LT(ab.max_abs_diff(Gate::rz(0, 1.2).matrix()), 1e-12);
}

TEST(Gate, SIsSqrtZ) {
  const Matrix s2 = Gate::s(0).matrix() * Gate::s(0).matrix();
  EXPECT_LT(s2.max_abs_diff(Gate::z(0).matrix()), 1e-12);
}

TEST(Gate, TIsSqrtS) {
  const Matrix t2 = Gate::t(0).matrix() * Gate::t(0).matrix();
  EXPECT_LT(t2.max_abs_diff(Gate::s(0).matrix()), 1e-12);
}

TEST(Gate, SxSquaredIsX) {
  const Matrix m = Gate::sx(0).matrix() * Gate::sx(0).matrix();
  EXPECT_LT(m.max_abs_diff(Gate::x(0).matrix()), 1e-12);
}

TEST(Gate, DiagonalFlagMatchesMatrix) {
  for (const Gate& g : representative_gates()) {
    const Matrix m = g.matrix();
    bool diag = true;
    for (std::size_t r = 0; r < m.rows(); ++r)
      for (std::size_t c = 0; c < m.cols(); ++c)
        if (r != c && std::abs(m(r, c)) > 1e-14) diag = false;
    if (g.is_diagonal()) {
      EXPECT_TRUE(diag) << g.to_string();
    }
  }
}

TEST(Gate, NumControls) {
  EXPECT_EQ(Gate::h(0).num_controls(), 0u);
  EXPECT_EQ(Gate::cx(0, 1).num_controls(), 1u);
  EXPECT_EQ(Gate::ccx(0, 1, 2).num_controls(), 2u);
  EXPECT_EQ(Gate::mcx({0, 1, 2, 3, 4}).num_controls(), 4u);
  EXPECT_EQ(Gate::swap(0, 1).num_controls(), 0u);
}

TEST(Gate, DuplicateQubitsRejected) {
  EXPECT_THROW(Gate::cx(3, 3), Error);
  EXPECT_THROW(Gate::ccx(1, 2, 1), Error);
}

TEST(Gate, UnitaryFactoryValidates) {
  EXPECT_THROW(
      Gate::unitary({0}, Matrix::from_rows(2, 2, {1.0, 0.0, 0.0, 2.0})), Error);
  EXPECT_THROW(Gate::unitary({0, 1}, Matrix::identity(2)), Error);
  const Gate ok = Gate::unitary({0}, Matrix::identity(2));
  EXPECT_EQ(ok.arity(), 1u);
}

TEST(Gate, ToStringFormat) {
  EXPECT_EQ(Gate::cx(0, 3).to_string(), "cx q[0],q[3]");
  EXPECT_EQ(Gate::rz(2, 0.5).to_string(), "rz(0.5) q[2]");
}

TEST(Gate, McxMatrixMatchesControlledX) {
  const Matrix m3 = Gate::mcx({0, 1, 2}).matrix();
  const Matrix ccx = Gate::ccx(0, 1, 2).matrix();
  EXPECT_LT(m3.max_abs_diff(ccx), 1e-14);
}

}  // namespace
}  // namespace hisim
