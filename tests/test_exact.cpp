#include "partition/exact.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"

namespace hisim::partition {
namespace {

TEST(Exact, SinglePartWhenFits) {
  const Circuit c = circuits::cat_state(5);
  const dag::CircuitDag d(c);
  const ExactResult r = partition_exact(d, 5);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.partitioning.num_parts(), 1u);
  validate(d, r.partitioning);
}

TEST(Exact, KnownMinimumChain) {
  // cat_state(6) with limit 3: the CX chain spans 6 qubits; consecutive
  // chain parts must overlap in one boundary qubit, so two parts cover at
  // most 3+3-1 = 5 qubits — the provable minimum is 3 parts.
  const Circuit c = circuits::cat_state(6);
  const dag::CircuitDag d(c);
  const ExactResult r = partition_exact(d, 3);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.partitioning.num_parts(), 3u);
  validate(d, r.partitioning);
}

TEST(Exact, NeverWorseThanHeuristics) {
  for (const char* name : {"bv", "cat_state", "ising", "cc", "qnn"}) {
    const Circuit c = circuits::make_by_name(name, 7);
    const dag::CircuitDag d(c);
    for (unsigned limit : {4u, 5u, 6u}) {
      const ExactResult r = partition_exact(d, limit, 1u << 20);
      validate(d, r.partitioning);
      PartitionOptions opt;
      opt.limit = limit;
      const Partitioning heur = partition_dagp(d, opt);
      EXPECT_LE(r.partitioning.num_parts(), heur.num_parts())
          << name << " limit " << limit;
      if (r.proven_optimal) {
        // dagP should be close to optimal (the paper: within 1-2 parts).
        EXPECT_LE(heur.num_parts(), r.partitioning.num_parts() + 2)
            << name << " limit " << limit;
      }
    }
  }
}

TEST(Exact, BvToyFromPaperFig4) {
  // Fig. 4: 6-qubit bv, limit 4 — dagP side shows 2 parts.
  const Circuit c = circuits::bv(6, 0b11111);
  const dag::CircuitDag d(c);
  const ExactResult r = partition_exact(d, 4);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_LE(r.partitioning.num_parts(), 3u);
  validate(d, r.partitioning);
}

TEST(Exact, BudgetTruncationStillValid) {
  const Circuit c = circuits::qft(7);
  const dag::CircuitDag d(c);
  const ExactResult r = partition_exact(d, 4, /*state_budget=*/64);
  EXPECT_FALSE(r.proven_optimal);
  validate(d, r.partitioning);
}

TEST(Exact, EmptyCircuit) {
  const Circuit c(3);
  const dag::CircuitDag d(c);
  const ExactResult r = partition_exact(d, 2);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.partitioning.num_parts(), 0u);
}

}  // namespace
}  // namespace hisim::partition
