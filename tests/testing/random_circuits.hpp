#pragma once

// Shared seeded generators for the test suite: random circuits over the
// full and QASM-safe gate alphabets, random normalized states, random
// qubit subsets, and the up-to-global-phase state comparison the
// optimization differential harness is built on. Everything is a pure
// function of its seed, so any failure line reproduces exactly.

#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sv/state_vector.hpp"

namespace hisim::testutil {

/// Generation knobs. Defaults reproduce the historical ad-hoc generators:
/// a uniform mixed-alphabet circuit with continuous angles.
struct CircuitKnobs {
  /// Restrict the mix to gates the QASM writer emits natively (the qelib1
  /// vocabulary — no RZZ/RXX/P/CP/MCX/CSWAP), for round-trip fuzzing.
  bool qasm_safe = false;
  /// Probability of repeating the previous gate verbatim — plants the
  /// adjacent inverse pairs and same-axis rotation runs the optimizer's
  /// cancel/merge passes feed on.
  double duplicate_prob = 0.0;
  /// Probability that a rotation angle is drawn from {0, 2pi, -2pi}
  /// instead of the continuous range — plants identity-angle drops.
  double trivial_angle_prob = 0.0;
};

/// Deterministic random circuit on `n` qubits (n >= 3: some gates take
/// three distinct qubits) over a mixed gate alphabet.
inline Circuit random_circuit(unsigned n, std::size_t gates,
                              std::uint64_t seed,
                              const CircuitKnobs& knobs = {}) {
  Rng rng(seed);
  Circuit c(n, "random");
  const auto angle = [&](double lo, double hi) -> double {
    if (knobs.trivial_angle_prob > 0.0 &&
        rng.uniform() < knobs.trivial_angle_prob) {
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      switch (rng.below(3)) {
        case 0: return 0.0;
        case 1: return kTwoPi;
        default: return -kTwoPi;
      }
    }
    return rng.uniform(lo, hi);
  };
  while (c.num_gates() < gates) {
    if (knobs.duplicate_prob > 0.0 && c.num_gates() > 0 &&
        rng.uniform() < knobs.duplicate_prob) {
      c.add(c.gate(c.num_gates() - 1));
      continue;
    }
    const Qubit a = static_cast<Qubit>(rng.below(n));
    Qubit b = static_cast<Qubit>(rng.below(n));
    while (b == a) b = static_cast<Qubit>(rng.below(n));
    Qubit d = static_cast<Qubit>(rng.below(n));
    while (d == a || d == b) d = static_cast<Qubit>(rng.below(n));
    if (knobs.qasm_safe) {
      const double th = angle(-3.14, 3.14);
      switch (rng.below(16)) {
        case 0: c.add(Gate::h(a)); break;
        case 1: c.add(Gate::x(a)); break;
        case 2: c.add(Gate::y(a)); break;
        case 3: c.add(Gate::sdg(a)); break;
        case 4: c.add(Gate::t(a)); break;
        case 5: c.add(Gate::rx(a, th)); break;
        case 6: c.add(Gate::ry(a, th)); break;
        case 7: c.add(Gate::u2(a, th, -th)); break;
        case 8: c.add(Gate::u3(a, th, th / 2, -th)); break;
        case 9: c.add(Gate::cx(a, b)); break;
        case 10: c.add(Gate::cz(a, b)); break;
        case 11: c.add(Gate::ch(a, b)); break;
        case 12: c.add(Gate::crz(a, b, th)); break;
        case 13: c.add(Gate::cu3(a, b, th, -th, th / 3)); break;
        case 14: c.add(Gate::swap(a, b)); break;
        case 15: c.add(Gate::ccx(a, b, d)); break;
      }
      continue;
    }
    switch (rng.below(12)) {
      case 0: c.add(Gate::h(a)); break;
      case 1: c.add(Gate::x(a)); break;
      case 2: c.add(Gate::rx(a, angle(0, 3.1))); break;
      case 3: c.add(Gate::rz(a, angle(-3.1, 3.1))); break;
      case 4: c.add(Gate::u3(a, rng.uniform(0, 3), rng.uniform(0, 3),
                             rng.uniform(0, 3))); break;
      case 5: c.add(Gate::cx(a, b)); break;
      case 6: c.add(Gate::cz(a, b)); break;
      case 7: c.add(Gate::cp(a, b, angle(-3, 3))); break;
      case 8: c.add(Gate::swap(a, b)); break;
      case 9: c.add(Gate::rzz(a, b, angle(-3, 3))); break;
      case 10: c.add(Gate::ccx(a, b, d)); break;
      case 11: c.add(Gate::cswap(a, b, d)); break;
    }
  }
  return c;
}

/// Deterministic Haar-ish normalized random state on `n` qubits.
inline sv::StateVector random_state(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  sv::StateVector s(n);
  double norm = 0.0;
  for (Index i = 0; i < s.size(); ++i) {
    s[i] = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    norm += std::norm(s[i]);
  }
  const double inv = 1.0 / std::sqrt(norm);
  for (Index i = 0; i < s.size(); ++i) s[i] *= inv;
  return s;
}

/// Random subset of distinct qubits in [0, n), at most `max_size` of them
/// (duplicates in the draw are discarded, so the subset may be smaller —
/// possibly empty only when a duplicate-heavy draw collapses).
inline std::vector<Qubit> random_qubit_subset(Rng& rng, unsigned n,
                                              unsigned max_size) {
  const unsigned size = 1 + static_cast<unsigned>(rng.below(max_size));
  std::vector<Qubit> part;
  for (unsigned i = 0; i < size; ++i) {
    const Qubit q = static_cast<Qubit>(rng.below(n));
    bool dup = false;
    for (Qubit seen : part) dup = dup || seen == q;
    if (!dup) part.push_back(q);
  }
  return part;
}

/// Largest per-amplitude difference between `a` and `b` after aligning
/// b's global phase to a's (via the phase of <a|b>). Two states that are
/// equal up to a global phase — e.g. before/after an optimization that
/// dropped an RX(2pi) = -I — compare as ~0; genuinely different states
/// keep an O(1) difference. Sizes must match.
inline double max_abs_diff_up_to_phase(const sv::StateVector& a,
                                       const sv::StateVector& b) {
  if (a.size() != b.size()) return 1.0;
  cplx overlap = 0.0;
  for (Index i = 0; i < a.size(); ++i)
    overlap += std::conj(a[i]) * b[i];
  const double mag = std::abs(overlap);
  // Orthogonal states have no meaningful phase alignment; any phase
  // reports them as different, which is all the caller needs.
  const cplx phase = mag > 1e-12 ? overlap / mag : cplx(1.0, 0.0);
  double worst = 0.0;
  for (Index i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i] * std::conj(phase)));
  return worst;
}

}  // namespace hisim::testutil
