#include "sv/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bits.hpp"
#include "sv/simulator.hpp"
#include "testing/random_circuits.hpp"

namespace hisim::sv {
namespace {

using testutil::random_state;

/// Reference implementation: expand the gate to a full 2^n matrix via its
/// local matrix and apply by dense mat-vec. O(4^n) — tiny n only.
StateVector apply_reference(const StateVector& in, const Gate& g) {
  const unsigned n = in.num_qubits();
  const Matrix u = g.matrix();
  const unsigned k = g.arity();
  StateVector out(n);
  out[0] = 0.0;
  for (Index row = 0; row < in.size(); ++row) {
    cplx acc = 0.0;
    // local code of `row` w.r.t. gate qubits
    Index rc = 0;
    for (unsigned j = 0; j < k; ++j)
      rc |= static_cast<Index>(bits::test(row, g.qubits[j])) << j;
    for (Index cc = 0; cc < (Index{1} << k); ++cc) {
      // column index: row with gate-qubit bits replaced by cc
      Index col = row;
      for (unsigned j = 0; j < k; ++j)
        col = bits::with_bit(col, g.qubits[j], bits::test(cc, j));
      acc += u(rc, cc) * in[col];
    }
    out[row] = acc;
  }
  return out;
}

std::vector<Gate> gates_under_test() {
  return {
      Gate::x(2),          Gate::h(0),           Gate::y(3),
      Gate::z(1),          Gate::s(2),           Gate::tdg(0),
      Gate::sx(1),         Gate::rx(3, 0.7),     Gate::ry(0, -1.3),
      Gate::rz(2, 2.1),    Gate::p(1, 0.5),      Gate::u2(0, 0.1, 0.2),
      Gate::u3(3, 1.1, -0.4, 0.9),
      Gate::cx(0, 3),      Gate::cx(3, 0),       Gate::cy(1, 2),
      Gate::cz(2, 0),      Gate::ch(3, 1),       Gate::crx(0, 2, 0.8),
      Gate::cry(2, 3, -0.6), Gate::crz(1, 0, 1.4), Gate::cp(3, 2, 0.3),
      Gate::cu3(1, 3, 0.2, 0.4, -0.9),
      Gate::swap(0, 2),    Gate::swap(3, 1),     Gate::rzz(1, 3, 0.7),
      Gate::rxx(0, 2, -0.4),
      Gate::ccx(0, 1, 3),  Gate::ccx(3, 2, 0),   Gate::cswap(2, 0, 3),
      Gate::mcx({1, 2, 3, 0}),
  };
}

class KernelVsReference : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelVsReference, MatchesDenseApplication) {
  const Gate g = gates_under_test()[GetParam()];
  StateVector s = random_state(4, 1000 + GetParam());
  const StateVector ref = apply_reference(s, g);
  apply_gate(s, g);
  EXPECT_LT(s.max_abs_diff(ref), 1e-12) << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllGates, KernelVsReference,
                         ::testing::Range<std::size_t>(
                             0, gates_under_test().size()));

TEST(Kernels, PreservesNorm) {
  StateVector s = random_state(6, 7);
  for (const Gate& g : gates_under_test()) {
    // remap qubits into 6-qubit range deterministically
    apply_gate(s, g);
    EXPECT_NEAR(s.norm(), 1.0, 1e-10) << g.to_string();
  }
}

TEST(Kernels, HadamardTwiceIsIdentity) {
  StateVector s = random_state(5, 3);
  StateVector orig = s;
  apply_gate(s, Gate::h(2));
  apply_gate(s, Gate::h(2));
  EXPECT_LT(s.max_abs_diff(orig), 1e-12);
}

TEST(Kernels, BellState) {
  StateVector s(2);
  apply_gate(s, Gate::h(0));
  apply_gate(s, Gate::cx(0, 1));
  const double r = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(s[0] - r), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[3] - r), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[2]), 0.0, 1e-12);
}

TEST(Kernels, XFlipsBasisState) {
  StateVector s(3);
  apply_gate(s, Gate::x(1));
  EXPECT_NEAR(std::abs(s[0b010] - 1.0), 0.0, 1e-15);
}

TEST(Kernels, GhzProbabilities) {
  StateVector s(3);
  apply_gate(s, Gate::h(0));
  apply_gate(s, Gate::cx(0, 1));
  apply_gate(s, Gate::cx(1, 2));
  for (Qubit q = 0; q < 3; ++q) EXPECT_NEAR(s.prob_one(q), 0.5, 1e-12);
}

TEST(Kernels, RemappedGateActsOnSlots) {
  // cx(0,1) remapped through slot_of = {2,0,1}: acts on state qubits 2,0.
  StateVector a = random_state(3, 5), b = a;
  const std::vector<Qubit> slot_of = {2, 0, 1};
  apply_gate_remapped(a, Gate::cx(0, 1), slot_of);
  apply_gate(b, Gate::cx(2, 0));
  EXPECT_LT(a.max_abs_diff(b), 1e-15);
}

TEST(Kernels, FlopsModel) {
  EXPECT_GT(gate_flops(Gate::h(0), 10), 0.0);
  EXPECT_GT(gate_flops(Gate::rz(0, 1.0), 10), 0.0);
  // Pure index permutations compute nothing.
  EXPECT_EQ(gate_flops(Gate::x(0), 10), 0.0);
  EXPECT_EQ(gate_flops(Gate::cx(0, 1), 10), 0.0);
  EXPECT_EQ(gate_flops(Gate::ccx(0, 1, 2), 10), 0.0);
  EXPECT_EQ(gate_flops(Gate::swap(0, 1), 10), 0.0);
  EXPECT_EQ(gate_flops(Gate::cswap(0, 1, 2), 10), 0.0);
  // Controls reduce work by 2^nc (compact enumeration).
  EXPECT_EQ(gate_flops(Gate::crx(0, 1, 0.5), 10),
            gate_flops(Gate::rx(1, 0.5), 10) / 2.0);
  EXPECT_EQ(gate_flops(Gate::cp(0, 1, 0.5), 10),
            gate_flops(Gate::p(1, 0.5), 10) / 2.0);
  // Fused 4x4 blocks: 120 FLOPs per 4 amplitudes = 30 per amplitude.
  EXPECT_EQ(gate_flops(Gate::rxx(0, 1, 0.5), 10), 30.0 * 1024.0);
}

TEST(StateVectorTest, FidelitySelf) {
  const StateVector s = random_state(5, 11);
  EXPECT_NEAR(s.fidelity(s), 1.0, 1e-10);
}

TEST(StateVectorTest, ResetRestoresGround) {
  StateVector s = random_state(4, 13);
  s.reset();
  EXPECT_NEAR(std::abs(s[0] - 1.0), 0.0, 1e-15);
  EXPECT_NEAR(s.norm(), 1.0, 1e-15);
}

}  // namespace
}  // namespace hisim::sv
