#include "circuits/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sv/simulator.hpp"

namespace hisim::circuits {
namespace {

TEST(Generators, SuiteHasThirteenEntries) {
  const auto& suite = qasmbench_suite();
  ASSERT_EQ(suite.size(), 13u);
  EXPECT_EQ(suite[0].name, "cat_state");
  EXPECT_EQ(suite.back().name, "adder37");
  for (const auto& b : suite) {
    EXPECT_GE(b.paper_qubits, 30u);
    EXPECT_GT(b.paper_gates, 0u);
    EXPECT_GE(b.default_qubits, 10u);
  }
}

TEST(Generators, AllBuildAtDefaultSizeAndUseAllQubits) {
  for (const auto& b : qasmbench_suite()) {
    const Circuit c = b.make(12);
    EXPECT_EQ(c.num_qubits(), 12u) << b.name;
    EXPECT_GT(c.num_gates(), 0u) << b.name;
    EXPECT_GE(c.used_qubits(), 11u) << b.name;  // adder may idle one qubit
  }
}

TEST(Generators, MakeByNameMatchesFactory) {
  const Circuit a = make_by_name("bv", 10);
  EXPECT_EQ(a.name(), "bv");
  EXPECT_EQ(a.num_qubits(), 10u);
  EXPECT_THROW(make_by_name("nope", 10), Error);
}

TEST(CatState, ProducesGhz) {
  const auto s = sv::FlatSimulator().simulate(cat_state(5));
  const double r = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(s[0] - r), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[31] - r), 0.0, 1e-12);
  double other = 0;
  for (Index i = 1; i < 31; ++i) other += std::norm(s[i]);
  EXPECT_NEAR(other, 0.0, 1e-12);
}

TEST(Bv, RecoversSecret) {
  const std::uint64_t secret = 0b101101;
  const unsigned n = 8;  // 7 data qubits + ancilla
  const auto s = sv::FlatSimulator().simulate(bv(n, secret));
  // Data register must be exactly |secret> (ancilla in |-> superposition).
  for (Qubit q = 0; q + 1 < n; ++q) {
    const double expect = ((secret >> q) & 1u) ? 1.0 : 0.0;
    EXPECT_NEAR(s.prob_one(q), expect, 1e-10) << "qubit " << q;
  }
}

TEST(Qft, OnGroundStateIsUniform) {
  const auto s = sv::FlatSimulator().simulate(qft(5));
  const double amp = 1.0 / std::sqrt(32.0);
  for (Index i = 0; i < s.size(); ++i)
    EXPECT_NEAR(std::abs(s[i]), amp, 1e-10);
}

TEST(Grover, AmplifiesMarkedState) {
  const unsigned n = 6;  // 5 search qubits + ancilla
  const std::uint64_t marked = 0b10110;
  // Optimal iterations ~ pi/4 * sqrt(32) ~ 4.
  const auto s = sv::FlatSimulator().simulate(grover(n, 4, marked));
  // P(search register == marked), summed over the ancilla qubit.
  double p_marked = 0.0;
  for (Index anc = 0; anc < 2; ++anc)
    p_marked += std::norm(s[(anc << 5) | marked]);
  EXPECT_GT(p_marked, 0.9);
}

TEST(Qpe, EstimatesPhase) {
  // phi = 3/16 is exactly representable with 4 counting qubits.
  const unsigned n = 5;
  const double phi = 3.0 / 16.0;
  const auto s = sv::FlatSimulator().simulate(qpe(n, phi));
  // Counting register must be |3> read in reversed bit order: the iqft here
  // leaves the estimate bit-reversed across qubits [0, 4).
  double best_p = 0.0;
  Index best = 0;
  for (Index i = 0; i < s.size(); ++i)
    if (std::norm(s[i]) > best_p) {
      best_p = std::norm(s[i]);
      best = i;
    }
  EXPECT_GT(best_p, 0.8);
  // Extract counting bits (qubit 4 is the eigenstate qubit, must be 1).
  EXPECT_EQ((best >> 4) & 1u, 1u);
  // Reversed counting value: bit j of estimate = qubit (t-1-j).
  Index est = 0;
  for (unsigned j = 0; j < 4; ++j)
    if ((best >> (3 - j)) & 1u) est |= Index{1} << j;
  EXPECT_EQ(est, 3u);
}

TEST(Adder, AddsCorrectly) {
  // n=10 -> m=4 bits per addend.
  const std::uint64_t a = 0b0101, b = 0b0110;  // 5 + 6 = 11
  const auto s = sv::FlatSimulator().simulate(adder(10, a, b));
  // Find the single basis state.
  Index best = 0;
  double best_p = 0;
  for (Index i = 0; i < s.size(); ++i)
    if (std::norm(s[i]) > best_p) {
      best_p = std::norm(s[i]);
      best = i;
    }
  EXPECT_NEAR(best_p, 1.0, 1e-9);
  // Layout: cin=q0, a=q1..q4, b=q5..q8, cout=q9; b holds the sum.
  const Index sum = (best >> 5) & 0xF;
  const Index cout = (best >> 9) & 1;
  EXPECT_EQ(sum | (cout << 4), a + b);
  // a register preserved.
  EXPECT_EQ((best >> 1) & 0xF, a);
}

TEST(Ising, NormalizedAndEntangling) {
  const auto s = sv::FlatSimulator().simulate(ising(6, 2, 3));
  EXPECT_NEAR(s.norm(), 1.0, 1e-10);
}

TEST(Qaoa, DeterministicForSeed) {
  const Circuit a = qaoa(8, 2, 5), b = qaoa(8, 2, 5);
  EXPECT_TRUE(a == b);
  const Circuit c = qaoa(8, 2, 6);
  EXPECT_FALSE(a == c);
}

TEST(Generators, GateCountsScaleWithPaperShapes) {
  // qft is quadratic, bv/cat linear, qaoa ~ rounds * edges.
  EXPECT_GT(qft(20).num_gates(), qft(10).num_gates() * 3);
  EXPECT_LT(bv(20).num_gates(), 4 * 20u);
  EXPECT_GT(qpe(12).num_gates(), qft(11).num_gates());
}

}  // namespace
}  // namespace hisim::circuits
