#include "common/bits.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace hisim::bits {
namespace {

TEST(Bits, TestBit) {
  EXPECT_TRUE(test(0b1010, 1));
  EXPECT_FALSE(test(0b1010, 0));
  EXPECT_TRUE(test(Index{1} << 63, 63));
}

TEST(Bits, WithBit) {
  EXPECT_EQ(with_bit(0b1010, 0, true), 0b1011u);
  EXPECT_EQ(with_bit(0b1010, 1, false), 0b1000u);
  EXPECT_EQ(with_bit(0, 5, true), 0b100000u);
}

TEST(Bits, InsertZeroShiftsHighBits) {
  EXPECT_EQ(insert_zero(0b1011, 1), 0b10101u);
  EXPECT_EQ(insert_zero(0b111, 0), 0b1110u);
  EXPECT_EQ(insert_zero(0b111, 3), 0b0111u);
  EXPECT_EQ(insert_zero(0, 4), 0u);
}

TEST(Bits, InsertZeroEnumeratesPairBases) {
  // For qubit q, {insert_zero(m, q)} must be exactly the indices with
  // bit q == 0.
  const unsigned n = 5, q = 2;
  std::set<Index> seen;
  for (Index m = 0; m < (Index{1} << (n - 1)); ++m) {
    const Index i = insert_zero(m, q);
    EXPECT_FALSE(test(i, q));
    seen.insert(i);
  }
  EXPECT_EQ(seen.size(), Index{1} << (n - 1));
}

TEST(Bits, DepositExtractRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const Index mask = rng.next() & 0xFFFFFFFFull;
    const unsigned k = popcount(mask);
    const Index x = rng.next() & ((k >= 64 ? ~Index{0} : (Index{1} << k) - 1));
    const Index d = deposit(x, mask);
    EXPECT_EQ(d & ~mask, 0u);
    EXPECT_EQ(extract(d, mask), x);
  }
}

TEST(Bits, DepositOrderedLowToHigh) {
  EXPECT_EQ(deposit(0b11, 0b1010), 0b1010u);
  EXPECT_EQ(deposit(0b01, 0b1010), 0b0010u);
  EXPECT_EQ(deposit(0b10, 0b1010), 0b1000u);
}

TEST(Bits, Pow2AndLog) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(Index{1} << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(Index{1} << 40), 40u);
  EXPECT_EQ(log2_floor((Index{1} << 40) + 5), 40u);
}

TEST(Bits, DepositComplementPartitionsIndexSpace) {
  // base from ~mask plus offsets from mask must cover [0, 2^n) uniquely.
  const unsigned n = 6;
  const Index mask = 0b011010;
  const Index inv = ~mask & ((Index{1} << n) - 1);
  const unsigned k = popcount(mask);
  std::set<Index> seen;
  for (Index m = 0; m < (Index{1} << (n - k)); ++m)
    for (Index t = 0; t < (Index{1} << k); ++t)
      seen.insert(deposit(m, inv) | deposit(t, mask));
  EXPECT_EQ(seen.size(), Index{1} << n);
}

}  // namespace
}  // namespace hisim::bits
