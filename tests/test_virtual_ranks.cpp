// Footnote 2 of the paper: the power-of-two MPI rank constraint can be
// relaxed by mapping virtual ranks onto physical ranks. These tests cover
// the block mapping, the free co-located traffic, and end-to-end
// correctness on non-power-of-two host counts.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "sv/simulator.hpp"

namespace hisim::dist {
namespace {

TEST(VirtualRanks, BlockMappingCoversAll) {
  DistState st(8, 3, /*physical_ranks=*/3);  // 8 vranks on 3 hosts
  EXPECT_EQ(st.physical_ranks(), 3u);
  std::vector<int> per_host(3, 0);
  for (unsigned v = 0; v < st.num_ranks(); ++v) {
    const unsigned h = st.physical_of(v);
    ASSERT_LT(h, 3u);
    ++per_host[h];
  }
  // ceil(8/3)=3 block: hosts get 3,3,2.
  EXPECT_EQ(per_host[0], 3);
  EXPECT_EQ(per_host[1], 3);
  EXPECT_EQ(per_host[2], 2);
}

TEST(VirtualRanks, DefaultIsOneToOne) {
  DistState st(6, 2);
  EXPECT_EQ(st.physical_ranks(), 4u);
  for (unsigned v = 0; v < 4; ++v) EXPECT_EQ(st.physical_of(v), v);
}

TEST(VirtualRanks, RejectsBadCounts) {
  EXPECT_THROW(DistState(6, 2, 5), Error);  // more hosts than vranks
}

TEST(VirtualRanks, CoLocatedTrafficIsFree) {
  // All virtual ranks on ONE host: redistribution moves data but costs
  // no network bytes.
  DistState st(8, 3, /*physical_ranks=*/1);
  NetworkModel net;
  CommStats stats;
  const RankLayout target = RankLayout::for_part(8, 3, {5, 6, 7}, st.layout());
  st.redistribute(target, net, stats);
  EXPECT_EQ(stats.bytes_total, 0u);
  EXPECT_EQ(stats.messages_total, 0u);
}

TEST(VirtualRanks, FewerHostsFewerBytes) {
  auto bytes_with_hosts = [](unsigned hosts) {
    DistState st(8, 3, hosts);
    NetworkModel net;
    CommStats stats;
    const RankLayout target =
        RankLayout::for_part(8, 3, {5, 6, 7}, st.layout());
    st.redistribute(target, net, stats);
    return stats.bytes_total;
  };
  EXPECT_GE(bytes_with_hosts(8), bytes_with_hosts(4));
  EXPECT_GE(bytes_with_hosts(4), bytes_with_hosts(2));
  EXPECT_EQ(bytes_with_hosts(1), 0u);
}

class VirtualRankCorrectness : public ::testing::TestWithParam<unsigned> {};

TEST_P(VirtualRankCorrectness, DistributedMatchesFlat) {
  const unsigned hosts = GetParam();
  const Circuit c = circuits::ising(9, 2, 6);
  DistState state(9, 3, hosts);
  DistributedHiSvSim::Options opt;
  opt.process_qubits = 3;
  DistributedHiSvSim().run(c, opt, state);
  const auto flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.to_state_vector().max_abs_diff(flat), 1e-10)
      << hosts << " hosts";
}

INSTANTIATE_TEST_SUITE_P(Hosts, VirtualRankCorrectness,
                         ::testing::Values(1u, 2u, 3u, 5u, 6u, 7u, 8u));

TEST(VirtualRanks, IqsBaselineAlsoWorks) {
  const Circuit c = circuits::bv(9);
  DistState state(9, 3, 3);
  IqsBaselineSimulator().run(c, state);
  const auto flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.to_state_vector().max_abs_diff(flat), 1e-10);
}

}  // namespace
}  // namespace hisim::dist
