#include "partition/multilevel.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"

namespace hisim {
namespace {

TEST(TwoLevel, StructureValid) {
  const Circuit c = circuits::qft(9);
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = 6;
  const auto two = partition::partition_two_level(d, opt, 3);
  partition::validate(d, two.level1);
  ASSERT_EQ(two.level2.size(), two.level1.num_parts());
  for (std::size_t i = 0; i < two.level2.size(); ++i) {
    const Circuit sub =
        partition::part_subcircuit(c, two.level1.parts[i]);
    const dag::CircuitDag sub_dag(sub);
    partition::validate(sub_dag, two.level2[i]);
    EXPECT_LE(two.level2[i].max_working_set(), 3u);
  }
  EXPECT_GE(two.total_inner_parts(), two.level1.num_parts());
}

TEST(TwoLevel, RejectsInvertedLimits) {
  const Circuit c = circuits::bv(8);
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = 4;
  EXPECT_THROW(partition::partition_two_level(d, opt, 6), Error);
}

struct MlCase {
  std::string name;
  unsigned qubits;
  unsigned l1, l2;
  unsigned pad;
};

class TwoLevelSim : public ::testing::TestWithParam<MlCase> {};

TEST_P(TwoLevelSim, MatchesFlat) {
  const MlCase& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = tc.l1;
  const auto two = partition::partition_two_level(d, opt, tc.l2);
  sv::StateVector state(c.num_qubits());
  const auto stats =
      sv::HierarchicalSimulator().run(c, two, state, tc.pad);
  const sv::StateVector flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.max_abs_diff(flat), 1e-10) << tc.name;
  EXPECT_EQ(stats.parts, two.level1.num_parts());
  EXPECT_EQ(stats.inner_parts, two.total_inner_parts());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TwoLevelSim,
    ::testing::Values(MlCase{"qft", 8, 5, 3, 0}, MlCase{"qft", 8, 5, 3, 4},
                      MlCase{"qaoa", 8, 5, 3, 0},
                      MlCase{"ising", 9, 6, 3, 0},
                      MlCase{"qpe", 8, 5, 3, 5},
                      MlCase{"adder37", 10, 6, 4, 0},
                      MlCase{"qnn", 8, 5, 2, 0}),
    [](const auto& ti) {
      return ti.param.name + "_l1" + std::to_string(ti.param.l1) + "_l2" +
             std::to_string(ti.param.l2) + "_pad" +
             std::to_string(ti.param.pad);
    });

TEST(TwoLevelSim, PaddingReducesInnerIterations) {
  // Padding enlarges inner vectors, so inner traffic per gate grows but
  // gather rounds shrink; correctness must hold either way (checked above).
  const Circuit c = circuits::qft(8);
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = 6;
  const auto two = partition::partition_two_level(d, opt, 2);
  sv::StateVector a(8), b(8);
  sv::HierarchicalSimulator sim;
  sim.run(c, two, a, 0);
  sim.run(c, two, b, 6);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
}

}  // namespace
}  // namespace hisim
