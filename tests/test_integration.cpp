// End-to-end integration: every benchmark family flows through the whole
// stack — QASM round-trip, fusion, all three partitioners, single-node
// hierarchical, two-level, distributed HiSVSIM, IQS baseline — and all
// paths must agree with the flat reference on the final amplitudes.

#include <gtest/gtest.h>

#include "circuit/fusion.hpp"
#include "circuits/generators.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "hisvsim/hisvsim.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "sv/observables.hpp"

namespace hisim {
namespace {

class FullPipeline : public ::testing::TestWithParam<std::string> {};

TEST_P(FullPipeline, AllPathsAgreeOnSuiteCircuit) {
  const std::string name = GetParam();
  const unsigned n = 9;
  const Circuit c = circuits::make_by_name(name, n);
  const sv::StateVector ref = sv::FlatSimulator().simulate(c);

  // 1. QASM round trip.
  {
    const Circuit back = qasm::parse(qasm::write(c));
    EXPECT_LT(sv::FlatSimulator().simulate(back).max_abs_diff(ref), 1e-8)
        << name << " qasm";
  }

  // 2. Fusion (skip when a wide MCX exceeds the fusion width).
  {
    unsigned max_arity = 1;
    for (const Gate& g : c.gates())
      max_arity = std::max(max_arity, g.arity());
    FusionOptions fo;
    fo.max_qubits = std::max(3u, std::min(max_arity, 6u));
    const Circuit fused = fuse(c, fo);
    EXPECT_LE(fused.num_gates(), c.num_gates());
    EXPECT_LT(sv::FlatSimulator().simulate(fused).max_abs_diff(ref), 1e-8)
        << name << " fusion";
  }

  // 3. All strategies, single-node hierarchical.
  unsigned max_arity = 1;
  for (const Gate& g : c.gates()) max_arity = std::max(max_arity, g.arity());
  const unsigned limit = std::max(5u, max_arity);
  for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                 partition::Strategy::DagP}) {
    RunOptions opt;
    opt.strategy = s;
    opt.limit = limit;
    RunReport rep;
    const auto state = HiSvSim(opt).simulate(c, &rep);
    EXPECT_LT(state.max_abs_diff(ref), 1e-9)
        << name << " " << partition::strategy_name(s);
    EXPECT_GE(rep.parts, 1u);
  }

  // 4. Two-level.
  if (limit > 3 && max_arity <= 3) {
    RunOptions opt;
    opt.limit = limit;
    opt.level2_limit = 3;
    EXPECT_LT(HiSvSim(opt).simulate(c).max_abs_diff(ref), 1e-9)
        << name << " two-level";
  }

  // 5. Distributed HiSVSIM + IQS baseline.
  {
    RunOptions opt;
    opt.process_qubits = 2;
    const auto state = HiSvSim(opt).simulate_distributed(c);
    EXPECT_LT(state.max_abs_diff(ref), 1e-9) << name << " distributed";
    dist::DistState iqs_state(n, 2);
    dist::IqsBaselineSimulator().run(c, iqs_state);
    EXPECT_LT(iqs_state.to_state_vector().max_abs_diff(ref), 1e-9)
        << name << " iqs";
  }

  // 6. Observables stay physical.
  EXPECT_NEAR(ref.norm(), 1.0, 1e-9);
  for (Qubit q = 0; q < n; ++q) {
    sv::PauliString z;
    z.factors = {{q, sv::Pauli::Z}};
    const double ez = sv::expectation(ref, z);
    EXPECT_GE(ez, -1.0 - 1e-9) << name;
    EXPECT_LE(ez, 1.0 + 1e-9) << name;
    EXPECT_NEAR(ez, 1.0 - 2.0 * ref.prob_one(q), 1e-9) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, FullPipeline,
    ::testing::Values("cat_state", "bv", "qaoa", "cc", "ising", "qft", "qnn",
                      "grover", "qpe", "adder37"),
    [](const auto& ti) { return ti.param; });

TEST(Integration, FusionThenDistributedThenSampling) {
  // The full user workflow: fuse, partition with dagP, run on the
  // simulated cluster, then sample outcomes.
  const Circuit c = circuits::ising(10, 3, 21);
  const Circuit fused = fuse(c, {.max_qubits = 3, .keep_wide_gates = true});
  dist::DistState state(10, 2);
  dist::DistributedHiSvSim::Options opt;
  opt.process_qubits = 2;
  const auto rep = dist::DistributedHiSvSim().run(fused, opt, state);
  EXPECT_GT(rep.parts, 0u);
  const auto sv_full = state.to_state_vector();
  EXPECT_LT(sv_full.max_abs_diff(sv::FlatSimulator().simulate(c)), 1e-9);
  Rng rng(4);
  const auto shots = sv::sample(sv_full, 200, rng);
  EXPECT_EQ(shots.size(), 200u);
  for (Index v : shots) EXPECT_LT(v, dim(10));
}

TEST(Integration, OverlappedTimeReportedForSuite) {
  for (const char* name : {"bv", "ising", "qaoa"}) {
    const Circuit c = circuits::make_by_name(name, 10);
    dist::DistState state(10, 2);
    dist::DistributedHiSvSim::Options opt;
    opt.process_qubits = 2;
    const auto rep = dist::DistributedHiSvSim().run(c, opt, state);
    EXPECT_LE(rep.total_seconds_overlapped(), rep.total_seconds() + 1e-9)
        << name;
  }
}

}  // namespace
}  // namespace hisim
