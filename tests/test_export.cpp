#include "partition/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "circuits/generators.hpp"
#include "qasm/parser.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"

namespace hisim::partition {
namespace {

Partitioning make_dagp(const Circuit& c, unsigned limit) {
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = limit;
  return make_partition(d, opt);
}

TEST(Export, StructureMatchesParts) {
  const Circuit c = circuits::ising(9, 2, 4);
  const auto parts = make_dagp(c, 5);
  const auto exported = export_parts(c, parts);
  ASSERT_EQ(exported.size(), parts.num_parts());
  std::size_t total_gates = 0;
  for (std::size_t i = 0; i < exported.size(); ++i) {
    EXPECT_EQ(exported[i].circuit.num_qubits(),
              parts.parts[i].working_set());
    EXPECT_EQ(exported[i].circuit.num_gates(), parts.parts[i].gates.size());
    EXPECT_EQ(exported[i].qubit_map, parts.parts[i].qubits);
    total_gates += exported[i].circuit.num_gates();
  }
  EXPECT_EQ(total_gates, c.num_gates());
}

TEST(Export, QasmRoundTripsPerPart) {
  const Circuit c = circuits::qft(8);
  const auto parts = make_dagp(c, 5);
  for (const auto& ep : export_parts(c, parts)) {
    const Circuit back = qasm::parse(ep.qasm);
    EXPECT_EQ(back.num_qubits(), ep.circuit.num_qubits());
    // Parsing may re-express some kinds, so compare simulated states.
    sv::FlatSimulator sim;
    EXPECT_LT(sim.simulate(ep.circuit).max_abs_diff(sim.simulate(back)),
              1e-9);
  }
}

TEST(Export, RemappedPartsReproduceFullState) {
  // Re-execute the exported parts through the gather/execute/scatter
  // machinery: the final state must equal the flat simulation — this is
  // exactly the hybrid GPU workflow of Sec. VI.
  const Circuit c = circuits::qaoa(8, 2, 11);
  const auto parts = make_dagp(c, 5);
  const auto exported = export_parts(c, parts);
  sv::StateVector state(c.num_qubits());
  sv::HierarchicalStats stats;
  for (std::size_t pi = 0; pi < exported.size(); ++pi) {
    // Run the remapped circuit against the outer vector via run_part on
    // the original labels (the export must agree with that path).
    sv::run_part(c, parts.parts[pi].gates, parts.parts[pi].qubits, state,
                 stats);
  }
  EXPECT_LT(state.max_abs_diff(sv::FlatSimulator().simulate(c)), 1e-10);
}

TEST(Export, WritesFilesAndManifest) {
  const Circuit c = circuits::bv(8);
  const auto parts = make_dagp(c, 4);
  const std::string prefix = "/tmp/hisim_export_test";
  const std::string manifest = write_part_files(c, parts, prefix);
  std::ifstream m(manifest);
  ASSERT_TRUE(m.good());
  std::string line;
  std::getline(m, line);
  EXPECT_NE(line.find("circuit: bv"), std::string::npos);
  std::size_t files = 0;
  while (std::getline(m, line))
    if (!line.empty()) ++files;
  EXPECT_EQ(files, parts.num_parts());
  for (std::size_t pi = 0; pi < parts.num_parts(); ++pi) {
    const std::string f = prefix + "_p" + std::to_string(pi) + ".qasm";
    EXPECT_NO_THROW(qasm::parse_file(f)) << f;
    std::remove(f.c_str());
  }
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace hisim::partition
