// Semantics of the capability-annotated concurrency wrappers
// (hisim::Mutex / MutexLock / CondVar, src/common/parallel.hpp): mutual
// exclusion, try-lock, RAII release, condvar wait/notify including the
// release-while-blocked guarantee. The *static* half of the contract —
// that a HISIM_GUARDED_BY violation fails to compile — cannot live in a
// test binary; it is the configure-time negative-compile gate in
// CMakeLists.txt (cmake/tsa_probe_violation.cpp must be rejected under
// Clang -Werror=thread-safety, the clean probe accepted).

#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.hpp"

namespace {

using hisim::CondVar;
using hisim::Mutex;
using hisim::MutexLock;
using hisim::parallel::latch;
using hisim::parallel::task_group;

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());  // free -> acquired
  // Another thread must fail to acquire while we hold it. (Same-thread
  // re-try_lock on a std::mutex is UB, so probe from a helper thread.)
  bool acquired = true;
  {
    task_group tg;
    tg.spawn([&] { acquired = mu.try_lock(); });
  }
  EXPECT_FALSE(acquired);
  mu.unlock();
  {
    task_group tg;
    tg.spawn([&] {
      acquired = mu.try_lock();
      if (acquired) mu.unlock();
    });
  }
  EXPECT_TRUE(acquired);
}

TEST(MutexLockTest, ReleasesAtScopeExit) {
  Mutex mu;
  {
    MutexLock lk(mu);
    bool acquired = true;
    task_group tg;
    tg.spawn([&] { acquired = mu.try_lock(); });
    tg.join();
    EXPECT_FALSE(acquired);  // held by the MutexLock
  }
  // Scope exited -> released.
  bool acquired = false;
  task_group tg;
  tg.spawn([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  tg.join();
  EXPECT_TRUE(acquired);
}

TEST(MutexTest, MutualExclusionUnderContention) {
  // 8 threads x 10k unguarded-int increments: without mutual exclusion
  // the final count would (overwhelmingly likely, and under TSan
  // certainly) come up short or race.
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  Mutex mu;
  long long count = 0;
  {
    task_group tg;
    for (int t = 0; t < kThreads; ++t) {
      tg.spawn([&] {
        for (int i = 0; i < kIters; ++i) {
          MutexLock lk(mu);
          ++count;
        }
      });
    }
  }
  MutexLock lk(mu);
  EXPECT_EQ(count, static_cast<long long>(kThreads) * kIters);
}

TEST(CondVarTest, WaitReleasesMutexWhileBlockedAndWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;    // waited on by the helper
  bool waiting = false;  // set by the helper once it holds mu
  latch entered(1);

  task_group tg;
  tg.spawn([&] {
    MutexLock lk(mu);
    waiting = true;
    entered.count_down();
    while (!ready) cv.wait(lk);  // canonical loop, no predicate lambda
    waiting = false;
  });

  // The helper signalled *after* acquiring mu; that we can acquire it now
  // proves wait() released the mutex while blocked.
  entered.wait();
  {
    MutexLock lk(mu);
    EXPECT_TRUE(waiting);
    ready = true;
  }
  cv.notify_one();
  tg.join();
  MutexLock lk(mu);
  EXPECT_FALSE(waiting);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 4;
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  latch all_waiting(kWaiters);

  task_group tg;
  for (int t = 0; t < kWaiters; ++t) {
    tg.spawn([&] {
      {
        MutexLock lk(mu);
        all_waiting.count_down();
        while (!go) cv.wait(lk);
        ++awake;
      }
    });
  }
  // Every waiter holds-then-releases mu inside wait() before we flip go,
  // so none can observe go==true without actually having waited.
  all_waiting.wait();
  {
    MutexLock lk(mu);
    go = true;
  }
  cv.notify_all();
  tg.join();
  MutexLock lk(mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, ProducerConsumerOrdering) {
  // Single-slot handoff of 1..100: the consumer must read every value
  // exactly once and in order — exercises repeated wait/notify cycles in
  // both directions over one Mutex.
  constexpr int kItems = 100;
  Mutex mu;
  CondVar cv;
  int slot = 0;
  bool full = false;
  std::vector<int> received;

  task_group tg;
  tg.spawn([&] {  // producer
    for (int i = 1; i <= kItems; ++i) {
      MutexLock lk(mu);
      while (full) cv.wait(lk);
      slot = i;
      full = true;
      cv.notify_all();
    }
  });
  tg.spawn([&] {  // consumer
    for (int i = 0; i < kItems; ++i) {
      MutexLock lk(mu);
      while (!full) cv.wait(lk);
      received.push_back(slot);
      full = false;
      cv.notify_all();
    }
  });
  tg.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i + 1);
}

TEST(ThreadAnnotationsTest, MacrosCompileAsWrittenInGuardedCode) {
  // Annotated struct used with correct discipline: compiles under the
  // Clang analysis (and trivially everywhere else). The matching
  // negative case — touching `value` without the lock — is proven
  // rejected by the configure-time probe, not here.
  struct Guarded {
    Mutex mu;
    int value HISIM_GUARDED_BY(mu) = 0;

    int bump() {
      MutexLock lk(mu);
      return ++value;
    }
  };
  Guarded g;
  EXPECT_EQ(g.bump(), 1);
  EXPECT_EQ(g.bump(), 2);
}

}  // namespace
