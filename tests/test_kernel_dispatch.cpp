// Kernel-tier dispatch contract (sv/kernel_dispatch.hpp): every GateKind
// produces the same state on every available tier — bit-identical for
// permutation and diagonal kinds (pure index moves / skip-or-multiply
// phase sweeps), within 1e-12 for dense kernels — and the tier threads
// through FlatSimulator and all six Engine targets. Tier resolution
// itself (parse, names, forced-simd failure) is pinned here too.

#include "sv/kernel_dispatch.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "circuit/gate.hpp"
#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "hisvsim/engine.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"
#include "testing/random_circuits.hpp"

namespace hisim {
namespace {

void expect_bit_identical(const sv::StateVector& a, const sv::StateVector& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (Index i = 0; i < a.size(); ++i) {
    // memcmp-strength equality: catches even -0.0 vs +0.0 sign flips,
    // which the skip-exact-1.0 diagonal contract is specifically about.
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(cplx)), 0)
        << what << " amp " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// One concrete gate per GateKind (plus dense/Kraus Unitary forms), on
/// operand layouts that exercise both the vector fast paths (bits >= 1)
/// and the qubit-0 / low-bit fallbacks.
std::vector<Gate> every_kind_gates() {
  Matrix u2(2, 2);
  u2(0, 0) = {0.36, 0.48};
  u2(0, 1) = {0.8, 0.0};
  u2(1, 0) = {-0.8, 0.0};
  u2(1, 1) = {0.36, -0.48};
  Matrix k2 = u2;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) k2(r, c) *= 0.9;  // non-unitary
  const Matrix u4 =
      Gate::rxx(0, 1, 0.37).matrix() * Gate::cp(0, 1, -0.81).matrix();
  std::vector<Gate> gates = {
      Gate::i(2),
      Gate::x(3),          Gate::x(0),
      Gate::y(2),          Gate::y(0),
      Gate::z(4),          Gate::z(0),
      Gate::h(3),          Gate::h(0),
      Gate::s(2),          Gate::sdg(3),
      Gate::t(1),          Gate::tdg(0),
      Gate::sx(2),
      Gate::rx(3, 0.7),    Gate::ry(2, -0.4),
      Gate::rz(1, 1.1),    Gate::rz(0, 1.1),
      Gate::p(2, 0.9),
      Gate::u2(3, 0.3, -0.5),
      Gate::u3(1, 0.4, 0.2, -0.7),
      Gate::cx(1, 4),      Gate::cx(0, 3),    Gate::cx(4, 0),
      Gate::cy(2, 5),      Gate::cy(0, 1),
      Gate::cz(1, 4),      Gate::cz(0, 5),
      Gate::ch(2, 4),      Gate::ch(0, 3),
      Gate::crx(1, 3, 0.6),
      Gate::cry(2, 5, -0.8), Gate::cry(0, 4, 0.3),
      Gate::crz(1, 4, 0.5),
      Gate::cp(2, 5, 0.7), Gate::cp(0, 3, -0.2),
      Gate::cu3(1, 4, 0.3, -0.6, 0.9),
      Gate::swap(1, 4),    Gate::swap(0, 3),
      Gate::rzz(1, 4, 0.8), Gate::rzz(0, 3, -0.5),
      Gate::rxx(1, 4, 0.6), Gate::rxx(0, 3, 0.4),
      Gate::ccx(1, 3, 5),  Gate::ccx(0, 2, 4),
      Gate::cswap(2, 4, 5), Gate::cswap(0, 1, 3),
      Gate::mcx({0, 1, 2, 3, 4}),
      Gate::unitary({2, 4}, u4),
      Gate::kraus({3}, k2),
      Gate::noise_slot(2, 0),
  };
  return gates;
}

bool permutation_or_diagonal(const Gate& g) {
  switch (g.kind) {
    case GateKind::X:
    case GateKind::CX:
    case GateKind::CCX:
    case GateKind::MCX:
    case GateKind::SWAP:
    case GateKind::CSWAP:
      return true;
    default:
      return g.is_diagonal();
  }
}

TEST(KernelDispatch, EveryGateKindEveryTierMatchesScalar) {
  if (!sv::simd_kernels_available())
    GTEST_SKIP() << "only the scalar tier exists in this build/CPU";
  const sv::KernelOps& scalar = sv::kernel_ops(sv::KernelTier::Scalar);
  const sv::KernelOps& simd = sv::kernel_ops(sv::KernelTier::Simd);
  const unsigned n = 6;
  for (const Gate& g : every_kind_gates()) {
    sv::StateVector a = testutil::random_state(n, 0xabcd);
    sv::StateVector b = a;
    sv::apply_gate(a, g, scalar);
    sv::apply_gate(b, g, simd);
    if (permutation_or_diagonal(g)) {
      expect_bit_identical(a, b, g.to_string());
    } else {
      EXPECT_LT(a.max_abs_diff(b), 1e-12) << g.to_string();
    }
  }
}

TEST(KernelDispatch, RandomCircuitDifferential) {
  if (!sv::simd_kernels_available())
    GTEST_SKIP() << "only the scalar tier exists in this build/CPU";
  const sv::KernelOps& scalar = sv::kernel_ops(sv::KernelTier::Scalar);
  const sv::KernelOps& simd = sv::kernel_ops(sv::KernelTier::Simd);
  for (std::uint64_t seed : {0x1ull, 0x2ull, 0x3ull, 0x5eedull}) {
    const Circuit c = testutil::random_circuit(6, 120, seed);
    sv::StateVector a(6), b(6);
    sv::FlatSimulator().run(c, a, &scalar);
    sv::FlatSimulator().run(c, b, &simd);
    EXPECT_LT(a.max_abs_diff(b), 1e-12) << "seed " << seed;
  }
}

TEST(KernelDispatch, EngineTargetsAgreeAcrossTiers) {
  if (!sv::simd_kernels_available())
    GTEST_SKIP() << "only the scalar tier exists in this build/CPU";
  const Circuit c = circuits::qft(9);
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline}) {
    Options o;
    o.target = t;
    o.limit = 5;
    if (t == Target::Multilevel) o.level2_limit = 3;
    if (target_is_distributed(t)) o.process_qubits = 2;

    o.kernel_tier = sv::KernelTier::Scalar;
    const ExecutionPlan ps = Engine::compile(c, o);
    EXPECT_EQ(ps.kernel_tier(), sv::KernelTier::Scalar);
    const Result rs = ps.execute();
    EXPECT_EQ(rs.kernel, "scalar") << target_name(t);

    o.kernel_tier = sv::KernelTier::Simd;
    const ExecutionPlan pv = Engine::compile(c, o);
    EXPECT_EQ(pv.kernel_tier(), sv::KernelTier::Simd);
    const Result rv = pv.execute();
    EXPECT_EQ(rv.kernel, "simd") << target_name(t);

    EXPECT_LT(rs.state.max_abs_diff(rv.state), 1e-12) << target_name(t);
  }
}

TEST(KernelDispatch, AutoResolvesToConcreteTier) {
  const sv::KernelOps& ops = sv::kernel_ops(sv::KernelTier::Auto);
  EXPECT_NE(ops.tier, sv::KernelTier::Auto);
  // Auto must pick simd exactly when it exists (unless the HISIM_KERNEL
  // env override pinned scalar — in which case the name must say so).
  const std::string name = ops.name;
  EXPECT_TRUE(name == "scalar" || name == "simd");
  if (!sv::simd_kernels_available()) {
    EXPECT_EQ(name, "scalar");
  }
}

TEST(KernelDispatch, ParseAndNamesRoundTrip) {
  EXPECT_EQ(sv::parse_kernel_tier("auto"), sv::KernelTier::Auto);
  EXPECT_EQ(sv::parse_kernel_tier("scalar"), sv::KernelTier::Scalar);
  EXPECT_EQ(sv::parse_kernel_tier("simd"), sv::KernelTier::Simd);
  EXPECT_THROW(sv::parse_kernel_tier("bogus"), Error);
  EXPECT_THROW(sv::parse_kernel_tier(""), Error);
  EXPECT_THROW(sv::parse_kernel_tier("SIMD"), Error);
  for (sv::KernelTier t : {sv::KernelTier::Auto, sv::KernelTier::Scalar,
                           sv::KernelTier::Simd})
    EXPECT_EQ(sv::parse_kernel_tier(sv::kernel_tier_name(t)), t);
}

TEST(KernelDispatch, ForcedSimdFailsLoudlyWhenUnavailable) {
  if (sv::simd_kernels_available()) {
    EXPECT_EQ(sv::kernel_ops(sv::KernelTier::Simd).tier,
              sv::KernelTier::Simd);
  } else {
    EXPECT_THROW(sv::kernel_ops(sv::KernelTier::Simd), Error);
  }
  // The scalar tier exists unconditionally.
  EXPECT_EQ(sv::kernel_ops(sv::KernelTier::Scalar).tier,
            sv::KernelTier::Scalar);
  EXPECT_STREQ(sv::kernel_ops(sv::KernelTier::Scalar).name, "scalar");
}

}  // namespace
}  // namespace hisim
