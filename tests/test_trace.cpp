#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include "circuits/generators.hpp"
#include "common/parallel.hpp"
#include "hisvsim/engine.hpp"

// Source tree root, injected by CMake so the export round-trip test can
// find tools/trace_summary.py regardless of the build directory.
#ifndef HISIM_SOURCE_DIR
#define HISIM_SOURCE_DIR "."
#endif

namespace hisim {
namespace {

using trace::Distribution;
using trace::MetricsRegistry;
using trace::TraceSession;
using trace::TraceSpan;

/// Every test that starts a session must leave tracing disabled and the
/// event pool empty, or it would leak events into later tests.
struct SessionGuard {
  ~SessionGuard() {
    TraceSession::stop();
    TraceSession::clear();
  }
};

TEST(Metrics, CounterMath) {
  MetricsRegistry reg;
  trace::Counter& c = reg.counter("exchange.count");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name, same counter; new name, fresh counter.
  EXPECT_EQ(reg.counter("exchange.count").value(), 42u);
  EXPECT_EQ(reg.counter("exchange.bytes").value(), 0u);
}

TEST(Metrics, DistributionMath) {
  MetricsRegistry reg;
  Distribution& d = reg.distribution("step.wall_seconds");
  EXPECT_EQ(d.snapshot().count, 0u);
  EXPECT_EQ(d.snapshot().mean(), 0.0);
  d.record(2.0);
  d.record(-1.0);
  d.record(5.0);
  const Distribution::Snapshot s = d.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, -1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.sum, 6.0);
  EXPECT_EQ(s.mean(), 2.0);
}

TEST(Metrics, FlatNamingAndEmptyDistributionOmission) {
  MetricsRegistry reg;
  reg.counter("pool.tasks").add(7);
  reg.distribution("apply.seconds").record(0.5);
  reg.distribution("never.recorded");  // zero-count: must not appear
  const std::map<std::string, double> flat = reg.flat();
  EXPECT_EQ(flat.at("pool.tasks"), 7.0);
  EXPECT_EQ(flat.at("apply.seconds.count"), 1.0);
  EXPECT_EQ(flat.at("apply.seconds.min"), 0.5);
  EXPECT_EQ(flat.at("apply.seconds.max"), 0.5);
  EXPECT_EQ(flat.at("apply.seconds.sum"), 0.5);
  EXPECT_EQ(flat.at("apply.seconds.mean"), 0.5);
  EXPECT_EQ(flat.count("never.recorded.count"), 0u);
  const std::string json = trace::metrics_to_json(flat);
  EXPECT_NE(json.find("\"pool.tasks\": 7"), std::string::npos);
}

TEST(Trace, DisabledModeCollectsNothing) {
  SessionGuard guard;
  TraceSession::stop();
  TraceSession::clear();
  ASSERT_FALSE(TraceSession::active());
  {
    TraceSpan span("ghost", "test");
    span.arg("x", 1);
    trace::counter_sample("ghost.counter", 1.0);
  }
  EXPECT_EQ(TraceSession::event_count(), 0u);
  EXPECT_EQ(TraceSession::dropped_count(), 0u);
}

TEST(Trace, NestedSpansCompleteInnerFirst) {
  SessionGuard guard;
  TraceSession::start();
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
      inner.arg("idx", 3);
    }
  }
  TraceSession::stop();
  EXPECT_EQ(TraceSession::event_count(), 2u);
  const std::string json = TraceSession::chrome_json();
  const std::size_t inner_pos = json.find("\"name\": \"inner\"");
  const std::size_t outer_pos = json.find("\"name\": \"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  // Spans are recorded at completion, so the inner span lands first in
  // its thread's ring and the export preserves that order.
  EXPECT_LT(inner_pos, outer_pos);
  EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"idx\": 3}"), std::string::npos);
}

TEST(Trace, CounterSampleEmitsCounterEvent) {
  SessionGuard guard;
  TraceSession::start();
  trace::counter_sample("exchange.bytes", 42.5);
  TraceSession::stop();
  const std::string json = TraceSession::chrome_json();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 42.5}"), std::string::npos);
}

TEST(Trace, InternedNamesOutliveTheirSource) {
  SessionGuard guard;
  TraceSession::start();
  {
    std::string dynamic = "pass.fuse_adjacent";
    const char* stable = trace::intern(dynamic);
    dynamic.clear();  // the interned copy must be independent
    TraceSpan span(stable, "opt");
  }
  TraceSession::stop();
  EXPECT_NE(TraceSession::chrome_json().find("pass.fuse_adjacent"),
            std::string::npos);
  // Interning the same name again returns the same storage.
  EXPECT_EQ(trace::intern("pass.fuse_adjacent"),
            trace::intern(std::string("pass.fuse_adjacent")));
}

TEST(Trace, CrossThreadMergeUnderForRangeStorm) {
  SessionGuard guard;
  parallel::set_num_threads(4);
  TraceSession::start();
  std::atomic<int> bodies{0};
  parallel::for_range(
      0, 2048,
      [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) {
          TraceSpan span("storm", "test");
          span.arg("i", static_cast<std::int64_t>(i));
          bodies.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*grain=*/1);
  TraceSession::stop();
  EXPECT_EQ(bodies.load(), 2048);
  // 2048 storm spans plus the pool.region span; nothing may be lost.
  EXPECT_GE(TraceSession::event_count(), 2048u);
  EXPECT_EQ(TraceSession::dropped_count(), 0u);
  parallel::set_num_threads(0);
}

TEST(Trace, FullRingDropsNewestAndCounts) {
  SessionGuard guard;
  TraceSession::start();
  // Far past any per-thread ring capacity; the overflow must be dropped
  // (never overwritten) and accounted for exactly.
  const std::size_t attempts = (1u << 14) + 64;
  for (std::size_t i = 0; i < attempts; ++i) TraceSpan span("flood", "test");
  TraceSession::stop();
  EXPECT_LT(TraceSession::event_count(), attempts);
  EXPECT_GT(TraceSession::dropped_count(), 0u);
  EXPECT_EQ(TraceSession::event_count() + TraceSession::dropped_count(),
            attempts);
}

TEST(Trace, ExportRoundTripThroughTraceSummary) {
  if (std::system("python3 -c \"\" > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 unavailable";
  SessionGuard guard;
  TraceSession::start();
  {
    TraceSpan span("compile", "engine");
    span.arg("gates", 12);
    TraceSpan nested("partition", "partition");
  }
  trace::counter_sample("exchange.bytes", 4096.0);
  TraceSession::stop();
  const std::string path = "trace_roundtrip.json";
  TraceSession::write(path);
  const std::string cmd = std::string("python3 \"") + HISIM_SOURCE_DIR +
                          "/tools/trace_summary.py\" --validate " + path;
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
}

TEST(Trace, WriteToUnopenablePathThrows) {
  SessionGuard guard;
  EXPECT_THROW(TraceSession::write("no_such_dir/trace.json"), Error);
}

// ---------------------------------------------------------------------------
// Engine integration

std::vector<Options> all_target_options() {
  std::vector<Options> out;
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline}) {
    Options o;
    o.target = t;
    o.limit = 4;
    if (t == Target::Multilevel) o.level2_limit = 3;
    if (target_is_distributed(t)) o.process_qubits = 2;
    out.push_back(o);
  }
  return out;
}

TEST(Trace, MetricsOnEveryTarget) {
  const Circuit c = circuits::make_by_name("bv", 8);
  for (const Options& o : all_target_options()) {
    const Result r = Engine::compile(c, o).execute();
    // The stable compile keys exist on every target (zero when a phase
    // was skipped), and every execution stamps its wall time.
    EXPECT_EQ(r.metrics.count("compile.total_seconds"), 1u)
        << target_name(o.target);
    EXPECT_EQ(r.metrics.count("compile.partition_seconds"), 1u)
        << target_name(o.target);
    EXPECT_EQ(r.metrics.count("execute.wall_seconds"), 1u)
        << target_name(o.target);
    EXPECT_NE(r.to_json().find("\"metrics\""), std::string::npos)
        << target_name(o.target);
  }
}

TEST(Trace, OptionsTraceStartsASession) {
  SessionGuard guard;
  ASSERT_FALSE(TraceSession::active());
  Options o;
  o.target = Target::Flat;
  o.trace = true;
  const Circuit c = circuits::make_by_name("bv", 6);
  const ExecutionPlan plan = Engine::compile(c, o);
  EXPECT_TRUE(TraceSession::active());
  (void)plan.execute();
  TraceSession::stop();
  EXPECT_GT(TraceSession::event_count(), 0u);
}

TEST(Trace, TracingLeavesResultsBitIdentical) {
  Options o;
  o.target = Target::DistributedThreaded;
  o.limit = 4;
  o.process_qubits = 2;
  const Circuit c = circuits::make_by_name("qft", 8);
  const ExecutionPlan plan = Engine::compile(c, o);
  const Result off = plan.execute();
  SessionGuard guard;
  TraceSession::start();
  const Result on = plan.execute();
  TraceSession::stop();
  EXPECT_GT(TraceSession::event_count(), 0u);
  ASSERT_EQ(off.state.size(), on.state.size());
  for (Index i = 0; i < off.state.size(); ++i) {
    ASSERT_EQ(off.state[i].real(), on.state[i].real()) << "amp " << i;
    ASSERT_EQ(off.state[i].imag(), on.state[i].imag()) << "amp " << i;
  }
  EXPECT_EQ(off.norm, on.norm);
}

}  // namespace
}  // namespace hisim
