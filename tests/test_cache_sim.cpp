#include "sv/cache_sim.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"

namespace hisim::sv {
namespace {

CacheHierarchy::Config tiny() {
  CacheHierarchy::Config cfg;
  cfg.l1_bytes = 1u << 10;   // 64 amps
  cfg.l1_ways = 4;
  cfg.l2_bytes = 1u << 13;   // 512 amps
  cfg.l2_ways = 8;
  cfg.l3_bytes = 1u << 16;   // 4096 amps
  cfg.l3_ways = 8;
  return cfg;
}

TEST(CacheLevel, HitsAfterInstall) {
  CacheLevel l(1u << 10, 4);
  EXPECT_FALSE(l.access(0));
  EXPECT_TRUE(l.access(0));
  EXPECT_TRUE(l.access(63));    // same 64B line
  EXPECT_FALSE(l.access(64));   // next line
  EXPECT_EQ(l.hits(), 2u);
  EXPECT_EQ(l.misses(), 2u);
}

TEST(CacheLevel, LruEviction) {
  // 2 sets x 2 ways x 64B = 256B cache: lines mapping to set 0 are
  // addresses 0, 128, 256, ...
  CacheLevel l(256, 2);
  EXPECT_FALSE(l.access(0));
  EXPECT_FALSE(l.access(128));
  EXPECT_TRUE(l.access(0));     // refresh line 0
  EXPECT_FALSE(l.access(256));  // evicts line 128 (LRU)
  EXPECT_TRUE(l.access(0));
  EXPECT_FALSE(l.access(128));  // was evicted
}

TEST(CacheHierarchy, MissesCascade) {
  CacheHierarchy h{tiny()};
  h.access(0);
  EXPECT_EQ(h.served()[3], 1u);  // first touch: DRAM
  h.access(0);
  EXPECT_EQ(h.served()[0], 1u);  // now L1
}

TEST(CacheHierarchy, StreamLargerThanL1HitsL2) {
  CacheHierarchy h{tiny()};
  // Stream 2x over a 2 KiB buffer (fits L2, not L1 of 1 KiB).
  for (int pass = 0; pass < 2; ++pass)
    for (Index a = 0; a < (1u << 11); a += 16) h.access(a);
  EXPECT_GT(h.served()[1] + h.served()[0], 0u);
  EXPECT_EQ(h.served()[3], 32u);  // 2KiB/64B lines, cold once
}

TEST(TraceReplay, HierarchicalBeatsFlatOnDram) {
  // 12-qubit state (64 KiB) equals L3 size; inner vectors of 6 qubits
  // (1 KiB) are L1-resident, so hierarchical execution should serve far
  // more accesses from L1/L2 and make strictly fewer DRAM touches per
  // gate than the flat sweep once parts hold multiple gates.
  const Circuit c = circuits::ising(12, 2, 7);
  CacheHierarchy flat{tiny()};
  replay_flat_trace(c, flat);

  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = 6;
  const auto parts = partition::make_partition(d, opt);
  CacheHierarchy hier{tiny()};
  replay_hierarchical_trace(c, parts, hier);

  EXPECT_GT(hier.pct(0), flat.pct(0));  // more L1 service
  EXPECT_LT(hier.served()[3] + hier.served()[2],
            flat.served()[3] + flat.served()[2]);
}

TEST(TraceReplay, StrategyOrderingMatchesTableII) {
  const Circuit c = circuits::bv(12);
  const dag::CircuitDag d(c);
  auto run = [&](partition::Strategy s) {
    partition::PartitionOptions opt;
    opt.limit = 6;
    opt.strategy = s;
    const auto parts = partition::make_partition(d, opt);
    CacheHierarchy h{tiny()};
    replay_hierarchical_trace(c, parts, h);
    return std::pair<std::size_t, Index>(parts.num_parts(), h.served()[3]);
  };
  const auto [nat_parts, nat_dram] = run(partition::Strategy::Nat);
  const auto [dagp_parts, dagp_dram] = run(partition::Strategy::DagP);
  EXPECT_LE(dagp_parts, nat_parts);
  if (dagp_parts < nat_parts) {
    // Fewer parts -> fewer outer-vector sweeps -> fewer DRAM touches.
    EXPECT_LT(dagp_dram, nat_dram);
  } else {
    // Same part count: DRAM service within noise of access ordering.
    EXPECT_LT(static_cast<double>(dagp_dram),
              1.25 * static_cast<double>(nat_dram));
  }
}

TEST(TraceReplay, CountersReset) {
  CacheHierarchy h{tiny()};
  h.access(0);
  h.reset_counters();
  EXPECT_EQ(h.total(), 0u);
}

}  // namespace
}  // namespace hisim::sv
