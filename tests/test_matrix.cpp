#include "circuit/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hisim {
namespace {

TEST(Matrix, IdentityMultiplication) {
  const Matrix i2 = Matrix::identity(2);
  const Matrix m = Matrix::from_rows(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ((i2 * m).max_abs_diff(m), 0.0);
  EXPECT_EQ((m * i2).max_abs_diff(m), 0.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a = Matrix::from_rows(2, 2, {1.0, 2.0, 3.0, 4.0});
  const Matrix b = Matrix::from_rows(2, 2, {5.0, 6.0, 7.0, 8.0});
  const Matrix expect = Matrix::from_rows(2, 2, {19.0, 22.0, 43.0, 50.0});
  EXPECT_LT((a * b).max_abs_diff(expect), 1e-12);
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
  const Matrix m =
      Matrix::from_rows(2, 2, {cplx(1, 2), cplx(3, 4), cplx(5, 6), cplx(7, 8)});
  const Matrix a = m.adjoint();
  EXPECT_EQ(a(0, 1), cplx(5, -6));
  EXPECT_EQ(a(1, 0), cplx(3, -4));
}

TEST(Matrix, KroneckerDims) {
  const Matrix a = Matrix::identity(2);
  const Matrix b = Matrix::identity(4);
  const Matrix k = a.kron(b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_LT(k.max_abs_diff(Matrix::identity(8)), 1e-15);
}

TEST(Matrix, KroneckerStructure) {
  const Matrix x = Matrix::from_rows(2, 2, {0.0, 1.0, 1.0, 0.0});
  const Matrix z = Matrix::from_rows(2, 2, {1.0, 0.0, 0.0, -1.0});
  const Matrix k = x.kron(z);
  EXPECT_EQ(k(0, 2), cplx(1.0));
  EXPECT_EQ(k(1, 3), cplx(-1.0));
  EXPECT_EQ(k(0, 0), cplx(0.0));
}

TEST(Matrix, UnitarityCheck) {
  EXPECT_TRUE(Matrix::identity(4).is_unitary());
  const double s = 1.0 / std::sqrt(2.0);
  const Matrix h = Matrix::from_rows(2, 2, {s, s, s, -s});
  EXPECT_TRUE(h.is_unitary());
  const Matrix bad = Matrix::from_rows(2, 2, {1.0, 0.0, 0.0, 2.0});
  EXPECT_FALSE(bad.is_unitary());
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, Error);
  EXPECT_THROW(a.max_abs_diff(Matrix(3, 2)), Error);
}

}  // namespace
}  // namespace hisim
