// Property sweeps over the distributed layout machinery: random part
// sequences must keep every redistribution a bijection, preserve the
// state, and converge to layouts whose part qubits are local.

#include <gtest/gtest.h>

#include <set>

#include "circuits/generators.hpp"
#include "common/rng.hpp"
#include "dist/dist_state.hpp"

namespace hisim::dist {
namespace {

class LayoutChains : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayoutChains, RandomPartSequencePreservesState) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const unsigned n = 6 + static_cast<unsigned>(rng.below(3));
  const unsigned p = 1 + static_cast<unsigned>(rng.below(3));
  const unsigned l = n - p;
  DistState st(n, p);
  // Non-trivial amplitudes.
  for (unsigned r = 0; r < st.num_ranks(); ++r)
    for (Index i = 0; i < st.local(r).size(); ++i)
      st.local(r)[i] =
          cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const sv::StateVector before = st.to_state_vector();

  NetworkModel net;
  CommStats stats;
  for (int step = 0; step < 6; ++step) {
    // Random part: distinct qubits, size 1..l.
    const unsigned w = 1 + static_cast<unsigned>(rng.below(l));
    std::set<Qubit> part;
    while (part.size() < w) part.insert(static_cast<Qubit>(rng.below(n)));
    const std::vector<Qubit> pq(part.begin(), part.end());
    const RankLayout target = RankLayout::for_part(n, p, pq, st.layout());
    st.redistribute(target, net, stats);
    for (Qubit q : pq) EXPECT_TRUE(st.layout().is_local(q)) << "seed " << seed;
    // Bijection: locate(global_index(r, i)) round-trips.
    for (unsigned r = 0; r < st.num_ranks(); ++r) {
      const Index i = rng.below(st.layout().local_dim());
      const auto [r2, i2] = st.layout().locate(st.layout().global_index(r, i));
      EXPECT_EQ(r2, r);
      EXPECT_EQ(i2, i);
    }
  }
  EXPECT_LT(st.to_state_vector().max_abs_diff(before), 1e-15)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LayoutChains,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(LayoutProperties, StableQubitsAvoidTraffic) {
  // Re-requesting a superset-compatible part that is already local must
  // not move any data.
  const unsigned n = 8, p = 2;
  DistState st(n, p);
  NetworkModel net;
  CommStats s1, s2;
  const RankLayout first = RankLayout::for_part(n, p, {0, 1, 2}, st.layout());
  st.redistribute(first, net, s1);
  EXPECT_EQ(s1.exchanges, 0u);  // identity layout already has 0-5 local
  const RankLayout again = RankLayout::for_part(n, p, {2, 1}, st.layout());
  st.redistribute(again, net, s2);
  EXPECT_EQ(s2.exchanges, 0u);
}

TEST(LayoutProperties, MinimalMovementHeuristic) {
  // Moving one process qubit into the part should not relocate unrelated
  // local qubits: their slots stay fixed.
  const unsigned n = 8, p = 2;
  const RankLayout prev = RankLayout::identity(n, p);
  const RankLayout next = RankLayout::for_part(n, p, {0, 1, 7}, prev);
  // Qubits 0..5 were local; 0 and 1 keep their slots.
  EXPECT_EQ(next.slot_of(0), prev.slot_of(0));
  EXPECT_EQ(next.slot_of(1), prev.slot_of(1));
  // Qubit 7 must now be local.
  EXPECT_TRUE(next.is_local(7));
}

TEST(LayoutProperties, CommVolumeBoundedByState) {
  // One redistribution can move at most the whole distributed state.
  const unsigned n = 9, p = 3;
  DistState st(n, p);
  NetworkModel net;
  CommStats stats;
  const RankLayout target =
      RankLayout::for_part(n, p, {6, 7, 8}, st.layout());
  st.redistribute(target, net, stats);
  EXPECT_LE(stats.bytes_total, dim(n) * kAmpBytes);
  EXPECT_GT(stats.bytes_total, 0u);
}

}  // namespace
}  // namespace hisim::dist
