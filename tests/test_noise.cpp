// The noise-channel subsystem: channel validation and completeness,
// compile-time slot reservation, trajectory determinism and seed replay,
// convergence of the stochastic estimators to the analytic channel
// action, readout confusion, and the headline acceptance — a
// depolarizing-noise QAOA run of >= 1000 trajectories through ONE
// compiled plan that reproduces the analytic single-qubit channel
// expectation within 3 sigma without ever re-invoking the partitioner.
// The concurrency test runs under TSan in CI.

#include "noise/noise_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "hisvsim/engine.hpp"
#include "noise/trajectory.hpp"
#include "partition/partition.hpp"
#include "sv/observables.hpp"

namespace hisim {
namespace {

void expect_bit_identical(const sv::StateVector& a, const sv::StateVector& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (Index i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].real(), b[i].real()) << what << " amp " << i;
    ASSERT_EQ(a[i].imag(), b[i].imag()) << what << " amp " << i;
  }
}

/// One Options instance per target, sized for 9-qubit circuits.
std::vector<Options> all_target_options() {
  std::vector<Options> out;
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline}) {
    Options o;
    o.target = t;
    o.limit = 5;
    if (t == Target::Multilevel) o.level2_limit = 3;
    if (target_is_distributed(t)) o.process_qubits = 2;
    out.push_back(o);
  }
  return out;
}

TEST(NoiseChannel, RejectsInvalidProbabilities) {
  EXPECT_THROW(noise::Channel::depolarizing(-0.1), Error);
  EXPECT_THROW(noise::Channel::depolarizing(1.5), Error);
  EXPECT_THROW(noise::Channel::bit_flip(2.0), Error);
  EXPECT_THROW(noise::Channel::phase_flip(-1e-9), Error);
  EXPECT_THROW(noise::Channel::pauli(0.5, 0.5, 0.5), Error);
  EXPECT_THROW(noise::Channel::pauli(-0.1, 0.0, 0.0), Error);
  EXPECT_THROW(noise::Channel::amplitude_damping(1.01), Error);
  noise::NoiseModel m;
  EXPECT_THROW(m.readout(noise::ReadoutError{1.2, 0.0}), Error);
  EXPECT_THROW(m.readout(0, noise::ReadoutError{0.0, -0.2}), Error);
}

// Kraus-unraveling norm preservation: sum_k q_k Kt_k^dag Kt_k == I for
// every channel (trace preservation in expectation), and branch
// probabilities form a distribution.
TEST(NoiseChannel, TracePreservingCompleteness) {
  for (const noise::Channel& ch :
       {noise::Channel::depolarizing(0.3), noise::Channel::bit_flip(0.2),
        noise::Channel::phase_flip(0.7),
        noise::Channel::pauli(0.1, 0.2, 0.3),
        noise::Channel::amplitude_damping(0.0),
        noise::Channel::amplitude_damping(0.25),
        noise::Channel::amplitude_damping(1.0)}) {
    EXPECT_TRUE(ch.trace_preserving()) << ch.name;
    double total = 0.0;
    for (const auto& op : ch.ops) {
      EXPECT_GT(op.prob, 0.0) << ch.name;
      total += op.prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << ch.name;
  }
  EXPECT_TRUE(noise::Channel::depolarizing(0.3).unitary_ops());
  EXPECT_FALSE(noise::Channel::amplitude_damping(0.25).unitary_ops());
}

// Compile-time slot reservation: one slot per (gate, qubit, channel)
// match, in gate order, and an un-noisy execute of the instrumented plan
// is bit-identical to the ideal plan (slots apply as exact no-ops).
TEST(NoiseInstrument, ReservesSlotsAndStaysIdealWithoutSampling) {
  const Circuit c = circuits::qft(6);
  noise::NoiseModel model;
  model.after_all_gates(noise::Channel::depolarizing(0.05));
  const noise::Instrumented inst = noise::instrument(c, model);

  std::size_t expected = 0;
  for (const Gate& g : c.gates()) expected += g.arity();
  EXPECT_EQ(inst.noise.slots.size(), expected);
  EXPECT_EQ(inst.circuit.num_gates(), c.num_gates() + expected);
  EXPECT_EQ(inst.noise.channels.size(), 1u);  // shared, not per-slot

  // Flat target: gate order is circuit order on both plans, and unfilled
  // slots are skipped by the kernels, so the states are bit-identical.
  // (Partitioned targets may legally group the extra slot gates into a
  // different — still DAG-respecting — execution order.)
  Options o;
  o.target = Target::Flat;
  o.noise = model;
  const ExecutionPlan noisy = Engine::compile(c, o);
  EXPECT_TRUE(noisy.noisy());
  EXPECT_EQ(noisy.num_noise_slots(), expected);
  Options ideal_opt;
  ideal_opt.target = Target::Flat;
  const ExecutionPlan ideal = Engine::compile(c, ideal_opt);
  EXPECT_FALSE(ideal.noisy());
  expect_bit_identical(noisy.execute().state, ideal.execute().state,
                       "instrumented-without-sampling vs ideal");

  // Per-gate-kind and per-qubit attachment reserve only matching slots.
  noise::NoiseModel targeted;
  targeted.after_gate(GateKind::H, noise::Channel::bit_flip(0.1));
  targeted.on_qubit(0, noise::Channel::phase_flip(0.1));
  std::size_t h_qubits = 0, q0_touches = 0;
  for (const Gate& g : c.gates()) {
    if (g.kind == GateKind::H) h_qubits += g.arity();
    for (Qubit q : g.qubits) q0_touches += q == 0;
  }
  EXPECT_EQ(noise::instrument(c, targeted).noise.slots.size(),
            h_qubits + q0_touches);

  // A readout-only model is noisy but reserves no slots.
  noise::NoiseModel ro;
  ro.readout(noise::ReadoutError{0.02, 0.03});
  EXPECT_FALSE(ro.empty());
  EXPECT_TRUE(noise::instrument(c, ro).noise.slots.empty());
  // Trajectory entry points on an ideal (un-noisy) plan are rejected —
  // replaying a recorded seed against the wrong plan must not silently
  // return an ideal result.
  EXPECT_THROW(ideal.execute_trajectories(4), Error);
  EXPECT_THROW(ideal.execute_trajectory(42), Error);
}

TEST(NoiseTrajectories, DeterministicForFixedSeeds) {
  const Circuit c = circuits::noise_calibration(6, 3);
  Options o;
  o.limit = 4;
  o.noise.after_all_gates(noise::Channel::depolarizing(0.08));
  o.noise.readout(noise::ReadoutError{0.02, 0.02});
  const ExecutionPlan plan = Engine::compile(c, o);

  TrajectoryOptions topt;
  topt.exec.shots = 7;
  topt.exec.observables.push_back(sv::PauliString::parse("Z0"));
  topt.seed = 123;
  const NoisyResult a = plan.execute_trajectories(40, topt);
  const NoisyResult b = plan.execute_trajectories(40, topt);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.observable_means, b.observable_means);
  EXPECT_EQ(a.observable_stddevs, b.observable_stddevs);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.total_weight, b.total_weight);

  // A different base seed draws different trajectories.
  topt.seed = 124;
  const NoisyResult d = plan.execute_trajectories(40, topt);
  EXPECT_NE(a.seeds, d.seeds);
}

// Bit-identity of a replayed trajectory on all six targets: feeding a
// recorded seed back to execute_trajectory reproduces the trajectory's
// state, samples (readout corruption included), and observable values
// exactly, and the recorded aggregate is the serial reduction of the
// replayed values.
TEST(NoiseTrajectories, ReplayBitIdentityOnAllSixTargets) {
  const auto inst = circuits::qaoa_instance(9, 1, 11);
  const ParamBinding binding = inst.uniform_binding(0.6, 0.35);
  for (Options o : all_target_options()) {
    o.noise.after_all_gates(noise::Channel::depolarizing(0.04));
    o.noise.after_gate(GateKind::RX,
                       noise::Channel::amplitude_damping(0.05));
    o.noise.readout(noise::ReadoutError{0.03, 0.01});
    const ExecutionPlan plan = Engine::compile(inst.circuit, o);
    ASSERT_TRUE(plan.noisy()) << target_name(o.target);
    ASSERT_GT(plan.num_noise_slots(), 0u) << target_name(o.target);

    TrajectoryOptions topt;
    topt.exec.bindings = binding;
    topt.exec.shots = 5;
    topt.exec.observables.push_back(sv::PauliString::parse("Z0*Z1"));
    const NoisyResult nr = plan.execute_trajectories(4, topt);
    ASSERT_EQ(nr.seeds.size(), 4u) << target_name(o.target);

    double mean = 0.0;
    for (std::size_t t = 0; t < nr.seeds.size(); ++t) {
      ExecOptions x;
      x.bindings = binding;
      x.shots = 5;
      x.observables = topt.exec.observables;
      const Result r1 = plan.execute_trajectory(nr.seeds[t], x);
      const Result r2 = plan.execute_trajectory(nr.seeds[t], x);
      expect_bit_identical(r1.state, r2.state,
                           std::string(target_name(o.target)) +
                               " trajectory " + std::to_string(t));
      EXPECT_EQ(r1.samples, r2.samples) << target_name(o.target);
      EXPECT_EQ(r1.norm, nr.weights[t]) << target_name(o.target);
      ASSERT_EQ(r1.observables.size(), 1u);
      mean += r1.observables[0];
    }
    mean /= static_cast<double>(nr.seeds.size());
    EXPECT_DOUBLE_EQ(mean, nr.observable_means[0]) << target_name(o.target);
  }
}

// Depolarizing channel converges to the analytic expectation: a single
// depolarizing slot of strength p scales any single-qubit Pauli
// expectation by (1 - 4p/3).
TEST(NoiseTrajectories, DepolarizingConvergesToAnalytic) {
  Circuit c(1, "plus");
  c.add(Gate::h(0));  // |+>: <X> = 1 exactly
  const double p = 0.2;
  Options o;
  o.target = Target::Flat;
  o.noise.after_all_gates(noise::Channel::depolarizing(p));
  const ExecutionPlan plan = Engine::compile(c, o);
  EXPECT_EQ(plan.num_noise_slots(), 1u);

  TrajectoryOptions topt;
  topt.exec.observables.push_back(sv::PauliString::parse("X0"));
  const NoisyResult nr = plan.execute_trajectories(3000, topt);
  const double analytic = 1.0 - 4.0 * p / 3.0;
  ASSERT_GT(nr.observable_stderrs[0], 0.0);
  EXPECT_NEAR(nr.observable_means[0], analytic,
              3.0 * nr.observable_stderrs[0]);
  // Pauli-only model: every trajectory weight is the ideal norm (1 up to
  // the fp rounding of the H amplitudes).
  for (double w : nr.weights) EXPECT_NEAR(w, 1.0, 1e-12);
  EXPECT_NEAR(nr.mean_weight, 1.0, 1e-12);
}

// Amplitude damping via the weighted Kraus unraveling: from |+>,
// E[<Z>] = gamma analytically, and the weights average to 1 (the
// unraveling is trace-preserving in expectation even though individual
// trajectories are unnormalized).
TEST(NoiseTrajectories, AmplitudeDampingWeightedEstimator) {
  Circuit c(1, "plus");
  c.add(Gate::h(0));
  const double gamma = 0.3;
  Options o;
  o.target = Target::Flat;
  o.noise.after_all_gates(noise::Channel::amplitude_damping(gamma));
  const ExecutionPlan plan = Engine::compile(c, o);

  TrajectoryOptions topt;
  topt.exec.observables.push_back(sv::PauliString::parse("Z0"));
  const std::size_t num = 4000;
  const NoisyResult nr = plan.execute_trajectories(num, topt);
  EXPECT_NEAR(nr.observable_means[0], gamma,
              3.0 * std::max(nr.observable_stderrs[0], 1e-12));

  double wvar = 0.0;
  for (double w : nr.weights) {
    EXPECT_GT(w, 0.0);  // from |+>, neither Kraus branch annihilates
    const double d = w - nr.mean_weight;
    wvar += d * d;
  }
  wvar /= static_cast<double>(num - 1);
  EXPECT_NEAR(nr.mean_weight, 1.0,
              3.0 * std::sqrt(wvar / static_cast<double>(num)));
}

// Readout confusion round-trip: a deterministic |01> outcome corrupted
// by per-qubit confusion matrices lands on each readout with the
// analytic confusion probability.
TEST(NoiseTrajectories, ReadoutConfusionRoundTrip) {
  Circuit c(2, "x0");
  c.add(Gate::x(0));  // true outcome 0b01 every time
  Options o;
  o.target = Target::Flat;
  o.noise.readout(0, noise::ReadoutError{0.0, 0.25});  // 1 reads 0 w.p. .25
  o.noise.readout(1, noise::ReadoutError{0.1, 0.0});   // 0 reads 1 w.p. .1
  const ExecutionPlan plan = Engine::compile(c, o);

  TrajectoryOptions topt;
  topt.exec.shots = 500;
  const NoisyResult nr = plan.execute_trajectories(40, topt);
  const double shots = static_cast<double>(40 * 500);
  double pooled = 0.0;
  for (const auto& [outcome, w] : nr.counts) pooled += w;
  EXPECT_EQ(pooled, shots);  // weights are 1: plain pooled counts

  const auto frac = [&](Index outcome) {
    const auto it = nr.counts.find(outcome);
    return (it == nr.counts.end() ? 0.0 : it->second) / shots;
  };
  // P(read b1 b0) = P0(b0 | true 1) * P1(b1 | true 0); 3 sigma of a
  // binomial cell at n = 20000 is under 0.01.
  EXPECT_NEAR(frac(0b01), 0.75 * 0.9, 0.02);
  EXPECT_NEAR(frac(0b00), 0.25 * 0.9, 0.02);
  EXPECT_NEAR(frac(0b11), 0.75 * 0.1, 0.02);
  EXPECT_NEAR(frac(0b10), 0.25 * 0.1, 0.02);
}

// Acceptance: a depolarizing-noise QAOA run through ONE compiled plan —
// >= 1000 trajectories, analytic (1 - 4p/3) scaling reproduced within
// 3 sigma, zero partitioner invocations after compile. With gamma = 0
// the QAOA state is exactly |+>^n, so <X_q> = 1 and each qubit's final
// RX mixer carries exactly one depolarizing slot acting after every
// other gate on that qubit.
TEST(NoiseTrajectories, QaoaDepolarizingAcceptance) {
  const auto inst = circuits::qaoa_instance(9, 1, 7);
  ParamBinding binding = inst.uniform_binding(0.0, 0.45);
  const double p = 0.15;
  Options o;
  o.target = Target::Hierarchical;
  o.limit = 5;
  o.noise.after_gate(GateKind::RX, noise::Channel::depolarizing(p));
  const ExecutionPlan plan = Engine::compile(inst.circuit, o);
  EXPECT_EQ(plan.num_noise_slots(), 9u);  // one RX per qubit per round

  TrajectoryOptions topt;
  topt.exec.bindings = binding;
  for (Qubit q : {0u, 4u, 8u})
    topt.exec.observables.push_back(
        sv::PauliString::parse("X" + std::to_string(q)));

  const std::uint64_t compiled = partition::partition_invocations();
  const NoisyResult nr = plan.execute_trajectories(1200, topt);
  EXPECT_EQ(partition::partition_invocations(), compiled)
      << "execute_trajectories re-invoked the partitioner";

  const double analytic = 1.0 - 4.0 * p / 3.0;  // x <X_q>_ideal = 1
  for (std::size_t j = 0; j < nr.observable_means.size(); ++j) {
    ASSERT_GT(nr.observable_stderrs[j], 0.0) << j;
    EXPECT_NEAR(nr.observable_means[j], analytic,
                3.0 * nr.observable_stderrs[j])
        << "observable " << j;
    // The noise measurably acted: 0.8 is >> 3 sigma away from 1.
    EXPECT_LT(nr.observable_means[j] + 3.0 * nr.observable_stderrs[j], 1.0)
        << "observable " << j;
  }
}

// The distributed trajectory path substitutes sampled operators per part
// without touching the exchange schedule: same seeds, same statistics as
// the single-node path, and identical comm accounting as the ideal run.
TEST(NoiseTrajectories, DistributedMatchesSingleNodeStatistics) {
  const Circuit c = circuits::noise_calibration(8, 2);
  Options hier;
  hier.limit = 5;
  hier.noise.after_all_gates(noise::Channel::depolarizing(0.03));
  Options dist = hier;
  dist.target = Target::DistributedSerial;
  dist.process_qubits = 2;
  dist.limit = 0;

  TrajectoryOptions topt;
  topt.exec.observables.push_back(sv::PauliString::parse("Z0"));
  topt.exec.shots = 3;
  const NoisyResult a =
      Engine::compile(c, hier).execute_trajectories(30, topt);
  const NoisyResult b =
      Engine::compile(c, dist).execute_trajectories(30, topt);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.counts, b.counts);
  for (std::size_t j = 0; j < a.observable_means.size(); ++j)
    EXPECT_NEAR(a.observable_means[j], b.observable_means[j], 1e-12) << j;

  // Exchange accounting of a noisy trajectory equals the ideal run's:
  // sampled operators are slot-local, so no extra movement is scheduled.
  const ExecutionPlan dplan = Engine::compile(c, dist);
  const Result ideal = dplan.execute();
  const Result noisy = dplan.execute_trajectory(a.seeds[0]);
  EXPECT_EQ(ideal.comm.bytes_total, noisy.comm.bytes_total);
  EXPECT_EQ(ideal.comm.exchanges, noisy.comm.exchanges);
}

// One shared plan, several threads each running whole trajectory sets —
// the concurrency contract inherited from execute(). TSan'd in CI.
TEST(NoiseTrajectories, ConcurrentTrajectoriesShareOnePlan) {
  const Circuit c = circuits::noise_calibration(7, 2);
  for (Target t : {Target::Hierarchical, Target::DistributedThreaded}) {
    Options o;
    o.target = t;
    o.limit = 4;
    if (target_is_distributed(t)) o.process_qubits = 2;
    o.noise.after_all_gates(noise::Channel::depolarizing(0.05));
    o.noise.readout(noise::ReadoutError{0.02, 0.02});
    const ExecutionPlan plan = Engine::compile(c, o);

    TrajectoryOptions topt;
    topt.exec.shots = 4;
    topt.exec.observables.push_back(sv::PauliString::parse("Z1"));
    const NoisyResult ref = plan.execute_trajectories(12, topt);

    constexpr int kThreads = 3;
    std::vector<NoisyResult> all(kThreads);
    {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&plan, &topt, &all, i] {
          all[i] = plan.execute_trajectories(12, topt);
        });
      for (std::thread& th : threads) th.join();
    }
    for (int i = 0; i < kThreads; ++i) {
      EXPECT_EQ(all[i].seeds, ref.seeds) << target_name(t);
      EXPECT_EQ(all[i].weights, ref.weights) << target_name(t);
      EXPECT_EQ(all[i].observable_means, ref.observable_means)
          << target_name(t);
      EXPECT_EQ(all[i].counts, ref.counts) << target_name(t);
    }
  }
}

TEST(NoiseTrajectories, ValidatesUpFront) {
  const auto inst = circuits::qaoa_instance(8, 1, 3);
  Options o;
  o.limit = 4;
  o.noise.after_all_gates(noise::Channel::bit_flip(0.05));
  const ExecutionPlan plan = Engine::compile(inst.circuit, o);

  // Unbound parameters fail on the calling thread, naming the parameter.
  try {
    plan.execute_trajectories(4);
    FAIL() << "expected unbound-parameter error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unbound parameter"),
              std::string::npos);
  }
  // Zero trajectories and a wrong-shaped initial state are rejected.
  TrajectoryOptions topt;
  topt.exec.bindings = inst.uniform_binding(0.2, 0.1);
  EXPECT_THROW(plan.execute_trajectories(0, topt), Error);
  const sv::StateVector wrong(5);
  topt.exec.initial_state = &wrong;
  EXPECT_THROW(plan.execute_trajectories(2, topt), Error);
}

TEST(NoiseTrajectories, JsonReportIsSelfDescribing) {
  const auto inst = circuits::qaoa_instance(5, 1, 3);
  Options o;
  o.limit = 3;
  o.noise.after_all_gates(noise::Channel::depolarizing(0.1));
  TrajectoryOptions topt;
  topt.exec.bindings = inst.uniform_binding(0.25, 0.125);
  topt.exec.shots = 3;
  topt.exec.observables.push_back(sv::PauliString::parse("Z0"));
  topt.seed = 99;
  const NoisyResult nr =
      Engine::compile(inst.circuit, o).execute_trajectories(8, topt);
  const std::string j = nr.to_json();
  EXPECT_NE(j.find("\"trajectories\": 8"), std::string::npos) << j;
  EXPECT_NE(j.find("\"noise_slots\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"observable_means\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"top_counts\""), std::string::npos) << j;
  // Re-runnable from the report alone: bindings and seed stream included.
  EXPECT_NE(j.find("\"noise_seed\": 99"), std::string::npos) << j;
  EXPECT_NE(j.find("\"gamma0\": 0.25"), std::string::npos) << j;
  EXPECT_NE(j.find("\"beta0\": 0.125"), std::string::npos) << j;
  // top_counts(k) is weight-descending and capped at k.
  const auto top = nr.top_counts(2);
  ASSERT_LE(top.size(), 2u);
  if (top.size() == 2) {
    EXPECT_GE(top[0].first, top[1].first);
  }
}

}  // namespace
}  // namespace hisim
