#include "sv/observables.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "circuits/generators.hpp"
#include "common/error.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace hisim::sv {
namespace {

TEST(PauliParse, IndexedForm) {
  const PauliString p = PauliString::parse("Z0*Z3");
  ASSERT_EQ(p.factors.size(), 2u);
  EXPECT_EQ(p.factors[0].first, 0u);
  EXPECT_EQ(p.factors[0].second, Pauli::Z);
  EXPECT_EQ(p.factors[1].first, 3u);
  EXPECT_EQ(p.to_string(), "Z0*Z3");
}

TEST(PauliParse, DenseForm) {
  const PauliString p = PauliString::parse("XIZ");
  ASSERT_EQ(p.factors.size(), 2u);
  EXPECT_EQ(p.factors[0].first, 0u);
  EXPECT_EQ(p.factors[0].second, Pauli::X);
  EXPECT_EQ(p.factors[1].first, 2u);
  EXPECT_EQ(p.factors[1].second, Pauli::Z);
}

TEST(PauliParse, Rejects) {
  EXPECT_THROW(PauliString::parse("Q0"), Error);
  EXPECT_THROW(PauliString::parse("Z0*Z0"), Error);
}

TEST(Expectation, GroundStateZ) {
  StateVector s(3);
  EXPECT_NEAR(expectation(s, PauliString::parse("Z0")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString::parse("Z0*Z1*Z2")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString::parse("X0")), 0.0, 1e-12);
}

TEST(Expectation, PlusStateX) {
  StateVector s(2);
  apply_gate(s, Gate::h(0));
  EXPECT_NEAR(expectation(s, PauliString::parse("X0")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString::parse("Z0")), 0.0, 1e-12);
}

TEST(Expectation, BellCorrelations) {
  StateVector s(2);
  apply_gate(s, Gate::h(0));
  apply_gate(s, Gate::cx(0, 1));
  EXPECT_NEAR(expectation(s, PauliString::parse("Z0*Z1")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString::parse("X0*X1")), 1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString::parse("Y0*Y1")), -1.0, 1e-12);
  EXPECT_NEAR(expectation(s, PauliString::parse("Z0")), 0.0, 1e-12);
}

TEST(Expectation, YEigenstate) {
  // (|0> + i|1>)/sqrt(2) is the +1 eigenstate of Y.
  StateVector s(1);
  apply_gate(s, Gate::h(0));
  apply_gate(s, Gate::s(0));
  EXPECT_NEAR(expectation(s, PauliString::parse("Y0")), 1.0, 1e-12);
}

TEST(Expectation, HamiltonianSum) {
  StateVector s(2);
  apply_gate(s, Gate::h(0));
  apply_gate(s, Gate::cx(0, 1));
  const std::vector<std::pair<double, PauliString>> ham = {
      {0.5, PauliString::parse("Z0*Z1")},
      {-2.0, PauliString::parse("X0*X1")},
  };
  EXPECT_NEAR(expectation(s, ham), 0.5 - 2.0, 1e-12);
}

TEST(Marginals, BellPairs) {
  StateVector s(3);
  apply_gate(s, Gate::h(0));
  apply_gate(s, Gate::cx(0, 2));
  const auto probs = marginal_probabilities(s, {0, 2});
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_NEAR(probs[0], 0.5, 1e-12);   // |00>
  EXPECT_NEAR(probs[3], 0.5, 1e-12);   // |11>
  EXPECT_NEAR(probs[1] + probs[2], 0.0, 1e-12);
}

TEST(Marginals, SumToOne) {
  const auto s = FlatSimulator().simulate(circuits::qft(6));
  const auto probs = marginal_probabilities(s, {1, 3, 5});
  double sum = 0;
  for (double pr : probs) sum += pr;
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(Sampling, DeterministicBasisState) {
  StateVector s(4);
  apply_gate(s, Gate::x(1));
  apply_gate(s, Gate::x(3));
  Rng rng(5);
  const auto shots = sample(s, 100, rng);
  for (Index v : shots) EXPECT_EQ(v, 0b1010u);
}

TEST(Sampling, UniformDistributionRoughly) {
  StateVector s(3);
  for (Qubit q = 0; q < 3; ++q) apply_gate(s, Gate::h(q));
  Rng rng(17);
  const auto shots = sample(s, 8000, rng);
  std::map<Index, int> hist;
  for (Index v : shots) ++hist[v];
  ASSERT_EQ(hist.size(), 8u);
  for (const auto& [v, count] : hist) {
    EXPECT_GT(count, 800) << v;   // expect ~1000 each
    EXPECT_LT(count, 1200) << v;
  }
}

TEST(Sampling, SeedReproducible) {
  const auto s = FlatSimulator().simulate(circuits::qaoa(6, 2, 3));
  Rng a(42), b(42);
  EXPECT_EQ(sample(s, 50, a), sample(s, 50, b));
}

// The blocked-parallel marginal accumulation must agree with a serial
// reference on a state large enough to actually split into blocks, and
// repeated calls must be bit-identical (deterministic merge order).
TEST(Marginals, ParallelBlocksMatchSerialReference) {
  const auto s = FlatSimulator().simulate(circuits::qaoa(16, 2, 9));
  const std::vector<Qubit> qs{0, 5, 11, 15};
  const auto probs = marginal_probabilities(s, qs);
  ASSERT_EQ(probs.size(), 16u);
  std::vector<double> ref(16, 0.0);
  for (Index i = 0; i < s.size(); ++i) {
    Index code = 0;
    for (unsigned j = 0; j < qs.size(); ++j)
      code |= static_cast<Index>((i >> qs[j]) & 1u) << j;
    ref[code] += std::norm(s[i]);
  }
  for (std::size_t j = 0; j < ref.size(); ++j)
    EXPECT_NEAR(probs[j], ref[j], 1e-12) << j;
  EXPECT_EQ(marginal_probabilities(s, qs), probs);  // bit-deterministic
}

// The blocked cdf build must sample the same distribution at scale, stay
// deterministic, and — since shots are drawn against the total mass —
// sample an *unnormalized* state's normalized distribution (the weighted
// Kraus-unraveling trajectories rely on this).
TEST(Sampling, BlockedCdfIsDeterministicAndHandlesUnnormalizedStates) {
  const auto s = FlatSimulator().simulate(circuits::qft(16));
  Rng a(7), b(7);
  EXPECT_EQ(sample(s, 200, a), sample(s, 200, b));

  StateVector scaled(3);
  apply_gate(scaled, Gate::h(0));
  for (Index i = 0; i < scaled.size(); ++i) scaled[i] *= 0.5;  // norm 0.25
  Rng rng(21);
  const auto shots = sample(scaled, 4000, rng);
  const double p0 = static_cast<double>(
                        std::count(shots.begin(), shots.end(), Index{0})) /
                    4000.0;
  EXPECT_NEAR(p0, 0.5, 0.03);
  StateVector zero(2);
  zero[0] = 0.0;  // no amplitude anywhere
  Rng zrng(1);
  EXPECT_THROW(sample(zero, 10, zrng), Error);
}

TEST(Sampling, MatchesBornRule) {
  StateVector s(1);
  apply_gate(s, Gate::ry(0, 2.0 * std::acos(std::sqrt(0.8))));
  // P(0) = 0.8.
  Rng rng(3);
  const auto shots = sample(s, 10000, rng);
  const double p0 =
      static_cast<double>(std::count(shots.begin(), shots.end(), Index{0})) /
      10000.0;
  EXPECT_NEAR(p0, 0.8, 0.02);
}

}  // namespace
}  // namespace hisim::sv
