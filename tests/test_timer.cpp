#include "common/timer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hisim {
namespace {

TEST(Timer, ElapsedIsMonotonicAndNonNegative) {
  Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  // Burn a little time so the second reading has something to observe.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double b = t.seconds();
  EXPECT_GE(b, a);
}

TEST(Timer, ResetRestartsTheClock) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double before = t.seconds();
  t.reset();
  // Elapsed since reset can't exceed elapsed since construction; with the
  // busy loop in between it is strictly less in practice, but the only
  // guaranteed relation is <=.
  EXPECT_LE(t.seconds(), before + 1.0);
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, UnitConversionsAgree) {
  Timer t;
  const double s = t.seconds();
  // Separate clock reads, so allow generous slack between the units.
  EXPECT_NEAR(t.millis() / 1e3, s, 0.5);
  EXPECT_NEAR(t.micros() / 1e6, s, 0.5);
}

TEST(Stopwatch, AccumulatesDisjointIntervals) {
  Stopwatch w;
  EXPECT_EQ(w.seconds(), 0.0);
  w.start();
  w.stop();
  const double one = w.seconds();
  EXPECT_GE(one, 0.0);
  w.start();
  w.stop();
  EXPECT_GE(w.seconds(), one);  // totals only ever grow
}

TEST(Stopwatch, ClearResetsTheTotal) {
  Stopwatch w;
  w.start();
  w.stop();
  w.clear();
  EXPECT_EQ(w.seconds(), 0.0);
  // clear() also drops a running interval, so a fresh start() is legal.
  w.start();
  w.clear();
  w.start();
  w.stop();
  EXPECT_GE(w.seconds(), 0.0);
}

#if HISIM_CHECKED && GTEST_HAS_DEATH_TEST
// The misuse contract (see timer.hpp): unbalanced start/stop aborts in
// checked builds instead of silently misattributing time.
TEST(StopwatchDeathTest, DoubleStartAborts) {
  Stopwatch w;
  w.start();
  EXPECT_DEATH(w.start(), "already running");
}

TEST(StopwatchDeathTest, StopWithoutStartAborts) {
  Stopwatch w;
  EXPECT_DEATH(w.stop(), "without a matching start");
}
#endif

}  // namespace
}  // namespace hisim
