#include "sv/traffic.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"

namespace hisim::sv {
namespace {

/// A cache config scaled so the test circuits (2^10..2^12 amplitude
/// vectors) straddle the levels like 30-qubit circuits straddle a real
/// LLC: L1 holds 2^6 amps, L2 2^8, L3 2^10.
CacheConfig tiny_cache() {
  CacheConfig c;
  c.l1_bytes = (1u << 6) * 16;
  c.l2_bytes = (1u << 8) * 16;
  c.l3_bytes = (1u << 10) * 16;
  return c;
}

TEST(Traffic, FlatAllDram) {
  const Circuit c = circuits::bv(12);
  const auto t = model_flat_traffic(c, tiny_cache());
  EXPECT_GT(t.bytes[TrafficBreakdown::DRAM], 0.0);
  EXPECT_EQ(t.bytes[TrafficBreakdown::L1], 0.0);
  EXPECT_NEAR(t.dram_fraction(), 1.0, 1e-12);
}

TEST(Traffic, HierarchicalMovesGateTrafficToCache) {
  const Circuit c = circuits::bv(12);
  const dag::CircuitDag d(c);
  const auto parts = partition::partition_nat(d, 6);  // 2^6 amps: L1-sized
  const auto hier = model_traffic(c, parts, tiny_cache());
  const auto flat = model_flat_traffic(c, tiny_cache());
  EXPECT_LT(hier.bytes[TrafficBreakdown::DRAM],
            flat.bytes[TrafficBreakdown::DRAM]);
  EXPECT_GT(hier.bytes[TrafficBreakdown::L1], 0.0);
}

TEST(Traffic, FewerPartsLessDram) {
  const Circuit c = circuits::ising(12, 3, 2);
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = 6;
  const auto dagp = partition::partition_dagp(d, opt);
  const auto nat = partition::partition_nat(d, 6);
  const auto t_dagp = model_traffic(c, dagp, tiny_cache());
  const auto t_nat = model_traffic(c, nat, tiny_cache());
  if (dagp.num_parts() < nat.num_parts()) {
    EXPECT_LT(t_dagp.bytes[TrafficBreakdown::DRAM],
              t_nat.bytes[TrafficBreakdown::DRAM]);
  } else {
    EXPECT_LE(t_dagp.bytes[TrafficBreakdown::DRAM],
              t_nat.bytes[TrafficBreakdown::DRAM]);
  }
}

TEST(Traffic, PercentagesSumTo100) {
  const Circuit c = circuits::qft(12);
  const dag::CircuitDag d(c);
  const auto parts = partition::partition_nat(d, 8);
  const auto t = model_traffic(c, parts, tiny_cache());
  const double sum = t.pct(TrafficBreakdown::L1) + t.pct(TrafficBreakdown::L2) +
                     t.pct(TrafficBreakdown::L3) +
                     t.pct(TrafficBreakdown::DRAM);
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(Traffic, InnerLevelFollowsWorkingSet) {
  // Inner vectors of 2^9 amps belong to L3 in the tiny cache; trailing
  // parts may be narrower and land in faster levels, but the outer
  // gather/scatter sweeps always hit DRAM.
  const Circuit c = circuits::qft(12);
  const dag::CircuitDag d(c);
  const auto parts = partition::partition_nat(d, 9);
  const auto t = model_traffic(c, parts, tiny_cache());
  EXPECT_GT(t.bytes[TrafficBreakdown::L3], 0.0);
  EXPECT_GT(t.bytes[TrafficBreakdown::DRAM], 0.0);
}

}  // namespace
}  // namespace hisim::sv
