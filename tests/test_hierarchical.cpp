#include "sv/hierarchical.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace hisim::sv {
namespace {

struct Case {
  std::string name;
  unsigned qubits;
  unsigned limit;
  partition::Strategy strategy;
};

class HierarchicalMatchesFlat : public ::testing::TestWithParam<Case> {};

TEST_P(HierarchicalMatchesFlat, SameAmplitudes) {
  const Case& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);
  const dag::CircuitDag d(c);
  partition::PartitionOptions opt;
  opt.limit = tc.limit;
  opt.strategy = tc.strategy;
  const partition::Partitioning parts = partition::make_partition(d, opt);
  partition::validate(d, parts);

  const StateVector flat = FlatSimulator().simulate(c);
  HierarchicalStats stats;
  const StateVector hier = HierarchicalSimulator().simulate(c, parts, &stats);
  EXPECT_LT(hier.max_abs_diff(flat), 1e-10)
      << tc.name << " " << partition::strategy_name(tc.strategy);
  EXPECT_EQ(stats.parts, parts.num_parts());
  EXPECT_GT(stats.outer_bytes_moved, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, HierarchicalMatchesFlat,
    ::testing::Values(
        Case{"bv", 9, 4, partition::Strategy::Nat},
        Case{"bv", 9, 4, partition::Strategy::Dfs},
        Case{"bv", 9, 4, partition::Strategy::DagP},
        Case{"cat_state", 8, 3, partition::Strategy::DagP},
        Case{"qft", 7, 4, partition::Strategy::DagP},
        Case{"qft", 7, 4, partition::Strategy::Nat},
        Case{"ising", 9, 5, partition::Strategy::DagP},
        Case{"qaoa", 8, 5, partition::Strategy::DagP},
        Case{"cc", 9, 5, partition::Strategy::Dfs},
        Case{"qnn", 8, 4, partition::Strategy::DagP},
        Case{"qpe", 8, 5, partition::Strategy::DagP},
        Case{"grover", 7, 7, partition::Strategy::DagP},
        Case{"adder37", 10, 6, partition::Strategy::DagP}),
    [](const auto& ti) {
      return ti.param.name + "_L" + std::to_string(ti.param.limit) + "_" +
             partition::strategy_name(ti.param.strategy);
    });

TEST(Hierarchical, SinglePartEqualsFlat) {
  const Circuit c = circuits::qft(6);
  const dag::CircuitDag d(c);
  const partition::Partitioning p = partition::partition_nat(d, 6);
  ASSERT_EQ(p.num_parts(), 1u);
  const StateVector flat = FlatSimulator().simulate(c);
  const StateVector hier = HierarchicalSimulator().simulate(c, p);
  EXPECT_LT(hier.max_abs_diff(flat), 1e-12);
}

TEST(Hierarchical, RunPartSweepsWholeOuter) {
  // A part acting on a strict qubit subset must leave other-qubit marginals
  // intact.
  Circuit c(5);
  c.add(Gate::h(1));
  c.add(Gate::cx(1, 3));
  const dag::CircuitDag d(c);
  const partition::Partitioning p = partition::partition_nat(d, 2);
  StateVector state(5);
  apply_gate(state, Gate::x(4));  // pre-set qubit 4
  HierarchicalStats stats;
  for (const auto& part : p.parts)
    run_part(c, part.gates, part.qubits, state, stats);
  EXPECT_NEAR(state.prob_one(4), 1.0, 1e-12);
  EXPECT_NEAR(state.prob_one(1), 0.5, 1e-12);
  EXPECT_NEAR(state.prob_one(3), 0.5, 1e-12);
}

TEST(Hierarchical, StatsTrafficScalesWithParts) {
  const Circuit c = circuits::ising(10, 3, 2);
  const dag::CircuitDag d(c);
  const partition::Partitioning coarse = partition::partition_nat(d, 10);
  const partition::Partitioning fine = partition::partition_nat(d, 3);
  StateVector s1(10), s2(10);
  const auto st1 = HierarchicalSimulator().run(c, coarse, s1);
  const auto st2 = HierarchicalSimulator().run(c, fine, s2);
  EXPECT_GT(st2.parts, st1.parts);
  EXPECT_GT(st2.outer_bytes_moved, st1.outer_bytes_moved);
  EXPECT_LT(s1.max_abs_diff(s2), 1e-10);
}

TEST(Hierarchical, FlopsAccounted) {
  const Circuit c = circuits::bv(8);
  const dag::CircuitDag d(c);
  const partition::Partitioning p = partition::partition_nat(d, 4);
  StateVector s(8);
  const auto stats = HierarchicalSimulator().run(c, p, s);
  EXPECT_GT(stats.flops, 0.0);
}

}  // namespace
}  // namespace hisim::sv
