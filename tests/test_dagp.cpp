#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "partition/partition.hpp"

namespace hisim::partition {
namespace {

struct Case {
  std::string name;
  unsigned qubits;
  unsigned limit;
};

class DagpSuite : public ::testing::TestWithParam<Case> {};

TEST_P(DagpSuite, ValidAndWithinLimit) {
  const Case& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = tc.limit;
  const Partitioning p = partition_dagp(d, opt);
  validate(d, p);
  EXPECT_LE(p.max_working_set(), tc.limit);
}

TEST_P(DagpSuite, BeatsOrMatchesNat) {
  const Case& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = tc.limit;
  const Partitioning dagp = partition_dagp(d, opt);
  const Partitioning nat = partition_nat(d, tc.limit);
  // dagP's merge phase guarantees local optimality; it should essentially
  // never lose to the purely greedy natural cutoff by more than a part.
  EXPECT_LE(dagp.num_parts(), nat.num_parts() + 1)
      << tc.name << " limit " << tc.limit;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, DagpSuite,
    ::testing::Values(Case{"bv", 10, 5}, Case{"bv", 10, 8},
                      Case{"cat_state", 10, 4}, Case{"qft", 8, 5},
                      Case{"ising", 10, 5}, Case{"qaoa", 8, 5},
                      Case{"cc", 10, 6}, Case{"qnn", 8, 5},
                      Case{"qpe", 8, 5}, Case{"adder37", 10, 6},
                      Case{"grover", 8, 8}),
    [](const auto& ti) {
      return ti.param.name + "_q" + std::to_string(ti.param.qubits) +
             "_L" + std::to_string(ti.param.limit);
    });

TEST(Dagp, SinglePartWhenCircuitFits) {
  const Circuit c = circuits::qft(5);
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = 5;
  const Partitioning p = partition_dagp(d, opt);
  EXPECT_EQ(p.num_parts(), 1u);
}

TEST(Dagp, DeterministicForFixedSeed) {
  const Circuit c = circuits::qaoa(10, 2, 9);
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = 5;
  opt.seed = 777;
  const Partitioning a = partition_dagp(d, opt);
  const Partitioning b = partition_dagp(d, opt);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(Dagp, CoarseningPreservesValidity) {
  const Circuit c = circuits::qpe(9);
  const dag::CircuitDag d(c);
  PartitionOptions with, without;
  with.limit = without.limit = 5;
  with.coarsen = true;
  without.coarsen = false;
  const Partitioning a = partition_dagp(d, with);
  const Partitioning b = partition_dagp(d, without);
  validate(d, a);
  validate(d, b);
}

TEST(Dagp, MergePhaseNeverIncreasesParts) {
  const Circuit c = circuits::ising(10, 3, 2);
  const dag::CircuitDag d(c);
  PartitionOptions merged, unmerged;
  merged.limit = unmerged.limit = 5;
  merged.merge = true;
  unmerged.merge = false;
  const Partitioning a = partition_dagp(d, merged);
  const Partitioning b = partition_dagp(d, unmerged);
  validate(d, a);
  validate(d, b);
  EXPECT_LE(a.num_parts(), b.num_parts());
}

TEST(Dagp, EmptyCircuit) {
  const Circuit c(4);
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = 2;
  const Partitioning p = partition_dagp(d, opt);
  EXPECT_EQ(p.num_parts(), 0u);
}

TEST(Dagp, PartitionTimeRecorded) {
  const Circuit c = circuits::qft(8);
  const dag::CircuitDag d(c);
  PartitionOptions opt;
  opt.limit = 4;
  opt.strategy = Strategy::DagP;
  const Partitioning p = make_partition(d, opt);
  EXPECT_GT(p.partition_seconds, 0.0);
}

}  // namespace
}  // namespace hisim::partition
