#include "dist/iqs_baseline.hpp"

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "dist/hisvsim_dist.hpp"
#include "sv/simulator.hpp"

namespace hisim::dist {
namespace {

struct IqsCase {
  std::string name;
  unsigned qubits;
  unsigned p;
};

class IqsMatchesFlat : public ::testing::TestWithParam<IqsCase> {};

TEST_P(IqsMatchesFlat, SameAmplitudes) {
  const IqsCase& tc = GetParam();
  const Circuit c = circuits::make_by_name(tc.name, tc.qubits);
  DistState state(tc.qubits, tc.p);
  const IqsRunReport rep = IqsBaselineSimulator().run(c, state);
  const sv::StateVector flat = sv::FlatSimulator().simulate(c);
  EXPECT_LT(state.to_state_vector().max_abs_diff(flat), 1e-10)
      << tc.name << " p=" << tc.p;
  EXPECT_EQ(rep.ranks, 1u << tc.p);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, IqsMatchesFlat,
    ::testing::Values(IqsCase{"bv", 9, 2}, IqsCase{"bv", 9, 3},
                      IqsCase{"cat_state", 8, 2}, IqsCase{"qft", 8, 2},
                      IqsCase{"qft", 8, 3}, IqsCase{"ising", 9, 2},
                      IqsCase{"qaoa", 8, 2}, IqsCase{"cc", 9, 3},
                      IqsCase{"qpe", 8, 2}, IqsCase{"qnn", 8, 2},
                      IqsCase{"adder37", 10, 2}, IqsCase{"grover", 7, 2}),
    [](const auto& ti) {
      return ti.param.name + "_p" + std::to_string(ti.param.p);
    });

TEST(Iqs, LocalGatesAreFree) {
  Circuit c(6);  // p=2 -> qubits 4,5 global
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 3));
  c.add(Gate::rz(2, 0.5));
  DistState state(6, 2);
  const IqsRunReport rep = IqsBaselineSimulator().run(c, state);
  EXPECT_EQ(rep.comm.bytes_total, 0u);
  EXPECT_EQ(rep.comm.exchanges, 0u);
}

TEST(Iqs, DiagonalGlobalGatesAreFree) {
  Circuit c(6);
  c.add(Gate::h(5));          // costs one exchange first
  c.add(Gate::rz(5, 0.7));    // diagonal on global qubit: free
  c.add(Gate::cz(4, 5));      // diagonal two-qubit: free
  c.add(Gate::cp(0, 5, 0.3)); // diagonal: free
  DistState state(6, 2);
  const IqsRunReport rep = IqsBaselineSimulator().run(c, state);
  EXPECT_EQ(rep.comm.exchanges, 1u);
}

TEST(Iqs, GlobalControlLocalTargetIsFree) {
  Circuit c(6);
  c.add(Gate::h(0));
  c.add(Gate::cx(5, 0));  // control global, target local: no comm
  DistState state(6, 2);
  const IqsRunReport rep = IqsBaselineSimulator().run(c, state);
  EXPECT_EQ(rep.comm.exchanges, 0u);
}

TEST(Iqs, GlobalTargetCostsExchange) {
  Circuit c(6);
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 5));  // target global: pairwise exchange
  DistState state(6, 2);
  const IqsRunReport rep = IqsBaselineSimulator().run(c, state);
  EXPECT_EQ(rep.comm.exchanges, 1u);
  EXPECT_GT(rep.comm.bytes_total, 0u);
}

TEST(Iqs, HisvsimBeatsIqsOnCommForDeepCircuits) {
  // The headline claim: per-part redistribution beats per-gate exchange
  // when many non-diagonal gates target global qubits (bv's oracle CXs all
  // hit the top-qubit ancilla). Diagonal-heavy circuits like qft/qpe are
  // the paper's exception.
  const Circuit c = circuits::bv(9, 0xFF);
  const unsigned p = 2;
  DistState s1(9, p), s2(9, p);
  const IqsRunReport iqs = IqsBaselineSimulator().run(c, s1);
  DistributedHiSvSim::Options opt;
  opt.process_qubits = p;
  const DistRunReport his = DistributedHiSvSim().run(c, opt, s2);
  EXPECT_LT(s1.to_state_vector().max_abs_diff(s2.to_state_vector()), 1e-10);
  EXPECT_LT(his.comm.modeled_max_seconds, iqs.comm.modeled_max_seconds);
}

TEST(Iqs, RequiresIdentityLayout) {
  const Circuit c = circuits::bv(6);
  DistState state(6, 2);
  NetworkModel net;
  CommStats stats;
  const RankLayout scrambled =
      RankLayout::for_part(6, 2, {4, 5}, state.layout());
  state.redistribute(scrambled, net, stats);
  EXPECT_THROW(IqsBaselineSimulator().run(c, state), Error);
}

}  // namespace
}  // namespace hisim::dist
