#include "dist/layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace hisim::dist {
namespace {

TEST(Layout, IdentityRoundTrip) {
  const RankLayout lay = RankLayout::identity(6, 2);
  EXPECT_EQ(lay.num_ranks(), 4u);
  EXPECT_EQ(lay.local_qubits(), 4u);
  for (unsigned r = 0; r < 4; ++r)
    for (Index i = 0; i < 16; ++i) {
      const Index g = lay.global_index(r, i);
      EXPECT_EQ(g, (Index{r} << 4) | i);
      const auto [r2, i2] = lay.locate(g);
      EXPECT_EQ(r2, r);
      EXPECT_EQ(i2, i);
    }
}

TEST(Layout, PaperFig3Example) {
  // 4 qubits, 4 ranks: identity layout [a3,a2 | a1,a0].
  const RankLayout lay = RankLayout::identity(4, 2);
  // amplitude a_0110 (global 6) lives on rank P(0,1)=1, local l(1,0)=2.
  const auto [r, i] = lay.locate(0b0110);
  EXPECT_EQ(r, 1u);
  EXPECT_EQ(i, 2u);
}

TEST(Layout, PermutationValidated) {
  EXPECT_THROW(RankLayout(3, 1, {0, 0, 2}), Error);
  EXPECT_THROW(RankLayout(3, 1, {0, 1}), Error);
  EXPECT_THROW(RankLayout(3, 1, {0, 1, 5}), Error);
}

TEST(Layout, ForPartPlacesPartQubitsLocal) {
  const RankLayout prev = RankLayout::identity(8, 3);
  const std::vector<Qubit> part = {5, 6, 7};  // previously process qubits
  const RankLayout lay = RankLayout::for_part(8, 3, part, prev);
  for (Qubit q : part) EXPECT_TRUE(lay.is_local(q)) << q;
  // All slots used exactly once is enforced by the constructor.
}

TEST(Layout, ForPartKeepsStableQubits) {
  const RankLayout prev = RankLayout::identity(8, 2);
  // Part over qubits already local: layout should be unchanged.
  const RankLayout lay = RankLayout::for_part(8, 2, {0, 1, 2}, prev);
  EXPECT_TRUE(lay == prev);
}

TEST(Layout, ForPartRejectsOversizedPart) {
  const RankLayout prev = RankLayout::identity(4, 2);
  EXPECT_THROW(RankLayout::for_part(4, 2, {0, 1, 2}, prev), Error);
}

TEST(Layout, GlobalIndexBijective) {
  const RankLayout prev = RankLayout::identity(6, 2);
  const RankLayout lay = RankLayout::for_part(6, 2, {4, 5, 1}, prev);
  std::set<Index> seen;
  for (unsigned r = 0; r < lay.num_ranks(); ++r)
    for (Index i = 0; i < lay.local_dim(); ++i) {
      const Index g = lay.global_index(r, i);
      EXPECT_TRUE(seen.insert(g).second);
      const auto [r2, i2] = lay.locate(g);
      EXPECT_EQ(r2, r);
      EXPECT_EQ(i2, i);
    }
  EXPECT_EQ(seen.size(), Index{1} << 6);
}

}  // namespace
}  // namespace hisim::dist
