// The checked-build layer (common/check.hpp): death tests prove each deep
// validator actually fires on a corrupted artifact, and the pass-through
// suite proves every legitimately compiled plan validates cleanly. The
// validators assert via HISIM_INVARIANT (always armed), so this file runs
// identically with and without -DHISIM_CHECKED=ON — the CMake option only
// decides whether compile()/execute() call them automatically.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "circuit/fusion.hpp"
#include "circuits/generators.hpp"
#include "common/check.hpp"
#include "dist/hisvsim_dist.hpp"
#include "hisvsim/engine.hpp"
#include "noise/trajectory.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

namespace hisim {
namespace {

constexpr const char* kAbortPrefix = "HISIM invariant violated";

// ---- state-vector norm preservation ---------------------------------------

TEST(CheckedDeath, NormNotPreservedAborts) {
  EXPECT_DEATH(sv::validate_norm_preserved(1.0, 0.5, "test"),
               "norm not preserved");
}

TEST(Checked, NormWithinToleranceAccepted) {
  sv::validate_norm_preserved(1.0, 1.0 + 1e-12, "test");
  sv::validate_norm_preserved(4.0, 4.0 - 1e-10, "scaled");
}

// ---- fusion-run disjointness ----------------------------------------------

TEST(CheckedDeath, OverlappingFusionSupportsAbort) {
  const std::vector<std::vector<Qubit>> supports = {{0, 1}, {1, 2}};
  EXPECT_DEATH(validate_fusion_supports(supports, 3), "overlap");
}

TEST(CheckedDeath, UnsortedFusionSupportAborts) {
  const std::vector<std::vector<Qubit>> supports = {{1, 0}};
  EXPECT_DEATH(validate_fusion_supports(supports, 3), "not sorted");
}

TEST(CheckedDeath, OverwideFusionSupportAborts) {
  const std::vector<std::vector<Qubit>> supports = {{0, 1, 2, 3}};
  EXPECT_DEATH(validate_fusion_supports(supports, 3), "limit is 3");
}

TEST(Checked, DisjointFusionSupportsAccepted) {
  const std::vector<std::vector<Qubit>> supports = {{0, 1}, {2, 3}, {5}};
  validate_fusion_supports(supports, 3);
}

// ---- noise-slot table ------------------------------------------------------

noise::CompiledNoise one_slot_noise() {
  noise::CompiledNoise cn;
  cn.channels.push_back(noise::Channel::bit_flip(0.05));
  cn.slots.push_back(noise::Slot{0, 0});
  return cn;
}

TEST(CheckedDeath, DuplicateNoiseSlotIdAborts) {
  Circuit c(1);
  c.add(Gate::noise_slot(0, 0));
  c.add(Gate::noise_slot(0, 0));
  noise::CompiledNoise cn = one_slot_noise();
  cn.slots.push_back(noise::Slot{0, 0});  // two reserved slots, one id used
  EXPECT_DEATH(noise::validate_slots(c, cn), "appears more than once");
}

TEST(CheckedDeath, MissingNoiseSlotAborts) {
  Circuit c(1);
  c.add(Gate::x(0));  // plan reserved a slot the circuit does not carry
  EXPECT_DEATH(noise::validate_slots(c, one_slot_noise()), kAbortPrefix);
}

TEST(CheckedDeath, NoiseSlotOnWrongQubitAborts) {
  Circuit c(2);
  c.add(Gate::noise_slot(1, 0));  // reserved for qubit 0
  EXPECT_DEATH(noise::validate_slots(c, one_slot_noise()),
               "reserved for qubit");
}

TEST(Checked, ConsistentNoiseSlotsAccepted) {
  Circuit c(1);
  c.add(Gate::x(0));
  c.add(Gate::noise_slot(0, 0));
  noise::validate_slots(c, one_slot_noise());
}

// ---- distributed exchange schedule ----------------------------------------

dist::DistPlan small_plan() {
  dist::DistOptions opt;
  opt.process_qubits = 2;
  opt.part.limit = 4;
  return dist::compile_plan(circuits::qft(6), opt);
}

TEST(Checked, CompiledDistPlanValidates) {
  const dist::DistPlan plan = small_plan();
  ASSERT_GT(plan.steps.size(), 0u);
  dist::validate_plan(plan);
}

TEST(CheckedDeath, ExtraCircuitGateAborts) {
  dist::DistPlan plan = small_plan();
  plan.circuit.add(Gate::x(0));  // steps no longer cover the circuit
  EXPECT_DEATH(dist::validate_plan(plan), "steps carry");
}

TEST(CheckedDeath, DroppedStepAborts) {
  dist::DistPlan plan = small_plan();
  ASSERT_GT(plan.steps.size(), 1u);
  plan.steps.pop_back();  // the dropped step's gates are now lost
  EXPECT_DEATH(dist::validate_plan(plan), "steps carry");
}

TEST(CheckedDeath, CorruptedStepLayoutAborts) {
  dist::DistPlan plan = small_plan();
  ASSERT_GT(plan.steps.size(), 1u);
  // Replace a step's layout with another step's (both are valid
  // permutations, so shape and conservation still hold) — unmapping the
  // step's slot-local gates through the wrong permutation must break the
  // gate-multiset cover.
  const std::size_t a = 0, b = plan.steps.size() - 1;
  ASSERT_NE(plan.steps[a].layout.slot_of(0), plan.steps[b].layout.slot_of(0));
  plan.steps[a].layout = plan.steps[b].layout;
  EXPECT_DEATH(dist::validate_plan(plan), kAbortPrefix);
}

TEST(CheckedDeath, CorruptNoiseSlotTableAborts) {
  dist::DistPlan plan = small_plan();
  ASSERT_GT(plan.steps[0].local.num_gates(), 0u);
  // Point the table at gate 0, which is a real gate, not a NoiseSlot.
  plan.steps[0].noise_slots.emplace_back(0, 0);
  EXPECT_DEATH(dist::validate_plan(plan), "does not match the gate");
}

// ---- ExecutionPlan::validate ----------------------------------------------

TEST(Checked, EmptyPlanThrowsInsteadOfAborting) {
  // Calling validate() on a default-constructed plan is a caller
  // precondition bug, not a corrupted artifact: it throws hisim::Error.
  EXPECT_THROW(ExecutionPlan().validate(), Error);
}

class CheckedPlans : public ::testing::TestWithParam<Target> {};

TEST_P(CheckedPlans, CompiledPlansValidateAndExecute) {
  const Circuit c = circuits::qft(8);
  const sv::StateVector ref = sv::FlatSimulator().simulate(c);

  Options opt;
  opt.target = GetParam();
  opt.limit = 5;
  if (target_is_distributed(opt.target)) opt.process_qubits = 2;
  const ExecutionPlan plan = Engine::compile(c, opt);
  plan.validate();  // explicit: exercised in every build, not only CHECKED

  const Result r = plan.execute();
  EXPECT_NEAR(r.norm, 1.0, 1e-9);
  EXPECT_LT(r.state.max_abs_diff(ref), 1e-9) << target_name(opt.target);
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, CheckedPlans,
    ::testing::Values(Target::Flat, Target::Hierarchical, Target::Multilevel,
                      Target::DistributedSerial, Target::DistributedThreaded,
                      Target::IqsBaseline),
    [](const auto& ti) {
      std::string name = target_name(ti.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(Checked, SuiteCircuitsValidateUnderHierarchical) {
  // The Table-I generators at reduced scale, straight through
  // compile + validate + execute. Under -DHISIM_CHECKED=ON compile() also
  // auto-validates and execute() enforces norm preservation.
  for (const char* name : {"cat_state", "bv", "qaoa", "ising", "qnn"}) {
    const Circuit c = circuits::make_by_name(name, 7);
    Options opt;
    opt.limit = 5;
    const ExecutionPlan plan = Engine::compile(c, opt);
    plan.validate();
    const Result r = plan.execute();
    EXPECT_LT(r.state.max_abs_diff(sv::FlatSimulator().simulate(c)), 1e-9)
        << name;
  }
}

TEST(Checked, FusedAndNoisyPlansValidate) {
  const Circuit c = fuse(circuits::qft(7), {.max_qubits = 3});
  Options opt;
  opt.limit = 5;
  opt.noise.after_all_gates(noise::Channel::depolarizing(0.01));
  const ExecutionPlan plan = Engine::compile(c, opt);
  EXPECT_GT(plan.num_noise_slots(), 0u);
  plan.validate();
  const NoisyResult nr = plan.execute_trajectories(4);
  EXPECT_EQ(nr.trajectories, 4u);
}

TEST(Checked, ParameterizedPlanValidates) {
  const circuits::QaoaInstance inst = circuits::qaoa_instance(6, 2);
  Options opt;
  opt.limit = 4;
  const ExecutionPlan plan = Engine::compile(inst.circuit, opt);
  plan.validate();
  ExecOptions eo;
  eo.bindings = inst.uniform_binding(0.4, 0.7);
  const Result r = plan.execute(eo);
  EXPECT_NEAR(r.norm, 1.0, 1e-9);
}

}  // namespace
}  // namespace hisim
