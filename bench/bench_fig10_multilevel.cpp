// Fig. 10: single-level vs multi-level HiSVSIM runtime on the deep
// circuits (qaoa, qft, qnn, qpe, adder) at the largest rank count.

#include <cstdio>

#include "bench_util.hpp"
#include "partition/multilevel.hpp"
#include "sv/traffic.hpp"

namespace {

using namespace hisim;

/// Modeled DRAM traffic of a two-level run: level-1 gather/scatter streams
/// the distributed state once per part; each level-2 part streams the
/// level-1 inner vector (DRAM-resident when it exceeds the LLC); gate
/// execution stays inside the cache-sized level-2 vectors. The single-level
/// run instead pays one inner-vector sweep *per gate*. This model carries
/// the Fig. 10 effect, which is a >LLC cache phenomenon our scaled wall
/// times cannot expose directly (see EXPERIMENTS.md).
double multilevel_dram_bytes(const Circuit& c,
                             const partition::TwoLevelPartitioning& two) {
  const double sv = static_cast<double>(dim(c.num_qubits())) * kAmpBytes;
  double bytes = 0;
  for (std::size_t i = 0; i < two.level1.num_parts(); ++i) {
    bytes += 2.0 * sv;  // level-1 gather + scatter
    bytes += 2.0 * sv * static_cast<double>(two.level2[i].num_parts());
  }
  return bytes;
}

double singlelevel_dram_bytes(const Circuit& c,
                              const partition::Partitioning& parts) {
  const double sv = static_cast<double>(dim(c.num_qubits())) * kAmpBytes;
  double bytes = 0;
  for (const auto& part : parts.parts)
    bytes += 2.0 * sv + 2.0 * sv * static_cast<double>(part.gates.size());
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const unsigned p = args.process_qubits.back();

  std::printf("== Fig. 10: single-level vs multi-level (%u ranks) ==\n", 1u << p);
  std::printf("(wall = modeled end-to-end seconds; dram = modeled DRAM GiB "
              "for >LLC level-1 vectors)\n\n");
  bench::print_row({"circuit", "wall-1L", "wall-2L", "dram-1L", "dram-2L",
                    "dram-gain", "l1-parts", "l2-parts"},
                   {10, 9, 9, 9, 9, 9, 8, 8});

  double gains = 0;
  unsigned cases = 0;
  for (const auto& e : bench::scaled_suite(args)) {
    const std::string& name = e.meta.name;
    if (name != "qaoa" && name != "qft" && name != "qnn" && name != "qpe" &&
        name != "adder37")
      continue;
    const Circuit& c = e.circuit;
    const unsigned l = c.num_qubits() - p;
    const unsigned level2 = l > 4 ? l - 4 : l;  // cache-sized second level
    const auto single = bench::run_hisvsim(args, c, p,
                                           partition::Strategy::DagP);
    const auto multi = bench::run_hisvsim(args, c, p,
                                          partition::Strategy::DagP, level2);
    const dag::CircuitDag dag(c);
    partition::PartitionOptions po;
    po.limit = l;
    po.seed = args.seed;
    const auto parts1 = partition::make_partition(dag, po);
    const auto two = partition::partition_two_level(dag, po, level2);
    const double dram1 = singlelevel_dram_bytes(c, parts1);
    const double dram2 = multilevel_dram_bytes(c, two);
    const double gain = dram2 > 0 ? dram1 / dram2 : 0.0;
    gains += gain;
    ++cases;
    bench::print_row(
        {name, bench::fmt(single.total_seconds(), 4),
         bench::fmt(multi.total_seconds(), 4),
         bench::fmt(dram1 / (1u << 30), 3), bench::fmt(dram2 / (1u << 30), 3),
         bench::fmt(gain, 2), std::to_string(two.level1.num_parts()),
         std::to_string(two.total_inner_parts())},
        {10, 9, 9, 9, 9, 9, 8, 8});
  }
  if (cases > 0)
    std::printf("\nmean modeled DRAM-traffic gain: %.2fx (paper: 15.8%% mean "
                "runtime reduction, up to 1.47x over single-level)\n",
                gains / cases);
  return 0;
}
