// Fig. 5: improvement factor of HiSVSIM over the IQS-style baseline for
// each circuit, strategy, and rank count (modeled end-to-end time on the
// simulated cluster).

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Fig. 5: improvement factor over IQS baseline ==\n\n");
  bench::print_row({"circuit", "ranks", "Nat", "DFS", "dagP"},
                   {10, 6, 8, 8, 8});

  std::vector<double> dagp_factors, dagp_factors_large;
  for (const auto& e : bench::scaled_suite(args)) {
    for (unsigned p : args.process_qubits) {
      const auto iqs = bench::run_iqs(args, e.circuit, p);
      std::vector<std::string> row = {e.meta.name,
                                      std::to_string(1u << p)};
      for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                     partition::Strategy::DagP}) {
        const auto his = bench::run_hisvsim(args, e.circuit, p, s);
        const double factor =
            his.total_seconds() > 0
                ? iqs.total_seconds() / his.total_seconds()
                : 0.0;
        row.push_back(bench::fmt(factor, 2));
        if (s == partition::Strategy::DagP) {
          dagp_factors.push_back(factor);
          if (e.meta.paper_qubits >= 35) dagp_factors_large.push_back(factor);
        }
      }
      bench::print_row(row, {10, 6, 8, 8, 8});
    }
  }
  std::printf("\ngeomean dagP improvement: %.2fx (paper: 2.1x mean, up to "
              "3.9x)\n",
              bench::geomean(dagp_factors));
  if (!dagp_factors_large.empty())
    std::printf("geomean dagP improvement, larger circuits: %.2fx (paper: "
                "3.0x mean for >=35 qubits)\n",
                bench::geomean(dagp_factors_large));
  return 0;
}
