// Optimization pass pipeline impact on the Table I suite: per-circuit
// gate-count and partition-count deltas between opt_level 0 and 1, the
// per-pass removal breakdown, and the compile-time overhead the pipeline
// adds. --json emits one object per circuit plus a summary with the mean
// gate reduction (the acceptance bar is >= 10%).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "opt/pass_manager.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  if (!args.json) {
    std::printf(
        "== Optimization passes: gate/partition deltas on the suite ==\n");
    std::printf("(opt_level 0 vs 1, Hierarchical target)\n\n");
    bench::print_row({"circuit", "qubits", "gates0", "gates1", "reduct",
                      "parts0", "parts1", "compile-ovh"},
                     {10, 7, 8, 8, 8, 7, 7, 12});
  } else {
    std::printf("[\n");
  }

  double sum_reduction = 0.0;
  int count = 0;
  bool first = true;
  for (const auto& e : bench::scaled_suite(args)) {
    const Circuit& c = e.circuit;
    unsigned max_arity = 2;  // the hierarchical target does not lower
    for (const Gate& g : c.gates())
      max_arity = std::max(max_arity, g.arity());
    Options o1;
    o1.target = Target::Hierarchical;
    o1.limit = std::max(max_arity, c.num_qubits() / 2);
    o1.seed = args.seed;
    Options o0 = o1;
    o0.opt_level = 0;

    const auto t0 = std::chrono::steady_clock::now();
    const ExecutionPlan p0 = Engine::compile(c, o0);
    const double compile0 = seconds_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    const ExecutionPlan p1 = Engine::compile(c, o1);
    const double compile1 = seconds_since(t1);

    const std::size_t gates0 = p0.circuit().num_gates();
    const std::size_t gates1 = p1.circuit().num_gates();
    const double reduction =
        1.0 - static_cast<double>(gates1) / static_cast<double>(gates0);
    sum_reduction += reduction;
    ++count;

    if (args.json) {
      std::printf("%s  {\"circuit\": \"%s\", \"qubits\": %u, "
                  "\"gates_pre_opt\": %zu, \"gates\": %zu, "
                  "\"gate_reduction\": %.4f, \"parts_pre_opt\": %zu, "
                  "\"parts\": %zu, \"compile_seconds_opt0\": %.6f, "
                  "\"compile_seconds_opt1\": %.6f, \"opt_passes\": {",
                  first ? "" : ",\n", e.meta.name.c_str(), c.num_qubits(),
                  gates0,
                  gates1, reduction, p0.num_parts(), p1.num_parts(),
                  compile0, compile1);
      bool first_pass = true;
      for (const PassDelta& d : p1.opt_report().deltas) {
        std::printf("%s\"%s\": %zu", first_pass ? "" : ", ", d.pass.c_str(),
                    d.removed);
        first_pass = false;
      }
      std::printf("}}");
      first = false;
    } else {
      bench::print_row(
          {e.meta.name, std::to_string(c.num_qubits()),
           std::to_string(gates0), std::to_string(gates1),
           bench::fmt(100.0 * reduction, 1) + "%",
           std::to_string(p0.num_parts()), std::to_string(p1.num_parts()),
           bench::fmt(1e3 * (compile1 - compile0), 3) + " ms"},
          {10, 7, 8, 8, 8, 7, 7, 12});
    }
  }

  const double mean = count > 0 ? sum_reduction / count : 0.0;
  if (args.json) {
    std::printf(",\n  {\"mean_gate_reduction\": %.4f, \"circuits\": %d}\n]\n",
                mean, count);
  } else {
    std::printf("\nmean gate reduction: %s%% over %d circuits\n",
                bench::fmt(100.0 * mean, 1).c_str(), count);
  }
  return 0;
}
