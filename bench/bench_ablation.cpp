// Ablation of dagP's design choices (DESIGN.md): coarsening, the final
// merge phase, FM refinement passes, and the number of candidate
// topological orders per bisection — measured by part count and
// partitioning time across the suite.

#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"

namespace {

struct Variant {
  std::string name;
  hisim::partition::PartitionOptions tweak;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  partition::PartitionOptions base;
  base.seed = args.seed;

  std::vector<Variant> variants;
  variants.push_back({"full", base});
  {
    auto v = base;
    v.coarsen = false;
    variants.push_back({"no-coarsen", v});
  }
  {
    auto v = base;
    v.merge = false;
    variants.push_back({"no-merge", v});
  }
  {
    auto v = base;
    v.refine_passes = 0;
    variants.push_back({"no-refine", v});
  }
  {
    auto v = base;
    v.bisect_candidates = 1;
    variants.push_back({"1-candidate", v});
  }

  std::printf("== dagP ablation: parts (and partition us) per variant ==\n\n");
  std::vector<std::string> header = {"circuit"};
  for (const auto& v : variants) header.push_back(v.name);
  bench::print_row(header, {10, 14, 14, 14, 14, 14});

  std::vector<std::vector<double>> parts_by_variant(variants.size());
  for (const auto& e : bench::scaled_suite(args)) {
    const dag::CircuitDag dag(e.circuit);
    const unsigned limit = e.circuit.num_qubits() - 3;
    std::vector<std::string> row = {e.meta.name};
    for (std::size_t i = 0; i < variants.size(); ++i) {
      auto opt = variants[i].tweak;
      opt.limit = limit;
      Timer t;
      const auto p = partition::partition_dagp(dag, opt);
      row.push_back(std::to_string(p.num_parts()) + " (" +
                    bench::fmt(t.micros(), 0) + "us)");
      parts_by_variant[i].push_back(static_cast<double>(p.num_parts()));
    }
    bench::print_row(row, {10, 14, 14, 14, 14, 14});
  }
  std::printf("\ngeomean parts: ");
  for (std::size_t i = 0; i < variants.size(); ++i)
    std::printf("%s=%.2f ", variants[i].name.c_str(),
                bench::geomean(parts_by_variant[i]));
  std::printf("\n(the merge phase and multi-candidate bisection should "
              "matter most; coarsening mainly buys speed)\n");
  return 0;
}
