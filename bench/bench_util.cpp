#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace hisim::bench {

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--qubits-delta=", 0) == 0) {
      args.qubits_delta = std::atoi(a.c_str() + 15);
    } else if (a.rfind("--ranks=", 0) == 0) {
      args.process_qubits.clear();
      std::stringstream ss(a.substr(8));
      std::string tok;
      while (std::getline(ss, tok, ','))
        args.process_qubits.push_back(
            static_cast<unsigned>(std::atoi(tok.c_str())));
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (a.rfind("--backend=", 0) == 0) {
      args.backend = dist::parse_backend(a.substr(10));
    } else if (a == "--quick") {
      args.quick = true;
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--help") {
      std::printf("flags: --qubits-delta=N --ranks=p1,p2 --seed=N --quick "
                  "--json --backend=serial|threaded\n");
      std::exit(0);
    }
  }
  if (args.quick) {
    args.qubits_delta -= 2;
    if (args.process_qubits.size() > 2) args.process_qubits.resize(2);
  }
  return args;
}

std::vector<SuiteEntry> scaled_suite(const Args& args) {
  std::vector<SuiteEntry> out;
  for (const auto& b : circuits::qasmbench_suite()) {
    const int n = static_cast<int>(b.default_qubits) + args.qubits_delta;
    const unsigned qubits = static_cast<unsigned>(std::max(8, n));
    Circuit c = b.make(qubits);
    c.set_name(b.name);
    out.push_back(SuiteEntry{b, std::move(c)});
  }
  return out;
}

namespace {

/// Single report sink for every bench run: the table columns read Result
/// fields, and --json dumps the full serialized report per run.
hisim::Result finish(const Args& args, hisim::Result r) {
  if (args.json) std::printf("%s\n", r.to_json().c_str());
  return r;
}

/// Benches read only the report fields: skip the O(2^n) state gather.
ExecOptions report_only() {
  ExecOptions x;
  x.want_state = false;
  return x;
}

}  // namespace

hisim::Result run_hisvsim(const Args& args, const Circuit& c, unsigned p,
                          partition::Strategy strategy, unsigned level2_limit,
                          dist::BackendKind backend) {
  Options opt;
  opt.target = target_for_backend(backend);
  opt.strategy = strategy;
  opt.level2_limit = level2_limit;
  opt.process_qubits = p;
  opt.seed = args.seed;
  return finish(args, Engine::compile(c, opt).execute(report_only()));
}

hisim::Result run_iqs(const Args& args, const Circuit& c, unsigned p) {
  Options opt;
  opt.target = Target::IqsBaseline;
  opt.process_qubits = p;
  opt.seed = args.seed;
  return finish(args, Engine::compile(c, opt).execute(report_only()));
}

double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x <= 0) continue;
    log_sum += std::log(x);
    ++n;
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s ", w, cells[i].c_str());
  }
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace hisim::bench
