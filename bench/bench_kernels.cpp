// Kernel-tier microbench: per-gate-shape apply throughput for every
// available kernel tier (scalar always; simd when the build and CPU
// support it), single-threaded on a cache-resident state so the numbers
// measure the kernels, not the memory system or the thread pool.
//
//   bench_kernels [--qubits=N] [--quick] [--json]
//
// --json emits one machine-readable object (schema below) — the payload
// tools/record_bench.py appends into BENCH_kernels.json at the repo root:
//
//   {"bench": "kernels", "qubits": N, "threads": 1,
//    "simd_available": true|false,
//    "cases": [{"case": "dense_1q", "gate": "h q", "flops_per_apply": F,
//               "tiers": [{"tier": "scalar", "seconds_per_apply": s,
//                          "gflops": g, "speedup_vs_scalar": 1.0}, ...]}]}
//
// Permutation shapes (x / cx / swap) are tier-invariant index moves
// (gate_flops prices them at zero), so they report gflops 0 and a
// speedup near 1 — they are in the table to pin that invariant, not to
// race the tiers.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "sv/kernel_dispatch.hpp"
#include "sv/kernels.hpp"
#include "sv/state_vector.hpp"

namespace {

using namespace hisim;

struct Case {
  const char* name;
  Gate gate;
};

struct TierResult {
  const char* tier;
  double seconds_per_apply = 0.0;
  double gflops = 0.0;
  double speedup_vs_scalar = 1.0;
};

/// Repeats apply_gate until `min_seconds` of work has accumulated (after
/// one warmup apply) and returns seconds per apply. Unitary gates keep
/// the state normalized, so repetition is self-stable.
double time_apply(sv::StateVector& s, const Gate& g,
                  const sv::KernelOps& ops, double min_seconds) {
  sv::apply_gate(s, g, ops);  // warmup: faults pages, primes caches
  std::size_t reps = 1;
  for (;;) {
    Stopwatch w;
    w.start();
    for (std::size_t r = 0; r < reps; ++r) sv::apply_gate(s, g, ops);
    w.stop();
    if (w.seconds() >= min_seconds)
      return w.seconds() / static_cast<double>(reps);
    // Re-estimate, growing at least 2x so short timers converge fast.
    reps *= 2;
  }
}

std::string json_escape_gate(const Gate& g) {
  std::string s = g.to_string();
  for (char& c : s)
    if (c == '"' || c == '\\') c = ' ';
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned n = 12;  // 64 KiB state: cache-resident, kernels not memory
  bool quick = false, json = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--qubits=", 9) == 0) {
      n = static_cast<unsigned>(std::atoi(a + 9));
    } else if (std::strcmp(a, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernels [--qubits=N] [--quick] [--json]\n");
      return 1;
    }
  }
  if (n < 6) n = 6;
  const double min_seconds = quick ? 0.01 : 0.2;

  // Single-threaded by construction: the bench compares kernel code, and
  // pool scheduling noise at cache-resident sizes would swamp it.
  parallel::set_num_threads(1);

  const Qubit mid = static_cast<Qubit>(n / 2);
  const Qubit lo = 1, hi = static_cast<Qubit>(n - 2);
  const std::vector<Case> cases = {
      {"dense_1q", Gate::h(mid)},
      {"dense_1q_q0", Gate::h(0)},
      {"diag_1q", Gate::rz(mid, 0.7)},
      {"diag_1q_q0", Gate::rz(0, 0.7)},
      {"ctrl_dense_1q", Gate::cry(lo, hi, 0.6)},
      {"ctrl_diag_1q", Gate::cp(lo, hi, 0.6)},
      {"dense_2q", Gate::rxx(lo, hi, 0.4)},
      {"diag_2q", Gate::rzz(lo, hi, 0.7)},
      {"perm_x", Gate::x(mid)},
      {"perm_cx", Gate::cx(lo, hi)},
      {"perm_swap", Gate::swap(lo, hi)},
  };

  std::vector<const sv::KernelOps*> tiers;
  tiers.push_back(&sv::kernel_ops(sv::KernelTier::Scalar));
  if (sv::simd_kernels_available())
    tiers.push_back(&sv::kernel_ops(sv::KernelTier::Simd));

  if (!json) {
    std::printf("== Kernel tiers: %u qubits, 1 thread, simd %s ==\n\n", n,
                sv::simd_kernels_available() ? "available" : "unavailable");
    std::printf("%-14s %-12s %12s %10s %10s\n", "case", "tier", "s/apply",
                "GFLOP/s", "vs scalar");
  }

  sv::StateVector s(n);
  std::string out = "{\n  \"bench\": \"kernels\",\n  \"qubits\": " +
                    std::to_string(n) + ",\n  \"threads\": 1,\n" +
                    "  \"simd_available\": " +
                    (sv::simd_kernels_available() ? "true" : "false") +
                    ",\n  \"cases\": [";
  bool first_case = true;
  for (const Case& c : cases) {
    const double flops = sv::gate_flops(c.gate, n);
    std::vector<TierResult> results;
    for (const sv::KernelOps* ops : tiers) {
      TierResult r;
      r.tier = ops->name;
      r.seconds_per_apply = time_apply(s, c.gate, *ops, min_seconds);
      r.gflops = flops > 0.0 ? flops / r.seconds_per_apply / 1e9 : 0.0;
      r.speedup_vs_scalar =
          results.empty()
              ? 1.0
              : results.front().seconds_per_apply / r.seconds_per_apply;
      results.push_back(r);
    }
    if (json) {
      out += std::string(first_case ? "" : ",") + "\n    {\"case\": \"" +
             c.name + "\", \"gate\": \"" + json_escape_gate(c.gate) +
             "\", \"flops_per_apply\": " + std::to_string(flops) +
             ", \"tiers\": [";
      for (std::size_t t = 0; t < results.size(); ++t) {
        const TierResult& r = results[t];
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "%s{\"tier\": \"%s\", \"seconds_per_apply\": %.9g, "
                      "\"gflops\": %.4f, \"speedup_vs_scalar\": %.3f}",
                      t ? ", " : "", r.tier, r.seconds_per_apply, r.gflops,
                      r.speedup_vs_scalar);
        out += buf;
      }
      out += "]}";
      first_case = false;
    } else {
      for (const TierResult& r : results)
        std::printf("%-14s %-12s %12.3e %10.2f %9.2fx\n", c.name, r.tier,
                    r.seconds_per_apply, r.gflops, r.speedup_vs_scalar);
    }
  }
  if (json) {
    out += "\n  ]\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf(
        "\nexpected: simd >= 2x scalar on dense_1q and diag_1q (AVX2 "
        "hosts); perm_* rows are tier-invariant index moves (~1x).\n");
  }
  return 0;
}
