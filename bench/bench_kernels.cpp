// Microbenchmarks of the state-vector substrate (google-benchmark):
// gate-kernel throughput per kind, gather/scatter streaming, and the
// roofline behaviour of Sec. III-A (single-qubit gates are memory bound).

#ifdef HISIM_HAVE_GBENCH
#include <benchmark/benchmark.h>

#include "circuit/gate.hpp"
#include "common/bits.hpp"
#include "sv/kernels.hpp"
#include "sv/state_vector.hpp"

namespace {

using namespace hisim;

void BM_Hadamard(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  sv::StateVector s(n);
  const Gate g = Gate::h(n / 2);
  for (auto _ : state) {
    sv::apply_gate(s, g);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.bytes()) * 2);
}
BENCHMARK(BM_Hadamard)->DenseRange(10, 20, 5);

void BM_CxLowTarget(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  sv::StateVector s(n);
  const Gate g = Gate::cx(0, 1);
  for (auto _ : state) sv::apply_gate(s, g);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.bytes()));
}
BENCHMARK(BM_CxLowTarget)->DenseRange(10, 20, 5);

void BM_CxHighTarget(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  sv::StateVector s(n);
  const Gate g = Gate::cx(0, n - 1);
  for (auto _ : state) sv::apply_gate(s, g);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.bytes()));
}
BENCHMARK(BM_CxHighTarget)->DenseRange(10, 20, 5);

void BM_DiagonalRz(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  sv::StateVector s(n);
  const Gate g = Gate::rz(n / 2, 0.7);
  for (auto _ : state) sv::apply_gate(s, g);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.bytes()) * 2);
}
BENCHMARK(BM_DiagonalRz)->DenseRange(10, 20, 5);

void BM_GenericTwoQubit(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  sv::StateVector s(n);
  const Gate g = Gate::rxx(1, n - 2, 0.4);
  for (auto _ : state) sv::apply_gate(s, g);
}
BENCHMARK(BM_GenericTwoQubit)->DenseRange(10, 18, 4);

void BM_GatherScatter(benchmark::State& state) {
  // The Algorithm-1 inner loop: gather 2^w strided amps, scatter back.
  const unsigned n = static_cast<unsigned>(state.range(0));
  const unsigned w = static_cast<unsigned>(state.range(1));
  sv::StateVector outer(n);
  sv::StateVector inner(w);
  Index mask = 0;  // every other qubit: worst-case stride pattern
  for (unsigned j = 0; j < w; ++j) mask |= Index{1} << (2 * j < n ? 2 * j : j);
  const Index inv = ~mask & (outer.size() - 1);
  std::vector<Index> offset(Index{1} << w);
  for (Index t = 0; t < offset.size(); ++t)
    offset[t] = bits::deposit(t, mask);
  for (auto _ : state) {
    for (Index m = 0; m < (outer.size() >> w); ++m) {
      const Index base = bits::deposit(m, inv);
      for (Index t = 0; t < offset.size(); ++t)
        inner[t] = outer[base | offset[t]];
      for (Index t = 0; t < offset.size(); ++t)
        outer[base | offset[t]] = inner[t];
    }
    benchmark::DoNotOptimize(outer.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(outer.bytes()) * 2);
}
BENCHMARK(BM_GatherScatter)->Args({16, 8})->Args({18, 9})->Args({20, 10});

}  // namespace

BENCHMARK_MAIN();

#else
#include <cstdio>
int main() {
  std::printf("google-benchmark not available; kernel microbench skipped\n");
  return 0;
}
#endif
