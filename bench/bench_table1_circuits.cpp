// Table I: benchmark description — the 13 QASMBench-family circuits with
// paper-scale metadata alongside this repo's scaled instantiations.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Table I: benchmark description ==\n");
  std::printf("(paper columns, then this repo's scaled instantiation)\n\n");
  bench::print_row({"circuit", "paper-q", "paper-g", "paper-mem", "ours-q",
                    "ours-g", "depth", "ours-mem"},
                   {10, 8, 8, 10, 7, 7, 6, 10});
  for (const auto& e : bench::scaled_suite(args)) {
    const double mem_mib =
        static_cast<double>(e.circuit.memory_bytes()) / (1 << 20);
    bench::print_row(
        {e.meta.name, std::to_string(e.meta.paper_qubits),
         std::to_string(e.meta.paper_gates), e.meta.paper_memory,
         std::to_string(e.circuit.num_qubits()),
         std::to_string(e.circuit.num_gates()),
         std::to_string(e.circuit.depth()), bench::fmt(mem_mib, 1) + " MiB"},
        {10, 8, 8, 10, 7, 7, 6, 10});
  }
  return 0;
}
