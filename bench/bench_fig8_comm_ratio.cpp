// Fig. 8: geometric mean of the average communication ratio (comm time /
// total time) over all circuits, per rank count and algorithm. The four
// modeled columns reproduce the paper's figure; the measured column is the
// wall-clock ratio exchange-time / pipeline-time of the dagP run on the
// selected CommBackend (--backend, default threaded).

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Fig. 8: geomean communication ratio %% ==\n");
  std::printf("   modeled: IQS/Nat/DFS/dagP — measured (%s backend): "
              "dagP exchange/pipeline wall clock\n\n",
              dist::backend_kind_name(args.backend));
  bench::print_row({"ranks", "IQS", "Nat", "DFS", "dagP", "dagP-meas"},
                   {6, 8, 8, 8, 8, 10});

  const auto suite = bench::scaled_suite(args);
  for (unsigned p : args.process_qubits) {
    std::vector<double> iqs_r, nat_r, dfs_r, dagp_r, meas_r;
    for (const auto& e : suite) {
      const auto iqs = bench::run_iqs(args, e.circuit, p);
      if (iqs.comm_ratio() > 0) iqs_r.push_back(iqs.comm_ratio());
      const auto nat = bench::run_hisvsim(args, e.circuit, p,
                                          partition::Strategy::Nat);
      const auto dfs = bench::run_hisvsim(args, e.circuit, p,
                                          partition::Strategy::Dfs);
      const auto dagp =
          bench::run_hisvsim(args, e.circuit, p, partition::Strategy::DagP,
                             /*level2_limit=*/0, args.backend);
      if (nat.comm_ratio() > 0) nat_r.push_back(nat.comm_ratio());
      if (dfs.comm_ratio() > 0) dfs_r.push_back(dfs.comm_ratio());
      if (dagp.comm_ratio() > 0) dagp_r.push_back(dagp.comm_ratio());
      if (dagp.measured_wall_seconds > 0 && dagp.measured_comm_seconds > 0)
        meas_r.push_back(dagp.measured_comm_seconds /
                         dagp.measured_wall_seconds);
    }
    bench::print_row({std::to_string(1u << p),
                      bench::fmt(bench::geomean(iqs_r) * 100, 1),
                      bench::fmt(bench::geomean(nat_r) * 100, 1),
                      bench::fmt(bench::geomean(dfs_r) * 100, 1),
                      bench::fmt(bench::geomean(dagp_r) * 100, 1),
                      bench::fmt(bench::geomean(meas_r) * 100, 1)},
                     {6, 8, 8, 8, 8, 10});
  }
  std::printf("\nexpected shape (paper): dagP lowest at every rank count; "
              "IQS highest for large counts.\n");
  return 0;
}
