// Fig. 8: geometric mean of the average communication ratio (comm time /
// total time) over all circuits, per rank count and algorithm.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Fig. 8: geomean communication ratio %% ==\n\n");
  bench::print_row({"ranks", "IQS", "Nat", "DFS", "dagP"}, {6, 8, 8, 8, 8});

  const auto suite = bench::scaled_suite(args);
  for (unsigned p : args.process_qubits) {
    std::vector<double> iqs_r, nat_r, dfs_r, dagp_r;
    for (const auto& e : suite) {
      const auto iqs = bench::run_iqs(e.circuit, p);
      if (iqs.comm_ratio() > 0) iqs_r.push_back(iqs.comm_ratio());
      const auto nat = bench::run_hisvsim(e.circuit, p,
                                          partition::Strategy::Nat, args.seed);
      const auto dfs = bench::run_hisvsim(e.circuit, p,
                                          partition::Strategy::Dfs, args.seed);
      const auto dagp = bench::run_hisvsim(
          e.circuit, p, partition::Strategy::DagP, args.seed);
      if (nat.comm_ratio() > 0) nat_r.push_back(nat.comm_ratio());
      if (dfs.comm_ratio() > 0) dfs_r.push_back(dfs.comm_ratio());
      if (dagp.comm_ratio() > 0) dagp_r.push_back(dagp.comm_ratio());
    }
    bench::print_row({std::to_string(1u << p),
                      bench::fmt(bench::geomean(iqs_r) * 100, 1),
                      bench::fmt(bench::geomean(nat_r) * 100, 1),
                      bench::fmt(bench::geomean(dfs_r) * 100, 1),
                      bench::fmt(bench::geomean(dagp_r) * 100, 1)},
                     {6, 8, 8, 8, 8});
  }
  std::printf("\nexpected shape (paper): dagP lowest at every rank count; "
              "IQS highest for large counts.\n");
  return 0;
}
