// Fig. 9: Dolan-More performance profiles — for each algorithm, the
// fraction rho of test instances (circuit x rank count) whose metric is
// within a factor theta of the per-instance best. 9a: total runtime
// (incl. IQS); 9b: average communication time (HiSVSIM variants).

#include <cstdio>
#include <limits>

#include "bench_util.hpp"

namespace {

using hisim::bench::fmt;

void print_profile(const char* title,
                   const std::vector<std::string>& algos,
                   const std::vector<std::vector<double>>& metric) {
  std::printf("%s\n", title);
  const std::size_t instances = metric.empty() ? 0 : metric[0].size();
  std::printf("%-6s", "theta");
  for (const auto& a : algos) std::printf(" %8s", a.c_str());
  std::printf("\n");
  for (double theta : {1.0, 1.05, 1.1, 1.2, 1.3, 1.5, 1.75, 2.0}) {
    std::printf("%-6s", fmt(theta, 2).c_str());
    for (std::size_t a = 0; a < algos.size(); ++a) {
      unsigned within = 0;
      for (std::size_t i = 0; i < instances; ++i) {
        double best = std::numeric_limits<double>::max();
        for (std::size_t b = 0; b < algos.size(); ++b)
          best = std::min(best, metric[b][i]);
        if (metric[a][i] <= theta * best + 1e-15) ++within;
      }
      std::printf(" %8s",
                  fmt(static_cast<double>(within) /
                          static_cast<double>(instances == 0 ? 1 : instances),
                      2)
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  // metric[algo][instance]
  std::vector<std::vector<double>> total(4), comm(3);
  for (const auto& e : bench::scaled_suite(args)) {
    for (unsigned p : args.process_qubits) {
      const auto iqs = bench::run_iqs(args, e.circuit, p);
      const auto nat = bench::run_hisvsim(args, e.circuit, p,
                                          partition::Strategy::Nat);
      const auto dfs = bench::run_hisvsim(args, e.circuit, p,
                                          partition::Strategy::Dfs);
      const auto dagp = bench::run_hisvsim(
          args, e.circuit, p, partition::Strategy::DagP);
      total[0].push_back(dagp.total_seconds());
      total[1].push_back(nat.total_seconds());
      total[2].push_back(dfs.total_seconds());
      total[3].push_back(iqs.total_seconds());
      comm[0].push_back(dagp.comm.modeled_avg_seconds);
      comm[1].push_back(nat.comm.modeled_avg_seconds);
      comm[2].push_back(dfs.comm.modeled_avg_seconds);
    }
  }

  std::printf("== Fig. 9: performance profiles (rho within factor theta of "
              "best) ==\n\n");
  print_profile("(a) total runtime", {"dagP", "Nat", "DFS", "IQS"}, total);
  print_profile("(b) avg communication time", {"dagP", "Nat", "DFS"}, comm);
  std::printf("expected shape (paper): dagP dominates — best for ~65%% of "
              "instances on runtime and ~75%% on communication.\n");
  return 0;
}
