// Ablation: gate fusion x hierarchical partitioning. The paper (Sec. II-C)
// positions acyclic partitioning as orthogonal and complementary to gate
// fusion; this bench quantifies that — fusion shrinks the gate count each
// part executes, partitioning still removes the memory-bound sweeps.

#include <cstdio>

#include "bench_util.hpp"
#include "circuit/fusion.hpp"
#include "common/timer.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Fusion x partitioning ablation (single node) ==\n\n");
  bench::print_row({"circuit", "gates", "fus2", "fused", "flat(s)",
                    "flat+f2(s)", "flat+f(s)", "hier(s)", "hier+f(s)",
                    "parts"},
                   {10, 7, 7, 7, 9, 11, 10, 9, 10, 6});

  for (const auto& e : bench::scaled_suite(args)) {
    const Circuit& c = e.circuit;
    FusionOptions fo;
    fo.max_qubits = 3;
    const Circuit fused = fuse(c, fo);
    // The k=2 arm: every multi-gate run is a 4x4 block, the shape the
    // dispatch layer's dedicated two-qubit kernel consumes whole.
    FusionOptions fo2;
    fo2.max_qubits = 2;
    const Circuit fused2 = fuse(c, fo2);

    sv::FlatSimulator flat;
    Timer t1;
    { sv::StateVector s(c.num_qubits()); flat.run(c, s); }
    const double flat_s = t1.seconds();
    Timer t2;
    { sv::StateVector s(c.num_qubits()); flat.run(fused, s); }
    const double flat_fused_s = t2.seconds();
    Timer t2b;
    { sv::StateVector s(c.num_qubits()); flat.run(fused2, s); }
    const double flat_fused2_s = t2b.seconds();

    const unsigned limit = c.num_qubits() - 4;
    partition::PartitionOptions opt;
    opt.limit = limit;
    opt.seed = args.seed;
    const dag::CircuitDag d1(c);
    const auto p1 = partition::make_partition(d1, opt);
    const dag::CircuitDag d2(fused);
    const auto p2 = partition::make_partition(d2, opt);

    sv::HierarchicalSimulator hier;
    Timer t3;
    { sv::StateVector s(c.num_qubits()); hier.run(c, p1, s); }
    const double hier_s = t3.seconds();
    Timer t4;
    { sv::StateVector s(c.num_qubits()); hier.run(fused, p2, s); }
    const double hier_fused_s = t4.seconds();

    bench::print_row({e.meta.name, std::to_string(c.num_gates()),
                      std::to_string(fused2.num_gates()),
                      std::to_string(fused.num_gates()),
                      bench::fmt(flat_s, 3), bench::fmt(flat_fused2_s, 3),
                      bench::fmt(flat_fused_s, 3),
                      bench::fmt(hier_s, 3), bench::fmt(hier_fused_s, 3),
                      std::to_string(p2.num_parts())},
                     {10, 7, 7, 7, 9, 11, 10, 9, 10, 6});
  }
  std::printf("\nexpected: fusion cuts gate counts ~2-4x and speeds both "
              "paths; partitioning benefits are preserved (orthogonality, "
              "paper Sec. II-C).\n");
  return 0;
}
