#pragma once

// Shared helpers for the per-table / per-figure benchmark binaries. Each
// binary regenerates one table or figure of the paper at a scaled size
// (flags: --qubits-delta, --ranks, --seed) and prints the same rows/series
// the paper reports. Runs go through the hisim::Engine compile/execute
// API and return flat hisim::Result reports; --json additionally dumps
// every run's Result::to_json(), so the machine-readable report fields are
// defined in exactly one place (engine.hpp).

#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "dist/backend.hpp"
#include "hisvsim/engine.hpp"
#include "partition/partition.hpp"

namespace hisim::bench {

struct Args {
  int qubits_delta = 0;        // added to every suite circuit's default size
  std::vector<unsigned> process_qubits = {3, 4, 5};  // ranks = 2^p sweeps
  std::uint64_t seed = 0x5eed;
  bool quick = false;          // smaller sweep for smoke runs
  /// Dump each run's Result::to_json() to stdout as it completes.
  bool json = false;
  /// Exchange backend for the measured comm/wall columns.
  dist::BackendKind backend = dist::BackendKind::Threaded;
};

/// Parses --qubits-delta=N --ranks=p1,p2,... --seed=N --quick --json
/// --backend=serial|threaded.
Args parse_args(int argc, char** argv);

/// The suite at scaled sizes: name -> circuit.
struct SuiteEntry {
  circuits::BenchCircuit meta;
  Circuit circuit;
};
std::vector<SuiteEntry> scaled_suite(const Args& args);

/// Compiles `c` for the distributed HiSVSIM target with `strategy` and
/// executes the plan once (serial reference backend by default; pass
/// Threaded for measured-overlap columns). Honors args.seed / args.json.
hisim::Result run_hisvsim(const Args& args, const Circuit& c, unsigned p,
                          partition::Strategy strategy,
                          unsigned level2_limit = 0,
                          dist::BackendKind backend =
                              dist::BackendKind::Serial);

/// Runs the IQS-style baseline target.
hisim::Result run_iqs(const Args& args, const Circuit& c, unsigned p);

/// Geometric mean (ignores non-positive entries).
double geomean(const std::vector<double>& xs);

/// Markdown-ish table printing.
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

std::string fmt(double v, int precision = 2);

}  // namespace hisim::bench
