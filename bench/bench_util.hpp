#pragma once

// Shared helpers for the per-table / per-figure benchmark binaries. Each
// binary regenerates one table or figure of the paper at a scaled size
// (flags: --qubits-delta, --ranks, --seed) and prints the same rows/series
// the paper reports.

#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "dist/backend.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "partition/partition.hpp"

namespace hisim::bench {

struct Args {
  int qubits_delta = 0;        // added to every suite circuit's default size
  std::vector<unsigned> process_qubits = {3, 4, 5};  // ranks = 2^p sweeps
  std::uint64_t seed = 0x5eed;
  bool quick = false;          // smaller sweep for smoke runs
  /// Exchange backend for the measured comm/wall columns.
  dist::BackendKind backend = dist::BackendKind::Threaded;
};

/// Parses --qubits-delta=N --ranks=p1,p2,... --seed=N --quick
/// --backend=serial|threaded.
Args parse_args(int argc, char** argv);

/// The suite at scaled sizes: name -> circuit.
struct SuiteEntry {
  circuits::BenchCircuit meta;
  Circuit circuit;
};
std::vector<SuiteEntry> scaled_suite(const Args& args);

/// Runs distributed HiSVSIM with `strategy` and returns the report (the
/// serial reference backend; pass a kind for measured-overlap runs).
dist::DistRunReport run_hisvsim(const Circuit& c, unsigned p,
                                partition::Strategy strategy,
                                std::uint64_t seed,
                                unsigned level2_limit = 0,
                                dist::BackendKind backend =
                                    dist::BackendKind::Serial);

/// Runs the IQS-style baseline.
dist::IqsRunReport run_iqs(const Circuit& c, unsigned p);

/// Geometric mean (ignores non-positive entries).
double geomean(const std::vector<double>& xs);

/// Markdown-ish table printing.
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

std::string fmt(double v, int precision = 2);

}  // namespace hisim::bench
