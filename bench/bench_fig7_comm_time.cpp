// Fig. 7: average per-rank communication time for the three HiSVSIM
// strategies and the IQS baseline, per circuit and rank count. Modeled
// columns come from the alpha-beta NetworkModel; the measured columns are
// wall-clock exchange (data-movement) time of the dagP run on the selected
// CommBackend (--backend, default threaded), alongside the wall-clock
// overlap the async pipeline achieved.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Fig. 7: average communication time (ms) ==\n");
  std::printf("   modeled: IQS/Nat/DFS/dagP — measured (%s backend): "
              "dagP exchange + hidden-by-overlap\n\n",
              dist::backend_kind_name(args.backend));
  bench::print_row({"circuit", "ranks", "IQS", "Nat", "DFS", "dagP",
                    "dagP-meas", "overlap"},
                   {10, 6, 10, 10, 10, 10, 10, 10});

  unsigned dagp_best = 0, cases = 0;
  for (const auto& e : bench::scaled_suite(args)) {
    for (unsigned p : args.process_qubits) {
      const auto iqs = bench::run_iqs(args, e.circuit, p);
      std::vector<double> avg;
      double measured_comm = 0.0, measured_overlap = 0.0;
      for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                     partition::Strategy::DagP}) {
        const auto his = bench::run_hisvsim(args, e.circuit, p, s,
                                            /*level2_limit=*/0, args.backend);
        avg.push_back(his.comm.modeled_avg_seconds);
        if (s == partition::Strategy::DagP) {
          measured_comm = his.measured_comm_seconds;
          measured_overlap = his.measured_overlap_seconds;
        }
      }
      bench::print_row({e.meta.name, std::to_string(1u << p),
                        bench::fmt(iqs.comm.modeled_avg_seconds * 1e3, 3),
                        bench::fmt(avg[0] * 1e3, 3),
                        bench::fmt(avg[1] * 1e3, 3),
                        bench::fmt(avg[2] * 1e3, 3),
                        bench::fmt(measured_comm * 1e3, 3),
                        bench::fmt(measured_overlap * 1e3, 3)},
                       {10, 6, 10, 10, 10, 10, 10, 10});
      ++cases;
      if (avg[2] <= avg[0] && avg[2] <= avg[1]) ++dagp_best;
    }
  }
  std::printf("\ndagP had the lowest HiSVSIM comm time in %u/%u cases "
              "(paper: fastest across all cases).\n",
              dagp_best, cases);
  return 0;
}
