// Sec. V-A partitioning-quality experiment: the paper's ILP found dagP
// optimal in 48 of 52 (circuit, qubit-limit) instances, within 1-2 parts
// otherwise. We rerun with the exact branch-and-bound solver at reduced
// circuit sizes (13 circuits x 4 limits = 52 instances).

#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "partition/exact.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);
  const unsigned qubits = args.quick ? 8 : 10;
  const std::vector<unsigned> limits = {4, 5, 6, 8};

  std::printf("== dagP vs exact optimum (paper: 48/52 optimal) ==\n");
  std::printf("circuits at %u qubits, limits {4,5,6,8}\n\n", qubits);
  bench::print_row({"circuit", "limit", "dagP", "exact", "status", "gap",
                    "dagP(us)", "exact(ms)"},
                   {12, 6, 5, 6, 10, 4, 9, 10});

  unsigned optimal = 0, total = 0, proven = 0;
  for (const auto& meta : circuits::qasmbench_suite()) {
    // The branch-and-bound solver (the ILP substitute) needs a bounded
    // contracted-node count; dense circuits (qft/qpe/qaoa) shrink until
    // tractable, mirroring the paper's "smaller circuits" ILP runs.
    unsigned n = qubits;
    // qaoa's depth is round-driven; use 2 rounds for the exact comparison.
    auto build = [&](unsigned nq) {
      return meta.name == "qaoa" ? circuits::qaoa(nq, 2)
                                 : circuits::make_by_name(meta.name, nq);
    };
    Circuit c = build(n);
    bool tractable = false;
    while (n >= 5) {
      try {
        (void)partition::partition_exact(dag::CircuitDag(c),
                                         c.num_qubits(), 1);
        tractable = true;
        break;
      } catch (const Error&) {
        c = build(--n);
      }
    }
    if (!tractable) {
      bench::print_row({meta.name, "-", "-", "-", "intractable", "-", "-",
                        "-"},
                       {12, 6, 5, 6, 10, 4, 9, 10});
      continue;
    }
    const dag::CircuitDag dag(c);
    unsigned max_arity = 1;
    for (const Gate& g : c.gates()) max_arity = std::max(max_arity, g.arity());
    for (unsigned limit : limits) {
      if (limit < max_arity) {
        bench::print_row({meta.name + "@" + std::to_string(n),
                          std::to_string(limit), "-", "-",
                          "skipped(arity)", "-", "-", "-"},
                         {12, 6, 5, 6, 10, 4, 9, 10});
        continue;
      }
      ++total;
      partition::PartitionOptions opt;
      opt.limit = limit;
      opt.seed = args.seed;
      Timer t1;
      const auto dagp = partition::partition_dagp(dag, opt);
      const double dagp_us = t1.micros();
      Timer t2;
      const auto exact = partition::partition_exact(dag, limit, 1u << 22);
      const double exact_ms = t2.millis();
      if (exact.proven_optimal) ++proven;
      const long gap = static_cast<long>(dagp.num_parts()) -
                       static_cast<long>(exact.partitioning.num_parts());
      if (exact.proven_optimal && gap == 0) ++optimal;
      bench::print_row(
          {meta.name + "@" + std::to_string(n), std::to_string(limit),
           std::to_string(dagp.num_parts()),
           std::to_string(exact.partitioning.num_parts()),
           exact.proven_optimal ? "optimal" : "truncated",
           std::to_string(gap), bench::fmt(dagp_us, 0),
           bench::fmt(exact_ms, 1)},
          {12, 6, 5, 6, 10, 4, 9, 10});
    }
  }
  std::printf("\ndagP optimal in %u of %u instances (%u proven optima)\n",
              optimal, total, proven);
  std::printf("paper: 48 of 52, remainder within 1-2 parts.\n");
  return 0;
}
