// Single-node strong scaling over OpenMP-style worker threads (paper
// Sec. V-A: HiSVSIM "exhibits a close-to-linear speedup in this strong
// scaling case" for 2..128 threads). The kernels parallelize over
// amplitude blocks via the internal pool; on a single-core host the table
// degenerates to overhead measurement, on larger machines it shows the
// paper's scaling.

#include <cstdio>

#include <thread>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "sv/hierarchical.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Single-node strong scaling (dagP, seconds per run) ==\n");
  std::printf("host reports %u hardware thread(s)\n\n",
              std::thread::hardware_concurrency());
  const std::vector<unsigned> threads = {1, 2, 4, 8};
  std::vector<std::string> header = {"circuit"};
  for (unsigned t : threads) header.push_back(std::to_string(t) + "T");
  bench::print_row(header, {10, 9, 9, 9, 9});

  for (const auto& e : bench::scaled_suite(args)) {
    if (e.meta.name != "bv" && e.meta.name != "ising" &&
        e.meta.name != "qft" && e.meta.name != "qaoa")
      continue;
    const Circuit& c = e.circuit;
    const dag::CircuitDag d(c);
    partition::PartitionOptions opt;
    opt.limit = c.num_qubits() - 3;
    opt.seed = args.seed;
    const auto parts = partition::make_partition(d, opt);
    std::vector<std::string> row = {e.meta.name};
    for (unsigned t : threads) {
      parallel::set_num_threads(t);
      sv::StateVector state(c.num_qubits());
      Timer timer;
      sv::HierarchicalSimulator().run(c, parts, state);
      row.push_back(bench::fmt(timer.seconds(), 4));
    }
    bench::print_row(row, {10, 9, 9, 9, 9});
  }
  parallel::set_num_threads(0);
  std::printf("\nexpected shape (paper, multi-core hosts): close-to-linear "
              "speedup through the thread sweep.\n");
  return 0;
}
