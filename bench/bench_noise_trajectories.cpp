// Noise-trajectory throughput: how fast one compiled plan serves
// Monte-Carlo trajectories, and what compile-once buys over the naive
// recompile-per-trajectory loop. Both arms run the *same* trajectory
// seeds, so the simulated physics (and the sampled Pauli insertions) are
// identical — only where compilation happens differs. A second section
// reports aggregate statistics from execute_trajectories (the fan-out
// path) on single-node and distributed targets.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "noise/trajectory.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);
  const unsigned n = static_cast<unsigned>(
      std::max(8, 12 + args.qubits_delta));
  const std::size_t trajectories = args.quick ? 32 : 256;
  const double p = 0.01;

  const Circuit c = circuits::qaoa(n, 2, args.seed);
  noise::NoiseModel model;
  model.after_all_gates(noise::Channel::depolarizing(p));
  model.readout(noise::ReadoutError{0.01, 0.01});

  Options opt;
  opt.target = Target::Hierarchical;
  opt.strategy = partition::Strategy::DagP;
  opt.limit = n - 2;
  opt.seed = args.seed;
  opt.noise = model;

  ExecOptions x;
  x.want_state = false;

  std::printf("== Noise-trajectory throughput (qaoa %u qubits, "
              "depolarizing p=%.3g, %zu trajectories) ==\n\n",
              n, p, trajectories);

  // Arm 1: compile once, every trajectory a pure execute.
  Timer shared_timer;
  const ExecutionPlan plan = Engine::compile(c, opt);
  for (std::size_t t = 0; t < trajectories; ++t)
    (void)plan.execute_trajectory(noise::trajectory_seed(args.seed, t), x);
  const double shared_s = shared_timer.seconds();

  // Arm 2: what a noise study costs without reserved slots — rebuild and
  // recompile the instrumented plan for every trajectory.
  Timer recompile_timer;
  for (std::size_t t = 0; t < trajectories; ++t)
    (void)Engine::compile(c, opt).execute_trajectory(
        noise::trajectory_seed(args.seed, t), x);
  const double recompile_s = recompile_timer.seconds();

  bench::print_row({"mode", "traj", "total(ms)", "ms/traj", "traj/s"},
                   {24, 6, 10, 9, 9});
  bench::print_row(
      {"shared-plan", std::to_string(trajectories),
       bench::fmt(shared_s * 1e3, 1),
       bench::fmt(shared_s * 1e3 / static_cast<double>(trajectories), 3),
       bench::fmt(static_cast<double>(trajectories) / shared_s, 1)},
      {24, 6, 10, 9, 9});
  bench::print_row(
      {"recompile-per-trajectory", std::to_string(trajectories),
       bench::fmt(recompile_s * 1e3, 1),
       bench::fmt(recompile_s * 1e3 / static_cast<double>(trajectories), 3),
       bench::fmt(static_cast<double>(trajectories) / recompile_s, 1)},
      {24, 6, 10, 9, 9});
  std::printf("\namortization: shared plan is %.2fx the recompile arm's "
              "throughput\n\n",
              shared_s > 0 ? recompile_s / shared_s : 0.0);

  // Fan-out path: execute_trajectories over the worker pool, with an
  // observable and pooled shots, on hierarchical and distributed targets.
  TrajectoryOptions topt;
  topt.exec.shots = 16;
  topt.exec.observables.push_back(sv::PauliString::parse("Z0*Z1"));
  topt.seed = args.seed;

  std::printf("== execute_trajectories fan-out ==\n\n");
  bench::print_row({"target", "traj", "total(ms)", "traj/s", "<Z0Z1>",
                    "stderr"},
                   {22, 6, 10, 9, 8, 8});
  std::vector<std::pair<Target, unsigned>> targets = {
      {Target::Hierarchical, 0}};
  if (!args.process_qubits.empty())
    targets.emplace_back(target_for_backend(args.backend),
                         std::min(args.process_qubits.front(), n - 2));
  double fan_s = 0.0;
  for (const auto& [target, pq] : targets) {
    Options o = opt;
    o.target = target;
    o.process_qubits = pq;
    if (target_is_distributed(target)) o.limit = 0;
    const ExecutionPlan tplan = Engine::compile(c, o);
    const NoisyResult nr = tplan.execute_trajectories(trajectories, topt);
    if (target == Target::Hierarchical) fan_s = nr.execute_seconds;
    bench::print_row(
        {target_name(target), std::to_string(nr.trajectories),
         bench::fmt(nr.execute_seconds * 1e3, 1),
         bench::fmt(static_cast<double>(nr.trajectories) / nr.execute_seconds, 1),
         bench::fmt(nr.observable_means[0], 4),
         bench::fmt(nr.observable_stderrs[0], 4)},
        {22, 6, 10, 9, 8, 8});
    if (args.json) std::printf("%s\n", nr.to_json().c_str());
  }

  if (args.json) {
    std::printf("{\n  \"bench\": \"noise_trajectories\",\n"
                "  \"qubits\": %u,\n  \"trajectories\": %zu,\n"
                "  \"depolarizing_p\": %.6g,\n"
                "  \"shared_seconds\": %.6g,\n"
                "  \"recompile_seconds\": %.6g,\n"
                "  \"fanout_seconds\": %.6g,\n  \"speedup\": %.6g\n}\n",
                n, trajectories, p, shared_s, recompile_s, fan_s,
                shared_s > 0 ? recompile_s / shared_s : 0.0);
  }
  return 0;
}
