// Table III: QAOA partitioning breakdown — parts, qubits, gates, and
// per-part execution time for dagP/DFS/Nat. The paper ran each part's
// computation on a single V100 with the HyQuas kernel; here each part's
// inner computation runs on the CPU kernels (DESIGN.md substitution) — the
// partition structure (part count, per-part qubits/gates) is exact.

#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "sv/hierarchical.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);
  const unsigned n = static_cast<unsigned>(
      std::max(10, 14 + args.qubits_delta));  // paper: qaoa_28
  const unsigned limit = n - 2;               // paper: 26 local of 28

  const Circuit c = circuits::qaoa(n);
  std::printf("== Table III: QAOA partitioning breakdown (qaoa %u qubits, "
              "limit %u) ==\n\n",
              n, limit);
  bench::print_row({"strategy", "part", "qubits", "gates", "time(ms)"},
                   {9, 5, 7, 7, 9});

  const dag::CircuitDag dag(c);
  for (auto strategy : {partition::Strategy::DagP, partition::Strategy::Dfs,
                        partition::Strategy::Nat}) {
    partition::PartitionOptions opt;
    opt.limit = limit;
    opt.strategy = strategy;
    opt.seed = args.seed;
    const auto parts = partition::make_partition(dag, opt);
    sv::StateVector state(n);
    double total_ms = 0;
    std::size_t total_gates = 0;
    for (std::size_t i = 0; i < parts.num_parts(); ++i) {
      const auto& part = parts.parts[i];
      sv::HierarchicalStats stats;
      Timer t;
      sv::run_part(c, part.gates, part.qubits, state, stats);
      const double ms = t.millis();
      total_ms += ms;
      total_gates += part.gates.size();
      bench::print_row({i == 0 ? partition::strategy_name(strategy) : "",
                        std::string("P").append(std::to_string(i)),
                        std::to_string(part.working_set()),
                        std::to_string(part.gates.size()),
                        bench::fmt(ms, 1)},
                       {9, 5, 7, 7, 9});
    }
    bench::print_row({"", "total", "", std::to_string(total_gates),
                      bench::fmt(total_ms, 1)},
                     {9, 5, 7, 7, 9});
    std::printf("\n");
  }
  std::printf("expected shape (paper Table III): dagP yields the fewest "
              "parts (2 vs 3 vs 6); total compute time similar across "
              "strategies.\n");
  return 0;
}
