// Table III: QAOA partitioning breakdown — parts, qubits, gates, and
// per-part execution time for dagP/DFS/Nat. The paper ran each part's
// computation on a single V100 with the HyQuas kernel; here each part's
// inner computation runs on the CPU kernels (DESIGN.md substitution) — the
// partition structure (part count, per-part qubits/gates) is exact.
//
// A second section *measures* the sweep-amortization claim instead of
// asserting it: the same (γ, β) points run once by recompiling a concrete
// circuit per point and once by binding one parameterized plan per point.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "sv/hierarchical.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);
  const unsigned n = static_cast<unsigned>(
      std::max(10, 14 + args.qubits_delta));  // paper: qaoa_28
  const unsigned limit = n - 2;               // paper: 26 local of 28

  const Circuit c = circuits::qaoa(n);
  std::printf("== Table III: QAOA partitioning breakdown (qaoa %u qubits, "
              "limit %u) ==\n\n",
              n, limit);
  bench::print_row({"strategy", "part", "qubits", "gates", "time(ms)"},
                   {9, 5, 7, 7, 9});

  const dag::CircuitDag dag(c);
  for (auto strategy : {partition::Strategy::DagP, partition::Strategy::Dfs,
                        partition::Strategy::Nat}) {
    partition::PartitionOptions opt;
    opt.limit = limit;
    opt.strategy = strategy;
    opt.seed = args.seed;
    const auto parts = partition::make_partition(dag, opt);
    sv::StateVector state(n);
    double total_ms = 0;
    std::size_t total_gates = 0;
    for (std::size_t i = 0; i < parts.num_parts(); ++i) {
      const auto& part = parts.parts[i];
      sv::HierarchicalStats stats;
      Timer t;
      sv::run_part(c, part.gates, part.qubits, state, stats);
      const double ms = t.millis();
      total_ms += ms;
      total_gates += part.gates.size();
      bench::print_row({i == 0 ? partition::strategy_name(strategy) : "",
                        std::string("P").append(std::to_string(i)),
                        std::to_string(part.working_set()),
                        std::to_string(part.gates.size()),
                        bench::fmt(ms, 1)},
                       {9, 5, 7, 7, 9});
    }
    bench::print_row({"", "total", "", std::to_string(total_gates),
                      bench::fmt(total_ms, 1)},
                     {9, 5, 7, 7, 9});
    std::printf("\n");
  }
  std::printf("expected shape (paper Table III): dagP yields the fewest "
              "parts (2 vs 3 vs 6); total compute time similar across "
              "strategies.\n");

  // -- sweep amortization: recompile-per-point vs bind-per-point ---------
  const unsigned points = args.quick ? 4 : 16;
  const unsigned rounds = 4;
  const auto inst = circuits::qaoa_instance(n, rounds, args.seed);
  Options opt;
  opt.target = Target::Hierarchical;
  opt.strategy = partition::Strategy::DagP;
  opt.limit = limit;
  opt.seed = args.seed;
  ExecOptions x;
  x.want_state = false;

  // Identical (γ, β) points for both arms.
  std::vector<ParamBinding> bindings;
  for (unsigned i = 0; i < points; ++i)
    bindings.push_back(inst.uniform_binding(
        0.1 + (M_PI - 0.1) * i / std::max(1u, points - 1),
        0.1 + (M_PI / 2 - 0.1) * i / std::max(1u, points - 1)));

  // Arm 1: what every sweep had to do before symbolic parameters —
  // rebuild the concrete circuit and recompile the plan at each point.
  Timer recompile_timer;
  for (const ParamBinding& b : bindings)
    (void)Engine::compile(inst.circuit.bound(b), opt).execute(x);
  const double recompile_s = recompile_timer.seconds();

  // Arm 2: compile the parameterized plan once, bind at execute.
  Timer bind_timer;
  const ExecutionPlan plan = Engine::compile(inst.circuit, opt);
  for (const ParamBinding& b : bindings) {
    ExecOptions px = x;
    px.bindings = b;
    (void)plan.execute(px);
  }
  const double bind_s = bind_timer.seconds();

  std::printf("\n== Sweep amortization (qaoa %u qubits, %u rounds, %u "
              "points, dagp) ==\n\n",
              n, rounds, points);
  bench::print_row({"mode", "points", "total(ms)", "ms/point"},
                   {20, 7, 10, 9});
  bench::print_row({"recompile-per-point", std::to_string(points),
                    bench::fmt(recompile_s * 1e3, 1),
                    bench::fmt(recompile_s * 1e3 / points, 2)},
                   {20, 7, 10, 9});
  bench::print_row({"bind-per-point", std::to_string(points),
                    bench::fmt(bind_s * 1e3, 1),
                    bench::fmt(bind_s * 1e3 / points, 2)},
                   {20, 7, 10, 9});
  std::printf("\namortization: bind-per-point is %.2fx the recompile "
              "arm's throughput\n",
              bind_s > 0 ? recompile_s / bind_s : 0.0);
  if (args.json) {
    std::printf("{\n  \"bench\": \"table3_sweep_amortization\",\n"
                "  \"qubits\": %u,\n  \"rounds\": %u,\n  \"points\": %u,\n"
                "  \"recompile_seconds\": %.6g,\n  \"bind_seconds\": %.6g,\n"
                "  \"speedup\": %.6g\n}\n",
                n, rounds, points, recompile_s, bind_s,
                bind_s > 0 ? recompile_s / bind_s : 0.0);
  }
  return 0;
}
