// Table II: memory access breakdown per strategy (paper: VTune clocktick
// percentages per cache level + execution time, single thread, bv/ising).
// Substitution: the modeled traffic breakdown (DESIGN.md) plus measured
// single-thread execution time.

#include <cstdio>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "sv/hierarchical.hpp"
#include "sv/cache_sim.hpp"
#include "sv/traffic.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);
  parallel::set_num_threads(1);  // Table II is the single-thread experiment

  std::printf("== Table II: memory access breakdown (modeled traffic %% per "
              "level + measured exec time) ==\n\n");
  bench::print_row({"circuit", "strategy", "parts", "L1%", "L2%", "L3%",
                    "DRAM%", "exec(s)"},
                   {10, 8, 6, 7, 7, 7, 7, 9});

  // Scale the cache model so our scaled circuits straddle it the way
  // 30-qubit circuits straddle a 32 MiB LLC: LLC holds 1/16 of the state.
  for (const auto& e : bench::scaled_suite(args)) {
    if (e.meta.name != "bv" && e.meta.name != "ising") continue;
    const Circuit& c = e.circuit;
    sv::CacheConfig cache;
    cache.l3_bytes = c.memory_bytes() / 16;
    cache.l2_bytes = cache.l3_bytes / 32;
    cache.l1_bytes = cache.l2_bytes / 16;
    const unsigned limit = c.num_qubits() - 4;  // inner sv == LLC size
    const dag::CircuitDag dag(c);
    for (auto strategy : {partition::Strategy::Nat, partition::Strategy::Dfs,
                          partition::Strategy::DagP}) {
      partition::PartitionOptions opt;
      opt.limit = limit;
      opt.strategy = strategy;
      opt.seed = args.seed;
      const auto parts = partition::make_partition(dag, opt);
      const auto traffic = sv::model_traffic(c, parts, cache);
      sv::StateVector state(c.num_qubits());
      Timer t;
      sv::HierarchicalSimulator().run(c, parts, state);
      const double exec = t.seconds();
      using TB = sv::TrafficBreakdown;
      bench::print_row({e.meta.name, partition::strategy_name(strategy),
                        std::to_string(parts.num_parts()),
                        bench::fmt(traffic.pct(TB::L1), 1),
                        bench::fmt(traffic.pct(TB::L2), 1),
                        bench::fmt(traffic.pct(TB::L3), 1),
                        bench::fmt(traffic.pct(TB::DRAM), 1),
                        bench::fmt(exec, 3)},
                       {10, 8, 6, 7, 7, 7, 7, 9});
    }
  }
  // Second view: trace-driven set-associative LRU simulation of the exact
  // amplitude access streams (smaller instance so the replay stays fast).
  std::printf("\n-- trace-driven cache simulation (12-qubit instances) --\n");
  bench::print_row({"circuit", "strategy", "parts", "L1%", "L2%", "L3%",
                    "DRAM%"},
                   {10, 8, 6, 7, 7, 7, 7});
  for (const char* name : {"bv", "ising"}) {
    const Circuit c = circuits::make_by_name(name, 12);
    sv::CacheHierarchy::Config cfg;
    cfg.l3_bytes = c.memory_bytes();       // LLC == state size
    cfg.l2_bytes = cfg.l3_bytes / 8;
    cfg.l1_bytes = cfg.l2_bytes / 8;
    const dag::CircuitDag dag(c);
    {
      sv::CacheHierarchy h{cfg};
      sv::replay_flat_trace(c, h);
      bench::print_row({name, "flat", "-", bench::fmt(h.pct(0), 1),
                        bench::fmt(h.pct(1), 1), bench::fmt(h.pct(2), 1),
                        bench::fmt(h.pct(3), 1)},
                       {10, 8, 6, 7, 7, 7, 7});
    }
    for (auto strategy : {partition::Strategy::Nat, partition::Strategy::Dfs,
                          partition::Strategy::DagP}) {
      partition::PartitionOptions opt;
      opt.limit = 6;
      opt.strategy = strategy;
      opt.seed = args.seed;
      const auto parts = partition::make_partition(dag, opt);
      sv::CacheHierarchy h{cfg};
      sv::replay_hierarchical_trace(c, parts, h);
      bench::print_row({name, partition::strategy_name(strategy),
                        std::to_string(parts.num_parts()),
                        bench::fmt(h.pct(0), 1), bench::fmt(h.pct(1), 1),
                        bench::fmt(h.pct(2), 1), bench::fmt(h.pct(3), 1)},
                       {10, 8, 6, 7, 7, 7, 7});
    }
  }
  std::printf("\nexpected shape (paper): dagP <= DFS < Nat in DRAM%% and "
              "execution time; hierarchical runs serve gate traffic from "
              "near caches while flat sweeps DRAM.\n");
  return 0;
}
