// Table IV: hybrid estimate — HiSVSIM partitioning + communication with an
// accelerator kernel for compute. The paper used HyQuas on 4 V100s; here
// the "accelerator" is our CPU inner-kernel path and the HyQuas reference
// row is the IQS-style per-gate-exchange system at the same configuration
// (DESIGN.md substitution). The headline — dagP's 2-part split minimizes
// communication and beats the per-gate baseline — is partition-driven.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);
  const unsigned n = static_cast<unsigned>(std::max(10, 14 + args.qubits_delta));
  const unsigned p = 2;  // paper: 4 GPU nodes

  const Circuit c = circuits::qaoa(n);
  std::printf("== Table IV: estimated QAOA times, HiSVSIM comm + kernel "
              "compute (%u qubits, %u ranks) ==\n\n",
              n, 1u << p);
  bench::print_row({"strategy", "comm(ms)", "comp(ms)", "total(ms)"},
                   {10, 10, 10, 10});

  double best_total = 0;
  for (auto strategy : {partition::Strategy::DagP, partition::Strategy::Dfs,
                        partition::Strategy::Nat}) {
    const auto rep = bench::run_hisvsim(args, c, p, strategy);
    const double comm = rep.comm.modeled_max_seconds * 1e3;
    const double comp = rep.compute_seconds * 1e3;
    if (strategy == partition::Strategy::DagP) best_total = comm + comp;
    bench::print_row({partition::strategy_name(strategy), bench::fmt(comm, 2),
                      bench::fmt(comp, 2), bench::fmt(comm + comp, 2)},
                     {10, 10, 10, 10});
  }
  const auto baseline = bench::run_iqs(args, c, p);
  bench::print_row({"per-gate", bench::fmt(baseline.comm.modeled_max_seconds * 1e3, 2),
                    bench::fmt(baseline.compute_seconds * 1e3, 2),
                    bench::fmt(baseline.total_seconds() * 1e3, 2)},
                   {10, 10, 10, 10});
  std::printf("\nexpected shape (paper Table IV): dagP < DFS < Nat; dagP "
              "beats the per-gate-communication system (HyQuas row).\n");
  if (best_total > 0 && baseline.total_seconds() * 1e3 > best_total)
    std::printf("dagP hybrid beats the per-gate baseline by %.2fx here.\n",
                baseline.total_seconds() * 1e3 / best_total);
  return 0;
}
