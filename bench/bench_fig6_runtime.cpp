// Fig. 6: strong-scaling end-to-end runtime per circuit for the three
// HiSVSIM strategies and the IQS baseline across rank counts.

#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hisim;
  const auto args = bench::parse_args(argc, argv);

  std::printf("== Fig. 6: runtime (modeled seconds) per circuit ==\n\n");
  bench::print_row(
      {"circuit", "ranks", "IQS", "Nat", "DFS", "dagP", "dagP-parts"},
      {10, 6, 10, 10, 10, 10, 10});

  for (const auto& e : bench::scaled_suite(args)) {
    for (unsigned p : args.process_qubits) {
      const auto iqs = bench::run_iqs(args, e.circuit, p);
      std::vector<std::string> row = {e.meta.name, std::to_string(1u << p),
                                      bench::fmt(iqs.total_seconds(), 4)};
      std::size_t dagp_parts = 0;
      for (auto s : {partition::Strategy::Nat, partition::Strategy::Dfs,
                     partition::Strategy::DagP}) {
        const auto his = bench::run_hisvsim(args, e.circuit, p, s);
        row.push_back(bench::fmt(his.total_seconds(), 4));
        if (s == partition::Strategy::DagP) dagp_parts = his.parts;
      }
      row.push_back(std::to_string(dagp_parts));
      bench::print_row(row, {10, 6, 10, 10, 10, 10, 10});
    }
  }
  std::printf("\nexpected shape (paper): close-to-linear scaling for all "
              "strategies; HiSVSIM compute < IQS compute; dagP fastest "
              "overall except qpe.\n");
  return 0;
}
