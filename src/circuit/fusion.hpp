#pragma once

#include <span>
#include <vector>

#include "circuit/circuit.hpp"

namespace hisim {

/// Gate fusion: merges gates whose combined qubit support stays within
/// `max_qubits` into single dense Unitary gates. The paper positions
/// HiSVSIM as orthogonal to gate fusion (Sec. II-C); this pass lets the
/// ablation benches demonstrate that claim — fusion shrinks the gate
/// count each part executes, partitioning still decides the memory
/// movement.
///
/// The pass keeps *multiple* accumulation runs open at once, with
/// pairwise-disjoint supports; a gate joins (and may bridge-merge) the
/// runs it touches while unrelated runs stay open. The only reordering
/// this introduces is between gates on disjoint qubit sets, which
/// commute, so the result applies the same operator product — no general
/// commutation analysis is ever consulted. Runs of length one are left
/// as the original gate. With max_qubits = 2 every multi-gate run
/// becomes a 4x4 block, the shape the apply layer's dedicated two-qubit
/// kernel is built for (sv/kernel_dispatch.hpp).
///
/// Symbolic (parameterized) gates have no materializable unitary at fusion
/// time; they act as run barriers and pass through unchanged, keeping the
/// fused circuit bindable at execute (fuse-then-bind == bind-then-apply).
struct FusionOptions {
  unsigned max_qubits = 3;   // widest fused unitary (2^k x 2^k matrices)
  /// Do not fuse across gates wider than max_qubits (they pass through
  /// unchanged and break the current run).
  bool keep_wide_gates = true;
};

Circuit fuse(const Circuit& c, const FusionOptions& opt = {});

/// Deep validator (see common/check.hpp): aborts unless the given open
/// fusion-run supports are pairwise disjoint, each non-empty, sorted,
/// duplicate-free, and within `max_qubits`. Disjointness is the entire
/// correctness argument of the fusion pass — the only reordering it may
/// introduce is between gates on disjoint qubit sets, which commute — so
/// checked builds re-assert it at every flush point; tests feed an
/// overlapping pair and assert the abort.
void validate_fusion_supports(std::span<const std::vector<Qubit>> supports,
                              unsigned max_qubits);

/// Expands `gate`'s unitary onto the qubit set `support` (sorted): bit j
/// of the returned matrix's indices corresponds to support[j]. Every
/// qubit of the gate must appear in `support`. Building block of fusion
/// and of test oracles.
Matrix embed_unitary(const Gate& gate, const std::vector<Qubit>& support);

}  // namespace hisim
