#pragma once

#include <initializer_list>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace hisim {

/// Small dense complex matrix (row-major). Used for gate unitaries,
/// composition, and unitarity property tests. Dimensions stay tiny
/// (2^k for k-qubit gates, k <= ~4), so no blocking/vectorization needed.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  /// Build from a row-major initializer list; n must be a perfect square
  /// times cols... use explicit dims.
  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::initializer_list<cplx> vals) {
    HISIM_CHECK(vals.size() == rows * cols);
    Matrix m(rows, cols);
    std::size_t i = 0;
    for (const auto& v : vals) m.data_[i++] = v;
    return m;
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<cplx>& data() const { return data_; }
  std::vector<cplx>& data() { return data_; }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator*(cplx s) const;
  Matrix operator+(const Matrix& rhs) const;

  /// Conjugate transpose.
  Matrix adjoint() const;

  /// Kronecker product (this ⊗ rhs).
  Matrix kron(const Matrix& rhs) const;

  /// Max |a_ij - b_ij| across entries; matrices must be same shape.
  double max_abs_diff(const Matrix& rhs) const;

  /// True iff U * U^dag == I within tol.
  bool is_unitary(double tol = 1e-10) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<cplx> data_;
};

}  // namespace hisim
