#include "circuit/gate.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace hisim {
namespace {

constexpr cplx kI{0.0, 1.0};

Matrix m2(cplx a, cplx b, cplx c, cplx d) {
  return Matrix::from_rows(2, 2, {a, b, c, d});
}

/// 2x2 base matrices for single-target kinds.
Matrix base2(GateKind kind, const std::vector<double>& p) {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (kind) {
    case GateKind::I: case GateKind::NoiseSlot: return Matrix::identity(2);
    case GateKind::X: case GateKind::CX: case GateKind::CCX:
    case GateKind::MCX:
      return m2(0, 1, 1, 0);
    case GateKind::Y: case GateKind::CY: return m2(0, -kI, kI, 0);
    case GateKind::Z: case GateKind::CZ: return m2(1, 0, 0, -1);
    case GateKind::H: case GateKind::CH:
      return m2(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
    case GateKind::S: return m2(1, 0, 0, kI);
    case GateKind::Sdg: return m2(1, 0, 0, -kI);
    case GateKind::T: return m2(1, 0, 0, std::exp(kI * (M_PI / 4)));
    case GateKind::Tdg: return m2(1, 0, 0, std::exp(-kI * (M_PI / 4)));
    case GateKind::SX:
      return m2(cplx(0.5, 0.5), cplx(0.5, -0.5), cplx(0.5, -0.5),
                cplx(0.5, 0.5));
    case GateKind::RX: case GateKind::CRX: {
      const double t = p.at(0) / 2;
      return m2(std::cos(t), -kI * std::sin(t), -kI * std::sin(t), std::cos(t));
    }
    case GateKind::RY: case GateKind::CRY: {
      const double t = p.at(0) / 2;
      return m2(std::cos(t), -std::sin(t), std::sin(t), std::cos(t));
    }
    case GateKind::RZ: case GateKind::CRZ: {
      const double t = p.at(0) / 2;
      return m2(std::exp(-kI * t), 0, 0, std::exp(kI * t));
    }
    case GateKind::P: case GateKind::CP:
      return m2(1, 0, 0, std::exp(kI * p.at(0)));
    case GateKind::U2: {
      const double phi = p.at(0), lam = p.at(1);
      const double s = 1.0 / std::sqrt(2.0);
      return m2(s, -s * std::exp(kI * lam), s * std::exp(kI * phi),
                s * std::exp(kI * (phi + lam)));
    }
    case GateKind::U3: case GateKind::CU3: {
      const double th = p.at(0), phi = p.at(1), lam = p.at(2);
      return m2(std::cos(th / 2), -std::exp(kI * lam) * std::sin(th / 2),
                std::exp(kI * phi) * std::sin(th / 2),
                std::exp(kI * (phi + lam)) * std::cos(th / 2));
    }
    default:
      throw Error("gate kind has no 2x2 base matrix: " + gate_name(kind));
  }
}

/// Builds the 2^k unitary for `controls` low bits controlling `base` on the
/// top bit, matching the [controls..., target] qubit convention.
Matrix controlled_matrix(const Matrix& base, unsigned num_controls) {
  const std::size_t k = num_controls + 1;
  const std::size_t n = std::size_t{1} << k;
  const std::size_t ctrl_mask = (std::size_t{1} << num_controls) - 1;
  Matrix m = Matrix::identity(n);
  // Rows with all control bits set: base acts on the target bit.
  const std::size_t tbit = std::size_t{1} << num_controls;
  for (std::size_t row = 0; row < n; ++row) {
    if ((row & ctrl_mask) != ctrl_mask) continue;
    const bool t = (row & tbit) != 0;
    m(row, row) = base(t, t);
    m(row, row ^ tbit) = base(t, !t);
  }
  return m;
}

}  // namespace

unsigned gate_param_count(GateKind kind) {
  switch (kind) {
    case GateKind::RX: case GateKind::RY: case GateKind::RZ:
    case GateKind::P: case GateKind::CRX: case GateKind::CRY:
    case GateKind::CRZ: case GateKind::CP: case GateKind::RZZ:
    case GateKind::RXX:
    case GateKind::NoiseSlot:  // the slot id rides in params[0]
      return 1;
    case GateKind::U2: return 2;
    case GateKind::U3: case GateKind::CU3: return 3;
    default: return 0;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::I: return "id";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::H: return "h";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::SX: return "sx";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::P: return "u1";
    case GateKind::U2: return "u2";
    case GateKind::U3: return "u3";
    case GateKind::CX: return "cx";
    case GateKind::CY: return "cy";
    case GateKind::CZ: return "cz";
    case GateKind::CH: return "ch";
    case GateKind::CRX: return "crx";
    case GateKind::CRY: return "cry";
    case GateKind::CRZ: return "crz";
    case GateKind::CP: return "cu1";
    case GateKind::CU3: return "cu3";
    case GateKind::SWAP: return "swap";
    case GateKind::RZZ: return "rzz";
    case GateKind::RXX: return "rxx";
    case GateKind::CCX: return "ccx";
    case GateKind::CSWAP: return "cswap";
    case GateKind::MCX: return "mcx";
    case GateKind::Unitary: return "unitary";
    case GateKind::NoiseSlot: return "noise";
  }
  return "?";
}

bool Gate::is_parametric() const {
  for (const ParamExpr& e : params)
    if (e.symbolic) return true;
  return false;
}

unsigned Gate::num_controls() const {
  switch (kind) {
    case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::CH: case GateKind::CRX: case GateKind::CRY:
    case GateKind::CRZ: case GateKind::CP: case GateKind::CU3:
      return 1;
    case GateKind::CCX: return 2;
    case GateKind::MCX: return arity() - 1;
    default: return 0;
  }
}

bool Gate::is_diagonal() const {
  switch (kind) {
    case GateKind::I: case GateKind::Z: case GateKind::S: case GateKind::Sdg:
    case GateKind::T: case GateKind::Tdg: case GateKind::RZ:
    case GateKind::P: case GateKind::CZ: case GateKind::CRZ:
    case GateKind::CP: case GateKind::RZZ:
    case GateKind::NoiseSlot:  // identity until a trajectory fills it
      return true;
    default:
      return false;
  }
}

namespace {

/// Materializes the parameter list under `bound` (throws, naming the
/// parameter, when a symbolic entry is not covered).
std::vector<double> resolved_params(const std::vector<ParamExpr>& params,
                                    std::span<const double> bound) {
  std::vector<double> out;
  out.reserve(params.size());
  for (const ParamExpr& e : params) out.push_back(e.value_at(bound));
  return out;
}

}  // namespace

Matrix Gate::matrix(std::span<const double> bound) const {
  switch (kind) {
    case GateKind::SWAP:
      return Matrix::from_rows(4, 4,
                               {1, 0, 0, 0,
                                0, 0, 1, 0,
                                0, 1, 0, 0,
                                0, 0, 0, 1});
    case GateKind::CSWAP: {
      // qubits = [control(bit0), a(bit1), b(bit2)]
      Matrix m = Matrix::identity(8);
      // swap bits 1 and 2 when bit0 set: indices 0b011 (3) <-> 0b101 (5)
      m(3, 3) = 0; m(5, 5) = 0; m(3, 5) = 1; m(5, 3) = 1;
      return m;
    }
    case GateKind::RZZ: {
      const double t = params.at(0).value_at(bound) / 2;
      Matrix m(4, 4);
      // exp(-i t Z⊗Z): phase exp(-it) on |00>,|11>; exp(+it) on |01>,|10>
      m(0, 0) = std::exp(-kI * t);
      m(1, 1) = std::exp(kI * t);
      m(2, 2) = std::exp(kI * t);
      m(3, 3) = std::exp(-kI * t);
      return m;
    }
    case GateKind::RXX: {
      const double t = params.at(0).value_at(bound) / 2;
      const cplx c = std::cos(t), s = -kI * std::sin(t);
      return Matrix::from_rows(4, 4,
                               {c, 0, 0, s,
                                0, c, s, 0,
                                0, s, c, 0,
                                s, 0, 0, c});
    }
    case GateKind::Unitary:
      return custom;
    default: {
      const unsigned nc = num_controls();
      HISIM_CHECK_MSG(arity() <= 12, "matrix() limited to 12 qubits");
      const Matrix base = base2(kind, resolved_params(params, bound));
      return nc == 0 ? base : controlled_matrix(base, nc);
    }
  }
}

Matrix Gate::target_matrix(std::span<const double> bound) const {
  return base2(kind, resolved_params(params, bound));
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_name(kind);
  if (!params.empty()) {
    os << "(";
    for (std::size_t i = 0; i < params.size(); ++i)
      os << (i ? "," : "") << params[i].to_string();
    os << ")";
  }
  os << " ";
  for (std::size_t i = 0; i < qubits.size(); ++i)
    os << (i ? "," : "") << "q[" << qubits[i] << "]";
  return os.str();
}

bool Gate::operator==(const Gate& o) const {
  return kind == o.kind && qubits == o.qubits && params == o.params &&
         (kind != GateKind::Unitary ||
          (custom.rows() == o.custom.rows() && custom.max_abs_diff(o.custom) == 0));
}

Gate Gate::mcx(std::vector<Qubit> controls_then_target) {
  HISIM_CHECK(controls_then_target.size() >= 2);
  return make(GateKind::MCX, std::move(controls_then_target), {});
}

Gate Gate::unitary(std::vector<Qubit> qubits, Matrix u) {
  HISIM_CHECK_MSG(u.is_unitary(1e-9), "matrix is not unitary");
  return kraus(std::move(qubits), std::move(u));
}

Gate Gate::kraus(std::vector<Qubit> qubits, Matrix k) {
  const std::size_t n = std::size_t{1} << qubits.size();
  HISIM_CHECK_MSG(k.rows() == n && k.cols() == n,
                  "operator dim mismatch with qubit count");
  Gate g = make(GateKind::Unitary, std::move(qubits), {});
  g.custom = std::move(k);
  return g;
}

Gate Gate::noise_slot(Qubit q, unsigned slot) {
  // The slot id rides as a concrete ParamExpr: it survives Circuit::bound
  // and lower() untouched (both preserve concrete params), so slots stay
  // identifiable by content no matter how gate indices shift.
  return make(GateKind::NoiseSlot, {q},
              {ParamExpr(static_cast<double>(slot))});
}

unsigned Gate::noise_slot_id() const {
  HISIM_CHECK_MSG(kind == GateKind::NoiseSlot,
                  "noise_slot_id() on " << gate_name(kind));
  return static_cast<unsigned>(params.at(0).value());
}

Gate Gate::make(GateKind kind, std::vector<Qubit> qs,
                std::vector<ParamExpr> ps) {
  HISIM_CHECK_MSG(ps.size() == gate_param_count(kind),
                  "wrong parameter count for " << gate_name(kind));
  std::set<Qubit> uniq(qs.begin(), qs.end());
  HISIM_CHECK_MSG(uniq.size() == qs.size(),
                  "duplicate qubit operands in " << gate_name(kind));
  Gate g;
  g.kind = kind;
  g.qubits = std::move(qs);
  g.params = std::move(ps);
  return g;
}

}  // namespace hisim
