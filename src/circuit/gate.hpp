#pragma once

#include <string>
#include <vector>

#include "circuit/matrix.hpp"
#include "common/types.hpp"

namespace hisim {

/// Gate vocabulary. Mirrors the OpenQASM 2.0 qelib1 set used by
/// QASMBench, plus the two-qubit rotations (RZZ/RXX) common in Ising/QAOA
/// circuits and a raw-unitary escape hatch.
enum class GateKind {
  // single qubit
  I, X, Y, Z, H, S, Sdg, T, Tdg, SX,
  RX, RY, RZ, P,      // P == U1: phase gate
  U2, U3,
  // controlled single-target
  CX, CY, CZ, CH, CRX, CRY, CRZ, CP, CU3,
  // other two qubit
  SWAP, RZZ, RXX,
  // three qubit
  CCX, CSWAP,
  // n-control X (controls = all but last qubit)
  MCX,
  // raw unitary on qubits.size() qubits
  Unitary,
};

/// Number of parameters each kind takes (Unitary carries a matrix instead).
unsigned gate_param_count(GateKind kind);

/// Lower-case mnemonic matching qelib1 naming (cp -> "cu1", p -> "u1").
std::string gate_name(GateKind kind);

/// A gate application: `kind` acting on `qubits` (for controlled kinds the
/// *last* qubit is the target, all earlier ones are controls) with real
/// `params` (rotation angles, in radians).
///
/// Local-index convention: for a k-qubit gate, bit j of the local index
/// corresponds to qubits[j]; unitaries returned by matrix() are expressed
/// in this basis.
struct Gate {
  GateKind kind = GateKind::I;
  std::vector<Qubit> qubits;
  std::vector<double> params;
  Matrix custom;  // only for kind == Unitary

  unsigned arity() const { return static_cast<unsigned>(qubits.size()); }

  /// Number of control qubits (0 for non-controlled kinds; for MCX all but
  /// the last qubit).
  unsigned num_controls() const;

  /// True if the gate's unitary is diagonal in the computational basis.
  bool is_diagonal() const;

  /// The full 2^k x 2^k unitary in the local-index convention above.
  /// Throws for MCX with more than 12 qubits (callers use the controlled
  /// fast path instead).
  Matrix matrix() const;

  /// The 2x2 base matrix applied to the target qubit for controlled kinds
  /// and plain single-qubit kinds. Throws for SWAP/RZZ/RXX/CSWAP/Unitary.
  Matrix target_matrix() const;

  /// Human-readable form, e.g. "cx q[0],q[3]" or "rz(0.5) q[2]".
  std::string to_string() const;

  bool operator==(const Gate& o) const;

  // ---- factories ------------------------------------------------------
  static Gate i(Qubit q) { return make(GateKind::I, {q}, {}); }
  static Gate x(Qubit q) { return make(GateKind::X, {q}, {}); }
  static Gate y(Qubit q) { return make(GateKind::Y, {q}, {}); }
  static Gate z(Qubit q) { return make(GateKind::Z, {q}, {}); }
  static Gate h(Qubit q) { return make(GateKind::H, {q}, {}); }
  static Gate s(Qubit q) { return make(GateKind::S, {q}, {}); }
  static Gate sdg(Qubit q) { return make(GateKind::Sdg, {q}, {}); }
  static Gate t(Qubit q) { return make(GateKind::T, {q}, {}); }
  static Gate tdg(Qubit q) { return make(GateKind::Tdg, {q}, {}); }
  static Gate sx(Qubit q) { return make(GateKind::SX, {q}, {}); }
  static Gate rx(Qubit q, double th) { return make(GateKind::RX, {q}, {th}); }
  static Gate ry(Qubit q, double th) { return make(GateKind::RY, {q}, {th}); }
  static Gate rz(Qubit q, double th) { return make(GateKind::RZ, {q}, {th}); }
  static Gate p(Qubit q, double lam) { return make(GateKind::P, {q}, {lam}); }
  static Gate u2(Qubit q, double phi, double lam) {
    return make(GateKind::U2, {q}, {phi, lam});
  }
  static Gate u3(Qubit q, double th, double phi, double lam) {
    return make(GateKind::U3, {q}, {th, phi, lam});
  }
  static Gate cx(Qubit c, Qubit t) { return make(GateKind::CX, {c, t}, {}); }
  static Gate cy(Qubit c, Qubit t) { return make(GateKind::CY, {c, t}, {}); }
  static Gate cz(Qubit c, Qubit t) { return make(GateKind::CZ, {c, t}, {}); }
  static Gate ch(Qubit c, Qubit t) { return make(GateKind::CH, {c, t}, {}); }
  static Gate crx(Qubit c, Qubit t, double th) {
    return make(GateKind::CRX, {c, t}, {th});
  }
  static Gate cry(Qubit c, Qubit t, double th) {
    return make(GateKind::CRY, {c, t}, {th});
  }
  static Gate crz(Qubit c, Qubit t, double th) {
    return make(GateKind::CRZ, {c, t}, {th});
  }
  static Gate cp(Qubit c, Qubit t, double lam) {
    return make(GateKind::CP, {c, t}, {lam});
  }
  static Gate cu3(Qubit c, Qubit t, double th, double phi, double lam) {
    return make(GateKind::CU3, {c, t}, {th, phi, lam});
  }
  static Gate swap(Qubit a, Qubit b) { return make(GateKind::SWAP, {a, b}, {}); }
  static Gate rzz(Qubit a, Qubit b, double th) {
    return make(GateKind::RZZ, {a, b}, {th});
  }
  static Gate rxx(Qubit a, Qubit b, double th) {
    return make(GateKind::RXX, {a, b}, {th});
  }
  static Gate ccx(Qubit c0, Qubit c1, Qubit t) {
    return make(GateKind::CCX, {c0, c1, t}, {});
  }
  static Gate cswap(Qubit c, Qubit a, Qubit b) {
    return make(GateKind::CSWAP, {c, a, b}, {});
  }
  static Gate mcx(std::vector<Qubit> controls_then_target);
  static Gate unitary(std::vector<Qubit> qubits, Matrix u);

 private:
  static Gate make(GateKind kind, std::vector<Qubit> qs,
                   std::vector<double> ps);
};

}  // namespace hisim
