#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "circuit/matrix.hpp"
#include "circuit/param.hpp"
#include "common/types.hpp"

namespace hisim {

/// Gate vocabulary. Mirrors the OpenQASM 2.0 qelib1 set used by
/// QASMBench, plus the two-qubit rotations (RZZ/RXX) common in Ising/QAOA
/// circuits and a raw-unitary escape hatch.
enum class GateKind {
  // single qubit
  I, X, Y, Z, H, S, Sdg, T, Tdg, SX,
  RX, RY, RZ, P,      // P == U1: phase gate
  U2, U3,
  // controlled single-target
  CX, CY, CZ, CH, CRX, CRY, CRZ, CP, CU3,
  // other two qubit
  SWAP, RZZ, RXX,
  // three qubit
  CCX, CSWAP,
  // n-control X (controls = all but last qubit)
  MCX,
  // raw unitary on qubits.size() qubits
  Unitary,
  // reserved noise-insertion point (identity until a trajectory samples a
  // concrete operator into it; see src/noise/). Carries its slot id.
  NoiseSlot,
};

/// Number of parameters each kind takes (Unitary carries a matrix instead).
unsigned gate_param_count(GateKind kind);

/// Lower-case mnemonic matching qelib1 naming (cp -> "cu1", p -> "u1").
std::string gate_name(GateKind kind);

/// A gate application: `kind` acting on `qubits` (for controlled kinds the
/// *last* qubit is the target, all earlier ones are controls) with
/// `params` (rotation angles, in radians) — each either a concrete value
/// or a symbolic ParamExpr bound at execute time.
///
/// Local-index convention: for a k-qubit gate, bit j of the local index
/// corresponds to qubits[j]; unitaries returned by matrix() are expressed
/// in this basis.
struct Gate {
  GateKind kind = GateKind::I;
  std::vector<Qubit> qubits;
  std::vector<ParamExpr> params;
  Matrix custom;  // only for kind == Unitary

  unsigned arity() const { return static_cast<unsigned>(qubits.size()); }

  /// Number of control qubits (0 for non-controlled kinds; for MCX all but
  /// the last qubit).
  unsigned num_controls() const;

  /// True if any parameter is still symbolic — the gate's unitary cannot
  /// be materialized without a binding context.
  bool is_parametric() const;

  /// True if the gate's unitary is diagonal in the computational basis.
  /// Diagonality is a property of the gate *kind* alone — no rotation
  /// angle can break it — so no binding context is needed and compile-time
  /// passes may call this on symbolic gates.
  bool is_diagonal() const;

  /// The full 2^k x 2^k unitary in the local-index convention above,
  /// materialized under `bound` (parameter values indexed by param id; see
  /// resolve_binding). Concrete gates ignore `bound`; symbolic gates throw
  /// hisim::Error naming the parameter when it is not covered. Throws for
  /// MCX with more than 12 qubits (callers use the controlled fast path
  /// instead).
  Matrix matrix(std::span<const double> bound = {}) const;

  /// The 2x2 base matrix applied to the target qubit for controlled kinds
  /// and plain single-qubit kinds, materialized under `bound` like
  /// matrix(). Throws for SWAP/RZZ/RXX/CSWAP/Unitary.
  Matrix target_matrix(std::span<const double> bound = {}) const;

  /// Human-readable form, e.g. "cx q[0],q[3]" or "rz(0.5) q[2]".
  std::string to_string() const;

  bool operator==(const Gate& o) const;

  // ---- factories ------------------------------------------------------
  static Gate i(Qubit q) { return make(GateKind::I, {q}, {}); }
  static Gate x(Qubit q) { return make(GateKind::X, {q}, {}); }
  static Gate y(Qubit q) { return make(GateKind::Y, {q}, {}); }
  static Gate z(Qubit q) { return make(GateKind::Z, {q}, {}); }
  static Gate h(Qubit q) { return make(GateKind::H, {q}, {}); }
  static Gate s(Qubit q) { return make(GateKind::S, {q}, {}); }
  static Gate sdg(Qubit q) { return make(GateKind::Sdg, {q}, {}); }
  static Gate t(Qubit q) { return make(GateKind::T, {q}, {}); }
  static Gate tdg(Qubit q) { return make(GateKind::Tdg, {q}, {}); }
  static Gate sx(Qubit q) { return make(GateKind::SX, {q}, {}); }
  // Parametric factories accept a concrete double or a symbolic
  // expression (Param, coeff * Param + offset) interchangeably.
  static Gate rx(Qubit q, ParamExpr th) {
    return make(GateKind::RX, {q}, {std::move(th)});
  }
  static Gate ry(Qubit q, ParamExpr th) {
    return make(GateKind::RY, {q}, {std::move(th)});
  }
  static Gate rz(Qubit q, ParamExpr th) {
    return make(GateKind::RZ, {q}, {std::move(th)});
  }
  static Gate p(Qubit q, ParamExpr lam) {
    return make(GateKind::P, {q}, {std::move(lam)});
  }
  static Gate u2(Qubit q, ParamExpr phi, ParamExpr lam) {
    return make(GateKind::U2, {q}, {std::move(phi), std::move(lam)});
  }
  static Gate u3(Qubit q, ParamExpr th, ParamExpr phi, ParamExpr lam) {
    return make(GateKind::U3, {q}, {std::move(th), std::move(phi),
                                    std::move(lam)});
  }
  static Gate cx(Qubit c, Qubit t) { return make(GateKind::CX, {c, t}, {}); }
  static Gate cy(Qubit c, Qubit t) { return make(GateKind::CY, {c, t}, {}); }
  static Gate cz(Qubit c, Qubit t) { return make(GateKind::CZ, {c, t}, {}); }
  static Gate ch(Qubit c, Qubit t) { return make(GateKind::CH, {c, t}, {}); }
  static Gate crx(Qubit c, Qubit t, ParamExpr th) {
    return make(GateKind::CRX, {c, t}, {std::move(th)});
  }
  static Gate cry(Qubit c, Qubit t, ParamExpr th) {
    return make(GateKind::CRY, {c, t}, {std::move(th)});
  }
  static Gate crz(Qubit c, Qubit t, ParamExpr th) {
    return make(GateKind::CRZ, {c, t}, {std::move(th)});
  }
  static Gate cp(Qubit c, Qubit t, ParamExpr lam) {
    return make(GateKind::CP, {c, t}, {std::move(lam)});
  }
  static Gate cu3(Qubit c, Qubit t, ParamExpr th, ParamExpr phi,
                  ParamExpr lam) {
    return make(GateKind::CU3, {c, t}, {std::move(th), std::move(phi),
                                        std::move(lam)});
  }
  static Gate swap(Qubit a, Qubit b) { return make(GateKind::SWAP, {a, b}, {}); }
  static Gate rzz(Qubit a, Qubit b, ParamExpr th) {
    return make(GateKind::RZZ, {a, b}, {std::move(th)});
  }
  static Gate rxx(Qubit a, Qubit b, ParamExpr th) {
    return make(GateKind::RXX, {a, b}, {std::move(th)});
  }
  static Gate ccx(Qubit c0, Qubit c1, Qubit t) {
    return make(GateKind::CCX, {c0, c1, t}, {});
  }
  static Gate cswap(Qubit c, Qubit a, Qubit b) {
    return make(GateKind::CSWAP, {c, a, b}, {});
  }
  static Gate mcx(std::vector<Qubit> controls_then_target);
  static Gate unitary(std::vector<Qubit> qubits, Matrix u);
  /// Like unitary(), but skips the unitarity check: an arbitrary linear
  /// operator (kind == Unitary). Used for stochastic Kraus-unraveling
  /// operators (K/sqrt(q) is generally non-unitary) and for internal
  /// matrix restrictions; the kernels apply any matrix exactly.
  static Gate kraus(std::vector<Qubit> qubits, Matrix k);
  /// Reserved noise-insertion point on `q` (see src/noise/trajectory.hpp):
  /// applies as an exact identity until a trajectory substitutes its
  /// sampled operator. `slot` is the id sample_ops() indexes by.
  static Gate noise_slot(Qubit q, unsigned slot);
  /// The slot id of a NoiseSlot gate (throws for any other kind).
  unsigned noise_slot_id() const;

 private:
  static Gate make(GateKind kind, std::vector<Qubit> qs,
                   std::vector<ParamExpr> ps);
};

}  // namespace hisim
