#include "circuit/fusion.hpp"

#include <algorithm>
#include <set>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/trace.hpp"

namespace hisim {

Matrix embed_unitary(const Gate& gate, const std::vector<Qubit>& support) {
  HISIM_CHECK(std::is_sorted(support.begin(), support.end()));
  const unsigned w = static_cast<unsigned>(support.size());
  HISIM_CHECK_MSG(w <= 12, "embed_unitary limited to 12 qubits");
  // Position of each gate qubit within the support.
  std::vector<unsigned> pos(gate.arity());
  for (unsigned j = 0; j < gate.arity(); ++j) {
    const auto it = std::lower_bound(support.begin(), support.end(),
                                     gate.qubits[j]);
    HISIM_CHECK_MSG(it != support.end() && *it == gate.qubits[j],
                    "gate qubit not in support");
    pos[j] = static_cast<unsigned>(it - support.begin());
  }
  const Matrix u = gate.matrix();
  const Index kdim = Index{1} << gate.arity();
  const Index dim_w = Index{1} << w;
  Matrix out(dim_w, dim_w);
  // For each assignment of the non-gate support qubits, copy u's block.
  Index gate_mask = 0;
  for (unsigned j = 0; j < gate.arity(); ++j) gate_mask |= Index{1} << pos[j];
  const Index rest_mask = ~gate_mask & (dim_w - 1);
  const Index rest_dim = dim_w >> gate.arity();
  for (Index m = 0; m < rest_dim; ++m) {
    const Index base = bits::deposit(m, rest_mask);
    for (Index r = 0; r < kdim; ++r) {
      Index row = base;
      for (unsigned j = 0; j < gate.arity(); ++j)
        if (bits::test(r, j)) row |= Index{1} << pos[j];
      for (Index cc = 0; cc < kdim; ++cc) {
        const cplx v = u(r, cc);
        if (v == cplx{}) continue;
        Index col = base;
        for (unsigned j = 0; j < gate.arity(); ++j)
          if (bits::test(cc, j)) col |= Index{1} << pos[j];
        out(row, col) = v;
      }
    }
  }
  return out;
}

namespace {

/// One open accumulation window: gate indices in program order plus the
/// union of their supports. Open runs always have pairwise-disjoint
/// supports, so emitting one while others stay open only reorders gates
/// that commute (they act on disjoint qubits).
struct Run {
  std::vector<std::size_t> gates;
  std::set<Qubit> support;
};

/// Emits one fused gate (or the original when the run has length 1).
void flush_run(Circuit& out, const Circuit& in,
               const std::vector<std::size_t>& run,
               const std::set<Qubit>& support_set) {
  if (run.empty()) return;
  if (run.size() == 1) {
    out.add(in.gate(run[0]));
    return;
  }
  const std::vector<Qubit> support(support_set.begin(), support_set.end());
  Matrix total = Matrix::identity(Index{1} << support.size());
  for (std::size_t gi : run)
    total = embed_unitary(in.gate(gi), support) * total;
  out.add(Gate::unitary(support, std::move(total)));
  static trace::Counter& fused =
      trace::MetricsRegistry::global().counter("kernel.fused_blocks");
  fused.add();
}

/// Flushes every open run in first-gate order (the deterministic
/// canonical order; any order is equivalent because supports are
/// disjoint) and clears the list.
void flush_all(Circuit& out, const Circuit& in, std::vector<Run>& runs) {
  std::sort(runs.begin(), runs.end(), [](const Run& a, const Run& b) {
    return a.gates.front() < b.gates.front();
  });
  for (const Run& r : runs) flush_run(out, in, r.gates, r.support);
  runs.clear();
}

/// Checked builds re-assert run disjointness each time the run list
/// changes; release builds compile the call away (see common/check.hpp).
void check_runs(const std::vector<Run>& runs, unsigned max_qubits) {
  if constexpr (checked_build) {
    std::vector<std::vector<Qubit>> supports;
    supports.reserve(runs.size());
    for (const Run& r : runs)
      supports.emplace_back(r.support.begin(), r.support.end());
    validate_fusion_supports(supports, max_qubits);
  }
}

}  // namespace

void validate_fusion_supports(std::span<const std::vector<Qubit>> supports,
                              unsigned max_qubits) {
  std::set<Qubit> all;
  std::size_t total = 0;
  for (std::size_t i = 0; i < supports.size(); ++i) {
    const std::vector<Qubit>& s = supports[i];
    HISIM_INVARIANT(!s.empty(), "fusion run " << i << " has empty support");
    HISIM_INVARIANT(std::is_sorted(s.begin(), s.end()) &&
                        std::adjacent_find(s.begin(), s.end()) == s.end(),
                    "fusion run " << i << " support not sorted/unique");
    HISIM_INVARIANT(s.size() <= max_qubits,
                    "fusion run " << i << " spans " << s.size()
                                  << " qubits, limit is " << max_qubits);
    total += s.size();
    all.insert(s.begin(), s.end());
  }
  HISIM_INVARIANT(all.size() == total,
                  "open fusion runs overlap: " << total << " support entries "
                                               << "but only " << all.size()
                                               << " distinct qubits — "
                                               << "disjoint-commute reordering "
                                               << "argument violated");
}

Circuit fuse(const Circuit& c, const FusionOptions& opt) {
  HISIM_CHECK(opt.max_qubits >= 1 && opt.max_qubits <= 10);
  Circuit out(c.num_qubits(), c.name() + "_fused");
  // Re-registering in order preserves parameter ids, so symbolic gates
  // pass through with their expressions intact.
  for (const std::string& p : c.param_names()) out.param(p);
  std::vector<Run> runs;
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    const Gate& g = c.gate(i);
    // The arity policy applies to symbolic gates too (a wide symbolic
    // gate must still trip keep_wide_gates=false), so check it first.
    if (g.arity() > opt.max_qubits) {
      HISIM_CHECK_MSG(opt.keep_wide_gates,
                      "gate wider than fusion limit: " << g.to_string());
      flush_all(out, c, runs);
      out.add(g);
      continue;
    }
    if (g.is_parametric() || g.kind == GateKind::NoiseSlot) {
      // A symbolic gate has no materializable unitary at fusion time; it
      // breaks every open run and passes through for bind-at-execute
      // materialization. Fusing it into a dense Unitary here would bake in
      // angle values and defeat the one-plan/many-bindings contract.
      // A reserved noise slot likewise passes through intact: fusing its
      // (currently identity) matrix into a neighbour would erase the
      // insertion point trajectories substitute sampled operators into.
      // All runs flush (not just overlapping ones) so no fused block is
      // hoisted across a barrier it might not commute with at bind time.
      flush_all(out, c, runs);
      out.add(g);
      continue;
    }
    // Runs whose support the gate touches. Zero -> open a new run; one or
    // more -> the gate bridges them: merge if the combined support still
    // fits, otherwise flush the touched runs and start fresh. Untouched
    // runs stay open either way — that is what lets interleaved disjoint
    // streams (h 0; h 2; h 1; cx 0 1; ...) each reach a full-width block
    // instead of cutting each other's windows short.
    std::vector<std::size_t> touched;
    for (std::size_t r = 0; r < runs.size(); ++r)
      for (Qubit q : g.qubits)
        if (runs[r].support.count(q)) {
          touched.push_back(r);
          break;
        }
    std::set<Qubit> merged(g.qubits.begin(), g.qubits.end());
    for (std::size_t r : touched)
      merged.insert(runs[r].support.begin(), runs[r].support.end());
    if (merged.size() <= opt.max_qubits) {
      // Merge the touched runs into the first one; gate order inside the
      // merged run is by original index (runs were disjoint until now, so
      // only the relative order within each original run constrains the
      // product — ascending index respects all of them).
      Run next;
      next.support = std::move(merged);
      for (std::size_t r : touched)
        next.gates.insert(next.gates.end(), runs[r].gates.begin(),
                          runs[r].gates.end());
      next.gates.push_back(i);
      std::sort(next.gates.begin(), next.gates.end());
      for (std::size_t t = touched.size(); t-- > 0;)
        runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(touched[t]));
      runs.push_back(std::move(next));
      check_runs(runs, opt.max_qubits);
    } else {
      std::vector<Run> blocked;
      for (std::size_t t = touched.size(); t-- > 0;) {
        blocked.push_back(std::move(runs[touched[t]]));
        runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(touched[t]));
      }
      flush_all(out, c, blocked);
      Run fresh;
      fresh.gates.push_back(i);
      fresh.support.insert(g.qubits.begin(), g.qubits.end());
      runs.push_back(std::move(fresh));
      check_runs(runs, opt.max_qubits);
    }
  }
  flush_all(out, c, runs);
  return out;
}

}  // namespace hisim
