#include "circuit/fusion.hpp"

#include <algorithm>
#include <set>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace hisim {

Matrix embed_unitary(const Gate& gate, const std::vector<Qubit>& support) {
  HISIM_CHECK(std::is_sorted(support.begin(), support.end()));
  const unsigned w = static_cast<unsigned>(support.size());
  HISIM_CHECK_MSG(w <= 12, "embed_unitary limited to 12 qubits");
  // Position of each gate qubit within the support.
  std::vector<unsigned> pos(gate.arity());
  for (unsigned j = 0; j < gate.arity(); ++j) {
    const auto it = std::lower_bound(support.begin(), support.end(),
                                     gate.qubits[j]);
    HISIM_CHECK_MSG(it != support.end() && *it == gate.qubits[j],
                    "gate qubit not in support");
    pos[j] = static_cast<unsigned>(it - support.begin());
  }
  const Matrix u = gate.matrix();
  const Index kdim = Index{1} << gate.arity();
  const Index dim_w = Index{1} << w;
  Matrix out(dim_w, dim_w);
  // For each assignment of the non-gate support qubits, copy u's block.
  Index gate_mask = 0;
  for (unsigned j = 0; j < gate.arity(); ++j) gate_mask |= Index{1} << pos[j];
  const Index rest_mask = ~gate_mask & (dim_w - 1);
  const Index rest_dim = dim_w >> gate.arity();
  for (Index m = 0; m < rest_dim; ++m) {
    const Index base = bits::deposit(m, rest_mask);
    for (Index r = 0; r < kdim; ++r) {
      Index row = base;
      for (unsigned j = 0; j < gate.arity(); ++j)
        if (bits::test(r, j)) row |= Index{1} << pos[j];
      for (Index cc = 0; cc < kdim; ++cc) {
        const cplx v = u(r, cc);
        if (v == cplx{}) continue;
        Index col = base;
        for (unsigned j = 0; j < gate.arity(); ++j)
          if (bits::test(cc, j)) col |= Index{1} << pos[j];
        out(row, col) = v;
      }
    }
  }
  return out;
}

namespace {

/// Emits one fused gate (or the original when the run has length 1).
void flush_run(Circuit& out, const Circuit& in,
               const std::vector<std::size_t>& run,
               const std::set<Qubit>& support_set) {
  if (run.empty()) return;
  if (run.size() == 1) {
    out.add(in.gate(run[0]));
    return;
  }
  const std::vector<Qubit> support(support_set.begin(), support_set.end());
  Matrix total = Matrix::identity(Index{1} << support.size());
  for (std::size_t gi : run)
    total = embed_unitary(in.gate(gi), support) * total;
  out.add(Gate::unitary(support, std::move(total)));
}

}  // namespace

Circuit fuse(const Circuit& c, const FusionOptions& opt) {
  HISIM_CHECK(opt.max_qubits >= 1 && opt.max_qubits <= 10);
  Circuit out(c.num_qubits(), c.name() + "_fused");
  // Re-registering in order preserves parameter ids, so symbolic gates
  // pass through with their expressions intact.
  for (const std::string& p : c.param_names()) out.param(p);
  std::vector<std::size_t> run;
  std::set<Qubit> support;
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    const Gate& g = c.gate(i);
    // The arity policy applies to symbolic gates too (a wide symbolic
    // gate must still trip keep_wide_gates=false), so check it first.
    if (g.arity() > opt.max_qubits) {
      HISIM_CHECK_MSG(opt.keep_wide_gates,
                      "gate wider than fusion limit: " << g.to_string());
      flush_run(out, c, run, support);
      run.clear();
      support.clear();
      out.add(g);
      continue;
    }
    if (g.is_parametric() || g.kind == GateKind::NoiseSlot) {
      // A symbolic gate has no materializable unitary at fusion time; it
      // breaks the current run and passes through for bind-at-execute
      // materialization. Fusing it into a dense Unitary here would bake in
      // angle values and defeat the one-plan/many-bindings contract.
      // A reserved noise slot likewise passes through intact: fusing its
      // (currently identity) matrix into a neighbour would erase the
      // insertion point trajectories substitute sampled operators into.
      flush_run(out, c, run, support);
      run.clear();
      support.clear();
      out.add(g);
      continue;
    }
    std::set<Qubit> merged = support;
    merged.insert(g.qubits.begin(), g.qubits.end());
    if (merged.size() > opt.max_qubits) {
      flush_run(out, c, run, support);
      run.clear();
      support.clear();
      support.insert(g.qubits.begin(), g.qubits.end());
    } else {
      support = std::move(merged);
    }
    run.push_back(i);
  }
  flush_run(out, c, run, support);
  return out;
}

}  // namespace hisim
