#include "circuit/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hisim {

Matrix Matrix::operator*(const Matrix& rhs) const {
  HISIM_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = (*this)(i, k);
      if (a == cplx{}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

Matrix Matrix::operator*(cplx s) const {
  Matrix out = *this;
  for (auto& v : out.data_) v *= s;
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  HISIM_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
  return out;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) {
      const cplx a = (*this)(i, j);
      if (a == cplx{}) continue;
      for (std::size_t r = 0; r < rhs.rows_; ++r)
        for (std::size_t c = 0; c < rhs.cols_; ++c)
          out(i * rhs.rows_ + r, j * rhs.cols_ + c) = a * rhs(r, c);
    }
  return out;
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  HISIM_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  return m;
}

bool Matrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const Matrix prod = (*this) * adjoint();
  return prod.max_abs_diff(identity(rows_)) <= tol;
}

}  // namespace hisim
