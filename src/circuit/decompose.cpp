#include "circuit/decompose.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hisim {
namespace {

constexpr cplx kI{0.0, 1.0};
constexpr double kEps = 1e-12;

void emit(std::vector<Gate>& out, const std::vector<Gate>& gs) {
  out.insert(out.end(), gs.begin(), gs.end());
}

/// Controlled application of an arbitrary 2x2 unitary using the
/// A-X-B-X-C construction (N&C Fig. 4.6): emits only 1q gates + CX.
std::vector<Gate> controlled_u_gates(Qubit c, Qubit t, const Matrix& u) {
  const ZyzAngles a = zyz_decompose(u);
  std::vector<Gate> out;
  // C = Rz((delta-beta)/2)
  out.push_back(Gate::rz(t, (a.delta - a.beta) / 2));
  out.push_back(Gate::cx(c, t));
  // B = Ry(-gamma/2) Rz(-(delta+beta)/2): Rz applied first.
  out.push_back(Gate::rz(t, -(a.delta + a.beta) / 2));
  out.push_back(Gate::ry(t, -a.gamma / 2));
  out.push_back(Gate::cx(c, t));
  // A = Rz(beta) Ry(gamma/2): Ry applied first.
  out.push_back(Gate::ry(t, a.gamma / 2));
  out.push_back(Gate::rz(t, a.beta));
  // Phase e^{i alpha} conditioned on the control.
  if (std::abs(a.alpha) > kEps) out.push_back(Gate::p(c, a.alpha));
  return out;
}

std::vector<Gate> mcx_gates(const std::vector<Qubit>& cs, Qubit t,
                            unsigned max_arity);

/// Multi-controlled U via the Barenco V-recursion:
///   C^k(U) = C(V on ck->t) . C^{k-1}(X on c1..c_{k-1}->ck)
///          . C(V^dag on ck->t) . C^{k-1}(X ...) . C^{k-1}(V on c1..->t)
/// with V = sqrt(U).
std::vector<Gate> mcu_gates(const std::vector<Qubit>& cs, Qubit t,
                            const Matrix& u, unsigned max_arity) {
  HISIM_CHECK(!cs.empty());
  if (cs.size() == 1) return controlled_u_gates(cs[0], t, u);
  const Matrix v = sqrt_unitary_2x2(u);
  const Matrix vdg = v.adjoint();
  std::vector<Qubit> rest(cs.begin(), cs.end() - 1);
  const Qubit ck = cs.back();
  std::vector<Gate> out;
  emit(out, controlled_u_gates(ck, t, v));
  emit(out, mcx_gates(rest, ck, max_arity));
  emit(out, controlled_u_gates(ck, t, vdg));
  emit(out, mcx_gates(rest, ck, max_arity));
  emit(out, mcu_gates(rest, t, v, max_arity));
  return out;
}

std::vector<Gate> ccx_gates(Qubit a, Qubit b, Qubit c) {
  // Standard qelib1 Toffoli (6 CX + 9 single-qubit gates).
  return {Gate::h(c),      Gate::cx(b, c), Gate::tdg(c), Gate::cx(a, c),
          Gate::t(c),      Gate::cx(b, c), Gate::tdg(c), Gate::cx(a, c),
          Gate::t(b),      Gate::t(c),     Gate::h(c),   Gate::cx(a, b),
          Gate::t(a),      Gate::tdg(b),   Gate::cx(a, b)};
}

std::vector<Gate> mcx_gates(const std::vector<Qubit>& cs, Qubit t,
                            unsigned max_arity) {
  if (cs.size() == 1) return {Gate::cx(cs[0], t)};
  if (cs.size() == 2) {
    if (max_arity >= 3) return {Gate::ccx(cs[0], cs[1], t)};
    return ccx_gates(cs[0], cs[1], t);
  }
  return mcu_gates(cs, t, Gate::x(0).target_matrix(), max_arity);
}

}  // namespace

ZyzAngles zyz_decompose(const Matrix& u) {
  HISIM_CHECK(u.rows() == 2 && u.cols() == 2);
  const cplx det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
  const double alpha = 0.5 * std::arg(det);
  const cplx ph = std::exp(-kI * alpha);
  const cplx v00 = ph * u(0, 0), v10 = ph * u(1, 0);
  const double gamma = 2.0 * std::atan2(std::abs(v10), std::abs(v00));
  double sum, diff;  // sum = beta+delta, diff = beta-delta
  if (std::abs(v00) > kEps) {
    sum = -2.0 * std::arg(v00);
  } else {
    sum = 0.0;
  }
  if (std::abs(v10) > kEps) {
    diff = 2.0 * std::arg(v10);
  } else {
    diff = 0.0;
  }
  return {alpha, (sum + diff) / 2, gamma, (sum - diff) / 2};
}

Matrix sqrt_unitary_2x2(const Matrix& u) {
  HISIM_CHECK(u.rows() == 2 && u.cols() == 2);
  // Eigenvalues from the characteristic polynomial.
  const cplx tr = u(0, 0) + u(1, 1);
  const cplx det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
  const cplx disc = std::sqrt(tr * tr - 4.0 * det);
  const cplx l1 = (tr + disc) / 2.0, l2 = (tr - disc) / 2.0;
  if (std::abs(l1 - l2) < kEps) {
    // U = l * I (unitary with equal eigenvalues and normal => scalar).
    Matrix r = Matrix::identity(2);
    return r * std::sqrt(l1);
  }
  // Eigenvectors: (U - l2 I) has columns proportional to the l1-eigenvector.
  auto eigvec = [&](cplx lam) {
    cplx x, y;
    if (std::abs(u(0, 1)) > kEps) {
      x = u(0, 1);
      y = lam - u(0, 0);
    } else if (std::abs(u(1, 0)) > kEps) {
      x = lam - u(1, 1);
      y = u(1, 0);
    } else {
      // Diagonal: eigenvectors are basis vectors.
      if (std::abs(u(0, 0) - lam) < std::abs(u(1, 1) - lam)) {
        x = 1; y = 0;
      } else {
        x = 0; y = 1;
      }
    }
    const double n = std::sqrt(std::norm(x) + std::norm(y));
    return std::pair<cplx, cplx>{x / n, y / n};
  };
  const auto [a1, b1] = eigvec(l1);
  const auto [a2, b2] = eigvec(l2);
  Matrix v(2, 2);
  v(0, 0) = a1; v(0, 1) = a2; v(1, 0) = b1; v(1, 1) = b2;
  const cplx vdet = v(0, 0) * v(1, 1) - v(0, 1) * v(1, 0);
  Matrix vinv(2, 2);
  vinv(0, 0) = v(1, 1) / vdet;
  vinv(0, 1) = -v(0, 1) / vdet;
  vinv(1, 0) = -v(1, 0) / vdet;
  vinv(1, 1) = v(0, 0) / vdet;
  Matrix d(2, 2);
  d(0, 0) = std::sqrt(l1);
  d(1, 1) = std::sqrt(l2);
  return v * d * vinv;
}

std::vector<Gate> decompose_gate(const Gate& g, unsigned max_arity) {
  HISIM_CHECK(max_arity >= 2);
  if (g.arity() <= max_arity) return {g};
  switch (g.kind) {
    case GateKind::CCX:
      return ccx_gates(g.qubits[0], g.qubits[1], g.qubits[2]);
    case GateKind::CSWAP: {
      const Qubit c = g.qubits[0], a = g.qubits[1], b = g.qubits[2];
      std::vector<Gate> out{Gate::cx(b, a)};
      emit(out, decompose_gate(Gate::ccx(c, a, b), max_arity));
      out.push_back(Gate::cx(b, a));
      return out;
    }
    case GateKind::MCX: {
      std::vector<Qubit> cs(g.qubits.begin(), g.qubits.end() - 1);
      return mcx_gates(cs, g.qubits.back(), max_arity);
    }
    default:
      throw Error("cannot decompose " + gate_name(g.kind) + " of arity " +
                  std::to_string(g.arity()) + " below " +
                  std::to_string(max_arity));
  }
}

Circuit lower(const Circuit& c, unsigned max_arity) {
  Circuit out(c.num_qubits(), c.name() + "_lowered");
  for (const std::string& p : c.param_names()) out.param(p);
  for (const Gate& g : c.gates())
    for (Gate& e : decompose_gate(g, max_arity)) out.add(std::move(e));
  return out;
}

Circuit lower_to_1q_cx(const Circuit& c) {
  Circuit out(c.num_qubits(), c.name() + "_1qcx");
  for (const std::string& p : c.param_names()) out.param(p);
  for (const Gate& g : c.gates()) {
    if (g.arity() == 1 || g.kind == GateKind::CX) {
      out.add(g);
      continue;
    }
    switch (g.kind) {
      case GateKind::CZ:
        out.add(Gate::h(g.qubits[1]));
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        out.add(Gate::h(g.qubits[1]));
        break;
      case GateKind::CY:
        out.add(Gate::sdg(g.qubits[1]));
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        out.add(Gate::s(g.qubits[1]));
        break;
      case GateKind::SWAP:
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        out.add(Gate::cx(g.qubits[1], g.qubits[0]));
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        break;
      case GateKind::RZZ:
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        out.add(Gate::rz(g.qubits[1], g.params[0]));
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        break;
      case GateKind::RXX:
        out.add(Gate::h(g.qubits[0]));
        out.add(Gate::h(g.qubits[1]));
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        out.add(Gate::rz(g.qubits[1], g.params[0]));
        out.add(Gate::cx(g.qubits[0], g.qubits[1]));
        out.add(Gate::h(g.qubits[0]));
        out.add(Gate::h(g.qubits[1]));
        break;
      case GateKind::CP: {
        // qelib1 cu1. The angle may be symbolic: the affine ParamExpr
        // algebra keeps lam/2 and -lam/2 deferred.
        const Qubit c0 = g.qubits[0], t = g.qubits[1];
        const ParamExpr lam = g.params[0];
        out.add(Gate::p(c0, lam / 2));
        out.add(Gate::cx(c0, t));
        out.add(Gate::p(t, -lam / 2));
        out.add(Gate::cx(c0, t));
        out.add(Gate::p(t, lam / 2));
        break;
      }
      case GateKind::CRZ: {
        const Qubit c0 = g.qubits[0], t = g.qubits[1];
        out.add(Gate::rz(t, g.params[0] / 2));
        out.add(Gate::cx(c0, t));
        out.add(Gate::rz(t, -g.params[0] / 2));
        out.add(Gate::cx(c0, t));
        break;
      }
      case GateKind::CH: case GateKind::CRX: case GateKind::CRY:
      case GateKind::CU3: {
        // The A-X-B-X-C construction's ZYZ angles are *nonlinear* in the
        // gate parameters, so — unlike the CP/CRZ half-angle paths above —
        // they cannot stay symbolic through the affine ParamExpr algebra.
        HISIM_CHECK_MSG(!g.is_parametric(),
                        "cannot lower symbolic "
                            << g.to_string()
                            << " to 1q+cx: its ZYZ decomposition depends "
                               "on the angle value — bind the parameter "
                               "first (Circuit::bound)");
        for (Gate& e :
             controlled_u_gates(g.qubits[0], g.qubits[1], g.target_matrix()))
          out.add(std::move(e));
        break;
      }
      case GateKind::CCX: case GateKind::CSWAP: case GateKind::MCX: {
        // Lower to arity-2 first (CCX path already yields 1q+CX).
        for (Gate& e : decompose_gate(g, 2)) {
          if (e.arity() == 1 || e.kind == GateKind::CX) {
            out.add(std::move(e));
          } else {
            Circuit tmp(c.num_qubits());
            tmp.add(std::move(e));
            out.append(lower_to_1q_cx(tmp));
          }
        }
        break;
      }
      default:
        throw Error("lower_to_1q_cx: unsupported kind " + gate_name(g.kind));
    }
  }
  return out;
}

}  // namespace hisim
