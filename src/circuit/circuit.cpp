#include "circuit/circuit.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace hisim {

void Circuit::add(Gate g) {
  for (Qubit q : g.qubits)
    HISIM_CHECK_MSG(q < num_qubits_, "gate qubit q[" << q << "] out of range ("
                                                     << num_qubits_
                                                     << "-qubit circuit)");
  gates_.push_back(std::move(g));
}

void Circuit::append(const Circuit& other) {
  HISIM_CHECK(other.num_qubits_ <= num_qubits_);
  for (const Gate& g : other.gates_) add(g);
}

unsigned Circuit::depth() const {
  std::vector<unsigned> level(num_qubits_, 0);
  unsigned depth = 0;
  for (const Gate& g : gates_) {
    unsigned lvl = 0;
    for (Qubit q : g.qubits) lvl = std::max(lvl, level[q]);
    ++lvl;
    for (Qubit q : g.qubits) level[q] = lvl;
    depth = std::max(depth, lvl);
  }
  return depth;
}

std::map<std::string, std::size_t> Circuit::gate_histogram() const {
  std::map<std::string, std::size_t> hist;
  for (const Gate& g : gates_) ++hist[gate_name(g.kind)];
  return hist;
}

unsigned Circuit::used_qubits() const {
  std::set<Qubit> used;
  for (const Gate& g : gates_) used.insert(g.qubits.begin(), g.qubits.end());
  return static_cast<unsigned>(used.size());
}

std::string Circuit::summary() const {
  std::ostringstream os;
  os << name_ << ": " << num_qubits_ << " qubits, " << num_gates()
     << " gates, depth " << depth() << ", sv "
     << static_cast<double>(memory_bytes()) / (1024.0 * 1024.0) << " MiB";
  return os.str();
}

}  // namespace hisim
