#include "circuit/circuit.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace hisim {

void Circuit::add(Gate g) {
  validate_gate(g);
  gates_.push_back(std::move(g));
}

void Circuit::set_gate(std::size_t i, Gate g) {
  HISIM_CHECK_MSG(i < gates_.size(),
                  "set_gate index " << i << " out of range ("
                                    << gates_.size() << " gates)");
  validate_gate(g);
  gates_[i] = std::move(g);
}

void Circuit::validate_gate(const Gate& g) const {
  for (Qubit q : g.qubits)
    HISIM_CHECK_MSG(q < num_qubits_, "gate qubit q[" << q << "] out of range ("
                                                     << num_qubits_
                                                     << "-qubit circuit)");
  // A symbolic expression must reference *this* circuit's registry — a
  // Param handle from another circuit would otherwise silently bind to
  // whatever parameter happens to share its id here.
  for (const ParamExpr& e : g.params) {
    if (!e.symbolic) continue;
    HISIM_CHECK_MSG(e.param < param_names_.size() &&
                        param_names_[e.param] == e.name,
                    "gate parameter '"
                        << e.name
                        << "' is not registered on this circuit (create "
                           "handles with this circuit's param())");
  }
}

void Circuit::append(const Circuit& other) {
  HISIM_CHECK(other.num_qubits_ <= num_qubits_);
  // Merge the registries by name first, so appended symbolic expressions
  // can be re-indexed into this circuit's id space.
  std::vector<unsigned> remap(other.param_names_.size());
  for (std::size_t i = 0; i < other.param_names_.size(); ++i)
    remap[i] = param(other.param_names_[i]).id;
  for (const Gate& g : other.gates_) {
    Gate copy = g;
    for (ParamExpr& e : copy.params) {
      if (!e.symbolic) continue;
      HISIM_CHECK_MSG(e.param < remap.size(),
                      "appended gate references parameter '"
                          << e.name << "' not registered on its circuit");
      e.param = remap[e.param];
    }
    add(std::move(copy));
  }
}

Param Circuit::param(const std::string& name) {
  HISIM_CHECK_MSG(!name.empty(), "parameter name must be non-empty");
  for (std::size_t i = 0; i < param_names_.size(); ++i)
    if (param_names_[i] == name)
      return Param{static_cast<unsigned>(i), name};
  param_names_.push_back(name);
  return Param{static_cast<unsigned>(param_names_.size() - 1), name};
}

Circuit Circuit::bound(std::span<const double> values) const {
  Circuit out(num_qubits_, name_);
  out.gates_.reserve(gates_.size());
  for (const Gate& g : gates_) {
    Gate copy = g;
    for (ParamExpr& e : copy.params)
      if (e.symbolic) e = ParamExpr(e.value_at(values));
    out.gates_.push_back(std::move(copy));
  }
  return out;
}

Circuit Circuit::bound(const ParamBinding& binding) const {
  return bound(resolve_binding(param_names_, binding));
}

unsigned Circuit::depth() const {
  std::vector<unsigned> level(num_qubits_, 0);
  unsigned depth = 0;
  for (const Gate& g : gates_) {
    unsigned lvl = 0;
    for (Qubit q : g.qubits) lvl = std::max(lvl, level[q]);
    ++lvl;
    for (Qubit q : g.qubits) level[q] = lvl;
    depth = std::max(depth, lvl);
  }
  return depth;
}

std::map<std::string, std::size_t> Circuit::gate_histogram() const {
  std::map<std::string, std::size_t> hist;
  for (const Gate& g : gates_) ++hist[gate_name(g.kind)];
  return hist;
}

unsigned Circuit::used_qubits() const {
  std::set<Qubit> used;
  for (const Gate& g : gates_) used.insert(g.qubits.begin(), g.qubits.end());
  return static_cast<unsigned>(used.size());
}

std::string Circuit::summary() const {
  std::ostringstream os;
  os << name_ << ": " << num_qubits_ << " qubits, " << num_gates()
     << " gates, depth " << depth() << ", sv "
     << static_cast<double>(memory_bytes()) / (1024.0 * 1024.0) << " MiB";
  return os.str();
}

}  // namespace hisim
