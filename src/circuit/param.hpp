#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

namespace hisim {

/// A named symbolic circuit parameter. Handles are created by
/// Circuit::param(name) — the circuit assigns the id — and passed to the
/// parametric gate factories (rx/ry/rz/p/crx/cry/crz/cp/u2/u3/cu3/rzz/rxx)
/// in place of a concrete angle. The angle is supplied later, at execute
/// time, through a ParamBinding: the circuit's *structure* (and therefore
/// everything Engine::compile precomputes — partitioning, lowering, rank
/// layouts, the exchange schedule) is independent of the value, so one
/// compiled plan serves every binding.
struct Param {
  unsigned id = 0;    // index into the owning circuit's registry
  std::string name;
};

/// An affine parameter expression: `coeff * param + offset`, or a plain
/// concrete value when no parameter is attached. This is the full
/// expression language — enough for the QAOA/VQE ansatz angles (e.g.
/// `2.0 * beta`, `-gamma / 2`) while keeping binding a single fused
/// multiply-add per gate parameter.
///
/// Implicitly constructible from `double` (concrete) and from `Param`
/// (the identity expression `1 * p + 0`), so every gate factory accepts
/// either without overloads.
struct ParamExpr {
  bool symbolic = false;
  unsigned param = 0;    // param id, meaningful only when symbolic
  std::string name;      // param name, for messages/printing
  double coeff = 0.0;    // multiplies the bound value when symbolic
  double offset = 0.0;   // the concrete value when !symbolic

  ParamExpr() = default;
  ParamExpr(double v) : offset(v) {}                    // NOLINT: implicit
  ParamExpr(const Param& p)                             // NOLINT: implicit
      : symbolic(true), param(p.id), name(p.name), coeff(1.0) {}

  /// The concrete value. Throws hisim::Error naming the parameter when the
  /// expression is symbolic — materializing a symbolic gate requires a
  /// binding.
  double value() const;

  /// The value under `values` (indexed by param id, as produced by
  /// resolve_binding). Throws hisim::Error naming the parameter when it is
  /// not covered.
  double value_at(std::span<const double> values) const;

  /// e.g. "0.5", "gamma0", "2*beta1", "-0.5*gamma0+1.2".
  std::string to_string() const;

  bool operator==(const ParamExpr&) const = default;
};

ParamExpr operator*(ParamExpr e, double c);
ParamExpr operator*(double c, ParamExpr e);
ParamExpr operator/(ParamExpr e, double c);
ParamExpr operator+(ParamExpr e, double o);
ParamExpr operator+(double o, ParamExpr e);
ParamExpr operator-(ParamExpr e, double o);
ParamExpr operator-(double o, ParamExpr e);
ParamExpr operator-(ParamExpr e);

/// One sweep point: parameter name -> value. std::map keeps iteration (and
/// therefore Result::to_json output) deterministic.
using ParamBinding = std::map<std::string, double>;

/// Validates `binding` against the parameter registry `names` and returns
/// the values indexed by param id. Throws hisim::Error, naming the
/// offending parameter, when a registered parameter is unbound, when the
/// binding mentions an unknown name, or when a value is NaN/infinite.
std::vector<double> resolve_binding(std::span<const std::string> names,
                                    const ParamBinding& binding);

}  // namespace hisim
