#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"

namespace hisim {

/// ZYZ Euler angles of a 2x2 unitary: U = e^{i alpha} Rz(beta) Ry(gamma)
/// Rz(delta). Foundation of the controlled-U decomposition (Nielsen &
/// Chuang Sec. 4.3), which the paper's footnote relies on to reduce
/// multi-control gates to the single-qubit case.
struct ZyzAngles {
  double alpha, beta, gamma, delta;
};
ZyzAngles zyz_decompose(const Matrix& u2x2);

/// Principal square root of a 2x2 unitary (V with V*V == U).
Matrix sqrt_unitary_2x2(const Matrix& u2x2);

/// Expands one gate into gates of arity <= `max_arity` (>= 2). Gates
/// already within the limit are returned unchanged. MCX/multi-controlled
/// expansion uses the ancilla-free Barenco recursion, so the emitted count
/// grows exponentially with the control count — intended for lowering the
/// occasional wide gate, not for bulk translation of wide-oracle circuits.
std::vector<Gate> decompose_gate(const Gate& g, unsigned max_arity = 2);

/// Lowers every gate of `c` to arity <= max_arity.
Circuit lower(const Circuit& c, unsigned max_arity = 2);

/// Fully lowers to the {single-qubit, CX} basis (SWAP/RZZ/CZ/... included).
Circuit lower_to_1q_cx(const Circuit& c);

}  // namespace hisim
