#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/types.hpp"

namespace hisim {

/// A quantum circuit: an ordered gate sequence on `num_qubits()` qubits.
/// The order is the *natural topological order* the paper's Nat partitioner
/// consumes.
///
/// A circuit may be *parameterized*: param(name) registers a named
/// symbolic parameter whose handle the parametric gate factories accept in
/// place of a concrete angle. Everything structural — qubits, gate kinds,
/// order, and therefore partitioning/lowering/layout planning — is fixed;
/// only the angle values are deferred until bound() (or, through the
/// Engine, until ExecOptions::bindings at execute time).
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(unsigned num_qubits, std::string name = "circuit")
      : num_qubits_(num_qubits), name_(std::move(name)) {}

  unsigned num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t num_gates() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_[i]; }

  /// Appends a gate; validates that its qubits are in range.
  void add(Gate g);

  /// Replaces gate `i` in place (same validation as add()). Used by the
  /// noise-trajectory executor to substitute sampled operators into
  /// reserved NoiseSlot gates — gate count and order are preserved, so
  /// partition/inner gate indices into this circuit stay valid.
  void set_gate(std::size_t i, Gate g);

  /// Appends all gates of `other` (qubit counts must match). Parameters of
  /// `other` are merged by name: same-named parameters unify, new names
  /// are registered here and the appended gates' expressions re-indexed.
  void append(const Circuit& other);

  // ---- symbolic parameters --------------------------------------------

  /// Registers (or looks up) the named symbolic parameter and returns its
  /// handle. Registration order defines the parameter ids resolve_binding
  /// produces values for. Names must be non-empty.
  Param param(const std::string& name);

  std::size_t num_params() const { return param_names_.size(); }
  /// Registered parameter names in id order.
  const std::vector<std::string>& param_names() const { return param_names_; }
  /// True when the circuit declares symbolic parameters (a binding is then
  /// required to materialize and execute it).
  bool is_parameterized() const { return !param_names_.empty(); }

  /// A copy with every symbolic gate parameter replaced by its concrete
  /// value under `values` (indexed by param id, as produced by
  /// resolve_binding). Gate count and order are preserved exactly; the
  /// copy has an empty parameter registry. Throws, naming the parameter,
  /// when a symbolic expression is not covered.
  Circuit bound(std::span<const double> values) const;

  /// Convenience overload: validates `binding` against the registry
  /// (unknown/unbound/non-finite values throw) and resolves by name.
  Circuit bound(const ParamBinding& binding) const;

  /// Circuit depth: longest chain of qubit-dependent gates.
  unsigned depth() const;

  /// Gate-kind histogram, e.g. {"h": 30, "cx": 29}.
  std::map<std::string, std::size_t> gate_histogram() const;

  /// Count of distinct qubits actually touched by gates.
  unsigned used_qubits() const;

  /// State-vector bytes required to simulate this circuit flat.
  Index memory_bytes() const { return dim(num_qubits_) * kAmpBytes; }

  /// Multi-line summary used by Table I.
  std::string summary() const;

  bool operator==(const Circuit& o) const {
    return num_qubits_ == o.num_qubits_ && gates_ == o.gates_ &&
           param_names_ == o.param_names_;
  }

 private:
  void validate_gate(const Gate& g) const;

  unsigned num_qubits_ = 0;
  std::string name_ = "circuit";
  std::vector<Gate> gates_;
  std::vector<std::string> param_names_;  // id -> name
};

}  // namespace hisim
