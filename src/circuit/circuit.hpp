#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/types.hpp"

namespace hisim {

/// A quantum circuit: an ordered gate sequence on `num_qubits()` qubits.
/// The order is the *natural topological order* the paper's Nat partitioner
/// consumes.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(unsigned num_qubits, std::string name = "circuit")
      : num_qubits_(num_qubits), name_(std::move(name)) {}

  unsigned num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t num_gates() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_[i]; }

  /// Appends a gate; validates that its qubits are in range.
  void add(Gate g);

  /// Appends all gates of `other` (qubit counts must match).
  void append(const Circuit& other);

  /// Circuit depth: longest chain of qubit-dependent gates.
  unsigned depth() const;

  /// Gate-kind histogram, e.g. {"h": 30, "cx": 29}.
  std::map<std::string, std::size_t> gate_histogram() const;

  /// Count of distinct qubits actually touched by gates.
  unsigned used_qubits() const;

  /// State-vector bytes required to simulate this circuit flat.
  Index memory_bytes() const { return dim(num_qubits_) * kAmpBytes; }

  /// Multi-line summary used by Table I.
  std::string summary() const;

  bool operator==(const Circuit& o) const {
    return num_qubits_ == o.num_qubits_ && gates_ == o.gates_;
  }

 private:
  unsigned num_qubits_ = 0;
  std::string name_ = "circuit";
  std::vector<Gate> gates_;
};

}  // namespace hisim
