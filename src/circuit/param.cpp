#include "circuit/param.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace hisim {

namespace {

// Binding failures are user input errors, not internal invariants: throw
// plain Errors (no HISIM_CHECK file/line noise) that name the parameter.
[[noreturn]] void throw_unbound(const std::string& name) {
  throw Error("unbound parameter '" + name +
              "': a symbolic gate needs a binding (pass values via "
              "ExecOptions::bindings or Circuit::bound)");
}

}  // namespace

double ParamExpr::value() const {
  if (symbolic) throw_unbound(name);
  return offset;
}

double ParamExpr::value_at(std::span<const double> values) const {
  if (!symbolic) return offset;
  if (param >= values.size()) throw_unbound(name);
  return coeff * values[param] + offset;
}

std::string ParamExpr::to_string() const {
  std::ostringstream os;
  if (!symbolic) {
    os << offset;
    return os.str();
  }
  if (coeff == -1.0) {
    os << "-";
  } else if (coeff != 1.0) {
    os << coeff << "*";
  }
  os << name;
  if (offset != 0.0) os << (offset > 0 ? "+" : "") << offset;
  return os.str();
}

ParamExpr operator*(ParamExpr e, double c) {
  e.coeff *= c;
  e.offset *= c;
  return e;
}
ParamExpr operator*(double c, ParamExpr e) { return std::move(e) * c; }
ParamExpr operator/(ParamExpr e, double c) {
  e.coeff /= c;
  e.offset /= c;
  return e;
}
ParamExpr operator+(ParamExpr e, double o) {
  e.offset += o;
  return e;
}
ParamExpr operator+(double o, ParamExpr e) { return std::move(e) + o; }
ParamExpr operator-(ParamExpr e, double o) { return std::move(e) + (-o); }
ParamExpr operator-(double o, ParamExpr e) { return -std::move(e) + o; }
ParamExpr operator-(ParamExpr e) {
  e.coeff = -e.coeff;
  e.offset = -e.offset;
  return e;
}

std::vector<double> resolve_binding(std::span<const std::string> names,
                                    const ParamBinding& binding) {
  for (const auto& [name, value] : binding) {
    bool known = false;
    for (const std::string& n : names) {
      if (n == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::ostringstream os;
      os << "unknown parameter '" << name << "' in binding (";
      if (names.empty()) {
        os << "the circuit has no parameters";
      } else {
        os << "circuit parameters:";
        for (const std::string& n : names) os << " " << n;
      }
      os << ")";
      throw Error(os.str());
    }
    if (!std::isfinite(value)) {
      std::ostringstream os;
      os << "parameter '" << name << "' bound to non-finite value " << value;
      throw Error(os.str());
    }
  }
  std::vector<double> values;
  values.reserve(names.size());
  for (const std::string& n : names) {
    const auto it = binding.find(n);
    if (it == binding.end()) {
      std::ostringstream os;
      os << "unbound parameter '" << n
         << "': every circuit parameter needs a value (got "
         << binding.size() << " of " << names.size() << " bindings)";
      throw Error(os.str());
    }
    values.push_back(it->second);
  }
  return values;
}

}  // namespace hisim
