#include "opt/pass_manager.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/check.hpp"
#include "common/trace.hpp"

namespace hisim {
namespace passes {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr double kTwoPi = 6.283185307179586476925286766559;
constexpr double kAngleEps = 1e-12;

bool same_qubit_set(const Gate& a, const Gate& b) {
  if (a.qubits.size() != b.qubits.size()) return false;
  for (Qubit q : a.qubits)
    if (std::find(b.qubits.begin(), b.qubits.end(), q) == b.qubits.end())
      return false;
  return true;
}

/// Positions within g.qubits that act as controls — unlike
/// Gate::num_controls() this knows CSWAP's first qubit is a control too,
/// which matters here: a diagonal gate commutes with any gate that only
/// *controls* on its qubit.
bool is_control_position(const Gate& g, Qubit q) {
  switch (g.kind) {
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
    case GateKind::CP:
    case GateKind::CU3:
    case GateKind::CSWAP:
      return g.qubits[0] == q;
    case GateKind::CCX:
      return g.qubits[0] == q || g.qubits[1] == q;
    case GateKind::MCX:
      return std::find(g.qubits.begin(), g.qubits.end() - 1, q) !=
             g.qubits.end() - 1;
    default:
      return false;
  }
}

/// Inverse-pair rule for cancel_inverses: `a` immediately precedes `b` on
/// their full joint support (the caller established adjacency and equal
/// qubit sets), and a·b == identity exactly.
bool inverse_pair(const Gate& a, const Gate& b) {
  if (a.kind != b.kind) {
    const auto dagger = [](GateKind x, GateKind y) {
      return (x == GateKind::S && y == GateKind::Sdg) ||
             (x == GateKind::Sdg && y == GateKind::S) ||
             (x == GateKind::T && y == GateKind::Tdg) ||
             (x == GateKind::Tdg && y == GateKind::T);
    };
    return dagger(a.kind, b.kind) && a.qubits == b.qubits;
  }
  switch (a.kind) {
    // Self-inverse kinds where control/target roles matter: the qubit
    // vectors must match exactly (cx(0,1)·cx(1,0) is not the identity).
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CH:
      return a.qubits == b.qubits;
    // Fully symmetric self-inverse kinds: any qubit order cancels.
    case GateKind::CZ:
    case GateKind::SWAP:
      return true;  // same set already established by the caller
    // CCX: the two controls are interchangeable, the target is not.
    case GateKind::CCX:
      return a.qubits[2] == b.qubits[2];
    // CSWAP: the control is fixed, the two swapped qubits commute.
    case GateKind::CSWAP:
      return a.qubits[0] == b.qubits[0];
    // MCX: the controls are a set, the target is fixed.
    case GateKind::MCX:
      return a.qubits.back() == b.qubits.back();
    default:
      return false;
  }
}

/// Same-axis merge rule for merge_rotations: both concrete, same kind,
/// compatible qubit roles (caller established adjacency and equal sets).
bool mergeable_rotation(const Gate& a, const Gate& b) {
  if (a.kind != b.kind || a.is_parametric() || b.is_parametric())
    return false;
  switch (a.kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
      return true;  // single qubit, set equality is vector equality
    // Control/target roles matter: CRZ(c,t) ≠ CRZ(t,c) (they differ by
    // which basis state picks up which phase), likewise CRX/CRY.
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
      return a.qubits == b.qubits;
    // Symmetric in their qubit pair: any order merges.
    case GateKind::CP:
    case GateKind::RZZ:
    case GateKind::RXX:
      return true;
    default:
      return false;
  }
}

/// Shared sweep for cancel_inverses and merge_rotations. Walks the gate
/// list once keeping, per qubit, a stack of surviving gate indices. A gate
/// may combine with the gate that is on top of the stack of *all* its
/// qubits (then provably adjacent on the full joint support — nothing
/// after it touched any shared qubit). `try_combine` returns 0 to keep
/// both, 1 to cancel both, 2 when it merged `g` into the earlier gate in
/// place. Cancelled gates are popped, exposing what they covered, so
/// rewrites cascade within one sweep.
template <typename TryCombine>
Circuit adjacent_rewrite(const Circuit& c, TryCombine&& try_combine) {
  std::vector<Gate> out;
  std::vector<char> alive;
  out.reserve(c.num_gates());
  alive.reserve(c.num_gates());
  std::vector<std::vector<std::size_t>> tops(c.num_qubits());

  const auto push = [&](const Gate& g) {
    out.push_back(g);
    alive.push_back(1);
    for (Qubit q : g.qubits) tops[q].push_back(out.size() - 1);
  };

  for (const Gate& g : c.gates()) {
    if (is_barrier(g)) {
      push(g);  // barriers still occupy their qubits' stacks
      continue;
    }
    std::size_t cand = kNone;
    for (Qubit q : g.qubits) {
      const std::size_t top = tops[q].empty() ? kNone : tops[q].back();
      if (cand == kNone) cand = top;
      if (top == kNone || top != cand) {
        cand = kNone;
        break;
      }
    }
    // `cand` is on top of every stack of g's qubits; with equal support
    // size that makes the qubit sets equal and the pair adjacent.
    int combined = 0;
    if (cand != kNone && !is_barrier(out[cand]) &&
        out[cand].qubits.size() == g.qubits.size() &&
        same_qubit_set(out[cand], g))
      combined = try_combine(out[cand], g);
    if (combined == 1) {
      alive[cand] = 0;
      for (Qubit q : out[cand].qubits) tops[q].pop_back();
    } else if (combined != 2) {
      push(g);
    }
  }

  Circuit res(c.num_qubits(), c.name());
  for (const std::string& p : c.param_names()) res.param(p);
  for (std::size_t i = 0; i < out.size(); ++i)
    if (alive[i]) res.add(std::move(out[i]));
  return res;
}

/// θ is (numerically) a multiple of `period`.
bool near_multiple(double theta, double period) {
  return std::abs(std::remainder(theta, period)) < kAngleEps;
}

bool identity_angle_gate(const Gate& g) {
  if (is_barrier(g)) return false;
  switch (g.kind) {
    // Identity up to a global phase at θ ≡ 0 (mod 2π): RX(2π) = -I.
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::RZZ:
    case GateKind::RXX:
    // Exact identity at θ ≡ 0 (mod 2π): diag(1, e^{iθ}).
    case GateKind::P:
    case GateKind::CP:
      return near_multiple(g.params[0].value(), kTwoPi);
    // A controlled rotation at 2π is *not* the identity — the -I phase of
    // the target rotation lands as a Z-like phase on the control — so the
    // drop is only sound at multiples of 4π.
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
      return near_multiple(g.params[0].value(), 2.0 * kTwoPi);
    default:
      return false;
  }
}

/// A gate commute_diagonals is allowed to move: concrete single-qubit
/// diagonal, excluding barriers and plain `id` idle markers (moving an
/// identity exposes nothing).
bool movable_diagonal(const Gate& g) {
  if (g.arity() != 1 || is_barrier(g) || g.kind == GateKind::I) return false;
  return g.is_diagonal();
}

}  // namespace

bool is_barrier(const Gate& g) {
  return g.is_parametric() || g.kind == GateKind::NoiseSlot;
}

Circuit cancel_inverses(const Circuit& c) {
  return adjacent_rewrite(c, [](Gate& prev, const Gate& g) {
    return inverse_pair(prev, g) ? 1 : 0;
  });
}

Circuit merge_rotations(const Circuit& c) {
  return adjacent_rewrite(c, [](Gate& prev, const Gate& g) {
    if (!mergeable_rotation(prev, g)) return 0;
    prev.params[0] = prev.params[0].value() + g.params[0].value();
    return 2;
  });
}

Circuit drop_identities(const Circuit& c) {
  Circuit res(c.num_qubits(), c.name());
  for (const std::string& p : c.param_names()) res.param(p);
  for (const Gate& g : c.gates())
    if (!identity_angle_gate(g)) res.add(g);
  return res;
}

Circuit commute_diagonals(const Circuit& c) {
  std::vector<Gate> gs(c.gates());
  for (std::size_t i = 1; i < gs.size(); ++i) {
    if (!movable_diagonal(gs[i])) continue;
    const Qubit q = gs[i].qubits[0];
    std::size_t pos = i;
    while (pos > 0) {
      const Gate& prev = gs[pos - 1];
      // Barriers are full fences: nothing moves past them, shared qubits
      // or not, so noisy and symbolic circuits keep their gate order.
      if (is_barrier(prev)) break;
      const bool touches = std::find(prev.qubits.begin(), prev.qubits.end(),
                                     q) != prev.qubits.end();
      if (touches) {
        // Hop only past multi-qubit gates that commute with a diagonal on
        // q: diagonal gates, and gates that merely control on q. Stopping
        // at single-qubit gates keeps the pass a terminating bubble sort —
        // two diagonals on one qubit never swap back and forth.
        if (prev.arity() < 2 ||
            !(prev.is_diagonal() || is_control_position(prev, q)))
          break;
      }
      // Swap with the predecessor (disjoint gates commute trivially).
      std::swap(gs[pos - 1], gs[pos]);
      --pos;
    }
  }
  Circuit res(c.num_qubits(), c.name());
  for (const std::string& p : c.param_names()) res.param(p);
  for (Gate& g : gs) res.add(std::move(g));
  return res;
}

}  // namespace passes

Circuit PassManager::run(const Circuit& c, OptReport* report) const {
  OptReport rep;
  rep.gates_before = c.num_gates();
  rep.deltas.reserve(pipeline_.size());
  for (const Pass& p : pipeline_) rep.deltas.push_back({p.name, 0});

  Circuit cur = c;
  // The passes only remove gates or move them monotonically earlier, so
  // rounds converge fast; the cap is a safety net, not a tuning knob.
  constexpr unsigned kMaxRounds = 16;
  for (unsigned round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < pipeline_.size(); ++i) {
      // Pass names are std::strings owned by the pipeline; intern so the
      // span name outlives the PassManager.
      trace::TraceSpan span(trace::intern(pipeline_[i].name), "opt");
      Circuit next = pipeline_[i].run(cur);
      span.arg("removed",
               static_cast<std::int64_t>(cur.num_gates() - next.num_gates()));
      HISIM_CHECK_MSG(next.num_gates() <= cur.num_gates(),
                      "pass '" << pipeline_[i].name << "' added gates");
      rep.deltas[i].removed += cur.num_gates() - next.num_gates();
      if (!(next == cur)) changed = true;
      cur = std::move(next);
    }
    ++rep.iterations;
    if (!changed) break;
  }

  rep.gates_after = cur.num_gates();
  if (report) *report = std::move(rep);
  return cur;
}

PassManager PassManager::default_pipeline() {
  PassManager pm;
  pm.add("commute-diagonals", passes::commute_diagonals);
  pm.add("cancel-inverses", passes::cancel_inverses);
  pm.add("merge-rotations", passes::merge_rotations);
  pm.add("drop-identities", passes::drop_identities);
  return pm;
}

Circuit optimize(const Circuit& c, unsigned opt_level, OptReport* report) {
  HISIM_CHECK_MSG(opt_level <= 1,
                  "opt_level must be 0 (off) or 1 (default pipeline), got "
                      << opt_level);
  if (opt_level == 0) {
    if (report) {
      *report = OptReport{};
      report->gates_before = report->gates_after = c.num_gates();
    }
    return c;
  }
  Circuit out = PassManager::default_pipeline().run(c, report);
  if (report) report->opt_level = opt_level;
  return out;
}

}  // namespace hisim
