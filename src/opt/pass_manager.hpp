#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

/// Compile-time circuit optimization: an ordered pipeline of
/// canonicalization passes run by Engine::compile *before* partitioning
/// (Options::opt_level), so every removed gate is also removed from the
/// partitioner's input, the exchange schedule, and every execute.
///
/// Passes rewrite only what they can prove: a gate is touched only when it
/// is adjacent to its partner on *every* shared qubit (gates on disjoint
/// qubits in between commute trivially and do not block). Two gate classes
/// are hard barriers — never removed, merged, or moved, and breaking
/// adjacency on their qubits — mirroring the rule circuit/fusion.cpp
/// already follows:
///   - unbound symbolic gates (Gate::is_parametric()): their angles are
///     unknown at compile time, and rewriting around a value that arrives
///     at execute would change plan structure per binding;
///   - NoiseSlot gates: reserved insertion points trajectories substitute
///     sampled operators into — the slot must survive verbatim.
/// Consequently noisy and parameterized plans keep their compiled
/// structure bit-identical whether optimization is on or off.
namespace hisim {

/// Gate-count change attributed to one pass, accumulated over every
/// fixpoint round of a PassManager::run.
struct PassDelta {
  std::string pass;
  std::size_t removed = 0;
  bool operator==(const PassDelta&) const = default;
};

/// Accounting of one optimization run, recorded in the ExecutionPlan and
/// surfaced through Result::to_json and the CLI/bench --json output.
struct OptReport {
  unsigned opt_level = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  /// Fixpoint rounds actually executed (each round applies every pass).
  unsigned iterations = 0;
  /// One entry per pipeline pass, pipeline order.
  std::vector<PassDelta> deltas;

  std::size_t removed() const { return gates_before - gates_after; }
};

namespace passes {

/// True when the optimizer must leave `g` exactly where it is: unbound
/// symbolic gates and reserved noise slots (see the header comment).
bool is_barrier(const Gate& g);

/// Cancels adjacent inverse pairs: self-inverse gates repeated on the same
/// qubits (H, X, Y, Z, CX, CY, CZ, CH, SWAP, CCX, CSWAP, MCX) and the
/// dagger pairs S·S†, T·T†. Cancellation cascades: removing an inner pair
/// exposes the gates around it to each other within the same sweep.
Circuit cancel_inverses(const Circuit& c);

/// Merges adjacent same-axis rotations by angle summation: RX/RY/RZ/P on
/// one qubit, CRX/CRY/CRZ/CP with identical control/target roles, and the
/// symmetric two-qubit RZZ/RXX. The merged gate keeps the earlier gate's
/// position; a merged angle that lands on an identity multiple is removed
/// by drop_identities in the next round.
Circuit merge_rotations(const Circuit& c);

/// Drops rotations whose angle makes them the identity: RX/RY/RZ/RZZ/RXX
/// and P/CP at multiples of 2π (the former identity only up to a global
/// phase, e.g. RX(2π) = -I), and CRX/CRY/CRZ at multiples of 4π — at 2π a
/// controlled rotation is *not* the identity (CRZ(2π) applies Z to the
/// control up to global phase), a classic rewrite bug this pass refuses.
/// Plain `id` gates are kept: they are deliberate idle markers the noise
/// model attaches channels to (see circuits::noise_calibration).
Circuit drop_identities(const Circuit& c);

/// Moves single-qubit diagonal gates (Z, S, S†, T, T†, concrete RZ/P)
/// earlier past multi-qubit gates they commute with — gates that are
/// diagonal, or that merely *control* on the diagonal gate's qubit (CX
/// controls, CCX/MCX controls, the CSWAP control) — exposing cancellations
/// and merges such as CX·RZ(control)·CX → RZ(control)·CX·CX. Diagonal
/// gates never hop past single-qubit gates, so repeated application
/// terminates instead of ping-ponging.
Circuit commute_diagonals(const Circuit& c);

}  // namespace passes

/// An ordered pipeline of circuit-rewriting passes, applied round-robin to
/// a fixpoint (bounded), with per-pass gate-count accounting.
class PassManager {
 public:
  struct Pass {
    std::string name;
    std::function<Circuit(const Circuit&)> run;
  };

  void add(std::string name, std::function<Circuit(const Circuit&)> run) {
    pipeline_.push_back({std::move(name), std::move(run)});
  }
  const std::vector<Pass>& pipeline() const { return pipeline_; }

  /// Applies the pipeline in order, repeating the whole round until a full
  /// round changes nothing (capped at a fixed round budget — the passes
  /// only remove or reorder, so in practice two or three rounds suffice).
  /// Qubit count, name, and the symbolic-parameter registry are preserved.
  Circuit run(const Circuit& c, OptReport* report = nullptr) const;

  /// The opt_level 1 pipeline: commute-diagonals, cancel-inverses,
  /// merge-rotations, drop-identities.
  static PassManager default_pipeline();

 private:
  std::vector<Pass> pipeline_;
};

/// The Engine::compile entry point: level 0 returns `c` untouched, level 1
/// runs the default pipeline. Any other level throws hisim::Error (the
/// reject-bad-input policy — a typo'd level must not silently pick a
/// pipeline). `report`, when given, is always filled, so level 0 reports
/// zero removals rather than stale data.
Circuit optimize(const Circuit& c, unsigned opt_level,
                 OptReport* report = nullptr);

}  // namespace hisim
