#include "partition/contract.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hisim::partition {
namespace {

bool is_subset(const std::vector<Qubit>& small, const std::vector<Qubit>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

std::vector<Qubit> sorted_union(const std::vector<Qubit>& a,
                                const std::vector<Qubit>& b) {
  std::vector<Qubit> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void dedup(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

ContractedGraph build_contracted(const dag::CircuitDag& dag, bool contract) {
  const std::size_t n = dag.num_gates();
  ContractedGraph g;
  g.members.resize(n);
  g.qubits.resize(n);
  g.succs.resize(n);
  g.preds.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.members[i] = {i};
    const Gate& gate = dag.circuit().gate(i);
    g.qubits[i].assign(gate.qubits.begin(), gate.qubits.end());
    std::sort(g.qubits[i].begin(), g.qubits[i].end());
    for (const dag::Edge& e : dag.succs(dag.gate_node(i)))
      if (dag.is_gate(e.to))
        g.succs[i].push_back(static_cast<int>(dag.gate_index(e.to)));
    dedup(g.succs[i]);
  }
  for (std::size_t i = 0; i < n; ++i)
    for (int s : g.succs[i]) g.preds[s].push_back(static_cast<int>(i));
  for (auto& v : g.preds) dedup(v);

  std::vector<bool> dead(n, false);

  // Merge `loser` into `keeper`: keeper absorbs members, qubits, and all
  // of loser's edges; self-edges are dropped.
  auto merge = [&](int keeper, int loser) {
    g.members[keeper].insert(g.members[keeper].end(),
                             g.members[loser].begin(), g.members[loser].end());
    std::sort(g.members[keeper].begin(), g.members[keeper].end());
    g.qubits[keeper] = sorted_union(g.qubits[keeper], g.qubits[loser]);
    for (int s : g.succs[loser]) {
      if (s == keeper) continue;
      g.succs[keeper].push_back(s);
      for (int& p : g.preds[s])
        if (p == loser) p = keeper;
      dedup(g.preds[s]);
    }
    for (int p : g.preds[loser]) {
      if (p == keeper) continue;
      g.preds[keeper].push_back(p);
      for (int& s : g.succs[p])
        if (s == loser) s = keeper;
      dedup(g.succs[p]);
    }
    // Remove the internal edge keeper<->loser.
    std::erase(g.succs[keeper], loser);
    std::erase(g.preds[keeper], loser);
    dedup(g.succs[keeper]);
    dedup(g.preds[keeper]);
    g.succs[loser].clear();
    g.preds[loser].clear();
    dead[loser] = true;
  };

  if (contract) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t v = 0; v < n; ++v) {
        if (dead[v]) continue;
        // Rule 1: sole predecessor absorbs a qubit-subset successor.
        if (g.preds[v].size() == 1) {
          const int u = g.preds[v][0];
          if (!dead[u] && is_subset(g.qubits[v], g.qubits[u])) {
            merge(u, static_cast<int>(v));
            changed = true;
            continue;
          }
        }
        // Rule 2: sole successor absorbs a qubit-subset predecessor.
        if (g.succs[v].size() == 1) {
          const int w = g.succs[v][0];
          if (!dead[w] && is_subset(g.qubits[v], g.qubits[w])) {
            merge(w, static_cast<int>(v));
            changed = true;
          }
        }
      }
    }
  }

  // Compact.
  std::vector<int> remap(n, -1);
  ContractedGraph out;
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    remap[i] = static_cast<int>(out.size());
    out.members.push_back(std::move(g.members[i]));
    out.qubits.push_back(std::move(g.qubits[i]));
  }
  out.succs.resize(out.size());
  out.preds.resize(out.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    const int ni = remap[i];
    for (int s : g.succs[i]) {
      HISIM_CHECK(!dead[s]);
      out.succs[ni].push_back(remap[s]);
    }
    for (int p : g.preds[i]) {
      HISIM_CHECK(!dead[p]);
      out.preds[ni].push_back(remap[p]);
    }
    dedup(out.succs[ni]);
    dedup(out.preds[ni]);
  }
  return out;
}

}  // namespace hisim::partition
