#pragma once

#include "partition/partition.hpp"

namespace hisim::partition {

/// Two-level partitioning (Sec. IV "Multi-level partitioning"): the first
/// level bounds each part by the node-local state-vector size (Lm = local
/// qubit count in the distributed setting), the second level re-partitions
/// each first-level part with a smaller (LLC-sized) limit for cache
/// locality.
struct TwoLevelPartitioning {
  Partitioning level1;
  /// level2[i] partitions the sub-circuit formed by level1.parts[i].gates;
  /// its gate indices are *local* (position j refers to
  /// level1.parts[i].gates[j]).
  std::vector<Partitioning> level2;

  std::size_t total_inner_parts() const;
};

/// Runs the first-level partitioner per `opt`, then partitions each part's
/// induced sub-circuit with `level2_limit` using the same strategy.
TwoLevelPartitioning partition_two_level(const dag::CircuitDag& dag,
                                         const PartitionOptions& opt,
                                         unsigned level2_limit);

/// Builds the sub-circuit induced by one part (gates in execution order,
/// original qubit labels, original qubit count).
Circuit part_subcircuit(const Circuit& c, const Part& part);

}  // namespace hisim::partition
