#pragma once

#include "partition/partition.hpp"

namespace hisim::partition {

/// Result of the exact minimum-part-count search.
struct ExactResult {
  /// True when the search space was exhausted within the budget, so
  /// `partitioning` is a provably optimal acyclic partitioning.
  bool proven_optimal = false;
  Partitioning partitioning;
  std::size_t states_explored = 0;
};

/// Exact solver for the paper's modified acyclic-partitioning problem
/// (minimize part count subject to working set <= limit), replacing the
/// authors' ILP formulation. Works because every acyclic partition is
/// segment-convex in some topological order, so branch-and-bound over
/// (executed-node set, open-part qubit set) states with dominance pruning
/// explores all candidate optima.
///
/// Requires num_qubits <= 64 and (after lossless chain contraction) at
/// most 64 DAG nodes; throws otherwise. `state_budget` caps the search —
/// when exhausted the best partitioning found so far is returned with
/// proven_optimal == false.
ExactResult partition_exact(const dag::CircuitDag& dag, unsigned limit,
                            std::size_t state_budget = 1u << 22);

}  // namespace hisim::partition
