#include "partition/partition.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace hisim::partition {

unsigned Partitioning::max_working_set() const {
  unsigned m = 0;
  for (const Part& p : parts) m = std::max(m, p.working_set());
  return m;
}

std::string Partitioning::summary() const {
  std::ostringstream os;
  os << parts.size() << " parts (limit " << limit << "):";
  for (const Part& p : parts)
    os << " [" << p.gates.size() << "g/" << p.qubits.size() << "q]";
  return os.str();
}

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Nat: return "Nat";
    case Strategy::Dfs: return "DFS";
    case Strategy::DagP: return "dagP";
  }
  return "?";
}

namespace {
// Deliberately an atomic, not a Mutex-guarded counter: make_partition is
// called concurrently from sweep/trajectory compiles, the counter is the
// only shared state, and relaxed ordering suffices (tests only compare
// before/after snapshots around quiescent points). Thread-safety
// analysis has nothing to prove here — atomics are their own capability.
std::atomic<std::uint64_t> g_partition_invocations{0};
}  // namespace

std::uint64_t partition_invocations() {
  return g_partition_invocations.load(std::memory_order_relaxed);
}

Partitioning make_partition(const dag::CircuitDag& dag,
                            const PartitionOptions& opt) {
  g_partition_invocations.fetch_add(1, std::memory_order_relaxed);
  for (const Gate& g : dag.circuit().gates())
    HISIM_CHECK_MSG(g.arity() <= opt.limit,
                    "gate " << g.to_string() << " has arity " << g.arity()
                            << " > limit " << opt.limit);
  Timer t;
  trace::TraceSpan span("partition", "partition");
  span.arg("gates", static_cast<std::int64_t>(dag.num_gates()));
  Partitioning p;
  switch (opt.strategy) {
    case Strategy::Nat:
      p = partition_nat(dag, opt.limit);
      break;
    case Strategy::Dfs:
      p = partition_dfs(dag, opt.limit, opt.dfs_trials, opt.seed);
      break;
    case Strategy::DagP:
      p = partition_dagp(dag, opt);
      break;
  }
  p.partition_seconds = t.seconds();
  return p;
}

Partitioning segment_order(const dag::CircuitDag& dag,
                           std::span<const dag::NodeId> order,
                           unsigned limit) {
  HISIM_CHECK(dag.is_topological_gate_order(order));
  Partitioning out;
  out.limit = limit;
  out.part_of.assign(dag.num_gates(), -1);
  Part cur;
  std::set<Qubit> cur_qubits;
  auto flush = [&] {
    if (cur.gates.empty()) return;
    cur.qubits.assign(cur_qubits.begin(), cur_qubits.end());
    std::sort(cur.gates.begin(), cur.gates.end());
    out.parts.push_back(std::move(cur));
    cur = Part{};
    cur_qubits.clear();
  };
  for (const dag::NodeId v : order) {
    const Gate& g = dag.gate_of(v);
    std::set<Qubit> merged = cur_qubits;
    merged.insert(g.qubits.begin(), g.qubits.end());
    if (merged.size() > limit) {
      flush();
      merged.clear();
      merged.insert(g.qubits.begin(), g.qubits.end());
      HISIM_CHECK_MSG(merged.size() <= limit,
                      "gate arity exceeds limit " << limit);
    }
    cur_qubits = std::move(merged);
    cur.gates.push_back(dag.gate_index(v));
  }
  flush();
  for (std::size_t pi = 0; pi < out.parts.size(); ++pi)
    for (std::size_t gi : out.parts[pi].gates)
      out.part_of[gi] = static_cast<int>(pi);
  return out;
}

Partitioning partition_nat(const dag::CircuitDag& dag, unsigned limit) {
  const auto order = dag.natural_order();
  return segment_order(dag, order, limit);
}

Partitioning partition_dfs(const dag::CircuitDag& dag, unsigned limit,
                           unsigned trials, std::uint64_t seed) {
  HISIM_CHECK(trials >= 1);
  Rng rng(seed);
  Partitioning best;
  for (unsigned t = 0; t < trials; ++t) {
    const auto order = dag.random_dfs_order(rng);
    Partitioning cand = segment_order(dag, order, limit);
    if (best.parts.empty() || cand.num_parts() < best.num_parts())
      best = std::move(cand);
  }
  return best;
}

void validate(const dag::CircuitDag& dag, const Partitioning& p) {
  HISIM_CHECK_MSG(!p.parts.empty() || dag.num_gates() == 0,
                  "empty partitioning of nonempty circuit");
  // Disjoint cover.
  std::vector<int> seen(dag.num_gates(), -1);
  for (std::size_t pi = 0; pi < p.parts.size(); ++pi) {
    const Part& part = p.parts[pi];
    HISIM_CHECK_MSG(!part.gates.empty(), "part " << pi << " is empty");
    std::set<Qubit> qs;
    for (std::size_t gi : part.gates) {
      HISIM_CHECK_MSG(gi < dag.num_gates(), "bad gate index " << gi);
      HISIM_CHECK_MSG(seen[gi] == -1, "gate " << gi << " in two parts");
      seen[gi] = static_cast<int>(pi);
      const Gate& g = dag.circuit().gate(gi);
      qs.insert(g.qubits.begin(), g.qubits.end());
    }
    HISIM_CHECK_MSG(qs.size() <= p.limit,
                    "part " << pi << " working set " << qs.size()
                            << " exceeds limit " << p.limit);
    HISIM_CHECK_MSG(std::vector<Qubit>(qs.begin(), qs.end()) == part.qubits,
                    "part " << pi << " qubit list mismatch");
    HISIM_CHECK_MSG(std::is_sorted(part.gates.begin(), part.gates.end()),
                    "part " << pi << " gates not in execution order");
  }
  for (std::size_t gi = 0; gi < dag.num_gates(); ++gi)
    HISIM_CHECK_MSG(seen[gi] >= 0, "gate " << gi << " unassigned");
  HISIM_CHECK_MSG(std::equal(seen.begin(), seen.end(), p.part_of.begin()),
                  "part_of[] inconsistent with parts[]");

  // Acyclic + topologically ordered part list: every cross-part dependency
  // must point from a lower part id to a higher one.
  for (std::size_t gi = 0; gi < dag.num_gates(); ++gi) {
    const dag::NodeId v = dag.gate_node(gi);
    for (const dag::Edge& e : dag.succs(v)) {
      if (!dag.is_gate(e.to)) continue;
      const std::size_t gj = dag.gate_index(e.to);
      HISIM_CHECK_MSG(seen[gi] <= seen[gj],
                      "dependency gate " << gi << " -> " << gj
                                         << " violates part order");
    }
  }
  const dag::PartGraph pg =
      dag::build_part_graph(dag, p.part_of, static_cast<int>(p.num_parts()));
  HISIM_CHECK_MSG(pg.is_acyclic(), "part graph has a cycle");
}

}  // namespace hisim::partition
