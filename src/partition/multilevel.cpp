#include "partition/multilevel.hpp"

#include "common/check.hpp"

namespace hisim::partition {

std::size_t TwoLevelPartitioning::total_inner_parts() const {
  std::size_t n = 0;
  for (const auto& p : level2) n += p.num_parts();
  return n;
}

Circuit part_subcircuit(const Circuit& c, const Part& part) {
  Circuit sub(c.num_qubits(), c.name() + "_part");
  // Keep the parameter registry: level-2 partitioning runs at compile
  // time, when gates may still carry symbolic expressions.
  for (const std::string& p : c.param_names()) sub.param(p);
  for (std::size_t gi : part.gates) sub.add(c.gate(gi));
  return sub;
}

TwoLevelPartitioning partition_two_level(const dag::CircuitDag& dag,
                                         const PartitionOptions& opt,
                                         unsigned level2_limit) {
  HISIM_CHECK_MSG(level2_limit <= opt.limit,
                  "second-level limit must not exceed the first-level limit");
  TwoLevelPartitioning out;
  out.level1 = make_partition(dag, opt);
  out.level2.reserve(out.level1.num_parts());
  for (const Part& part : out.level1.parts) {
    const Circuit sub = part_subcircuit(dag.circuit(), part);
    const dag::CircuitDag sub_dag(sub);
    PartitionOptions o2 = opt;
    o2.limit = level2_limit;
    out.level2.push_back(make_partition(sub_dag, o2));
  }
  return out;
}

}  // namespace hisim::partition
