#include "partition/exact.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <unordered_map>

#include "common/check.hpp"
#include "partition/contract.hpp"

namespace hisim::partition {
namespace {

using Mask = std::uint64_t;

struct Node {
  std::vector<std::size_t> gates;  // original gate indices
  Mask qubits = 0;
  Mask preds = 0;  // node-index mask
};

/// Bitmask view of the shared lossless contraction.
std::vector<Node> build_nodes(const dag::CircuitDag& dag) {
  const ContractedGraph g = build_contracted(dag, /*contract=*/true);
  std::vector<Node> nodes(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    nodes[i].gates = g.members[i];
    for (Qubit q : g.qubits[i]) nodes[i].qubits |= Mask{1} << q;
    for (int p : g.preds[i]) nodes[i].preds |= Mask{1} << p;
  }
  return nodes;
}

struct Searcher {
  const std::vector<Node>& nodes;
  unsigned limit;
  std::size_t budget;
  std::size_t explored = 0;
  bool truncated = false;

  std::size_t best_parts;
  std::vector<int> best_assign;   // per node
  std::vector<int> cur_assign;

  // Dominance memo: mask -> list of (parts_including_open, open_qubits).
  std::unordered_map<Mask, std::vector<std::pair<unsigned, Mask>>> memo;

  explicit Searcher(const std::vector<Node>& ns, unsigned lim,
                    std::size_t bud, std::size_t upper)
      : nodes(ns), limit(lim), budget(bud), best_parts(upper) {
    cur_assign.assign(nodes.size(), -1);
  }

  static unsigned popcnt(Mask m) { return static_cast<unsigned>(std::popcount(m)); }

  bool dominated(Mask done, unsigned parts, Mask open) {
    auto& entries = memo[done];
    for (const auto& [p, q] : entries)
      if (p <= parts && (q & ~open) == 0) return true;
    // Record; drop entries this one dominates.
    std::erase_if(entries, [&](const auto& e) {
      return parts <= e.first && (open & ~e.second) == 0;
    });
    entries.emplace_back(parts, open);
    return false;
  }

  /// parts = parts started so far (open part counted); open = qubits of the
  /// open part (0 if none yet).
  void dfs(Mask done, unsigned parts, Mask open) {
    if (++explored > budget) {
      truncated = true;
      return;
    }
    const Mask all = (nodes.size() == 64)
                         ? ~Mask{0}
                         : ((Mask{1} << nodes.size()) - 1);
    if (done == all) {
      if (parts < best_parts) {
        best_parts = parts;
        best_assign = cur_assign;
      }
      return;
    }
    if (parts >= best_parts) return;  // cannot improve (>= because more to come)
    if (dominated(done, parts, open)) return;

    for (std::size_t v = 0; v < nodes.size(); ++v) {
      const Mask vb = Mask{1} << v;
      if ((done & vb) || (nodes[v].preds & ~done)) continue;
      if (truncated) return;
      // Option 1: extend the open part.
      const Mask merged = open | nodes[v].qubits;
      if (popcnt(merged) <= limit) {
        cur_assign[v] = static_cast<int>(parts == 0 ? 0 : parts - 1);
        dfs(done | vb, parts == 0 ? 1 : parts, parts == 0 ? nodes[v].qubits
                                                          : merged);
        cur_assign[v] = -1;
      }
      // Option 2: close and start a new part with v.
      if (open != 0 && parts + 1 < best_parts &&
          popcnt(nodes[v].qubits) <= limit) {
        cur_assign[v] = static_cast<int>(parts);
        dfs(done | vb, parts + 1, nodes[v].qubits);
        cur_assign[v] = -1;
      }
    }
  }
};

}  // namespace

ExactResult partition_exact(const dag::CircuitDag& dag, unsigned limit,
                            std::size_t state_budget) {
  HISIM_CHECK_MSG(dag.num_qubits() <= 64, "exact solver supports <= 64 qubits");
  for (const Gate& g : dag.circuit().gates())
    HISIM_CHECK_MSG(g.arity() <= limit, "gate arity exceeds limit");

  ExactResult res;
  if (dag.num_gates() == 0) {
    res.proven_optimal = true;
    res.partitioning.limit = limit;
    return res;
  }

  const std::vector<Node> nodes = build_nodes(dag);
  HISIM_CHECK_MSG(nodes.size() <= 64,
                  "exact solver supports <= 64 contracted nodes (got "
                      << nodes.size() << ")");

  // Upper bound from the dagP heuristic.
  PartitionOptions opt;
  opt.limit = limit;
  Partitioning heur = partition_dagp(dag, opt);

  Searcher s(nodes, limit, state_budget, heur.num_parts() + 1);
  s.dfs(0, 0, 0);
  res.states_explored = s.explored;
  res.proven_optimal = !s.truncated;

  if (s.best_assign.empty()) {
    // Heuristic already optimal w.r.t. searched space (or budget hit before
    // any completion) — fall back to it.
    res.partitioning = std::move(heur);
    res.proven_optimal =
        res.proven_optimal && res.partitioning.num_parts() <= s.best_parts;
    return res;
  }

  // Materialize the best assignment.
  Partitioning p;
  p.limit = limit;
  p.part_of.assign(dag.num_gates(), -1);
  const int k = 1 + *std::max_element(s.best_assign.begin(),
                                      s.best_assign.end());
  p.parts.resize(k);
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    const int pid = s.best_assign[v];
    auto& part = p.parts[pid];
    part.gates.insert(part.gates.end(), nodes[v].gates.begin(),
                      nodes[v].gates.end());
  }
  for (int pi = 0; pi < k; ++pi) {
    auto& part = p.parts[pi];
    std::sort(part.gates.begin(), part.gates.end());
    std::set<Qubit> qs;
    for (std::size_t gi : part.gates) {
      const Gate& g = dag.circuit().gate(gi);
      qs.insert(g.qubits.begin(), g.qubits.end());
    }
    part.qubits.assign(qs.begin(), qs.end());
    for (std::size_t gi : part.gates) p.part_of[gi] = pi;
  }
  res.partitioning = std::move(p);
  return res;
}

}  // namespace hisim::partition
