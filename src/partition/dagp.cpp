#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.hpp"
#include "common/trace.hpp"
#include "partition/contract.hpp"
#include "partition/partition.hpp"

// dagP: multilevel acyclic DAG partitioning adapted to the paper's modified
// objective — minimize the number of parts subject to a working-set limit —
// via (i) lossless chain-contraction coarsening, (ii) recursive bisection
// over candidate topological orders minimizing the *qubit cut* with an
// acyclicity-preserving FM refinement, and (iii) a final merge phase on the
// part graph (the phase the paper adds to the original dagP algorithm).

namespace hisim::partition {
namespace {

using WorkGraph = ContractedGraph;

/// Working set (distinct qubit count) of a node subset.
unsigned working_set(const WorkGraph& g, const std::vector<int>& nodes) {
  std::set<Qubit> qs;
  for (int v : nodes)
    qs.insert(g.qubits[v].begin(), g.qubits[v].end());
  return static_cast<unsigned>(qs.size());
}

std::size_t gate_weight(const WorkGraph& g, const std::vector<int>& nodes) {
  std::size_t w = 0;
  for (int v : nodes) w += g.members[v].size();
  return w;
}

/// Topological order of the subgraph induced by `nodes`, via Kahn with a
/// caller-supplied ready-pick policy.
template <typename Pick>
std::vector<int> kahn_order(const WorkGraph& g, const std::vector<int>& nodes,
                            Pick pick) {
  std::vector<int> in_sub(g.size(), 0);
  for (int v : nodes) in_sub[v] = 1;
  std::vector<int> indeg(g.size(), 0);
  for (int v : nodes)
    for (int s : g.succs[v])
      if (in_sub[s]) ++indeg[s];
  std::vector<int> ready;
  for (int v : nodes)
    if (indeg[v] == 0) ready.push_back(v);
  std::vector<int> order;
  order.reserve(nodes.size());
  while (!ready.empty()) {
    const std::size_t i = pick(ready);
    const int v = ready[i];
    ready[i] = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (int s : g.succs[v])
      if (in_sub[s] && --indeg[s] == 0) ready.push_back(s);
  }
  HISIM_CHECK_MSG(order.size() == nodes.size(), "induced subgraph has cycle");
  return order;
}


/// Reverse-postorder DFS topological order of the coarse graph with
/// randomized adjacency — chain-following orders that segment well.
std::vector<int> dfs_order(const WorkGraph& g, const std::vector<int>& nodes,
                           Rng& rng) {
  std::vector<int> in_sub(g.size(), 0);
  for (int v : nodes) in_sub[v] = 1;
  std::vector<int> indeg(g.size(), 0);
  for (int v : nodes)
    for (int sxx : g.succs[v])
      if (in_sub[sxx]) ++indeg[sxx];
  std::vector<int> roots;
  for (int v : nodes)
    if (indeg[v] == 0) roots.push_back(v);
  for (std::size_t i = roots.size(); i > 1; --i)
    std::swap(roots[i - 1], roots[rng.below(i)]);
  std::vector<std::uint8_t> state(g.size(), 0);
  std::vector<int> post;
  post.reserve(nodes.size());
  struct Frame {
    int v;
    std::vector<int> kids;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  for (int root : roots) {
    if (state[root]) continue;
    state[root] = 1;
    stack.push_back({root, {}, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next == 0) {
        for (int sxx : g.succs[f.v])
          if (in_sub[sxx]) f.kids.push_back(sxx);
        for (std::size_t i = f.kids.size(); i > 1; --i)
          std::swap(f.kids[i - 1], f.kids[rng.below(i)]);
      }
      bool descended = false;
      while (f.next < f.kids.size()) {
        const int w = f.kids[f.next++];
        if (state[w] == 0) {
          state[w] = 1;
          stack.push_back({w, {}, 0});
          descended = true;
          break;
        }
      }
      if (!descended && stack.back().next >= stack.back().kids.size()) {
        post.push_back(stack.back().v);
        stack.pop_back();
      }
    }
  }
  std::reverse(post.begin(), post.end());
  HISIM_CHECK(post.size() == nodes.size());
  return post;
}

/// Tracks the qubit cut (qubits used on both sides) of a bisection.
class CutTracker {
 public:
  CutTracker(const WorkGraph& g, const std::vector<int>& nodes,
             unsigned num_qubits)
      : g_(g), total_(num_qubits, 0), left_(num_qubits, 0) {
    for (int v : nodes)
      for (Qubit q : g.qubits[v]) ++total_[q];
  }

  /// Moves node v into the left side.
  void add_left(int v) {
    for (Qubit q : g_.qubits[v]) {
      update_cut_on_change(q, +1);
    }
  }
  /// Moves node v out of the left side.
  void remove_left(int v) {
    for (Qubit q : g_.qubits[v]) {
      update_cut_on_change(q, -1);
    }
  }

  /// Cut delta if v moved left->right (negative = improvement), without
  /// mutating state.
  int gain_remove_left(int v) const {
    int delta = 0;
    for (Qubit q : g_.qubits[v]) {
      const int l = left_[q], t = total_[q];
      const bool cut_before = l > 0 && l < t;
      const bool cut_after = (l - 1) > 0 && (l - 1) < t;
      delta += static_cast<int>(cut_after) - static_cast<int>(cut_before);
    }
    return delta;
  }
  int gain_add_left(int v) const {
    int delta = 0;
    for (Qubit q : g_.qubits[v]) {
      const int l = left_[q], t = total_[q];
      const bool cut_before = l > 0 && l < t;
      const bool cut_after = (l + 1) > 0 && (l + 1) < t;
      delta += static_cast<int>(cut_after) - static_cast<int>(cut_before);
    }
    return delta;
  }

  int cut() const { return cut_; }

 private:
  void update_cut_on_change(Qubit q, int d) {
    const int t = total_[q];
    const bool before = left_[q] > 0 && left_[q] < t;
    left_[q] += d;
    const bool after = left_[q] > 0 && left_[q] < t;
    cut_ += static_cast<int>(after) - static_cast<int>(before);
  }

  const WorkGraph& g_;
  std::vector<int> total_, left_;
  int cut_ = 0;
};

struct Bisection {
  std::vector<int> left, right;
  int cut = 0;
};

/// Splits `nodes` into (upstream, downstream) minimizing the qubit cut over
/// several candidate topological orders, then improves with FM-style
/// acyclicity-preserving moves.
Bisection bisect(const WorkGraph& g, const std::vector<int>& nodes,
                 unsigned num_qubits, const PartitionOptions& opt, Rng& rng) {
  const std::size_t n = nodes.size();
  HISIM_CHECK(n >= 2);
  const std::size_t total_w = gate_weight(g, nodes);
  // Paper's imbalance epsilon: each side's weight <= eps * (total/2).
  const double max_side =
      std::max(1.0, opt.imbalance * static_cast<double>(total_w) / 2.0);

  Bisection best;
  best.cut = INT32_MAX;

  for (unsigned cand = 0; cand < std::max(1u, opt.bisect_candidates); ++cand) {
    std::vector<int> order;
    if (cand == 0) {
      // Deterministic "natural-ish": pick ready node with smallest first
      // gate index.
      order = kahn_order(g, nodes, [&](const std::vector<int>& ready) {
        std::size_t bi = 0;
        for (std::size_t i = 1; i < ready.size(); ++i)
          if (g.members[ready[i]][0] < g.members[ready[bi]][0]) bi = i;
        return bi;
      });
    } else {
      order = kahn_order(g, nodes, [&](const std::vector<int>& ready) {
        return static_cast<std::size_t>(rng.below(ready.size()));
      });
    }
    // Sweep split positions; track cut incrementally.
    CutTracker tracker(g, nodes, num_qubits);
    std::size_t wl = 0;
    int local_best_cut = INT32_MAX;
    std::size_t local_best_split = 0;
    double local_best_bal = 1e300;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      tracker.add_left(order[i]);
      wl += g.members[order[i]].size();
      const std::size_t wr = total_w - wl;
      if (static_cast<double>(wl) > max_side ||
          static_cast<double>(wr) > max_side)
        continue;
      const double bal =
          std::abs(static_cast<double>(wl) - static_cast<double>(wr));
      if (tracker.cut() < local_best_cut ||
          (tracker.cut() == local_best_cut && bal < local_best_bal)) {
        local_best_cut = tracker.cut();
        local_best_split = i + 1;
        local_best_bal = bal;
      }
    }
    if (local_best_cut == INT32_MAX) {
      // No balanced split (very skewed weights) — fall back to the median.
      local_best_split = n / 2;
      local_best_cut = INT32_MAX - 1;
    }
    if (local_best_cut < best.cut) {
      best.left.assign(order.begin(),
                       order.begin() + static_cast<long>(local_best_split));
      best.right.assign(order.begin() + static_cast<long>(local_best_split),
                        order.end());
      best.cut = local_best_cut;
    }
  }

  // FM refinement: greedy positive-gain boundary moves that keep both the
  // topological invariant (all cross edges left->right) and the balance.
  std::vector<char> side(g.size(), 0);  // 1 = left, 2 = right
  for (int v : best.left) side[v] = 1;
  for (int v : best.right) side[v] = 2;
  CutTracker tracker(g, nodes, num_qubits);
  for (int v : best.left) tracker.add_left(v);
  std::size_t wl = gate_weight(g, best.left);

  auto movable_to_right = [&](int v) {
    if (side[v] != 1) return false;
    for (int s : g.succs[v])
      if (side[s] == 1) return false;
    return true;
  };
  auto movable_to_left = [&](int v) {
    if (side[v] != 2) return false;
    for (int p : g.preds[v])
      if (side[p] == 2) return false;
    return true;
  };

  // One process-wide counter: bisections run concurrently from sweep and
  // trajectory compiles, and the reference is stable for the process.
  static trace::Counter& refine_counter =
      trace::MetricsRegistry::global().counter("partition.refine_passes");
  for (unsigned pass = 0; pass < opt.refine_passes; ++pass) {
    refine_counter.add();
    bool improved = false;
    for (int v : nodes) {
      if (movable_to_right(v)) {
        const std::size_t new_wl = wl - g.members[v].size();
        if (new_wl == 0) continue;
        if (static_cast<double>(total_w - new_wl) > max_side) continue;
        if (tracker.gain_remove_left(v) < 0) {
          tracker.remove_left(v);
          side[v] = 2;
          wl = new_wl;
          improved = true;
        }
      } else if (movable_to_left(v)) {
        const std::size_t new_wl = wl + g.members[v].size();
        if (new_wl == total_w) continue;
        if (static_cast<double>(new_wl) > max_side) continue;
        if (tracker.gain_add_left(v) < 0) {
          tracker.add_left(v);
          side[v] = 1;
          wl = new_wl;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  Bisection out;
  for (int v : nodes) {
    if (side[v] == 1) out.left.push_back(v);
    else out.right.push_back(v);
  }
  out.cut = tracker.cut();
  HISIM_CHECK(!out.left.empty() && !out.right.empty());
  return out;
}

void recurse(const WorkGraph& g, std::vector<int> nodes, unsigned num_qubits,
             const PartitionOptions& opt, Rng& rng,
             std::vector<std::vector<int>>& parts_out) {
  if (working_set(g, nodes) <= opt.limit) {
    parts_out.push_back(std::move(nodes));
    return;
  }
  HISIM_CHECK_MSG(nodes.size() >= 2,
                  "single node exceeds working-set limit");
  Bisection b = bisect(g, nodes, num_qubits, opt, rng);
  recurse(g, std::move(b.left), num_qubits, opt, rng, parts_out);
  recurse(g, std::move(b.right), num_qubits, opt, rng, parts_out);
}


/// Greedy cutoff segmentation of a node order on the coarse graph
/// (optimal for that fixed order). Used as additional initial-partitioning
/// candidates alongside recursive bisection: on dense circuits whose
/// working sets approach the limit, order-based segmentation can beat a
/// balanced bisection tree, and multilevel partitioners keep the best of
/// their construction heuristics.
std::vector<std::vector<int>> segment_nodes(const WorkGraph& g,
                                            const std::vector<int>& order,
                                            unsigned limit) {
  std::vector<std::vector<int>> parts;
  std::vector<int> cur;
  std::set<Qubit> cur_q;
  for (int v : order) {
    std::set<Qubit> merged = cur_q;
    merged.insert(g.qubits[v].begin(), g.qubits[v].end());
    if (merged.size() > limit && !cur.empty()) {
      parts.push_back(std::move(cur));
      cur.clear();
      merged.clear();
      merged.insert(g.qubits[v].begin(), g.qubits[v].end());
    }
    HISIM_CHECK(merged.size() <= limit);
    cur_q = std::move(merged);
    cur.push_back(v);
  }
  if (!cur.empty()) parts.push_back(std::move(cur));
  return parts;
}

/// Final merge phase (the paper's addition to dagP): greedily merge part
/// pairs whose union fits the limit and whose contraction keeps the part
/// graph acyclic — i.e. the two parts are either incomparable or connected
/// only by direct edges (no 2+ step path between them).
struct MergeParts {
  std::vector<std::vector<int>> nodes;  // workgraph node ids per part
};

void merge_phase(const WorkGraph& g, unsigned limit,
                 std::vector<std::vector<int>>& parts) {
  auto part_qubits = [&](const std::vector<int>& ns) {
    std::set<Qubit> qs;
    for (int v : ns) qs.insert(g.qubits[v].begin(), g.qubits[v].end());
    return qs;
  };
  bool merged = true;
  while (merged && parts.size() > 1) {
    merged = false;
    const int k = static_cast<int>(parts.size());
    // part id per node
    std::vector<int> pid(g.size(), -1);
    for (int p = 0; p < k; ++p)
      for (int v : parts[p]) pid[v] = p;
    // part adjacency + reachability
    std::vector<std::set<int>> padj(k);
    for (std::size_t v = 0; v < g.size(); ++v) {
      if (pid[v] < 0) continue;
      for (int s : g.succs[v])
        if (pid[s] >= 0 && pid[s] != pid[v]) padj[pid[v]].insert(pid[s]);
    }
    dag::PartGraph pg;
    pg.num_parts = k;
    pg.succs.resize(k);
    pg.preds.resize(k);
    for (int p = 0; p < k; ++p)
      for (int s : padj[p]) {
        pg.succs[p].push_back(s);
        pg.preds[s].push_back(p);
      }
    const auto reach = pg.reachability();

    // Candidate pairs: smallest merged working set first.
    int best_a = -1, best_b = -1;
    std::size_t best_ws = limit + 1;
    std::vector<std::set<Qubit>> pq(k);
    for (int p = 0; p < k; ++p) pq[p] = part_qubits(parts[p]);
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        std::set<Qubit> u = pq[a];
        u.insert(pq[b].begin(), pq[b].end());
        if (u.size() > limit) continue;
        // Contraction is acyclic iff there is no path a~>b (or b~>a) through
        // an intermediate part.
        bool bad = false;
        for (int c = 0; c < k && !bad; ++c) {
          if (c == a || c == b) continue;
          if ((reach[a][c] && reach[c][b]) || (reach[b][c] && reach[c][a]))
            bad = true;
        }
        if (bad) continue;
        if (u.size() < best_ws) {
          best_ws = u.size();
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a >= 0) {
      parts[best_a].insert(parts[best_a].end(), parts[best_b].begin(),
                           parts[best_b].end());
      parts.erase(parts.begin() + best_b);
      merged = true;
    }
  }
}


/// Part-elimination refinement: try to empty whole parts by redistributing
/// their nodes into other parts. With parts numbered topologically, a node
/// may move to any part between its predecessors' and successors' parts
/// whose working set stays within the limit — every edge keeps flowing
/// from a lower-or-equal part number, so validity is preserved. This
/// generalizes pairwise merging (which is the special case of moving all
/// nodes to one common neighbour).
void eliminate_parts(const WorkGraph& g, unsigned limit, unsigned num_qubits,
                     std::vector<std::vector<int>>& parts) {
  if (parts.size() <= 1) return;

  // Renumber topologically first.
  auto renumber = [&]() {
    const int k = static_cast<int>(parts.size());
    std::vector<int> pid(g.size(), -1);
    for (int p = 0; p < k; ++p)
      for (int v : parts[p]) pid[v] = p;
    dag::PartGraph pg;
    pg.num_parts = k;
    pg.succs.resize(k);
    pg.preds.resize(k);
    std::vector<std::set<int>> dd(k);
    for (std::size_t v = 0; v < g.size(); ++v)
      for (int sxx : g.succs[v])
        if (pid[v] != pid[sxx]) dd[pid[v]].insert(pid[sxx]);
    for (int p = 0; p < k; ++p)
      for (int sxx : dd[p]) {
        pg.succs[p].push_back(sxx);
        pg.preds[sxx].push_back(p);
      }
    const auto order = pg.topological_order();
    std::vector<std::vector<int>> sorted(parts.size());
    for (int i = 0; i < k; ++i) sorted[i] = std::move(parts[order[i]]);
    parts = std::move(sorted);
  };
  renumber();

  const int k0 = static_cast<int>(parts.size());
  std::vector<int> part_of(g.size(), -1);
  // qcount[p][q]: how many nodes of part p touch qubit q.
  std::vector<std::vector<int>> qcount(k0, std::vector<int>(num_qubits, 0));
  std::vector<unsigned> ws(k0, 0);
  for (int p = 0; p < k0; ++p) {
    for (int v : parts[p]) {
      part_of[v] = p;
      for (Qubit q : g.qubits[v])
        if (qcount[p][q]++ == 0) ++ws[p];
    }
  }
  auto add_node = [&](int p, int v) {
    part_of[v] = p;
    for (Qubit q : g.qubits[v])
      if (qcount[p][q]++ == 0) ++ws[p];
  };
  auto remove_node = [&](int p, int v) {
    for (Qubit q : g.qubits[v])
      if (--qcount[p][q] == 0) --ws[p];
    part_of[v] = -1;
  };
  auto ws_with = [&](int p, int v) {
    unsigned w = ws[p];
    for (Qubit q : g.qubits[v])
      if (qcount[p][q] == 0) ++w;
    return w;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // Try to empty the smallest parts first.
    std::vector<int> by_size;
    for (int p = 0; p < k0; ++p)
      if (!parts[p].empty()) by_size.push_back(p);
    if (by_size.size() <= 1) break;
    std::sort(by_size.begin(), by_size.end(), [&](int a, int b) {
      return parts[a].size() < parts[b].size();
    });
    for (int victim : by_size) {
      // Nodes in intra-part topological order (ascending first gate).
      std::vector<int> nodes = parts[victim];
      std::sort(nodes.begin(), nodes.end(), [&](int a, int b) {
        return g.members[a][0] < g.members[b][0];
      });
      std::vector<std::pair<int, int>> moves;  // (node, target)
      bool ok = true;
      for (int v : nodes) {
        int lo = 0, hi = k0 - 1;
        for (int u : g.preds[v]) lo = std::max(lo, part_of[u]);
        for (int w : g.succs[v]) hi = std::min(hi, part_of[w]);
        int best = -1;
        unsigned best_ws = limit + 1;
        for (int q = lo; q <= hi && q < k0; ++q) {
          if (q == victim || parts[q].empty()) continue;
          const unsigned w = ws_with(q, v);
          if (w <= limit && w < best_ws) {
            best_ws = w;
            best = q;
          }
        }
        if (best < 0) {
          ok = false;
          break;
        }
        remove_node(victim, v);
        add_node(best, v);
        moves.emplace_back(v, best);
      }
      if (ok) {
        for (const auto& [v, tgt] : moves) parts[tgt].push_back(v);
        parts[victim].clear();
        changed = true;
      } else {
        for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
          remove_node(it->second, it->first);
          add_node(victim, it->first);
        }
      }
    }
  }
  std::erase_if(parts, [](const std::vector<int>& p) { return p.empty(); });
}

}  // namespace

Partitioning partition_dagp(const dag::CircuitDag& dag,
                            const PartitionOptions& opt) {
  Partitioning out;
  out.limit = opt.limit;
  out.part_of.assign(dag.num_gates(), -1);
  if (dag.num_gates() == 0) return out;

  const WorkGraph g = build_contracted(dag, opt.coarsen);

  std::vector<int> all(g.size());
  std::iota(all.begin(), all.end(), 0);
  Rng rng(opt.seed);
  std::vector<std::vector<int>> node_parts;
  recurse(g, all, dag.num_qubits(), opt, rng, node_parts);
  if (opt.merge) {
    merge_phase(g, opt.limit, node_parts);
    eliminate_parts(g, opt.limit, dag.num_qubits(), node_parts);
  }

  // Initial-partitioning portfolio: greedy segmentations of candidate
  // topological orders of the coarse graph; keep whichever construction
  // yields fewer parts (the bisection tree wins on structured circuits,
  // segmentation on dense ones whose working sets approach the limit).
  {
    const unsigned candidates = 2 * std::max(2u, opt.bisect_candidates) + 1;
    for (unsigned cand = 0; cand < candidates; ++cand) {
      std::vector<int> order;
      if (cand == 0) {
        order = kahn_order(g, all, [&](const std::vector<int>& ready) {
          std::size_t bi = 0;
          for (std::size_t i = 1; i < ready.size(); ++i)
            if (g.members[ready[i]][0] < g.members[ready[bi]][0]) bi = i;
          return bi;
        });
      } else if (cand % 2 == 1) {
        order = dfs_order(g, all, rng);
      } else {
        order = kahn_order(g, all, [&](const std::vector<int>& ready) {
          return static_cast<std::size_t>(rng.below(ready.size()));
        });
      }
      auto seg = segment_nodes(g, order, opt.limit);
      if (opt.merge) {
        merge_phase(g, opt.limit, seg);
        eliminate_parts(g, opt.limit, dag.num_qubits(), seg);
      }
      if (seg.size() < node_parts.size()) node_parts = std::move(seg);
    }
  }

  // Renumber parts topologically (merge can disturb the recursion order).
  {
    const int k = static_cast<int>(node_parts.size());
    std::vector<int> pid(g.size(), -1);
    for (int p = 0; p < k; ++p)
      for (int v : node_parts[p]) pid[v] = p;
    dag::PartGraph pg;
    pg.num_parts = k;
    pg.succs.resize(k);
    pg.preds.resize(k);
    std::vector<std::set<int>> dedup(k);
    for (std::size_t v = 0; v < g.size(); ++v)
      for (int s : g.succs[v])
        if (pid[v] != pid[s]) dedup[pid[v]].insert(pid[s]);
    for (int p = 0; p < k; ++p)
      for (int s : dedup[p]) {
        pg.succs[p].push_back(s);
        pg.preds[s].push_back(p);
      }
    const std::vector<int> order = pg.topological_order();
    std::vector<std::vector<int>> sorted(node_parts.size());
    for (int i = 0; i < k; ++i) sorted[i] = std::move(node_parts[order[i]]);
    node_parts = std::move(sorted);
  }

  for (const auto& ns : node_parts) {
    Part part;
    std::set<Qubit> qs;
    for (int v : ns) {
      part.gates.insert(part.gates.end(), g.members[v].begin(),
                        g.members[v].end());
      qs.insert(g.qubits[v].begin(), g.qubits[v].end());
    }
    std::sort(part.gates.begin(), part.gates.end());
    part.qubits.assign(qs.begin(), qs.end());
    out.parts.push_back(std::move(part));
  }
  for (std::size_t p = 0; p < out.parts.size(); ++p)
    for (std::size_t gi : out.parts[p].gates)
      out.part_of[gi] = static_cast<int>(p);
  return out;
}

}  // namespace hisim::partition
