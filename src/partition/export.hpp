#pragma once

#include <string>
#include <vector>

#include "partition/partition.hpp"

namespace hisim::partition {

/// One exported part: the sub-circuit remapped onto a compact qubit
/// register (local slot j = part.qubits[j]), ready to hand to an external
/// simulator. This realizes the paper's Sec. III-D/VI claim that the
/// partitioning + redistribution layer is "a general interface for other
/// simulators": the GPU-hybrid experiment fed exactly these remapped part
/// files to HyQuas.
struct ExportedPart {
  /// Remapped sub-circuit on working_set() qubits.
  Circuit circuit;
  /// qubit_map[j] = original circuit qubit held by local slot j.
  std::vector<Qubit> qubit_map;
  /// OpenQASM 2.0 text of `circuit`, with a comment header recording the
  /// part id and the slot -> original-qubit mapping.
  std::string qasm;
};

/// Exports every part of `parts` against `c` (which must be the circuit
/// the partitioning was computed for).
std::vector<ExportedPart> export_parts(const Circuit& c,
                                       const Partitioning& parts);

/// Writes the exported parts as <prefix>_p<k>.qasm files plus a
/// <prefix>_manifest.txt listing (file, qubits, gates, slot map).
/// Returns the manifest path.
std::string write_part_files(const Circuit& c, const Partitioning& parts,
                             const std::string& prefix);

}  // namespace hisim::partition
