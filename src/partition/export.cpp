#include "partition/export.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "qasm/writer.hpp"

namespace hisim::partition {

std::vector<ExportedPart> export_parts(const Circuit& c,
                                       const Partitioning& parts) {
  std::vector<ExportedPart> out;
  out.reserve(parts.num_parts());
  for (std::size_t pi = 0; pi < parts.num_parts(); ++pi) {
    const Part& part = parts.parts[pi];
    ExportedPart ep;
    ep.qubit_map = part.qubits;
    // slot_of: original qubit -> local slot.
    std::vector<Qubit> slot_of(c.num_qubits(), 0);
    for (std::size_t j = 0; j < part.qubits.size(); ++j)
      slot_of[part.qubits[j]] = static_cast<Qubit>(j);
    ep.circuit = Circuit(static_cast<unsigned>(part.qubits.size()),
                         c.name() + "_p" + std::to_string(pi));
    for (const std::string& p : c.param_names()) ep.circuit.param(p);
    for (std::size_t gi : part.gates) {
      Gate g = c.gate(gi);
      for (Qubit& q : g.qubits) q = slot_of[q];
      ep.circuit.add(std::move(g));
    }
    std::ostringstream hdr;
    hdr << "// " << c.name() << " part " << pi << " of " << parts.num_parts()
        << " (limit " << parts.limit << ")\n";
    hdr << "// slot -> original qubit:";
    for (std::size_t j = 0; j < ep.qubit_map.size(); ++j)
      hdr << " q[" << j << "]=Q" << ep.qubit_map[j];
    hdr << "\n";
    ep.qasm = hdr.str() + qasm::write(ep.circuit);
    out.push_back(std::move(ep));
  }
  return out;
}

std::string write_part_files(const Circuit& c, const Partitioning& parts,
                             const std::string& prefix) {
  const auto exported = export_parts(c, parts);
  const std::string manifest_path = prefix + "_manifest.txt";
  std::ofstream manifest(manifest_path);
  HISIM_CHECK_MSG(manifest.good(), "cannot write " << manifest_path);
  manifest << "# circuit: " << c.name() << " (" << c.num_qubits()
           << " qubits, " << c.num_gates() << " gates), limit "
           << parts.limit << ", parts " << parts.num_parts() << "\n";
  for (std::size_t pi = 0; pi < exported.size(); ++pi) {
    const std::string file = prefix + "_p" + std::to_string(pi) + ".qasm";
    std::ofstream out(file);
    HISIM_CHECK_MSG(out.good(), "cannot write " << file);
    out << exported[pi].qasm;
    manifest << file << " qubits=" << exported[pi].circuit.num_qubits()
             << " gates=" << exported[pi].circuit.num_gates() << " map=";
    for (std::size_t j = 0; j < exported[pi].qubit_map.size(); ++j)
      manifest << (j ? "," : "") << exported[pi].qubit_map[j];
    manifest << "\n";
  }
  return manifest_path;
}

}  // namespace hisim::partition
