#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/circuit_dag.hpp"

namespace hisim::partition {

/// One part (sub-circuit) of an acyclic partitioning.
struct Part {
  /// Gate indices of the original circuit, in execution order (ascending
  /// gate index — a valid topological order within the part).
  std::vector<std::size_t> gates;
  /// Sorted distinct qubits the part's gates touch: the working set.
  std::vector<Qubit> qubits;

  unsigned working_set() const { return static_cast<unsigned>(qubits.size()); }
};

/// An acyclic partitioning of a circuit DAG: parts are listed in a
/// topological order of the part graph, so executing them in sequence with
/// the Gather-Execute-Scatter model preserves all dependencies.
struct Partitioning {
  unsigned limit = 0;                // the working-set limit Lm used
  std::vector<Part> parts;
  std::vector<int> part_of;          // part id per gate index
  double partition_seconds = 0.0;    // time spent partitioning

  std::size_t num_parts() const { return parts.size(); }
  /// Largest working set across parts.
  unsigned max_working_set() const;
  std::string summary() const;
};

/// The three strategies of Sec. IV-B.
enum class Strategy { Nat, Dfs, DagP };

std::string strategy_name(Strategy s);

struct PartitionOptions {
  unsigned limit = 10;          // Lm: max qubits per part
  Strategy strategy = Strategy::DagP;
  std::uint64_t seed = 0x5eed;
  // DFS: number of random topological orders tried.
  unsigned dfs_trials = 16;
  // dagP knobs.
  double imbalance = 1.5;       // bisection balance ratio (paper's epsilon)
  unsigned bisect_candidates = 6;  // candidate topological orders/bisection
  unsigned refine_passes = 4;      // FM refinement passes per bisection
  bool coarsen = true;             // chain-contraction coarsening
  bool merge = true;               // final part-merge phase
};

/// Dispatches on opt.strategy. Throws if any gate's arity exceeds the
/// limit (no valid partition exists then).
Partitioning make_partition(const dag::CircuitDag& dag,
                            const PartitionOptions& opt);

/// Process-wide count of make_partition() calls (atomic). Diagnostic hook:
/// lets tests assert that compile-once/execute-many paths really do not
/// re-partition per execution.
std::uint64_t partition_invocations();

/// Natural topological order cutoff (Sec. IV-B.1).
Partitioning partition_nat(const dag::CircuitDag& dag, unsigned limit);

/// Best-of-N random DFS topological order cutoff (Sec. IV-B.2).
Partitioning partition_dfs(const dag::CircuitDag& dag, unsigned limit,
                           unsigned trials, std::uint64_t seed);

/// Multilevel acyclic-partitioning-based heuristic (Sec. IV-B.3).
Partitioning partition_dagp(const dag::CircuitDag& dag,
                            const PartitionOptions& opt);

/// Greedily segments a topological gate order into minimum parts with
/// working set <= limit (optimal for that fixed order). Shared by
/// Nat/DFS and the exact solver's upper bound.
Partitioning segment_order(const dag::CircuitDag& dag,
                           std::span<const dag::NodeId> order, unsigned limit);

/// Validates the full contract: parts disjointly cover all gates, each
/// working set is within `limit`, the part graph is acyclic, the part list
/// is in part-graph topological order, and gates within parts are in a
/// valid execution order. Throws hisim::Error on violation.
void validate(const dag::CircuitDag& dag, const Partitioning& p);

}  // namespace hisim::partition
