#pragma once

#include <vector>

#include "dag/circuit_dag.hpp"

namespace hisim::partition {

/// Gate DAG with chains contracted into supernodes. Used as the coarse
/// graph by both the dagP heuristic and the exact solver.
struct ContractedGraph {
  std::vector<std::vector<std::size_t>> members;  // sorted gate indices
  std::vector<std::vector<Qubit>> qubits;         // sorted distinct
  std::vector<std::vector<int>> succs, preds;     // deduplicated, sorted

  std::size_t size() const { return members.size(); }
};

/// Builds the gate-node graph and (when `contract`) applies two *lossless*
/// merges to fixpoint:
///   1. preds(v) == {u} and qubits(v) subset-of qubits(u)  -> v joins u
///   2. succs(u) == {v} and qubits(u) subset-of qubits(v)  -> u joins v
/// Both preserve the optimal part count: the absorbed node contributes no
/// new qubits to the absorber's part, its dependencies stay satisfied, and
/// the part graph stays acyclic (the moved node's cross edges keep their
/// direction in any topological numbering). Typical circuits (rotation
/// chains, CX-RZ-CX ladders) shrink by 2-4x.
ContractedGraph build_contracted(const dag::CircuitDag& dag,
                                 bool contract = true);

}  // namespace hisim::partition
