#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace hisim::qasm {

/// Parse statistics beyond the gate list (measurements and barriers are
/// accepted and counted but not represented in the Circuit, since the
/// simulator computes full state vectors).
struct ParseInfo {
  std::size_t num_measure = 0;
  std::size_t num_barrier = 0;
};

/// Parses an OpenQASM 2.0 program into a Circuit. Supports: OPENQASM
/// header, include (qelib1.inc treated as built in), qreg/creg, the
/// qelib1 gate vocabulary plus U/CX primitives, user `gate` definitions
/// (recursively expanded at application), register broadcast, measure,
/// barrier, and constant expressions with pi and the usual operators and
/// functions. Multiple qregs are flattened in declaration order.
Circuit parse(const std::string& source, ParseInfo* info = nullptr);

/// Parses the file at `path` (throws hisim::Error if unreadable).
Circuit parse_file(const std::string& path, ParseInfo* info = nullptr);

}  // namespace hisim::qasm
