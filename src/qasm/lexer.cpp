#include "qasm/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/error.hpp"

namespace hisim::qasm {
namespace {

const std::unordered_set<std::string> kKeywords = {
    "OPENQASM", "include", "qreg", "creg",    "gate",
    "measure",  "barrier", "reset", "if",     "opaque",
};

[[noreturn]] void fail(int line, int col, const std::string& msg) {
  throw Error("QASM lex error at " + std::to_string(line) + ":" +
              std::to_string(col) + ": " + msg);
}

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind k, std::string text = "", double val = 0.0) {
    out.push_back(Token{k, std::move(text), val, line, col});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') { ++line; col = 1; ++i; continue; }
    if (std::isspace(static_cast<unsigned char>(c))) { ++col; ++i; continue; }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_'))
        ++j;
      std::string word = src.substr(i, j - i);
      push(kKeywords.count(word) ? TokKind::Keyword : TokKind::Identifier,
           word);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      if (j < n && src[j] == '.') {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      }
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_real = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
      }
      const std::string text = src.substr(i, j - i);
      push(is_real ? TokKind::Real : TokKind::Integer, text,
           std::strtod(text.c_str(), nullptr));
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') ++j;
      if (j >= n) fail(line, col, "unterminated string");
      push(TokKind::String, src.substr(i + 1, j - i - 1));
      col += static_cast<int>(j - i + 1);
      i = j + 1;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(TokKind::Arrow, "->");
      i += 2; col += 2;
      continue;
    }
    TokKind k;
    switch (c) {
      case '(': k = TokKind::LParen; break;
      case ')': k = TokKind::RParen; break;
      case '{': k = TokKind::LBrace; break;
      case '}': k = TokKind::RBrace; break;
      case '[': k = TokKind::LBracket; break;
      case ']': k = TokKind::RBracket; break;
      case ',': k = TokKind::Comma; break;
      case ';': k = TokKind::Semicolon; break;
      case '+': k = TokKind::Plus; break;
      case '-': k = TokKind::Minus; break;
      case '*': k = TokKind::Star; break;
      case '/': k = TokKind::Slash; break;
      case '^': k = TokKind::Caret; break;
      case '=':
        // only appears as '==' in `if (c==0)`; treat the pair as one token
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokKind::Identifier, "==");
          i += 2; col += 2;
          continue;
        }
        fail(line, col, "unexpected '='");
      default:
        fail(line, col, std::string("unexpected character '") + c + "'");
    }
    push(k, std::string(1, c));
    ++i; ++col;
  }
  push(TokKind::End);
  return out;
}

}  // namespace hisim::qasm
