#pragma once

#include <string>
#include <vector>

namespace hisim::qasm {

enum class TokKind {
  Identifier,   // h, cx, q, mygate, pi, sin ...
  Real,         // 3.14, 1e-3
  Integer,      // 42
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Arrow,          // ->
  Plus, Minus, Star, Slash, Caret,
  Keyword,      // OPENQASM, include, qreg, creg, gate, measure, barrier,
                // reset, if, opaque
  String,       // "qelib1.inc"
  End,
};

struct Token {
  TokKind kind;
  std::string text;   // identifier/keyword/string spelling
  double value = 0.0; // numeric literals
  int line = 0;
  int col = 0;
};

/// Tokenizes OpenQASM 2.0 source. Comments (`// ...`) are skipped.
/// Throws hisim::Error with line/column info on unknown characters.
std::vector<Token> tokenize(const std::string& source);

}  // namespace hisim::qasm
