#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace hisim::qasm {

/// Serializes a circuit to OpenQASM 2.0 (qelib1 vocabulary). Kinds without
/// a qelib1 spelling (RZZ, RXX, MCX, raw unitaries) are lowered to
/// qelib1-expressible gates first, so parse(write(c)) simulates to the
/// same state as c (gate-for-gate identity is not guaranteed for those
/// kinds).
std::string write(const Circuit& c);

}  // namespace hisim::qasm
