#include "qasm/parser.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"
#include "qasm/lexer.hpp"

namespace hisim::qasm {
namespace {

/// A user-defined gate: formal parameter names, formal qubit argument
/// names, and the body as raw statements to be re-expanded per call.
struct GateDef {
  std::vector<std::string> params;
  std::vector<std::string> args;
  struct Call {
    std::string name;
    std::vector<std::vector<Token>> param_exprs;  // token slices
    std::vector<std::string> arg_names;           // formal qubit names
  };
  std::vector<Call> body;
};

struct Reg {
  unsigned offset;  // first flattened qubit index
  unsigned size;
};

using KindMap = std::unordered_map<std::string, GateKind>;

const KindMap& builtin_gates() {
  static const KindMap m = {
      {"id", GateKind::I},    {"x", GateKind::X},     {"y", GateKind::Y},
      {"z", GateKind::Z},     {"h", GateKind::H},     {"s", GateKind::S},
      {"sdg", GateKind::Sdg}, {"t", GateKind::T},     {"tdg", GateKind::Tdg},
      {"sx", GateKind::SX},   {"rx", GateKind::RX},   {"ry", GateKind::RY},
      {"rz", GateKind::RZ},   {"u1", GateKind::P},    {"p", GateKind::P},
      {"u2", GateKind::U2},   {"u3", GateKind::U3},   {"u", GateKind::U3},
      {"U", GateKind::U3},    {"cx", GateKind::CX},   {"CX", GateKind::CX},
      {"cy", GateKind::CY},   {"cz", GateKind::CZ},   {"ch", GateKind::CH},
      {"crx", GateKind::CRX}, {"cry", GateKind::CRY}, {"crz", GateKind::CRZ},
      {"cu1", GateKind::CP},  {"cp", GateKind::CP},   {"cu3", GateKind::CU3},
      {"swap", GateKind::SWAP}, {"rzz", GateKind::RZZ}, {"rxx", GateKind::RXX},
      {"ccx", GateKind::CCX}, {"cswap", GateKind::CSWAP},
  };
  return m;
}

class Parser {
 public:
  Parser(std::vector<Token> toks, ParseInfo* info)
      : toks_(std::move(toks)), info_(info) {}

  Circuit run() {
    parse_header();
    while (!at(TokKind::End)) parse_statement();
    Circuit c(total_qubits_, "qasm");
    c = std::move(circuit_);
    return c;
  }

 private:
  // ---- token helpers ---------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool at_kw(const std::string& w) const {
    return cur().kind == TokKind::Keyword && cur().text == w;
  }
  Token eat() { return toks_[pos_++]; }
  Token expect(TokKind k, const std::string& what) {
    if (!at(k)) fail("expected " + what);
    return eat();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("QASM parse error at " + std::to_string(cur().line) + ":" +
                std::to_string(cur().col) + ": " + msg + " (got '" +
                cur().text + "')");
  }

  // ---- grammar ----------------------------------------------------------
  void parse_header() {
    if (at_kw("OPENQASM")) {
      eat();
      if (at(TokKind::Real) || at(TokKind::Integer)) eat();
      expect(TokKind::Semicolon, "';'");
    }
  }

  void parse_statement() {
    if (at_kw("include")) {
      eat();
      expect(TokKind::String, "include path");
      expect(TokKind::Semicolon, "';'");
      return;  // qelib1 vocabulary is built in
    }
    if (at_kw("qreg")) { parse_reg(/*quantum=*/true); return; }
    if (at_kw("creg")) { parse_reg(/*quantum=*/false); return; }
    if (at_kw("gate")) { parse_gate_def(); return; }
    if (at_kw("opaque")) { skip_to_semicolon(); return; }
    if (at_kw("barrier")) {
      skip_to_semicolon();
      if (info_) ++info_->num_barrier;
      return;
    }
    if (at_kw("measure")) {
      skip_to_semicolon();
      if (info_) ++info_->num_measure;
      return;
    }
    if (at_kw("reset")) fail("reset is not supported (pure-state simulator)");
    if (at_kw("if")) fail("classically controlled gates are not supported");
    if (at(TokKind::Identifier)) { parse_gate_call(); return; }
    fail("expected statement");
  }

  void skip_to_semicolon() {
    while (!at(TokKind::Semicolon) && !at(TokKind::End)) eat();
    if (at(TokKind::Semicolon)) eat();
  }

  void parse_reg(bool quantum) {
    eat();  // qreg/creg
    const std::string name = expect(TokKind::Identifier, "register name").text;
    expect(TokKind::LBracket, "'['");
    const Token size = expect(TokKind::Integer, "register size");
    expect(TokKind::RBracket, "']'");
    expect(TokKind::Semicolon, "';'");
    if (!quantum) return;  // classical registers only sink measurements
    HISIM_CHECK_MSG(!qregs_.count(name), "duplicate qreg " << name);
    const auto sz = static_cast<unsigned>(size.value);
    qregs_[name] = Reg{total_qubits_, sz};
    qreg_order_.push_back(name);
    total_qubits_ += sz;
    circuit_ = grow(circuit_, total_qubits_);
  }

  static Circuit grow(const Circuit& c, unsigned nq) {
    Circuit out(nq, c.name());
    for (const Gate& g : c.gates()) out.add(g);
    return out;
  }

  void parse_gate_def() {
    eat();  // gate
    const std::string name = expect(TokKind::Identifier, "gate name").text;
    GateDef def;
    if (at(TokKind::LParen)) {
      eat();
      while (!at(TokKind::RParen)) {
        def.params.push_back(expect(TokKind::Identifier, "param name").text);
        if (at(TokKind::Comma)) eat();
      }
      eat();  // )
    }
    while (!at(TokKind::LBrace)) {
      def.args.push_back(expect(TokKind::Identifier, "qubit arg").text);
      if (at(TokKind::Comma)) eat();
    }
    eat();  // {
    while (!at(TokKind::RBrace)) {
      if (at_kw("barrier")) { skip_to_semicolon(); continue; }
      GateDef::Call call;
      call.name = expect(TokKind::Identifier, "gate name in body").text;
      if (at(TokKind::LParen)) {
        eat();
        int depth = 1;
        std::vector<Token> expr;
        while (depth > 0) {
          if (at(TokKind::LParen)) ++depth;
          if (at(TokKind::RParen)) {
            --depth;
            if (depth == 0) { eat(); break; }
          }
          if (at(TokKind::Comma) && depth == 1) {
            call.param_exprs.push_back(expr);
            expr.clear();
            eat();
            continue;
          }
          expr.push_back(eat());
        }
        call.param_exprs.push_back(expr);
      }
      while (!at(TokKind::Semicolon)) {
        call.arg_names.push_back(
            expect(TokKind::Identifier, "qubit arg in body").text);
        if (at(TokKind::Comma)) eat();
      }
      eat();  // ;
      def.body.push_back(std::move(call));
    }
    eat();  // }
    gate_defs_[name] = std::move(def);
  }

  // expression evaluation over a parameter environment ---------------------
  double eval_expr(const std::vector<Token>& toks,
                   const std::map<std::string, double>& env) {
    std::size_t p = 0;
    const double v = eval_sum(toks, p, env);
    if (p != toks.size()) throw Error("QASM: trailing tokens in expression");
    return v;
  }

  double eval_sum(const std::vector<Token>& t, std::size_t& p,
                  const std::map<std::string, double>& env) {
    double v = eval_prod(t, p, env);
    while (p < t.size() &&
           (t[p].kind == TokKind::Plus || t[p].kind == TokKind::Minus)) {
      const bool plus = t[p].kind == TokKind::Plus;
      ++p;
      const double r = eval_prod(t, p, env);
      v = plus ? v + r : v - r;
    }
    return v;
  }

  double eval_prod(const std::vector<Token>& t, std::size_t& p,
                   const std::map<std::string, double>& env) {
    double v = eval_pow(t, p, env);
    while (p < t.size() &&
           (t[p].kind == TokKind::Star || t[p].kind == TokKind::Slash)) {
      const bool mul = t[p].kind == TokKind::Star;
      ++p;
      const double r = eval_pow(t, p, env);
      v = mul ? v * r : v / r;
    }
    return v;
  }

  double eval_pow(const std::vector<Token>& t, std::size_t& p,
                  const std::map<std::string, double>& env) {
    const double v = eval_atom(t, p, env);
    if (p < t.size() && t[p].kind == TokKind::Caret) {
      ++p;
      return std::pow(v, eval_pow(t, p, env));  // right associative
    }
    return v;
  }

  double eval_atom(const std::vector<Token>& t, std::size_t& p,
                   const std::map<std::string, double>& env) {
    if (p >= t.size()) throw Error("QASM: truncated expression");
    const Token& tok = t[p];
    if (tok.kind == TokKind::Minus) {
      ++p;
      return -eval_atom(t, p, env);
    }
    if (tok.kind == TokKind::Plus) {
      ++p;
      return eval_atom(t, p, env);
    }
    if (tok.kind == TokKind::Real || tok.kind == TokKind::Integer) {
      ++p;
      return tok.value;
    }
    if (tok.kind == TokKind::LParen) {
      ++p;
      const double v = eval_sum(t, p, env);
      if (p >= t.size() || t[p].kind != TokKind::RParen)
        throw Error("QASM: missing ')'");
      ++p;
      return v;
    }
    if (tok.kind == TokKind::Identifier) {
      ++p;
      if (tok.text == "pi") return M_PI;
      static const std::map<std::string, double (*)(double)> funcs = {
          {"sin", std::sin}, {"cos", std::cos}, {"tan", std::tan},
          {"exp", std::exp}, {"ln", std::log},  {"sqrt", std::sqrt},
      };
      if (auto it = funcs.find(tok.text); it != funcs.end()) {
        if (p >= t.size() || t[p].kind != TokKind::LParen)
          throw Error("QASM: function call needs '('");
        ++p;
        const double arg = eval_sum(t, p, env);
        if (p >= t.size() || t[p].kind != TokKind::RParen)
          throw Error("QASM: missing ')' after function arg");
        ++p;
        return it->second(arg);
      }
      if (auto it = env.find(tok.text); it != env.end()) return it->second;
      throw Error("QASM: unknown identifier in expression: " + tok.text);
    }
    throw Error("QASM: bad expression token '" + tok.text + "'");
  }

  // gate application --------------------------------------------------------
  struct Operand {
    std::string reg;
    std::optional<unsigned> index;  // nullopt = whole register broadcast
  };

  void parse_gate_call() {
    const Token name_tok = eat();
    const std::string name = name_tok.text;
    std::vector<double> params;
    if (at(TokKind::LParen)) {
      eat();
      std::vector<Token> expr;
      int depth = 1;
      while (depth > 0) {
        if (at(TokKind::End)) fail("unterminated parameter list");
        if (at(TokKind::LParen)) ++depth;
        if (at(TokKind::RParen)) {
          --depth;
          if (depth == 0) { eat(); break; }
        }
        if (at(TokKind::Comma) && depth == 1) {
          params.push_back(eval_expr(expr, {}));
          expr.clear();
          eat();
          continue;
        }
        expr.push_back(eat());
      }
      if (!expr.empty()) params.push_back(eval_expr(expr, {}));
    }
    std::vector<Operand> ops;
    while (!at(TokKind::Semicolon)) {
      Operand op;
      op.reg = expect(TokKind::Identifier, "qubit operand").text;
      if (at(TokKind::LBracket)) {
        eat();
        op.index = static_cast<unsigned>(
            expect(TokKind::Integer, "qubit index").value);
        expect(TokKind::RBracket, "']'");
      }
      ops.push_back(std::move(op));
      if (at(TokKind::Comma)) eat();
    }
    eat();  // ;

    // Broadcast over whole-register operands.
    unsigned bcast = 1;
    for (const auto& op : ops) {
      if (op.index) continue;
      const auto it = qregs_.find(op.reg);
      if (it == qregs_.end()) fail("unknown qreg " + op.reg);
      if (bcast != 1 && it->second.size != bcast)
        fail("broadcast size mismatch");
      bcast = it->second.size;
    }
    for (unsigned b = 0; b < bcast; ++b) {
      std::vector<Qubit> qs;
      for (const auto& op : ops) {
        const auto it = qregs_.find(op.reg);
        if (it == qregs_.end()) fail("unknown qreg " + op.reg);
        const unsigned idx = op.index ? *op.index : b;
        if (idx >= it->second.size) fail("qubit index out of range");
        qs.push_back(it->second.offset + idx);
      }
      apply_named(name, params, qs);
    }
  }

  void apply_named(const std::string& name, const std::vector<double>& params,
                   const std::vector<Qubit>& qs) {
    // User definitions shadow builtins.
    if (auto it = gate_defs_.find(name); it != gate_defs_.end()) {
      const GateDef& def = it->second;
      HISIM_CHECK_MSG(params.size() == def.params.size(),
                      "param count mismatch calling gate " << name);
      HISIM_CHECK_MSG(qs.size() == def.args.size(),
                      "arg count mismatch calling gate " << name);
      std::map<std::string, double> env;
      for (std::size_t i = 0; i < params.size(); ++i)
        env[def.params[i]] = params[i];
      std::map<std::string, Qubit> qenv;
      for (std::size_t i = 0; i < qs.size(); ++i) qenv[def.args[i]] = qs[i];
      for (const auto& call : def.body) {
        std::vector<double> sub_params;
        for (const auto& expr : call.param_exprs)
          sub_params.push_back(eval_expr(expr, env));
        std::vector<Qubit> sub_qs;
        for (const auto& a : call.arg_names) {
          const auto q = qenv.find(a);
          if (q == qenv.end())
            throw Error("QASM: unknown qubit arg '" + a + "' in gate body");
          sub_qs.push_back(q->second);
        }
        apply_named(call.name, sub_params, sub_qs);
      }
      return;
    }
    const auto it = builtin_gates().find(name);
    if (it == builtin_gates().end())
      throw Error("QASM: unknown gate '" + name + "'");
    Gate g;
    g.kind = it->second;
    g.qubits = qs;
    // u/U with 3 params is u3; u1-style single param accepted for "p".
    const std::vector<double>& ps = params;
    HISIM_CHECK_MSG(ps.size() == gate_param_count(g.kind),
                    "gate " << name << " expects "
                            << gate_param_count(g.kind) << " params, got "
                            << ps.size());
    g.params.assign(ps.begin(), ps.end());
    circuit_.add(std::move(g));
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  ParseInfo* info_;
  Circuit circuit_{0, "qasm"};
  unsigned total_qubits_ = 0;
  std::unordered_map<std::string, Reg> qregs_;
  std::vector<std::string> qreg_order_;
  std::unordered_map<std::string, GateDef> gate_defs_;
};

}  // namespace

Circuit parse(const std::string& source, ParseInfo* info) {
  Parser p(tokenize(source), info);
  return p.run();
}

Circuit parse_file(const std::string& path, ParseInfo* info) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open QASM file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  Circuit c = parse(ss.str(), info);
  // Name the circuit after the file stem.
  const auto slash = path.find_last_of('/');
  const auto stem = path.substr(slash == std::string::npos ? 0 : slash + 1);
  const auto dot = stem.find_last_of('.');
  c.set_name(dot == std::string::npos ? stem : stem.substr(0, dot));
  return c;
}

}  // namespace hisim::qasm
