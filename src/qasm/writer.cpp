#include "qasm/writer.hpp"

#include <iomanip>
#include <sstream>

#include "circuit/decompose.hpp"
#include "common/error.hpp"

namespace hisim::qasm {
namespace {

bool qelib_expressible(const Gate& g) {
  switch (g.kind) {
    case GateKind::RZZ: case GateKind::RXX: case GateKind::MCX:
    case GateKind::Unitary: case GateKind::NoiseSlot:
      return false;
    default:
      return true;
  }
}

void write_gate(std::ostringstream& os, const Gate& g) {
  os << gate_name(g.kind);
  if (!g.params.empty()) {
    os << "(";
    for (std::size_t i = 0; i < g.params.size(); ++i) {
      if (i) os << ",";
      // OpenQASM 2.0 has no symbolic parameters: value() throws a clear
      // hisim::Error (naming the parameter) for unbound symbolic gates.
      os << std::setprecision(17) << g.params[i].value();
    }
    os << ")";
  }
  os << " ";
  for (std::size_t i = 0; i < g.qubits.size(); ++i) {
    if (i) os << ",";
    os << "q[" << g.qubits[i] << "]";
  }
  os << ";\n";
}

}  // namespace

std::string write(const Circuit& c) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << c.num_qubits() << "];\n";
  for (const Gate& g : c.gates()) {
    if (qelib_expressible(g)) {
      write_gate(os, g);
      continue;
    }
    switch (g.kind) {
      case GateKind::RZZ:
        write_gate(os, Gate::cx(g.qubits[0], g.qubits[1]));
        write_gate(os, Gate::rz(g.qubits[1], g.params[0]));
        write_gate(os, Gate::cx(g.qubits[0], g.qubits[1]));
        break;
      case GateKind::RXX:
        write_gate(os, Gate::h(g.qubits[0]));
        write_gate(os, Gate::h(g.qubits[1]));
        write_gate(os, Gate::cx(g.qubits[0], g.qubits[1]));
        write_gate(os, Gate::rz(g.qubits[1], g.params[0]));
        write_gate(os, Gate::cx(g.qubits[0], g.qubits[1]));
        write_gate(os, Gate::h(g.qubits[0]));
        write_gate(os, Gate::h(g.qubits[1]));
        break;
      case GateKind::MCX:
        for (const Gate& e : decompose_gate(g, 3)) write_gate(os, e);
        break;
      default:
        throw Error("qasm::write: cannot serialize " + gate_name(g.kind));
    }
  }
  return os.str();
}

}  // namespace hisim::qasm
