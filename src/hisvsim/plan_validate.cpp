#include <cstddef>

#include "common/check.hpp"
#include "dag/circuit_dag.hpp"
#include "hisvsim/plan_impl.hpp"
#include "partition/multilevel.hpp"

/// ExecutionPlan::validate() — the single-node half of the checked-build
/// layer (common/check.hpp; the distributed half lives in
/// dist/validate.cpp). Like dist::validate_plan, everything here re-derives
/// the plan's contract from first principles: partitionings are re-checked
/// against freshly built DAGs, noise slots are re-counted from the gates,
/// and the kernel table is re-tested against the CPU — the validator never
/// trusts the code paths that produced the plan.
namespace hisim {

namespace {

using detail::PlanImpl;

/// partition::validate throws hisim::Error (it predates the checked-build
/// layer and is also a user-facing precondition check); the deep validator
/// converts that into the abort contract so a violation cannot be swallowed
/// by a catch block somewhere up the execute path.
void check_partitioning(const dag::CircuitDag& dag,
                        const partition::Partitioning& p, const char* what) {
  try {
    partition::validate(dag, p);
  } catch (const Error& e) {
    HISIM_INVARIANT(false, what << " partitioning invalid: " << e.what());
  }
}

void check_kernels(const PlanImpl& p) {
  HISIM_INVARIANT(p.kernels != nullptr, "plan carries no kernel ops table");
  const sv::KernelTier tier = p.kernels->tier;
  HISIM_INVARIANT(tier != sv::KernelTier::Auto,
                  "plan kernel tier left unresolved (Auto) — compile must "
                  "pin Scalar or Simd");
  HISIM_INVARIANT(tier != sv::KernelTier::Simd || sv::simd_kernels_available(),
                  "plan resolved the Simd kernel tier but this binary/CPU "
                  "does not offer it");
  // The resolved table must be the canonical one for its tier: plans share
  // immutable static tables, never own copies.
  HISIM_INVARIANT(p.kernels == &sv::kernel_ops(tier),
                  "plan kernel table is not the canonical "
                      << sv::kernel_tier_name(tier) << " table");
}

void check_params(const PlanImpl& p) {
  // executed_circuit() is dplan.circuit for the distributed targets
  // (impl.circuit is intentionally left empty there) and impl.circuit
  // everywhere else — exactly the circuit whose parameters execute()
  // resolves bindings against.
  const std::vector<std::string>& names = p.executed_circuit().param_names();
  HISIM_INVARIANT(names == p.param_names,
                  "executed circuit declares "
                      << names.size() << " symbolic parameters, plan registry "
                      << "has " << p.param_names.size()
                      << " (or the names/order differ)");
}

void check_target(const PlanImpl& p) {
  const Circuit& c = p.circuit;
  switch (p.opt.target) {
    case Target::Flat:
      HISIM_INVARIANT(p.parts == 1,
                      "flat plan reports " << p.parts << " parts");
      break;
    case Target::Hierarchical: {
      const dag::CircuitDag dag(c);
      check_partitioning(dag, p.single, "hierarchical");
      HISIM_INVARIANT(p.parts == p.single.num_parts(),
                      "plan reports " << p.parts << " parts, partitioning has "
                                      << p.single.num_parts());
      break;
    }
    case Target::Multilevel: {
      const dag::CircuitDag dag(c);
      check_partitioning(dag, p.two.level1, "multilevel level-1");
      HISIM_INVARIANT(p.two.level2.size() == p.two.level1.parts.size(),
                      "level-2 table has " << p.two.level2.size()
                                           << " entries for "
                                           << p.two.level1.parts.size()
                                           << " level-1 parts");
      for (std::size_t i = 0; i < p.two.level2.size(); ++i) {
        const Circuit sub =
            partition::part_subcircuit(c, p.two.level1.parts[i]);
        const dag::CircuitDag sdag(sub);
        check_partitioning(sdag, p.two.level2[i], "multilevel level-2");
      }
      HISIM_INVARIANT(p.parts == p.two.level1.num_parts() &&
                          p.inner_parts == p.two.total_inner_parts(),
                      "multilevel part counts out of sync with partitioning");
      break;
    }
    case Target::DistributedSerial:
    case Target::DistributedThreaded:
      HISIM_INVARIANT(p.ranks == (1u << p.opt.process_qubits),
                      "plan reports " << p.ranks << " ranks for p = "
                                      << p.opt.process_qubits);
      HISIM_INVARIANT(p.parts == p.dplan.num_parts(),
                      "plan reports " << p.parts
                                      << " parts, distributed plan has "
                                      << p.dplan.num_parts());
      dist::validate_plan(p.dplan);
      break;
    case Target::IqsBaseline:
      HISIM_INVARIANT(p.ranks == (1u << p.opt.process_qubits),
                      "plan reports " << p.ranks << " ranks for p = "
                                      << p.opt.process_qubits);
      break;
  }
}

}  // namespace

void ExecutionPlan::validate() const {
  HISIM_CHECK_MSG(valid(), "validate() called on an empty ExecutionPlan");
  const PlanImpl& p = *impl_;

  check_kernels(p);
  check_params(p);

  // Reserved noise slots must be dense, unique, and on their reserved
  // qubits in the circuit every execute() walks. Run unconditionally: for
  // a noiseless plan this doubles as "no stray NoiseSlot gates".
  noise::validate_slots(p.executed_circuit(), p.noise);

  check_target(p);
}

}  // namespace hisim
