#include "hisvsim/hisvsim.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hisim {

unsigned HiSvSim::effective_limit(const Circuit& c) const {
  if (opt_.limit != 0) return std::min(opt_.limit, c.num_qubits());
  if (opt_.process_qubits > 0) {
    HISIM_CHECK(opt_.process_qubits < c.num_qubits());
    return c.num_qubits() - opt_.process_qubits;
  }
  // LLC-sized default: 2^21 amplitudes = 32 MiB.
  return std::min(21u, c.num_qubits());
}

partition::Partitioning HiSvSim::plan(const Circuit& c) const {
  const dag::CircuitDag dag(c);
  partition::PartitionOptions po;
  po.strategy = opt_.strategy;
  po.limit = effective_limit(c);
  po.seed = opt_.seed;
  return partition::make_partition(dag, po);
}

sv::StateVector HiSvSim::simulate(const Circuit& c, RunReport* report) const {
  sv::StateVector state(c.num_qubits());
  RunReport rep;
  if (opt_.level2_limit == 0) {
    const partition::Partitioning parts = plan(c);
    rep.parts = parts.num_parts();
    rep.partition_seconds = parts.partition_seconds;
    rep.hier = sv::HierarchicalSimulator().run(c, parts, state);
  } else {
    const dag::CircuitDag dag(c);
    partition::PartitionOptions po;
    po.strategy = opt_.strategy;
    po.limit = effective_limit(c);
    po.seed = opt_.seed;
    const partition::TwoLevelPartitioning two =
        partition::partition_two_level(dag, po,
                                       std::min(opt_.level2_limit, po.limit));
    rep.parts = two.level1.num_parts();
    rep.inner_parts = two.total_inner_parts();
    rep.partition_seconds = two.level1.partition_seconds;
    rep.hier = sv::HierarchicalSimulator().run(c, two, state);
  }
  if (report) *report = rep;
  return state;
}

sv::StateVector HiSvSim::simulate_distributed(const Circuit& c,
                                              RunReport* report) const {
  HISIM_CHECK_MSG(opt_.process_qubits > 0,
                  "simulate_distributed requires process_qubits > 0");
  dist::DistState state(c.num_qubits(), opt_.process_qubits);
  dist::DistributedHiSvSim::Options o;
  o.process_qubits = opt_.process_qubits;
  o.part.strategy = opt_.strategy;
  o.part.limit = effective_limit(c);
  o.part.seed = opt_.seed;
  o.level2_limit = opt_.level2_limit;
  o.net = opt_.net;
  o.backend = &dist::backend_for(opt_.backend);
  RunReport rep;
  rep.distributed = true;
  rep.dist = dist::DistributedHiSvSim().run(c, o, state);
  rep.parts = rep.dist.parts;
  rep.inner_parts = rep.dist.inner_parts;
  rep.partition_seconds = rep.dist.partition_seconds;
  if (report) *report = rep;
  return state.to_state_vector();
}

}  // namespace hisim
