#include "hisvsim/hisvsim.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "dag/circuit_dag.hpp"

namespace hisim {

unsigned HiSvSim::effective_limit(const Circuit& c) const {
  if (opt_.limit != 0) return std::min(opt_.limit, c.num_qubits());
  if (opt_.process_qubits > 0) {
    HISIM_CHECK(opt_.process_qubits < c.num_qubits());
    return c.num_qubits() - opt_.process_qubits;
  }
  // LLC-sized default: 2^21 amplitudes = 32 MiB.
  return std::min(21u, c.num_qubits());
}

Options HiSvSim::engine_options(const Circuit& c, bool distributed) const {
  Options o;
  if (distributed) {
    o.target = target_for_backend(opt_.backend);
  } else {
    o.target = opt_.level2_limit > 0 ? Target::Multilevel
                                     : Target::Hierarchical;
  }
  o.strategy = opt_.strategy;
  o.limit = effective_limit(c);
  o.level2_limit = opt_.level2_limit;
  o.process_qubits = opt_.process_qubits;
  o.seed = opt_.seed;
  return o;
}

partition::Partitioning HiSvSim::plan(const Circuit& c) const {
  const dag::CircuitDag dag(c);
  partition::PartitionOptions po;
  po.strategy = opt_.strategy;
  po.limit = effective_limit(c);
  po.seed = opt_.seed;
  return partition::make_partition(dag, po);
}

sv::StateVector HiSvSim::simulate(const Circuit& c, RunReport* report) const {
  Result r = Engine::compile(c, engine_options(c, false)).execute();
  if (report) {
    RunReport rep;
    rep.parts = r.parts;
    rep.inner_parts = r.inner_parts;
    rep.partition_seconds = r.partition_seconds;
    rep.hier.parts = r.parts;
    rep.hier.inner_parts = r.inner_parts;
    rep.hier.gather_seconds = r.gather_seconds;
    rep.hier.execute_seconds = r.apply_seconds;
    rep.hier.scatter_seconds = r.scatter_seconds;
    rep.hier.outer_bytes_moved = r.outer_bytes_moved;
    rep.hier.inner_bytes_touched = r.inner_bytes_touched;
    rep.hier.flops = r.flops;
    *report = rep;
  }
  return std::move(r.state);
}

sv::StateVector HiSvSim::simulate_distributed(const Circuit& c,
                                              RunReport* report) const {
  HISIM_CHECK_MSG(opt_.process_qubits > 0,
                  "simulate_distributed requires process_qubits > 0");
  ExecOptions x;
  x.net = opt_.net;
  Result r = Engine::compile(c, engine_options(c, true)).execute(x);
  if (report) {
    RunReport rep;
    rep.distributed = true;
    rep.parts = r.parts;
    rep.inner_parts = r.inner_parts;
    rep.partition_seconds = r.partition_seconds;
    rep.dist.parts = r.parts;
    rep.dist.inner_parts = r.inner_parts;
    rep.dist.ranks = r.ranks;
    rep.dist.partition_seconds = r.partition_seconds;
    rep.dist.compute_seconds = r.compute_seconds;
    rep.dist.comm = r.comm;
    rep.dist.part_times = r.part_times;
    rep.dist.measured_comm_seconds = r.measured_comm_seconds;
    rep.dist.measured_wall_seconds = r.measured_wall_seconds;
    rep.dist.measured_overlap_seconds = r.measured_overlap_seconds;
    *report = rep;
  }
  return std::move(r.state);
}

}  // namespace hisim
