#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "dist/hisvsim_dist.hpp"
#include "hisvsim/engine.hpp"
#include "noise/trajectory.hpp"
#include "partition/multilevel.hpp"
#include "sv/kernel_dispatch.hpp"

/// Internal: the compiled-plan representation shared by engine.cpp (which
/// builds and executes it) and plan_validate.cpp (which deep-checks it).
/// Not part of the public API — include hisvsim/engine.hpp instead.
namespace hisim::detail {

/// The immutable compiled state an ExecutionPlan shares. Everything here
/// is written once by Engine::compile and only read afterwards — that
/// write-once/read-many lifecycle (not a lock) is the thread-safety
/// argument for concurrent execute()/execute_sweep()/
/// execute_trajectories() on one plan, so no field carries a
/// HISIM_GUARDED_BY capability: there is no mutable shared state to
/// guard. Anything mutable an execute needs (bound circuits, sampled
/// noise ops, per-point Results) lives on that execute's stack; the only
/// locks on the execute path are the worker pool's own (common/
/// parallel.cpp) and the error-capture Mutex in run_indexed_on_pool.
/// Keep it that way: a mutable member added here would need a capability
/// and would serialize every concurrent execute.
struct PlanImpl {
  Options opt;
  Circuit circuit;  // single-node / IQS targets execute this directly
  /// Symbolic parameter registry of the compiled circuit (id order).
  /// Non-empty iff the plan is parameterized, in which case every execute
  /// resolves ExecOptions::bindings against it and materializes gate
  /// matrices per binding — the plan structure never changes.
  std::vector<std::string> param_names;
  /// Compile-side noise artifact (channel table, reserved slots, readout
  /// confusion). Empty unless the plan was compiled with Options::noise;
  /// the instrumented circuit's NoiseSlot gates reference these slots.
  noise::CompiledNoise noise;
  /// Gate-count accounting of the compile-time optimization pipeline
  /// (all-zero removals when compiled at opt_level 0).
  OptReport opt_report;
  /// Kernel tier resolved once at compile from Options::kernel_tier —
  /// points at an immutable static table, so shared plans stay
  /// thread-safe and a forced-but-unavailable tier fails at compile
  /// instead of mid-execution.
  const sv::KernelOps* kernels = nullptr;
  unsigned effective_limit = 0;
  unsigned effective_level2 = 0;
  /// True when every compiled gate is norm-preserving (all kinds are
  /// unitary by construction; Unitary-kind matrices are checked), so an
  /// ideal execution must preserve the initial state's norm. Computed —
  /// and the resulting invariant enforced — only in checked builds.
  bool norm_preserving = false;
  double compile_seconds = 0.0;
  double partition_seconds = 0.0;
  std::size_t parts = 0;
  std::size_t inner_parts = 0;
  unsigned ranks = 0;  // 0 for single-node targets
  /// Compile-phase breakdown ("compile.*" keys, trace::MetricsRegistry
  /// flat() naming) — written once by compile like every other field, and
  /// merged into each execution's Result::metrics.
  std::map<std::string, double> compile_metrics;

  partition::Partitioning single;       // Target::Hierarchical
  partition::TwoLevelPartitioning two;  // Target::Multilevel
  dist::DistPlan dplan;                 // Target::Distributed*

  const Circuit& executed_circuit() const {
    return target_is_distributed(opt.target) &&
                   opt.target != Target::IqsBaseline
               ? dplan.circuit
               : circuit;
  }
};

}  // namespace hisim::detail
