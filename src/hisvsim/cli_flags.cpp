#include "hisvsim/cli_flags.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace hisim::cli {
namespace {

/// Strict unsigned parse: the whole value must be digits and fit `max`
/// (no silent truncation at the narrowing casts below).
unsigned long long parse_uint(
    const std::string& flag, const std::string& value,
    unsigned long long max = std::numeric_limits<unsigned>::max()) {
  HISIM_CHECK_MSG(!value.empty(), flag << " needs a value");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  HISIM_CHECK_MSG(end && *end == '\0' && value[0] != '-',
                  flag << "=" << value << " is not a non-negative integer");
  HISIM_CHECK_MSG(errno != ERANGE && v <= max,
                  flag << "=" << value << " is out of range (max " << max
                       << ")");
  return v;
}

partition::Strategy parse_strategy(const std::string& s) {
  if (s == "nat") return partition::Strategy::Nat;
  if (s == "dfs") return partition::Strategy::Dfs;
  if (s == "dagp") return partition::Strategy::DagP;
  throw Error("unknown strategy '" + s + "' (expected dagp, dfs, nat)");
}

}  // namespace

Flags parse_flags(const std::vector<std::string>& args) {
  Flags f;
  for (const std::string& a : args) {
    const auto val = [&a](const char* name) -> const char* {
      const std::size_t n = std::char_traits<char>::length(name);
      return a.rfind(name, 0) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--qubits=")) {
      f.qubits = static_cast<unsigned>(parse_uint("--qubits", v));
    } else if (const char* v = val("--limit=")) {
      f.limit = static_cast<unsigned>(parse_uint("--limit", v));
    } else if (const char* v = val("--ranks=")) {
      const unsigned long long r = parse_uint("--ranks", v);
      HISIM_CHECK_MSG(r > 0 && (r & (r - 1)) == 0,
                      "--ranks=" << r
                                 << " is not a power of two: ranks are "
                                    "simulated as 2^p processes (use e.g. "
                                 << std::bit_ceil(std::max(r, 2ull)) << ")");
      unsigned p = 0;
      while ((1ull << p) < r) ++p;
      f.ranks_p = p;
    } else if (const char* v = val("--level2=")) {
      f.level2 = static_cast<unsigned>(parse_uint("--level2", v));
    } else if (const char* v = val("--shots=")) {
      f.shots = static_cast<std::size_t>(parse_uint(
          "--shots", v, std::numeric_limits<std::size_t>::max()));
    } else if (const char* v = val("--dot=")) {
      f.dot = v;
    } else if (const char* v = val("--strategy=")) {
      f.strategy = parse_strategy(v);
    } else if (const char* v = val("--backend=")) {
      f.backend = dist::parse_backend(v);
      f.has_backend = true;
    } else if (const char* v = val("--target=")) {
      f.target = parse_target(v);
      f.has_target = true;
    } else if (a == "--json") {
      f.json = true;
    } else if (a == "--exact") {
      f.exact = true;
    } else {
      throw Error("unknown flag: " + a);
    }
  }
  return f;
}

Target effective_target(const Flags& f) {
  if (f.has_target) {
    // Reject contradictions instead of silently ignoring a flag — the
    // same policy that turned the old --ranks rounding into an error.
    HISIM_CHECK_MSG(!target_is_distributed(f.target) || f.ranks_p > 0,
                    "--target=" << target_name(f.target)
                                << " requires --ranks=R with R >= 2 a power "
                                   "of two (--ranks=1 means single-node)");
    HISIM_CHECK_MSG(target_is_distributed(f.target) || f.ranks_p == 0,
                    "--ranks has no effect with --target="
                        << target_name(f.target));
    if (f.has_backend) {
      HISIM_CHECK_MSG(f.target == Target::DistributedSerial ||
                          f.target == Target::DistributedThreaded,
                      "--backend has no effect with --target="
                          << target_name(f.target));
      HISIM_CHECK_MSG(f.target == target_for_backend(f.backend),
                      "--target=" << target_name(f.target)
                                  << " contradicts --backend="
                                  << dist::backend_kind_name(f.backend)
                                  << " (drop one of the two)");
    }
    HISIM_CHECK_MSG(f.level2 == 0 || f.target == Target::Multilevel ||
                        f.target == Target::DistributedSerial ||
                        f.target == Target::DistributedThreaded,
                    "--level2 has no effect with --target="
                        << target_name(f.target));
    return f.target;
  }
  HISIM_CHECK_MSG(!f.has_backend || f.ranks_p > 0,
                  "--backend requires --ranks=R (or a distributed --target)");
  if (f.ranks_p > 0) return target_for_backend(f.backend);
  if (f.level2 > 0) return Target::Multilevel;
  return Target::Hierarchical;
}

Options engine_options(const Flags& f) {
  Options o;
  o.target = effective_target(f);
  o.strategy = f.strategy;
  o.limit = f.limit;
  o.level2_limit = f.level2;
  o.process_qubits = f.ranks_p;
  return o;
}

}  // namespace hisim::cli
