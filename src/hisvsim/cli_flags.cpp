#include "hisvsim/cli_flags.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"

namespace hisim::cli {
namespace {

/// Strict unsigned parse: the whole value must be digits and fit `max`
/// (no silent truncation at the narrowing casts below).
unsigned long long parse_uint(
    const std::string& flag, const std::string& value,
    unsigned long long max = std::numeric_limits<unsigned>::max()) {
  HISIM_CHECK_MSG(!value.empty(), flag << " needs a value");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  HISIM_CHECK_MSG(end && *end == '\0' && value[0] != '-',
                  flag << "=" << value << " is not a non-negative integer");
  HISIM_CHECK_MSG(errno != ERANGE && v <= max,
                  flag << "=" << value << " is out of range (max " << max
                       << ")");
  return v;
}

partition::Strategy parse_strategy(const std::string& s) {
  if (s == "nat") return partition::Strategy::Nat;
  if (s == "dfs") return partition::Strategy::Dfs;
  if (s == "dagp") return partition::Strategy::DagP;
  throw Error("unknown strategy '" + s + "' (expected dagp, dfs, nat)");
}

/// Strict finite-double parse (whole value must be consumed). Overflow
/// yields ±inf and is rejected by the isfinite check; underflow to a
/// subnormal (which sets ERANGE on glibc) is a representable finite value
/// and accepted.
double parse_double(const std::string& flag, const std::string& value) {
  HISIM_CHECK_MSG(!value.empty(), flag << " needs a value");
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  HISIM_CHECK_MSG(end && *end == '\0' && std::isfinite(v),
                  flag << ": '" << value << "' is not a finite number");
  return v;
}

/// `--bind name=value`: fixed parameter value for this run.
void parse_bind(Flags& f, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  HISIM_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "--bind expects name=value, got '" << spec << "'");
  const std::string name = spec.substr(0, eq);
  HISIM_CHECK_MSG(!f.bindings.count(name),
                  "--bind " << name << " given twice (each parameter takes "
                                       "exactly one value)");
  f.bindings[name] = parse_double("--bind " + name, spec.substr(eq + 1));
}

/// `--noise kind=value`: one noise channel (or readout confusion).
void parse_noise(Flags& f, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  HISIM_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "--noise expects kind=value, got '" << spec << "'");
  const std::string kind = spec.substr(0, eq);
  HISIM_CHECK_MSG(kind == "depolarizing" || kind == "bitflip" ||
                      kind == "phaseflip" || kind == "damping" ||
                      kind == "readout",
                  "unknown noise kind '"
                      << kind
                      << "' (expected depolarizing, bitflip, phaseflip, "
                         "damping, readout)");
  // Same policy as --bind/--sweep: a repeated kind would silently double
  // the channel strength (or last-win for readout) — reject it.
  for (const auto& [prev, value] : f.noise)
    HISIM_CHECK_MSG(prev != kind,
                    "--noise " << kind << " given twice (each kind takes "
                                          "exactly one probability)");
  f.noise.emplace_back(kind,
                       parse_double("--noise " + kind, spec.substr(eq + 1)));
}

/// `--sweep name=start:stop:steps`: one grid axis.
void parse_sweep(Flags& f, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  HISIM_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "--sweep expects name=start:stop:steps, got '" << spec
                                                                 << "'");
  SweepSpec s;
  s.name = spec.substr(0, eq);
  const std::string range = spec.substr(eq + 1);
  const std::size_t c1 = range.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                 : range.find(':', c1 + 1);
  HISIM_CHECK_MSG(c1 != std::string::npos && c2 != std::string::npos,
                  "--sweep " << s.name
                             << " expects start:stop:steps, got '" << range
                             << "'");
  s.start = parse_double("--sweep " + s.name, range.substr(0, c1));
  s.stop = parse_double("--sweep " + s.name, range.substr(c1 + 1, c2 - c1 - 1));
  s.steps = static_cast<unsigned>(
      parse_uint("--sweep " + s.name, range.substr(c2 + 1)));
  HISIM_CHECK_MSG(s.steps >= 1, "--sweep " << s.name << " needs steps >= 1");
  HISIM_CHECK_MSG(s.steps > 1 || s.start == s.stop,
                  "--sweep " << s.name << ": steps=1 pins a single value, "
                                          "so start must equal stop");
  for (const SweepSpec& prev : f.sweeps)
    HISIM_CHECK_MSG(prev.name != s.name,
                    "--sweep " << s.name << " given twice (combine into one "
                                            "axis)");
  f.sweeps.push_back(std::move(s));
}

}  // namespace

Flags parse_flags(const std::vector<std::string>& args) {
  Flags f;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto val = [&a](const char* name) -> const char* {
      const std::size_t n = std::char_traits<char>::length(name);
      return a.rfind(name, 0) == 0 ? a.c_str() + n : nullptr;
    };
    // Repeatable parameter flags, in both `--bind=name=value` and
    // `--bind name=value` (two-argument) spellings.
    const auto two_token = [&](const char* name) -> const char* {
      if (a != name) return nullptr;
      HISIM_CHECK_MSG(i + 1 < args.size(), name << " needs an argument");
      return args[++i].c_str();
    };
    // Sibling `if` + continue rather than an else-if chain: each branch
    // declares its own `v` without nesting inside the previous branch's
    // scope (an else-if chain would shadow, which -Wshadow rejects).
    if (const char* v = val("--bind=")) {
      parse_bind(f, v);
      continue;
    }
    if (const char* v = two_token("--bind")) {
      parse_bind(f, v);
      continue;
    }
    if (const char* v = val("--sweep=")) {
      parse_sweep(f, v);
      continue;
    }
    if (const char* v = two_token("--sweep")) {
      parse_sweep(f, v);
      continue;
    }
    if (const char* v = val("--noise=")) {
      parse_noise(f, v);
      continue;
    }
    if (const char* v = two_token("--noise")) {
      parse_noise(f, v);
      continue;
    }
    if (const char* v = val("--observable=")) {
      f.observables.emplace_back(v);
      continue;
    }
    if (const char* v = two_token("--observable")) {
      f.observables.emplace_back(v);
      continue;
    }
    if (const char* v = val("--trajectories=")) {
      f.trajectories = static_cast<std::size_t>(parse_uint(
          "--trajectories", v, std::numeric_limits<std::size_t>::max()));
      HISIM_CHECK_MSG(f.trajectories >= 1, "--trajectories needs >= 1");
      continue;
    }
    if (const char* v = val("--noise-seed=")) {
      f.noise_seed = parse_uint(
          "--noise-seed", v, std::numeric_limits<std::uint64_t>::max());
      continue;
    }
    if (const char* v = val("--qubits=")) {
      f.qubits = static_cast<unsigned>(parse_uint("--qubits", v));
      continue;
    }
    if (const char* v = val("--limit=")) {
      f.limit = static_cast<unsigned>(parse_uint("--limit", v));
      continue;
    }
    if (const char* v = val("--opt-level=")) {
      f.opt_level = static_cast<unsigned>(parse_uint("--opt-level", v, 1));
      continue;
    }
    if (const char* v = val("--ranks=")) {
      const unsigned long long r = parse_uint("--ranks", v);
      HISIM_CHECK_MSG(r > 0 && (r & (r - 1)) == 0,
                      "--ranks=" << r
                                 << " is not a power of two: ranks are "
                                    "simulated as 2^p processes (use e.g. "
                                 << std::bit_ceil(std::max(r, 2ull)) << ")");
      unsigned p = 0;
      while ((1ull << p) < r) ++p;
      f.ranks_p = p;
      continue;
    }
    if (const char* v = val("--level2=")) {
      f.level2 = static_cast<unsigned>(parse_uint("--level2", v));
      continue;
    }
    if (const char* v = val("--shots=")) {
      f.shots = static_cast<std::size_t>(parse_uint(
          "--shots", v, std::numeric_limits<std::size_t>::max()));
      continue;
    }
    if (const char* v = val("--dot=")) {
      f.dot = v;
      continue;
    }
    if (const char* v = val("--trace=")) {
      HISIM_CHECK_MSG(*v != '\0', "--trace needs an output path");
      f.trace = v;
      continue;
    }
    if (const char* v = val("--strategy=")) {
      f.strategy = parse_strategy(v);
      continue;
    }
    if (const char* v = val("--backend=")) {
      f.backend = dist::parse_backend(v);
      f.has_backend = true;
      continue;
    }
    if (const char* v = val("--target=")) {
      f.target = parse_target(v);
      f.has_target = true;
      continue;
    }
    if (const char* v = val("--kernel=")) {
      f.kernel = sv::parse_kernel_tier(v);
      continue;
    }
    if (a == "--json") {
      f.json = true;
      continue;
    }
    if (a == "--exact") {
      f.exact = true;
      continue;
    }
    throw Error("unknown flag: " + a);
  }
  // Order-independent contradiction checks: a parameter cannot be both
  // pinned and swept, whichever flag came first, and sweep runs are
  // report-per-point only — silently dropping --shots would be the same
  // "fix it quietly" failure mode the rest of this parser rejects.
  for (const SweepSpec& s : f.sweeps)
    HISIM_CHECK_MSG(!f.bindings.count(s.name),
                    "parameter '" << s.name
                                  << "' is both --bind and --sweep (drop "
                                     "one of the two)");
  HISIM_CHECK_MSG(f.sweeps.empty() || f.shots == 0,
                  "--shots has no effect with --sweep (per-point output "
                  "carries no samples); run the chosen point separately "
                  "with --bind");
  // Noise and trajectories come as a pair: a model without a trajectory
  // count would silently run the ideal circuit, and a trajectory count
  // without a model has nothing to sample.
  HISIM_CHECK_MSG(f.noise.empty() || f.trajectories > 0,
                  "--noise requires --trajectories=N (stochastic "
                  "trajectory runs sample the channels)");
  HISIM_CHECK_MSG(f.trajectories == 0 || !f.noise.empty(),
                  "--trajectories requires at least one --noise channel");
  HISIM_CHECK_MSG(f.trajectories == 0 || f.sweeps.empty(),
                  "--trajectories cannot be combined with --sweep (pin "
                  "the parameters with --bind and run one noisy point)");
  return f;
}

noise::NoiseModel noise_model(const Flags& f) {
  noise::NoiseModel model;
  for (const auto& [kind, value] : f.noise) {
    if (kind == "depolarizing") {
      model.after_all_gates(noise::Channel::depolarizing(value));
    } else if (kind == "bitflip") {
      model.after_all_gates(noise::Channel::bit_flip(value));
    } else if (kind == "phaseflip") {
      model.after_all_gates(noise::Channel::phase_flip(value));
    } else if (kind == "damping") {
      model.after_all_gates(noise::Channel::amplitude_damping(value));
    } else {  // "readout" — the parser admits no other spelling
      model.readout(noise::ReadoutError{value, value});
    }
  }
  return model;
}

std::vector<ParamBinding> sweep_points(const Flags& f) {
  if (f.sweeps.empty()) return {};
  // Cap the grid so a typo'd steps value fails loudly instead of
  // OOM-aborting while materializing the points (same reject-bad-input
  // policy as the parser). 10^6 points is far beyond any real sweep.
  constexpr std::size_t kMaxPoints = 1'000'000;
  std::size_t total = 1;
  for (const SweepSpec& s : f.sweeps) {
    HISIM_CHECK_MSG(s.steps <= kMaxPoints / total,
                    "sweep grid exceeds " << kMaxPoints
                                          << " points (multiply the --sweep "
                                             "steps together); shrink an "
                                             "axis");
    total *= s.steps;
  }
  std::vector<ParamBinding> points;
  points.reserve(total);
  // Cartesian product, last axis fastest (odometer order).
  std::vector<unsigned> idx(f.sweeps.size(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    ParamBinding binding = f.bindings;
    for (std::size_t ax = 0; ax < f.sweeps.size(); ++ax) {
      const SweepSpec& s = f.sweeps[ax];
      binding[s.name] =
          s.steps == 1
              ? s.start
              : s.start + (s.stop - s.start) * idx[ax] / (s.steps - 1);
    }
    points.push_back(std::move(binding));
    for (std::size_t ax = f.sweeps.size(); ax-- > 0;) {
      if (++idx[ax] < f.sweeps[ax].steps) break;
      idx[ax] = 0;
    }
  }
  return points;
}

Target effective_target(const Flags& f) {
  if (f.has_target) {
    // Reject contradictions instead of silently ignoring a flag — the
    // same policy that turned the old --ranks rounding into an error.
    HISIM_CHECK_MSG(!target_is_distributed(f.target) || f.ranks_p > 0,
                    "--target=" << target_name(f.target)
                                << " requires --ranks=R with R >= 2 a power "
                                   "of two (--ranks=1 means single-node)");
    HISIM_CHECK_MSG(target_is_distributed(f.target) || f.ranks_p == 0,
                    "--ranks has no effect with --target="
                        << target_name(f.target));
    if (f.has_backend) {
      HISIM_CHECK_MSG(f.target == Target::DistributedSerial ||
                          f.target == Target::DistributedThreaded,
                      "--backend has no effect with --target="
                          << target_name(f.target));
      HISIM_CHECK_MSG(f.target == target_for_backend(f.backend),
                      "--target=" << target_name(f.target)
                                  << " contradicts --backend="
                                  << dist::backend_kind_name(f.backend)
                                  << " (drop one of the two)");
    }
    HISIM_CHECK_MSG(f.level2 == 0 || f.target == Target::Multilevel ||
                        f.target == Target::DistributedSerial ||
                        f.target == Target::DistributedThreaded,
                    "--level2 has no effect with --target="
                        << target_name(f.target));
    return f.target;
  }
  HISIM_CHECK_MSG(!f.has_backend || f.ranks_p > 0,
                  "--backend requires --ranks=R (or a distributed --target)");
  if (f.ranks_p > 0) return target_for_backend(f.backend);
  if (f.level2 > 0) return Target::Multilevel;
  return Target::Hierarchical;
}

Options engine_options(const Flags& f) {
  Options o;
  o.target = effective_target(f);
  o.strategy = f.strategy;
  o.limit = f.limit;
  o.opt_level = f.opt_level;
  o.level2_limit = f.level2;
  o.kernel_tier = f.kernel;
  o.process_qubits = f.ranks_p;
  o.noise = noise_model(f);
  o.trace = !f.trace.empty();
  return o;
}

}  // namespace hisim::cli
