#pragma once

#include "circuit/circuit.hpp"
#include "dist/hisvsim_dist.hpp"
#include "dist/iqs_baseline.hpp"
#include "partition/multilevel.hpp"
#include "partition/partition.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

/// Public facade of the HiSVSIM library: one-call hierarchical simulation
/// with strategy/limit/rank configuration and a consolidated report. The
/// lower-level modules (partition::, sv::, dist::) remain available for
/// fine-grained control; this header is the API a downstream user adopts.
namespace hisim {

struct RunOptions {
  partition::Strategy strategy = partition::Strategy::DagP;
  /// Working-set limit Lm. 0 = auto: local qubit count when distributed,
  /// otherwise the LLC-sized qubit count (21 qubits ~ 32 MiB) capped at
  /// the circuit width.
  unsigned limit = 0;
  /// Number of process ("rank") qubits; 2^p simulated ranks. 0 = single
  /// node.
  unsigned process_qubits = 0;
  /// Second-level (cache) limit; nonzero enables multi-level simulation.
  unsigned level2_limit = 0;
  std::uint64_t seed = 0x5eed;
  dist::NetworkModel net;
  /// Exchange backend for distributed runs: Serial (synchronous reference)
  /// or Threaded (per-host workers, measured comm/compute overlap).
  dist::BackendKind backend = dist::BackendKind::Serial;
};

struct RunReport {
  bool distributed = false;
  std::size_t parts = 0;
  std::size_t inner_parts = 0;
  double partition_seconds = 0;
  sv::HierarchicalStats hier;   // single-node path
  dist::DistRunReport dist;     // distributed path

  double total_seconds() const {
    return distributed ? dist.total_seconds() : hier.total_seconds();
  }
};

class HiSvSim {
 public:
  explicit HiSvSim(RunOptions opt = {}) : opt_(opt) {}

  const RunOptions& options() const { return opt_; }

  /// Builds the partitioning this configuration would use (single node).
  partition::Partitioning plan(const Circuit& c) const;

  /// Single-node hierarchical simulation from |0...0>.
  sv::StateVector simulate(const Circuit& c, RunReport* report = nullptr) const;

  /// Simulated-cluster run over 2^process_qubits ranks; the returned state
  /// is gathered from the rank-local vectors.
  sv::StateVector simulate_distributed(const Circuit& c,
                                       RunReport* report = nullptr) const;

 private:
  unsigned effective_limit(const Circuit& c) const;
  RunOptions opt_;
};

}  // namespace hisim
