#pragma once

#include "hisvsim/engine.hpp"
#include "partition/partition.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

/// DEPRECATED one-call facade, kept as a thin shim over the Engine /
/// ExecutionPlan / Result API (hisvsim/engine.hpp) so out-of-tree callers
/// still build. Every simulate() call re-compiles the circuit — new code
/// should compile once with hisim::Engine and execute the plan many times.
namespace hisim {

/// \deprecated Use hisim::Options (engine.hpp). Retained field-for-field.
struct RunOptions {
  partition::Strategy strategy = partition::Strategy::DagP;
  /// Working-set limit Lm. 0 = auto: local qubit count when distributed,
  /// otherwise the LLC-sized qubit count (21 qubits ~ 32 MiB) capped at
  /// the circuit width.
  unsigned limit = 0;
  /// Number of process ("rank") qubits; 2^p simulated ranks. 0 = single
  /// node.
  unsigned process_qubits = 0;
  /// Second-level (cache) limit; nonzero enables multi-level simulation.
  unsigned level2_limit = 0;
  std::uint64_t seed = 0x5eed;
  dist::NetworkModel net;
  /// Exchange backend for distributed runs: Serial (synchronous reference)
  /// or Threaded (per-host workers, measured comm/compute overlap).
  dist::BackendKind backend = dist::BackendKind::Serial;
};

/// \deprecated Use hisim::Result (engine.hpp), which is flat and carries
/// compile vs execute timings plus a JSON serializer.
struct RunReport {
  bool distributed = false;
  std::size_t parts = 0;
  std::size_t inner_parts = 0;
  double partition_seconds = 0;
  sv::HierarchicalStats hier;   // single-node path
  dist::DistRunReport dist;     // distributed path

  double total_seconds() const {
    return distributed ? dist.total_seconds() : hier.total_seconds();
  }
};

/// \deprecated Use hisim::Engine::compile() + ExecutionPlan::execute().
class HiSvSim {
 public:
  explicit HiSvSim(RunOptions opt = {}) : opt_(opt) {}

  const RunOptions& options() const { return opt_; }

  /// Builds the partitioning this configuration would use (single node).
  partition::Partitioning plan(const Circuit& c) const;

  /// Single-node hierarchical simulation from |0...0>. Compiles and
  /// executes in one shot — partitioning cost is paid on every call.
  sv::StateVector simulate(const Circuit& c, RunReport* report = nullptr) const;

  /// Simulated-cluster run over 2^process_qubits ranks; the returned state
  /// is gathered from the rank-local vectors.
  sv::StateVector simulate_distributed(const Circuit& c,
                                       RunReport* report = nullptr) const;

 private:
  /// Engine options equivalent to this configuration for the given
  /// circuit (`distributed` selects the target family).
  Options engine_options(const Circuit& c, bool distributed) const;
  unsigned effective_limit(const Circuit& c) const;
  RunOptions opt_;
};

}  // namespace hisim
