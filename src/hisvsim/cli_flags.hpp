#pragma once

#include <string>
#include <vector>

#include "dist/backend.hpp"
#include "hisvsim/engine.hpp"
#include "noise/noise_model.hpp"
#include "partition/partition.hpp"
#include "sv/kernel_dispatch.hpp"

/// Flag parsing for the `hisim` CLI, factored into the library so it is
/// unit-testable (tests/test_cli_flags.cpp) and throws hisim::Error with
/// actionable messages instead of silently "fixing" bad input.
namespace hisim::cli {

/// One `--sweep name=start:stop:steps` axis: `steps` evenly spaced values
/// from start to stop inclusive (steps == 1 pins the single value start).
struct SweepSpec {
  std::string name;
  double start = 0.0;
  double stop = 0.0;
  unsigned steps = 0;
};

struct Flags {
  unsigned qubits = 14;
  unsigned limit = 0;
  /// Circuit optimization level (--opt-level=0|1); matches
  /// Options::opt_level, default on. Values > 1 are rejected.
  unsigned opt_level = 1;
  /// Process qubits p: --ranks=R requires R = 2^p. R = 1 gives p = 0,
  /// which (matching the old CLI) means single-node execution.
  unsigned ranks_p = 0;
  unsigned level2 = 0;
  /// Apply-kernel tier (--kernel=auto|scalar|simd); matches
  /// Options::kernel_tier. Unknown names are rejected at parse time,
  /// simd on a host without the SIMD build/CPU support fails at compile.
  sv::KernelTier kernel = sv::KernelTier::Auto;
  std::size_t shots = 0;
  bool json = false;
  bool exact = false;
  std::string dot;
  /// Chrome-trace output path (--trace=out.json): enables the trace
  /// session for the run and writes the collected spans + metrics there
  /// (loadable in Perfetto / chrome://tracing; see common/trace.hpp).
  /// Empty = tracing off. The CLI validates writability before running.
  std::string trace;
  partition::Strategy strategy = partition::Strategy::DagP;
  dist::BackendKind backend = dist::BackendKind::Serial;
  bool has_backend = false;  // --backend= given explicitly
  /// Explicit --target= wins; otherwise derived (see effective_target).
  /// A target that contradicts --backend/--level2 is rejected.
  bool has_target = false;
  Target target = Target::Hierarchical;
  /// Fixed parameter values from repeated --bind name=value flags.
  ParamBinding bindings;
  /// Sweep axes from repeated --sweep name=start:stop:steps flags; the run
  /// executes their cartesian product (see sweep_points). A name may not
  /// be both bound and swept, nor repeated.
  std::vector<SweepSpec> sweeps;
  /// Noise channels from repeated --noise kind=value flags, in flag
  /// order. Kinds: depolarizing | bitflip | phaseflip | damping (channel
  /// after every gate on each touched qubit) and readout (confusion
  /// probability applied to sampled shots, p01 = p10 = value). Requires
  /// --trajectories; the value must be a probability in [0, 1].
  std::vector<std::pair<std::string, double>> noise;
  /// Number of stochastic trajectories (--trajectories=N). 0 = ideal run.
  std::size_t trajectories = 0;
  /// Base of the per-trajectory seed stream (--noise-seed=N).
  std::uint64_t noise_seed = 0x7261;
  /// Pauli-string observables from repeated --observable flags (parsed by
  /// sv::PauliString::parse at run time).
  std::vector<std::string> observables;
};

/// Parses `args` (flags only, no program/command words). Throws
/// hisim::Error on an unknown flag, a malformed number, an unknown
/// strategy/backend/target name, or a --ranks value that is not a power
/// of two (ranks map to 2^p simulated processes — a non-power-of-two
/// count has no p and used to be silently rounded up).
///
/// --bind and --sweep are repeatable and accept both `--bind name=value`
/// (two arguments) and `--bind=name=value`. Contradictions — a parameter
/// both bound and swept, or given twice — are rejected here; a parameter
/// the plan declares but the flags leave unbound is rejected at execute
/// with an Error naming it.
Flags parse_flags(const std::vector<std::string>& args);

/// The execute_sweep input for `f`: the cartesian product of the sweep
/// axes (last axis fastest), each point also carrying every --bind value.
/// Empty when no --sweep was given (plain single execution).
std::vector<ParamBinding> sweep_points(const Flags& f);

/// The target a `hisim run` uses: the explicit --target if given, else
/// derived from the other flags — distributed-serial/-threaded (per
/// --backend) when --ranks is set, multilevel when --level2 is set,
/// hierarchical otherwise. Throws when an explicit target contradicts the
/// flags it needs (e.g. a distributed target without --ranks).
Target effective_target(const Flags& f);

/// The noise model described by the --noise flags (empty when none).
/// Throws hisim::Error on a probability outside [0, 1] — same
/// reject-bad-input policy as the rest of the parser.
noise::NoiseModel noise_model(const Flags& f);

/// Engine options equivalent to `f` for a `hisim run` invocation
/// (includes the --noise model, so noisy plans compile their slots).
Options engine_options(const Flags& f);

}  // namespace hisim::cli
