#pragma once

#include <string>
#include <vector>

#include "dist/backend.hpp"
#include "hisvsim/engine.hpp"
#include "partition/partition.hpp"

/// Flag parsing for the `hisim` CLI, factored into the library so it is
/// unit-testable (tests/test_cli_flags.cpp) and throws hisim::Error with
/// actionable messages instead of silently "fixing" bad input.
namespace hisim::cli {

struct Flags {
  unsigned qubits = 14;
  unsigned limit = 0;
  /// Process qubits p: --ranks=R requires R = 2^p. R = 1 gives p = 0,
  /// which (matching the old CLI) means single-node execution.
  unsigned ranks_p = 0;
  unsigned level2 = 0;
  std::size_t shots = 0;
  bool json = false;
  bool exact = false;
  std::string dot;
  partition::Strategy strategy = partition::Strategy::DagP;
  dist::BackendKind backend = dist::BackendKind::Serial;
  bool has_backend = false;  // --backend= given explicitly
  /// Explicit --target= wins; otherwise derived (see effective_target).
  /// A target that contradicts --backend/--level2 is rejected.
  bool has_target = false;
  Target target = Target::Hierarchical;
};

/// Parses `args` (flags only, no program/command words). Throws
/// hisim::Error on an unknown flag, a malformed number, an unknown
/// strategy/backend/target name, or a --ranks value that is not a power
/// of two (ranks map to 2^p simulated processes — a non-power-of-two
/// count has no p and used to be silently rounded up).
Flags parse_flags(const std::vector<std::string>& args);

/// The target a `hisim run` uses: the explicit --target if given, else
/// derived from the other flags — distributed-serial/-threaded (per
/// --backend) when --ranks is set, multilevel when --level2 is set,
/// hierarchical otherwise. Throws when an explicit target contradicts the
/// flags it needs (e.g. a distributed target without --ranks).
Target effective_target(const Flags& f);

/// Engine options equivalent to `f` for a `hisim run` invocation.
Options engine_options(const Flags& f);

}  // namespace hisim::cli
