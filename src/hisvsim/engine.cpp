#include "hisvsim/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dag/circuit_dag.hpp"
#include "dist/backend.hpp"
#include "dist/iqs_baseline.hpp"
#include "partition/multilevel.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"

namespace hisim {

const char* target_name(Target t) {
  switch (t) {
    case Target::Flat: return "flat";
    case Target::Hierarchical: return "hierarchical";
    case Target::Multilevel: return "multilevel";
    case Target::DistributedSerial: return "distributed-serial";
    case Target::DistributedThreaded: return "distributed-threaded";
    case Target::IqsBaseline: return "iqs-baseline";
  }
  return "?";
}

Target parse_target(const std::string& name) {
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline})
    if (name == target_name(t)) return t;
  throw Error("unknown target '" + name +
              "' (expected flat, hierarchical, multilevel, "
              "distributed-serial, distributed-threaded, iqs-baseline)");
}

bool target_is_distributed(Target t) {
  return t == Target::DistributedSerial || t == Target::DistributedThreaded ||
         t == Target::IqsBaseline;
}

Target target_for_backend(dist::BackendKind kind) {
  return kind == dist::BackendKind::Threaded ? Target::DistributedThreaded
                                             : Target::DistributedSerial;
}

namespace detail {

/// The immutable compiled state an ExecutionPlan shares. Everything here
/// is written once by Engine::compile and only read afterwards.
struct PlanImpl {
  Options opt;
  Circuit circuit;  // single-node / IQS targets execute this directly
  /// Symbolic parameter registry of the compiled circuit (id order).
  /// Non-empty iff the plan is parameterized, in which case every execute
  /// resolves ExecOptions::bindings against it and materializes gate
  /// matrices per binding — the plan structure never changes.
  std::vector<std::string> param_names;
  unsigned effective_limit = 0;
  unsigned effective_level2 = 0;
  double compile_seconds = 0.0;
  double partition_seconds = 0.0;
  std::size_t parts = 0;
  std::size_t inner_parts = 0;
  unsigned ranks = 0;  // 0 for single-node targets

  partition::Partitioning single;     // Target::Hierarchical
  partition::TwoLevelPartitioning two;  // Target::Multilevel
  dist::DistPlan dplan;               // Target::Distributed*

  const Circuit& executed_circuit() const {
    return target_is_distributed(opt.target) &&
                   opt.target != Target::IqsBaseline
               ? dplan.circuit
               : circuit;
  }
};

}  // namespace detail

using detail::PlanImpl;

namespace {

/// Working-set limit actually used: explicit limit capped at the circuit
/// width, else the LLC-sized default (2^21 amplitudes = 32 MiB).
unsigned effective_limit(const Options& opt, unsigned num_qubits) {
  if (opt.limit != 0) return std::min(opt.limit, num_qubits);
  return std::min(21u, num_qubits);
}

dist::CommBackend* backend_for_target(Target t) {
  return t == Target::DistributedThreaded ? &dist::threaded_backend()
                                          : &dist::serial_backend();
}

void append_kv(std::ostringstream& os, bool& first, const char* key) {
  if (!first) os << ",\n";
  first = false;
  os << "  \"" << key << "\": ";
}

void json_num(std::ostringstream& os, bool& first, const char* key,
              double v) {
  append_kv(os, first, key);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void json_int(std::ostringstream& os, bool& first, const char* key,
              unsigned long long v) {
  append_kv(os, first, key);
  os << v;
}

void json_quoted(std::ostringstream& os, const std::string& v) {
  os << '"';
  for (char ch : v) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

void json_str(std::ostringstream& os, bool& first, const char* key,
              const std::string& v) {
  append_kv(os, first, key);
  json_quoted(os, v);
}

}  // namespace

double Result::total_seconds() const {
  if (ranks > 0) return compute_seconds + comm.modeled_max_seconds;
  return gather_seconds + apply_seconds + scatter_seconds;
}

double Result::total_seconds_overlapped() const {
  return dist::pipelined_total_seconds(part_times, total_seconds());
}

double Result::comm_ratio() const {
  const double total = total_seconds();
  return total > 0.0 ? comm.modeled_max_seconds / total : 0.0;
}

std::string Result::to_json() const {
  std::ostringstream os;
  bool first = true;
  os << "{\n";
  json_str(os, first, "circuit", circuit);
  json_int(os, first, "qubits", qubits);
  json_int(os, first, "gates", gates);
  json_str(os, first, "target", target_name(target));
  json_str(os, first, "strategy", partition::strategy_name(strategy));
  json_int(os, first, "parts", parts);
  json_int(os, first, "inner_parts", inner_parts);
  json_num(os, first, "compile_seconds", compile_seconds);
  json_num(os, first, "partition_seconds", partition_seconds);
  // Deliberately NOT named "execute_seconds": the pre-Engine CLI schema
  // used that key for gate-apply time (now "apply_seconds"), and a silent
  // meaning change would skew old consumers; a missing key fails loudly.
  json_num(os, first, "execute_wall_seconds", execute_seconds);
  if (ranks > 0) {
    json_int(os, first, "ranks", ranks);
    json_int(os, first, "comm_exchanges", comm.exchanges);
    json_int(os, first, "comm_messages", comm.messages_total);
    json_int(os, first, "comm_bytes", comm.bytes_total);
    json_num(os, first, "comm_seconds_modeled", comm.modeled_max_seconds);
    json_num(os, first, "comm_seconds_modeled_avg", comm.modeled_avg_seconds);
    json_num(os, first, "comm_seconds_measured", measured_comm_seconds);
    json_num(os, first, "wall_seconds_measured", measured_wall_seconds);
    json_num(os, first, "overlap_seconds_measured", measured_overlap_seconds);
    json_num(os, first, "compute_seconds", compute_seconds);
    json_num(os, first, "total_seconds_overlapped", total_seconds_overlapped());
    json_num(os, first, "comm_ratio", comm_ratio());
  } else {
    json_num(os, first, "gather_seconds", gather_seconds);
    json_num(os, first, "apply_seconds", apply_seconds);
    json_num(os, first, "scatter_seconds", scatter_seconds);
    json_int(os, first, "outer_bytes_moved", outer_bytes_moved);
    json_int(os, first, "inner_bytes_touched", inner_bytes_touched);
    json_num(os, first, "flops", flops);
  }
  json_num(os, first, "total_seconds", total_seconds());
  if (!params.empty()) {
    append_kv(os, first, "params");
    os << '{';
    bool pfirst = true;
    for (const auto& [name, value] : params) {
      if (!pfirst) os << ", ";
      pfirst = false;
      json_quoted(os, name);
      // 17 significant digits: the printed angle re-binds to the exact
      // double that executed (same round-trip policy as qasm/writer.cpp).
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", value);
      os << ": " << buf;
    }
    os << '}';
  }
  json_int(os, first, "shots", samples.size());
  if (!observables.empty()) {
    append_kv(os, first, "observables");
    os << '[';
    for (std::size_t i = 0; i < observables.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", observables[i]);
      os << (i ? "," : "") << buf;
    }
    os << ']';
  }
  append_kv(os, first, "norm");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12f", norm);
  os << buf << "\n}";
  return os.str();
}

const Options& ExecutionPlan::options() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->opt;
}
Target ExecutionPlan::target() const { return options().target; }
const Circuit& ExecutionPlan::circuit() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->executed_circuit();
}
std::size_t ExecutionPlan::num_parts() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->parts;
}
std::size_t ExecutionPlan::num_inner_parts() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->inner_parts;
}
unsigned ExecutionPlan::num_ranks() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->ranks;
}
double ExecutionPlan::compile_seconds() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->compile_seconds;
}
double ExecutionPlan::partition_seconds() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->partition_seconds;
}
const std::vector<std::string>& ExecutionPlan::param_names() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->param_names;
}

ExecutionPlan Engine::compile(const Circuit& c, const Options& opt) {
  return Engine(opt).compile(c);
}

ExecutionPlan Engine::compile(const Circuit& c) const {
  Timer compile_timer;
  auto impl = std::make_shared<PlanImpl>();
  impl->opt = opt_;
  impl->param_names = c.param_names();
  // The distributed targets execute dplan.circuit (the possibly-lowered
  // copy compile_plan makes); storing the input here too would just
  // double the plan's circuit memory.
  if (opt_.target != Target::DistributedSerial &&
      opt_.target != Target::DistributedThreaded)
    impl->circuit = c;
  const unsigned n = c.num_qubits();

  switch (opt_.target) {
    case Target::Flat:
      impl->parts = 1;  // the whole circuit, unpartitioned
      break;

    case Target::Hierarchical: {
      impl->effective_limit = effective_limit(opt_, n);
      const dag::CircuitDag dag(c);
      partition::PartitionOptions po;
      po.strategy = opt_.strategy;
      po.limit = impl->effective_limit;
      po.seed = opt_.seed;
      impl->single = partition::make_partition(dag, po);
      impl->parts = impl->single.num_parts();
      impl->partition_seconds = impl->single.partition_seconds;
      break;
    }

    case Target::Multilevel: {
      impl->effective_limit = effective_limit(opt_, n);
      impl->effective_level2 =
          opt_.level2_limit == 0
              ? std::max(2u, impl->effective_limit / 2)
              : std::min(opt_.level2_limit, impl->effective_limit);
      const dag::CircuitDag dag(c);
      partition::PartitionOptions po;
      po.strategy = opt_.strategy;
      po.limit = impl->effective_limit;
      po.seed = opt_.seed;
      impl->two = partition::partition_two_level(dag, po,
                                                 impl->effective_level2);
      impl->parts = impl->two.level1.num_parts();
      impl->inner_parts = impl->two.total_inner_parts();
      impl->partition_seconds = impl->two.level1.partition_seconds;
      break;
    }

    case Target::DistributedSerial:
    case Target::DistributedThreaded: {
      HISIM_CHECK_MSG(opt_.process_qubits > 0,
                      "distributed targets require process_qubits > 0");
      dist::DistOptions dopt;
      dopt.process_qubits = opt_.process_qubits;
      dopt.part.strategy = opt_.strategy;
      dopt.part.limit = opt_.limit;  // 0 = clamp to local qubits
      dopt.part.seed = opt_.seed;
      dopt.level2_limit = opt_.level2_limit;
      impl->dplan = dist::compile_plan(c, dopt);
      impl->parts = impl->dplan.num_parts();
      impl->inner_parts = impl->dplan.inner_parts;
      impl->partition_seconds = impl->dplan.partition_seconds;
      impl->ranks = 1u << opt_.process_qubits;
      break;
    }

    case Target::IqsBaseline:
      HISIM_CHECK_MSG(opt_.process_qubits > 0 && opt_.process_qubits < n,
                      "iqs-baseline requires 0 < process_qubits < qubits");
      impl->ranks = 1u << opt_.process_qubits;
      break;
  }

  impl->compile_seconds = compile_timer.seconds();
  return ExecutionPlan(std::move(impl));
}

namespace {

/// Loads a full state vector into the identity-layout shards of `st`.
void load_initial(dist::DistState& st, const sv::StateVector& init) {
  HISIM_CHECK_MSG(init.num_qubits() == st.num_qubits(),
                  "initial state has " << init.num_qubits()
                                       << " qubits, plan expects "
                                       << st.num_qubits());
  const unsigned l = st.layout().local_qubits();
  const Index ldim = st.layout().local_dim();
  for (unsigned r = 0; r < st.num_ranks(); ++r) {
    const Index base = Index{r} << l;
    sv::StateVector& shard = st.local(r);
    for (Index i = 0; i < ldim; ++i) shard[i] = init[base | i];
  }
}

}  // namespace

Result ExecutionPlan::execute(const ExecOptions& opts) const {
  HISIM_CHECK_MSG(impl_, "execute() called on an empty ExecutionPlan");
  const PlanImpl& plan = *impl_;
  const Options& opt = plan.opt;
  const unsigned n = plan.executed_circuit().num_qubits();

  // Resolve the binding context up front: a parameterized plan needs every
  // parameter covered, a concrete plan rejects stray bindings — both with
  // an Error naming the parameter. The values are indexed by param id, the
  // order Circuit::param registered them.
  std::vector<double> param_values;
  if (!plan.param_names.empty() || !opts.bindings.empty())
    param_values = resolve_binding(plan.param_names, opts.bindings);

  // Materialize the executed circuit for the targets that apply it whole.
  // The distributed-serial/-threaded targets instead materialize per step
  // inside dist::execute_plan, overlapping with the exchange. This is the
  // only per-binding cost: the plan structure (partitioning, layouts,
  // exchange schedule) is shared untouched.
  const bool bind_whole =
      !plan.param_names.empty() && (opt.target == Target::Flat ||
                                    opt.target == Target::Hierarchical ||
                                    opt.target == Target::Multilevel ||
                                    opt.target == Target::IqsBaseline);
  const Circuit bound_storage =
      bind_whole ? plan.executed_circuit().bound(param_values) : Circuit();
  const Circuit& c = bind_whole ? bound_storage : plan.executed_circuit();

  Result r;
  r.params = opts.bindings;
  r.circuit = c.name();
  r.qubits = n;
  r.gates = c.num_gates();
  r.target = opt.target;
  r.strategy = opt.strategy;
  r.parts = plan.parts;
  r.inner_parts = plan.inner_parts;
  r.ranks = plan.ranks;
  r.compile_seconds = plan.compile_seconds;
  r.partition_seconds = plan.partition_seconds;

  sv::StateVector state;
  Timer wall;
  if (!target_is_distributed(opt.target)) {
    if (opts.initial_state) {
      HISIM_CHECK_MSG(opts.initial_state->num_qubits() == n,
                      "initial state has "
                          << opts.initial_state->num_qubits()
                          << " qubits, plan expects " << n);
      state = *opts.initial_state;
    } else {
      state = sv::StateVector(n);
    }
    switch (opt.target) {
      case Target::Flat: {
        Timer t;
        sv::FlatSimulator().run(c, state);
        r.apply_seconds = t.seconds();
        break;
      }
      case Target::Hierarchical:
      case Target::Multilevel: {
        const sv::HierarchicalStats stats =
            opt.target == Target::Hierarchical
                ? sv::HierarchicalSimulator().run(c, plan.single, state)
                : sv::HierarchicalSimulator().run(c, plan.two, state);
        r.gather_seconds = stats.gather_seconds;
        r.apply_seconds = stats.execute_seconds;
        r.scatter_seconds = stats.scatter_seconds;
        r.outer_bytes_moved = stats.outer_bytes_moved;
        r.inner_bytes_touched = stats.inner_bytes_touched;
        r.flops = stats.flops;
        break;
      }
      default: break;  // unreachable
    }
    r.execute_seconds = wall.seconds();
  } else {
    dist::DistState st(n, opt.process_qubits);
    if (opts.initial_state) load_initial(st, *opts.initial_state);
    if (opt.target == Target::IqsBaseline) {
      const dist::IqsRunReport ir =
          dist::IqsBaselineSimulator().run(c, st, opts.net);
      r.compute_seconds = ir.compute_seconds;
      r.comm = ir.comm;
    } else {
      const dist::DistRunReport dr =
          dist::execute_plan(plan.dplan, st, opts.net,
                             backend_for_target(opt.target), param_values);
      r.compute_seconds = dr.compute_seconds;
      r.comm = dr.comm;
      r.part_times = dr.part_times;
      r.measured_comm_seconds = dr.measured_comm_seconds;
      r.measured_wall_seconds = dr.measured_wall_seconds;
      r.measured_overlap_seconds = dr.measured_overlap_seconds;
    }
    r.execute_seconds = wall.seconds();
    // Gathering the sharded state is O(2^n); report-only executions
    // (want_state off, no shots/observables) get the norm from the
    // shards instead and skip it.
    if (opts.want_state || opts.shots > 0 || !opts.observables.empty()) {
      state = st.to_state_vector();
    } else {
      double norm = 0.0;
      for (unsigned rk = 0; rk < st.num_ranks(); ++rk)
        norm += st.local(rk).norm();
      r.norm = norm;
      return r;
    }
  }

  r.norm = state.norm();
  if (opts.shots > 0) {
    Rng rng(opts.shot_seed);
    r.samples = sv::sample(state, opts.shots, rng);
  }
  r.observables.reserve(opts.observables.size());
  for (const sv::PauliString& p : opts.observables)
    r.observables.push_back(sv::expectation(state, p));
  if (opts.want_state) r.state = std::move(state);
  return r;
}

std::vector<Result> ExecutionPlan::execute_sweep(
    std::span<const ParamBinding> points, const ExecOptions& opts) const {
  HISIM_CHECK_MSG(impl_, "execute_sweep() called on an empty ExecutionPlan");
  // Validate every point on the calling thread before any work is
  // spawned: binding errors (unbound/unknown/non-finite) surface here
  // with the point index, never from inside a pool worker.
  for (std::size_t i = 0; i < points.size(); ++i) {
    try {
      resolve_binding(impl_->param_names, points[i]);
    } catch (const Error& e) {
      throw Error("sweep point " + std::to_string(i) + ": " + e.what());
    }
  }

  // Shared ExecOptions preconditions fail here too, not on a worker.
  if (opts.initial_state) {
    const unsigned n = impl_->executed_circuit().num_qubits();
    HISIM_CHECK_MSG(opts.initial_state->num_qubits() == n,
                    "initial state has " << opts.initial_state->num_qubits()
                                         << " qubits, plan expects " << n);
  }

  // Each point is an independent execute() on private state, so the
  // points fan out over the worker pool; for_range regions issued inside
  // execute() run inline (nested-region rule), keeping one pool for the
  // whole sweep. Any residual throw (allocation failure, internal check)
  // is captured and rethrown on the calling thread — an exception must
  // never escape into the pool's worker loop.
  std::vector<Result> results(points.size());
  std::mutex err_mu;
  std::exception_ptr first_error;
  parallel::for_range(
      0, points.size(),
      [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) {
          try {
            ExecOptions point_opts = opts;
            point_opts.bindings = points[i];
            results[i] = execute(point_opts);
          } catch (...) {
            std::lock_guard lk(err_mu);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      },
      /*grain=*/1);
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace hisim
