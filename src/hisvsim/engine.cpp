#include "hisvsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <sstream>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "dag/circuit_dag.hpp"
#include "dist/backend.hpp"
#include "dist/iqs_baseline.hpp"
#include "hisvsim/plan_impl.hpp"
#include "noise/trajectory.hpp"
#include "partition/multilevel.hpp"
#include "sv/hierarchical.hpp"
#include "sv/simulator.hpp"

namespace hisim {

const char* target_name(Target t) {
  switch (t) {
    case Target::Flat: return "flat";
    case Target::Hierarchical: return "hierarchical";
    case Target::Multilevel: return "multilevel";
    case Target::DistributedSerial: return "distributed-serial";
    case Target::DistributedThreaded: return "distributed-threaded";
    case Target::IqsBaseline: return "iqs-baseline";
  }
  return "?";
}

Target parse_target(const std::string& name) {
  for (Target t : {Target::Flat, Target::Hierarchical, Target::Multilevel,
                   Target::DistributedSerial, Target::DistributedThreaded,
                   Target::IqsBaseline})
    if (name == target_name(t)) return t;
  throw Error("unknown target '" + name +
              "' (expected flat, hierarchical, multilevel, "
              "distributed-serial, distributed-threaded, iqs-baseline)");
}

bool target_is_distributed(Target t) {
  return t == Target::DistributedSerial || t == Target::DistributedThreaded ||
         t == Target::IqsBaseline;
}

Target target_for_backend(dist::BackendKind kind) {
  return kind == dist::BackendKind::Threaded ? Target::DistributedThreaded
                                             : Target::DistributedSerial;
}

using detail::PlanImpl;

namespace {

/// Working-set limit actually used: explicit limit capped at the circuit
/// width, else the LLC-sized default (2^21 amplitudes = 32 MiB).
unsigned effective_limit(const Options& opt, unsigned num_qubits) {
  if (opt.limit != 0) return std::min(opt.limit, num_qubits);
  return std::min(21u, num_qubits);
}

dist::CommBackend* backend_for_target(Target t) {
  return t == Target::DistributedThreaded ? &dist::threaded_backend()
                                          : &dist::serial_backend();
}

void append_kv(std::ostringstream& os, bool& first, const char* key) {
  if (!first) os << ",\n";
  first = false;
  os << "  \"" << key << "\": ";
}

void json_num(std::ostringstream& os, bool& first, const char* key,
              double v) {
  append_kv(os, first, key);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void json_int(std::ostringstream& os, bool& first, const char* key,
              unsigned long long v) {
  append_kv(os, first, key);
  os << v;
}

void json_quoted(std::ostringstream& os, const std::string& v) {
  os << '"';
  for (char ch : v) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

void json_str(std::ostringstream& os, bool& first, const char* key,
              const std::string& v) {
  append_kv(os, first, key);
  json_quoted(os, v);
}

/// Emits a ParamBinding as a "params" object. 17 significant digits: the
/// printed angle re-binds to the exact double that executed (same
/// round-trip policy as qasm/writer.cpp).
void json_params(std::ostringstream& os, bool& first,
                 const ParamBinding& params) {
  if (params.empty()) return;
  append_kv(os, first, "params");
  os << '{';
  bool pfirst = true;
  for (const auto& [name, value] : params) {
    if (!pfirst) os << ", ";
    pfirst = false;
    json_quoted(os, name);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    os << ": " << buf;
  }
  os << '}';
}

/// Fans fn(i) over the worker pool, one index per chunk. Any throw
/// (allocation failure, internal check) is captured and rethrown on the
/// calling thread — an exception must never escape into the pool's
/// worker loop. Shared by execute_sweep and execute_trajectories.
void run_indexed_on_pool(std::size_t count,
                         const std::function<void(std::size_t)>& fn) {
  Mutex err_mu;
  std::exception_ptr first_error;
  parallel::for_range(
      0, count,
      [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) {
          try {
            fn(static_cast<std::size_t>(i));
          } catch (...) {
            MutexLock lk(err_mu);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      },
      /*grain=*/1);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

double Result::total_seconds() const {
  if (ranks > 0) return compute_seconds + comm.modeled_max_seconds;
  return gather_seconds + apply_seconds + scatter_seconds;
}

double Result::total_seconds_overlapped() const {
  return dist::pipelined_total_seconds(part_times, total_seconds());
}

double Result::comm_ratio() const {
  const double total = total_seconds();
  return total > 0.0 ? comm.modeled_max_seconds / total : 0.0;
}

std::string Result::to_json() const {
  std::ostringstream os;
  bool first = true;
  os << "{\n";
  json_str(os, first, "circuit", circuit);
  json_int(os, first, "qubits", qubits);
  json_int(os, first, "gates", gates);
  json_str(os, first, "target", target_name(target));
  json_str(os, first, "strategy", partition::strategy_name(strategy));
  json_int(os, first, "opt_level", opt_level);
  json_int(os, first, "gates_pre_opt", gates_pre_opt);
  json_str(os, first, "kernel", kernel);
  if (!opt_passes.empty()) {
    // Per-pass removed-gate counts, pipeline order ("gates_pre_opt" minus
    // the sum of these is "gates").
    append_kv(os, first, "opt_passes");
    os << '{';
    for (std::size_t i = 0; i < opt_passes.size(); ++i) {
      if (i) os << ", ";
      json_quoted(os, opt_passes[i].pass);
      os << ": " << opt_passes[i].removed;
    }
    os << '}';
  }
  json_int(os, first, "parts", parts);
  json_int(os, first, "inner_parts", inner_parts);
  json_num(os, first, "compile_seconds", compile_seconds);
  json_num(os, first, "partition_seconds", partition_seconds);
  // Deliberately NOT named "execute_seconds": the pre-Engine CLI schema
  // used that key for gate-apply time (now "apply_seconds"), and a silent
  // meaning change would skew old consumers; a missing key fails loudly.
  json_num(os, first, "execute_wall_seconds", execute_seconds);
  if (ranks > 0) {
    json_int(os, first, "ranks", ranks);
    json_int(os, first, "comm_exchanges", comm.exchanges);
    json_int(os, first, "comm_messages", comm.messages_total);
    json_int(os, first, "comm_bytes", comm.bytes_total);
    json_num(os, first, "comm_seconds_modeled", comm.modeled_max_seconds);
    json_num(os, first, "comm_seconds_modeled_avg", comm.modeled_avg_seconds);
    json_num(os, first, "comm_seconds_measured", measured_comm_seconds);
    json_num(os, first, "wall_seconds_measured", measured_wall_seconds);
    json_num(os, first, "overlap_seconds_measured", measured_overlap_seconds);
    json_num(os, first, "compute_seconds", compute_seconds);
    json_num(os, first, "total_seconds_overlapped", total_seconds_overlapped());
    json_num(os, first, "comm_ratio", comm_ratio());
  } else {
    json_num(os, first, "gather_seconds", gather_seconds);
    json_num(os, first, "apply_seconds", apply_seconds);
    json_num(os, first, "scatter_seconds", scatter_seconds);
    json_int(os, first, "outer_bytes_moved", outer_bytes_moved);
    json_int(os, first, "inner_bytes_touched", inner_bytes_touched);
    json_num(os, first, "flops", flops);
  }
  json_num(os, first, "total_seconds", total_seconds());
  if (!metrics.empty()) {
    // The flat per-phase metrics map (trace::MetricsRegistry naming);
    // present on every target so benches and the CLI get the breakdown
    // without enabling tracing.
    append_kv(os, first, "metrics");
    os << trace::metrics_to_json(metrics);
  }
  json_params(os, first, params);
  json_int(os, first, "shots", samples.size());
  if (!observables.empty()) {
    append_kv(os, first, "observables");
    os << '[';
    for (std::size_t i = 0; i < observables.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", observables[i]);
      os << (i ? "," : "") << buf;
    }
    os << ']';
  }
  append_kv(os, first, "norm");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12f", norm);
  os << buf << "\n}";
  return os.str();
}

const Options& ExecutionPlan::options() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->opt;
}
Target ExecutionPlan::target() const { return options().target; }
sv::KernelTier ExecutionPlan::kernel_tier() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->kernels->tier;
}
const Circuit& ExecutionPlan::circuit() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->executed_circuit();
}
std::size_t ExecutionPlan::num_parts() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->parts;
}
std::size_t ExecutionPlan::num_inner_parts() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->inner_parts;
}
unsigned ExecutionPlan::num_ranks() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->ranks;
}
double ExecutionPlan::compile_seconds() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->compile_seconds;
}
double ExecutionPlan::partition_seconds() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->partition_seconds;
}
const std::vector<std::string>& ExecutionPlan::param_names() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->param_names;
}
const OptReport& ExecutionPlan::opt_report() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->opt_report;
}
bool ExecutionPlan::noisy() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return !impl_->noise.empty();
}
std::size_t ExecutionPlan::num_noise_slots() const {
  HISIM_CHECK_MSG(impl_, "empty ExecutionPlan");
  return impl_->noise.slots.size();
}

ExecutionPlan Engine::compile(const Circuit& c, const Options& opt) {
  return Engine(opt).compile(c);
}

ExecutionPlan Engine::compile(const Circuit& c) const {
  // Options::trace starts (or restarts) the collection window here so
  // one session covers this compile and every execute that follows.
  if (opt_.trace && !trace::TraceSession::active())
    trace::TraceSession::start();
  Timer compile_timer;
  trace::TraceSpan compile_span("compile", "engine");
  auto impl = std::make_shared<PlanImpl>();
  impl->opt = opt_;
  // Resolve the kernel tier up front: a forced-but-unavailable tier must
  // fail here, not on a worker thread mid-execute.
  impl->kernels = &sv::kernel_ops(opt_.kernel_tier);
  // Noise instrumentation happens before any structural work: the
  // reserved slots are ordinary (identity) gates of the circuit every
  // downstream artifact — DAG, partitioning, lowering, the exchange
  // schedule — accounts for exactly once. Trajectories later substitute
  // sampled operators into the slots without touching that structure.
  Circuit instrumented;
  const Circuit* source = &c;
  double instrument_seconds = 0.0;
  if (!opt_.noise.empty()) {
    Timer t;
    trace::TraceSpan span("instrument", "engine");
    noise::Instrumented in = noise::instrument(c, opt_.noise);
    instrumented = std::move(in.circuit);
    impl->noise = std::move(in.noise);
    source = &instrumented;
    instrument_seconds = t.seconds();
  }
  // Optimization runs after instrumentation and before partitioning, so a
  // removed gate is removed from every downstream artifact, and the slots
  // (barriers to every pass) keep noisy structure intact. A circuit the
  // pipeline leaves untouched compiles to a bit-identical plan.
  Circuit optimized;
  double optimize_seconds = 0.0;
  if (opt_.opt_level != 0) {
    Timer t;
    trace::TraceSpan span("optimize", "engine");
    optimized = optimize(*source, opt_.opt_level, &impl->opt_report);
    source = &optimized;
    optimize_seconds = t.seconds();
  } else {
    impl->opt_report.gates_before = impl->opt_report.gates_after =
        source->num_gates();
  }
  impl->param_names = source->param_names();
  // The distributed targets execute dplan.circuit (the possibly-lowered
  // copy compile_plan makes); storing the input here too would just
  // double the plan's circuit memory.
  if (opt_.target != Target::DistributedSerial &&
      opt_.target != Target::DistributedThreaded)
    impl->circuit = *source;
  const unsigned n = source->num_qubits();

  switch (opt_.target) {
    case Target::Flat:
      impl->parts = 1;  // the whole circuit, unpartitioned
      break;

    case Target::Hierarchical: {
      impl->effective_limit = effective_limit(opt_, n);
      const dag::CircuitDag dag = [&] {
        trace::TraceSpan span("dag.build", "engine");
        return dag::CircuitDag(*source);
      }();
      partition::PartitionOptions po;
      po.strategy = opt_.strategy;
      po.limit = impl->effective_limit;
      po.seed = opt_.seed;
      impl->single = partition::make_partition(dag, po);
      impl->parts = impl->single.num_parts();
      impl->partition_seconds = impl->single.partition_seconds;
      break;
    }

    case Target::Multilevel: {
      impl->effective_limit = effective_limit(opt_, n);
      impl->effective_level2 =
          opt_.level2_limit == 0
              ? std::max(2u, impl->effective_limit / 2)
              : std::min(opt_.level2_limit, impl->effective_limit);
      const dag::CircuitDag dag = [&] {
        trace::TraceSpan span("dag.build", "engine");
        return dag::CircuitDag(*source);
      }();
      partition::PartitionOptions po;
      po.strategy = opt_.strategy;
      po.limit = impl->effective_limit;
      po.seed = opt_.seed;
      impl->two = partition::partition_two_level(dag, po,
                                                 impl->effective_level2);
      impl->parts = impl->two.level1.num_parts();
      impl->inner_parts = impl->two.total_inner_parts();
      impl->partition_seconds = impl->two.level1.partition_seconds;
      break;
    }

    case Target::DistributedSerial:
    case Target::DistributedThreaded: {
      HISIM_CHECK_MSG(opt_.process_qubits > 0,
                      "distributed targets require process_qubits > 0");
      dist::DistOptions dopt;
      dopt.process_qubits = opt_.process_qubits;
      dopt.part.strategy = opt_.strategy;
      dopt.part.limit = opt_.limit;  // 0 = clamp to local qubits
      dopt.part.seed = opt_.seed;
      dopt.level2_limit = opt_.level2_limit;
      impl->dplan = dist::compile_plan(*source, dopt);
      impl->parts = impl->dplan.num_parts();
      impl->inner_parts = impl->dplan.inner_parts;
      impl->partition_seconds = impl->dplan.partition_seconds;
      impl->ranks = 1u << opt_.process_qubits;
      break;
    }

    case Target::IqsBaseline:
      HISIM_CHECK_MSG(opt_.process_qubits > 0 && opt_.process_qubits < n,
                      "iqs-baseline requires 0 < process_qubits < qubits");
      impl->ranks = 1u << opt_.process_qubits;
      break;
  }

  impl->compile_seconds = compile_timer.seconds();
  // Compile-phase breakdown, merged into every execution's
  // Result::metrics. Zero when the phase did not run — the keys stay
  // stable across configurations so trace diffs line up.
  impl->compile_metrics["compile.total_seconds"] = impl->compile_seconds;
  impl->compile_metrics["compile.partition_seconds"] =
      impl->partition_seconds;
  impl->compile_metrics["compile.instrument_seconds"] = instrument_seconds;
  impl->compile_metrics["compile.optimize_seconds"] = optimize_seconds;
  impl->compile_metrics["compile.gates_removed"] = static_cast<double>(
      impl->opt_report.gates_before - impl->opt_report.gates_after);
  if constexpr (checked_build) {
    // Every gate kind is unitary by construction except raw Unitary-kind
    // matrices: Gate::kraus deliberately skips the unitarity check, and
    // trajectory operators enter through it. A plan is norm-preserving
    // when no such matrix slipped in — the execute-side invariant keys
    // off this flag.
    impl->norm_preserving = true;
    for (const Gate& g : impl->executed_circuit().gates())
      if (g.kind == GateKind::Unitary && !g.custom.is_unitary(1e-9)) {
        impl->norm_preserving = false;
        break;
      }
  }
  ExecutionPlan plan(std::move(impl));
  // Checked builds deep-validate every freshly compiled plan right at the
  // compile/execute seam (see ExecutionPlan::validate), so a partitioner
  // or scheduler bug aborts here, not as a wrong amplitude much later.
  if constexpr (checked_build) {
    trace::TraceSpan span("validate", "engine");
    plan.validate();
  }
  return plan;
}

namespace {

/// Loads a full state vector into the identity-layout shards of `st`.
void load_initial(dist::DistState& st, const sv::StateVector& init) {
  HISIM_CHECK_MSG(init.num_qubits() == st.num_qubits(),
                  "initial state has " << init.num_qubits()
                                       << " qubits, plan expects "
                                       << st.num_qubits());
  const unsigned l = st.layout().local_qubits();
  const Index ldim = st.layout().local_dim();
  for (unsigned r = 0; r < st.num_ranks(); ++r) {
    const Index base = Index{r} << l;
    sv::StateVector& shard = st.local(r);
    for (Index i = 0; i < ldim; ++i) shard[i] = init[base | i];
  }
}

}  // namespace

Result ExecutionPlan::execute(const ExecOptions& opts) const {
  HISIM_CHECK_MSG(impl_, "execute() called on an empty ExecutionPlan");
  return execute_impl(opts, {});
}

Result ExecutionPlan::execute_impl(const ExecOptions& opts,
                                   std::span<const Gate> noise_ops) const {
  const PlanImpl& plan = *impl_;
  const Options& opt = plan.opt;
  const unsigned n = plan.executed_circuit().num_qubits();
  trace::TraceSpan exec_span("execute", "engine");

  // Resolve the binding context up front: a parameterized plan needs every
  // parameter covered, a concrete plan rejects stray bindings — both with
  // an Error naming the parameter. The values are indexed by param id, the
  // order Circuit::param registered them.
  std::vector<double> param_values;
  if (!plan.param_names.empty() || !opts.bindings.empty())
    param_values = resolve_binding(plan.param_names, opts.bindings);

  // Materialize the executed circuit for the targets that apply it whole:
  // bind symbolic angles, then substitute the trajectory's sampled
  // operators into the reserved noise slots. The distributed-serial/
  // -threaded targets instead materialize per step inside
  // dist::execute_plan, overlapping with the exchange. This is the only
  // per-binding/per-trajectory cost: the plan structure (partitioning,
  // layouts, exchange schedule) is shared untouched.
  const bool whole_target =
      opt.target == Target::Flat || opt.target == Target::Hierarchical ||
      opt.target == Target::Multilevel || opt.target == Target::IqsBaseline;
  const bool bind_whole = !plan.param_names.empty() && whole_target;
  const bool noise_whole =
      whole_target && !noise_ops.empty() && !plan.noise.slots.empty();
  Circuit storage;
  const Circuit* executed = &plan.executed_circuit();
  if (bind_whole || noise_whole) {
    trace::TraceSpan bind_span("bind", "engine");
    if (bind_whole) {
      storage = executed->bound(param_values);
      executed = &storage;
    }
    if (noise_whole) {
      if (!bind_whole) storage = *executed;
      noise::apply_ops(storage, noise_ops);
      executed = &storage;
    }
  }
  const Circuit& c = *executed;

  Result r;
  r.params = opts.bindings;
  r.circuit = c.name();
  r.qubits = n;
  r.gates = c.num_gates();
  r.target = opt.target;
  r.strategy = opt.strategy;
  r.opt_level = opt.opt_level;
  r.gates_pre_opt = plan.opt_report.gates_before;
  r.opt_passes = plan.opt_report.deltas;
  r.kernel = plan.kernels->name;
  r.parts = plan.parts;
  r.inner_parts = plan.inner_parts;
  r.ranks = plan.ranks;
  r.compile_seconds = plan.compile_seconds;
  r.partition_seconds = plan.partition_seconds;
  r.metrics = plan.compile_metrics;

  sv::StateVector state;
  Timer wall;
  if (!target_is_distributed(opt.target)) {
    if (opts.initial_state) {
      HISIM_CHECK_MSG(opts.initial_state->num_qubits() == n,
                      "initial state has "
                          << opts.initial_state->num_qubits()
                          << " qubits, plan expects " << n);
      state = *opts.initial_state;
    } else {
      state = sv::StateVector(n);
    }
    switch (opt.target) {
      case Target::Flat: {
        Timer t;
        trace::TraceSpan span("apply", "sv");
        sv::FlatSimulator().run(c, state, plan.kernels);
        r.apply_seconds = t.seconds();
        break;
      }
      case Target::Hierarchical:
      case Target::Multilevel: {
        const sv::HierarchicalStats stats =
            opt.target == Target::Hierarchical
                ? sv::HierarchicalSimulator().run(c, plan.single, state,
                                                  plan.kernels)
                : sv::HierarchicalSimulator().run(c, plan.two, state, 0,
                                                  plan.kernels);
        r.gather_seconds = stats.gather_seconds;
        r.apply_seconds = stats.execute_seconds;
        r.scatter_seconds = stats.scatter_seconds;
        r.outer_bytes_moved = stats.outer_bytes_moved;
        r.inner_bytes_touched = stats.inner_bytes_touched;
        r.flops = stats.flops;
        r.metrics["gather.seconds"] = stats.gather_seconds;
        r.metrics["scatter.seconds"] = stats.scatter_seconds;
        r.metrics["sv.outer_bytes_moved"] =
            static_cast<double>(stats.outer_bytes_moved);
        r.metrics["sv.inner_bytes_touched"] =
            static_cast<double>(stats.inner_bytes_touched);
        r.metrics["sv.flops"] = stats.flops;
        break;
      }
      default: break;  // unreachable
    }
    r.metrics["apply.seconds"] = r.apply_seconds;
    r.execute_seconds = wall.seconds();
  } else {
    dist::DistState st(n, opt.process_qubits);
    if (opts.initial_state) load_initial(st, *opts.initial_state);
    if (opt.target == Target::IqsBaseline) {
      const dist::IqsRunReport ir =
          dist::IqsBaselineSimulator().run(c, st, opts.net, nullptr,
                                           plan.kernels);
      r.compute_seconds = ir.compute_seconds;
      r.comm = ir.comm;
      r.metrics["compute.seconds"] = ir.compute_seconds;
      r.metrics["exchange.count"] = static_cast<double>(ir.comm.exchanges);
      r.metrics["exchange.bytes"] = static_cast<double>(ir.comm.bytes_total);
      r.metrics["exchange.messages"] =
          static_cast<double>(ir.comm.messages_total);
    } else {
      const dist::DistRunReport dr =
          dist::execute_plan(plan.dplan, st, opts.net,
                             backend_for_target(opt.target), param_values,
                             noise_ops, plan.kernels);
      r.compute_seconds = dr.compute_seconds;
      r.comm = dr.comm;
      r.part_times = dr.part_times;
      r.measured_comm_seconds = dr.measured_comm_seconds;
      r.measured_wall_seconds = dr.measured_wall_seconds;
      r.measured_overlap_seconds = dr.measured_overlap_seconds;
      // The distributed executor's run registry, flattened: per-step
      // distributions of the modeled/measured phase times plus the
      // exchange counters.
      r.metrics.insert(dr.metrics.begin(), dr.metrics.end());
    }
    r.execute_seconds = wall.seconds();
    // Gathering the sharded state is O(2^n); report-only executions
    // (want_state off, no shots/observables) get the norm from the
    // shards instead and skip it.
    if (opts.want_state || opts.shots > 0 || !opts.observables.empty()) {
      Timer gather_timer;
      trace::TraceSpan gather_span("gather", "engine");
      state = st.to_state_vector();
      r.metrics["gather.seconds"] = gather_timer.seconds();
    } else {
      double norm = 0.0;
      for (unsigned rk = 0; rk < st.num_ranks(); ++rk)
        norm += st.local(rk).norm();
      r.norm = norm;
      if (noise_ops.empty() && plan.norm_preserving)
        sv::validate_norm_preserved(
            opts.initial_state ? opts.initial_state->norm() : 1.0, r.norm,
            "sharded execute (report-only)");
      r.metrics["execute.wall_seconds"] = r.execute_seconds;
      return r;
    }
  }

  r.metrics["execute.wall_seconds"] = r.execute_seconds;
  r.norm = state.norm();
  // Checked builds: a unitary segment (no sampled trajectory operators, no
  // non-unitary matrices) must preserve the initial norm — a violation
  // means an apply kernel or the exchange lost or duplicated amplitudes.
  if (noise_ops.empty() && plan.norm_preserving)
    sv::validate_norm_preserved(
        opts.initial_state ? opts.initial_state->norm() : 1.0, r.norm,
        "execute");
  // A zero-norm state can only come from a Kraus-unraveling trajectory
  // whose sampled branch annihilated the state (weight 0): it contributes
  // nothing to any pooled statistic, so it draws no shots rather than
  // failing the sampler.
  if (opts.shots > 0 && r.norm > 0.0) {
    Rng rng(opts.shot_seed);
    r.samples = sv::sample(state, opts.shots, rng);
  }
  r.observables.reserve(opts.observables.size());
  for (const sv::PauliString& p : opts.observables)
    r.observables.push_back(sv::expectation(state, p));
  if (opts.want_state) r.state = std::move(state);
  return r;
}

std::vector<Result> ExecutionPlan::execute_sweep(
    std::span<const ParamBinding> points, const ExecOptions& opts) const {
  HISIM_CHECK_MSG(impl_, "execute_sweep() called on an empty ExecutionPlan");
  // Validate every point on the calling thread before any work is
  // spawned: binding errors (unbound/unknown/non-finite) surface here
  // with the point index, never from inside a pool worker.
  for (std::size_t i = 0; i < points.size(); ++i) {
    try {
      resolve_binding(impl_->param_names, points[i]);
    } catch (const Error& e) {
      throw Error("sweep point " + std::to_string(i) + ": " + e.what());
    }
  }

  // Shared ExecOptions preconditions fail here too, not on a worker.
  if (opts.initial_state) {
    const unsigned n = impl_->executed_circuit().num_qubits();
    HISIM_CHECK_MSG(opts.initial_state->num_qubits() == n,
                    "initial state has " << opts.initial_state->num_qubits()
                                         << " qubits, plan expects " << n);
  }

  // Each point is an independent execute() on private state, so the
  // points fan out over the worker pool; for_range regions issued inside
  // execute() run inline (nested-region rule), keeping one pool for the
  // whole sweep.
  std::vector<Result> results(points.size());
  run_indexed_on_pool(points.size(), [&](std::size_t i) {
    // One span per point, on whichever worker thread ran it — the sweep
    // fan-out shows up in the trace as parallel tracks.
    trace::TraceSpan span("sweep.point", "engine");
    span.arg("index", static_cast<std::int64_t>(i));
    ExecOptions point_opts = opts;
    point_opts.bindings = points[i];
    results[i] = execute(point_opts);
  });
  return results;
}

Result ExecutionPlan::execute_trajectory(std::uint64_t seed,
                                         const ExecOptions& opts) const {
  HISIM_CHECK_MSG(impl_,
                  "execute_trajectory() called on an empty ExecutionPlan");
  // Replaying a recorded seed against an un-noisy plan would silently
  // return an ideal result — the plan the seed came from was compiled
  // with Options::noise, so this one must be too.
  HISIM_CHECK_MSG(!impl_->noise.empty(),
                  "execute_trajectory() requires a plan compiled with "
                  "Options::noise (this plan is ideal)");
  // The whole trajectory is a pure function of (plan, opts, seed): slot
  // operators come from the seed's noise stream, shots from its shot
  // stream, readout flips from its readout stream. Re-running with a
  // recorded seed therefore replays the trajectory bit-identically.
  const std::vector<Gate> ops = noise::sample_ops(impl_->noise, seed);
  ExecOptions x = opts;
  x.shot_seed = noise::shot_seed(seed);
  Result r = execute_impl(x, ops);
  noise::apply_readout(r.samples, impl_->noise, seed);
  return r;
}

NoisyResult ExecutionPlan::execute_trajectories(
    std::size_t num, const TrajectoryOptions& opts) const {
  HISIM_CHECK_MSG(impl_,
                  "execute_trajectories() called on an empty ExecutionPlan");
  const PlanImpl& plan = *impl_;
  HISIM_CHECK_MSG(!plan.noise.empty(),
                  "execute_trajectories() requires a plan compiled with "
                  "Options::noise (this plan is ideal)");
  HISIM_CHECK_MSG(num > 0, "execute_trajectories() needs >= 1 trajectory");

  // Shared preconditions fail on the calling thread, never on a worker
  // (same policy as execute_sweep): binding coverage and the initial
  // state's shape are identical for every trajectory.
  if (!plan.param_names.empty() || !opts.exec.bindings.empty())
    (void)resolve_binding(plan.param_names, opts.exec.bindings);
  if (opts.exec.initial_state) {
    const unsigned n = plan.executed_circuit().num_qubits();
    HISIM_CHECK_MSG(opts.exec.initial_state->num_qubits() == n,
                    "initial state has "
                        << opts.exec.initial_state->num_qubits()
                        << " qubits, plan expects " << n);
  }

  const std::size_t k = opts.exec.observables.size();
  NoisyResult nr;
  nr.circuit = plan.executed_circuit().name();
  nr.qubits = plan.executed_circuit().num_qubits();
  nr.target = plan.opt.target;
  nr.trajectories = num;
  nr.noise_slots = plan.noise.slots.size();
  nr.shots_per_trajectory = opts.exec.shots;
  nr.params = opts.exec.bindings;
  nr.noise_seed = opts.seed;
  nr.compile_seconds = plan.compile_seconds;
  nr.seeds.resize(num);
  nr.weights.resize(num);
  std::vector<double> obs(num * k);
  std::vector<std::vector<Index>> samples(opts.exec.shots > 0 ? num : 0);

  // Trajectories are independent executes on private state, so they fan
  // out over the worker pool exactly like sweep points; nested for_range
  // regions inside execute run inline. Results land in per-trajectory
  // slots and are reduced serially below, so the aggregate is
  // deterministic regardless of worker scheduling.
  Timer wall;
  run_indexed_on_pool(num, [&](std::size_t t) {
    trace::TraceSpan span("trajectory", "engine");
    span.arg("index", static_cast<std::int64_t>(t));
    const std::uint64_t seed = noise::trajectory_seed(opts.seed, t);
    ExecOptions x = opts.exec;
    x.want_state = false;
    Result r = execute_trajectory(seed, x);
    nr.seeds[t] = seed;
    nr.weights[t] = r.norm;
    for (std::size_t j = 0; j < k; ++j) obs[t * k + j] = r.observables[j];
    if (!samples.empty()) samples[t] = std::move(r.samples);
  });
  nr.execute_seconds = wall.seconds();

  // Serial aggregation in trajectory order — fp summation order is fixed.
  for (double w : nr.weights) nr.total_weight += w;
  nr.mean_weight = nr.total_weight / static_cast<double>(num);
  nr.observable_means.assign(k, 0.0);
  nr.observable_stddevs.assign(k, 0.0);
  nr.observable_stderrs.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double mean = 0.0;
    for (std::size_t t = 0; t < num; ++t) mean += obs[t * k + j];
    mean /= static_cast<double>(num);
    double var = 0.0;
    for (std::size_t t = 0; t < num; ++t) {
      const double d = obs[t * k + j] - mean;
      var += d * d;
    }
    var = num > 1 ? var / static_cast<double>(num - 1) : 0.0;
    nr.observable_means[j] = mean;
    nr.observable_stddevs[j] = std::sqrt(var);
    nr.observable_stderrs[j] = std::sqrt(var / static_cast<double>(num));
  }
  for (std::size_t t = 0; t < samples.size(); ++t)
    for (Index s : samples[t]) nr.counts[s] += nr.weights[t];
  return nr;
}

std::vector<std::pair<double, Index>> NoisyResult::top_counts(
    std::size_t k) const {
  std::vector<std::pair<double, Index>> top;
  top.reserve(counts.size());
  for (const auto& [outcome, w] : counts) top.emplace_back(w, outcome);
  std::sort(top.rbegin(), top.rend());
  if (top.size() > k) top.resize(k);
  return top;
}

std::string NoisyResult::to_json() const {
  std::ostringstream os;
  bool first = true;
  os << "{\n";
  json_str(os, first, "circuit", circuit);
  json_int(os, first, "qubits", qubits);
  json_str(os, first, "target", target_name(target));
  json_int(os, first, "trajectories", trajectories);
  json_int(os, first, "noise_slots", noise_slots);
  json_int(os, first, "noise_seed", noise_seed);
  json_int(os, first, "shots_per_trajectory", shots_per_trajectory);
  json_int(os, first, "shots_total", shots_per_trajectory * trajectories);
  json_params(os, first, params);
  json_num(os, first, "total_weight", total_weight);
  json_num(os, first, "mean_weight", mean_weight);
  json_num(os, first, "compile_seconds", compile_seconds);
  json_num(os, first, "execute_wall_seconds", execute_seconds);
  json_num(os, first, "trajectories_per_second",
           execute_seconds > 0.0
               ? static_cast<double>(trajectories) / execute_seconds
               : 0.0);
  const auto array = [&](const char* key, const std::vector<double>& xs) {
    append_kv(os, first, key);
    os << '[';
    for (std::size_t i = 0; i < xs.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", xs[i]);
      os << (i ? "," : "") << buf;
    }
    os << ']';
  };
  if (!observable_means.empty()) {
    array("observable_means", observable_means);
    array("observable_stddevs", observable_stddevs);
    array("observable_stderrs", observable_stderrs);
  }
  json_int(os, first, "distinct_outcomes", counts.size());
  if (!counts.empty()) {
    // Top outcomes by pooled weight (full histograms scale as 2^n).
    const std::vector<std::pair<double, Index>> top = top_counts(16);
    append_kv(os, first, "top_counts");
    os << '{';
    for (std::size_t i = 0; i < top.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.12g", top[i].first);
      os << (i ? ", " : "") << '"' << top[i].second << "\": " << buf;
    }
    os << '}';
  }
  os << "\n}";
  return os.str();
}

}  // namespace hisim
