#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "dist/dist_state.hpp"
#include "dist/hisvsim_dist.hpp"
#include "noise/noise_model.hpp"
#include "opt/pass_manager.hpp"
#include "partition/partition.hpp"
#include "sv/kernel_dispatch.hpp"
#include "sv/observables.hpp"
#include "sv/state_vector.hpp"

/// The compile-once / run-many public API of HiSVSIM.
///
/// The paper's core claim is that partitioning cost is *amortized* over
/// execution. This header is that claim as an API: Engine::compile() pays
/// the full compile cost — multilevel partitioning, wide-gate lowering,
/// rank-layout planning, the exchange schedule — exactly once and returns
/// an immutable ExecutionPlan; ExecutionPlan::execute() runs it as many
/// times as the workload needs (shots, QAOA parameter points, concurrent
/// requests), each run paying only amplitude movement and gate
/// application. Plans are cheaply copyable handles to shared immutable
/// state and safe to execute concurrently from multiple threads.
///
/// Compiling a *parameterized* circuit (Circuit::param + symbolic gate
/// factories) stretches the amortization across whole sweep workloads:
/// every compile artifact depends only on circuit structure, so the plan
/// is built once and each sweep point is a pure execute — pass the point's
/// angles via ExecOptions::bindings, or a whole batch of points to
/// ExecutionPlan::execute_sweep(), which fans out over the worker pool.
namespace hisim {

/// Where and how a compiled circuit executes. Single-node targets operate
/// on one dense state vector; distributed targets shard it over 2^p
/// simulated ranks (Options::process_qubits).
enum class Target {
  /// Reference flat simulator: every gate applied to the full vector.
  Flat,
  /// Single-level gather-execute-scatter over a partitioning (Alg. 1).
  Hierarchical,
  /// Two-level partitioning: node-sized parts, cache-sized inner parts.
  Multilevel,
  /// Per-part redistribution executor with the synchronous exchange
  /// backend (reference; deterministic timing).
  DistributedSerial,
  /// Same executor with the threaded backend: exchange data movement
  /// overlaps shard-local compute, overlap is measured.
  DistributedThreaded,
  /// IQS-style fixed-layout baseline (one pairwise exchange per gate that
  /// mixes a process qubit) — the paper's comparison arm.
  IqsBaseline,
};

/// "flat" | "hierarchical" | "multilevel" | "distributed-serial" |
/// "distributed-threaded" | "iqs-baseline".
const char* target_name(Target t);
/// Inverse of target_name(); throws hisim::Error on anything else.
Target parse_target(const std::string& name);
/// True for the three sharded-state targets.
bool target_is_distributed(Target t);
/// The distributed target that runs on the given exchange backend — the
/// one mapping shared by the CLI, the legacy facade, and the benches.
Target target_for_backend(dist::BackendKind kind);

/// Compile-time configuration: everything the plan depends on.
struct Options {
  Target target = Target::Hierarchical;
  partition::Strategy strategy = partition::Strategy::DagP;
  /// Working-set limit Lm. 0 = auto: local qubit count when distributed,
  /// otherwise the LLC-sized qubit count (21 qubits ~ 32 MiB) capped at
  /// the circuit width.
  unsigned limit = 0;
  /// Second-level (cache) limit for Multilevel and the distributed
  /// targets' inner level. 0 = auto for Target::Multilevel (half the
  /// effective limit, at least 2), off for the distributed targets.
  unsigned level2_limit = 0;
  /// Number of process ("rank") qubits; 2^p simulated ranks. Required
  /// (> 0) for the distributed targets, ignored otherwise.
  unsigned process_qubits = 0;
  std::uint64_t seed = 0x5eed;
  /// Circuit optimization level: 0 compiles the circuit exactly as given,
  /// 1 (default) runs the canonicalization pipeline (opt/pass_manager.hpp)
  /// before partitioning — inverse-pair cancellation, same-axis rotation
  /// merging, identity-angle drops, diagonal commutation. NoiseSlot and
  /// unbound symbolic gates are barriers, so noisy and parameterized plans
  /// keep their structure regardless of level. Anything > 1 throws.
  unsigned opt_level = 1;
  /// Apply-kernel tier for every gate execution under this plan (see
  /// sv/kernel_dispatch.hpp). Auto resolves once at compile to SIMD when
  /// the binary and CPU support it (overridable via the HISIM_KERNEL
  /// environment variable), Scalar otherwise; forcing Simd on a host
  /// without AVX2 makes compile() throw. All tiers agree within strict
  /// rounding equivalence, so this is a performance knob, not a
  /// correctness one.
  sv::KernelTier kernel_tier = sv::KernelTier::Auto;
  /// Noise model compiled into the plan: identity "noise slots" are
  /// reserved in the circuit structure after every matching gate, so
  /// partitioning, lowering, and the exchange schedule account for them
  /// exactly once. A plain execute() of a noisy plan runs the ideal
  /// circuit (slots are exact no-ops); stochastic trajectories sample
  /// concrete operators into the slots via execute_trajectories().
  noise::NoiseModel noise;
  /// Starts a trace session (common/trace.hpp) when compile() begins, so
  /// compile and every subsequent execute record spans. Off by default:
  /// disabled tracing costs one relaxed atomic load per instrumentation
  /// site. The CLI --trace flag and the HISIM_TRACE environment variable
  /// are the other two ways to enable collection; retrieve the trace with
  /// trace::TraceSession::chrome_json() / write().
  bool trace = false;
};

/// Per-execution configuration: everything the plan does *not* depend on.
struct ExecOptions {
  /// Starting state; nullptr = |0...0>. Must have the plan's qubit count.
  const sv::StateVector* initial_state = nullptr;
  /// Measurement shots drawn from the final state (deterministic for a
  /// fixed shot_seed). 0 = none.
  std::size_t shots = 0;
  std::uint64_t shot_seed = 0xC11;
  /// Pauli-string observables evaluated on the final state; one value per
  /// entry lands in Result::observables.
  std::vector<sv::PauliString> observables;
  /// Values for the plan's symbolic parameters (see Circuit::param), by
  /// name. A parameterized plan requires every parameter bound — an
  /// unbound parameter, an unknown name, or a non-finite value throws
  /// hisim::Error naming the parameter. Must be empty for concrete plans.
  ParamBinding bindings;
  /// When false, Result::state is left empty — report-only runs (e.g. the
  /// benches) then skip the O(2^n) full-state gather on the sharded
  /// targets entirely (unless shots/observables require it). norm is
  /// still reported.
  bool want_state = true;
  /// Analytic network model charged during distributed execution. The
  /// plan does not depend on it, so sweeping network parameters (latency
  /// / bandwidth sensitivity) is a pure execute loop over one plan.
  dist::NetworkModel net;
};

/// Flat, single-headed report of one execution, carrying both the plan's
/// compile-side accounting (constant across executions of one plan) and
/// this execution's measurements. to_json() is the single definition of
/// the report fields used by the CLI and the benchmark drivers.
struct Result {
  // -- circuit / configuration identity ------------------------------
  std::string circuit;
  unsigned qubits = 0;
  std::size_t gates = 0;           // as compiled (after optimization)
  Target target = Target::Hierarchical;
  partition::Strategy strategy = partition::Strategy::DagP;
  unsigned opt_level = 1;
  std::size_t gates_pre_opt = 0;   // before optimization (== gates at 0)
  /// Per-pass removed-gate counts, pipeline order; empty at opt_level 0.
  std::vector<PassDelta> opt_passes;
  /// Resolved kernel tier the run executed with ("scalar" | "simd").
  std::string kernel;

  // -- compile side (copied from the plan; identical every execution) -
  std::size_t parts = 0;
  std::size_t inner_parts = 0;
  unsigned ranks = 0;              // 0 for single-node targets
  double compile_seconds = 0.0;    // full wall cost of Engine::compile()
  double partition_seconds = 0.0;  // partitioning share of compile

  // -- execute side: single-node gather-execute-scatter breakdown -----
  double gather_seconds = 0.0;
  double apply_seconds = 0.0;      // gate execution inside inner vectors
  double scatter_seconds = 0.0;
  Index outer_bytes_moved = 0;
  Index inner_bytes_touched = 0;
  double flops = 0.0;

  // -- execute side: distributed accounting ---------------------------
  double compute_seconds = 0.0;    // shard-local apply wall, summed
  dist::CommStats comm;            // modeled network cost
  /// One (modeled comm, measured compute) pair per part, execution order.
  std::vector<std::pair<double, double>> part_times;
  double measured_comm_seconds = 0.0;
  double measured_wall_seconds = 0.0;
  double measured_overlap_seconds = 0.0;

  // -- execute side: totals and outputs -------------------------------
  /// Measured wall-clock seconds of this execute() call (simulation
  /// phase; excludes shots/observable post-processing).
  double execute_seconds = 0.0;
  double norm = 0.0;
  sv::StateVector state;           // final state (gathered when sharded)
  std::vector<Index> samples;      // ExecOptions::shots outcomes
  std::vector<double> observables; // one per ExecOptions::observables
  /// The parameter values this execution was bound with (copied from
  /// ExecOptions::bindings), so sweep outputs are self-describing; empty
  /// for concrete plans. Serialized by to_json() as "params".
  ParamBinding params;

  /// Flat per-phase metrics (trace::MetricsRegistry naming, `module.noun`
  /// keys): the plan's compile-phase breakdown ("compile.*") merged with
  /// this execution's phase numbers — per-step exchange/apply
  /// distributions on the distributed targets, gather/apply/scatter
  /// seconds on the hierarchical ones. Serialized by to_json() as
  /// "metrics" on every target; keys vary by target, values are counts,
  /// seconds, or bytes per the key's suffix.
  std::map<std::string, double> metrics;

  /// Modeled serial total: compute + slowest-host comm for distributed
  /// targets, the gather/apply/scatter sum otherwise.
  double total_seconds() const;
  /// Pipelined estimate over part_times (falls back to total_seconds()).
  double total_seconds_overlapped() const;
  /// Fraction of total_seconds() spent communicating, in [0, 1].
  double comm_ratio() const;

  /// Serializes every report field above (not the state or raw samples)
  /// as a JSON object. The one place report fields are defined.
  std::string to_json() const;
};

/// Per-call configuration of a Monte-Carlo trajectory run.
struct TrajectoryOptions {
  /// Per-trajectory execution settings: bindings, observables, initial
  /// state, and network model apply to every trajectory; `shots` draws
  /// that many measurement shots *per trajectory* (pooled, with readout
  /// error applied, into NoisyResult::counts). `exec.shot_seed` and
  /// `exec.want_state` are ignored — each trajectory derives its own
  /// shot/readout streams from its trajectory seed (replayable), and
  /// per-trajectory states are never retained (replay one via
  /// ExecutionPlan::execute_trajectory when the state is needed).
  ExecOptions exec;
  /// Root of the per-trajectory seed stream: trajectory t runs under
  /// noise::trajectory_seed(seed, t), recorded in NoisyResult::seeds.
  std::uint64_t seed = 0x7261;
};

/// Aggregated report of one execute_trajectories() run. Observable
/// statistics use the weighted estimator <psi~|P|psi~> per trajectory
/// (psi~ unnormalized), whose mean is an unbiased estimate of
/// Tr(P eps(rho)) under both Pauli and Kraus-unraveled channels; for
/// purely Pauli models every weight is exactly 1.
struct NoisyResult {
  std::string circuit;
  unsigned qubits = 0;
  Target target = Target::Hierarchical;
  std::size_t trajectories = 0;
  std::size_t noise_slots = 0;        // reserved insertion points per run
  std::size_t shots_per_trajectory = 0;

  /// Per-trajectory seeds, in trajectory order: feeding seeds[t] to
  /// execute_trajectory() replays trajectory t bit-identically (state,
  /// samples, and readout corruption included).
  std::vector<std::uint64_t> seeds;
  /// Per-trajectory weights ||psi~||^2 (the ideal run's norm — 1 up to
  /// fp rounding — for Pauli-only models; E[weight] = 1 for
  /// trace-preserving Kraus unravelings, with variance that grows with
  /// the number of non-unitary slots — attach damping channels to
  /// specific gates/qubits rather than blanket-instrumenting).
  std::vector<double> weights;
  double total_weight = 0.0;
  double mean_weight = 0.0;

  /// One entry per TrajectoryOptions::exec.observables: mean, sample
  /// standard deviation, and standard error over the trajectories.
  std::vector<double> observable_means;
  std::vector<double> observable_stddevs;
  std::vector<double> observable_stderrs;

  /// Pooled shot histogram: outcome -> weighted count (weight 1 per shot
  /// for Pauli-only models), readout confusion already applied.
  std::map<Index, double> counts;

  /// The parameter values every trajectory was bound with and the base
  /// of the seed stream (TrajectoryOptions::seed) — together with the
  /// plan's Options these make the report re-runnable, the same
  /// self-describing convention as Result::params.
  ParamBinding params;
  std::uint64_t noise_seed = 0;

  double compile_seconds = 0.0;  // copied from the plan
  double execute_seconds = 0.0;  // wall clock of the whole trajectory fan-out

  /// The k heaviest pooled outcomes, weight-descending — the one
  /// definition shared by to_json() and the CLI's text report.
  std::vector<std::pair<double, Index>> top_counts(std::size_t k) const;

  /// Report fields (not the raw seeds/weights vectors) as a JSON object,
  /// in the same style as Result::to_json().
  std::string to_json() const;
};

namespace detail {
struct PlanImpl;
}

/// An immutable compiled circuit: cheap to copy (shared handle), safe to
/// execute from many threads concurrently. Obtain via Engine::compile().
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Runs the plan once. Every call starts from |0...0> (or
  /// opts.initial_state), so executions are independent and repeatable:
  /// the same plan and ExecOptions yield bit-identical states. No
  /// partitioning, lowering, or layout planning happens here — for a
  /// parameterized plan only the gate matrices are materialized against
  /// opts.bindings (which must then cover every parameter).
  Result execute(const ExecOptions& opts = {}) const;

  /// Runs the plan once per sweep point, concurrently over the worker
  /// pool, and returns one Result per point in input order. Each point is
  /// an independent execute() with opts.bindings replaced by that point
  /// (everything else in `opts` — shots, observables, want_state — applies
  /// to every point; prefer want_state = false for large sweeps, which
  /// would otherwise hold every point's full state in memory at once).
  /// Every point is validated against the plan's parameters up front, so
  /// a malformed binding throws on the calling thread before any work
  /// starts.
  std::vector<Result> execute_sweep(std::span<const ParamBinding> points,
                                    const ExecOptions& opts = {}) const;

  /// Runs `num` stochastic noise trajectories through this plan,
  /// concurrently over the worker pool, and returns the aggregate.
  /// Each trajectory samples one concrete operator per reserved noise
  /// slot from its own seed (noise::trajectory_seed(opts.seed, t)) and
  /// executes the plan with those operators substituted — structure
  /// (partitioning, lowering, exchange schedule) is shared across all
  /// trajectories and the partitioner is never re-invoked. Requires a
  /// plan compiled with Options::noise (throws otherwise).
  NoisyResult execute_trajectories(std::size_t num,
                                   const TrajectoryOptions& opts = {}) const;

  /// Runs the single trajectory identified by `seed` and returns its full
  /// Result (state included unless opts.want_state is off). Result::norm
  /// is the trajectory weight; samples carry the readout corruption.
  /// Bit-identical for a fixed seed — the replay arm of the seeds
  /// recorded in NoisyResult.
  Result execute_trajectory(std::uint64_t seed,
                            const ExecOptions& opts = {}) const;

  /// Deep structural validation of the compiled plan (the checked-build
  /// layer; see common/check.hpp). Verifies that the partitioning covers
  /// every gate exactly once with an acyclic part graph, that the
  /// distributed exchange schedule keeps every part qubit local and
  /// conserves every shard's amplitudes across each layout permutation,
  /// that reserved noise-slot ids are dense and unique, and that the
  /// resolved kernel tier agrees with what the CPU offers. Violations
  /// abort with the failed invariant; preconditions (an empty plan) throw
  /// hisim::Error. Builds configured with -DHISIM_CHECKED=ON run this
  /// automatically at the end of every Engine::compile(); it is public so
  /// tests and long-lived services can re-assert plan integrity at will.
  void validate() const;

  bool valid() const { return impl_ != nullptr; }
  /// True when the plan was compiled under a non-empty Options::noise.
  bool noisy() const;
  /// Number of reserved noise-insertion points in the compiled circuit.
  std::size_t num_noise_slots() const;
  /// The symbolic parameters the compiled circuit declares (binding keys
  /// for execute/execute_sweep), in registration order. Empty for
  /// concrete plans.
  const std::vector<std::string>& param_names() const;
  bool parameterized() const { return !param_names().empty(); }
  const Options& options() const;
  Target target() const;
  /// The kernel tier the plan resolved at compile time — never Auto:
  /// always the concrete Scalar or Simd table every execute() will use.
  sv::KernelTier kernel_tier() const;
  /// The circuit as executed (optimized per Options::opt_level, lowered
  /// when wide gates required it).
  const Circuit& circuit() const;
  /// Gate-count accounting of the compile-time optimization pipeline
  /// (zero removals when the plan was compiled at opt_level 0).
  const OptReport& opt_report() const;
  std::size_t num_parts() const;
  std::size_t num_inner_parts() const;
  unsigned num_ranks() const;       // 0 for single-node targets
  double compile_seconds() const;
  double partition_seconds() const;

 private:
  friend class Engine;
  explicit ExecutionPlan(std::shared_ptr<const detail::PlanImpl> impl)
      : impl_(std::move(impl)) {}
  /// execute() with one trajectory's sampled slot operators substituted
  /// (empty span = ideal execution). The single execution path every
  /// public entry point funnels into.
  Result execute_impl(const ExecOptions& opts,
                      std::span<const Gate> noise_ops) const;
  std::shared_ptr<const detail::PlanImpl> impl_;
};

/// Stateless compiler front end: validates Options against the circuit,
/// then partitions, lowers, and plans layouts once.
class Engine {
 public:
  explicit Engine(Options opt = {}) : opt_(std::move(opt)) {}

  const Options& options() const { return opt_; }

  /// Compiles `c` under this engine's options.
  ExecutionPlan compile(const Circuit& c) const;

  /// One-shot convenience: Engine(opt).compile(c).
  static ExecutionPlan compile(const Circuit& c, const Options& opt);

 private:
  Options opt_;
};

}  // namespace hisim
