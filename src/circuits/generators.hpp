#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"

/// Programmatic generators for the 13 QASMBench-family benchmark circuits
/// of Table I. Each follows the published construction of its algorithm;
/// qubit counts are parametric so experiments can run at laptop scale and
/// at the paper's 30-37 qubit scale on bigger machines.
namespace hisim::circuits {

/// GHZ / Schrödinger-cat state: H then a CX chain.
Circuit cat_state(unsigned n);

/// Bernstein-Vazirani with an n-1 bit secret (qubit n-1 is the oracle
/// ancilla). Bits of `secret` beyond n-1 are ignored.
Circuit bv(unsigned n, std::uint64_t secret = 0xB57AC1Eull);

/// MaxCut QAOA on a random 3-regular-ish graph: `rounds` alternating cost
/// (CX-RZ-CX per edge) and mixer (RX) layers after an initial H layer,
/// with fixed pseudo-random angles. Equivalent to binding qaoa_instance()
/// with the same seed's angle draw.
Circuit qaoa(unsigned n, unsigned rounds = 8, std::uint64_t seed = 7);

/// A MaxCut QAOA instance with *symbolic* angles: the sweep form of
/// qaoa(). The circuit declares parameters "gamma<r>"/"beta<r>" per round
/// (cost layer RZ(gamma_r) per edge, mixer RX(2*beta_r) per qubit), so one
/// Engine::compile serves every parameter point via ExecOptions::bindings
/// / execute_sweep. The problem-graph edges are exposed directly — no
/// scraping them back out of the gate stream.
struct QaoaInstance {
  Circuit circuit;  // parameterized; structure fixed by (n, rounds, seed)
  std::vector<std::pair<Qubit, Qubit>> edges;  // MaxCut problem graph
  std::vector<std::string> gammas, betas;      // param names, round order
  /// Binding that sets every round's angles to the same (gamma, beta)
  /// point — the standard 2-D grid-search axis.
  ParamBinding uniform_binding(double gamma, double beta) const;
};
QaoaInstance qaoa_instance(unsigned n, unsigned rounds = 8,
                           std::uint64_t seed = 7);

/// Noise-calibration benchmark ("noisecal" in the CLI): `reps`
/// repetitions of an X-X echo followed by an explicit idle (id) gate on
/// every qubit. The ideal circuit is the identity — the final state is
/// |0...0> exactly — so under a noise model every deviation is noise:
/// at small per-gate error p the error per qubit grows ~linearly with
/// reps (3 noise slots per qubit per rep under an after-every-gate
/// channel), the standard repeated-gate/idle calibration curve.
Circuit noise_calibration(unsigned n, unsigned reps = 8);

/// Counterfeit-coin finding: superposed weighings of a marked coin subset
/// against an oracle ancilla (qubit n-1).
Circuit cc(unsigned n, std::uint64_t coins = 0x5A5A5A5Aull);

/// Trotterized transverse-field Ising model: per step, nearest-neighbour
/// ZZ couplings (CX-RZ-CX) plus RX on every site.
Circuit ising(unsigned n, unsigned steps = 3, std::uint64_t seed = 11);

/// Quantum Fourier transform (H + controlled-phase ladder + final swaps).
Circuit qft(unsigned n);

/// Hardware-efficient QNN ansatz: RY layers with CX entangler chains.
Circuit qnn(unsigned n, unsigned layers = 2, std::uint64_t seed = 13);

/// Grover search marking basis state `marked` (mod 2^(n-1)); uses native
/// multi-controlled X for the oracle and diffusion reflections.
Circuit grover(unsigned n, unsigned iterations = 1,
               std::uint64_t marked = 0x2A);

/// Quantum phase estimation of a phase gate with phase `phi` (n-1
/// counting qubits + 1 eigenstate qubit), including the inverse QFT.
Circuit qpe(unsigned n, double phi = 0.1015625);

/// Cuccaro ripple-carry adder on two (n-2)/2-bit registers with carry-in
/// and carry-out ancillas; inputs are prepared with X gates from `a`/`b`.
Circuit adder(unsigned n, std::uint64_t a = 0b101101, std::uint64_t b = 0b11011);

/// One Table I row: paper-scale metadata plus a parametric factory.
struct BenchCircuit {
  std::string name;
  unsigned paper_qubits;
  std::size_t paper_gates;
  std::string paper_memory;
  unsigned default_qubits;  // scaled size used by this repo's benches
  std::function<Circuit(unsigned)> make;
};

/// The 13 benchmarks of Table I in paper order. `scale` shrinks the
/// default qubit counts further (0 < scale <= 1) for quick runs.
const std::vector<BenchCircuit>& qasmbench_suite();

/// Builds one suite circuit by name at `n` qubits (throws on unknown name).
Circuit make_by_name(const std::string& name, unsigned n);

}  // namespace hisim::circuits
