#include "circuits/generators.hpp"

#include <cmath>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hisim::circuits {
namespace {

/// Edge list of a connected ~3-regular graph: a ring plus random chords.
std::vector<std::pair<Qubit, Qubit>> regular_graph(unsigned n,
                                                   std::uint64_t seed) {
  HISIM_CHECK(n >= 3);
  Rng rng(seed);
  std::set<std::pair<Qubit, Qubit>> edges;
  for (Qubit i = 0; i < n; ++i) {
    const Qubit j = (i + 1) % n;
    edges.insert({std::min(i, j), std::max(i, j)});
  }
  // Add ~n/2 chords to approximate degree 3.
  unsigned attempts = 0;
  while (edges.size() < static_cast<std::size_t>(n + n / 2) &&
         attempts++ < 20u * n) {
    const Qubit a = static_cast<Qubit>(rng.below(n));
    const Qubit b = static_cast<Qubit>(rng.below(n));
    if (a == b) continue;
    edges.insert({std::min(a, b), std::max(a, b)});
  }
  return {edges.begin(), edges.end()};
}

void add_zz(Circuit& c, Qubit a, Qubit b, double theta) {
  c.add(Gate::cx(a, b));
  c.add(Gate::rz(b, theta));
  c.add(Gate::cx(a, b));
}

/// In-place inverse QFT on qubits [0, m) (no final swaps; the forward
/// counterpart here emits swaps, so QPE uses this directly on the
/// bit-reversed counting register).
void add_iqft(Circuit& c, unsigned m) {
  for (int i = static_cast<int>(m) - 1; i >= 0; --i) {
    for (int j = static_cast<int>(m) - 1; j > i; --j) {
      const double angle = -M_PI / std::pow(2.0, j - i);
      c.add(Gate::cp(static_cast<Qubit>(j), static_cast<Qubit>(i), angle));
    }
    c.add(Gate::h(static_cast<Qubit>(i)));
  }
}

}  // namespace

Circuit cat_state(unsigned n) {
  HISIM_CHECK(n >= 2);
  Circuit c(n, "cat_state");
  c.add(Gate::h(0));
  for (Qubit i = 1; i < n; ++i) c.add(Gate::cx(i - 1, i));
  return c;
}

Circuit bv(unsigned n, std::uint64_t secret) {
  HISIM_CHECK(n >= 2);
  Circuit c(n, "bv");
  const Qubit anc = n - 1;
  c.add(Gate::x(anc));
  for (Qubit i = 0; i < n; ++i) c.add(Gate::h(i));
  for (Qubit i = 0; i + 1 < n; ++i)
    if ((secret >> i) & 1u) c.add(Gate::cx(i, anc));
  for (Qubit i = 0; i + 1 < n; ++i) c.add(Gate::h(i));
  return c;
}

QaoaInstance qaoa_instance(unsigned n, unsigned rounds, std::uint64_t seed) {
  HISIM_CHECK(n >= 3);
  QaoaInstance inst;
  inst.edges = regular_graph(n, seed);
  Circuit c(n, "qaoa");
  for (Qubit i = 0; i < n; ++i) c.add(Gate::h(i));
  for (unsigned r = 0; r < rounds; ++r) {
    const Param gamma = c.param("gamma" + std::to_string(r));
    const Param beta = c.param("beta" + std::to_string(r));
    inst.gammas.push_back(gamma.name);
    inst.betas.push_back(beta.name);
    for (const auto& [a, b] : inst.edges) {
      c.add(Gate::cx(a, b));
      c.add(Gate::rz(b, gamma));
      c.add(Gate::cx(a, b));
    }
    for (Qubit i = 0; i < n; ++i) c.add(Gate::rx(i, 2.0 * beta));
  }
  inst.circuit = std::move(c);
  return inst;
}

ParamBinding QaoaInstance::uniform_binding(double gamma, double beta) const {
  ParamBinding binding;
  for (const std::string& g : gammas) binding[g] = gamma;
  for (const std::string& b : betas) binding[b] = beta;
  return binding;
}

Circuit qaoa(unsigned n, unsigned rounds, std::uint64_t seed) {
  // Same construction, same rng draw order as always — expressed as the
  // parameterized instance bound at fixed angles, so the two forms cannot
  // drift apart.
  const QaoaInstance inst = qaoa_instance(n, rounds, seed);
  Rng rng(seed ^ 0xA0A0ull);
  ParamBinding binding;
  for (unsigned r = 0; r < rounds; ++r) {
    binding[inst.gammas[r]] = rng.uniform(0.1, M_PI);
    binding[inst.betas[r]] = rng.uniform(0.1, M_PI / 2);
  }
  return inst.circuit.bound(binding);
}

Circuit noise_calibration(unsigned n, unsigned reps) {
  HISIM_CHECK(n >= 1 && reps >= 1);
  Circuit c(n, "noisecal");
  for (unsigned r = 0; r < reps; ++r) {
    // X-X echo: net identity, but each X is a real gate noise attaches
    // to; the trailing id gate is a pure idle slot (zero ideal work —
    // the kernels skip it — but a noise-insertion point like any gate).
    for (Qubit q = 0; q < n; ++q) c.add(Gate::x(q));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::x(q));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::i(q));
  }
  return c;
}

Circuit cc(unsigned n, std::uint64_t coins) {
  HISIM_CHECK(n >= 3);
  Circuit c(n, "cc");
  const Qubit anc = n - 1;
  // Superpose weighings over the coin register.
  for (Qubit i = 0; i < anc; ++i) c.add(Gate::h(i));
  c.add(Gate::x(anc));
  c.add(Gate::h(anc));
  // Oracle: each coin in the marked subset tips the balance.
  for (Qubit i = 0; i < anc; ++i)
    if ((coins >> i) & 1u) c.add(Gate::cx(i, anc));
  for (Qubit i = 0; i < anc; ++i) c.add(Gate::h(i));
  c.add(Gate::h(anc));
  return c;
}

Circuit ising(unsigned n, unsigned steps, std::uint64_t seed) {
  HISIM_CHECK(n >= 2);
  Circuit c(n, "ising");
  Rng rng(seed);
  const double dt = 0.1;
  for (unsigned s = 0; s < steps; ++s) {
    for (Qubit i = 0; i + 1 < n; ++i) {
      const double j = rng.uniform(0.5, 1.5);
      add_zz(c, i, i + 1, 2.0 * j * dt);
    }
    for (Qubit i = 0; i < n; ++i) {
      const double h = rng.uniform(0.5, 1.5);
      c.add(Gate::rx(i, 2.0 * h * dt));
    }
  }
  return c;
}

Circuit qft(unsigned n) {
  HISIM_CHECK(n >= 1);
  Circuit c(n, "qft");
  for (Qubit i = 0; i < n; ++i) {
    c.add(Gate::h(i));
    for (Qubit j = i + 1; j < n; ++j)
      c.add(Gate::cp(j, i, M_PI / std::pow(2.0, j - i)));
  }
  for (Qubit i = 0; i < n / 2; ++i) c.add(Gate::swap(i, n - 1 - i));
  return c;
}

Circuit qnn(unsigned n, unsigned layers, std::uint64_t seed) {
  HISIM_CHECK(n >= 2);
  Circuit c(n, "qnn");
  Rng rng(seed);
  for (unsigned l = 0; l < layers; ++l) {
    for (Qubit i = 0; i < n; ++i)
      c.add(Gate::ry(i, rng.uniform(0.0, M_PI)));
    for (Qubit i = 0; i + 1 < n; ++i) c.add(Gate::cx(i, i + 1));
  }
  for (Qubit i = 0; i < n; ++i) c.add(Gate::ry(i, rng.uniform(0.0, M_PI)));
  return c;
}

Circuit grover(unsigned n, unsigned iterations, std::uint64_t marked) {
  HISIM_CHECK(n >= 3);
  Circuit c(n, "grover");
  const Qubit anc = n - 1;       // phase-kickback ancilla
  const unsigned m = n - 1;      // search register width
  // The oracle conditions on at most 8 qubits (wider multi-controls are
  // what compiled QASMBench circuits decompose away; capping keeps the
  // generated gate set partitionable at every scale).
  const unsigned w = std::min(m, 8u);
  marked &= (std::uint64_t{1} << w) - 1;
  for (Qubit i = 0; i < m; ++i) c.add(Gate::h(i));
  c.add(Gate::x(anc));
  c.add(Gate::h(anc));
  std::vector<Qubit> all_ctl(w);
  for (Qubit i = 0; i < w; ++i) all_ctl[i] = i;
  for (unsigned it = 0; it < iterations; ++it) {
    // Oracle: flip phase of |marked> (on the conditioned register).
    for (Qubit i = 0; i < w; ++i)
      if (!((marked >> i) & 1u)) c.add(Gate::x(i));
    std::vector<Qubit> mcx_args = all_ctl;
    mcx_args.push_back(anc);
    c.add(Gate::mcx(mcx_args));
    for (Qubit i = 0; i < w; ++i)
      if (!((marked >> i) & 1u)) c.add(Gate::x(i));
    // Diffusion: reflect about the mean.
    for (Qubit i = 0; i < m; ++i) c.add(Gate::h(i));
    for (Qubit i = 0; i < w; ++i) c.add(Gate::x(i));
    c.add(Gate::mcx(mcx_args));
    for (Qubit i = 0; i < w; ++i) c.add(Gate::x(i));
    for (Qubit i = 0; i < m; ++i) c.add(Gate::h(i));
  }
  return c;
}

Circuit qpe(unsigned n, double phi) {
  HISIM_CHECK(n >= 2);
  Circuit c(n, "qpe");
  const unsigned t = n - 1;  // counting qubits [0, t), eigenstate qubit t
  c.add(Gate::x(t));         // |1> is the e^{2 pi i phi} eigenstate of P
  for (Qubit i = 0; i < t; ++i) c.add(Gate::h(i));
  for (Qubit i = 0; i < t; ++i) {
    const double angle = 2.0 * M_PI * phi * std::pow(2.0, i);
    c.add(Gate::cp(i, t, angle));
  }
  add_iqft(c, t);
  return c;
}

Circuit adder(unsigned n, std::uint64_t a, std::uint64_t b) {
  HISIM_CHECK(n >= 4);
  const unsigned m = (n - 2) / 2;  // bits per addend
  Circuit c(n, "adder");
  // Layout: cin = 0, a_i = 1 + i, b_i = 1 + m + i, cout = 1 + 2m.
  const Qubit cin = 0, cout = 1 + 2 * m;
  auto qa = [&](unsigned i) { return static_cast<Qubit>(1 + i); };
  auto qb = [&](unsigned i) { return static_cast<Qubit>(1 + m + i); };
  for (unsigned i = 0; i < m; ++i) {
    if ((a >> i) & 1u) c.add(Gate::x(qa(i)));
    if ((b >> i) & 1u) c.add(Gate::x(qb(i)));
  }
  auto maj = [&](Qubit x, Qubit y, Qubit z) {
    c.add(Gate::cx(z, y));
    c.add(Gate::cx(z, x));
    c.add(Gate::ccx(x, y, z));
  };
  auto uma = [&](Qubit x, Qubit y, Qubit z) {
    c.add(Gate::ccx(x, y, z));
    c.add(Gate::cx(z, x));
    c.add(Gate::cx(x, y));
  };
  // Cuccaro 2004: MAJ chain up, carry out, UMA chain down. b := a + b.
  maj(cin, qb(0), qa(0));
  for (unsigned i = 1; i < m; ++i) maj(qa(i - 1), qb(i), qa(i));
  c.add(Gate::cx(qa(m - 1), cout));
  for (unsigned i = m; i-- > 1;) uma(qa(i - 1), qb(i), qa(i));
  uma(cin, qb(0), qa(0));
  return c;
}

const std::vector<BenchCircuit>& qasmbench_suite() {
  static const std::vector<BenchCircuit> suite = {
      {"cat_state", 30, 60, "16 GB", 16, [](unsigned n) { return cat_state(n); }},
      {"bv", 30, 102, "16 GB", 16, [](unsigned n) { return bv(n); }},
      {"qaoa", 30, 1380, "16 GB", 16, [](unsigned n) { return qaoa(n); }},
      {"cc", 30, 149, "16 GB", 16, [](unsigned n) { return cc(n); }},
      {"ising", 30, 354, "16 GB", 16, [](unsigned n) { return ising(n); }},
      {"qft", 30, 2235, "16 GB", 16, [](unsigned n) { return qft(n); }},
      {"qnn", 31, 164, "32 GB", 17, [](unsigned n) { return qnn(n); }},
      {"grover", 31, 207, "32 GB", 17, [](unsigned n) { return grover(n); }},
      {"qpe", 31, 5731, "32 GB", 17, [](unsigned n) { return qpe(n); }},
      {"bv35", 35, 119, "512 GB", 18, [](unsigned n) { return bv(n); }},
      {"ising35", 35, 414, "512 GB", 18, [](unsigned n) { return ising(n); }},
      {"cc36", 36, 106, "1 TB", 18, [](unsigned n) { return cc(n); }},
      {"adder37", 37, 154, "2 TB", 18, [](unsigned n) { return adder(n); }},
  };
  return suite;
}

Circuit make_by_name(const std::string& name, unsigned n) {
  for (const BenchCircuit& b : qasmbench_suite()) {
    if (b.name == name) {
      Circuit c = b.make(n);
      c.set_name(b.name);
      return c;
    }
  }
  throw Error("unknown benchmark circuit: " + name);
}

}  // namespace hisim::circuits
