#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

/// Noise-model description: which stochastic channel acts after which
/// gates, plus classical readout error. A NoiseModel is a *compile-time*
/// input (Options::noise): Engine::compile reserves one identity "noise
/// slot" in the circuit structure per (noisy gate, qubit) pair, and the
/// trajectory executor (ExecutionPlan::execute_trajectories) samples a
/// concrete operator per slot per trajectory — see noise/trajectory.hpp.
namespace hisim::noise {

/// A single-qubit noise channel in trajectory-sampling form: a discrete
/// distribution over 2x2 operators applied with fixed probabilities.
///
/// Pauli channels (depolarizing, bit/phase flip, generic Pauli) are
/// mixtures of unitaries, so a sampled trajectory stays normalized and
/// carries weight 1. Non-unitary channels (amplitude damping) are
/// unraveled over their Kraus operators with *fixed* sampling
/// probabilities q_k: the stored operator is K_k / sqrt(q_k), so
///   E_k[ (K_k/sqrt(q_k)) rho (K_k/sqrt(q_k))^dag ] = sum_k K_k rho K_k^dag
/// — the exact channel in expectation — at the cost of per-trajectory
/// weights ||psi~||^2 != 1 (tracked by NoisyResult::weights). This keeps
/// the sample state-independent, which is what lets a trajectory be fully
/// determined by its seed and replayed bit-identically.
struct Channel {
  /// One sampled branch: applied with probability `prob`. Pauli branches
  /// carry their GateKind (I/X/Y/Z — the fast apply kernels); Kraus
  /// branches carry kind Unitary and the pre-scaled matrix.
  struct Op {
    double prob = 0.0;
    GateKind kind = GateKind::I;
    Matrix m;  // only for kind == Unitary
  };
  std::string name;
  std::vector<Op> ops;

  /// Depolarizing: with probability p apply X, Y, or Z (p/3 each).
  /// Throws hisim::Error unless p is in [0, 1].
  static Channel depolarizing(double p);
  /// Bit flip: X with probability p.
  static Channel bit_flip(double p);
  /// Phase flip: Z with probability p.
  static Channel phase_flip(double p);
  /// Generic Pauli channel: X/Y/Z with probabilities px/py/pz.
  /// Throws unless each is in [0, 1] and px + py + pz <= 1.
  static Channel pauli(double px, double py, double pz);
  /// Amplitude damping with decay probability gamma, unraveled over the
  /// Kraus pair K0 = diag(1, sqrt(1-gamma)), K1 = sqrt(gamma)|0><1| with
  /// sampling probabilities (1-gamma, gamma). Trajectories carry weights.
  static Channel amplitude_damping(double gamma);

  /// True when every branch is a plain Pauli (trajectory weight stays 1).
  bool unitary_ops() const;
  /// Completeness check: sum_k prob_k * op_k^dag op_k == I within tol —
  /// the trace-preservation property the unraveling relies on.
  bool trace_preserving(double tol = 1e-12) const;
};

/// Classical readout confusion on one qubit, applied to sampled shots:
/// a true 0 reads as 1 with probability p01, a true 1 as 0 with p10.
struct ReadoutError {
  double p01 = 0.0;
  double p10 = 0.0;
  bool trivial() const { return p01 == 0.0 && p10 == 0.0; }
};

/// Where channels attach. Channels accumulate: a gate matching several
/// rules gets every matching channel, in rule-registration order
/// (defaults first, then per-gate-kind, then per-qubit), one slot each.
class NoiseModel {
 public:
  /// Channel applied after *every* gate, on each qubit the gate touches.
  NoiseModel& after_all_gates(Channel ch);
  /// Channel applied after every gate of `kind`, on each touched qubit.
  NoiseModel& after_gate(GateKind kind, Channel ch);
  /// Channel applied after any gate touching qubit `q` (on `q` only).
  NoiseModel& on_qubit(Qubit q, Channel ch);
  /// Readout confusion for every qubit (per-qubit readout() overrides).
  NoiseModel& readout(ReadoutError e);
  NoiseModel& readout(Qubit q, ReadoutError e);

  /// True when the model attaches no channels and no readout error —
  /// Engine::compile then skips instrumentation entirely.
  bool empty() const;

  bool has_readout() const { return has_readout_; }
  /// The effective readout confusion for qubit q.
  ReadoutError readout_for(Qubit q) const;
  /// The channels that act on qubit `q` after gate `g`, in rule order.
  std::vector<const Channel*> channels_for(const Gate& g, Qubit q) const;

 private:
  std::vector<Channel> defaults_;
  std::map<GateKind, std::vector<Channel>> per_gate_;
  std::map<Qubit, std::vector<Channel>> per_qubit_;
  ReadoutError default_readout_;
  std::map<Qubit, ReadoutError> per_qubit_readout_;
  bool has_readout_ = false;
};

}  // namespace hisim::noise
