#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "noise/noise_model.hpp"

/// Compile-once stochastic Pauli trajectories.
///
/// instrument() runs at compile time: it copies the circuit, inserting one
/// GateKind::NoiseSlot identity gate after each (noisy gate, qubit) pair
/// the model matches. Slots are real gates, so everything structural —
/// partitioning, lowering, the distributed exchange schedule — accounts
/// for them exactly once, and an un-noisy execute() of the instrumented
/// plan applies them as exact no-ops (the ideal circuit).
///
/// At execute time each trajectory is fully determined by one 64-bit
/// seed: sample_ops() draws a concrete operator per slot from the seed's
/// RNG stream (state-independent probabilities — see noise_model.hpp),
/// and the executor substitutes those operators into the reserved slots
/// without touching any other compile artifact. Shot sampling and
/// readout corruption use separate streams derived from the same seed
/// (shot_seed / readout apply_readout), so recording the per-trajectory
/// seeds is enough to replay any trajectory bit-identically.
namespace hisim::noise {

/// One reserved insertion point: the slot gate's qubit (original circuit
/// numbering) and the channel it samples from.
struct Slot {
  Qubit qubit = 0;
  unsigned channel = 0;  // index into CompiledNoise::channels
};

/// The compile-side noise artifact an ExecutionPlan carries: the channel
/// table, the reserved slots (id order == slot-gate order in the
/// instrumented circuit), and the per-qubit readout confusion.
struct CompiledNoise {
  std::vector<Channel> channels;
  std::vector<Slot> slots;
  /// Per-qubit readout confusion; empty when the model has none.
  std::vector<ReadoutError> readout;

  bool has_readout() const { return !readout.empty(); }
  bool empty() const { return slots.empty() && readout.empty(); }
};

struct Instrumented {
  Circuit circuit;
  CompiledNoise noise;
};

/// Builds the instrumented copy of `c` under `model`: after every gate,
/// for each qubit it touches, one NoiseSlot gate per matching channel.
/// Parameter registry, gate order, and all original gates are preserved.
Instrumented instrument(const Circuit& c, const NoiseModel& model);

/// The seed of trajectory `index` in the stream rooted at `base`
/// (SplitMix64 over the index, so trajectories are independent and any
/// subset can be replayed without running the others).
std::uint64_t trajectory_seed(std::uint64_t base, std::uint64_t index);

/// The shot-sampling seed derived from a trajectory seed (a stream
/// disjoint from the noise-sampling and readout streams).
std::uint64_t shot_seed(std::uint64_t traj_seed);

/// Samples one concrete operator per slot, in slot-id order, from the
/// trajectory's noise stream. Each returned Gate acts on canonical qubit
/// 0; the executor rewrites the qubit to the slot's (possibly remapped)
/// position. Empty when `cn` has no slots.
std::vector<Gate> sample_ops(const CompiledNoise& cn,
                             std::uint64_t traj_seed);

/// Replaces every NoiseSlot gate of `c` with its trajectory operator
/// (ops indexed by slot id, as produced by sample_ops), keeping gate
/// count and order — part and inner-partition gate indices stay valid.
void apply_ops(Circuit& c, std::span<const Gate> ops);

/// Applies the per-qubit readout confusion to sampled bitstrings in
/// place, using the readout stream of `traj_seed`. No-op when the model
/// has no readout error.
void apply_readout(std::vector<Index>& samples, const CompiledNoise& cn,
                   std::uint64_t traj_seed);

/// Deep validator (see common/check.hpp): aborts unless the NoiseSlot
/// gates of `c` carry exactly the slot ids {0, ..., cn.slots.size() - 1},
/// each exactly once (dense and unique — sample_ops indexes by id, so a
/// duplicated or missing id silently misroutes sampled operators), on the
/// qubit the slot reserved, with every slot's channel index in range.
/// Checked builds run this through ExecutionPlan::validate(); tests
/// corrupt a slot id and assert the abort.
void validate_slots(const Circuit& c, const CompiledNoise& cn);

}  // namespace hisim::noise
