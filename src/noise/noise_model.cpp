#include "noise/noise_model.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"

namespace hisim::noise {
namespace {

void check_prob(const char* what, double p) {
  HISIM_CHECK_MSG(p >= 0.0 && p <= 1.0,
                  what << " probability " << p << " is outside [0, 1]");
}

Channel::Op pauli_op(double prob, GateKind kind) {
  Channel::Op op;
  op.prob = prob;
  op.kind = kind;
  return op;
}

Channel::Op kraus_op(double prob, Matrix m) {
  Channel::Op op;
  op.prob = prob;
  op.kind = GateKind::Unitary;
  op.m = std::move(m);
  return op;
}

}  // namespace

Channel Channel::depolarizing(double p) {
  check_prob("depolarizing", p);
  Channel ch;
  ch.name = "depolarizing";
  if (p < 1.0) ch.ops.push_back(pauli_op(1.0 - p, GateKind::I));
  for (GateKind k : {GateKind::X, GateKind::Y, GateKind::Z})
    if (p > 0.0) ch.ops.push_back(pauli_op(p / 3.0, k));
  return ch;
}

Channel Channel::bit_flip(double p) {
  check_prob("bit-flip", p);
  Channel ch;
  ch.name = "bit_flip";
  if (p < 1.0) ch.ops.push_back(pauli_op(1.0 - p, GateKind::I));
  if (p > 0.0) ch.ops.push_back(pauli_op(p, GateKind::X));
  return ch;
}

Channel Channel::phase_flip(double p) {
  check_prob("phase-flip", p);
  Channel ch;
  ch.name = "phase_flip";
  if (p < 1.0) ch.ops.push_back(pauli_op(1.0 - p, GateKind::I));
  if (p > 0.0) ch.ops.push_back(pauli_op(p, GateKind::Z));
  return ch;
}

Channel Channel::pauli(double px, double py, double pz) {
  check_prob("pauli X", px);
  check_prob("pauli Y", py);
  check_prob("pauli Z", pz);
  HISIM_CHECK_MSG(px + py + pz <= 1.0 + 1e-12,
                  "pauli channel probabilities sum to " << px + py + pz
                                                        << " > 1");
  Channel ch;
  ch.name = "pauli";
  const double pi = 1.0 - px - py - pz;
  if (pi > 0.0) ch.ops.push_back(pauli_op(pi, GateKind::I));
  if (px > 0.0) ch.ops.push_back(pauli_op(px, GateKind::X));
  if (py > 0.0) ch.ops.push_back(pauli_op(py, GateKind::Y));
  if (pz > 0.0) ch.ops.push_back(pauli_op(pz, GateKind::Z));
  return ch;
}

Channel Channel::amplitude_damping(double gamma) {
  check_prob("amplitude-damping", gamma);
  Channel ch;
  ch.name = "amplitude_damping";
  if (gamma == 0.0) {
    ch.ops.push_back(pauli_op(1.0, GateKind::I));
    return ch;
  }
  // Kraus pair K0 = diag(1, sqrt(1-gamma)), K1 = sqrt(gamma)|0><1|,
  // sampled with q_k = tr(K_k^dag K_k)/2 — the branch weight on the
  // maximally mixed state, nonzero exactly when K_k != 0 (q0 > 0 even at
  // gamma = 1, where K0 = |0><0| still acts) — and stored pre-scaled as
  // K_k/sqrt(q_k). Then sum_k q_k Kt_k^dag Kt_k = sum_k K_k^dag K_k = I:
  // the unraveling is trace-preserving in expectation.
  const double q0 = (2.0 - gamma) / 2.0;
  const double q1 = gamma / 2.0;
  Matrix k0(2, 2);
  k0(0, 0) = 1.0 / std::sqrt(q0);
  k0(1, 1) = std::sqrt((1.0 - gamma) / q0);
  ch.ops.push_back(kraus_op(q0, std::move(k0)));
  Matrix k1(2, 2);
  k1(0, 1) = std::sqrt(gamma / q1);
  ch.ops.push_back(kraus_op(q1, std::move(k1)));
  return ch;
}

bool Channel::unitary_ops() const {
  for (const Op& op : ops)
    if (op.kind == GateKind::Unitary) return false;
  return true;
}

bool Channel::trace_preserving(double tol) const {
  // sum_k prob_k * op_k^dag op_k for a Pauli op is prob_k * I.
  Matrix acc(2, 2);
  for (const Op& op : ops) {
    if (op.kind == GateKind::Unitary) {
      acc = acc + (op.m.adjoint() * op.m) * cplx{op.prob};
    } else {
      acc(0, 0) += op.prob;
      acc(1, 1) += op.prob;
    }
  }
  return acc.max_abs_diff(Matrix::identity(2)) <= tol;
}

NoiseModel& NoiseModel::after_all_gates(Channel ch) {
  HISIM_CHECK_MSG(!ch.ops.empty(), "channel has no operators");
  defaults_.push_back(std::move(ch));
  return *this;
}

NoiseModel& NoiseModel::after_gate(GateKind kind, Channel ch) {
  HISIM_CHECK_MSG(!ch.ops.empty(), "channel has no operators");
  HISIM_CHECK_MSG(kind != GateKind::NoiseSlot,
                  "cannot attach noise to noise slots");
  per_gate_[kind].push_back(std::move(ch));
  return *this;
}

NoiseModel& NoiseModel::on_qubit(Qubit q, Channel ch) {
  HISIM_CHECK_MSG(!ch.ops.empty(), "channel has no operators");
  per_qubit_[q].push_back(std::move(ch));
  return *this;
}

NoiseModel& NoiseModel::readout(ReadoutError e) {
  check_prob("readout p01", e.p01);
  check_prob("readout p10", e.p10);
  default_readout_ = e;
  has_readout_ = true;
  return *this;
}

NoiseModel& NoiseModel::readout(Qubit q, ReadoutError e) {
  check_prob("readout p01", e.p01);
  check_prob("readout p10", e.p10);
  per_qubit_readout_[q] = e;
  has_readout_ = true;
  return *this;
}

bool NoiseModel::empty() const {
  return defaults_.empty() && per_gate_.empty() && per_qubit_.empty() &&
         !has_readout_;
}

ReadoutError NoiseModel::readout_for(Qubit q) const {
  const auto it = per_qubit_readout_.find(q);
  return it != per_qubit_readout_.end() ? it->second : default_readout_;
}

std::vector<const Channel*> NoiseModel::channels_for(const Gate& g,
                                                     Qubit q) const {
  std::vector<const Channel*> out;
  for (const Channel& ch : defaults_) out.push_back(&ch);
  if (const auto it = per_gate_.find(g.kind); it != per_gate_.end())
    for (const Channel& ch : it->second) out.push_back(&ch);
  if (const auto it = per_qubit_.find(q); it != per_qubit_.end())
    for (const Channel& ch : it->second) out.push_back(&ch);
  return out;
}

}  // namespace hisim::noise
