#include "noise/trajectory.hpp"

#include <map>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hisim::noise {
namespace {

// Stream constants XORed into a trajectory seed so the noise, shot, and
// readout draws of one trajectory never share an RNG sequence.
constexpr std::uint64_t kShotStream = 0x5a0b7c9d11e2f381ull;
constexpr std::uint64_t kReadoutStream = 0x93c467e37db0c7a4ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Instrumented instrument(const Circuit& c, const NoiseModel& model) {
  Instrumented out;
  Circuit ic(c.num_qubits(), c.name());
  // Re-registering in order preserves parameter ids, so symbolic gates
  // keep their expressions intact (same pattern as fuse()).
  for (const std::string& p : c.param_names()) ic.param(p);

  // Channel table deduplicated by model rule (most slots share channels);
  // the model outlives this call, so rule pointers are stable keys.
  std::map<const Channel*, unsigned> channel_index;
  const auto intern = [&](const Channel* ch) {
    const auto it = channel_index.find(ch);
    if (it != channel_index.end()) return it->second;
    const unsigned idx = static_cast<unsigned>(out.noise.channels.size());
    out.noise.channels.push_back(*ch);
    channel_index.emplace(ch, idx);
    return idx;
  };

  for (const Gate& g : c.gates()) {
    HISIM_CHECK_MSG(g.kind != GateKind::NoiseSlot,
                    "circuit is already noise-instrumented");
    ic.add(g);
    for (Qubit q : g.qubits) {
      for (const Channel* ch : model.channels_for(g, q)) {
        const unsigned id = static_cast<unsigned>(out.noise.slots.size());
        out.noise.slots.push_back(Slot{q, intern(ch)});
        ic.add(Gate::noise_slot(q, id));
      }
    }
  }

  if (model.has_readout()) {
    out.noise.readout.resize(c.num_qubits());
    for (Qubit q = 0; q < c.num_qubits(); ++q)
      out.noise.readout[q] = model.readout_for(q);
  }
  out.circuit = std::move(ic);
  return out;
}

std::uint64_t trajectory_seed(std::uint64_t base, std::uint64_t index) {
  return splitmix64(base ^ splitmix64(index + 1));
}

std::uint64_t shot_seed(std::uint64_t traj_seed) {
  return splitmix64(traj_seed ^ kShotStream);
}

std::vector<Gate> sample_ops(const CompiledNoise& cn,
                             std::uint64_t traj_seed) {
  if (cn.slots.empty()) return {};
  std::vector<Gate> ops;
  ops.reserve(cn.slots.size());
  Rng rng(traj_seed);
  for (const Slot& slot : cn.slots) {
    const Channel& ch = cn.channels[slot.channel];
    // One uniform draw per slot, walked against the cumulative branch
    // probabilities (ties broken toward the earlier branch; fp residue
    // past the last cumulative value falls back to the last branch).
    const double u = rng.uniform();
    double acc = 0.0;
    const Channel::Op* chosen = &ch.ops.back();
    for (const Channel::Op& op : ch.ops) {
      acc += op.prob;
      if (u < acc) {
        chosen = &op;
        break;
      }
    }
    switch (chosen->kind) {
      case GateKind::I: ops.push_back(Gate::i(0)); break;
      case GateKind::X: ops.push_back(Gate::x(0)); break;
      case GateKind::Y: ops.push_back(Gate::y(0)); break;
      case GateKind::Z: ops.push_back(Gate::z(0)); break;
      default: ops.push_back(Gate::kraus({0}, chosen->m)); break;
    }
  }
  return ops;
}

void apply_ops(Circuit& c, std::span<const Gate> ops) {
  if (ops.empty()) return;
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    const Gate& g = c.gate(i);
    if (g.kind != GateKind::NoiseSlot) continue;
    const unsigned id = g.noise_slot_id();
    HISIM_CHECK_MSG(id < ops.size(),
                    "noise slot " << id << " has no sampled operator");
    Gate op = ops[id];
    op.qubits = g.qubits;
    c.set_gate(i, std::move(op));
  }
}

void apply_readout(std::vector<Index>& samples, const CompiledNoise& cn,
                   std::uint64_t traj_seed) {
  if (!cn.has_readout() || samples.empty()) return;
  // Only qubits with a nontrivial confusion consume draws, so adding a
  // clean qubit to a model never perturbs another qubit's stream.
  std::vector<Qubit> noisy;
  for (Qubit q = 0; q < cn.readout.size(); ++q)
    if (!cn.readout[q].trivial()) noisy.push_back(q);
  if (noisy.empty()) return;
  Rng rng(splitmix64(traj_seed ^ kReadoutStream));
  for (Index& s : samples) {
    for (Qubit q : noisy) {
      const bool one = (s >> q) & 1u;
      const double flip = one ? cn.readout[q].p10 : cn.readout[q].p01;
      if (flip > 0.0 && rng.uniform() < flip) s ^= Index{1} << q;
    }
  }
}

void validate_slots(const Circuit& c, const CompiledNoise& cn) {
  const std::size_t n = cn.slots.size();
  std::vector<bool> seen(n, false);
  std::size_t found = 0;
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    const Gate& g = c.gate(i);
    if (g.kind != GateKind::NoiseSlot) continue;
    ++found;
    const unsigned id = g.noise_slot_id();
    HISIM_INVARIANT(id < n, "noise slot id " << id << " out of range (plan "
                                             << "reserved " << n << " slots)");
    HISIM_INVARIANT(!seen[id], "noise slot id " << id
                                                << " appears more than once");
    seen[id] = true;
    HISIM_INVARIANT(g.qubits.size() == 1 && g.qubits[0] == cn.slots[id].qubit,
                    "noise slot " << id << " sits on qubit " << g.qubits[0]
                                  << ", reserved for qubit "
                                  << cn.slots[id].qubit);
  }
  HISIM_INVARIANT(found == n, "circuit carries " << found
                                                 << " noise slots, plan "
                                                 << "reserved " << n);
  for (std::size_t id = 0; id < n; ++id)
    HISIM_INVARIANT(cn.slots[id].channel < cn.channels.size(),
                    "noise slot " << id << " references channel "
                                  << cn.slots[id].channel << " of "
                                  << cn.channels.size());
}

}  // namespace hisim::noise
