#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace hisim::detail {

void invariant_failure(const char* expr, const char* file, int line,
                       const std::string& msg) {
  // stderr + abort, never throw: an invariant violation is a library bug,
  // and aborting (a) cannot be swallowed by a catch block, (b) works from
  // noexcept contexts and destructors, and (c) is what death tests and
  // sanitizer runs key on.
  std::fprintf(stderr, "HISIM invariant violated: (%s) at %s:%d%s%s\n", expr,
               file, line, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace hisim::detail
