#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace hisim {

/// Capability-annotated mutex. Raw std::mutex is invisible to Clang's
/// thread-safety analysis, so every lock in src/ is one of these (the
/// hisim-lint `mutex` rule confines the std primitives to this module):
/// fields the mutex protects carry HISIM_GUARDED_BY(mu_), and the
/// analysis then proves — on every Clang build — that no code path
/// touches them without holding the lock. Non-reentrant, like the
/// std::mutex it wraps.
class HISIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HISIM_ACQUIRE() { mu_.lock(); }
  void unlock() HISIM_RELEASE() { mu_.unlock(); }
  bool try_lock() HISIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over a Mutex (the only idiomatic way to hold one:
/// scoped acquisition is what the analysis reasons about best). Always
/// holds the lock for its whole lifetime; CondVar::wait releases and
/// re-acquires it internally without changing the held-capability state.
class HISIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HISIM_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() HISIM_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with Mutex/MutexLock.
///
/// wait() carries no HISIM_REQUIRES annotation: the capability it needs
/// is "the mutex `lk` holds", and the analysis cannot alias a scoped
/// lock's capability through an accessor, so any spelling would produce
/// false positives at every call site. Holding the lock is instead
/// guaranteed by construction (a MutexLock exists in the calling scope)
/// — which is exactly what makes guarded reads in the canonical wait
/// idiom check out:
///
///   MutexLock lk(mu_);
///   while (!ready_) cv_.wait(lk);   // ready_ is HISIM_GUARDED_BY(mu_)
///
/// There is deliberately no predicate-lambda overload: the lambda body
/// would be analyzed as a separate function that does not know mu_ is
/// held, failing the analysis on precisely the reads it should accept.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases lk's mutex and blocks; the mutex is re-acquired
  /// before returning. Spurious wakeups possible — always wait in a loop.
  void wait(MutexLock& lk) { cv_.wait(lk.lk_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Shared-memory parallelism shim. The state-vector kernels call
/// parallel_for over amplitude ranges; on a single-core host this runs
/// sequentially with zero overhead, on larger machines it fans out over a
/// lazily created thread pool (strong-scaling experiments in the paper use
/// OpenMP; a pool keeps the library dependency-free and deterministic).
namespace parallel {

/// Set the number of worker threads used by parallel_for. 0 = hardware
/// concurrency. Takes effect on the next parallel_for call.
void set_num_threads(unsigned n);

/// Current configured worker count (after defaulting).
unsigned num_threads();

/// Invoke fn(begin, end) over a partition of [begin, end) across workers.
/// Ranges below `grain` run inline on the calling thread.
///
/// Re-entrancy: a call made from inside another for_range region (pool
/// worker or participating caller), or from a thread holding an
/// inline_scope, runs inline instead of re-entering the shared pool, so
/// kernels may be invoked from already-parallel code without deadlocking
/// the fork-join pool. Concurrent top-level calls from distinct threads
/// are serialized against each other.
void for_range(Index begin, Index end,
               const std::function<void(Index, Index)>& fn,
               Index grain = Index{1} << 12);

/// RAII guard forcing every for_range issued by this thread to run inline
/// for the guard's lifetime. Comm-backend worker threads hold one so their
/// data movement never competes with the caller's fork-join regions (a
/// worker blocking on the shared pool while the main thread's region waits
/// on that worker would deadlock).
class inline_scope {
 public:
  inline_scope();
  ~inline_scope();
  inline_scope(const inline_scope&) = delete;
  inline_scope& operator=(const inline_scope&) = delete;
};

/// Single-use count-down latch (std::latch with a waitable count query):
/// count_down() by producers, wait() blocks until the count reaches zero.
/// The threaded comm backend's exchange handle counts one per movement
/// worker so its barrier can complete without joining threads.
class latch {
 public:
  explicit latch(std::ptrdiff_t count);
  latch(const latch&) = delete;
  latch& operator=(const latch&) = delete;
  ~latch();

  /// Decrements the count by n (must not drop below zero).
  void count_down(std::ptrdiff_t n = 1);
  /// Blocks until the count reaches zero.
  void wait() const;
  /// True iff the count already reached zero (non-blocking).
  bool try_wait() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Owns a set of plain worker threads spawned for one async region and
/// joins them on destruction. Each spawned thread runs under an
/// inline_scope (see above). Unlike for_range this is not pooled — it is
/// the structured-concurrency helper for long-lived overlap work (comm
/// backends), not for data-parallel loops.
class task_group {
 public:
  task_group() = default;
  task_group(const task_group&) = delete;
  task_group& operator=(const task_group&) = delete;
  ~task_group() { join(); }

  /// Launches fn on a new thread owned by the group.
  void spawn(std::function<void()> fn);
  /// Blocks until every spawned thread has finished. Idempotent.
  void join();

  std::size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace parallel
}  // namespace hisim
