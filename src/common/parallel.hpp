#pragma once

#include <cstddef>
#include <functional>

#include "common/types.hpp"

namespace hisim {

/// Shared-memory parallelism shim. The state-vector kernels call
/// parallel_for over amplitude ranges; on a single-core host this runs
/// sequentially with zero overhead, on larger machines it fans out over a
/// lazily created thread pool (strong-scaling experiments in the paper use
/// OpenMP; a pool keeps the library dependency-free and deterministic).
namespace parallel {

/// Set the number of worker threads used by parallel_for. 0 = hardware
/// concurrency. Takes effect on the next parallel_for call.
void set_num_threads(unsigned n);

/// Current configured worker count (after defaulting).
unsigned num_threads();

/// Invoke fn(begin, end) over a partition of [begin, end) across workers.
/// Ranges below `grain` run inline on the calling thread.
void for_range(Index begin, Index end,
               const std::function<void(Index, Index)>& fn,
               Index grain = Index{1} << 12);

}  // namespace parallel
}  // namespace hisim
