#pragma once

#include <cstdint>

namespace hisim {

/// Small, fast, deterministic PRNG (xoshiro256**). Every randomized
/// component of the library (DFS topological orders, synthetic workloads)
/// takes an explicit seed so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) — bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool coin() { return (next() & 1u) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hisim
