#pragma once

#include <complex>
#include <cstdint>

/// Fundamental scalar and index types shared by every HiSVSIM module.
namespace hisim {

/// Complex amplitude type. The paper's accounting (16 bytes/amplitude)
/// assumes double precision.
using cplx = std::complex<double>;

/// Index into a state vector (up to 2^63 amplitudes).
using Index = std::uint64_t;

/// Qubit label within a circuit (0-based).
using Qubit = std::uint32_t;

/// Bytes occupied by one amplitude.
inline constexpr std::size_t kAmpBytes = sizeof(cplx);

/// Number of amplitudes of an n-qubit register.
constexpr Index dim(unsigned num_qubits) noexcept {
  return Index{1} << num_qubits;
}

}  // namespace hisim
