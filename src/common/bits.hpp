#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"

/// Bit-manipulation helpers used by the gather/scatter machinery and the
/// distributed rank layout. All operate on little-endian qubit numbering:
/// qubit q corresponds to bit q of an amplitude index.
namespace hisim::bits {

/// Test bit `b` of `x`.
constexpr bool test(Index x, unsigned b) noexcept { return (x >> b) & 1u; }

/// Set bit `b` of `x` to `v`.
constexpr Index with_bit(Index x, unsigned b, bool v) noexcept {
  return v ? (x | (Index{1} << b)) : (x & ~(Index{1} << b));
}

/// Insert a zero bit at position `b`: bits [b..] of `x` shift up by one.
/// insert_zero(0b1011, 1) == 0b10101.  This is the core primitive for
/// enumerating amplitude pairs when applying a gate to qubit `b`.
constexpr Index insert_zero(Index x, unsigned b) noexcept {
  const Index low = x & ((Index{1} << b) - 1);
  const Index high = (x >> b) << (b + 1);
  return high | low;
}

/// Software PDEP: scatter the low bits of `x` into the set bit positions of
/// `mask` (lowest bit of x goes to lowest set bit of mask).
constexpr Index deposit(Index x, Index mask) noexcept {
  Index out = 0;
  while (mask != 0 && x != 0) {
    const Index lsb = mask & (~mask + 1);
    if (x & 1u) out |= lsb;
    x >>= 1;
    mask ^= lsb;
  }
  return out;
}

/// Software PEXT: gather the bits of `x` at the set positions of `mask`
/// into a contiguous low-order value.
constexpr Index extract(Index x, Index mask) noexcept {
  Index out = 0;
  unsigned shift = 0;
  while (mask != 0) {
    const Index lsb = mask & (~mask + 1);
    if (x & lsb) out |= Index{1} << shift;
    ++shift;
    mask ^= lsb;
  }
  return out;
}

/// Number of set bits.
constexpr unsigned popcount(Index x) noexcept {
  return static_cast<unsigned>(std::popcount(x));
}

/// True iff `x` is a power of two (and nonzero).
constexpr bool is_pow2(Index x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x > 0.
constexpr unsigned log2_floor(Index x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

}  // namespace hisim::bits
