#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hisim {

/// Exception thrown by all HiSVSIM components on precondition violations
/// or malformed inputs (e.g. bad QASM, invalid partitions).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "HISIM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hisim

/// Always-on invariant check (library is used as infrastructure by the
/// simulator; violations indicate bugs or invalid user input, so we throw
/// rather than abort).
#define HISIM_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::hisim::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HISIM_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::hisim::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                           os_.str());                  \
    }                                                                   \
  } while (0)
