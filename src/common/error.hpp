#pragma once

#include <stdexcept>
#include <string>

namespace hisim {

/// Exception thrown by all HiSVSIM components on precondition violations
/// or malformed inputs (e.g. bad QASM, invalid partitions). The checking
/// macros (HISIM_CHECK and friends) live in common/check.hpp.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace hisim
