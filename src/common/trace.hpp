#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/parallel.hpp"
#include "common/thread_annotations.hpp"

/// Structured tracing and metrics — the observability layer every
/// subsystem reports through (see docs/ARCHITECTURE.md, "Observability").
///
/// Two independent facilities share this header:
///
///   Spans    RAII TraceSpan objects record named, categorized duration
///            events into per-thread bounded event buffers ("rings"),
///            merged serially at export into Chrome trace / Perfetto
///            JSON ({"traceEvents": [...]}, ph:"X" complete events with
///            pid/tid, plus ph:"C" counter samples). Span collection is
///            OFF by default and costs one relaxed atomic load per
///            instrumentation site while disabled — hot loops may carry
///            spans without a guard. Enable via TraceSession::start()
///            (Options::trace and the CLI --trace flag do this for you)
///            or the HISIM_TRACE environment variable.
///
///   Metrics  A MetricsRegistry of named monotonic counters and value
///            distributions (count/min/max/sum -> mean). Metrics are
///            always on: counters are one relaxed fetch_add, and the
///            per-phase numbers they carry feed Result::to_json's
///            "metrics" object on every target, traced or not.
///
/// Naming convention: `module.noun` for metrics ("exchange.bytes",
/// "partition.refine_passes", "pool.tasks"); span names are short phase
/// words ("partition", "apply", "exchange.wait") with the owning
/// subsystem as the category.
///
/// Concurrency contract: event emission is safe from any thread (each
/// thread owns its ring; exiting threads return rings to a free list
/// under the collector mutex, and every event carries its thread id so
/// reuse cannot misattribute). start(), stop(), clear(), and the export
/// functions must be called while no traced work is in flight — the
/// fork-join barrier at the end of every parallel region (and the
/// task_group joins inside the exchange handles) provides exactly that
/// quiescence at the engine's call sites.
namespace hisim::trace {

// ---------------------------------------------------------------------------
// Metrics

/// Monotonic counter. add() is one relaxed fetch_add — safe and cheap
/// from any thread, including pool workers and exchange movers.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Value distribution: count, min, max, sum (mean derived). record()
/// takes the internal lock — intended for per-part/per-step/per-exchange
/// granularity, not per-amplitude loops.
class Distribution {
 public:
  void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;

 private:
  mutable Mutex mu_;
  Snapshot s_ HISIM_GUARDED_BY(mu_);
};

/// Registry of named counters and distributions. counter() /
/// distribution() find-or-create under the registry lock and return a
/// stable reference (std::map nodes never move), so call sites cache the
/// reference and pay only the counter's own relaxed add afterwards.
///
/// Two usage patterns:
///   - MetricsRegistry::global(): process-wide totals ("pool.tasks",
///     "partition.refine_passes") exported with the trace.
///   - A run-local registry on an execute's stack: per-run phase numbers
///     (DistRunReport, Result::metrics) that concurrent executes must
///     not cross-pollute; merged into snapshots/JSON when the run ends.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Distribution& distribution(const std::string& name);

  /// Flat name -> value view: counters as `name`, distributions expanded
  /// to `name.count` / `name.min` / `name.max` / `name.sum` /
  /// `name.mean`. Zero-count distributions are omitted.
  std::map<std::string, double> flat() const;

  /// The flat() view as a JSON object (stable key order).
  std::string to_json() const;

  /// The process-wide registry.
  static MetricsRegistry& global();

 private:
  mutable Mutex mu_;
  // node-based maps: references handed out by counter()/distribution()
  // stay valid for the registry's lifetime.
  std::map<std::string, Counter> counters_ HISIM_GUARDED_BY(mu_);
  std::map<std::string, Distribution> dists_ HISIM_GUARDED_BY(mu_);
};

/// Serializes an already-flattened metrics map as a JSON object — the
/// shared emitter for Result::to_json and the trace file.
std::string metrics_to_json(const std::map<std::string, double>& flat);

// ---------------------------------------------------------------------------
// Spans

/// True while a trace session is collecting. One relaxed atomic load —
/// this is the whole disabled-mode cost of a TraceSpan.
bool enabled();

/// Interns a runtime string (e.g. an optimization pass name) into
/// storage that outlives every event referencing it, returning a stable
/// pointer. Span/counter-sample names passed as plain `const char*` must
/// be string literals; intern anything dynamic.
const char* intern(const std::string& name);

/// RAII duration span: records one ph:"X" complete event from
/// construction to destruction when tracing is enabled, nothing
/// otherwise. `name` and `category` must outlive the session (string
/// literals, or intern()).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches one integer argument (step index, rank, gate count) shown
  /// under the event in the trace viewer. `key` must be a literal.
  void arg(const char* key, std::int64_t value) {
    arg_key_ = key;
    arg_ = value;
  }

 private:
  bool active_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  const char* arg_key_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint64_t begin_ns_ = 0;
};

/// Records one ph:"C" counter sample (a counter track in Perfetto) when
/// tracing is enabled. `name` must be a literal or interned.
void counter_sample(const char* name, double value);

// ---------------------------------------------------------------------------
// Session

/// Handle over the process-global span collector. Spans from every
/// thread land in one event pool; start()/stop() bracket a collection
/// window and the export functions serialize it.
class TraceSession {
 public:
  /// Discards previously collected events and begins collecting.
  static void start();
  /// Stops collecting (already-constructed spans still complete).
  static void stop();
  /// True while collecting — same value as trace::enabled().
  static bool active();

  /// Number of events collected so far (merged over every ring).
  static std::size_t event_count();
  /// Events that were dropped because a thread's ring filled up.
  static std::size_t dropped_count();

  /// The collected events plus the global metrics registry as one
  /// Chrome-trace JSON document:
  ///   {"traceEvents": [...], "displayTimeUnit": "ms", "metrics": {...}}
  /// Loads in Perfetto / chrome://tracing (unknown top-level keys are
  /// ignored there; tools/trace_summary.py reads both blocks).
  static std::string chrome_json();

  /// Writes chrome_json() to `path`; throws hisim::Error naming the path
  /// when it cannot be opened or fully written.
  static void write(const std::string& path);

  /// Discards every collected event (rings stay allocated).
  static void clear();
};

}  // namespace hisim::trace
