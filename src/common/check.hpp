#pragma once

#include <sstream>
#include <string>

#include "common/error.hpp"

/// Invariant checking — the two layers of HiSVSIM's checked-build story.
///
/// 1. HISIM_CHECK / HISIM_CHECK_MSG — always on, in every build type.
///    They guard *preconditions*: malformed user input, invalid options,
///    out-of-range qubits. Violations throw hisim::Error, because callers
///    (the CLI, the QASM front end, tests) legitimately catch and report
///    them.
///
/// 2. HISIM_DCHECK / HISIM_DCHECK_MSG — the deep-validation layer, armed
///    only when the build was configured with -DHISIM_CHECKED=ON. They
///    guard *internal invariants*: properties that hold unless the library
///    itself has a bug (norm preservation, exchange-schedule conservation,
///    fusion-run disjointness). The condition is compiled in every
///    configuration (so a check can never rot behind an #ifdef) but the
///    compiler drops the dead branch when HISIM_CHECKED is off — zero
///    cost in release builds. Violations print and abort(): an invariant
///    violation is a bug, never a recoverable condition, and an abort
///    cannot be silently swallowed by a catch block the way a throw can.
///
/// 3. HISIM_INVARIANT — the abort-on-failure primitive the deep
///    validators (ExecutionPlan::validate, dist::validate_plan, ...)
///    are built from. Always armed: the validators themselves are only
///    *called* from checked builds (or explicitly by tests), but once
///    called they must report violations in every build type — this is
///    what lets tests/test_checked.cpp death-test each validator without
///    a special build.

#ifndef HISIM_CHECKED
#define HISIM_CHECKED 0
#endif

namespace hisim {

/// True when the build was configured with -DHISIM_CHECKED=ON: deep
/// validators run at subsystem seams and HISIM_DCHECK is armed.
inline constexpr bool checked_build = HISIM_CHECKED != 0;

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "HISIM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

/// Prints the violated invariant to stderr and abort()s. Out of line so
/// the cold path costs one call in the macro expansion.
[[noreturn]] void invariant_failure(const char* expr, const char* file,
                                    int line, const std::string& msg);

}  // namespace detail
}  // namespace hisim

/// Always-on precondition check: throws hisim::Error (see layer 1 above).
#define HISIM_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::hisim::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HISIM_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::hisim::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                           os_.str());                  \
    }                                                                   \
  } while (0)

/// Deep invariant check: compiled always, armed only under HISIM_CHECKED,
/// aborts on violation (see layer 2 above).
#define HISIM_DCHECK(expr)                                                   \
  do {                                                                       \
    if constexpr (::hisim::checked_build) {                                  \
      if (!(expr))                                                           \
        ::hisim::detail::invariant_failure(#expr, __FILE__, __LINE__, "");   \
    }                                                                        \
  } while (0)

#define HISIM_DCHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if constexpr (::hisim::checked_build) {                                  \
      if (!(expr)) {                                                         \
        std::ostringstream os_;                                              \
        os_ << msg;                                                          \
        ::hisim::detail::invariant_failure(#expr, __FILE__, __LINE__,        \
                                           os_.str());                       \
      }                                                                      \
    }                                                                        \
  } while (0)

/// Always-armed invariant used inside deep validators (see layer 3 above).
#define HISIM_INVARIANT(expr, msg)                                           \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream os_;                                                \
      os_ << msg;                                                            \
      ::hisim::detail::invariant_failure(#expr, __FILE__, __LINE__,          \
                                         os_.str());                         \
    }                                                                        \
  } while (0)
