#pragma once

#include <chrono>

namespace hisim {

/// Monotonic wall-clock timer used by the benchmark harness and the
/// per-phase accounting in RunReport.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across disjoint intervals (e.g. total gather time over
/// all parts of a run).
class Stopwatch {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  double seconds() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace hisim
