#pragma once

#include <chrono>

#include "common/check.hpp"

namespace hisim {

/// Monotonic wall-clock timer used by the benchmark harness and the
/// per-phase accounting in RunReport.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across disjoint intervals (e.g. total gather time over
/// all parts of a run). start()/stop() must alternate — an unbalanced call
/// would silently misattribute time (double start loses the first interval,
/// stop without start used to add a stale one), so checked builds abort on
/// either misuse.
class Stopwatch {
 public:
  void start() {
    HISIM_DCHECK_MSG(!running_, "Stopwatch::start() while already running");
    timer_.reset();
    running_ = true;
  }
  void stop() {
    HISIM_DCHECK_MSG(running_, "Stopwatch::stop() without a matching start()");
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  double seconds() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace hisim
