#pragma once

/// Clang thread-safety-analysis capability annotations (no-ops on every
/// other compiler). The analysis proves lock discipline at compile time:
/// a field marked HISIM_GUARDED_BY(mu) may only be touched while `mu` is
/// held, and -Werror=thread-safety (on under Clang + HISIM_WERROR, and in
/// the `thread-safety` CI job) turns every violation into a build break.
///
/// Raw std::mutex is invisible to the analysis, so all locking in src/
/// goes through the annotated hisim::Mutex / hisim::MutexLock /
/// hisim::CondVar wrappers in common/parallel.hpp (enforced by the
/// hisim-lint `mutex` rule). Conventions:
///
///   - Guarded fields carry HISIM_GUARDED_BY(mu_) on the declaration.
///   - Locks are scoped: `MutexLock lk(mu_);` — never bare lock()/unlock()
///     pairs across branches.
///   - Condition waits are explicit loops in the locked scope,
///     `while (!ready_) cv_.wait(lk);`, never predicate lambdas: a lambda
///     body is analyzed as a separate function that does not know the
///     lock is held, so guarded reads inside it would (rightly) fail the
///     analysis.
///   - HISIM_NO_THREAD_SAFETY_ANALYSIS is reserved for code whose safety
///     argument is a publication protocol the analysis cannot express;
///     the only sanctioned escape is inside common/parallel.cpp (see
///     Pool::work), and each use must document its protocol.
///
/// Macro set and spelling follow the canonical Clang documentation /
/// Abseil thread_annotations.h so the semantics are exactly the
/// upstream-tested ones.

#if defined(__clang__)
#define HISIM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HISIM_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define HISIM_CAPABILITY(x) HISIM_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define HISIM_SCOPED_CAPABILITY HISIM_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define HISIM_GUARDED_BY(x) HISIM_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define HISIM_PT_GUARDED_BY(x) HISIM_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function acquires the capability (held on return, not on entry).
#define HISIM_ACQUIRE(...) \
  HISIM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define HISIM_RELEASE(...) \
  HISIM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success
/// return value.
#define HISIM_TRY_ACQUIRE(...) \
  HISIM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define HISIM_REQUIRES(...) \
  HISIM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention on
/// non-reentrant locks).
#define HISIM_EXCLUDES(...) HISIM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define HISIM_RETURN_CAPABILITY(x) HISIM_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: function body is not analyzed. Sanctioned only inside
/// common/parallel.cpp internals; every use documents the out-of-band
/// synchronization protocol that replaces the proof.
#define HISIM_NO_THREAD_SAFETY_ANALYSIS \
  HISIM_THREAD_ANNOTATION__(no_thread_safety_analysis)
