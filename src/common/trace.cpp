#include "common/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace hisim::trace {
namespace {

/// The whole disabled-mode cost of a span: this one relaxed load.
std::atomic<bool> g_enabled{false};

/// One trace event: a completed span (ph:"X") or a counter sample
/// (ph:"C"). Names are pointers into static storage (literals or the
/// intern table), so events are POD and rings never allocate on emit.
struct Event {
  enum class Kind : std::uint8_t { Span, Counter };
  const char* name = nullptr;
  const char* category = nullptr;
  const char* arg_key = nullptr;  // Span only; nullptr = no arg
  std::int64_t arg = 0;
  std::uint64_t t0_ns = 0;   // since the collector's base clock
  std::uint64_t dur_ns = 0;  // Span only
  double value = 0.0;        // Counter only
  std::uint32_t tid = 0;
  Kind kind = Kind::Span;
};

/// Bounded single-writer event buffer. The owning thread appends and
/// publishes with a release store of the size; readers (export/merge,
/// only while collection is quiescent) acquire-load the size first —
/// that pairing is the whole synchronization story, no lock on the emit
/// path. Full ring = drop the new event and count it (never overwrite:
/// the earliest events carry the session structure).
class EventRing {
 public:
  static constexpr std::size_t kCapacity = 1u << 14;  // events per thread

  EventRing() : buf_(kCapacity) {}

  void push(const Event& e, std::atomic<std::uint64_t>& dropped) {
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    if (n >= kCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf_[n] = e;
    size_.store(n + 1, std::memory_order_release);
  }

  std::uint32_t size() const {
    return size_.load(std::memory_order_acquire);
  }
  const Event& at(std::uint32_t i) const { return buf_[i]; }
  void clear() { size_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<Event> buf_;
  std::atomic<std::uint32_t> size_{0};
};

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Owns every ring ever created. Rings are never destroyed while the
/// process runs (a dangling thread_local pointer must be impossible);
/// exiting threads return theirs to the free list for the next thread —
/// events survive the handoff, and per-event tids keep them attributed
/// to the thread that emitted them.
class Collector {
 public:
  Collector() : base_(std::chrono::steady_clock::now()) {}

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - base_)
            .count());
  }

  EventRing* acquire_ring() {
    MutexLock lk(mu_);
    if (!free_.empty()) {
      EventRing* r = free_.back();
      free_.pop_back();
      return r;
    }
    rings_.push_back(std::make_unique<EventRing>());
    return rings_.back().get();
  }

  void release_ring(EventRing* r) {
    MutexLock lk(mu_);
    free_.push_back(r);
  }

  /// Visits every collected event. Caller guarantees quiescence (no
  /// traced work in flight) — the contract documented on TraceSession.
  template <typename Fn>
  void for_each_event(Fn&& fn) const {
    MutexLock lk(mu_);
    for (const auto& ring : rings_) {
      const std::uint32_t n = ring->size();
      for (std::uint32_t i = 0; i < n; ++i) fn(ring->at(i));
    }
  }

  std::size_t event_count() const {
    std::size_t n = 0;
    MutexLock lk(mu_);
    for (const auto& ring : rings_) n += ring->size();
    return n;
  }

  void clear() {
    MutexLock lk(mu_);
    for (const auto& ring : rings_) ring->clear();
    dropped_.store(0, std::memory_order_relaxed);
  }

  const char* intern(const std::string& name) {
    MutexLock lk(mu_);
    return interned_.insert(name).first->c_str();
  }

  std::atomic<std::uint64_t>& dropped() { return dropped_; }
  std::size_t dropped_count() const {
    return static_cast<std::size_t>(
        dropped_.load(std::memory_order_relaxed));
  }

 private:
  const std::chrono::steady_clock::time_point base_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<EventRing>> rings_ HISIM_GUARDED_BY(mu_);
  std::vector<EventRing*> free_ HISIM_GUARDED_BY(mu_);
  std::set<std::string> interned_ HISIM_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> dropped_{0};
};

/// Leaked on purpose: thread_local ring handles release into the
/// collector from thread-exit destructors whose order against static
/// destruction is unspecified — a collector that never dies makes that
/// path unconditionally safe.
Collector& collector() {
  static Collector* c = new Collector;
  return *c;
}

/// Per-thread ring handle; the destructor hands the ring back when the
/// thread exits (task_group workers come and go per exchange).
struct ThreadRing {
  EventRing* ring = nullptr;
  ~ThreadRing() {
    if (ring) collector().release_ring(ring);
  }
};

void push_event(Event e) {
  thread_local ThreadRing tl;
  if (!tl.ring) tl.ring = collector().acquire_ring();
  e.tid = thread_id();
  tl.ring->push(e, collector().dropped());
}

void json_escaped(std::ostringstream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
  os << '"';
}

/// HISIM_TRACE autostart: a non-empty value enables collection from
/// process start; any value other than "1" is also an output path
/// written at exit (the CLI's --trace flag is the explicit spelling).
const bool g_env_autostart = [] {
  // getenv is safe here despite concurrency-mt-unsafe's blanket rule:
  // this initializer runs once during static init, before main and
  // before any worker thread exists.
  const char* env = std::getenv("HISIM_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return false;
  TraceSession::start();
  static const std::string path = env;
  if (path != "1") {
    std::atexit([] {
      TraceSession::stop();
      try {
        TraceSession::write(path);
      } catch (const Error& e) {
        std::fprintf(stderr, "HISIM_TRACE: %s\n", e.what());
      }
    });
  }
  return true;
}();

}  // namespace

// ---------------------------------------------------------------------------
// Metrics

void Distribution::record(double v) {
  MutexLock lk(mu_);
  if (s_.count == 0) {
    s_.min = s_.max = v;
  } else {
    if (v < s_.min) s_.min = v;
    if (v > s_.max) s_.max = v;
  }
  s_.sum += v;
  ++s_.count;
}

Distribution::Snapshot Distribution::snapshot() const {
  MutexLock lk(mu_);
  return s_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lk(mu_);
  return counters_[name];
}

Distribution& MetricsRegistry::distribution(const std::string& name) {
  MutexLock lk(mu_);
  return dists_[name];
}

std::map<std::string, double> MetricsRegistry::flat() const {
  std::map<std::string, double> out;
  MutexLock lk(mu_);
  for (const auto& [name, c] : counters_)
    out[name] = static_cast<double>(c.value());
  for (const auto& [name, d] : dists_) {
    const Distribution::Snapshot s = d.snapshot();
    if (s.count == 0) continue;
    out[name + ".count"] = static_cast<double>(s.count);
    out[name + ".min"] = s.min;
    out[name + ".max"] = s.max;
    out[name + ".sum"] = s.sum;
    out[name + ".mean"] = s.mean();
  }
  return out;
}

std::string MetricsRegistry::to_json() const { return metrics_to_json(flat()); }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked, like Collector
  return *r;
}

std::string metrics_to_json(const std::map<std::string, double>& flat) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, value] : flat) {
    if (!first) os << ", ";
    first = false;
    json_escaped(os, name.c_str());
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    os << ": " << buf;
  }
  os << '}';
  return os.str();
}

// ---------------------------------------------------------------------------
// Spans

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

const char* intern(const std::string& name) {
  return collector().intern(name);
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : active_(enabled()) {
  if (!active_) return;
  name_ = name;
  category_ = category;
  begin_ns_ = collector().now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  Event e;
  e.kind = Event::Kind::Span;
  e.name = name_;
  e.category = category_;
  e.arg_key = arg_key_;
  e.arg = arg_;
  e.t0_ns = begin_ns_;
  e.dur_ns = collector().now_ns() - begin_ns_;
  push_event(e);
}

void counter_sample(const char* name, double value) {
  if (!enabled()) return;
  Event e;
  e.kind = Event::Kind::Counter;
  e.name = name;
  e.t0_ns = collector().now_ns();
  e.value = value;
  push_event(e);
}

// ---------------------------------------------------------------------------
// Session

void TraceSession::start() {
  collector().clear();
  g_enabled.store(true, std::memory_order_relaxed);
}

void TraceSession::stop() {
  g_enabled.store(false, std::memory_order_relaxed);
}

bool TraceSession::active() { return enabled(); }

std::size_t TraceSession::event_count() { return collector().event_count(); }

std::size_t TraceSession::dropped_count() {
  return collector().dropped_count();
}

void TraceSession::clear() { collector().clear(); }

std::string TraceSession::chrome_json() {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  collector().for_each_event([&](const Event& e) {
    os << (first ? "\n" : ",\n");
    first = false;
    char buf[64];
    if (e.kind == Event::Kind::Span) {
      os << "{\"name\": ";
      json_escaped(os, e.name);
      os << ", \"cat\": ";
      json_escaped(os, e.category != nullptr ? e.category : "default");
      // Chrome trace timestamps are microseconds; fractional digits keep
      // the nanosecond resolution.
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(e.t0_ns) * 1e-3);
      os << ", \"ph\": \"X\", \"ts\": " << buf;
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(e.dur_ns) * 1e-3);
      os << ", \"dur\": " << buf;
      os << ", \"pid\": 1, \"tid\": " << e.tid;
      if (e.arg_key != nullptr) {
        os << ", \"args\": {";
        json_escaped(os, e.arg_key);
        os << ": " << e.arg << '}';
      }
      os << '}';
    } else {
      os << "{\"name\": ";
      json_escaped(os, e.name);
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(e.t0_ns) * 1e-3);
      os << ", \"ph\": \"C\", \"ts\": " << buf;
      os << ", \"pid\": 1, \"tid\": " << e.tid;
      std::snprintf(buf, sizeof buf, "%.9g", e.value);
      os << ", \"args\": {\"value\": " << buf << "}}";
    }
  });
  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"metrics\": "
     << MetricsRegistry::global().to_json() << "\n}\n";
  return os.str();
}

void TraceSession::write(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw Error("cannot open trace output '" + path + "' for writing");
  out << chrome_json();
  out.flush();
  if (!out)
    throw Error("failed writing trace output '" + path + "'");
}

}  // namespace hisim::trace
