#include "common/parallel.hpp"

#include <atomic>
#include <memory>

#include "common/trace.hpp"

namespace hisim::parallel {
namespace {

std::atomic<unsigned> g_threads{0};  // 0 = hardware_concurrency

// Depth of fork-join regions (or inline_scopes) active on this thread;
// nonzero makes for_range run inline instead of touching the shared pool.
thread_local int tl_inline_depth = 0;

struct InlineDepthGuard {
  InlineDepthGuard() { ++tl_inline_depth; }
  ~InlineDepthGuard() { --tl_inline_depth; }
};

unsigned resolved_threads() {
  const unsigned configured = g_threads.load(std::memory_order_relaxed);
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// A minimal fork-join pool: workers sleep between parallel regions.
/// Recreated if the requested width changes. One region at a time:
/// concurrent run() callers serialize on run_mu_.
///
/// Lock discipline (thread-safety analysis): the wakeup protocol state
/// (epoch_/stop_/pending_) and the region parameters are all guarded by
/// mu_. The one deliberate exception is work(), which reads the region
/// parameters lock-free — see its comment for the publication protocol
/// that replaces the proof; it is the single sanctioned
/// HISIM_NO_THREAD_SAFETY_ANALYSIS escape in the tree.
class Pool {
 public:
  explicit Pool(unsigned width) : width_(width) {
    for (unsigned i = 1; i < width_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~Pool() {
    {
      MutexLock lk(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  unsigned width() const { return width_; }

  void run(Index begin, Index end, Index grain,
           const std::function<void(Index, Index)>& fn)
      HISIM_EXCLUDES(run_mu_, mu_) {
    MutexLock run_lk(run_mu_);  // one region at a time
    const Index n = end - begin;
    const Index chunks = (n + grain - 1) / grain;
    static trace::Counter& tasks =
        trace::MetricsRegistry::global().counter("pool.tasks");
    tasks.add(static_cast<std::uint64_t>(chunks));
    trace::TraceSpan span("pool.region", "parallel");
    span.arg("chunks", static_cast<std::int64_t>(chunks));
    {
      MutexLock lk(mu_);
      begin_ = begin;
      end_ = end;
      grain_ = grain;
      fn_ = &fn;
      next_chunk_.store(0, std::memory_order_relaxed);
      pending_ = static_cast<int>(width_);
      ++epoch_;
    }
    cv_.notify_all();
    work(chunks);  // calling thread participates
    MutexLock lk(mu_);
    while (pending_ != 0) done_cv_.wait(lk);
    fn_ = nullptr;
  }

 private:
  void worker_loop(unsigned /*id*/) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(Index, Index)>* fn = nullptr;
      Index chunks = 0;
      {
        MutexLock lk(mu_);
        while (!stop_ && epoch_ == seen) cv_.wait(lk);
        seen = epoch_;
        if (stop_) return;
        fn = fn_;
        chunks = fn ? (end_ - begin_ + grain_ - 1) / grain_ : 0;
      }
      if (fn) work(chunks);
    }
  }

  /// Reads the region parameters (begin_/end_/grain_/fn_) without mu_ —
  /// safe by the publication protocol the analysis cannot express: run()
  /// writes them under mu_ *before* bumping epoch_, every worker
  /// observes the bump under mu_ before calling in (acquiring the
  /// happens-before edge), and the fields stay frozen until pending_
  /// (whose decrement below is back under mu_) reaches zero. The only
  /// sanctioned no-analysis escape outside the annotation header.
  void work(Index chunks) HISIM_NO_THREAD_SAFETY_ANALYSIS {
    {
      InlineDepthGuard in_region;  // nested for_range inside fn runs inline
      for (;;) {
        const Index c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) break;
        const Index lo = begin_ + c * grain_;
        const Index hi = std::min(end_, lo + grain_);
        (*fn_)(lo, hi);
      }
    }
    MutexLock lk(mu_);
    if (--pending_ == 0) done_cv_.notify_all();
  }

  unsigned width_;
  std::vector<std::thread> workers_;
  Mutex run_mu_;
  Mutex mu_;
  CondVar cv_, done_cv_;
  std::uint64_t epoch_ HISIM_GUARDED_BY(mu_) = 0;
  bool stop_ HISIM_GUARDED_BY(mu_) = false;
  int pending_ HISIM_GUARDED_BY(mu_) = 0;
  // Region parameters: written under mu_ by run(), read lock-free inside
  // work() during a region (see work()'s publication protocol).
  Index begin_ HISIM_GUARDED_BY(mu_) = 0;
  Index end_ HISIM_GUARDED_BY(mu_) = 0;
  Index grain_ HISIM_GUARDED_BY(mu_) = 1;
  std::atomic<Index> next_chunk_{0};
  const std::function<void(Index, Index)>* fn_ HISIM_GUARDED_BY(mu_) = nullptr;
};

/// Shared ownership so a width change (set_num_threads from another
/// thread) cannot destroy a Pool that a concurrent for_range is still
/// running a region on — the old pool dies when its last region ends.
std::shared_ptr<Pool> pool_instance(unsigned width) {
  static std::shared_ptr<Pool> pool;  // guarded by mu (function-local)
  static Mutex mu;
  MutexLock lk(mu);
  if (!pool || pool->width() != width) pool = std::make_shared<Pool>(width);
  return pool;
}

}  // namespace

void set_num_threads(unsigned n) {
  g_threads.store(n, std::memory_order_relaxed);
}

unsigned num_threads() { return resolved_threads(); }

void for_range(Index begin, Index end,
               const std::function<void(Index, Index)>& fn, Index grain) {
  if (end <= begin) return;
  const unsigned width = resolved_threads();
  if (width <= 1 || end - begin <= grain || tl_inline_depth > 0) {
    fn(begin, end);
    return;
  }
  pool_instance(width)->run(begin, end, grain, fn);
}

inline_scope::inline_scope() { ++tl_inline_depth; }
inline_scope::~inline_scope() { --tl_inline_depth; }

struct latch::Impl {
  mutable Mutex mu;
  mutable CondVar cv;
  std::ptrdiff_t count HISIM_GUARDED_BY(mu);
};

latch::latch(std::ptrdiff_t count) : impl_(new Impl{{}, {}, count}) {}

latch::~latch() { delete impl_; }

void latch::count_down(std::ptrdiff_t n) {
  MutexLock lk(impl_->mu);
  impl_->count -= n;
  if (impl_->count <= 0) impl_->cv.notify_all();
}

void latch::wait() const {
  MutexLock lk(impl_->mu);
  while (impl_->count > 0) impl_->cv.wait(lk);
}

bool latch::try_wait() const {
  MutexLock lk(impl_->mu);
  return impl_->count <= 0;
}

void task_group::spawn(std::function<void()> fn) {
  threads_.emplace_back([fn = std::move(fn)] {
    inline_scope inline_only;
    fn();
  });
}

void task_group::join() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

}  // namespace hisim::parallel
