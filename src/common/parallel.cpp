#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace hisim::parallel {
namespace {

unsigned g_threads = 0;  // 0 = hardware_concurrency

unsigned resolved_threads() {
  if (g_threads != 0) return g_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// A minimal fork-join pool: workers sleep between parallel regions.
/// Recreated if the requested width changes.
class Pool {
 public:
  explicit Pool(unsigned width) : width_(width) {
    for (unsigned i = 1; i < width_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~Pool() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  unsigned width() const { return width_; }

  void run(Index begin, Index end, Index grain,
           const std::function<void(Index, Index)>& fn) {
    const Index n = end - begin;
    const Index chunks = (n + grain - 1) / grain;
    {
      std::lock_guard lk(mu_);
      begin_ = begin;
      end_ = end;
      grain_ = grain;
      fn_ = &fn;
      next_chunk_.store(0, std::memory_order_relaxed);
      pending_ = static_cast<int>(width_);
      ++epoch_;
    }
    cv_.notify_all();
    work(chunks);  // calling thread participates
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  void worker_loop(unsigned /*id*/) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(Index, Index)>* fn = nullptr;
      Index chunks = 0;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        seen = epoch_;
        if (stop_) return;
        fn = fn_;
        chunks = fn ? (end_ - begin_ + grain_ - 1) / grain_ : 0;
      }
      if (fn) work(chunks);
    }
  }

  void work(Index chunks) {
    for (;;) {
      const Index c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      const Index lo = begin_ + c * grain_;
      const Index hi = std::min(end_, lo + grain_);
      (*fn_)(lo, hi);
    }
    std::lock_guard lk(mu_);
    if (--pending_ == 0) done_cv_.notify_all();
  }

  unsigned width_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_, done_cv_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  int pending_ = 0;
  Index begin_ = 0, end_ = 0, grain_ = 1;
  std::atomic<Index> next_chunk_{0};
  const std::function<void(Index, Index)>* fn_ = nullptr;
};

Pool* pool_instance(unsigned width) {
  static std::unique_ptr<Pool> pool;
  static std::mutex mu;
  std::lock_guard lk(mu);
  if (!pool || pool->width() != width) pool = std::make_unique<Pool>(width);
  return pool.get();
}

}  // namespace

void set_num_threads(unsigned n) { g_threads = n; }

unsigned num_threads() { return resolved_threads(); }

void for_range(Index begin, Index end,
               const std::function<void(Index, Index)>& fn, Index grain) {
  if (end <= begin) return;
  const unsigned width = resolved_threads();
  if (width <= 1 || end - begin <= grain) {
    fn(begin, end);
    return;
  }
  pool_instance(width)->run(begin, end, grain, fn);
}

}  // namespace hisim::parallel
