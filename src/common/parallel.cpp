#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace hisim::parallel {
namespace {

std::atomic<unsigned> g_threads{0};  // 0 = hardware_concurrency

// Depth of fork-join regions (or inline_scopes) active on this thread;
// nonzero makes for_range run inline instead of touching the shared pool.
thread_local int tl_inline_depth = 0;

struct InlineDepthGuard {
  InlineDepthGuard() { ++tl_inline_depth; }
  ~InlineDepthGuard() { --tl_inline_depth; }
};

unsigned resolved_threads() {
  const unsigned configured = g_threads.load(std::memory_order_relaxed);
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// A minimal fork-join pool: workers sleep between parallel regions.
/// Recreated if the requested width changes. One region at a time:
/// concurrent run() callers serialize on run_mu_.
class Pool {
 public:
  explicit Pool(unsigned width) : width_(width) {
    for (unsigned i = 1; i < width_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~Pool() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  unsigned width() const { return width_; }

  void run(Index begin, Index end, Index grain,
           const std::function<void(Index, Index)>& fn) {
    std::lock_guard run_lk(run_mu_);  // one region at a time
    const Index n = end - begin;
    const Index chunks = (n + grain - 1) / grain;
    {
      std::lock_guard lk(mu_);
      begin_ = begin;
      end_ = end;
      grain_ = grain;
      fn_ = &fn;
      next_chunk_.store(0, std::memory_order_relaxed);
      pending_ = static_cast<int>(width_);
      ++epoch_;
    }
    cv_.notify_all();
    work(chunks);  // calling thread participates
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  void worker_loop(unsigned /*id*/) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(Index, Index)>* fn = nullptr;
      Index chunks = 0;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        seen = epoch_;
        if (stop_) return;
        fn = fn_;
        chunks = fn ? (end_ - begin_ + grain_ - 1) / grain_ : 0;
      }
      if (fn) work(chunks);
    }
  }

  void work(Index chunks) {
    {
      InlineDepthGuard in_region;  // nested for_range inside fn runs inline
      for (;;) {
        const Index c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) break;
        const Index lo = begin_ + c * grain_;
        const Index hi = std::min(end_, lo + grain_);
        (*fn_)(lo, hi);
      }
    }
    std::lock_guard lk(mu_);
    if (--pending_ == 0) done_cv_.notify_all();
  }

  unsigned width_;
  std::vector<std::thread> workers_;
  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable cv_, done_cv_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  int pending_ = 0;
  Index begin_ = 0, end_ = 0, grain_ = 1;
  std::atomic<Index> next_chunk_{0};
  const std::function<void(Index, Index)>* fn_ = nullptr;
};

/// Shared ownership so a width change (set_num_threads from another
/// thread) cannot destroy a Pool that a concurrent for_range is still
/// running a region on — the old pool dies when its last region ends.
std::shared_ptr<Pool> pool_instance(unsigned width) {
  static std::shared_ptr<Pool> pool;
  static std::mutex mu;
  std::lock_guard lk(mu);
  if (!pool || pool->width() != width) pool = std::make_shared<Pool>(width);
  return pool;
}

}  // namespace

void set_num_threads(unsigned n) {
  g_threads.store(n, std::memory_order_relaxed);
}

unsigned num_threads() { return resolved_threads(); }

void for_range(Index begin, Index end,
               const std::function<void(Index, Index)>& fn, Index grain) {
  if (end <= begin) return;
  const unsigned width = resolved_threads();
  if (width <= 1 || end - begin <= grain || tl_inline_depth > 0) {
    fn(begin, end);
    return;
  }
  pool_instance(width)->run(begin, end, grain, fn);
}

inline_scope::inline_scope() { ++tl_inline_depth; }
inline_scope::~inline_scope() { --tl_inline_depth; }

struct latch::Impl {
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  std::ptrdiff_t count;
};

latch::latch(std::ptrdiff_t count) : impl_(new Impl{{}, {}, count}) {}

latch::~latch() { delete impl_; }

void latch::count_down(std::ptrdiff_t n) {
  std::lock_guard lk(impl_->mu);
  impl_->count -= n;
  if (impl_->count <= 0) impl_->cv.notify_all();
}

void latch::wait() const {
  std::unique_lock lk(impl_->mu);
  impl_->cv.wait(lk, [this] { return impl_->count <= 0; });
}

bool latch::try_wait() const {
  std::lock_guard lk(impl_->mu);
  return impl_->count <= 0;
}

void task_group::spawn(std::function<void()> fn) {
  threads_.emplace_back([fn = std::move(fn)] {
    inline_scope inline_only;
    fn();
  });
}

void task_group::join() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

}  // namespace hisim::parallel
