#include "sv/observables.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"

namespace hisim::sv {
namespace {

/// Fixed, machine-independent block grid for deterministic parallel
/// reductions over amplitude ranges: per-block partials are computed
/// concurrently and merged serially in block order, so the floating-point
/// summation order — and therefore every downstream bit (pooled counts,
/// shot outcomes) — is identical no matter how many workers ran.
struct BlockGrid {
  Index blocks;
  Index per;  // amplitudes per block (last block may be short)
};

BlockGrid block_grid(Index n, Index max_blocks = 256) {
  constexpr Index kGrain = Index{1} << 14;
  Index blocks = std::min((n + kGrain - 1) / kGrain, max_blocks);
  if (blocks == 0) blocks = 1;
  return {blocks, (n + blocks - 1) / blocks};
}

}  // namespace

PauliString PauliString::parse(const std::string& text) {
  PauliString out;
  std::set<Qubit> seen;
  auto add = [&](char op, Qubit q) {
    Pauli p;
    switch (std::toupper(op)) {
      case 'X': p = Pauli::X; break;
      case 'Y': p = Pauli::Y; break;
      case 'Z': p = Pauli::Z; break;
      case 'I': return;
      default:
        throw Error(std::string("bad Pauli operator '") + op + "'");
    }
    HISIM_CHECK_MSG(seen.insert(q).second,
                    "duplicate qubit " << q << " in Pauli string");
    out.factors.emplace_back(q, p);
  };
  // Indexed form? (contains a digit)
  const bool indexed = std::any_of(text.begin(), text.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c));
  });
  if (indexed) {
    std::size_t i = 0;
    while (i < text.size()) {
      const char c = text[i];
      if (c == '*' || c == ' ' || c == ',') { ++i; continue; }
      HISIM_CHECK_MSG(i + 1 < text.size() &&
                          std::isdigit(static_cast<unsigned char>(text[i + 1])),
                      "expected qubit index after '" << c << "'");
      std::size_t j = i + 1;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j])))
        ++j;
      add(c, static_cast<Qubit>(std::stoul(text.substr(i + 1, j - i - 1))));
      i = j;
    }
  } else {
    // One letter per qubit starting at qubit 0.
    Qubit q = 0;
    for (char c : text) {
      if (c == ' ') continue;
      add(c, q++);
    }
  }
  return out;
}

std::string PauliString::to_string() const {
  if (factors.empty()) return "I";
  std::ostringstream os;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (i) os << "*";
    os << "XYZ"[static_cast<int>(factors[i].second)] << factors[i].first;
  }
  return os.str();
}

double expectation(const StateVector& state, const PauliString& p) {
  // P|i> = phase(i) |i ^ flip_mask>, with phase from Z and Y factors.
  Index flip = 0, zmask = 0, ymask = 0;
  for (const auto& [q, op] : p.factors) {
    HISIM_CHECK(q < state.num_qubits());
    switch (op) {
      case Pauli::X: flip |= Index{1} << q; break;
      case Pauli::Y: flip |= Index{1} << q; ymask |= Index{1} << q; break;
      case Pauli::Z: zmask |= Index{1} << q; break;
    }
  }
  const unsigned ny = bits::popcount(ymask);
  // Global factor from Y = i * X * Z decomposition: each Y contributes a
  // factor of i and acts as X (bit flip) combined with Z (sign on the
  // source bit). <psi|P|psi> = sum_i conj(a_{i^flip}) * phase(i) * a_i.
  cplx acc = 0.0;
  for (Index i = 0; i < state.size(); ++i) {
    const cplx a = state[i];
    if (a == cplx{}) continue;
    // Sign from Z factors and the Z-part of Y factors.
    const unsigned zbits = bits::popcount(i & (zmask | ymask));
    double sign = (zbits & 1u) ? -1.0 : 1.0;
    cplx phase = sign;
    // i^ny overall factor from the Y decomposition.
    switch (ny & 3u) {
      case 1: phase *= cplx(0, 1); break;
      case 2: phase *= -1.0; break;
      case 3: phase *= cplx(0, -1); break;
      default: break;
    }
    acc += std::conj(state[i ^ flip]) * phase * a;
  }
  HISIM_CHECK_MSG(std::abs(acc.imag()) < 1e-9,
                  "non-real Pauli expectation (bug): " << acc.imag());
  return acc.real();
}

double expectation(const StateVector& state,
                   const std::vector<std::pair<double, PauliString>>& ham) {
  double e = 0.0;
  for (const auto& [w, p] : ham) e += w * expectation(state, p);
  return e;
}

std::vector<double> marginal_probabilities(const StateVector& state,
                                           const std::vector<Qubit>& qubits) {
  for (Qubit q : qubits) HISIM_CHECK(q < state.num_qubits());
  const unsigned k = static_cast<unsigned>(qubits.size());
  HISIM_CHECK(k <= 30);
  std::vector<double> probs(Index{1} << k, 0.0);
  // Blocked accumulation over parallel::for_range: each block fills a
  // private table, merged serially in block order (deterministic). Cap
  // the block count so the partial tables never dominate the state
  // itself when the marginal register is wide.
  const Index table = probs.size();
  const BlockGrid grid = block_grid(
      state.size(), std::max<Index>(1, state.size() / std::max<Index>(
                                           Index{1}, table)));
  const auto accumulate = [&](std::vector<double>& into, Index lo,
                              Index hi) {
    for (Index i = lo; i < hi; ++i) {
      const double pr = std::norm(state[i]);
      if (pr == 0.0) continue;
      Index code = 0;
      for (unsigned j = 0; j < k; ++j)
        code |= static_cast<Index>(bits::test(i, qubits[j])) << j;
      into[code] += pr;
    }
  };
  if (grid.blocks <= 1) {
    accumulate(probs, 0, state.size());
    return probs;
  }
  std::vector<std::vector<double>> partial(grid.blocks);
  parallel::for_range(
      0, grid.blocks,
      [&](Index lo, Index hi) {
        for (Index b = lo; b < hi; ++b) {
          partial[b].assign(table, 0.0);
          accumulate(partial[b], b * grid.per,
                     std::min(state.size(), (b + 1) * grid.per));
        }
      },
      /*grain=*/1);
  for (const std::vector<double>& local : partial)
    for (Index j = 0; j < table; ++j) probs[j] += local[j];
  return probs;
}

std::vector<Index> sample(const StateVector& state, std::size_t shots,
                          Rng& rng) {
  // Cumulative distribution + binary search per shot. The prefix sum is
  // built as a two-pass block scan over parallel::for_range: pass 1
  // computes within-block inclusive prefixes and block totals, a serial
  // exclusive scan turns the totals into block offsets (fixed fp order),
  // and pass 2 adds each block's offset back in. Shots are then drawn
  // against the total mass, so an unnormalized state — e.g. a weighted
  // Kraus-unraveling trajectory — samples its *normalized* distribution.
  const Index n = state.size();
  std::vector<double> cdf(n);
  const BlockGrid grid = block_grid(n);
  std::vector<double> block_sum(grid.blocks, 0.0);
  parallel::for_range(
      0, grid.blocks,
      [&](Index lo, Index hi) {
        for (Index b = lo; b < hi; ++b) {
          const Index end = std::min(n, (b + 1) * grid.per);
          double acc = 0.0;
          for (Index i = b * grid.per; i < end; ++i) {
            acc += std::norm(state[i]);
            cdf[i] = acc;
          }
          block_sum[b] = acc;
        }
      },
      /*grain=*/1);
  double total = 0.0;
  std::vector<double> offset(grid.blocks);
  for (Index b = 0; b < grid.blocks; ++b) {
    offset[b] = total;
    total += block_sum[b];
  }
  parallel::for_range(
      1, grid.blocks,
      [&](Index lo, Index hi) {
        for (Index b = lo; b < hi; ++b) {
          const Index end = std::min(n, (b + 1) * grid.per);
          for (Index i = b * grid.per; i < end; ++i) cdf[i] += offset[b];
        }
      },
      /*grain=*/1);
  HISIM_CHECK_MSG(total > 0.0, "cannot sample from a zero-norm state");
  std::vector<Index> out(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform() * total;
    out[s] = static_cast<Index>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
  return out;
}

}  // namespace hisim::sv
