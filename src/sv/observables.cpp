#include "sv/observables.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace hisim::sv {

PauliString PauliString::parse(const std::string& text) {
  PauliString out;
  std::set<Qubit> seen;
  auto add = [&](char op, Qubit q) {
    Pauli p;
    switch (std::toupper(op)) {
      case 'X': p = Pauli::X; break;
      case 'Y': p = Pauli::Y; break;
      case 'Z': p = Pauli::Z; break;
      case 'I': return;
      default:
        throw Error(std::string("bad Pauli operator '") + op + "'");
    }
    HISIM_CHECK_MSG(seen.insert(q).second,
                    "duplicate qubit " << q << " in Pauli string");
    out.factors.emplace_back(q, p);
  };
  // Indexed form? (contains a digit)
  const bool indexed = std::any_of(text.begin(), text.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c));
  });
  if (indexed) {
    std::size_t i = 0;
    while (i < text.size()) {
      const char c = text[i];
      if (c == '*' || c == ' ' || c == ',') { ++i; continue; }
      HISIM_CHECK_MSG(i + 1 < text.size() &&
                          std::isdigit(static_cast<unsigned char>(text[i + 1])),
                      "expected qubit index after '" << c << "'");
      std::size_t j = i + 1;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j])))
        ++j;
      add(c, static_cast<Qubit>(std::stoul(text.substr(i + 1, j - i - 1))));
      i = j;
    }
  } else {
    // One letter per qubit starting at qubit 0.
    Qubit q = 0;
    for (char c : text) {
      if (c == ' ') continue;
      add(c, q++);
    }
  }
  return out;
}

std::string PauliString::to_string() const {
  if (factors.empty()) return "I";
  std::ostringstream os;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (i) os << "*";
    os << "XYZ"[static_cast<int>(factors[i].second)] << factors[i].first;
  }
  return os.str();
}

double expectation(const StateVector& state, const PauliString& p) {
  // P|i> = phase(i) |i ^ flip_mask>, with phase from Z and Y factors.
  Index flip = 0, zmask = 0, ymask = 0;
  for (const auto& [q, op] : p.factors) {
    HISIM_CHECK(q < state.num_qubits());
    switch (op) {
      case Pauli::X: flip |= Index{1} << q; break;
      case Pauli::Y: flip |= Index{1} << q; ymask |= Index{1} << q; break;
      case Pauli::Z: zmask |= Index{1} << q; break;
    }
  }
  const unsigned ny = bits::popcount(ymask);
  // Global factor from Y = i * X * Z decomposition: each Y contributes a
  // factor of i and acts as X (bit flip) combined with Z (sign on the
  // source bit). <psi|P|psi> = sum_i conj(a_{i^flip}) * phase(i) * a_i.
  cplx acc = 0.0;
  for (Index i = 0; i < state.size(); ++i) {
    const cplx a = state[i];
    if (a == cplx{}) continue;
    // Sign from Z factors and the Z-part of Y factors.
    const unsigned zbits = bits::popcount(i & (zmask | ymask));
    double sign = (zbits & 1u) ? -1.0 : 1.0;
    cplx phase = sign;
    // i^ny overall factor from the Y decomposition.
    switch (ny & 3u) {
      case 1: phase *= cplx(0, 1); break;
      case 2: phase *= -1.0; break;
      case 3: phase *= cplx(0, -1); break;
      default: break;
    }
    acc += std::conj(state[i ^ flip]) * phase * a;
  }
  HISIM_CHECK_MSG(std::abs(acc.imag()) < 1e-9,
                  "non-real Pauli expectation (bug): " << acc.imag());
  return acc.real();
}

double expectation(const StateVector& state,
                   const std::vector<std::pair<double, PauliString>>& ham) {
  double e = 0.0;
  for (const auto& [w, p] : ham) e += w * expectation(state, p);
  return e;
}

std::vector<double> marginal_probabilities(const StateVector& state,
                                           const std::vector<Qubit>& qubits) {
  for (Qubit q : qubits) HISIM_CHECK(q < state.num_qubits());
  const unsigned k = static_cast<unsigned>(qubits.size());
  HISIM_CHECK(k <= 30);
  std::vector<double> probs(Index{1} << k, 0.0);
  for (Index i = 0; i < state.size(); ++i) {
    const double pr = std::norm(state[i]);
    if (pr == 0.0) continue;
    Index code = 0;
    for (unsigned j = 0; j < k; ++j)
      code |= static_cast<Index>(bits::test(i, qubits[j])) << j;
    probs[code] += pr;
  }
  return probs;
}

std::vector<Index> sample(const StateVector& state, std::size_t shots,
                          Rng& rng) {
  // Cumulative distribution + binary search per shot.
  std::vector<double> cdf(state.size());
  double acc = 0.0;
  for (Index i = 0; i < state.size(); ++i) {
    acc += std::norm(state[i]);
    cdf[i] = acc;
  }
  HISIM_CHECK_MSG(std::abs(acc - 1.0) < 1e-6, "state is not normalized");
  std::vector<Index> out(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform() * acc;
    out[s] = static_cast<Index>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
  return out;
}

}  // namespace hisim::sv
