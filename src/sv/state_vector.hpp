#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace hisim::sv {

/// Dense state vector of an n-qubit register (2^n complex amplitudes,
/// little-endian: bit q of an index is qubit q). Initialized to |0...0>.
class StateVector {
 public:
  StateVector() = default;
  explicit StateVector(unsigned num_qubits) : num_qubits_(num_qubits) {
    // Validate before allocating (2^35 amplitudes = 512 GiB).
    HISIM_CHECK_MSG(num_qubits <= 34, "state vector would exceed 256 GiB");
    amps_.assign(dim(num_qubits), cplx{});
    amps_[0] = 1.0;
  }

  unsigned num_qubits() const { return num_qubits_; }
  Index size() const { return amps_.size(); }
  Index bytes() const { return size() * kAmpBytes; }

  cplx& operator[](Index i) { return amps_[i]; }
  const cplx& operator[](Index i) const { return amps_[i]; }

  cplx* data() { return amps_.data(); }
  const cplx* data() const { return amps_.data(); }

  /// Sum of |a_i|^2 (1.0 for a normalized state).
  double norm() const;

  /// Probability of measuring qubit q as 1.
  double prob_one(Qubit q) const;

  /// Largest |a_i - b_i| between two states of equal size.
  double max_abs_diff(const StateVector& other) const;

  /// |<this|other>|^2 (1.0 iff identical up to global phase).
  double fidelity(const StateVector& other) const;

  /// Resets to |0...0>.
  void reset();

 private:
  unsigned num_qubits_ = 0;
  std::vector<cplx> amps_;
};

/// Deep validator (see common/check.hpp): aborts unless `actual` matches
/// `expected` within the accumulated-rounding tolerance a unitary gate
/// sequence may introduce. `where` names the seam for the failure message.
/// Called by the execute paths of checked builds after every unitary
/// segment; callable directly by tests (death tests corrupt a norm and
/// assert the abort).
void validate_norm_preserved(double expected, double actual,
                             const char* where);

}  // namespace hisim::sv
