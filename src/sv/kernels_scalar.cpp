// Scalar kernel tier: the reference implementations from
// kernels_scalar.inl, compiled for the baseline ISA with -ffp-contract=off
// (see CMakeLists.txt) so its operation sequence is the contract every
// other tier must reproduce.

#define HISIM_KERNEL_NS scalar_impl
#include "sv/kernels_scalar.inl"
#undef HISIM_KERNEL_NS

namespace hisim::sv {

const KernelOps& scalar_kernel_ops() {
  static const KernelOps ops = {
      KernelTier::Scalar,
      "scalar",
      &scalar_impl::apply_1q,
      &scalar_impl::apply_1q_diag,
      &scalar_impl::apply_ctrl_1q,
      &scalar_impl::apply_ctrl_diag,
      &scalar_impl::apply_diag,
      &scalar_impl::apply_2q,
  };
  return ops;
}

}  // namespace hisim::sv
