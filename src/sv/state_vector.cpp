#include "sv/state_vector.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace hisim::sv {

double StateVector::norm() const {
  double n = 0.0;
  for (const cplx& a : amps_) n += std::norm(a);
  return n;
}

double StateVector::prob_one(Qubit q) const {
  HISIM_CHECK(q < num_qubits_);
  double p = 0.0;
  for (Index i = 0; i < size(); ++i)
    if (bits::test(i, q)) p += std::norm(amps_[i]);
  return p;
}

double StateVector::max_abs_diff(const StateVector& other) const {
  HISIM_CHECK(size() == other.size());
  double m = 0.0;
  for (Index i = 0; i < size(); ++i)
    m = std::max(m, std::abs(amps_[i] - other.amps_[i]));
  return m;
}

double StateVector::fidelity(const StateVector& other) const {
  HISIM_CHECK(size() == other.size());
  cplx ip = 0.0;
  for (Index i = 0; i < size(); ++i) ip += std::conj(amps_[i]) * other.amps_[i];
  return std::norm(ip);
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{});
  amps_[0] = 1.0;
}

void validate_norm_preserved(double expected, double actual,
                             const char* where) {
  // A unitary gate accumulates O(eps) relative norm drift per application;
  // 1e-9 absolute headroom covers tens of thousands of gates at double
  // precision while still catching any real loss (a dropped amplitude
  // pair changes the norm by its probability mass, orders of magnitude
  // above rounding).
  const double tol = 1e-9 * std::max(1.0, expected);
  HISIM_INVARIANT(std::abs(actual - expected) <= tol,
                  "state norm not preserved across unitary segment ["
                      << where << "]: expected " << expected << ", got "
                      << actual);
}

}  // namespace hisim::sv
