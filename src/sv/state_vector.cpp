#include "sv/state_vector.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"

namespace hisim::sv {

double StateVector::norm() const {
  double n = 0.0;
  for (const cplx& a : amps_) n += std::norm(a);
  return n;
}

double StateVector::prob_one(Qubit q) const {
  HISIM_CHECK(q < num_qubits_);
  double p = 0.0;
  for (Index i = 0; i < size(); ++i)
    if (bits::test(i, q)) p += std::norm(amps_[i]);
  return p;
}

double StateVector::max_abs_diff(const StateVector& other) const {
  HISIM_CHECK(size() == other.size());
  double m = 0.0;
  for (Index i = 0; i < size(); ++i)
    m = std::max(m, std::abs(amps_[i] - other.amps_[i]));
  return m;
}

double StateVector::fidelity(const StateVector& other) const {
  HISIM_CHECK(size() == other.size());
  cplx ip = 0.0;
  for (Index i = 0; i < size(); ++i) ip += std::conj(amps_[i]) * other.amps_[i];
  return std::norm(ip);
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{});
  amps_[0] = 1.0;
}

}  // namespace hisim::sv
