#pragma once

#include "circuit/circuit.hpp"
#include "sv/kernel_dispatch.hpp"
#include "sv/state_vector.hpp"

namespace hisim::sv {

/// Reference flat simulator: applies every gate directly to the full state
/// vector (no partitioning). Ground truth for all correctness tests and
/// the non-hierarchical arm of the Table II comparison.
class FlatSimulator {
 public:
  /// Applies all gates of `c` to `state` (sizes must match). `ops`
  /// selects the kernel tier (nullptr = the Auto-resolved default).
  void run(const Circuit& c, StateVector& state,
           const KernelOps* ops = nullptr) const;

  /// Convenience: simulate from |0..0>.
  StateVector simulate(const Circuit& c) const;
};

}  // namespace hisim::sv
