#pragma once

#include "partition/multilevel.hpp"
#include "partition/partition.hpp"
#include "sv/kernel_dispatch.hpp"
#include "sv/state_vector.hpp"

namespace hisim::sv {

/// Per-run accounting of the Gather-Execute-Scatter model. Byte counts
/// follow the paper's memory-traffic reasoning: gather/scatter stream the
/// full outer state vector once each per part, while gate execution stays
/// inside the (cache-sized) inner vectors.
struct HierarchicalStats {
  std::size_t parts = 0;
  std::size_t inner_parts = 0;      // second-level parts (two-level runs)
  double gather_seconds = 0.0;
  double execute_seconds = 0.0;
  double scatter_seconds = 0.0;
  Index outer_bytes_moved = 0;      // bytes read+written on the outer vector
  Index inner_bytes_touched = 0;    // bytes processed inside inner vectors
  double flops = 0.0;

  double total_seconds() const {
    return gather_seconds + execute_seconds + scatter_seconds;
  }
};

/// Hierarchical simulator implementing Algorithm 1: for each part, for
/// every assignment of the qubits outside the part, gather the matching
/// amplitudes into an inner state vector, run the part's gates there (with
/// qubits remapped to inner slots), and scatter the results back.
class HierarchicalSimulator {
 public:
  /// Single-level run. `parts` must be a valid partitioning of `c`.
  /// `ops` selects the kernel tier for the inner applies (nullptr = the
  /// Auto-resolved default).
  HierarchicalStats run(const Circuit& c,
                        const partition::Partitioning& parts,
                        StateVector& state,
                        const KernelOps* ops = nullptr) const;

  /// Two-level run (Sec. IV multi-level): level-1 parts are gathered from
  /// the outer vector; each level-2 part is gathered from the level-1
  /// inner vector into a smaller cache-resident vector. `pad_to`
  /// implements the paper's padding rule: inner parts with fewer qubits
  /// than `pad_to` borrow qubits from the parent part for spatial
  /// locality (0 disables).
  HierarchicalStats run(const Circuit& c,
                        const partition::TwoLevelPartitioning& parts,
                        StateVector& state, unsigned pad_to = 0,
                        const KernelOps* ops = nullptr) const;

  StateVector simulate(const Circuit& c,
                       const partition::Partitioning& parts,
                       HierarchicalStats* stats = nullptr) const;
};

/// Executes one part against `outer`: the gather-execute-scatter cycle of
/// Algorithm 1. `gates` are indices into `c`; `part_qubits` must be the
/// sorted working set of those gates. Exposed for reuse by the two-level
/// runner and the distributed executor.
void run_part(const Circuit& c, std::span<const std::size_t> gates,
              std::span<const Qubit> part_qubits, StateVector& outer,
              HierarchicalStats& stats, const KernelOps* ops = nullptr);

}  // namespace hisim::sv
