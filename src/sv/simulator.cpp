#include "sv/simulator.hpp"

#include "common/check.hpp"
#include "sv/kernels.hpp"

namespace hisim::sv {

void FlatSimulator::run(const Circuit& c, StateVector& state,
                        const KernelOps* ops) const {
  HISIM_CHECK(state.num_qubits() == c.num_qubits());
  const KernelOps& k = ops != nullptr ? *ops : kernel_ops();
  for (const Gate& g : c.gates()) apply_gate(state, g, k);
}

StateVector FlatSimulator::simulate(const Circuit& c) const {
  StateVector state(c.num_qubits());
  run(c, state);
  return state;
}

}  // namespace hisim::sv
