#include "sv/kernels.hpp"

#include <algorithm>
#include <array>

#include "common/bits.hpp"
#include "common/parallel.hpp"

namespace hisim::sv {
namespace {

/// Single-qubit 2x2 kernel: enumerate pairs (i0, i1 = i0 | 2^q).
void apply_1q(StateVector& s, Qubit q, const Matrix& u) {
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const Index half = s.size() >> 1;
  const Index qb = Index{1} << q;
  cplx* a = s.data();
  parallel::for_range(0, half, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index i0 = bits::insert_zero(m, q);
      const Index i1 = i0 | qb;
      const cplx a0 = a[i0], a1 = a[i1];
      a[i0] = u00 * a0 + u01 * a1;
      a[i1] = u10 * a0 + u11 * a1;
    }
  });
}

/// Controlled 2x2 kernel: pairs on the target where all control bits set.
void apply_controlled_1q(StateVector& s, Index ctrl_mask, Qubit target,
                         const Matrix& u) {
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const Index half = s.size() >> 1;
  const Index tb = Index{1} << target;
  cplx* a = s.data();
  parallel::for_range(0, half, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index i0 = bits::insert_zero(m, target);
      if ((i0 & ctrl_mask) != ctrl_mask) continue;
      const Index i1 = i0 | tb;
      const cplx a0 = a[i0], a1 = a[i1];
      a[i0] = u00 * a0 + u01 * a1;
      a[i1] = u10 * a0 + u11 * a1;
    }
  });
}

/// Diagonal kernel: one multiply per amplitude, phases indexed by the
/// gate-local bit pattern.
void apply_diagonal(StateVector& s, const std::vector<Qubit>& qs,
                    const std::vector<cplx>& phases) {
  cplx* a = s.data();
  const unsigned k = static_cast<unsigned>(qs.size());
  parallel::for_range(0, s.size(), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      Index code = 0;
      for (unsigned j = 0; j < k; ++j)
        code |= static_cast<Index>(bits::test(i, qs[j])) << j;
      a[i] *= phases[code];
    }
  });
}

void apply_swap(StateVector& s, Qubit qa, Qubit qb) {
  if (qa == qb) return;
  const Index ba = Index{1} << qa, bb = Index{1} << qb;
  cplx* a = s.data();
  // Enumerate indices with qa=1, qb=0 and swap with the (0,1) partner.
  parallel::for_range(0, s.size(), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      if ((i & ba) && !(i & bb)) std::swap(a[i], a[(i & ~ba) | bb]);
    }
  });
}

/// Generic k-qubit dense kernel.
void apply_generic(StateVector& s, const std::vector<Qubit>& qs,
                   const Matrix& u) {
  const unsigned k = static_cast<unsigned>(qs.size());
  HISIM_CHECK_MSG(k <= 16, "generic kernel limited to 16-qubit gates");
  const Index kdim = Index{1} << k;
  Index mask = 0;
  for (Qubit q : qs) mask |= Index{1} << q;
  // offset[t]: contribution of local pattern t to the global index.
  std::vector<Index> offset(kdim);
  for (Index t = 0; t < kdim; ++t) {
    Index off = 0;
    for (unsigned j = 0; j < k; ++j)
      if (bits::test(t, j)) off |= Index{1} << qs[j];
    offset[t] = off;
  }
  const Index outer = s.size() >> k;
  const Index inv = ~mask & (s.size() - 1);
  cplx* a = s.data();
  parallel::for_range(
      0, outer,
      [&](Index lo, Index hi) {
        std::vector<cplx> in(kdim), out(kdim);
        for (Index m = lo; m < hi; ++m) {
          const Index base = bits::deposit(m, inv);
          for (Index t = 0; t < kdim; ++t) in[t] = a[base | offset[t]];
          for (Index r = 0; r < kdim; ++r) {
            cplx acc = 0.0;
            for (Index t = 0; t < kdim; ++t) acc += u(r, t) * in[t];
            out[r] = acc;
          }
          for (Index t = 0; t < kdim; ++t) a[base | offset[t]] = out[t];
        }
      },
      /*grain=*/Index{1} << std::max(0, 12 - static_cast<int>(k)));
}

/// Diagonal phase table for the diagonal kinds.
std::vector<cplx> diagonal_phases(const Gate& g) {
  const Matrix m = g.matrix();
  std::vector<cplx> ph(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) ph[i] = m(i, i);
  return ph;
}

void apply_gate_on(StateVector& state, const Gate& g,
                   const std::vector<Qubit>& qs) {
  for (Qubit q : qs) HISIM_CHECK(q < state.num_qubits());
  // Exact identities: the id gate and an unfilled noise slot. Skipping
  // them (rather than sweeping a diagonal of ones) keeps instrumented
  // plans bit-identical to — and as fast as — their ideal circuits when
  // no trajectory operator is substituted.
  if (g.kind == GateKind::I || g.kind == GateKind::NoiseSlot) return;
  if (g.is_diagonal()) {
    apply_diagonal(state, qs, diagonal_phases(g));
    return;
  }
  switch (g.kind) {
    case GateKind::SWAP:
      apply_swap(state, qs[0], qs[1]);
      return;
    case GateKind::RXX: case GateKind::Unitary:
      apply_generic(state, qs, g.matrix());
      return;
    case GateKind::CSWAP: {
      // Controlled swap: swap qs[1], qs[2] where control bit set.
      const Index cb = Index{1} << qs[0];
      const Index ba = Index{1} << qs[1], bb = Index{1} << qs[2];
      cplx* a = state.data();
      parallel::for_range(0, state.size(), [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i)
          if ((i & cb) && (i & ba) && !(i & bb))
            std::swap(a[i], a[(i & ~ba) | bb]);
      });
      return;
    }
    default:
      break;
  }
  const unsigned nc = g.num_controls();
  if (nc == 0) {
    apply_1q(state, qs[0], g.target_matrix());
  } else {
    Index cm = 0;
    for (unsigned i = 0; i < nc; ++i) cm |= Index{1} << qs[i];
    apply_controlled_1q(state, cm, qs.back(), g.target_matrix());
  }
}

}  // namespace

void apply_gate(StateVector& state, const Gate& gate) {
  apply_gate_on(state, gate, gate.qubits);
}

void apply_gate_remapped(StateVector& state, const Gate& gate,
                         std::span<const Qubit> slot_of) {
  std::vector<Qubit> qs(gate.qubits.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    HISIM_CHECK(gate.qubits[i] < slot_of.size());
    qs[i] = slot_of[gate.qubits[i]];
  }
  apply_gate_on(state, gate, qs);
}

double gate_flops(const Gate& gate, unsigned num_qubits) {
  // One 2x2 matrix-vector multiply = 28 FLOPs (paper Sec. III-A).
  if (gate.kind == GateKind::I || gate.kind == GateKind::NoiseSlot)
    return 0.0;  // applied as exact no-ops by the kernels
  const double pairs = static_cast<double>(dim(num_qubits)) / 2.0;
  if (gate.is_diagonal())  // one complex multiply (6 FLOPs) per amplitude
    return 6.0 * static_cast<double>(dim(num_qubits));
  const unsigned nc = gate.num_controls();
  if (nc > 0 || gate.arity() == 1) {
    // controls reduce the touched pair count by 2^nc
    return 28.0 * pairs / static_cast<double>(Index{1} << nc);
  }
  // k-qubit dense: 2^k x 2^k matvec per block: 8*2^k*2^k - 2*2^k FLOPs.
  const unsigned k = gate.arity();
  const double kd = static_cast<double>(Index{1} << k);
  const double blocks = static_cast<double>(dim(num_qubits)) / kd;
  return blocks * (8.0 * kd * kd - 2.0 * kd);
}

}  // namespace hisim::sv
