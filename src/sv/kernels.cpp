#include "sv/kernels.hpp"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"

namespace hisim::sv {
namespace {

/// Spread compact index m over the complement of `sorted_bits` (ascending
/// zero-insertion) — enumerates only the touched subset of bases.
Index spread(Index m, std::span<const Qubit> sorted_bits) {
  for (Qubit b : sorted_bits) m = bits::insert_zero(m, b);
  return m;
}

std::vector<Qubit> sorted_qubits(const std::vector<Qubit>& qs) {
  std::vector<Qubit> sorted(qs);
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// ---- permutation kernels ---------------------------------------------------
// Pure index moves: no arithmetic, so no per-tier variants — every tier is
// bit-identical here by construction. All enumerate only the touched
// subset via compact spread().

/// X on q: swap the halves of each pair (size/2 swaps).
void perm_x(StateVector& s, Qubit q) {
  const Index qb = Index{1} << q;
  cplx* a = s.data();
  parallel::for_range(0, s.size() >> 1, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index i0 = bits::insert_zero(m, q);
      std::swap(a[i0], a[i0 | qb]);
    }
  });
}

/// CX/CCX/MCX: swap target halves where all controls are set —
/// size >> (nc+1) swaps, control-satisfied bases enumerated directly.
void perm_ctrl_x(StateVector& s, std::span<const Qubit> sorted_bits,
                 Index cmask, Qubit target) {
  const Index count = s.size() >> sorted_bits.size();
  const Index tb = Index{1} << target;
  cplx* a = s.data();
  parallel::for_range(0, count, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index i0 = spread(m, sorted_bits) | cmask;
      std::swap(a[i0], a[i0 | tb]);
    }
  });
}

/// SWAP(qa, qb): exchange the (1,0)/(0,1) amplitudes of each 4-block —
/// size/4 swaps instead of scanning all amplitudes and testing bits.
void perm_swap(StateVector& s, Qubit qa, Qubit qb) {
  if (qa == qb) return;
  const Index ba = Index{1} << qa, bb = Index{1} << qb;
  const std::array<Qubit, 2> sorted = {std::min(qa, qb), std::max(qa, qb)};
  cplx* a = s.data();
  parallel::for_range(0, s.size() >> 2, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index base = spread(m, sorted);
      std::swap(a[base | ba], a[base | bb]);
    }
  });
}

/// CSWAP(c, qa, qb): size/8 swaps over control-satisfied 8-blocks.
void perm_cswap(StateVector& s, Qubit c, Qubit qa, Qubit qb) {
  if (qa == qb) return;
  const Index cb = Index{1} << c;
  const Index ba = Index{1} << qa, bb = Index{1} << qb;
  std::array<Qubit, 3> sorted = {c, qa, qb};
  std::sort(sorted.begin(), sorted.end());
  cplx* a = s.data();
  parallel::for_range(0, s.size() >> 3, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index base = spread(m, sorted) | cb;
      std::swap(a[base | ba], a[base | bb]);
    }
  });
}

// ---- generic k-qubit dense kernel ------------------------------------------
// Gather/scatter through per-chunk buffers; shared by every tier (the
// k >= 3 dense case is rare after fusion caps runs at 2-3 qubits).

void apply_generic(StateVector& s, const std::vector<Qubit>& qs,
                   const Matrix& u) {
  const unsigned k = static_cast<unsigned>(qs.size());
  HISIM_CHECK_MSG(k <= 16, "generic kernel limited to 16-qubit gates");
  const Index kdim = Index{1} << k;
  Index mask = 0;
  for (Qubit q : qs) mask |= Index{1} << q;
  // offset[t]: contribution of local pattern t to the global index.
  std::vector<Index> offset(kdim);
  for (Index t = 0; t < kdim; ++t) {
    Index off = 0;
    for (unsigned j = 0; j < k; ++j)
      if (bits::test(t, j)) off |= Index{1} << qs[j];
    offset[t] = off;
  }
  const Index outer = s.size() >> k;
  const Index inv = ~mask & (s.size() - 1);
  cplx* a = s.data();
  parallel::for_range(
      0, outer,
      [&](Index lo, Index hi) {
        std::vector<cplx> in(kdim), out(kdim);
        for (Index m = lo; m < hi; ++m) {
          const Index base = bits::deposit(m, inv);
          for (Index t = 0; t < kdim; ++t) in[t] = a[base | offset[t]];
          for (Index r = 0; r < kdim; ++r) {
            cplx acc = 0.0;
            for (Index t = 0; t < kdim; ++t) acc += u(r, t) * in[t];
            out[r] = acc;
          }
          for (Index t = 0; t < kdim; ++t) a[base | offset[t]] = out[t];
        }
      },
      /*grain=*/Index{1} << std::max(0, 12 - static_cast<int>(k)));
}

/// Diagonal phase table for the diagonal kinds.
std::vector<cplx> diagonal_phases(const Gate& g) {
  const Matrix m = g.matrix();
  std::vector<cplx> ph(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) ph[i] = m(i, i);
  return ph;
}

void apply_gate_on(StateVector& state, const Gate& g,
                   const std::vector<Qubit>& qs, const KernelOps& ops) {
  for (Qubit q : qs) HISIM_CHECK(q < state.num_qubits());
  // Per-apply twin of the plan-level tier check (plan_validate.cpp): a
  // Simd table must never reach dispatch on a host that cannot run it.
  HISIM_DCHECK_MSG(ops.tier != KernelTier::Simd || simd_kernels_available(),
                   "simd kernel table dispatched on a host without AVX2");
  // Exact identities: the id gate and an unfilled noise slot. Skipping
  // them (rather than sweeping a diagonal of ones) keeps instrumented
  // plans bit-identical to — and as fast as — their ideal circuits when
  // no trajectory operator is substituted.
  if (g.kind == GateKind::I || g.kind == GateKind::NoiseSlot) return;
  // Pure permutations first: never touch the ops table (and MCX skips
  // matrix materialization entirely, so wide controls carry no 2^k cost).
  switch (g.kind) {
    case GateKind::X:
      perm_x(state, qs[0]);
      return;
    case GateKind::CX: case GateKind::CCX: case GateKind::MCX: {
      const std::vector<Qubit> sorted = sorted_qubits(qs);
      Index cmask = 0;
      for (unsigned i = 0; i + 1 < qs.size(); ++i) cmask |= Index{1} << qs[i];
      perm_ctrl_x(state, sorted, cmask, qs.back());
      return;
    }
    case GateKind::SWAP:
      perm_swap(state, qs[0], qs[1]);
      return;
    case GateKind::CSWAP:
      perm_cswap(state, qs[0], qs[1], qs[2]);
      return;
    default:
      break;
  }
  if (g.is_diagonal()) {
    const unsigned nc = g.num_controls();
    if (nc > 0) {  // CZ / CRZ / CP
      const Matrix t = g.target_matrix();
      const std::vector<Qubit> sorted = sorted_qubits(qs);
      Index cmask = 0;
      for (unsigned i = 0; i < nc; ++i) cmask |= Index{1} << qs[i];
      ops.apply_ctrl_diag(state, sorted, cmask, qs.back(), t(0, 0), t(1, 1));
    } else if (g.arity() == 1) {
      const Matrix m = g.matrix();
      ops.apply_1q_diag(state, qs[0], m(0, 0), m(1, 1));
    } else {  // RZZ
      ops.apply_diag(state, qs, diagonal_phases(g));
    }
    return;
  }
  if (g.arity() == 2 && g.num_controls() == 0) {  // RXX, raw 2q unitaries
    const Matrix m = g.matrix();
    ops.apply_2q(state, qs[0], qs[1], m.data().data());
    return;
  }
  if (g.kind == GateKind::Unitary) {
    if (g.arity() == 1) {  // raw 1q operators (incl. sampled Kraus ops)
      const Matrix m = g.matrix();
      ops.apply_1q(state, qs[0], m.data().data());
    } else {
      apply_generic(state, qs, g.matrix());
    }
    return;
  }
  const unsigned nc = g.num_controls();
  if (nc == 0) {
    const Matrix m = g.target_matrix();
    ops.apply_1q(state, qs[0], m.data().data());
  } else {
    const Matrix m = g.target_matrix();
    const std::vector<Qubit> sorted = sorted_qubits(qs);
    Index cmask = 0;
    for (unsigned i = 0; i < nc; ++i) cmask |= Index{1} << qs[i];
    ops.apply_ctrl_1q(state, sorted, cmask, qs.back(), m.data().data());
  }
}

}  // namespace

void apply_gate(StateVector& state, const Gate& gate, const KernelOps& ops) {
  apply_gate_on(state, gate, gate.qubits, ops);
}

void apply_gate_remapped(StateVector& state, const Gate& gate,
                         std::span<const Qubit> slot_of,
                         const KernelOps& ops) {
  std::vector<Qubit> qs(gate.qubits.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    HISIM_CHECK(gate.qubits[i] < slot_of.size());
    qs[i] = slot_of[gate.qubits[i]];
  }
  apply_gate_on(state, gate, qs, ops);
}

double gate_flops(const Gate& gate, unsigned num_qubits) {
  if (gate.kind == GateKind::I || gate.kind == GateKind::NoiseSlot)
    return 0.0;  // applied as exact no-ops by the kernels
  switch (gate.kind) {
    // Pure index permutations: amplitudes move, nothing is computed.
    case GateKind::X: case GateKind::CX: case GateKind::CCX:
    case GateKind::MCX: case GateKind::SWAP: case GateKind::CSWAP:
      return 0.0;
    default:
      break;
  }
  const double amps = static_cast<double>(dim(num_qubits));
  if (gate.is_diagonal()) {
    // One complex multiply (6 FLOPs) per touched amplitude; controls cut
    // the touched count by 2^nc (compact enumeration).
    const unsigned nc = gate.num_controls();
    return 6.0 * amps / static_cast<double>(Index{1} << nc);
  }
  const unsigned nc = gate.num_controls();
  if (nc > 0 || gate.arity() == 1) {
    // One 2x2 matrix-vector multiply = 28 FLOPs (paper Sec. III-A);
    // controls reduce the enumerated pair count by 2^nc.
    return 28.0 * (amps / 2.0) / static_cast<double>(Index{1} << nc);
  }
  if (gate.arity() == 2) {
    // Unrolled 4x4 kernel: 16 complex multiplies (6) + 12 complex adds
    // (2) = 120 FLOPs per 4-amplitude block (fused 2q runs, RXX).
    return 120.0 * (amps / 4.0);
  }
  // k-qubit dense: 2^k x 2^k matvec per block: 8*2^k*2^k - 2*2^k FLOPs.
  const unsigned k = gate.arity();
  const double kd = static_cast<double>(Index{1} << k);
  return (amps / kd) * (8.0 * kd * kd - 2.0 * kd);
}

}  // namespace hisim::sv
