// Scalar reference bodies for every KernelOps entry, plus the canonical
// complex-arithmetic primitives all tiers must reproduce exactly.
//
// This file is included — not compiled — by each kernel translation unit
// with HISIM_KERNEL_NS defined to a TU-unique namespace name:
//
//   * kernels_scalar.cpp includes it as the scalar tier proper;
//   * kernels_avx2.cpp includes it again (as a different namespace) for
//     its short-run remainders and minimum-qubit-0 fallbacks.
//
// The per-TU namespace is deliberate: these functions are compiled once
// per tier under that tier's arch flags, and the symbols must never be
// ODR-merged across translation units — a linker picking the AVX2-encoded
// copy for the scalar tier would fault on pre-AVX2 hosts.
//
// Determinism contract (what "bit-identical across tiers" rests on):
//  * complex multiply is exactly  re = ar*br - ai*bi,  im = ai*br + ar*bi
//    — the same even/odd lane recipe `_mm256_addsub_pd` implements;
//  * sums of 2 (and the 4x4 kernel's sums of 4) accumulate pairwise in
//    matrix-column order: (c0 + c1), then ((c0+c1) + (c2+c3));
//  * no FMA: both kernel TUs build with -ffp-contract=off and the AVX2
//    code uses mul/addsub only, so every tier performs the identical
//    sequence of IEEE-754 double operations;
//  * multiplications by an exact 1.0 phase are *skipped*, never applied
//    (multiplying by 1+0i can flip the sign of a -0.0 component).

#ifndef HISIM_KERNEL_NS
#error "define HISIM_KERNEL_NS before including kernels_scalar.inl"
#endif

#include <algorithm>

#include "common/bits.hpp"
#include "common/parallel.hpp"
#include "sv/kernel_dispatch.hpp"

namespace hisim::sv {
namespace HISIM_KERNEL_NS {

// ---- canonical primitives --------------------------------------------------

inline cplx cmul(cplx a, cplx b) {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.imag() * b.real() + a.real() * b.imag()};
}

inline cplx cadd(cplx a, cplx b) {
  return {a.real() + b.real(), a.imag() + b.imag()};
}

inline bool is_one(cplx v) { return v == cplx{1.0, 0.0}; }

/// Spread compact index m over the complement of `sorted_bits`: inserts a
/// zero at each listed position, ascending. The compact-enumeration
/// primitive shared by the controlled and permutation kernels.
inline Index spread(Index m, std::span<const Qubit> sorted_bits) {
  for (Qubit b : sorted_bits) m = bits::insert_zero(m, b);
  return m;
}

/// Canonical 2x2 pair update used by dense 1q and controlled-1q kernels.
inline void pair_update(cplx* a, Index i0, Index i1, const cplx* u) {
  const cplx a0 = a[i0], a1 = a[i1];
  a[i0] = cadd(cmul(a0, u[0]), cmul(a1, u[1]));
  a[i1] = cadd(cmul(a0, u[2]), cmul(a1, u[3]));
}

/// Canonical 4x4 quad update (row-major u, pairwise accumulation).
inline void quad_update(cplx* a, Index i0, Index i1, Index i2, Index i3,
                        const cplx* u) {
  const cplx a0 = a[i0], a1 = a[i1], a2 = a[i2], a3 = a[i3];
  a[i0] = cadd(cadd(cmul(a0, u[0]), cmul(a1, u[1])),
               cadd(cmul(a2, u[2]), cmul(a3, u[3])));
  a[i1] = cadd(cadd(cmul(a0, u[4]), cmul(a1, u[5])),
               cadd(cmul(a2, u[6]), cmul(a3, u[7])));
  a[i2] = cadd(cadd(cmul(a0, u[8]), cmul(a1, u[9])),
               cadd(cmul(a2, u[10]), cmul(a3, u[11])));
  a[i3] = cadd(cadd(cmul(a0, u[12]), cmul(a1, u[13])),
               cadd(cmul(a2, u[14]), cmul(a3, u[15])));
}

// ---- KernelOps entries -----------------------------------------------------

inline void apply_1q(StateVector& s, Qubit q, const cplx* u) {
  const Index half = s.size() >> 1;
  const Index qb = Index{1} << q;
  cplx* a = s.data();
  parallel::for_range(0, half, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index i0 = bits::insert_zero(m, q);
      pair_update(a, i0, i0 | qb, u);
    }
  });
}

inline void apply_1q_diag(StateVector& s, Qubit q, cplx d0, cplx d1) {
  const Index qb = Index{1} << q;
  const bool skip0 = is_one(d0), skip1 = is_one(d1);
  if (skip0 && skip1) return;
  cplx* a = s.data();
  parallel::for_range(0, s.size(), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      if (i & qb) {
        if (!skip1) a[i] = cmul(a[i], d1);
      } else {
        if (!skip0) a[i] = cmul(a[i], d0);
      }
    }
  });
}

inline void apply_ctrl_1q(StateVector& s, std::span<const Qubit> sorted_bits,
                          Index cmask, Qubit target, const cplx* u) {
  const Index count = s.size() >> sorted_bits.size();
  const Index tb = Index{1} << target;
  cplx* a = s.data();
  parallel::for_range(0, count, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index i0 = spread(m, sorted_bits) | cmask;
      pair_update(a, i0, i0 | tb, u);
    }
  });
}

inline void apply_ctrl_diag(StateVector& s, std::span<const Qubit> sorted_bits,
                            Index cmask, Qubit target, cplx d0, cplx d1) {
  const bool skip0 = is_one(d0), skip1 = is_one(d1);
  if (skip0 && skip1) return;
  const Index count = s.size() >> sorted_bits.size();
  const Index tb = Index{1} << target;
  cplx* a = s.data();
  parallel::for_range(0, count, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index i0 = spread(m, sorted_bits) | cmask;
      if (!skip0) a[i0] = cmul(a[i0], d0);
      if (!skip1) a[i0 | tb] = cmul(a[i0 | tb], d1);
    }
  });
}

inline void apply_diag(StateVector& s, std::span<const Qubit> qs,
                       std::span<const cplx> phases) {
  const unsigned k = static_cast<unsigned>(qs.size());
  cplx* a = s.data();
  parallel::for_range(0, s.size(), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      Index code = 0;
      for (unsigned j = 0; j < k; ++j)
        code |= static_cast<Index>(bits::test(i, qs[j])) << j;
      const cplx d = phases[code];
      if (is_one(d)) continue;
      a[i] = cmul(a[i], d);
    }
  });
}

inline void apply_2q(StateVector& s, Qubit qa, Qubit qb, const cplx* u) {
  const Index ba = Index{1} << qa, bb = Index{1} << qb;
  const Qubit lo_q = std::min(qa, qb), hi_q = std::max(qa, qb);
  cplx* a = s.data();
  parallel::for_range(0, s.size() >> 2, [&](Index lo, Index hi) {
    for (Index m = lo; m < hi; ++m) {
      const Index base = bits::insert_zero(bits::insert_zero(m, lo_q), hi_q);
      quad_update(a, base, base | ba, base | bb, base | ba | bb, u);
    }
  });
}

}  // namespace HISIM_KERNEL_NS
}  // namespace hisim::sv
