#include "sv/cache_sim.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace hisim::sv {

CacheLevel::CacheLevel(Index capacity_bytes, unsigned ways,
                       unsigned line_bytes)
    : ways_(ways) {
  HISIM_CHECK(bits::is_pow2(line_bytes) && bits::is_pow2(capacity_bytes));
  line_shift_ = bits::log2_floor(line_bytes);
  const Index lines = capacity_bytes / line_bytes;
  HISIM_CHECK(lines >= ways && lines % ways == 0);
  num_sets_ = lines / ways;
  tags_.assign(lines, ~Index{0});
  lru_.assign(lines, 0);
}

bool CacheLevel::access(Index byte_addr) {
  const Index line = byte_addr >> line_shift_;
  const Index set = line & (num_sets_ - 1);
  const Index base = set * ways_;
  ++clock_;
  for (unsigned w = 0; w < ways_; ++w) {
    if (tags_[base + w] == line) {
      lru_[base + w] = clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Evict the LRU way.
  unsigned victim = 0;
  for (unsigned w = 1; w < ways_; ++w)
    if (lru_[base + w] < lru_[base + victim]) victim = w;
  tags_[base + victim] = line;
  lru_[base + victim] = clock_;
  return false;
}

CacheHierarchy::CacheHierarchy(const Config& cfg) {
  levels_.emplace_back(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes);
  levels_.emplace_back(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes);
  levels_.emplace_back(cfg.l3_bytes, cfg.l3_ways, cfg.line_bytes);
}

void CacheHierarchy::access(Index byte_addr) {
  for (unsigned lvl = 0; lvl < 3; ++lvl) {
    if (levels_[lvl].access(byte_addr)) {
      ++served_[lvl];
      // Install in upper levels happened in their access() miss path
      // already (we only reach level lvl after missing above).
      return;
    }
  }
  ++served_[3];
}

double CacheHierarchy::pct(unsigned level) const {
  const Index t = total();
  return t == 0 ? 0.0
               : 100.0 * static_cast<double>(served_[level]) /
                     static_cast<double>(t);
}

void CacheHierarchy::reset_counters() {
  served_ = {};
  for (auto& l : levels_) l.reset_counters();
}

namespace {

/// Address of amplitude i of the outer vector.
constexpr Index amp_addr(Index i) { return i * kAmpBytes; }

/// Replays one gate sweeping a vector of 2^n amplitudes laid out at byte
/// offset `base`. Models the paper's Fig. 1 access pattern: single-qubit
/// (and controlled single-target) gates touch amplitude pairs with stride
/// 2^target; diagonal gates stream linearly; generic k-qubit gates gather
/// blocks.
void replay_gate(const Gate& g, unsigned n, Index base,
                 CacheHierarchy& cache) {
  const Index dim_n = Index{1} << n;
  if (g.is_diagonal()) {
    for (Index i = 0; i < dim_n; ++i) cache.access(base + amp_addr(i));
    return;
  }
  const unsigned nc = g.num_controls();
  if (nc > 0 || g.arity() == 1) {
    const Qubit t = g.qubits.back();
    Index cm = 0;
    for (unsigned j = 0; j < nc; ++j) cm |= Index{1} << g.qubits[j];
    const Index tb = Index{1} << t;
    for (Index m = 0; m < (dim_n >> 1); ++m) {
      const Index i0 = bits::insert_zero(m, t);
      if ((i0 & cm) != cm) continue;
      cache.access(base + amp_addr(i0));
      cache.access(base + amp_addr(i0 | tb));
      cache.access(base + amp_addr(i0));           // write back
      cache.access(base + amp_addr(i0 | tb));
    }
    return;
  }
  // Generic k-qubit block gather.
  const unsigned k = g.arity();
  Index mask = 0;
  for (Qubit q : g.qubits) mask |= Index{1} << q;
  const Index inv = ~mask & (dim_n - 1);
  const Index kdim = Index{1} << k;
  std::vector<Index> offset(kdim);
  for (Index t = 0; t < kdim; ++t) offset[t] = bits::deposit(t, mask);
  for (Index m = 0; m < (dim_n >> k); ++m) {
    const Index b = bits::deposit(m, inv);
    for (Index t = 0; t < kdim; ++t)
      cache.access(base + amp_addr(b | offset[t]));
    for (Index t = 0; t < kdim; ++t)
      cache.access(base + amp_addr(b | offset[t]));
  }
}

}  // namespace

void replay_flat_trace(const Circuit& c, CacheHierarchy& cache) {
  for (const Gate& g : c.gates())
    replay_gate(g, c.num_qubits(), /*base=*/0, cache);
}

void replay_hierarchical_trace(const Circuit& c,
                               const partition::Partitioning& parts,
                               CacheHierarchy& cache) {
  const unsigned n = c.num_qubits();
  const Index outer_bytes = dim(n) * kAmpBytes;
  for (const partition::Part& part : parts.parts) {
    const unsigned w = part.working_set();
    // Inner vector lives past the outer one (fresh allocation per part).
    const Index inner_base = outer_bytes;
    Index mask = 0;
    std::vector<Qubit> slot_of(n, 0);
    for (unsigned j = 0; j < w; ++j) {
      mask |= Index{1} << part.qubits[j];
      slot_of[part.qubits[j]] = j;
    }
    const Index inv = ~mask & (dim(n) - 1);
    const Index kdim = Index{1} << w;
    std::vector<Index> offset(kdim);
    for (Index t = 0; t < kdim; ++t) offset[t] = bits::deposit(t, mask);

    // Remapped gates on the inner register.
    std::vector<Gate> inner_gates;
    for (std::size_t gi : part.gates) {
      Gate g = c.gate(gi);
      for (Qubit& q : g.qubits) q = slot_of[q];
      inner_gates.push_back(std::move(g));
    }

    for (Index m = 0; m < (dim(n) >> w); ++m) {
      const Index base = bits::deposit(m, inv);
      for (Index t = 0; t < kdim; ++t) {       // gather
        cache.access(amp_addr(base | offset[t]));
        cache.access(inner_base + amp_addr(t));
      }
      for (const Gate& g : inner_gates) replay_gate(g, w, inner_base, cache);
      for (Index t = 0; t < kdim; ++t) {       // scatter
        cache.access(inner_base + amp_addr(t));
        cache.access(amp_addr(base | offset[t]));
      }
    }
  }
}

}  // namespace hisim::sv
