#include "sv/traffic.hpp"

namespace hisim::sv {
namespace {

TrafficBreakdown::Level level_for(Index working_bytes,
                                  const CacheConfig& cache) {
  if (working_bytes <= cache.l1_bytes) return TrafficBreakdown::L1;
  if (working_bytes <= cache.l2_bytes) return TrafficBreakdown::L2;
  if (working_bytes <= cache.l3_bytes) return TrafficBreakdown::L3;
  return TrafficBreakdown::DRAM;
}

}  // namespace

TrafficBreakdown model_traffic(const Circuit& c,
                               const partition::Partitioning& p,
                               const CacheConfig& cache) {
  TrafficBreakdown out;
  const double sv_bytes = static_cast<double>(dim(c.num_qubits())) * kAmpBytes;
  const auto outer_level = level_for(static_cast<Index>(sv_bytes), cache);
  for (const partition::Part& part : p.parts) {
    // Gather + scatter: one read and one write sweep of the outer vector.
    out.bytes[outer_level] += 2.0 * sv_bytes;
    // Gate execution: each gate sweeps the inner vector across all
    // gather iterations — sv_bytes of traffic in total, served by the
    // level the inner vector fits in.
    const Index inner_bytes = dim(part.working_set()) * kAmpBytes;
    const auto inner_level = level_for(inner_bytes, cache);
    out.bytes[inner_level] +=
        2.0 * sv_bytes * static_cast<double>(part.gates.size());
  }
  return out;
}

TrafficBreakdown model_flat_traffic(const Circuit& c,
                                    const CacheConfig& cache) {
  TrafficBreakdown out;
  const double sv_bytes = static_cast<double>(dim(c.num_qubits())) * kAmpBytes;
  const auto level = level_for(static_cast<Index>(sv_bytes), cache);
  out.bytes[level] += 2.0 * sv_bytes * static_cast<double>(c.num_gates());
  return out;
}

}  // namespace hisim::sv
