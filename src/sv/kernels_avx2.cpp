// AVX2 kernel tier. Interleaved std::complex<double> layout, two complex
// amplitudes per 256-bit vector, split-accumulate complex multiply
// (mul / mul / addsub — no FMA), compiled with -mavx2 -ffp-contract=off
// via per-TU CMake source properties. Nothing else in the binary is built
// with AVX2 flags; this table is only reachable after the CPUID check in
// kernel_dispatch.cpp, so the binary stays runnable on pre-AVX2 hosts.
//
// Determinism: every vector recipe below performs, per amplitude, exactly
// the operation sequence of the canonical scalar bodies in
// kernels_scalar.inl (see the contract comment there). The same bodies
// are instantiated in this TU (namespace avx2_fb) and used verbatim for
// the cases vectors cannot reach: stride-1 pair layouts (gate bit 0),
// chunk-edge remainders, and short runs.

#include "sv/kernel_dispatch.hpp"

#if defined(HISIM_KERNELS_AVX2)

#include <immintrin.h>

#include <algorithm>

#include "common/bits.hpp"
#include "common/parallel.hpp"

#define HISIM_KERNEL_NS avx2_fb
#include "sv/kernels_scalar.inl"
#undef HISIM_KERNEL_NS

namespace hisim::sv {
namespace {

namespace fb = avx2_fb;

/// Element-wise complex constant, duplicated real/imag parts.
struct CVec {
  __m256d re, im;
};

CVec cvec_broadcast(cplx c) {
  return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

/// Lanes 0-1 carry `lo`, lanes 2-3 carry `hi` (one constant per complex).
CVec cvec_lanes(cplx lo, cplx hi) {
  return {_mm256_setr_pd(lo.real(), lo.real(), hi.real(), hi.real()),
          _mm256_setr_pd(lo.imag(), lo.imag(), hi.imag(), hi.imag())};
}

/// (a0, a1) * c element-wise for interleaved complexes:
///   even lane: re*c.re - im*c.im, odd lane: im*c.re + re*c.im
/// — exactly the canonical cmul() recipe, via addsub.
__m256d cmul_vc(__m256d v, const CVec& c) {
  const __m256d sw = _mm256_permute_pd(v, 0x5);  // (im, re, im, re)
  return _mm256_addsub_pd(_mm256_mul_pd(v, c.re), _mm256_mul_pd(sw, c.im));
}

double* amp(cplx* a, Index i) { return reinterpret_cast<double*>(a + i); }

/// One 2x2 column-mix step on two complexes per stream. Forced inline:
/// the short-run control paths below execute it once per enumerated run,
/// where a call boundary would cost as much as the arithmetic.
[[gnu::always_inline]] inline void pair_vec_step(double* p0, double* p1,
                                                 const CVec& c00,
                                                 const CVec& c01,
                                                 const CVec& c10,
                                                 const CVec& c11) {
  const __m256d v0 = _mm256_loadu_pd(p0);
  const __m256d v1 = _mm256_loadu_pd(p1);
  _mm256_storeu_pd(p0, _mm256_add_pd(cmul_vc(v0, c00), cmul_vc(v1, c01)));
  _mm256_storeu_pd(p1, _mm256_add_pd(cmul_vc(v0, c10), cmul_vc(v1, c11)));
}

// ---- dense 2x2 -------------------------------------------------------------

/// The shared dense-pair stream: amplitudes [p0, p0 + 2*count) mix with
/// [p1, p1 + 2*count) through the broadcast 2x2 columns. Unrolled twice —
/// the four output vectors per iteration are independent chains, so the
/// multiplies overlap instead of serializing on the loop counter.
void dense_pair_stream(double* p0, double* p1, Index count, const CVec& c00,
                       const CVec& c01, const CVec& c10, const CVec& c11) {
  Index done = 0;
  for (; done + 4 <= count; done += 4, p0 += 8, p1 += 8) {
    const __m256d v0a = _mm256_loadu_pd(p0);
    const __m256d v1a = _mm256_loadu_pd(p1);
    const __m256d v0b = _mm256_loadu_pd(p0 + 4);
    const __m256d v1b = _mm256_loadu_pd(p1 + 4);
    _mm256_storeu_pd(p0, _mm256_add_pd(cmul_vc(v0a, c00), cmul_vc(v1a, c01)));
    _mm256_storeu_pd(p1, _mm256_add_pd(cmul_vc(v0a, c10), cmul_vc(v1a, c11)));
    _mm256_storeu_pd(p0 + 4,
                     _mm256_add_pd(cmul_vc(v0b, c00), cmul_vc(v1b, c01)));
    _mm256_storeu_pd(p1 + 4,
                     _mm256_add_pd(cmul_vc(v0b, c10), cmul_vc(v1b, c11)));
  }
  for (; done + 2 <= count; done += 2, p0 += 4, p1 += 4)
    pair_vec_step(p0, p1, c00, c01, c10, c11);
}

void a2_apply_1q(StateVector& s, Qubit q, const cplx* u) {
  const Index half = s.size() >> 1;
  const Index qb = Index{1} << q;
  cplx* a = s.data();
  if (q == 0) {
    // Pairs are adjacent: one vector holds a full (a0, a1) pair. Split it
    // into (a0, a0) / (a1, a1) and apply per-lane column constants.
    const CVec cl = cvec_lanes(u[0], u[2]);  // (u00, u10)
    const CVec cr = cvec_lanes(u[1], u[3]);  // (u01, u11)
    parallel::for_range(0, half, [&](Index lo, Index hi) {
      Index m = lo;
      for (; m + 2 <= hi; m += 2) {
        double* p = amp(a, m << 1);
        const __m256d va = _mm256_loadu_pd(p);
        const __m256d vb = _mm256_loadu_pd(p + 4);
        const __m256d xa = _mm256_permute2f128_pd(va, va, 0x00);  // (a0, a0)
        const __m256d ya = _mm256_permute2f128_pd(va, va, 0x11);  // (a1, a1)
        const __m256d xb = _mm256_permute2f128_pd(vb, vb, 0x00);
        const __m256d yb = _mm256_permute2f128_pd(vb, vb, 0x11);
        _mm256_storeu_pd(p, _mm256_add_pd(cmul_vc(xa, cl), cmul_vc(ya, cr)));
        _mm256_storeu_pd(p + 4,
                         _mm256_add_pd(cmul_vc(xb, cl), cmul_vc(yb, cr)));
      }
      for (; m < hi; ++m) {
        double* p = amp(a, m << 1);
        const __m256d v = _mm256_loadu_pd(p);
        const __m256d x = _mm256_permute2f128_pd(v, v, 0x00);
        const __m256d y = _mm256_permute2f128_pd(v, v, 0x11);
        _mm256_storeu_pd(p, _mm256_add_pd(cmul_vc(x, cl), cmul_vc(y, cr)));
      }
    });
    return;
  }
  // q >= 1: the i0 side of a run of 2^q consecutive pairs is contiguous
  // (and so is the i1 side, qb amplitudes up) — resolve the indices once
  // per run, then walk pointers.
  const CVec c00 = cvec_broadcast(u[0]), c01 = cvec_broadcast(u[1]);
  const CVec c10 = cvec_broadcast(u[2]), c11 = cvec_broadcast(u[3]);
  parallel::for_range(0, half, [&](Index lo, Index hi) {
    Index m = lo;
    while (m < hi) {
      const Index j = m & (qb - 1);
      const Index i0 = ((m >> q) << (q + 1)) | j;
      const Index count = std::min(hi, m - j + qb) - m;
      dense_pair_stream(amp(a, i0), amp(a, i0 | qb), count, c00, c01, c10,
                        c11);
      if (count & 1) {
        const Index last = i0 + (count - 1);
        fb::pair_update(a, last, last | qb, u);
      }
      m += count;
    }
  });
}

// ---- diagonal 2x2 ----------------------------------------------------------

/// Multiplies amplitudes [i, end) by the broadcast constant `cd`;
/// per-amplitude arithmetic identical to the scalar tier.
void scale_run(cplx* a, Index i, Index end, const CVec& cd, cplx d) {
  double* p = amp(a, i);
  for (; i + 8 <= end; i += 8, p += 16) {
    _mm256_storeu_pd(p, cmul_vc(_mm256_loadu_pd(p), cd));
    _mm256_storeu_pd(p + 4, cmul_vc(_mm256_loadu_pd(p + 4), cd));
    _mm256_storeu_pd(p + 8, cmul_vc(_mm256_loadu_pd(p + 8), cd));
    _mm256_storeu_pd(p + 12, cmul_vc(_mm256_loadu_pd(p + 12), cd));
  }
  for (; i + 2 <= end; i += 2, p += 4)
    _mm256_storeu_pd(p, cmul_vc(_mm256_loadu_pd(p), cd));
  for (; i < end; ++i) a[i] = fb::cmul(a[i], d);
}

void a2_apply_1q_diag(StateVector& s, Qubit q, cplx d0, cplx d1) {
  const bool skip0 = fb::is_one(d0), skip1 = fb::is_one(d1);
  if (skip0 && skip1) return;
  const Index qb = Index{1} << q;
  cplx* a = s.data();
  if (q == 0) {
    // Alternating d0/d1 per amplitude: one lane-mixed constant, with an
    // exact blend of the original lanes wherever the phase is exactly 1
    // (a skip in the scalar tier must stay a bitwise no-op here too).
    const CVec cd = cvec_lanes(d0, d1);
    const auto run = [&]<int KEEP>() {
      parallel::for_range(0, s.size() >> 1, [&](Index lo, Index hi) {
        const auto step = [&cd](double* p) {
          const __m256d v = _mm256_loadu_pd(p);
          __m256d o = cmul_vc(v, cd);
          if constexpr (KEEP != 0) o = _mm256_blend_pd(o, v, KEEP);
          _mm256_storeu_pd(p, o);
        };
        Index m = lo;
        for (; m + 2 <= hi; m += 2) {
          step(amp(a, m << 1));
          step(amp(a, (m + 1) << 1));
        }
        for (; m < hi; ++m) step(amp(a, m << 1));
      });
    };
    if (skip0)
      run.template operator()<0b0011>();
    else if (skip1)
      run.template operator()<0b1100>();
    else
      run.template operator()<0>();
    return;
  }
  // q >= 1: runs of 2^q amplitudes share one phase.
  const CVec c0 = cvec_broadcast(d0), c1 = cvec_broadcast(d1);
  parallel::for_range(0, s.size(), [&](Index lo, Index hi) {
    Index i = lo;
    while (i < hi) {
      const Index run_end = std::min(hi, (i | (qb - 1)) + 1);
      const bool one = (i & qb) != 0;
      if (one ? skip1 : skip0) {
        i = run_end;
        continue;
      }
      scale_run(a, i, run_end, one ? c1 : c0, one ? d1 : d0);
      i = run_end;
    }
  });
}

// ---- controlled 2x2 --------------------------------------------------------

void a2_apply_ctrl_1q(StateVector& s, std::span<const Qubit> sorted_bits,
                      Index cmask, Qubit target, const cplx* u) {
  const Qubit minb = sorted_bits.front();
  if (minb == 0) {  // enumerated bases have stride 2 — no contiguous runs
    fb::apply_ctrl_1q(s, sorted_bits, cmask, target, u);
    return;
  }
  const Index count = s.size() >> sorted_bits.size();
  const Index L = Index{1} << minb;  // contiguous pair-bases per run
  const Index tb = Index{1} << target;
  cplx* a = s.data();
  const CVec c00 = cvec_broadcast(u[0]), c01 = cvec_broadcast(u[1]);
  const CVec c10 = cvec_broadcast(u[2]), c11 = cvec_broadcast(u[3]);
  parallel::for_range(0, count, [&](Index lo, Index hi) {
    Index m = lo;
    if (L == 2) {
      // minb == 1: every aligned run is exactly one vector per stream —
      // the general run loop's bookkeeping would cost as much as the
      // arithmetic, so step pairs of enumerands directly.
      if (m & 1) {
        const Index i0 = fb::spread(m, sorted_bits) | cmask;
        fb::pair_update(a, i0, i0 | tb, u);
        ++m;
      }
      for (; m + 2 <= hi; m += 2) {
        const Index i0 = fb::spread(m, sorted_bits) | cmask;
        pair_vec_step(amp(a, i0), amp(a, i0 | tb), c00, c01, c10, c11);
      }
      if (m < hi) {
        const Index i0 = fb::spread(m, sorted_bits) | cmask;
        fb::pair_update(a, i0, i0 | tb, u);
      }
      return;
    }
    while (m < hi) {
      // Bases within a run of L enumerands are contiguous (the low minb
      // bits of m pass through spread() unshifted): resolve once, walk.
      const Index j = m & (L - 1);
      const Index i0 = fb::spread(m, sorted_bits) | cmask;
      const Index n_run = std::min(hi, m - j + L) - m;
      dense_pair_stream(amp(a, i0), amp(a, i0 | tb), n_run, c00, c01, c10,
                        c11);
      if (n_run & 1) {
        const Index last = i0 + (n_run - 1);
        fb::pair_update(a, last, last | tb, u);
      }
      m += n_run;
    }
  });
}

void a2_apply_ctrl_diag(StateVector& s, std::span<const Qubit> sorted_bits,
                        Index cmask, Qubit target, cplx d0, cplx d1) {
  const bool skip0 = fb::is_one(d0), skip1 = fb::is_one(d1);
  if (skip0 && skip1) return;
  const Qubit minb = sorted_bits.front();
  if (minb == 0) {
    fb::apply_ctrl_diag(s, sorted_bits, cmask, target, d0, d1);
    return;
  }
  const Index count = s.size() >> sorted_bits.size();
  const Index L = Index{1} << minb;
  const Index tb = Index{1} << target;
  cplx* a = s.data();
  const CVec c0 = cvec_broadcast(d0), c1 = cvec_broadcast(d1);
  parallel::for_range(0, count, [&](Index lo, Index hi) {
    Index m = lo;
    if (L == 2) {
      // minb == 1: one vector per stream per aligned run (see
      // a2_apply_ctrl_1q) — step enumerand pairs directly.
      const auto scalar_step = [&](Index mm) {
        const Index i0 = fb::spread(mm, sorted_bits) | cmask;
        if (!skip0) a[i0] = fb::cmul(a[i0], d0);
        if (!skip1) a[i0 | tb] = fb::cmul(a[i0 | tb], d1);
      };
      if (m & 1) scalar_step(m++);
      for (; m + 2 <= hi; m += 2) {
        const Index i0 = fb::spread(m, sorted_bits) | cmask;
        if (!skip0) {
          double* p = amp(a, i0);
          _mm256_storeu_pd(p, cmul_vc(_mm256_loadu_pd(p), c0));
        }
        if (!skip1) {
          double* p = amp(a, i0 | tb);
          _mm256_storeu_pd(p, cmul_vc(_mm256_loadu_pd(p), c1));
        }
      }
      if (m < hi) scalar_step(m);
      return;
    }
    while (m < hi) {
      // Same run contiguity as a2_apply_ctrl_1q: both the d0 stream at i0
      // and the d1 stream at i0|tb are dense over one run of enumerands.
      const Index j = m & (L - 1);
      const Index i0 = fb::spread(m, sorted_bits) | cmask;
      const Index n_run = std::min(hi, m - j + L) - m;
      if (!skip0) scale_run(a, i0, i0 + n_run, c0, d0);
      if (!skip1) scale_run(a, i0 | tb, (i0 | tb) + n_run, c1, d1);
      m += n_run;
    }
  });
}

// ---- general diagonal ------------------------------------------------------

void a2_apply_diag(StateVector& s, std::span<const Qubit> qs,
                   std::span<const cplx> phases) {
  const Qubit minq = *std::min_element(qs.begin(), qs.end());
  if (minq == 0) {  // phase can change every amplitude — nothing to batch
    fb::apply_diag(s, qs, phases);
    return;
  }
  const unsigned k = static_cast<unsigned>(qs.size());
  const Index L = Index{1} << minq;  // amplitudes per constant-phase run
  cplx* a = s.data();
  parallel::for_range(0, s.size(), [&](Index lo, Index hi) {
    Index i = lo;
    while (i < hi) {
      const Index run_end = std::min(hi, (i | (L - 1)) + 1);
      Index code = 0;
      for (unsigned j = 0; j < k; ++j)
        code |= static_cast<Index>(bits::test(i, qs[j])) << j;
      const cplx d = phases[code];
      if (!fb::is_one(d)) scale_run(a, i, run_end, cvec_broadcast(d), d);
      i = run_end;
    }
  });
}

// ---- dense 4x4 -------------------------------------------------------------

void a2_apply_2q(StateVector& s, Qubit qa, Qubit qb, const cplx* u) {
  const Qubit lo_q = std::min(qa, qb), hi_q = std::max(qa, qb);
  if (lo_q == 0) {  // quad streams are stride-2 — no contiguous runs
    fb::apply_2q(s, qa, qb, u);
    return;
  }
  const Index ba = Index{1} << qa, bb = Index{1} << qb;
  const Index L = Index{1} << lo_q;  // contiguous quad-bases per run
  cplx* a = s.data();
  CVec c[16];
  for (int t = 0; t < 16; ++t) c[t] = cvec_broadcast(u[t]);
  parallel::for_range(0, s.size() >> 2, [&](Index lo, Index hi) {
    Index m = lo;
    while (m < hi) {
      // Quad bases within a run of L enumerands are contiguous (the low
      // lo_q bits pass through both insert_zero calls): resolve once,
      // walk four dense streams.
      const Index j = m & (L - 1);
      const Index base = bits::insert_zero(bits::insert_zero(m, lo_q), hi_q);
      const Index n_run = std::min(hi, m - j + L) - m;
      double* p0 = amp(a, base);
      double* p1 = amp(a, base | ba);
      double* p2 = amp(a, base | bb);
      double* p3 = amp(a, base | ba | bb);
      Index done = 0;
      for (; done + 2 <= n_run;
           done += 2, p0 += 4, p1 += 4, p2 += 4, p3 += 4) {
        const __m256d v0 = _mm256_loadu_pd(p0);
        const __m256d v1 = _mm256_loadu_pd(p1);
        const __m256d v2 = _mm256_loadu_pd(p2);
        const __m256d v3 = _mm256_loadu_pd(p3);
        // Pairwise accumulation in column order — matches quad_update().
        _mm256_storeu_pd(
            p0, _mm256_add_pd(
                    _mm256_add_pd(cmul_vc(v0, c[0]), cmul_vc(v1, c[1])),
                    _mm256_add_pd(cmul_vc(v2, c[2]), cmul_vc(v3, c[3]))));
        _mm256_storeu_pd(
            p1, _mm256_add_pd(
                    _mm256_add_pd(cmul_vc(v0, c[4]), cmul_vc(v1, c[5])),
                    _mm256_add_pd(cmul_vc(v2, c[6]), cmul_vc(v3, c[7]))));
        _mm256_storeu_pd(
            p2, _mm256_add_pd(
                    _mm256_add_pd(cmul_vc(v0, c[8]), cmul_vc(v1, c[9])),
                    _mm256_add_pd(cmul_vc(v2, c[10]), cmul_vc(v3, c[11]))));
        _mm256_storeu_pd(
            p3, _mm256_add_pd(
                    _mm256_add_pd(cmul_vc(v0, c[12]), cmul_vc(v1, c[13])),
                    _mm256_add_pd(cmul_vc(v2, c[14]), cmul_vc(v3, c[15]))));
      }
      if (done < n_run) {
        const Index b = base + done;
        fb::quad_update(a, b, b | ba, b | bb, b | ba | bb, u);
      }
      m += n_run;
    }
  });
}

}  // namespace

const KernelOps* avx2_kernel_ops_or_null() {
  static const KernelOps ops = {
      KernelTier::Simd, "simd",          &a2_apply_1q, &a2_apply_1q_diag,
      &a2_apply_ctrl_1q, &a2_apply_ctrl_diag, &a2_apply_diag, &a2_apply_2q,
  };
  return &ops;
}

}  // namespace hisim::sv

#else  // !HISIM_KERNELS_AVX2

namespace hisim::sv {

// Built without the AVX2 translation-unit flags (non-x86 target or the
// compiler lacks -mavx2): the simd tier does not exist in this binary.
const KernelOps* avx2_kernel_ops_or_null() { return nullptr; }

}  // namespace hisim::sv

#endif
