#include "sv/kernel_dispatch.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace hisim::sv {

// Defined in kernels_avx2.cpp; nullptr when the TU was built without
// AVX2 support.
const KernelOps* avx2_kernel_ops_or_null();

KernelTier parse_kernel_tier(const std::string& name) {
  if (name == "auto") return KernelTier::Auto;
  if (name == "scalar") return KernelTier::Scalar;
  if (name == "simd") return KernelTier::Simd;
  throw Error("unknown kernel tier '" + name +
              "' (expected auto | scalar | simd)");
}

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::Auto: return "auto";
    case KernelTier::Scalar: return "scalar";
    case KernelTier::Simd: return "simd";
  }
  return "?";
}

bool simd_kernels_available() {
  static const bool available = [] {
    if (avx2_kernel_ops_or_null() == nullptr) return false;
#if defined(__x86_64__) || defined(__i386__)
    return static_cast<bool>(__builtin_cpu_supports("avx2"));
#else
    return false;
#endif
  }();
  return available;
}

namespace {

const KernelOps& simd_ops_checked() {
  HISIM_CHECK_MSG(simd_kernels_available(),
                  "simd kernel tier unavailable: " +
                      std::string(avx2_kernel_ops_or_null() == nullptr
                                      ? "binary built without AVX2 kernels"
                                      : "CPU does not support AVX2") +
                      " (use --kernel=scalar or auto)");
  return *avx2_kernel_ops_or_null();
}

/// Auto resolution: HISIM_KERNEL env override when set, else the best
/// available tier. Resolved once — the choice must not change mid-run.
const KernelOps& auto_ops() {
  static const KernelOps& ops = []() -> const KernelOps& {
    // getenv is safe here despite concurrency-mt-unsafe's blanket rule:
    // the read happens once (static init below), and nothing in the
    // process calls setenv/putenv.
    if (const char* env = std::getenv("HISIM_KERNEL");  // NOLINT(concurrency-mt-unsafe)
        env != nullptr && *env != '\0') {
      const KernelTier forced = parse_kernel_tier(env);
      if (forced == KernelTier::Scalar) return scalar_kernel_ops();
      if (forced == KernelTier::Simd) return simd_ops_checked();
    }
    return simd_kernels_available() ? *avx2_kernel_ops_or_null()
                                    : scalar_kernel_ops();
  }();
  return ops;
}

}  // namespace

const KernelOps& kernel_ops(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar: return scalar_kernel_ops();
    case KernelTier::Simd: return simd_ops_checked();
    case KernelTier::Auto: break;
  }
  return auto_ops();
}

}  // namespace hisim::sv
