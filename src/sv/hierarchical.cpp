#include "sv/hierarchical.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "sv/kernels.hpp"

namespace hisim::sv {
namespace {

/// Gate list with qubits remapped onto inner slots, built once per part.
std::vector<Gate> remap_gates(const Circuit& c,
                              std::span<const std::size_t> gates,
                              std::span<const Qubit> slot_of) {
  std::vector<Gate> out;
  out.reserve(gates.size());
  for (std::size_t gi : gates) {
    Gate g = c.gate(gi);
    for (Qubit& q : g.qubits) q = slot_of[q];
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace

void run_part(const Circuit& c, std::span<const std::size_t> gates,
              std::span<const Qubit> part_qubits, StateVector& outer,
              HierarchicalStats& stats, const KernelOps* ops) {
  const KernelOps& kops = ops != nullptr ? *ops : kernel_ops();
  // Per-part granularity; the gather/exec/scatter iterations inside are
  // far too hot for spans — the Stopwatch totals below cover those.
  trace::TraceSpan span("part", "sv");
  span.arg("gates", static_cast<std::int64_t>(gates.size()));
  const unsigned n = outer.num_qubits();
  const unsigned w = static_cast<unsigned>(part_qubits.size());
  HISIM_CHECK(w <= n);
  HISIM_CHECK(std::is_sorted(part_qubits.begin(), part_qubits.end()));

  // Slot map: part qubit j lives at inner bit j.
  std::vector<Qubit> slot_of(n, 0);
  Index mask = 0;
  for (unsigned j = 0; j < w; ++j) {
    slot_of[part_qubits[j]] = j;
    mask |= Index{1} << part_qubits[j];
  }
  const std::vector<Gate> inner_gates = remap_gates(c, gates, slot_of);

  const Index kdim = Index{1} << w;
  const Index inv = ~mask & (outer.size() - 1);
  std::vector<Index> offset(kdim);
  for (Index t = 0; t < kdim; ++t) offset[t] = bits::deposit(t, mask);

  StateVector inner(w);
  const Index iterations = outer.size() >> w;
  cplx* out_a = outer.data();
  cplx* in_a = inner.data();

  Stopwatch gather_sw, exec_sw, scatter_sw;
  for (Index m = 0; m < iterations; ++m) {
    const Index base = bits::deposit(m, inv);
    gather_sw.start();
    for (Index t = 0; t < kdim; ++t) in_a[t] = out_a[base | offset[t]];
    gather_sw.stop();
    exec_sw.start();
    for (const Gate& g : inner_gates) apply_gate(inner, g, kops);
    exec_sw.stop();
    scatter_sw.start();
    for (Index t = 0; t < kdim; ++t) out_a[base | offset[t]] = in_a[t];
    scatter_sw.stop();
  }

  stats.parts += 1;
  stats.gather_seconds += gather_sw.seconds();
  stats.execute_seconds += exec_sw.seconds();
  stats.scatter_seconds += scatter_sw.seconds();
  stats.outer_bytes_moved += 2 * outer.bytes();  // gather read + scatter write
  stats.inner_bytes_touched +=
      static_cast<Index>(gates.size()) * 2 * inner.bytes() * iterations;
  for (std::size_t gi : gates)
    stats.flops +=
        gate_flops(c.gate(gi), w) * static_cast<double>(iterations);
}

HierarchicalStats HierarchicalSimulator::run(
    const Circuit& c, const partition::Partitioning& parts,
    StateVector& state, const KernelOps* ops) const {
  HISIM_CHECK(state.num_qubits() == c.num_qubits());
  HierarchicalStats stats;
  for (const partition::Part& p : parts.parts)
    run_part(c, p.gates, p.qubits, state, stats, ops);
  return stats;
}

HierarchicalStats HierarchicalSimulator::run(
    const Circuit& c, const partition::TwoLevelPartitioning& parts,
    StateVector& state, unsigned pad_to, const KernelOps* ops) const {
  HISIM_CHECK(state.num_qubits() == c.num_qubits());
  const unsigned n = c.num_qubits();
  HierarchicalStats stats;

  for (std::size_t pi = 0; pi < parts.level1.num_parts(); ++pi) {
    trace::TraceSpan part_span("part", "sv");
    part_span.arg("index", static_cast<std::int64_t>(pi));
    const partition::Part& p1 = parts.level1.parts[pi];
    const unsigned w1 = p1.working_set();

    // Remap the part's gates onto level-1 inner slots once.
    std::vector<Qubit> slot1(n, 0);
    Index mask = 0;
    for (unsigned j = 0; j < w1; ++j) {
      slot1[p1.qubits[j]] = j;
      mask |= Index{1} << p1.qubits[j];
    }
    Circuit inner_circuit(w1);
    for (const std::string& p : c.param_names()) inner_circuit.param(p);
    for (std::size_t gi : p1.gates) {
      Gate g = c.gate(gi);
      for (Qubit& q : g.qubits) q = slot1[q];
      inner_circuit.add(std::move(g));
    }
    // Level-2 parts expressed on level-1 slots, optionally padded with
    // parent qubits for spatial locality (paper Sec. IV, multi-level).
    const partition::Partitioning& l2 = parts.level2[pi];
    struct InnerPart {
      std::vector<std::size_t> gates;  // indices into inner_circuit
      std::vector<Qubit> qubits;       // level-1 slots, sorted
    };
    std::vector<InnerPart> inner_parts;
    for (const partition::Part& p2 : l2.parts) {
      InnerPart ip;
      ip.gates = p2.gates;  // local indices == inner_circuit indices
      for (Qubit q : p2.qubits) ip.qubits.push_back(slot1[q]);
      std::sort(ip.qubits.begin(), ip.qubits.end());
      if (pad_to > 0) {
        const unsigned target = std::min<unsigned>(pad_to, w1);
        for (Qubit s = 0; s < w1 && ip.qubits.size() < target; ++s) {
          if (!std::binary_search(ip.qubits.begin(), ip.qubits.end(), s))
            ip.qubits.insert(
                std::lower_bound(ip.qubits.begin(), ip.qubits.end(), s), s);
        }
      }
      inner_parts.push_back(std::move(ip));
    }

    // Gather-execute-scatter of the level-1 part, with the execute step
    // itself hierarchical over the level-2 parts.
    const Index kdim = Index{1} << w1;
    const Index inv = ~mask & (state.size() - 1);
    std::vector<Index> offset(kdim);
    for (Index t = 0; t < kdim; ++t) offset[t] = bits::deposit(t, mask);

    StateVector inner(w1);
    const Index iterations = state.size() >> w1;
    cplx* out_a = state.data();
    cplx* in_a = inner.data();
    Stopwatch gather_sw, exec_sw, scatter_sw;
    HierarchicalStats inner_stats;
    for (Index m = 0; m < iterations; ++m) {
      const Index base = bits::deposit(m, inv);
      gather_sw.start();
      for (Index t = 0; t < kdim; ++t) in_a[t] = out_a[base | offset[t]];
      gather_sw.stop();
      exec_sw.start();
      for (const InnerPart& ip : inner_parts)
        run_part(inner_circuit, ip.gates, ip.qubits, inner, inner_stats,
                 ops);
      exec_sw.stop();
      scatter_sw.start();
      for (Index t = 0; t < kdim; ++t) out_a[base | offset[t]] = in_a[t];
      scatter_sw.stop();
    }

    stats.parts += 1;
    stats.inner_parts += inner_parts.size();
    stats.gather_seconds += gather_sw.seconds();
    stats.execute_seconds += exec_sw.seconds();
    stats.scatter_seconds += scatter_sw.seconds();
    stats.outer_bytes_moved += 2 * state.bytes();
    stats.inner_bytes_touched += inner_stats.outer_bytes_moved +
                                 inner_stats.inner_bytes_touched;
    stats.flops += inner_stats.flops;
  }
  return stats;
}

StateVector HierarchicalSimulator::simulate(
    const Circuit& c, const partition::Partitioning& parts,
    HierarchicalStats* stats) const {
  StateVector state(c.num_qubits());
  HierarchicalStats s = run(c, parts, state);
  if (stats) *stats = s;
  return state;
}

}  // namespace hisim::sv
