#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sv/state_vector.hpp"

namespace hisim::sv {

/// One Pauli factor acting on a qubit.
enum class Pauli { X, Y, Z };

/// A Pauli string observable: a product of single-qubit Paulis on distinct
/// qubits (identity elsewhere), e.g. Z0*Z3 or X1*Y2.
struct PauliString {
  std::vector<std::pair<Qubit, Pauli>> factors;

  /// Parses forms like "Z0*Z3", "X1 Y2", "ZZ" (one letter per qubit from
  /// qubit 0). Throws on malformed input.
  static PauliString parse(const std::string& text);
  std::string to_string() const;
};

/// <state| P |state> (always real for Hermitian P). O(2^n).
double expectation(const StateVector& state, const PauliString& p);

/// Expectation of a weighted sum of Pauli strings (e.g. an Ising / MaxCut
/// Hamiltonian).
double expectation(const StateVector& state,
                   const std::vector<std::pair<double, PauliString>>& ham);

/// Probability of each basis state of the `qubits` sub-register (marginal
/// over all other qubits). Result has 2^|qubits| entries; bit j of the
/// entry index corresponds to qubits[j].
std::vector<double> marginal_probabilities(const StateVector& state,
                                           const std::vector<Qubit>& qubits);

/// Draws `shots` measurement outcomes in the computational basis
/// (full-register bitstrings), using binary search over the cumulative
/// distribution. Deterministic for a fixed Rng seed.
std::vector<Index> sample(const StateVector& state, std::size_t shots,
                          Rng& rng);

}  // namespace hisim::sv
