#pragma once

#include <span>
#include <string>

#include "common/types.hpp"
#include "sv/state_vector.hpp"

namespace hisim::sv {

/// Which apply-kernel implementation backs sv::apply_gate.
///
///  * Scalar — portable std::complex loops, compiled for the baseline ISA.
///  * Simd   — AVX2 split-accumulate kernels (two complex doubles per
///             256-bit vector). Only selectable when the binary was built
///             with the AVX2 translation unit *and* the running CPU
///             reports AVX2 (checked once via CPUID at first use).
///  * Auto   — Simd when available, Scalar otherwise. The default.
///
/// Every tier computes bit-identical results for permutation and diagonal
/// gates and results within strict rounding equivalence (identical
/// operation order, no FMA contraction) for dense kernels — so Auto is
/// always safe and `--kernel=scalar` exists for A/B debugging, not
/// correctness.
enum class KernelTier { Auto, Scalar, Simd };

/// Parses "auto" | "scalar" | "simd" (throws hisim::Error otherwise).
KernelTier parse_kernel_tier(const std::string& name);

/// Lower-case tier name ("auto" only before resolution; resolved ops
/// tables always report "scalar" or "simd").
const char* kernel_tier_name(KernelTier tier);

/// Vectorizable kernel entry points. One immutable table per tier; the
/// dispatcher in kernels.cpp routes each GateKind to an entry (or to a
/// tier-invariant permutation/generic path that needs no table).
///
/// Conventions shared by all entries:
///  * matrices are row-major spans of cplx (4 entries for 2x2, 16 for 4x4)
///  * `sorted_bits` lists *all* participating bit positions (controls +
///    target) in ascending order — the compact-enumeration primitive walks
///    `size >> sorted_bits.size()` bases and re-inserts zeros at those
///    positions, so only control-satisfied amplitudes are ever touched
///  * `cmask` is the OR of the control bits (already satisfied in every
///    enumerated base index)
struct KernelOps {
  KernelTier tier;
  const char* name;

  /// Dense 2x2 on qubit q: |size|/2 pair updates.
  void (*apply_1q)(StateVector& s, Qubit q, const cplx* u2x2);

  /// Diagonal 2x2 on qubit q: amplitudes with bit q clear scale by d0, set
  /// by d1. Entries equal to exactly 1.0 are skipped (not multiplied) so
  /// S/T/P touch only half the state.
  void (*apply_1q_diag)(StateVector& s, Qubit q, cplx d0, cplx d1);

  /// Controlled dense 2x2: compact enumeration over
  /// size >> (1 + num_controls) pairs.
  void (*apply_ctrl_1q)(StateVector& s, std::span<const Qubit> sorted_bits,
                        Index cmask, Qubit target, const cplx* u2x2);

  /// Controlled diagonal 2x2 (CZ/CRZ/CP): compact enumeration, exact-1.0
  /// entries skipped.
  void (*apply_ctrl_diag)(StateVector& s, std::span<const Qubit> sorted_bits,
                          Index cmask, Qubit target, cplx d0, cplx d1);

  /// General k-qubit diagonal: amplitude i scales by phases[code(i)] where
  /// code gathers the bits of i at qs. Exact-1.0 phases skipped.
  void (*apply_diag)(StateVector& s, std::span<const Qubit> qs,
                     std::span<const cplx> phases);

  /// Dense 4x4 on (qa, qb), local bit 0 = qa, bit 1 = qb. Fully unrolled —
  /// no per-block gather/scatter buffers. Target of fused 2-qubit runs.
  void (*apply_2q)(StateVector& s, Qubit qa, Qubit qb, const cplx* u4x4);
};

/// The scalar tier (always available).
const KernelOps& scalar_kernel_ops();

/// True when the binary contains the AVX2 kernels *and* this CPU supports
/// AVX2. Evaluated once (CPUID) and cached.
bool simd_kernels_available();

/// Resolves a tier to its ops table.
///  * Scalar → scalar table.
///  * Simd   → AVX2 table; throws hisim::Error when unavailable (so
///             `--kernel=simd` fails loudly instead of silently degrading).
///  * Auto   → the HISIM_KERNEL environment override when set
///             ("scalar" | "simd" | "auto"), else Simd-if-available.
const KernelOps& kernel_ops(KernelTier tier = KernelTier::Auto);

}  // namespace hisim::sv
