#pragma once

#include <array>

#include "partition/partition.hpp"

namespace hisim::sv {

/// Cache hierarchy parameters for the analytic memory-traffic model that
/// substitutes for the paper's VTune profiling (Table II). Defaults mirror
/// the paper's example machine: 64 KiB L1 / 1 MiB L2 / 32 MiB LLC.
struct CacheConfig {
  Index l1_bytes = 64ull << 10;
  Index l2_bytes = 1ull << 20;
  Index l3_bytes = 32ull << 20;
};

/// Bytes of state-vector traffic attributed to the memory level that
/// serves it: a sweep over a vector of S bytes is served by the innermost
/// level with capacity >= S.
struct TrafficBreakdown {
  enum Level { L1 = 0, L2 = 1, L3 = 2, DRAM = 3 };
  std::array<double, 4> bytes{};

  double total() const { return bytes[0] + bytes[1] + bytes[2] + bytes[3]; }
  double pct(Level lvl) const {
    const double t = total();
    return t == 0 ? 0.0 : 100.0 * bytes[lvl] / t;
  }
  /// Fraction of traffic hitting DRAM — the model's stand-in for the
  /// paper's "memory-bound pipeline slots" column.
  double dram_fraction() const {
    const double t = total();
    return t == 0 ? 0.0 : bytes[DRAM] / t;
  }
};

/// Traffic of a hierarchical run: per part, gather+scatter stream the
/// outer vector (charged to the level holding the *outer* vector), while
/// each gate of the part sweeps the inner vector (charged to the level
/// holding the *inner* vector).
TrafficBreakdown model_traffic(const Circuit& c,
                               const partition::Partitioning& p,
                               const CacheConfig& cache = {});

/// Traffic of a flat run: every gate sweeps the full state vector.
TrafficBreakdown model_flat_traffic(const Circuit& c,
                                    const CacheConfig& cache = {});

}  // namespace hisim::sv
