#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "partition/partition.hpp"

namespace hisim::sv {

/// Set-associative LRU cache model. Used to replay the amplitude access
/// trace of flat vs. hierarchical simulation — the trace-driven stand-in
/// for the paper's VTune memory profiling (Table II), complementary to the
/// coarse analytic traffic model in sv/traffic.hpp.
class CacheLevel {
 public:
  CacheLevel(Index capacity_bytes, unsigned ways, unsigned line_bytes = 64);

  /// Returns true on hit; on miss the line is installed (LRU evict).
  bool access(Index byte_addr);

  Index hits() const { return hits_; }
  Index misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

 private:
  unsigned line_shift_;
  Index num_sets_;
  unsigned ways_;
  // tags_[set * ways + way]; lru_ holds per-way ages (higher = recent).
  std::vector<Index> tags_;
  std::vector<std::uint32_t> lru_;
  std::uint32_t clock_ = 0;
  Index hits_ = 0, misses_ = 0;
};

/// A three-level inclusive-enough hierarchy (hit at the first level that
/// has the line; misses propagate and install at every level).
class CacheHierarchy {
 public:
  struct Config {
    Index l1_bytes = 64ull << 10;
    unsigned l1_ways = 8;
    Index l2_bytes = 1ull << 20;
    unsigned l2_ways = 16;
    Index l3_bytes = 32ull << 20;
    unsigned l3_ways = 16;
    unsigned line_bytes = 64;
  };

  explicit CacheHierarchy(const Config& cfg);
  CacheHierarchy() : CacheHierarchy(Config()) {}

  /// Touches one byte address; records the level that served it
  /// (0=L1, 1=L2, 2=L3, 3=DRAM).
  void access(Index byte_addr);

  /// Accesses served per level [L1, L2, L3, DRAM].
  std::array<Index, 4> served() const { return served_; }
  double pct(unsigned level) const;
  Index total() const {
    return served_[0] + served_[1] + served_[2] + served_[3];
  }
  void reset_counters();

 private:
  std::vector<CacheLevel> levels_;
  std::array<Index, 4> served_{};
};

/// Replays the amplitude-access trace of a *flat* simulation of `c`
/// (every gate sweeps the full state vector with its natural stride
/// pattern — Fig. 1 of the paper) through `cache`.
void replay_flat_trace(const Circuit& c, CacheHierarchy& cache);

/// Replays the trace of a hierarchical run: per part, for each outer
/// assignment — gather reads (strided outer) + inner writes, the part's
/// gates sweeping the inner vector, then scatter. Inner vectors are
/// allocated beyond the outer vector, matching the implementation.
void replay_hierarchical_trace(const Circuit& c,
                               const partition::Partitioning& parts,
                               CacheHierarchy& cache);

}  // namespace hisim::sv
