#pragma once

#include <span>

#include "circuit/gate.hpp"
#include "sv/kernel_dispatch.hpp"
#include "sv/state_vector.hpp"

namespace hisim::sv {

/// Applies `gate` to `state` in place. Dispatches per GateKind:
///  * X / CX / CCX / MCX / SWAP / CSWAP — pure index permutations: no
///    arithmetic at all, compact enumeration of only the touched subset
///    (size/2^(nc+1) pairs, size/4 for SWAP, size/8 for CSWAP)
///  * diagonal gates      — phase sweeps through the tier's diagonal
///    kernels (1q / controlled / general), exact-1.0 phases skipped
///  * single-qubit dense  — the tier's 2x2 pair kernel (Fig. 1 pattern)
///  * controlled 2x2      — compact enumeration over control-satisfied
///    pair bases only (size >> (1+nc))
///  * 2-qubit dense       — the tier's unrolled 4x4 kernel (fused blocks,
///    RXX, raw 2q unitaries)
///  * generic k-qubit     — gather 2^k amplitudes, multiply, scatter
/// `ops` selects the kernel tier (see kernel_dispatch.hpp); the default
/// resolves KernelTier::Auto once. All kernels parallelize over amplitude
/// blocks via parallel::for_range.
void apply_gate(StateVector& state, const Gate& gate,
                const KernelOps& ops = kernel_ops());

/// Applies `gate` with its qubit operands remapped through `slot_of`:
/// original qubit q acts on state qubit slot_of[q]. Used by the
/// hierarchical simulator (inner state vectors) and the distributed layer
/// (local slots). Entries for qubits the gate does not touch are ignored.
void apply_gate_remapped(StateVector& state, const Gate& gate,
                         std::span<const Qubit> slot_of,
                         const KernelOps& ops = kernel_ops());

/// Counts the floating-point work of one gate application on an n-qubit
/// state, matching what the kernels above actually execute:
///  * permutation kinds (X/CX/CCX/MCX/SWAP/CSWAP) move amplitudes without
///    arithmetic — 0 FLOPs;
///  * diagonal gates: one complex multiply (6 FLOPs) per touched
///    amplitude, controls dividing the touched count by 2^nc;
///  * dense 2x2: 28 FLOPs per enumerated pair (paper Sec. III-A), pairs
///    divided by 2^nc for controlled kinds;
///  * dense 2-qubit blocks: 120 FLOPs per 4-amplitude block (the unrolled
///    4x4 kernel: 16 complex multiplies + 12 adds);
///  * generic k-qubit: 8*2^k*2^k - 2*2^k per block.
/// Used by the traffic/efficiency models.
double gate_flops(const Gate& gate, unsigned num_qubits);

}  // namespace hisim::sv
