#pragma once

#include <span>

#include "circuit/gate.hpp"
#include "sv/state_vector.hpp"

namespace hisim::sv {

/// Applies `gate` to `state` in place. Dispatches to specialized kernels:
///  * diagonal gates      — single phase sweep, no amplitude mixing
///  * single-qubit gates  — strided pair updates (Fig. 1 pattern)
///  * controlled 2x2      — pair updates masked by the control bits
///  * SWAP                — index-pair exchange
///  * generic k-qubit     — gather 2^k amplitudes, multiply, scatter
/// All kernels parallelize over amplitude blocks via parallel::for_range.
void apply_gate(StateVector& state, const Gate& gate);

/// Applies `gate` with its qubit operands remapped through `slot_of`:
/// original qubit q acts on state qubit slot_of[q]. Used by the
/// hierarchical simulator (inner state vectors) and the distributed layer
/// (local slots). Entries for qubits the gate does not touch are ignored.
void apply_gate_remapped(StateVector& state, const Gate& gate,
                         std::span<const Qubit> slot_of);

/// Counts the floating-point work of one gate application on an n-qubit
/// state (28 FLOPs per 2x2 matrix-vector multiply per the paper's Sec.
/// III-A roofline analysis). Used by the traffic/efficiency models.
double gate_flops(const Gate& gate, unsigned num_qubits);

}  // namespace hisim::sv
