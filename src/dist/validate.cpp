#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "dag/circuit_dag.hpp"
#include "dist/hisvsim_dist.hpp"
#include "partition/partition.hpp"

/// Deep validation of a compiled DistPlan — the exchange-schedule half of
/// the checked-build layer (common/check.hpp). Everything here re-derives
/// the plan's invariants from first principles rather than replaying the
/// code that built it, so a bug in compile_plan and a bug in the validator
/// would have to agree to slip through.
namespace hisim::dist {

namespace {

/// slot_of and qubit_at must be mutually inverse permutations of [0, n).
/// RankLayout's constructors enforce this, but the validator re-checks so
/// a future representation change (or a corrupted plan in a test) cannot
/// silently rely on it.
void check_layout_shape(const RankLayout& layout, unsigned n, unsigned p,
                        const char* what, std::size_t step) {
  HISIM_INVARIANT(layout.num_qubits() == n && layout.process_qubits() == p,
                  what << " of step " << step << " has shape ("
                       << layout.num_qubits() << ", " << layout.process_qubits()
                       << "), plan is (" << n << ", " << p << ")");
  for (Qubit q = 0; q < n; ++q) {
    const unsigned s = layout.slot_of(q);
    HISIM_INVARIANT(s < n, what << " of step " << step << ": qubit " << q
                                << " maps to slot " << s << " >= " << n);
    HISIM_INVARIANT(layout.qubit_at(s) == q,
                    what << " of step " << step << ": slot_of/qubit_at "
                         << "disagree at qubit " << q);
  }
}

/// Conservation across one exchange: under the destination layout every
/// (rank, offset) pair must be produced by exactly one global amplitude
/// index, and the round trip through global_index must be the identity.
/// Enumerating all 2^n amplitudes is exact and affordable for the state
/// sizes checked builds and tests run; larger states fall back to the
/// shape checks above (a valid permutation layout conserves by
/// construction — enumeration exists to catch representation bugs).
void check_exchange_conserves(const RankLayout& from, const RankLayout& to,
                              std::size_t step) {
  const unsigned n = from.num_qubits();
  if (n > 16) return;
  const Index dim = Index{1} << n;
  std::vector<bool> hit(dim, false);
  for (Index g = 0; g < dim; ++g) {
    const auto [src_rank, src_off] = from.locate(g);
    HISIM_INVARIANT(from.global_index(src_rank, src_off) == g,
                    "exchange into step "
                        << step << ": source locate/global_index round trip "
                        << "broken at amplitude " << g);
    const auto [dst_rank, dst_off] = to.locate(g);
    HISIM_INVARIANT(dst_rank < to.num_ranks() && dst_off < to.local_dim(),
                    "exchange into step " << step << ": amplitude " << g
                                          << " lands outside the shards");
    const Index flat = (Index{dst_rank} << to.local_qubits()) | dst_off;
    HISIM_INVARIANT(!hit[flat], "exchange into step "
                                    << step << ": shard slot (rank "
                                    << dst_rank << ", offset " << dst_off
                                    << ") written twice — a shard byte was "
                                    << "duplicated and another lost");
    hit[flat] = true;
  }
  // Every slot hit exactly once: dim writes into dim slots with no
  // duplicates is a bijection, so nothing was lost either.
}

/// Canonical sort key for multiset comparison. to_string() covers kind,
/// qubits, and parameter expressions; Unitary gates (same printable form,
/// possibly different matrices) are disambiguated within equal-key groups
/// by Gate::operator== below.
std::string gate_key(const Gate& g) { return g.to_string(); }

/// The steps' slot-remapped gates, unmapped through their layouts, must be
/// exactly the plan circuit's gates as a multiset — the schedule may
/// reorder gates only across parts (which the acyclic partitioning
/// guarantees is dependency-safe), never invent, drop, or rewrite one.
void check_gate_cover(const DistPlan& plan) {
  std::size_t step_gates = 0;
  for (const DistPlan::Step& s : plan.steps) step_gates += s.local.num_gates();
  HISIM_INVARIANT(step_gates == plan.circuit.num_gates(),
                  "steps carry " << step_gates << " gates, plan circuit has "
                                 << plan.circuit.num_gates());

  std::map<std::string, std::vector<const Gate*>> expect;
  for (const Gate& g : plan.circuit.gates())
    expect[gate_key(g)].push_back(&g);

  for (std::size_t si = 0; si < plan.steps.size(); ++si) {
    const DistPlan::Step& s = plan.steps[si];
    for (const Gate& lg : s.local.gates()) {
      Gate g = lg;  // unmap slots back to original qubits
      for (Qubit& q : g.qubits) q = s.layout.qubit_at(q);
      auto it = expect.find(gate_key(g));
      HISIM_INVARIANT(it != expect.end() && !it->second.empty(),
                      "step " << si << " carries gate '" << g.to_string()
                              << "' the plan circuit does not (or not this "
                              << "many times)");
      auto& cands = it->second;
      const auto match =
          std::find_if(cands.begin(), cands.end(),
                       [&](const Gate* cand) { return *cand == g; });
      HISIM_INVARIANT(match != cands.end(),
                      "step " << si << " gate '" << g.to_string()
                              << "' differs from every remaining plan gate "
                              << "with that signature");
      cands.erase(match);
    }
  }
  // Equal totals + every step gate matched => nothing left unclaimed.
}

void check_step_noise_slots(const DistPlan::Step& s, std::size_t si) {
  std::vector<bool> used(s.local.num_gates(), false);
  for (const auto& [gi, slot] : s.noise_slots) {
    HISIM_INVARIANT(gi < s.local.num_gates(),
                    "step " << si << " noise slot " << slot
                            << " points at gate " << gi << " of "
                            << s.local.num_gates());
    const Gate& g = s.local.gate(gi);
    HISIM_INVARIANT(g.kind == GateKind::NoiseSlot && g.noise_slot_id() == slot,
                    "step " << si << " noise-slot table entry (gate " << gi
                            << ", slot " << slot
                            << ") does not match the gate there");
    HISIM_INVARIANT(!used[gi], "step " << si << " noise-slot table points at "
                                       << "gate " << gi << " twice");
    used[gi] = true;
  }
  std::size_t slot_gates = 0;
  for (const Gate& g : s.local.gates())
    if (g.kind == GateKind::NoiseSlot) ++slot_gates;
  HISIM_INVARIANT(slot_gates == s.noise_slots.size(),
                  "step " << si << " has " << slot_gates
                          << " NoiseSlot gates but " << s.noise_slots.size()
                          << " table entries");
}

}  // namespace

void validate_plan(const DistPlan& plan) {
  const unsigned n = plan.num_qubits;
  const unsigned p = plan.process_qubits;
  HISIM_INVARIANT(p > 0 && p < n,
                  "plan shape requires 0 < process_qubits (" << p
                                                             << ") < qubits ("
                                                             << n << ")");
  HISIM_INVARIANT(plan.circuit.num_qubits() == n,
                  "plan circuit has " << plan.circuit.num_qubits()
                                      << " qubits, plan says " << n);
  const unsigned l = n - p;
  check_layout_shape(plan.initial_layout, n, p, "initial layout", 0);

  const RankLayout* prev = &plan.initial_layout;
  for (std::size_t si = 0; si < plan.steps.size(); ++si) {
    const DistPlan::Step& s = plan.steps[si];
    check_layout_shape(s.layout, n, p, "layout", si);
    check_exchange_conserves(*prev, s.layout, si);
    prev = &s.layout;

    HISIM_INVARIANT(s.local.num_qubits() == l,
                    "step " << si << " local circuit spans "
                            << s.local.num_qubits() << " qubits, shard has "
                            << l);
    // Circuit::add already rejects out-of-range qubits, so gates are local
    // by construction; re-assert so a corrupted plan cannot rely on that.
    for (const Gate& g : s.local.gates())
      for (Qubit q : g.qubits)
        HISIM_INVARIANT(q < l, "step " << si << " gate '" << g.to_string()
                                       << "' touches non-local slot " << q);
    check_step_noise_slots(s, si);

    if (!s.inner.parts.empty()) {
      const dag::CircuitDag sdag(s.local);
      try {
        partition::validate(sdag, s.inner);
      } catch (const Error& e) {
        HISIM_INVARIANT(false, "step " << si << " inner partitioning invalid: "
                                       << e.what());
      }
    }
  }

  check_gate_cover(plan);
}

}  // namespace hisim::dist
