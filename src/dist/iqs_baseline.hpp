#pragma once

#include "circuit/circuit.hpp"
#include "dist/backend.hpp"
#include "dist/dist_state.hpp"
#include "sv/kernel_dispatch.hpp"

namespace hisim::dist {

/// Accounting of one IQS-baseline run (same comm model as DistRunReport,
/// but per-gate exchanges instead of per-part redistributions).
struct IqsRunReport {
  unsigned ranks = 0;
  double compute_seconds = 0.0;
  CommStats comm;

  double total_seconds() const {
    return compute_seconds + comm.modeled_max_seconds;
  }
  /// Fraction of the total spent communicating, in [0, 1].
  double comm_ratio() const {
    const double total = total_seconds();
    return total > 0.0 ? comm.modeled_max_seconds / total : 0.0;
  }
};

/// Intel-QS-style distributed baseline (the paper's Fig. 7/8 comparison
/// arm): the amplitude layout is *fixed* to the identity — qubit q at slot
/// q, the top p qubits selecting the rank — for the whole run, and every
/// gate is classified per the standard scheme:
///  * all operands local                    -> rank-local apply, free
///  * diagonal (any operands)               -> per-rank phase sweep, free
///  * global controls, local mixing qubits  -> conditional local apply, free
///  * a *mixing* operand on a process qubit -> pairwise halves exchange
///    between the 2^|G| ranks differing in those bits, one event per gate
/// Deep circuits that repeatedly target a process qubit therefore pay one
/// exchange per gate, which is exactly the traffic HiSVSIM's one
/// redistribution per part amortizes away.
class IqsBaselineSimulator {
 public:
  /// Runs `c` on `state`, which must carry the identity layout (throws
  /// otherwise — this baseline never relayouts). The layout is unchanged
  /// on return. Pass the same `net` given to DistributedHiSvSim::Options
  /// when comparing the two on a non-default interconnect. Rank-local
  /// work and the pairwise exchange groups (which touch disjoint shard
  /// sets) execute through `backend` (nullptr = serial_backend()); the
  /// resulting state and CommStats are backend-independent. `kernels`
  /// selects the apply-kernel tier (nullptr = the Auto-resolved default).
  IqsRunReport run(const Circuit& c, DistState& state,
                   const NetworkModel& net = {},
                   CommBackend* backend = nullptr,
                   const sv::KernelOps* kernels = nullptr) const;
};

}  // namespace hisim::dist
