#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hisim::dist {

/// Placement of an n-qubit state vector across 2^p ranks.
///
/// A layout is a permutation assigning every circuit qubit to a *slot*:
/// slots [0, l) with l = n - p are **local qubits** (they address
/// amplitudes inside one rank's shard), slots [l, n) are **process
/// qubits** (slot l + j is bit j of the owning rank id). Writing the
/// combined index of an amplitude as c = (rank << l) | local, bit
/// slot_of(q) of c equals bit q of the amplitude's canonical global
/// index. The identity layout places qubit q at slot q.
///
/// Fig. 3 amplitude-placement convention (see test_layout.cpp
/// PaperFig3Example): with 4 qubits on 4 ranks under the identity layout
/// [a3,a2 | a1,a0], the top two qubits select the rank and the bottom two
/// the offset inside it, so amplitude a_0110 (global index 6) lives on
/// rank P(0,1) = 1 at local offset l(1,0) = 2. A redistribution to a
/// different layout permutes which qubits play the "rank" role — that is
/// the only communication HiSVSIM performs.
class RankLayout {
 public:
  /// Empty (0-qubit) placeholder so plan/report structs can default-
  /// construct; every real layout comes from the validating constructors.
  RankLayout() = default;

  /// Builds a layout from an explicit qubit→slot map: slot_of[q] is the
  /// slot of qubit q. Throws unless slot_of is a permutation of [0, n).
  RankLayout(unsigned num_qubits, unsigned process_qubits,
             std::vector<Qubit> slot_of);

  /// The identity layout: qubit q at slot q (low qubits local, top p
  /// qubits select the rank). This is the placement IQS-style simulators
  /// keep for a whole run.
  static RankLayout identity(unsigned num_qubits, unsigned process_qubits);

  /// Layout for executing one circuit part: every qubit in `part` becomes
  /// local, and qubits that do not have to move keep their `prev` slots
  /// (minimal-movement heuristic — each displaced process qubit swaps
  /// slots with the highest-slot local qubit outside the part). Returns a
  /// layout equal to `prev` when the part is already fully local, which
  /// lets the executor skip the exchange entirely. Throws if `part` has
  /// more than n - p qubits or invalid/duplicate entries.
  static RankLayout for_part(unsigned num_qubits, unsigned process_qubits,
                             const std::vector<Qubit>& part,
                             const RankLayout& prev);

  unsigned num_qubits() const { return n_; }
  unsigned process_qubits() const { return p_; }
  unsigned local_qubits() const { return n_ - p_; }
  unsigned num_ranks() const { return 1u << p_; }
  /// Amplitudes held by each rank: 2^(n-p).
  Index local_dim() const { return Index{1} << local_qubits(); }

  /// Slot of qubit q (see class comment).
  unsigned slot_of(Qubit q) const { return slot_of_[q]; }
  /// Qubit occupying slot s (inverse of slot_of).
  Qubit qubit_at(unsigned slot) const { return qubit_at_[slot]; }
  /// True iff qubit q addresses amplitudes within a single rank.
  bool is_local(Qubit q) const { return slot_of_[q] < local_qubits(); }

  /// Canonical global amplitude index of (rank, local offset).
  Index global_index(unsigned rank, Index local) const;
  /// Inverse of global_index: which rank holds global amplitude g, and at
  /// which local offset.
  std::pair<unsigned, Index> locate(Index global) const;

  bool operator==(const RankLayout& o) const {
    return n_ == o.n_ && p_ == o.p_ && slot_of_ == o.slot_of_;
  }

 private:
  unsigned n_ = 0;
  unsigned p_ = 0;
  std::vector<Qubit> slot_of_;   // qubit -> slot
  std::vector<Qubit> qubit_at_;  // slot -> qubit
};

}  // namespace hisim::dist
