#include "dist/hisvsim_dist.hpp"

#include <algorithm>
#include <mutex>

#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "dag/circuit_dag.hpp"
#include "sv/hierarchical.hpp"
#include "sv/kernels.hpp"

namespace hisim::dist {

double DistRunReport::total_seconds_overlapped() const {
  if (part_times.empty()) return total_seconds();
  double t = part_times.front().first;
  for (std::size_t i = 0; i < part_times.size(); ++i) {
    const double next_comm =
        i + 1 < part_times.size() ? part_times[i + 1].first : 0.0;
    t += std::max(part_times[i].second, next_comm);
  }
  return t;
}

double DistRunReport::comm_ratio() const {
  const double total = total_seconds();
  return total > 0.0 ? comm.modeled_max_seconds / total : 0.0;
}

DistRunReport DistributedHiSvSim::run(const Circuit& c, const Options& opt,
                                      DistState& state) const {
  const unsigned n = c.num_qubits();
  const unsigned p = opt.process_qubits;
  HISIM_CHECK_MSG(p > 0 && p < n, "need 0 < process_qubits < num_qubits");
  HISIM_CHECK_MSG(state.num_qubits() == n && state.num_ranks() == (1u << p),
                  "state shape does not match circuit/options");
  const unsigned l = n - p;
  const unsigned v = state.num_ranks();
  CommBackend& backend = opt.backend ? *opt.backend : serial_backend();

  partition::PartitionOptions po = opt.part;
  po.limit = po.limit == 0 ? l : std::min(po.limit, l);

  // Gates wider than a shard can never be made fully local; lower them
  // first (Barenco recursion) so a valid one-exchange-per-part schedule
  // exists. Arity-2 gates that still exceed the limit are rejected by the
  // partitioner below.
  unsigned max_arity = 0;
  for (const Gate& g : c.gates()) max_arity = std::max(max_arity, g.arity());
  Circuit lowered;
  if (max_arity > po.limit) lowered = lower(c, std::max(po.limit, 2u));
  const Circuit& run_c = max_arity > po.limit ? lowered : c;

  const dag::CircuitDag dag(run_c);
  const partition::Partitioning parts = partition::make_partition(dag, po);

  DistRunReport rep;
  rep.parts = parts.num_parts();
  rep.ranks = 1u << p;
  rep.partition_seconds = parts.partition_seconds;

  for (const partition::Part& part : parts.parts) {
    // (1) Relayout: one collective exchange at most, none if the part's
    // qubits are already local. The exchange is started asynchronously;
    // each rank below waits only for its own shard before applying.
    Timer wall;
    const double comm_before = rep.comm.modeled_max_seconds;
    const RankLayout target =
        RankLayout::for_part(n, p, part.qubits, state.layout());
    const std::unique_ptr<ExchangeHandle> handle =
        state.redistribute_async(target, opt.net, rep.comm, backend);
    const double part_comm = rep.comm.modeled_max_seconds - comm_before;
    // The comm window on the part clock: movement started (at most) here
    // and finishes handle->finished_after() later (0 for a synchronous
    // backend — its movement already happened).
    const double comm_begin = wall.seconds();

    // (2) Local apply: every part qubit now sits on a slot below l, so
    // each gate is block-diagonal over ranks and applies shard-locally.
    // Ranks are independent, so the apply loop fans out over
    // parallel::for_range (one rank per chunk); shard contents are
    // identical to a serial sweep.
    std::vector<Qubit> slot_of(n);
    for (Qubit q = 0; q < n; ++q)
      slot_of[q] = static_cast<Qubit>(state.layout().slot_of(q));

    std::mutex comp_mu;
    // Compute window on the part clock: first rank starting to apply
    // (after its shard arrived) → last rank finished.
    double comp_begin = -1.0, comp_end = 0.0;
    auto apply_ranks = [&](const std::function<void(unsigned)>& apply_rank) {
      parallel::for_range(
          0, v,
          [&](Index lo, Index hi) {
            for (Index r = lo; r < hi; ++r) {
              const unsigned rank = static_cast<unsigned>(r);
              if (handle) handle->wait_shard(rank);
              const double t0 = wall.seconds();
              apply_rank(rank);
              const double t1 = wall.seconds();
              std::lock_guard lk(comp_mu);
              if (comp_begin < 0.0 || t0 < comp_begin) comp_begin = t0;
              comp_end = std::max(comp_end, t1);
            }
          },
          /*grain=*/1);
    };

    if (opt.level2_limit == 0) {
      apply_ranks([&](unsigned r) {
        for (std::size_t gi : part.gates)
          sv::apply_gate_remapped(state.local(r), run_c.gate(gi), slot_of);
      });
    } else {
      // Second level: re-partition the part's sub-circuit (expressed on
      // local slots) with the cache-sized limit and run it through the
      // gather-execute-scatter machinery on every shard. The second-level
      // partitioning cost is booked as partition time, not compute.
      Circuit sub(l);
      for (std::size_t gi : part.gates) {
        Gate g = run_c.gate(gi);
        for (Qubit& q : g.qubits) q = slot_of[q];
        sub.add(std::move(g));
      }
      partition::PartitionOptions po2 = po;
      po2.limit = std::min(opt.level2_limit, l);
      const dag::CircuitDag sdag(sub);
      const partition::Partitioning inner = partition::make_partition(sdag, po2);
      rep.inner_parts += inner.num_parts();
      rep.partition_seconds += inner.partition_seconds;
      apply_ranks([&](unsigned r) {
        sv::HierarchicalStats scratch;  // per-rank: run_part mutates it
        for (const partition::Part& ip : inner.parts)
          sv::run_part(sub, ip.gates, ip.qubits, state.local(r), scratch);
      });
    }

    const double part_comp = comp_begin < 0.0 ? 0.0 : comp_end - comp_begin;
    if (handle) {
      handle->wait_all();
      rep.measured_comm_seconds += handle->seconds();
      // Overlap = intersection of the comm window [comm_begin, comm_end]
      // and the compute window [comp_begin, comp_end] on the part clock.
      const double comm_end = comm_begin + handle->finished_after();
      if (comp_begin >= 0.0)
        rep.measured_overlap_seconds += std::max(
            0.0, std::min(comm_end, comp_end) - std::max(comm_begin, comp_begin));
    }
    rep.measured_wall_seconds += wall.seconds();
    rep.compute_seconds += part_comp;
    rep.part_times.emplace_back(part_comm, part_comp);
  }
  return rep;
}

}  // namespace hisim::dist
