#include "dist/hisvsim_dist.hpp"

#include <algorithm>

#include "circuit/decompose.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "dag/circuit_dag.hpp"
#include "sv/hierarchical.hpp"
#include "sv/kernels.hpp"

namespace hisim::dist {

double pipelined_total_seconds(
    std::span<const std::pair<double, double>> part_times, double fallback) {
  if (part_times.empty()) return fallback;
  double t = part_times.front().first;
  for (std::size_t i = 0; i < part_times.size(); ++i) {
    const double next_comm =
        i + 1 < part_times.size() ? part_times[i + 1].first : 0.0;
    t += std::max(part_times[i].second, next_comm);
  }
  return t;
}

double DistRunReport::total_seconds_overlapped() const {
  return pipelined_total_seconds(part_times, total_seconds());
}

double DistRunReport::comm_ratio() const {
  const double total = total_seconds();
  return total > 0.0 ? comm.modeled_max_seconds / total : 0.0;
}

DistPlan compile_plan(const Circuit& c, const DistOptions& opt,
                      const RankLayout* initial) {
  Timer compile_timer;
  const unsigned n = c.num_qubits();
  const unsigned p = opt.process_qubits;
  HISIM_CHECK_MSG(p > 0 && p < n, "need 0 < process_qubits < num_qubits");
  const unsigned l = n - p;

  partition::PartitionOptions po = opt.part;
  po.limit = po.limit == 0 ? l : std::min(po.limit, l);

  DistPlan plan;
  plan.num_qubits = n;
  plan.process_qubits = p;
  plan.level2_limit = opt.level2_limit;
  plan.initial_layout = initial ? *initial : RankLayout::identity(n, p);
  HISIM_CHECK_MSG(plan.initial_layout.num_qubits() == n &&
                      plan.initial_layout.process_qubits() == p,
                  "initial layout shape does not match circuit/options");

  // Gates wider than a shard can never be made fully local; lower them
  // first (Barenco recursion) so a valid one-exchange-per-part schedule
  // exists. Arity-2 gates that still exceed the limit are rejected by the
  // partitioner below.
  unsigned max_arity = 0;
  for (const Gate& g : c.gates()) max_arity = std::max(max_arity, g.arity());
  if (max_arity > po.limit) {
    trace::TraceSpan span("lower", "dist");
    plan.circuit = lower(c, std::max(po.limit, 2u));
  } else {
    plan.circuit = c;
  }

  const dag::CircuitDag dag = [&] {
    trace::TraceSpan span("dag.build", "dist");
    return dag::CircuitDag(plan.circuit);
  }();
  const partition::Partitioning parts = partition::make_partition(dag, po);
  plan.partition_seconds = parts.partition_seconds;

  // Walk the layout chain once: each part's target layout depends only on
  // the previous part's, so the whole exchange schedule — and the gate
  // remapping it implies — is known before any amplitude exists.
  trace::TraceSpan schedule_span("schedule.build", "dist");
  const RankLayout* prev = &plan.initial_layout;
  for (const partition::Part& part : parts.parts) {
    DistPlan::Step step;
    step.layout = RankLayout::for_part(n, p, part.qubits, *prev);

    Circuit local(l);
    for (const std::string& pn : plan.circuit.param_names()) local.param(pn);
    for (std::size_t gi : part.gates) {
      Gate g = plan.circuit.gate(gi);
      for (Qubit& q : g.qubits)
        q = static_cast<Qubit>(step.layout.slot_of(q));
      step.parametric = step.parametric || g.is_parametric();
      if (g.kind == GateKind::NoiseSlot)
        step.noise_slots.emplace_back(local.num_gates(), g.noise_slot_id());
      local.add(std::move(g));
    }
    step.local = std::move(local);

    if (opt.level2_limit > 0) {
      // Second level: partition the part's slot-local sub-circuit with the
      // cache-sized limit. Booked as partition time, not compute.
      partition::PartitionOptions po2 = po;
      po2.limit = std::min(opt.level2_limit, l);
      const dag::CircuitDag sdag(step.local);
      step.inner = partition::make_partition(sdag, po2);
      plan.inner_parts += step.inner.num_parts();
      plan.partition_seconds += step.inner.partition_seconds;
    }

    plan.steps.push_back(std::move(step));
    prev = &plan.steps.back().layout;
  }
  plan.compile_seconds = compile_timer.seconds();
  return plan;
}

DistRunReport execute_plan(const DistPlan& plan, DistState& state,
                           const NetworkModel& net, CommBackend* backend_ptr,
                           std::span<const double> param_values,
                           std::span<const Gate> noise_ops,
                           const sv::KernelOps* kernels) {
  const sv::KernelOps& kops =
      kernels != nullptr ? *kernels : sv::kernel_ops();
  const unsigned n = plan.num_qubits;
  const unsigned p = plan.process_qubits;
  HISIM_CHECK_MSG(state.num_qubits() == n && state.num_ranks() == (1u << p),
                  "state shape does not match plan");
  HISIM_CHECK_MSG(state.layout() == plan.initial_layout,
                  "state layout does not match the plan's initial layout");
  const unsigned v = state.num_ranks();
  CommBackend& backend = backend_ptr ? *backend_ptr : serial_backend();

  DistRunReport rep;
  rep.parts = plan.num_parts();
  rep.inner_parts = plan.inner_parts;
  rep.ranks = 1u << p;
  rep.partition_seconds = plan.partition_seconds;

  // One accounting source for the run: every per-step measurement is
  // recorded into this run-local registry (local so concurrent executes
  // on separate states cannot cross-pollute) and the report's scalar
  // fields are queried back from it at the end. Recording happens
  // serially on this thread in step order, so each distribution's sum
  // accumulates in exactly the fp order the old `+=` fields used — the
  // scalar outputs are bit-identical to the pre-registry plumbing.
  trace::MetricsRegistry reg;
  trace::Distribution& d_modeled = reg.distribution("exchange.modeled_seconds");
  trace::Distribution& d_apply = reg.distribution("apply.seconds");
  trace::Distribution& d_wall = reg.distribution("step.wall_seconds");
  trace::Distribution& d_comm = reg.distribution("exchange.measured_seconds");
  trace::Distribution& d_overlap = reg.distribution("exchange.overlap_seconds");

  std::int64_t step_index = 0;
  for (const DistPlan::Step& step : plan.steps) {
    trace::TraceSpan step_span("step", "dist");
    step_span.arg("index", step_index++);
    // (1) Relayout: one collective exchange at most, none if the part's
    // qubits are already local. The exchange is started asynchronously;
    // each rank below waits only for its own shard before applying.
    Timer wall;
    const double comm_before = rep.comm.modeled_max_seconds;
    const std::unique_ptr<ExchangeHandle> handle =
        state.redistribute_async(step.layout, net, rep.comm, backend);
    const double part_comm = rep.comm.modeled_max_seconds - comm_before;
    // The comm window on the part clock: movement started (at most) here
    // and finishes handle->finished_after() later (0 for a synchronous
    // backend — its movement already happened).
    const double comm_begin = wall.seconds();

    // Materialize a parametric or noisy step while the exchange is
    // (possibly) still in flight: only the angle values and the
    // trajectory's sampled slot operators are substituted — the layout,
    // slot remapping, and inner partitioning above are the plan's
    // precomputed structure. Gate count and order are preserved, so
    // step.inner's gate indices stay valid.
    Circuit bound_storage;
    const Circuit* local_circuit = &step.local;
    if (step.parametric || (!noise_ops.empty() && !step.noise_slots.empty())) {
      trace::TraceSpan bind_span("bind", "dist");
      if (step.parametric) {
        bound_storage = step.local.bound(param_values);
        local_circuit = &bound_storage;
      }
      if (!noise_ops.empty() && !step.noise_slots.empty()) {
        if (local_circuit != &bound_storage) bound_storage = step.local;
        for (const auto& [gi, slot] : step.noise_slots) {
          HISIM_CHECK_MSG(slot < noise_ops.size(),
                          "noise slot " << slot << " has no sampled operator");
          Gate op = noise_ops[slot];
          op.qubits = bound_storage.gate(gi).qubits;
          bound_storage.set_gate(gi, std::move(op));
        }
        local_circuit = &bound_storage;
      }
    }
    const Circuit& local = *local_circuit;

    // (2) Local apply: the plan already holds the part's gates remapped to
    // local slots, so each gate is block-diagonal over ranks and applies
    // shard-locally. Ranks are independent, so the apply loop fans out
    // over parallel::for_range (one rank per chunk); shard contents are
    // identical to a serial sweep.
    Mutex comp_mu;
    // Compute window on the part clock: first rank starting to apply
    // (after its shard arrived) → last rank finished.
    double comp_begin = -1.0, comp_end = 0.0;
    parallel::for_range(
        0, v,
        [&](Index lo, Index hi) {
          for (Index r = lo; r < hi; ++r) {
            const unsigned rank = static_cast<unsigned>(r);
            if (handle) handle->wait_shard(rank);
            trace::TraceSpan apply_span("apply", "dist");
            apply_span.arg("rank", rank);
            const double t0 = wall.seconds();
            if (step.inner.num_parts() == 0) {
              for (const Gate& g : local.gates())
                sv::apply_gate(state.local(rank), g, kops);
            } else {
              sv::HierarchicalStats scratch;  // per-rank: run_part mutates it
              for (const partition::Part& ip : step.inner.parts)
                sv::run_part(local, ip.gates, ip.qubits,
                             state.local(rank), scratch, &kops);
            }
            const double t1 = wall.seconds();
            MutexLock lk(comp_mu);
            if (comp_begin < 0.0 || t0 < comp_begin) comp_begin = t0;
            comp_end = std::max(comp_end, t1);
          }
        },
        /*grain=*/1);

    const double part_comp = comp_begin < 0.0 ? 0.0 : comp_end - comp_begin;
    if (handle) {
      trace::TraceSpan wait_span("exchange.wait_all", "dist");
      handle->wait_all();
    }
    if (handle) {
      d_comm.record(handle->seconds());
      // Overlap = intersection of the comm window [comm_begin, comm_end]
      // and the compute window [comp_begin, comp_end] on the part clock.
      const double comm_end = comm_begin + handle->finished_after();
      if (comp_begin >= 0.0)
        d_overlap.record(std::max(
            0.0, std::min(comm_end, comp_end) - std::max(comm_begin, comp_begin)));
    }
    d_wall.record(wall.seconds());
    d_apply.record(part_comp);
    d_modeled.record(part_comm);
    rep.part_times.emplace_back(part_comm, part_comp);
    // Counter tracks in the trace viewer: cumulative modeled network
    // bytes and messages after each step.
    trace::counter_sample("exchange.bytes",
                          static_cast<double>(rep.comm.bytes_total));
    trace::counter_sample("exchange.messages",
                          static_cast<double>(rep.comm.messages_total));
  }

  // The report's scalar fields are the registry's sums — same values,
  // same fp accumulation order, one accounting source.
  rep.compute_seconds = d_apply.snapshot().sum;
  rep.measured_comm_seconds = d_comm.snapshot().sum;
  rep.measured_wall_seconds = d_wall.snapshot().sum;
  rep.measured_overlap_seconds = d_overlap.snapshot().sum;
  reg.counter("exchange.count").add(rep.comm.exchanges);
  reg.counter("exchange.bytes").add(static_cast<std::uint64_t>(
      rep.comm.bytes_total));
  reg.counter("exchange.messages").add(rep.comm.messages_total);
  rep.metrics = reg.flat();
  return rep;
}

DistRunReport DistributedHiSvSim::run(const Circuit& c, const Options& opt,
                                      DistState& state) const {
  const DistPlan plan = compile_plan(c, opt, &state.layout());
  return execute_plan(plan, state, opt.net, opt.backend);
}

}  // namespace hisim::dist
