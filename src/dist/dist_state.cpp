#include "dist/dist_state.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace hisim::dist {

void charge_exchange(CommStats& stats, const NetworkModel& net,
                     std::span<const Index> sent, std::span<const Index> recv,
                     std::span<const std::size_t> msgs) {
  const std::size_t hosts = sent.size();
  double worst = 0.0, sum = 0.0;
  for (std::size_t h = 0; h < hosts; ++h) {
    stats.bytes_total += sent[h];
    stats.messages_total += msgs[h];
    const double cost = net.seconds(std::max(sent[h], recv[h]), msgs[h]);
    worst = std::max(worst, cost);
    sum += cost;
  }
  stats.exchanges += 1;
  stats.modeled_max_seconds += worst;
  stats.modeled_avg_seconds += sum / static_cast<double>(hosts);
}

namespace {

RankLayout checked_identity(unsigned num_qubits, unsigned process_qubits) {
  HISIM_CHECK_MSG(num_qubits > 0, "need at least one qubit");
  HISIM_CHECK_MSG(process_qubits <= num_qubits,
                  process_qubits << " process qubits exceed " << num_qubits
                                 << " qubits");
  HISIM_CHECK_MSG(process_qubits < 31,
                  "2^" << process_qubits << " virtual ranks overflows");
  return RankLayout::identity(num_qubits, process_qubits);
}

}  // namespace

DistState::DistState(unsigned num_qubits, unsigned process_qubits,
                     unsigned physical_ranks)
    : layout_(checked_identity(num_qubits, process_qubits)) {
  const unsigned v = layout_.num_ranks();
  physical_ = physical_ranks == 0 ? v : physical_ranks;
  HISIM_CHECK_MSG(physical_ <= v,
                  physical_ << " hosts for only " << v << " virtual ranks");
  block_ = (v + physical_ - 1) / physical_;
  ranks_.reserve(v);
  for (unsigned r = 0; r < v; ++r) {
    ranks_.emplace_back(layout_.local_qubits());
    if (r != 0) ranks_[r][0] = 0.0;  // only rank 0 holds the |0..0> amplitude
  }
}

sv::StateVector DistState::to_state_vector() const {
  const Index ldim = layout_.local_dim();
  sv::StateVector full(num_qubits());
  full[0] = 0.0;
  // Flattened (rank, offset) gather: the layout is a bijection, so every
  // global index is written exactly once and chunks never collide.
  parallel::for_range(0, Index{num_ranks()} * ldim, [&](Index lo, Index hi) {
    for (Index ci = lo; ci < hi; ++ci) {
      const unsigned r = static_cast<unsigned>(ci >> layout_.local_qubits());
      const Index i = ci & (ldim - 1);
      full[layout_.global_index(r, i)] = ranks_[r][i];
    }
  });
  return full;
}

void DistState::redistribute(const RankLayout& target, const NetworkModel& net,
                             CommStats& stats, CommBackend& backend) {
  if (auto handle = redistribute_async(target, net, stats, backend))
    handle->wait_all();
}

std::unique_ptr<ExchangeHandle> DistState::redistribute_async(
    const RankLayout& target, const NetworkModel& net, CommStats& stats,
    CommBackend& backend) {
  HISIM_CHECK(target.num_qubits() == num_qubits() &&
              target.process_qubits() == layout_.process_qubits());
  if (target == layout_) return nullptr;

  const unsigned v = num_ranks();
  const unsigned n = num_qubits();
  const unsigned l = layout_.local_qubits();
  const Index ldim = layout_.local_dim();

  // Composed slot permutation: bit s of the old combined index moves to
  // bit fwd[s] of the new one (both layouts agree on the canonical global
  // index, so the map factors through it qubit by qubit).
  std::vector<unsigned> fwd(n), inv(n);
  for (unsigned s = 0; s < n; ++s) fwd[s] = target.slot_of(layout_.qubit_at(s));
  for (unsigned s = 0; s < n; ++s) inv[fwd[s]] = s;
  // Checked builds re-assert that the composed map really is a permutation
  // (slot_of/qubit_at of either layout disagreeing would corrupt every
  // shard below); fwd hitting n distinct values makes inv its inverse.
  for (unsigned s = 0; s < n; ++s)
    HISIM_DCHECK_MSG(fwd[s] < n && inv[fwd[s]] == s,
                     "redistribute slot map is not a permutation");

  // Traffic accounting, derived from the permutation alone (no data pass,
  // and identical for every backend). From source rank r, the destination
  // rank bits fed by r's own rank bits are fixed; those fed by offset bits
  // take every value equally often, so each reachable destination rank
  // receives exactly ldim >> k amplitudes.
  std::vector<Index> sent(physical_, 0), recv(physical_, 0);
  std::vector<std::size_t> msgs(physical_, 0);
  std::vector<unsigned> vary;  // destination rank bits driven by offset bits
  vary.reserve(n - l);
  for (unsigned s2 = l; s2 < n; ++s2)
    if (inv[s2] < l) vary.push_back(s2 - l);
  const unsigned k = static_cast<unsigned>(vary.size());
  const Index amps = ldim >> k;
  for (unsigned r = 0; r < v; ++r) {
    unsigned base = 0;
    for (unsigned s2 = l; s2 < n; ++s2)
      if (inv[s2] >= l && ((r >> (inv[s2] - l)) & 1u)) base |= 1u << (s2 - l);
    const unsigned h1 = physical_of(r);
    for (Index sub = 0; sub < (Index{1} << k); ++sub) {
      unsigned r2 = base;
      for (unsigned b = 0; b < k; ++b)
        if ((sub >> b) & 1u) r2 |= 1u << vary[b];
      if (r2 == r) continue;
      const unsigned h2 = physical_of(r2);
      if (h1 == h2) continue;
      sent[h1] += amps * kAmpBytes;
      recv[h2] += amps * kAmpBytes;
      msgs[h1] += 1;
    }
  }
  charge_exchange(stats, net, sent, recv, msgs);

  // Double buffering: the old shards become the exchange source, the spare
  // buffer (allocated once, reused across exchanges) receives.
  if (spare_.size() != v) {
    spare_.clear();
    spare_.reserve(v);
    for (unsigned r = 0; r < v; ++r) spare_.emplace_back(l);
  }
  ranks_.swap(spare_);
  layout_ = target;

  ExchangePlan plan;
  plan.local_qubits = l;
  plan.num_ranks = v;
  plan.inv = std::move(inv);
  plan.src = &spare_;
  plan.dst = &ranks_;
  plan.physical = physical_;
  plan.vranks_per_host = block_;
  return backend.start_exchange(plan);
}

}  // namespace hisim::dist
