#include "dist/dist_state.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hisim::dist {

void charge_exchange(CommStats& stats, const NetworkModel& net,
                     std::span<const Index> sent, std::span<const Index> recv,
                     std::span<const std::size_t> msgs) {
  const std::size_t hosts = sent.size();
  double worst = 0.0, sum = 0.0;
  for (std::size_t h = 0; h < hosts; ++h) {
    stats.bytes_total += sent[h];
    stats.messages_total += msgs[h];
    const double cost = net.seconds(std::max(sent[h], recv[h]), msgs[h]);
    worst = std::max(worst, cost);
    sum += cost;
  }
  stats.exchanges += 1;
  stats.modeled_max_seconds += worst;
  stats.modeled_avg_seconds += sum / static_cast<double>(hosts);
}

DistState::DistState(unsigned num_qubits, unsigned process_qubits,
                     unsigned physical_ranks)
    : layout_(RankLayout::identity(num_qubits, process_qubits)) {
  const unsigned v = layout_.num_ranks();
  physical_ = physical_ranks == 0 ? v : physical_ranks;
  HISIM_CHECK_MSG(physical_ <= v,
                  physical_ << " hosts for only " << v << " virtual ranks");
  block_ = (v + physical_ - 1) / physical_;
  ranks_.reserve(v);
  for (unsigned r = 0; r < v; ++r) {
    ranks_.emplace_back(layout_.local_qubits());
    if (r != 0) ranks_[r][0] = 0.0;  // only rank 0 holds the |0..0> amplitude
  }
}

sv::StateVector DistState::to_state_vector() const {
  sv::StateVector full(num_qubits());
  full[0] = 0.0;
  for (unsigned r = 0; r < num_ranks(); ++r)
    for (Index i = 0; i < layout_.local_dim(); ++i)
      full[layout_.global_index(r, i)] = ranks_[r][i];
  return full;
}

void DistState::redistribute(const RankLayout& target, const NetworkModel& net,
                             CommStats& stats) {
  HISIM_CHECK(target.num_qubits() == num_qubits() &&
              target.process_qubits() == layout_.process_qubits());
  if (target == layout_) return;

  const unsigned v = num_ranks();
  const unsigned n = num_qubits();
  const Index ldim = layout_.local_dim();

  // Composed slot permutation: bit s of the old combined index moves to
  // bit perm[s] of the new one (both layouts agree on the canonical
  // global index, so the map factors through it qubit by qubit).
  std::vector<unsigned> perm(n);
  for (unsigned s = 0; s < n; ++s) perm[s] = target.slot_of(layout_.qubit_at(s));

  std::vector<sv::StateVector> next;
  next.reserve(v);
  for (unsigned r = 0; r < v; ++r) {
    next.emplace_back(layout_.local_qubits());
    next[r][0] = 0.0;
  }

  // Per-directed-virtual-rank-pair traffic, for the host cost model.
  std::vector<Index> pair_amps(static_cast<std::size_t>(v) * v, 0);
  for (unsigned r = 0; r < v; ++r) {
    for (Index i = 0; i < ldim; ++i) {
      Index c = Index{r} << layout_.local_qubits() | i;
      Index d = 0;
      for (unsigned s = 0; s < n; ++s)
        if ((c >> s) & 1u) d |= Index{1} << perm[s];
      const unsigned r2 = static_cast<unsigned>(d >> layout_.local_qubits());
      next[r2][d & (ldim - 1)] = ranks_[r][i];
      ++pair_amps[static_cast<std::size_t>(r) * v + r2];
    }
  }
  ranks_ = std::move(next);
  layout_ = target;

  // Charge cross-host traffic: one message per directed virtual-rank pair
  // with payload; co-located pairs are free.
  std::vector<Index> sent(physical_, 0), recv(physical_, 0);
  std::vector<std::size_t> msgs(physical_, 0);
  for (unsigned r = 0; r < v; ++r) {
    for (unsigned r2 = 0; r2 < v; ++r2) {
      const Index amps = pair_amps[static_cast<std::size_t>(r) * v + r2];
      if (amps == 0 || r == r2) continue;
      const unsigned h1 = physical_of(r), h2 = physical_of(r2);
      if (h1 == h2) continue;
      sent[h1] += amps * kAmpBytes;
      recv[h2] += amps * kAmpBytes;
      msgs[h1] += 1;
    }
  }
  charge_exchange(stats, net, sent, recv, msgs);
}

}  // namespace hisim::dist
