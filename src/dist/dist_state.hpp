#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dist/backend.hpp"
#include "dist/layout.hpp"
#include "sv/state_vector.hpp"

namespace hisim::dist {

/// Analytic cluster-network cost model (alpha-beta): a transfer of b bytes
/// split over m messages costs m*latency + b/bandwidth seconds. Defaults
/// approximate one 100 Gb/s NIC per host with ~2 us one-way latency.
struct NetworkModel {
  double bandwidth_bytes_per_sec = 12.5e9;
  double latency_sec = 2e-6;

  double seconds(Index bytes, std::size_t messages) const {
    return static_cast<double>(messages) * latency_sec +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

/// Accumulated communication accounting across exchange events. Bytes and
/// messages count only traffic that crosses *physical* host boundaries:
/// virtual ranks co-located on one host exchange through shared memory for
/// free (paper footnote 2).
struct CommStats {
  std::size_t exchanges = 0;        // collective exchange events
  std::size_t messages_total = 0;   // point-to-point messages sent
  Index bytes_total = 0;            // payload bytes on the network
  double modeled_max_seconds = 0.0; // sum over events of the slowest host
  double modeled_avg_seconds = 0.0; // sum over events of the mean host cost

  bool operator==(const CommStats&) const = default;
};

/// Folds one exchange event's per-host traffic into `stats` under `net`:
/// counts the event, sums cross-host bytes/messages, and adds the slowest
/// and mean host cost, where a host's wall time is bounded by the larger
/// of what it sends and what it receives. Shared by the redistribution
/// primitive and the IQS baseline so their modeled costs stay comparable.
void charge_exchange(CommStats& stats, const NetworkModel& net,
                     std::span<const Index> sent, std::span<const Index> recv,
                     std::span<const std::size_t> msgs);

/// State vector sharded over 2^p simulated ranks. Each rank owns a
/// contiguous 2^(n-p)-amplitude shard addressed through a RankLayout;
/// redistribute() moves amplitudes between shards when the layout changes
/// (the all-to-all exchange primitive of the paper's Sec. V) and charges
/// the modeled network cost to a CommStats. The data movement itself is
/// delegated to a CommBackend; traffic accounting is derived analytically
/// from the permutation, so every backend produces identical CommStats.
///
/// Virtual ranks: passing physical_ranks < 2^p maps the 2^p virtual ranks
/// onto that many hosts in contiguous blocks (ceil(2^p/H) per host), which
/// relaxes the power-of-two host-count constraint; traffic between
/// co-located virtual ranks is free.
class DistState {
 public:
  /// Ground state |0...0> of n qubits on 2^p ranks under the identity
  /// layout. physical_ranks = 0 means one host per virtual rank. Throws
  /// hisim::Error unless num_qubits > 0, process_qubits <= num_qubits
  /// (and small enough that 2^p fits an unsigned), and
  /// physical_ranks <= 2^p.
  explicit DistState(unsigned num_qubits, unsigned process_qubits,
                     unsigned physical_ranks = 0);

  unsigned num_qubits() const { return layout_.num_qubits(); }
  unsigned num_ranks() const { return layout_.num_ranks(); }
  unsigned physical_ranks() const { return physical_; }
  /// Host of virtual rank v under the block mapping.
  unsigned physical_of(unsigned vrank) const { return vrank / block_; }

  const RankLayout& layout() const { return layout_; }

  /// Rank-local shard (2^(n-p) amplitudes).
  sv::StateVector& local(unsigned rank) { return ranks_[rank]; }
  const sv::StateVector& local(unsigned rank) const { return ranks_[rank]; }

  /// Gathers all shards into one full state vector (test/verification
  /// path; a real deployment would keep the state sharded). Parallelized
  /// over parallel::for_range.
  sv::StateVector to_state_vector() const;

  /// Moves every amplitude to the shard/offset `target` assigns it and
  /// adopts `target` as the current layout. A no-op when the layout is
  /// unchanged; otherwise counts one exchange and charges cross-host
  /// traffic to `stats` under `net`. Blocks until the exchange completed
  /// on `backend`.
  void redistribute(const RankLayout& target, const NetworkModel& net,
                    CommStats& stats, CommBackend& backend = serial_backend());

  /// Asynchronous redistribute: starts the exchange on `backend` and
  /// returns its handle, or nullptr when the layout is unchanged (nothing
  /// to move, nothing charged). The state adopts `target` immediately, but
  /// shard r must not be touched until handle->wait_shard(r) returned, and
  /// no other redistribute may start before handle->wait_all(). The
  /// previous shard buffer is retained as the exchange source (double
  /// buffering — steady state allocates nothing).
  std::unique_ptr<ExchangeHandle> redistribute_async(const RankLayout& target,
                                                     const NetworkModel& net,
                                                     CommStats& stats,
                                                     CommBackend& backend);

 private:
  RankLayout layout_;
  unsigned physical_ = 0;
  unsigned block_ = 1;  // virtual ranks per host: ceil(2^p / physical_)
  std::vector<sv::StateVector> ranks_;
  std::vector<sv::StateVector> spare_;  // previous-exchange source buffer
};

}  // namespace hisim::dist
