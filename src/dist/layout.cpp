#include "dist/layout.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace hisim::dist {

RankLayout::RankLayout(unsigned num_qubits, unsigned process_qubits,
                       std::vector<Qubit> slot_of)
    : n_(num_qubits), p_(process_qubits), slot_of_(std::move(slot_of)) {
  HISIM_CHECK_MSG(p_ <= n_, "more process qubits than qubits");
  HISIM_CHECK_MSG(slot_of_.size() == n_,
                  "layout permutation has " << slot_of_.size()
                                            << " entries, expected " << n_);
  qubit_at_.assign(n_, 0);
  std::vector<bool> used(n_, false);
  for (Qubit q = 0; q < n_; ++q) {
    const Qubit s = slot_of_[q];
    HISIM_CHECK_MSG(s < n_, "slot " << s << " out of range for qubit " << q);
    HISIM_CHECK_MSG(!used[s], "slot " << s << " assigned twice");
    used[s] = true;
    qubit_at_[s] = q;
  }
}

RankLayout RankLayout::identity(unsigned num_qubits, unsigned process_qubits) {
  std::vector<Qubit> slots(num_qubits);
  for (Qubit q = 0; q < num_qubits; ++q) slots[q] = q;
  return RankLayout(num_qubits, process_qubits, std::move(slots));
}

RankLayout RankLayout::for_part(unsigned num_qubits, unsigned process_qubits,
                                const std::vector<Qubit>& part,
                                const RankLayout& prev) {
  HISIM_CHECK(prev.num_qubits() == num_qubits &&
              prev.process_qubits() == process_qubits);
  const unsigned l = num_qubits - process_qubits;
  HISIM_CHECK_MSG(part.size() <= l,
                  "part has " << part.size() << " qubits but only " << l
                              << " local slots");
  std::vector<bool> in_part(num_qubits, false);
  for (Qubit q : part) {
    HISIM_CHECK_MSG(q < num_qubits, "part qubit " << q << " out of range");
    HISIM_CHECK_MSG(!in_part[q], "duplicate part qubit " << q);
    in_part[q] = true;
  }

  std::vector<Qubit> slot_of = prev.slot_of_;
  std::vector<Qubit> qubit_at = prev.qubit_at_;
  // Each part qubit stranded on a process slot swaps with the
  // highest-slot local qubit outside the part, so stable qubits (and in
  // particular already-local part qubits) never move.
  for (Qubit q : part) {
    if (slot_of[q] < l) continue;
    unsigned victim = l;
    while (victim > 0 && in_part[qubit_at[victim - 1]]) --victim;
    HISIM_CHECK_MSG(victim > 0, "no local slot available for qubit " << q);
    --victim;
    const unsigned from = slot_of[q];
    const Qubit out = qubit_at[victim];
    std::swap(slot_of[q], slot_of[out]);
    qubit_at[victim] = q;
    qubit_at[from] = out;
  }
  return RankLayout(num_qubits, process_qubits, std::move(slot_of));
}

Index RankLayout::global_index(unsigned rank, Index local) const {
  const Index c = (Index{rank} << local_qubits()) | local;
  Index g = 0;
  for (Qubit q = 0; q < n_; ++q)
    if (bits::test(c, slot_of_[q])) g |= Index{1} << q;
  return g;
}

std::pair<unsigned, Index> RankLayout::locate(Index global) const {
  Index c = 0;
  for (Qubit q = 0; q < n_; ++q)
    if (bits::test(global, q)) c |= Index{1} << slot_of_[q];
  return {static_cast<unsigned>(c >> local_qubits()),
          c & (local_dim() - 1)};
}

}  // namespace hisim::dist
