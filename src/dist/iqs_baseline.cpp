#include "dist/iqs_baseline.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "sv/kernels.hpp"

namespace hisim::dist {
namespace {

/// Gate-operand positions whose amplitude-index bit the gate can change:
/// control bits never flip, diagonal gates flip nothing, everything else
/// is conservatively treated as mixing.
std::vector<bool> mixing_positions(const Gate& g) {
  std::vector<bool> mixing(g.arity(), false);
  if (g.is_diagonal()) return mixing;
  for (unsigned j = g.num_controls(); j < g.arity(); ++j) mixing[j] = true;
  return mixing;
}

/// Restricts the 2^k unitary `m` to the subspace where operand position j
/// is fixed to `fixed[j]` (entries < 0 stay free), producing the operator
/// on the free positions in order. Valid because control/diagonal
/// positions make `m` block-diagonal across the fixed bits.
Matrix restrict_matrix(const Matrix& m, const std::vector<int>& fixed) {
  unsigned free_count = 0;
  for (int f : fixed)
    if (f < 0) ++free_count;
  const Index fdim = Index{1} << free_count;
  auto expand = [&fixed](Index x) {
    Index full = 0;
    unsigned bit = 0;
    for (unsigned j = 0; j < fixed.size(); ++j) {
      const bool v = fixed[j] < 0 ? bits::test(x, bit++) : fixed[j] != 0;
      if (v) full |= Index{1} << j;
    }
    return full;
  };
  Matrix out(fdim, fdim);
  for (Index r = 0; r < fdim; ++r)
    for (Index c = 0; c < fdim; ++c)
      out(r, c) = m(expand(r), expand(c));
  return out;
}

bool is_identity(const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (m(r, c) != (r == c ? cplx{1.0} : cplx{})) return false;
  return true;
}

}  // namespace

IqsRunReport IqsBaselineSimulator::run(const Circuit& c, DistState& state,
                                       const NetworkModel& net,
                                       CommBackend* backend_ptr,
                                       const sv::KernelOps* kernels) const {
  const sv::KernelOps& kops =
      kernels != nullptr ? *kernels : sv::kernel_ops();
  const unsigned n = c.num_qubits();
  HISIM_CHECK(state.num_qubits() == n);
  const unsigned l = state.layout().local_qubits();
  HISIM_CHECK_MSG(
      state.layout() == RankLayout::identity(n, state.layout().process_qubits()),
      "IQS baseline requires the identity layout");
  const unsigned v = state.num_ranks();
  const Index ldim = state.layout().local_dim();
  CommBackend& backend = backend_ptr ? *backend_ptr : serial_backend();

  IqsRunReport rep;
  rep.ranks = v;
  Stopwatch compute;

  std::int64_t gate_index = 0;
  for (const Gate& g : c.gates()) {
    trace::TraceSpan gate_span("gate", "iqs");
    gate_span.arg("index", gate_index++);
    const bool any_global =
        std::any_of(g.qubits.begin(), g.qubits.end(),
                    [l](Qubit q) { return q >= l; });
    if (!any_global) {
      // Under the identity layout local qubit == local slot: apply as-is.
      // Shards are independent — one backend group per rank.
      compute.start();
      backend.run_groups(v, [&](std::size_t r) {
        sv::apply_gate(state.local(static_cast<unsigned>(r)), g, kops);
      });
      compute.stop();
      continue;
    }

    const std::vector<bool> mixing = mixing_positions(g);
    std::vector<unsigned> global_mixing;  // positions, ascending qubit order
    for (unsigned j = 0; j < g.arity(); ++j)
      if (mixing[j] && g.qubits[j] >= l) global_mixing.push_back(j);

    const Matrix m = g.matrix();

    if (global_mixing.empty()) {
      // Diagonal action / controls on process qubits: every rank knows its
      // own process-qubit values, so the gate restricts to a rank-local
      // operator (possibly the identity, or a pure scalar phase).
      compute.start();
      backend.run_groups(v, [&](std::size_t rr) {
        const unsigned r = static_cast<unsigned>(rr);
        std::vector<int> fixed(g.arity(), -1);
        std::vector<Qubit> local_ops;
        for (unsigned j = 0; j < g.arity(); ++j) {
          if (g.qubits[j] >= l)
            fixed[j] = bits::test(r, g.qubits[j] - l) ? 1 : 0;
          else
            local_ops.push_back(g.qubits[j]);
        }
        const Matrix sub = restrict_matrix(m, fixed);
        if (is_identity(sub)) return;
        if (local_ops.empty()) {
          const cplx phase = sub(0, 0);
          for (Index i = 0; i < ldim; ++i) state.local(r)[i] *= phase;
        } else {
          // kraus(): restrictions of trajectory-sampled Kraus operators
          // are not unitary; for unitary gates this is the same matrix
          // the unitary() path would have carried.
          sv::apply_gate(state.local(r), Gate::kraus(local_ops, sub),
                         kops);
        }
      });
      compute.stop();
      continue;
    }

    // Exchange path: ranks differing only in the global mixing bits form
    // groups of 2^|G|; each group member sends the partners' slices out,
    // the gate runs on the combined vector, and the slices return. Groups
    // partition the rank set, so they execute through the backend as
    // independent tasks (the overlap-capable backend fans them out).
    Index gmask = 0;  // rank-bit mask of the global mixing positions
    for (unsigned j : global_mixing) gmask |= Index{1} << (g.qubits[j] - l);
    const unsigned gcount = static_cast<unsigned>(global_mixing.size());
    const Index groups = Index{1} << gcount;

    std::vector<unsigned> leaders;  // bases with the mixing bits clear
    for (Index base = 0; base < v; ++base)
      if ((base & gmask) == 0) leaders.push_back(static_cast<unsigned>(base));

    // Per-leader member list, filled only by groups that exchanged (the
    // indexed layout keeps the accounting deterministic under any backend
    // execution order).
    std::vector<std::vector<unsigned>> exchanged(leaders.size());

    compute.start();
    backend.run_groups(leaders.size(), [&](std::size_t li) {
      const unsigned base = leaders[li];
      std::vector<unsigned> members(groups);
      for (Index gb = 0; gb < groups; ++gb)
        members[gb] = static_cast<unsigned>(base | bits::deposit(gb, gmask));

      // Restrict away global non-mixing positions (fixed per group) and
      // map the rest onto combined slots: local qubits keep their slot,
      // global mixing qubit #j lands on slot l + j.
      std::vector<int> fixed(g.arity(), -1);
      std::vector<Qubit> ops;
      for (unsigned j = 0; j < g.arity(); ++j) {
        const Qubit q = g.qubits[j];
        if (q < l) {
          ops.push_back(q);
        } else if (mixing[j]) {
          // Combined slot l + j holds the j-th lowest rank bit of gmask
          // (deposit() fills ascending), i.e. ascending qubit order.
          const Index below = gmask & ((Index{1} << (q - l)) - 1);
          ops.push_back(static_cast<Qubit>(l + bits::popcount(below)));
        } else {
          fixed[j] = bits::test(base, q - l) ? 1 : 0;
        }
      }
      // Groups whose restricted gate is the identity (e.g. an unsatisfied
      // process-qubit control) neither compute nor exchange anything.
      const Matrix sub = restrict_matrix(m, fixed);
      if (is_identity(sub)) return;

      sv::StateVector combined(l + gcount);
      for (Index gb = 0; gb < groups; ++gb) {
        const sv::StateVector& shard = state.local(members[gb]);
        for (Index i = 0; i < ldim; ++i) combined[(gb << l) | i] = shard[i];
      }
      sv::apply_gate(combined, Gate::kraus(ops, sub), kops);
      for (Index gb = 0; gb < groups; ++gb) {
        sv::StateVector& shard = state.local(members[gb]);
        for (Index i = 0; i < ldim; ++i) shard[i] = combined[(gb << l) | i];
      }
      exchanged[li] = std::move(members);
    });
    compute.stop();

    // Accounting: per ordered pair within each group that actually
    // exchanged, the sender's 1/2^|G| slice travels out and back
    // (2 messages) unless the pair is co-located.
    const Index slice_bytes = (ldim >> gcount) * kAmpBytes * 2;
    std::vector<Index> sent(state.physical_ranks(), 0),
        recv(state.physical_ranks(), 0);
    std::vector<std::size_t> msgs(state.physical_ranks(), 0);
    bool any_exchanged = false;
    for (const std::vector<unsigned>& members : exchanged) {
      if (members.empty()) continue;
      any_exchanged = true;
      for (unsigned u : members) {
        for (unsigned w : members) {
          if (u == w) continue;
          const unsigned hu = state.physical_of(u), hw = state.physical_of(w);
          if (hu == hw) continue;
          sent[hu] += slice_bytes;
          recv[hw] += slice_bytes;
          msgs[hu] += 2;
        }
      }
    }
    if (any_exchanged) charge_exchange(rep.comm, net, sent, recv, msgs);
  }

  rep.compute_seconds = compute.seconds();
  return rep;
}

}  // namespace hisim::dist
