#pragma once

#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "dist/backend.hpp"
#include "dist/dist_state.hpp"
#include "partition/partition.hpp"
#include "sv/kernel_dispatch.hpp"

namespace hisim::dist {

/// Pipelined-total estimate (paper Sec. V-C) over per-part (modeled comm,
/// measured compute) pairs: while a rank computes part i it can already
/// receive the exchange for part i+1, so
///   T = comm_1 + sum_i max(compute_i, comm_{i+1})   (comm_{k+1} = 0).
/// Returns `fallback` when no per-part times were recorded. The single
/// definition shared by DistRunReport and hisim::Result.
double pipelined_total_seconds(
    std::span<const std::pair<double, double>> part_times, double fallback);

/// Consolidated accounting of one distributed run: measured compute and
/// exchange wall-clock time, modeled network time, and the per-part
/// (comm, compute) pairs the modeled overlap estimate is built from.
struct DistRunReport {
  std::size_t parts = 0;        // first-level (node-memory-sized) parts
  std::size_t inner_parts = 0;  // second-level (cache-sized) parts, if any
  unsigned ranks = 0;           // simulated virtual ranks (2^p)
  double partition_seconds = 0.0;
  /// Measured wall-clock span of the shard-local apply phase, summed over
  /// parts (first rank starting to compute → last rank finished; the
  /// per-rank loop may fan out over the worker pool). Directly comparable
  /// to IqsRunReport::compute_seconds, which brackets the same kind of
  /// region.
  double compute_seconds = 0.0;
  CommStats comm;                // modeled network cost, all exchanges
  /// One (modeled comm seconds, measured compute seconds) pair per part,
  /// in execution order. Parts whose qubits were already local have a
  /// zero comm entry.
  std::vector<std::pair<double, double>> part_times;

  /// Measured wall-clock seconds exchange data movement was in flight,
  /// summed over exchanges (as reported by the CommBackend handles).
  double measured_comm_seconds = 0.0;
  /// Measured wall-clock seconds of the whole exchange+apply pipeline,
  /// summed over parts. With an async backend this is less than
  /// measured_comm_seconds + compute_seconds whenever compute on arrived
  /// shards proceeded while the rest of the exchange was in flight.
  double measured_wall_seconds = 0.0;
  /// Measured wall-clock seconds during which exchange data movement and
  /// shard-local compute were *simultaneously* in progress (intersection
  /// of the comm and compute windows, summed over parts). Zero for a
  /// synchronous backend, and never exceeds either measured_comm_seconds
  /// or compute_seconds — hence never their sum.
  double measured_overlap_seconds = 0.0;

  /// Flat per-phase metrics (trace::MetricsRegistry::flat() of the run's
  /// registry): per-step distributions of the scalar fields above plus
  /// exchange counters ("exchange.count", "exchange.bytes",
  /// "exchange.messages"). The scalar fields themselves are *queried from*
  /// the same registry — one accounting source — and keep their exact
  /// to_json names and semantics.
  std::map<std::string, double> metrics;

  /// Conservative serial estimate: every rank waits for the slowest
  /// exchange before computing.
  double total_seconds() const {
    return compute_seconds + comm.modeled_max_seconds;
  }

  /// Pipelined estimate (paper Sec. V-C): while a rank computes part i it
  /// can already receive the exchange for part i+1, so consecutive
  /// (compute, next-comm) phases overlap:
  ///   T = comm_1 + sum_i max(compute_i, comm_{i+1})   (comm_{k+1} = 0).
  /// Falls back to total_seconds() when no per-part times were recorded.
  /// Bounded below by both total comm and total compute, and above by
  /// total_seconds().
  double total_seconds_overlapped() const;

  /// Fraction of the serial total spent communicating, in [0, 1].
  double comm_ratio() const;
};

/// Configuration of a distributed run (formerly nested as
/// DistributedHiSvSim::Options, which remains an alias).
struct DistOptions {
  /// p: the run uses 2^p virtual ranks; each shard holds 2^(n-p)
  /// amplitudes. Must match the DistState passed to run().
  unsigned process_qubits = 0;
  /// First-level partitioning configuration. A limit of 0 (or one
  /// larger than n - p) is clamped to the local qubit count.
  partition::PartitionOptions part;
  /// Nonzero enables a second, cache-sized partitioning level inside
  /// every part (paper Sec. IV multi-level).
  unsigned level2_limit = 0;
  NetworkModel net;
  /// Exchange backend (not owned). nullptr = serial_backend().
  CommBackend* backend = nullptr;
};

/// Compiled form of one distributed run: everything that does not depend
/// on amplitude values — the (possibly lowered) circuit, the partitioning,
/// the per-part target layouts (the exchange schedule), the part gates
/// remapped onto local slots, and the optional cache-sized second-level
/// partitioning — computed once and reusable across any number of
/// executions. Immutable after compile_plan(); safe to share between
/// threads executing concurrently on separate DistStates.
struct DistPlan {
  unsigned num_qubits = 0;
  unsigned process_qubits = 0;   // p: 2^p virtual ranks
  unsigned level2_limit = 0;     // nonzero = steps carry inner partitions
  Circuit circuit;               // lowered when wide gates required it
  RankLayout initial_layout;     // layout the exchange schedule starts from
  std::size_t inner_parts = 0;   // total second-level parts across steps
  double partition_seconds = 0;  // partitioning share of compile_seconds
  double compile_seconds = 0;    // full wall-clock cost of compile_plan()

  /// One entry per first-level part, in execution order.
  struct Step {
    RankLayout layout;   // post-exchange layout (== previous when no move)
    /// The part's gates with qubits remapped to local slots under
    /// `layout` — ready for a direct shard-local apply. May still carry
    /// symbolic parameters; execute_plan materializes them per binding.
    Circuit local;
    /// Second-level partitioning of `local` (empty when level2_limit == 0).
    /// Gate indices stay valid across binding: materialization preserves
    /// gate count and order.
    partition::Partitioning inner;
    /// Precomputed: any gate of `local` carries a symbolic parameter, so
    /// executing this step requires per-binding materialization.
    bool parametric = false;
    /// Reserved noise slots of `local`: (gate index, slot id) pairs, found
    /// once at compile. Sampled trajectory operators are single-qubit and
    /// substitute onto the slot gate's already-local position, so noisy
    /// execution reuses the exchange schedule untouched.
    std::vector<std::pair<std::size_t, unsigned>> noise_slots;
  };
  std::vector<Step> steps;

  std::size_t num_parts() const { return steps.size(); }
};

/// Deep validator (see common/check.hpp): aborts unless `plan` upholds the
/// full exchange-schedule contract — every layout a consistent n/p-shaped
/// permutation whose slot_of/qubit_at maps invert each other, every
/// amplitude conserved across each consecutive layout pair (each (rank,
/// offset) destination hit exactly once — no shard byte lost or
/// duplicated), every step gate acting only on local slots, the steps'
/// slot-remapped gates unmapping (via each step's layout) to exactly the
/// plan circuit's gate multiset, reserved noise slots consistent between
/// circuit and steps, and inner partitionings valid for their step
/// sub-circuits. Checked builds run this from ExecutionPlan::validate();
/// tests corrupt a copied plan's schedule and assert the abort.
void validate_plan(const DistPlan& plan);

/// Builds the execution plan for `c` under `opt` (opt.net / opt.backend are
/// execution-time concerns and ignored here). `initial` is the layout the
/// target state will carry when execution starts; nullptr = identity.
/// Throws if an arity-2 gate exceeds the local qubit count.
DistPlan compile_plan(const Circuit& c, const DistOptions& opt,
                      const RankLayout* initial = nullptr);

/// Runs a compiled plan on `state` (whose layout must equal
/// plan.initial_layout). Repeatable: only amplitudes move; no partitioning
/// or layout planning happens here. The report's parts/partition_seconds
/// are copied from the plan so existing consumers see unchanged totals.
///
/// `param_values` is the binding context for a parameterized plan (values
/// indexed by the source circuit's param ids, as produced by
/// resolve_binding): each parametric step's local sub-circuit is
/// materialized against it just before the shard-local apply — the
/// exchange schedule, layouts, and inner partitions are reused as-is.
/// Executing a parametric step with no covering value throws hisim::Error
/// naming the parameter.
///
/// `noise_ops` is one trajectory's sampled operator per noise slot
/// (indexed by slot id, each on canonical qubit 0; see
/// noise/trajectory.hpp). Steps with reserved slots substitute their
/// operators during the same per-step materialization — like bindings,
/// this overlaps the exchange, and since every sampled operator is
/// single-qubit on a slot the plan already made local, the exchange
/// schedule is byte-identical to the ideal run. Empty = ideal execution
/// (slots apply as identities).
///
/// `kernels` selects the apply-kernel tier for every shard-local gate
/// (nullptr = the Auto-resolved default; see sv/kernel_dispatch.hpp).
DistRunReport execute_plan(const DistPlan& plan, DistState& state,
                           const NetworkModel& net,
                           CommBackend* backend = nullptr,
                           std::span<const double> param_values = {},
                           std::span<const Gate> noise_ops = {},
                           const sv::KernelOps* kernels = nullptr);

/// The paper's distributed hierarchical simulator (Sec. V), executed on
/// simulated ranks: partition the circuit so every part fits in one
/// rank's shard, then per part (1) redistribute amplitudes so the part's
/// qubits are local on every rank — at most one collective exchange per
/// part — and (2) apply the part's gates shard-locally with qubits
/// remapped through the layout. This contrasts with the IQS-style
/// baseline, which keeps a fixed layout and pays one pairwise exchange
/// per gate that mixes a process qubit.
///
/// The rank/local split follows the Fig. 3 convention documented on
/// RankLayout: after redistribute(), every part qubit occupies a slot
/// below l = n - p, so each gate becomes block-diagonal over ranks and
/// each simulated rank applies it to its own shard independently —
/// exactly the computation a real MPI rank would perform between
/// exchanges.
///
/// The exchange runs through a pluggable CommBackend: with an async
/// backend (ThreadedBackend) each rank starts applying gates as soon as
/// its shard has arrived, while later shards are still moving — the
/// comm/compute overlap of Sec. V-C, measured rather than modeled.
class DistributedHiSvSim {
 public:
  using Options = DistOptions;

  /// Runs `c` on `state` (which may carry any layout; it is redistributed
  /// as needed). Throws if a gate's arity exceeds the local qubit count —
  /// no valid single-exchange-per-part schedule exists then. Equivalent to
  /// compile_plan() followed by execute_plan(); callers that execute a
  /// circuit more than once should hold the plan instead.
  DistRunReport run(const Circuit& c, const Options& opt,
                    DistState& state) const;
};

}  // namespace hisim::dist
