#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sv/state_vector.hpp"

namespace hisim::dist {

/// One all-to-all shard exchange, fully described: move every amplitude of
/// the `src` shards into the `dst` shards under a bit permutation of the
/// combined (rank << l | offset) index. `inv` is the *pull* map: bit s of
/// the new combined index is bit inv[s] of the old one, so destination
/// shards can be filled independently of each other — the property every
/// backend exploits for per-shard completion signalling.
///
/// Lifetime contract: `src` and `dst` (and the shards they point to) must
/// stay valid until the returned ExchangeHandle has completed; `dst` is
/// pre-sized by the caller and fully overwritten. DistState guarantees
/// this by owning both buffers (double buffering across exchanges).
struct ExchangePlan {
  unsigned local_qubits = 0;  // l: shard offset bits of the combined index
  unsigned num_ranks = 0;     // v: virtual ranks == shard count
  /// Pull permutation over all n combined bits (inv.size() == n).
  std::vector<unsigned> inv;
  const std::vector<sv::StateVector>* src = nullptr;
  std::vector<sv::StateVector>* dst = nullptr;
  unsigned physical = 1;         // physical hosts
  unsigned vranks_per_host = 1;  // contiguous vrank→host block size
};

/// Handle to one in-flight exchange. Synchronous backends return an
/// already-completed handle; asynchronous ones signal per-shard arrival so
/// the executor can compute on shards that have landed while the rest are
/// still moving.
class ExchangeHandle {
 public:
  virtual ~ExchangeHandle() = default;
  /// Blocks until destination shard `rank` has fully arrived.
  virtual void wait_shard(unsigned rank) = 0;
  /// Barrier: blocks until the whole exchange has completed.
  virtual void wait_all() = 0;
  /// Measured wall-clock seconds the data movement was in flight. Valid
  /// after wait_all().
  virtual double seconds() const = 0;
  /// Seconds from start_exchange() returning until the movement finished:
  /// 0 for a synchronous backend (the movement predates the return), ==
  /// seconds() for an async one. Lets the caller place the comm window on
  /// its own clock and measure true comm/compute overlap. Valid after
  /// wait_all().
  virtual double finished_after() const = 0;
};

/// The exchange primitive of the distributed layer, factored out of
/// DistState so the movement strategy is pluggable (paper Sec. V: the
/// executor is agnostic to *how* the collective is performed). A real MPI
/// backend implements this same interface with MPI_Ialltoallv.
class CommBackend {
 public:
  virtual ~CommBackend() = default;
  virtual const char* name() const = 0;

  /// Begins the all-to-all exchange. May return before any data has moved;
  /// progress is observed through the handle.
  virtual std::unique_ptr<ExchangeHandle> start_exchange(
      const ExchangePlan& plan) = 0;

  /// Barrier-style helper for per-gate pairwise exchanges (IQS baseline)
  /// and other embarrassingly parallel shard-group work: runs `count`
  /// independent tasks — task(i) must touch only its own shard group — and
  /// returns when all have finished.
  virtual void run_groups(std::size_t count,
                          const std::function<void(std::size_t)>& task) = 0;
};

/// Reference backend: the exchange completes synchronously inside
/// start_exchange (the permutation itself is parallelized over
/// parallel::for_range, which preserves bit-identical output), and group
/// tasks run as a plain loop on the calling thread.
class SerialBackend final : public CommBackend {
 public:
  const char* name() const override { return "serial"; }
  std::unique_ptr<ExchangeHandle> start_exchange(
      const ExchangePlan& plan) override;
  void run_groups(std::size_t count,
                  const std::function<void(std::size_t)>& task) override;
};

/// Overlap-capable backend: per-host worker threads (capped at the
/// parallel worker count) fill their hosts' destination shards out of the
/// source buffer and signal each shard as it completes, so the executor
/// computes on arrived shards while the rest are in flight. Workers run
/// under parallel::inline_scope — they never touch the shared fork-join
/// pool, which stays available to the concurrently running compute.
class ThreadedBackend final : public CommBackend {
 public:
  /// max_workers = 0 — one worker per physical host, capped at
  /// parallel::num_threads().
  explicit ThreadedBackend(unsigned max_workers = 0)
      : max_workers_(max_workers) {}

  const char* name() const override { return "threaded"; }
  std::unique_ptr<ExchangeHandle> start_exchange(
      const ExchangePlan& plan) override;
  void run_groups(std::size_t count,
                  const std::function<void(std::size_t)>& task) override;

 private:
  unsigned max_workers_ = 0;
};

/// Backend selection surfaced through CLI/bench flags and RunOptions.
enum class BackendKind { Serial, Threaded };

/// Process-wide shared instances (both backends are stateless).
CommBackend& serial_backend();
CommBackend& threaded_backend();
CommBackend& backend_for(BackendKind kind);

/// "serial" / "threaded"; throws hisim::Error on anything else.
BackendKind parse_backend(const std::string& name);
const char* backend_kind_name(BackendKind kind);

}  // namespace hisim::dist
