#include "dist/backend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace hisim::dist {
namespace {

/// Fills destination shard r2 by pulling through the inverse permutation.
/// `use_pool` parallelizes the offset loop over parallel::for_range (only
/// meaningful on the caller's thread; backend workers hold an inline_scope
/// so the flag is moot there).
void fill_shard(const ExchangePlan& plan, unsigned r2, bool use_pool) {
  const unsigned l = plan.local_qubits;
  const unsigned n = static_cast<unsigned>(plan.inv.size());
  const Index ldim = Index{1} << l;
  // Contribution of the destination rank bits to the source index is
  // constant across the shard; only the offset bits vary below.
  Index base = 0;
  for (unsigned s = l; s < n; ++s)
    if ((r2 >> (s - l)) & 1u) base |= Index{1} << plan.inv[s];

  const std::vector<sv::StateVector>& src = *plan.src;
  sv::StateVector& out = (*plan.dst)[r2];
  auto move_range = [&](Index lo, Index hi) {
    for (Index j = lo; j < hi; ++j) {
      Index c = base;
      for (unsigned s = 0; s < l; ++s)
        if ((j >> s) & 1u) c |= Index{1} << plan.inv[s];
      out[j] = src[static_cast<unsigned>(c >> l)][c & (ldim - 1)];
    }
  };
  if (use_pool)
    parallel::for_range(0, ldim, move_range);
  else
    move_range(0, ldim);
}

/// Handle for exchanges that completed before start_exchange returned.
class ReadyHandle final : public ExchangeHandle {
 public:
  explicit ReadyHandle(double seconds) : seconds_(seconds) {}
  void wait_shard(unsigned) override {}
  void wait_all() override {}
  double seconds() const override { return seconds_; }
  double finished_after() const override { return 0.0; }

 private:
  double seconds_ = 0.0;
};

/// Handle owning the per-host movement threads. Shard arrival is flagged
/// under one mutex/condvar pair (annotated: done_ and in_flight_ are
/// HISIM_GUARDED_BY(mu_), so the wait/signal protocol is proven at
/// compile time on Clang builds); completion of the whole exchange is a
/// parallel::latch counted down once per worker, so wait_all() does not
/// need to join threads (the task_group joins on destruction). The
/// in-flight window is measured from spawn to the last worker's finish
/// (not to wait_all, which may be called long after the movement ended
/// while the caller was computing).
class ThreadedHandle final : public ExchangeHandle {
 public:
  ThreadedHandle(ExchangePlan plan, unsigned workers)
      : plan_(std::move(plan)), done_(plan_.num_ranks, 0), finished_(workers) {
    // Balanced host split: every worker gets floor/ceil(hosts/workers)
    // hosts (workers <= hosts by construction), so none sit idle.
    const unsigned hosts = plan_.physical;
    for (unsigned w = 0; w < workers; ++w) {
      const unsigned h_begin = hosts * w / workers;
      const unsigned h_end = hosts * (w + 1) / workers;
      group_.spawn([this, h_begin, h_end] { move_hosts(h_begin, h_end); });
    }
  }

  ~ThreadedHandle() override { group_.join(); }

  void wait_shard(unsigned rank) override {
    trace::TraceSpan span("exchange.wait", "exchange");
    span.arg("rank", rank);
    MutexLock lk(mu_);
    while (done_[rank] == 0) cv_.wait(lk);
  }

  void wait_all() override {
    finished_.wait();
    MutexLock lk(mu_);
    seconds_ = in_flight_;
  }

  double seconds() const override { return seconds_; }
  double finished_after() const override { return seconds_; }

 private:
  void move_hosts(unsigned h_begin, unsigned h_end) {
    const unsigned v = plan_.num_ranks;
    for (unsigned h = h_begin; h < h_end; ++h) {
      const unsigned r_begin = h * plan_.vranks_per_host;
      const unsigned r_end = std::min(v, r_begin + plan_.vranks_per_host);
      for (unsigned r2 = r_begin; r2 < r_end; ++r2) {
        trace::TraceSpan span("exchange.shard", "exchange");
        span.arg("rank", r2);
        fill_shard(plan_, r2, /*use_pool=*/false);
        {
          MutexLock lk(mu_);
          done_[r2] = 1;
        }
        cv_.notify_all();
      }
    }
    {
      MutexLock lk(mu_);
      in_flight_ = std::max(in_flight_, timer_.seconds());
    }
    finished_.count_down();
  }

  ExchangePlan plan_;  // immutable after construction; read lock-free
  Timer timer_;  // starts when the handle (and its workers) is created
  parallel::task_group group_;
  Mutex mu_;
  CondVar cv_;
  std::vector<std::uint8_t> done_ HISIM_GUARDED_BY(mu_);
  parallel::latch finished_;  // one count per worker
  // Spawn → last worker finished, folded in by each finishing worker.
  double in_flight_ HISIM_GUARDED_BY(mu_) = 0.0;
  // Snapshotted from in_flight_ by wait_all(); per the ExchangeHandle
  // contract seconds() is only called after wait_all(), single-threaded.
  double seconds_ = 0.0;
};

}  // namespace

std::unique_ptr<ExchangeHandle> SerialBackend::start_exchange(
    const ExchangePlan& plan) {
  Timer timer;
  for (unsigned r2 = 0; r2 < plan.num_ranks; ++r2)
    fill_shard(plan, r2, /*use_pool=*/true);
  return std::make_unique<ReadyHandle>(timer.seconds());
}

void SerialBackend::run_groups(std::size_t count,
                               const std::function<void(std::size_t)>& task) {
  for (std::size_t i = 0; i < count; ++i) task(i);
}

std::unique_ptr<ExchangeHandle> ThreadedBackend::start_exchange(
    const ExchangePlan& plan) {
  const unsigned cap = max_workers_ ? max_workers_ : parallel::num_threads();
  const unsigned workers = std::max(1u, std::min(plan.physical, cap));
  return std::make_unique<ThreadedHandle>(plan, workers);
}

void ThreadedBackend::run_groups(
    std::size_t count, const std::function<void(std::size_t)>& task) {
  parallel::for_range(
      0, static_cast<Index>(count),
      [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) task(static_cast<std::size_t>(i));
      },
      /*grain=*/1);
}

CommBackend& serial_backend() {
  static SerialBackend backend;
  return backend;
}

CommBackend& threaded_backend() {
  static ThreadedBackend backend;
  return backend;
}

CommBackend& backend_for(BackendKind kind) {
  return kind == BackendKind::Threaded ? threaded_backend() : serial_backend();
}

BackendKind parse_backend(const std::string& name) {
  if (name == "serial") return BackendKind::Serial;
  if (name == "threaded") return BackendKind::Threaded;
  throw Error("unknown comm backend '" + name + "' (serial|threaded)");
}

const char* backend_kind_name(BackendKind kind) {
  return kind == BackendKind::Threaded ? "threaded" : "serial";
}

}  // namespace hisim::dist
