#include "dag/circuit_dag.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace hisim::dag {

CircuitDag::CircuitDag(const Circuit& c) : circuit_(&c) {
  const unsigned nq = c.num_qubits();
  const std::size_t ng = c.num_gates();
  nodes_ = 2ull * nq + ng;

  // Build edge lists by tracing each qubit through the gate sequence.
  std::vector<std::pair<NodeId, Edge>> fwd;  // (from, edge)
  fwd.reserve(ng * 2 + nq);
  std::vector<NodeId> last(nq);
  for (Qubit q = 0; q < nq; ++q) last[q] = entry_node(q);
  for (std::size_t i = 0; i < ng; ++i) {
    const NodeId v = gate_node(i);
    for (Qubit q : c.gate(i).qubits) {
      fwd.emplace_back(last[q], Edge{v, q});
      last[q] = v;
    }
  }
  for (Qubit q = 0; q < nq; ++q)
    fwd.emplace_back(last[q], Edge{exit_node(q), q});

  // CSR for successors.
  succ_off_.assign(nodes_ + 1, 0);
  for (const auto& [from, e] : fwd) ++succ_off_[from + 1];
  for (std::size_t i = 1; i <= nodes_; ++i) succ_off_[i] += succ_off_[i - 1];
  succ_.resize(fwd.size());
  {
    std::vector<std::size_t> cursor(succ_off_.begin(), succ_off_.end() - 1);
    for (const auto& [from, e] : fwd) succ_[cursor[from]++] = e;
  }
  // CSR for predecessors (edge.to holds the *source* in pred lists).
  pred_off_.assign(nodes_ + 1, 0);
  for (const auto& [from, e] : fwd) ++pred_off_[e.to + 1];
  for (std::size_t i = 1; i <= nodes_; ++i) pred_off_[i] += pred_off_[i - 1];
  pred_.resize(fwd.size());
  {
    std::vector<std::size_t> cursor(pred_off_.begin(), pred_off_.end() - 1);
    for (const auto& [from, e] : fwd)
      pred_[cursor[e.to]++] = Edge{from, e.qubit};
  }
}

NodeKind CircuitDag::kind(NodeId v) const {
  const unsigned nq = num_qubits();
  if (v < nq) return NodeKind::Entry;
  if (v < nq + num_gates()) return NodeKind::Gate;
  HISIM_CHECK(v < nodes_);
  return NodeKind::Exit;
}

std::size_t CircuitDag::gate_index(NodeId v) const {
  HISIM_CHECK(is_gate(v));
  return v - num_qubits();
}

Qubit CircuitDag::qubit_of(NodeId v) const {
  const unsigned nq = num_qubits();
  if (v < nq) return v;
  HISIM_CHECK(kind(v) == NodeKind::Exit);
  return static_cast<Qubit>(v - nq - num_gates());
}

std::vector<NodeId> CircuitDag::natural_order() const {
  std::vector<NodeId> order(num_gates());
  for (std::size_t i = 0; i < num_gates(); ++i) order[i] = gate_node(i);
  return order;
}

std::vector<NodeId> CircuitDag::random_dfs_order(Rng& rng) const {
  // Iterative DFS from entry nodes with shuffled adjacency; gate nodes in
  // reverse postorder form a topological order.
  std::vector<NodeId> post;
  post.reserve(num_gates());
  std::vector<std::uint8_t> state(nodes_, 0);  // 0 new, 1 open, 2 done
  std::vector<NodeId> roots(num_qubits());
  for (Qubit q = 0; q < num_qubits(); ++q) roots[q] = entry_node(q);
  for (std::size_t i = roots.size(); i > 1; --i)
    std::swap(roots[i - 1], roots[rng.below(i)]);

  struct Frame {
    NodeId v;
    std::vector<NodeId> kids;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  for (NodeId root : roots) {
    if (state[root]) continue;
    stack.push_back({root, {}, 0});
    state[root] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next == 0) {
        for (const Edge& e : succs(f.v)) f.kids.push_back(e.to);
        for (std::size_t i = f.kids.size(); i > 1; --i)
          std::swap(f.kids[i - 1], f.kids[rng.below(i)]);
      }
      bool descended = false;
      while (f.next < f.kids.size()) {
        const NodeId w = f.kids[f.next++];
        if (state[w] == 0) {
          state[w] = 1;
          stack.push_back({w, {}, 0});
          descended = true;
          break;
        }
      }
      if (!descended && (stack.back().next >= stack.back().kids.size())) {
        const NodeId v = stack.back().v;
        state[v] = 2;
        if (is_gate(v)) post.push_back(v);
        stack.pop_back();
      }
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

std::vector<NodeId> CircuitDag::random_kahn_order(Rng& rng) const {
  std::vector<unsigned> indeg(nodes_, 0);
  for (NodeId v = 0; v < nodes_; ++v)
    for (const Edge& e : succs(v)) ++indeg[e.to];
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < nodes_; ++v)
    if (indeg[v] == 0) ready.push_back(v);
  std::vector<NodeId> order;
  order.reserve(num_gates());
  while (!ready.empty()) {
    const std::size_t pick = rng.below(ready.size());
    const NodeId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    if (is_gate(v)) order.push_back(v);
    for (const Edge& e : succs(v))
      if (--indeg[e.to] == 0) ready.push_back(e.to);
  }
  HISIM_CHECK(order.size() == num_gates());
  return order;
}

bool CircuitDag::is_topological_gate_order(std::span<const NodeId> order) const {
  if (order.size() != num_gates()) return false;
  std::vector<std::size_t> pos(nodes_, SIZE_MAX);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId v = order[i];
    if (!is_gate(v) || pos[v] != SIZE_MAX) return false;
    pos[v] = i;
  }
  for (const NodeId v : order)
    for (const Edge& e : succs(v))
      if (is_gate(e.to) && pos[e.to] <= pos[v]) return false;
  return true;
}

std::string CircuitDag::to_dot(std::span<const int> part_of) const {
  static const char* kPalette[] = {"lightgreen", "cyan",  "orange", "pink",
                                   "gold",       "plum",  "khaki",  "salmon",
                                   "lightblue",  "wheat"};
  std::ostringstream os;
  os << "digraph circuit {\n  rankdir=LR;\n";
  for (NodeId v = 0; v < nodes_; ++v) {
    os << "  n" << v << " [label=\"";
    switch (kind(v)) {
      case NodeKind::Entry: os << "q" << qubit_of(v); break;
      case NodeKind::Exit: os << "exit q" << qubit_of(v); break;
      case NodeKind::Gate: os << gate_name(gate_of(v).kind); break;
    }
    os << "\"";
    if (is_gate(v) && !part_of.empty()) {
      const int p = part_of[gate_index(v)];
      os << ", style=filled, fillcolor=\"" << kPalette[p % 10] << "\"";
    }
    os << "];\n";
  }
  for (NodeId v = 0; v < nodes_; ++v)
    for (const Edge& e : succs(v))
      os << "  n" << v << " -> n" << e.to << " [label=\"q" << e.qubit
         << "\"];\n";
  os << "}\n";
  return os.str();
}

bool PartGraph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::vector<int> PartGraph::topological_order() const {
  std::vector<int> indeg(num_parts, 0);
  for (int p = 0; p < num_parts; ++p)
    for (int s : succs[p]) ++indeg[s];
  std::vector<int> ready, order;
  for (int p = 0; p < num_parts; ++p)
    if (indeg[p] == 0) ready.push_back(p);
  while (!ready.empty()) {
    const int p = ready.back();
    ready.pop_back();
    order.push_back(p);
    for (int s : succs[p])
      if (--indeg[s] == 0) ready.push_back(s);
  }
  HISIM_CHECK_MSG(static_cast<int>(order.size()) == num_parts,
                  "part graph has a cycle");
  return order;
}

std::vector<std::vector<bool>> PartGraph::reachability() const {
  std::vector<std::vector<bool>> reach(
      num_parts, std::vector<bool>(num_parts, false));
  const std::vector<int> order = topological_order();
  // Process in reverse topological order: reach[v] = union of succ reaches.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int v = *it;
    for (int s : succs[v]) {
      reach[v][s] = true;
      for (int t = 0; t < num_parts; ++t)
        if (reach[s][t]) reach[v][t] = true;
    }
  }
  return reach;
}

PartGraph build_part_graph(const CircuitDag& dag, std::span<const int> part_of,
                           int num_parts) {
  HISIM_CHECK(part_of.size() == dag.num_gates());
  PartGraph pg;
  pg.num_parts = num_parts;
  pg.succs.assign(num_parts, {});
  pg.preds.assign(num_parts, {});
  for (std::size_t i = 0; i < dag.num_gates(); ++i) {
    const int p = part_of[i];
    HISIM_CHECK_MSG(p >= 0 && p < num_parts, "gate " << i << " unassigned");
    const NodeId v = dag.gate_node(i);
    for (const Edge& e : dag.succs(v)) {
      if (!dag.is_gate(e.to)) continue;
      const int q = part_of[dag.gate_index(e.to)];
      if (p != q) pg.succs[p].push_back(q);
    }
  }
  for (int p = 0; p < num_parts; ++p) {
    auto& s = pg.succs[p];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    for (int q : s) pg.preds[q].push_back(p);
  }
  return pg;
}

}  // namespace hisim::dag
