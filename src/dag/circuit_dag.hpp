#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace hisim::dag {

using NodeId = std::uint32_t;

enum class NodeKind { Entry, Gate, Exit };

/// Labelled edge: `qubit` flows from `from` to `to`. Because a qubit feeds
/// exactly one gate at a time, the in-edges of any node carry distinct
/// qubit labels (the property the paper's working-set accounting uses).
struct Edge {
  NodeId to;
  Qubit qubit;
};

/// DAG representation of a circuit per Sec. IV-A of the paper: one node per
/// gate plus artificial entry/exit nodes per qubit; edges carry the qubit
/// dependency between consecutive gates on that qubit.
///
/// Node id layout: [0, nq) entry nodes, [nq, nq+ngates) gate nodes,
/// [nq+ngates, nq+ngates+nq) exit nodes.
class CircuitDag {
 public:
  explicit CircuitDag(const Circuit& c);

  const Circuit& circuit() const { return *circuit_; }
  unsigned num_qubits() const { return circuit_->num_qubits(); }
  std::size_t num_gates() const { return circuit_->num_gates(); }
  std::size_t num_nodes() const { return nodes_; }

  NodeId entry_node(Qubit q) const { return q; }
  NodeId gate_node(std::size_t gate_idx) const {
    return static_cast<NodeId>(num_qubits() + gate_idx);
  }
  NodeId exit_node(Qubit q) const {
    return static_cast<NodeId>(num_qubits() + num_gates() + q);
  }

  NodeKind kind(NodeId v) const;
  bool is_gate(NodeId v) const { return kind(v) == NodeKind::Gate; }
  /// Gate index for a gate node.
  std::size_t gate_index(NodeId v) const;
  /// The gate a gate node represents.
  const Gate& gate_of(NodeId v) const { return circuit_->gate(gate_index(v)); }
  /// Qubit of an entry/exit node.
  Qubit qubit_of(NodeId v) const;

  std::span<const Edge> succs(NodeId v) const {
    return {succ_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }
  std::span<const Edge> preds(NodeId v) const {
    return {pred_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }

  /// Gate nodes in circuit order (the natural topological order).
  std::vector<NodeId> natural_order() const;

  /// A random DFS-based topological order of the *gate nodes*: reverse
  /// postorder of a DFS from the entry nodes with shuffled adjacency.
  std::vector<NodeId> random_dfs_order(Rng& rng) const;

  /// Randomized Kahn order (uniform choice among ready nodes).
  std::vector<NodeId> random_kahn_order(Rng& rng) const;

  /// True iff `order` lists every gate node exactly once respecting all
  /// gate-to-gate dependencies.
  bool is_topological_gate_order(std::span<const NodeId> order) const;

  /// Graphviz export; `part_of` (size num_gates, part id per gate index)
  /// colors nodes by part when provided.
  std::string to_dot(std::span<const int> part_of = {}) const;

 private:
  const Circuit* circuit_;
  std::size_t nodes_;
  // CSR adjacency over all nodes.
  std::vector<std::size_t> succ_off_, pred_off_;
  std::vector<Edge> succ_, pred_;
};

/// Quotient ("part") graph: one node per part, edges accumulated between
/// parts. Built over gate nodes only.
struct PartGraph {
  int num_parts = 0;
  std::vector<std::vector<int>> succs;  // deduplicated
  std::vector<std::vector<int>> preds;

  /// True iff the quotient graph has no cycle.
  bool is_acyclic() const;
  /// A topological order of parts; throws if cyclic.
  std::vector<int> topological_order() const;
  /// reach[i][j] == true iff part j is reachable from part i (i != j).
  std::vector<std::vector<bool>> reachability() const;
};

/// Builds the part graph from a per-gate part assignment (-1 entries are
/// not allowed). `num_parts` must exceed every id in `part_of`.
PartGraph build_part_graph(const CircuitDag& dag, std::span<const int> part_of,
                           int num_parts);

}  // namespace hisim::dag
