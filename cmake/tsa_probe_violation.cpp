// Negative-compile probe for the thread-safety gate (see CMakeLists.txt):
// a seeded HISIM_GUARDED_BY violation that MUST fail to compile under
// Clang with -Werror=thread-safety. If this file ever compiles there, the
// analysis is inert (macros broken, flags dropped) and the configure step
// aborts — a green thread-safety CI job must mean the analysis ran.
#include "common/parallel.hpp"

namespace {

struct Counter {
  hisim::Mutex mu;
  int value HISIM_GUARDED_BY(mu) = 0;

  // Violation: reads `value` without holding `mu`.
  int read_unlocked() const { return value; }
};

}  // namespace

int main() {
  Counter c;
  return c.read_unlocked();
}
