// Positive-control probe for the thread-safety gate (see CMakeLists.txt):
// correct lock discipline over the annotated wrappers that MUST compile
// under Clang with -Werror=thread-safety. Its job is to prove a failure
// of the violation probe comes from the analysis catching the seeded bug,
// not from the probe setup being broken.
#include "common/parallel.hpp"

namespace {

struct Counter {
  hisim::Mutex mu;
  int value HISIM_GUARDED_BY(mu) = 0;

  int read_locked() {
    hisim::MutexLock lk(mu);
    return value;
  }
};

}  // namespace

int main() {
  Counter c;
  return c.read_locked();
}
