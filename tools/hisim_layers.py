#!/usr/bin/env python3
"""hisim-layers: architecture-layering analyzer for the HiSVSIM tree.

The paper's design is navigable because the module graph is a strict
DAG — flat building blocks at the bottom, the hierarchical/multilevel/
distributed executors stacked above them:

    common -> circuit/qasm/dag -> opt/sv/partition -> noise -> dist
           -> hisvsim            (circuits: leaf consumers)

This tool keeps that layering *enforceable* rather than aspirational: it
parses every `#include "..."` edge under src/, checks each against the
declared per-module dependency table below, and fails the build (ctest
entries `hisim_layers` / `hisim_layers_selftest`; CI `lint` job) on:

  module    a directory under src/ that is not declared in the table
            (new modules must be added here, deliberately, with their
            allowed dependencies)
  edge      an include crossing modules along an undeclared edge — an
            upward include (a lower layer reaching into a higher one) or
            a sideways one nobody signed off on
  cycle     a file-level include cycle (printed as the full chain)
  missing   a quoted include that resolves to no file under src/

Usage:
  hisim_layers.py [REPO_ROOT]   analyze <root>/src (default: this repo)
  hisim_layers.py --dot [ROOT]  emit the observed module DAG as Graphviz
                                (the ARCHITECTURE.md diagram)
  hisim_layers.py --self-test   run against tools/lint_fixtures/layers/

Exit status 0 = layering holds, 1 = violations (one per line as
path:line: [rule] message).
"""

import re
import sys
from pathlib import Path

# The declared architecture: module -> modules it may include directly.
# This table is the authority; an include the table does not allow is a
# violation even if it would compile. Keep edges tight — allow a new
# dependency only when the layering argument for it is written down in
# docs/ARCHITECTURE.md ("Static analysis").
DECLARED_DEPS = {
    "common": set(),
    "circuit": {"common"},
    "qasm": {"common", "circuit"},
    "dag": {"common", "circuit"},
    "opt": {"common", "circuit"},
    "noise": {"common", "circuit"},
    "partition": {"common", "circuit", "dag", "qasm"},
    "sv": {"common", "circuit", "partition"},
    "dist": {"common", "circuit", "dag", "partition", "sv", "noise"},
    "hisvsim": {"common", "circuit", "qasm", "dag", "opt", "sv",
                "partition", "noise", "dist"},
    # Circuit generators are leaf consumers of the circuit layer: nothing
    # in src/ may depend on them (only tests/benches/tools do).
    "circuits": {"common", "circuit"},
}

CXX_SUFFIXES = {".hpp", ".cpp", ".inl", ".h", ".cc"}
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def module_of(rel):
    """Module name of a src/-relative POSIX path, or None for a file
    sitting directly in src/."""
    parts = rel.split("/")
    return parts[0] if len(parts) > 1 else None


def declared_depth(module, _memo={}):
    """Longest declared dependency chain below `module` (common = 0).
    Doubles as the cycle check on the declared table itself."""
    if module in _memo:
        depth = _memo[module]
        if depth is None:
            raise SystemExit(f"DECLARED_DEPS is cyclic at '{module}'")
        return depth
    _memo[module] = None  # in progress
    deps = DECLARED_DEPS[module]
    _memo[module] = 1 + max((declared_depth(d) for d in deps), default=-1)
    return _memo[module]


def scan(src_root):
    """Returns (files, edges): `files` is the set of src/-relative paths,
    `edges` is a list of (from_rel, lineno, include_path)."""
    files = set()
    edges = []
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(src_root).as_posix()
        files.add(rel)
        for i, line in enumerate(path.read_text(errors="replace")
                                 .splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if m:
                edges.append((rel, i, m.group(1)))
    return files, edges


def find_cycle(graph):
    """First file-level include cycle as a path list [a, b, ..., a], or
    None. Deterministic: nodes and neighbors visited in sorted order."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    stack = []

    def dfs(n):
        color[n] = GRAY
        stack.append(n)
        for m in sorted(graph.get(n, ())):
            if color.get(m, WHITE) == GRAY:
                return stack[stack.index(m):] + [m]
            if color.get(m, WHITE) == WHITE:
                cyc = dfs(m)
                if cyc:
                    return cyc
        stack.pop()
        color[n] = BLACK
        return None

    for n in sorted(graph):
        if color[n] == WHITE:
            cyc = dfs(n)
            if cyc:
                return cyc
    return None


def analyze(root):
    """Returns findings for <root>/src as (rel, lineno, rule, message)."""
    src_root = Path(root) / "src"
    if not src_root.is_dir():
        return [("src", 0, "module", f"no src/ directory under {root}")]
    files, edges = scan(src_root)
    findings = []

    for rel in sorted(files):
        mod = module_of(rel)
        if mod is None:
            findings.append((rel, 0, "module",
                             "file sits directly in src/ — every file "
                             "belongs to a declared module directory"))
        elif mod not in DECLARED_DEPS:
            findings.append((rel, 0, "module",
                             f"module '{mod}' is not declared in "
                             "tools/hisim_layers.py DECLARED_DEPS — new "
                             "modules are added there, with their allowed "
                             "dependencies, deliberately"))

    graph = {rel: set() for rel in files}
    for rel, lineno, inc in edges:
        if inc not in files:
            findings.append((rel, lineno, "missing",
                             f'include "{inc}" resolves to no file under '
                             "src/ (project includes are rooted at src/)"))
            continue
        graph[rel].add(inc)
        mod, imod = module_of(rel), module_of(inc)
        if mod == imod or mod not in DECLARED_DEPS \
                or imod not in DECLARED_DEPS:
            continue  # intra-module, or already reported as unknown
        if imod not in DECLARED_DEPS[mod]:
            allowed = ", ".join(sorted(DECLARED_DEPS[mod])) or "(nothing)"
            direction = "upward" if imod in DECLARED_DEPS \
                and declared_depth(imod) >= declared_depth(mod) \
                else "undeclared"
            findings.append((rel, lineno, "edge",
                             f'include "{inc}": {direction} dependency '
                             f"{mod} -> {imod}; {mod} may include only "
                             f"[{allowed}]"))

    cyc = find_cycle(graph)
    if cyc:
        findings.append((cyc[0], 0, "cycle",
                         "include cycle: " + " -> ".join(cyc)))
    return findings


def observed_module_edges(root):
    src_root = Path(root) / "src"
    files, edges = scan(src_root)
    out = set()
    for rel, _, inc in edges:
        if inc in files:
            a, b = module_of(rel), module_of(inc)
            if a and b and a != b:
                out.add((a, b))
    return out


def emit_dot(root):
    """Graphviz digraph of the observed module DAG, rank-grouped by
    declared depth (the dependent points at its dependency)."""
    edges = observed_module_edges(root)
    by_depth = {}
    for mod in DECLARED_DEPS:
        by_depth.setdefault(declared_depth(mod), []).append(mod)
    lines = ["digraph hisim_layers {",
             "  rankdir=BT;  // dependencies below their dependents",
             "  node [shape=box, fontname=monospace];"]
    for depth in sorted(by_depth):
        mods = "; ".join(f'"{m}"' for m in sorted(by_depth[depth]))
        lines.append(f"  {{ rank=same; {mods}; }}")
    for a, b in sorted(edges):
        lines.append(f'  "{a}" -> "{b}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


# --- self-test ---------------------------------------------------------------

# fixture tree -> set of rules it must trigger (empty = must pass clean).
FIXTURE_EXPECT = {
    "clean": set(),
    "upward": {"edge"},
    "cycle": {"cycle"},
    "unknown": {"module"},
    "missing": {"missing"},
}


def self_test(script_dir):
    fixtures = script_dir / "lint_fixtures" / "layers"
    failures = []
    for name, expected in sorted(FIXTURE_EXPECT.items()):
        tree = fixtures / name
        if not (tree / "src").is_dir():
            failures.append(f"missing fixture tree {name}/src")
            continue
        found = {rule for _, _, rule, _ in analyze(tree)}
        if found != expected:
            failures.append(f"{name}: expected rules {sorted(expected)}, "
                            f"got {sorted(found)}")
    # The dot emitter must report the clean fixture's one cross-module
    # edge and group modules by declared depth.
    dot = emit_dot(fixtures / "clean")
    if '"circuit" -> "common"' not in dot or "rank=same" not in dot:
        failures.append("emit_dot lost the clean fixture's edge/ranks")
    # The declared table itself must be a DAG with common at the bottom.
    if declared_depth("common") != 0 or declared_depth("hisvsim") < 3:
        failures.append("DECLARED_DEPS depths are implausible")
    for f in failures:
        print(f"self-test FAIL: {f}")
    if not failures:
        print(f"self-test OK: {len(FIXTURE_EXPECT)} fixture trees")
    return 1 if failures else 0


def main(argv):
    script_dir = Path(__file__).resolve().parent
    args = argv[1:]
    if args and args[0] == "--self-test":
        return self_test(script_dir)
    dot = bool(args) and args[0] == "--dot"
    if dot:
        args = args[1:]
    root = Path(args[0]).resolve() if args else script_dir.parent
    if dot:
        sys.stdout.write(emit_dot(root))
        return 0
    findings = analyze(root)
    for rel, line, rule, msg in findings:
        print(f"src/{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"hisim-layers: {len(findings)} violation(s)")
        return 1
    mods = len(DECLARED_DEPS)
    print(f"hisim-layers: clean ({mods} modules, "
          f"{len(observed_module_edges(root))} module edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
