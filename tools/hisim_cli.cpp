// hisim — command-line front end to the HiSVSIM library.
//
//   hisim run <circuit|file.qasm> [--qubits=N] [--limit=L]
//         [--strategy=dagp|dfs|nat] [--ranks=R] [--level2=L2]
//         [--backend=serial|threaded] [--target=T] [--shots=S] [--json]
//   hisim partition <circuit|file.qasm> [--qubits=N] [--limit=L]
//         [--strategy=...] [--dot=out.dot] [--exact]
//   hisim suite                      # list the built-in benchmark suite
//
// <circuit> is a suite name (bv, qft, ...) or a path ending in .qasm.
// --ranks must be a power of two (R = 2^p simulated processes).
// --target is one of flat, hierarchical, multilevel, distributed-serial,
// distributed-threaded, iqs-baseline; when omitted it is derived from
// --ranks / --level2 / --backend.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "hisvsim/cli_flags.hpp"
#include "hisvsim/engine.hpp"
#include "partition/exact.hpp"
#include "qasm/parser.hpp"

namespace {

using namespace hisim;

Circuit load_circuit(const std::string& spec, unsigned qubits) {
  if (spec.size() > 5 && spec.substr(spec.size() - 5) == ".qasm")
    return qasm::parse_file(spec);
  return circuits::make_by_name(spec, qubits);
}

int cmd_suite() {
  std::printf("%-10s %8s %8s %10s %10s\n", "name", "paper-q", "paper-g",
              "paper-mem", "default-q");
  for (const auto& b : circuits::qasmbench_suite())
    std::printf("%-10s %8u %8zu %10s %10u\n", b.name.c_str(), b.paper_qubits,
                b.paper_gates, b.paper_memory.c_str(), b.default_qubits);
  return 0;
}

int cmd_run(const std::string& spec, const cli::Flags& f) {
  const Circuit c = load_circuit(spec, f.qubits);
  std::fprintf(stderr, "%s\n", c.summary().c_str());

  // Compile once, execute: the CLI runs the plan a single time, but the
  // same plan could serve any number of execute() calls (see engine.hpp).
  const ExecutionPlan plan = Engine::compile(c, cli::engine_options(f));
  ExecOptions x;
  x.shots = f.shots;
  const Result r = plan.execute(x);

  if (f.json) {
    std::printf("%s\n", r.to_json().c_str());
  } else if (r.ranks > 0) {
    std::printf(
        "target=%s parts=%zu total=%.4fs norm=%.12f "
        "comm=%.4fs wall=%.4fs overlap=%.4fs\n",
        target_name(r.target), r.parts, r.total_seconds(), r.norm,
        r.measured_comm_seconds, r.measured_wall_seconds,
        r.measured_overlap_seconds);
  } else {
    std::printf("target=%s parts=%zu compile=%.4fs total=%.4fs norm=%.12f\n",
                target_name(r.target), r.parts, r.compile_seconds,
                r.total_seconds(), r.norm);
  }

  if (!r.samples.empty()) {
    std::map<Index, std::size_t> hist;
    for (Index s : r.samples) ++hist[s];
    std::vector<std::pair<std::size_t, Index>> top;
    for (const auto& [v, n] : hist) top.emplace_back(n, v);
    std::sort(top.rbegin(), top.rend());
    std::printf("top outcomes (%zu shots):\n", r.samples.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(8, top.size()); ++i) {
      std::printf("  ");
      for (unsigned q = c.num_qubits(); q-- > 0;)
        std::printf("%c", (top[i].second >> q) & 1 ? '1' : '0');
      std::printf("  %zu\n", top[i].first);
    }
  }
  return 0;
}

int cmd_partition(const std::string& spec, const cli::Flags& f) {
  const Circuit c = load_circuit(spec, f.qubits);
  std::printf("%s\n", c.summary().c_str());
  const dag::CircuitDag dag(c);
  partition::PartitionOptions opt;
  opt.limit = f.limit == 0 ? std::max(2u, c.num_qubits() / 2) : f.limit;
  opt.strategy = f.strategy;
  const auto parts = partition::make_partition(dag, opt);
  partition::validate(dag, parts);
  std::printf("%s: %s (%.1f us)\n",
              partition::strategy_name(f.strategy).c_str(),
              parts.summary().c_str(), parts.partition_seconds * 1e6);
  if (f.exact) {
    try {
      const auto exact = partition::partition_exact(dag, opt.limit);
      std::printf("exact: %zu parts (%s)\n", exact.partitioning.num_parts(),
                  exact.proven_optimal ? "proven optimal" : "truncated");
    } catch (const Error& e) {
      std::printf("exact: skipped — %s\n", e.what());
    }
  }
  if (!f.dot.empty()) {
    std::ofstream out(f.dot);
    out << dag.to_dot(parts.part_of);
    std::printf("wrote %s\n", f.dot.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hisim <run|partition|suite> [circuit] [flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "suite") return cmd_suite();
    if (argc < 3) {
      std::fprintf(stderr, "missing circuit argument\n");
      return 2;
    }
    const cli::Flags f =
        cli::parse_flags(std::vector<std::string>(argv + 3, argv + argc));
    if (cmd == "run") return cmd_run(argv[2], f);
    if (cmd == "partition") return cmd_partition(argv[2], f);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const hisim::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
