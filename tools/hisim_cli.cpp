// hisim — command-line front end to the HiSVSIM library.
//
//   hisim run <circuit|file.qasm> [--qubits=N] [--limit=L]
//         [--strategy=dagp|dfs|nat] [--ranks=R] [--level2=L2]
//         [--backend=serial|threaded] [--target=T] [--shots=S] [--json]
//         [--opt-level=0|1] [--kernel=auto|scalar|simd]
//         [--bind name=value]... [--sweep name=start:stop:steps]...
//         [--observable=PAULI]... [--noise kind=p]... [--trajectories=N]
//         [--noise-seed=S]
//   hisim partition <circuit|file.qasm> [--qubits=N] [--limit=L]
//         [--strategy=...] [--dot=out.dot] [--exact]
//   hisim suite                      # list the built-in benchmark suite
//
// <circuit> is a suite name (bv, qft, ...), "qaoa-p" (parameterized
// 2-round QAOA with angles gamma0/beta0/gamma1/beta1), "noisecal" (the
// repeated-gate/idle noise-calibration circuit), or a path ending in
// .qasm.
// --ranks must be a power of two (R = 2^p simulated processes).
// --opt-level selects the compile-time circuit optimizer: 1 (default)
// runs the canonicalization pipeline before partitioning, 0 compiles the
// circuit exactly as written; --json reports "gates_pre_opt" and the
// per-pass "opt_passes" removal counts alongside the compiled "gates".
// --target is one of flat, hierarchical, multilevel, distributed-serial,
// distributed-threaded, iqs-baseline; when omitted it is derived from
// --ranks / --level2 / --backend.
// --kernel selects the apply-kernel tier: auto (default — SIMD when the
// build and CPU support it, also via HISIM_KERNEL=scalar|simd|auto),
// scalar, or simd (errors at compile when unavailable); the report's
// "kernel" field names the tier that actually ran.
// --bind pins a circuit parameter; --sweep runs the cartesian grid of its
// axes through one compiled plan (one report line — or JSON array entry —
// per point). Every circuit parameter must be covered by a bind or sweep.
// --noise kind=p attaches a channel (depolarizing, bitflip, phaseflip,
// damping — after every gate; readout — shot confusion) and requires
// --trajectories=N: the plan compiles once with reserved noise slots and
// every trajectory is a pure execute with sampled Pauli/Kraus insertions
// (--shots then means shots *per trajectory*, pooled in the report).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "common/trace.hpp"
#include "hisvsim/cli_flags.hpp"
#include "hisvsim/engine.hpp"
#include "partition/exact.hpp"
#include "qasm/parser.hpp"

namespace {

using namespace hisim;

Circuit load_circuit(const std::string& spec, unsigned qubits) {
  if (spec.size() > 5 && spec.substr(spec.size() - 5) == ".qasm")
    return qasm::parse_file(spec);
  // The parameterized 2-round QAOA instance (gamma0/beta0/gamma1/beta1):
  // the circuit --bind/--sweep are made for — one compiled plan, every
  // angle point a pure execute.
  if (spec == "qaoa-p") return circuits::qaoa_instance(qubits, 2).circuit;
  // The repeated-gate/idle calibration circuit --noise runs are made for.
  if (spec == "noisecal") return circuits::noise_calibration(qubits);
  return circuits::make_by_name(spec, qubits);
}

int cmd_suite() {
  std::printf("%-10s %8s %8s %10s %10s\n", "name", "paper-q", "paper-g",
              "paper-mem", "default-q");
  for (const auto& b : circuits::qasmbench_suite())
    std::printf("%-10s %8u %8zu %10s %10u\n", b.name.c_str(), b.paper_qubits,
                b.paper_gates, b.paper_memory.c_str(), b.default_qubits);
  return 0;
}

int run_traced(const std::string& spec, const cli::Flags& f);

int cmd_run(const std::string& spec, const cli::Flags& f) {
  if (f.trace.empty()) return run_traced(spec, f);
  // Fail fast on an unwritable --trace path: rejecting it here beats
  // losing the trace after a (possibly long) run. Append mode creates
  // the file without clobbering it if the run then fails.
  {
    std::ofstream probe(f.trace, std::ios::binary | std::ios::app);
    if (!probe)
      throw Error("cannot open trace output '" + f.trace + "' for writing");
  }
  const int rc = run_traced(spec, f);
  trace::TraceSession::stop();
  trace::TraceSession::write(f.trace);
  std::fprintf(stderr, "wrote trace: %s (%zu events, %zu dropped)\n",
               f.trace.c_str(), trace::TraceSession::event_count(),
               trace::TraceSession::dropped_count());
  return rc;
}

int run_traced(const std::string& spec, const cli::Flags& f) {
  const Circuit c = load_circuit(spec, f.qubits);
  std::fprintf(stderr, "%s\n", c.summary().c_str());

  // Compile once. With --sweep the same plan then serves every grid
  // point; without it the CLI runs the plan a single time (but the same
  // plan could serve any number of execute() calls — see engine.hpp).
  const ExecutionPlan plan = Engine::compile(c, cli::engine_options(f));
  ExecOptions x;
  x.shots = f.shots;
  x.bindings = f.bindings;
  for (const std::string& o : f.observables)
    x.observables.push_back(sv::PauliString::parse(o));

  if (f.trajectories > 0) {
    // Stochastic trajectories: one compiled plan (noise slots reserved at
    // compile), every trajectory a pure execute with sampled insertions.
    TrajectoryOptions topt;
    topt.exec = x;
    topt.seed = f.noise_seed;
    const NoisyResult nr = plan.execute_trajectories(f.trajectories, topt);
    if (f.json) {
      std::printf("%s\n", nr.to_json().c_str());
      return 0;
    }
    std::printf(
        "target=%s trajectories=%zu slots=%zu mean_weight=%.6f "
        "compile=%.4fs execute=%.4fs (%.1f traj/s)\n",
        target_name(nr.target), nr.trajectories, nr.noise_slots,
        nr.mean_weight, nr.compile_seconds, nr.execute_seconds,
        nr.execute_seconds > 0.0
            ? static_cast<double>(nr.trajectories) / nr.execute_seconds
            : 0.0);
    for (std::size_t i = 0; i < nr.observable_means.size(); ++i)
      std::printf("observable %s = %.6f +- %.6f (stderr, %zu trajectories)\n",
                  x.observables[i].to_string().c_str(),
                  nr.observable_means[i], nr.observable_stderrs[i],
                  nr.trajectories);
    if (!nr.counts.empty()) {
      const std::vector<std::pair<double, Index>> top = nr.top_counts(8);
      std::printf("top pooled outcomes (%zu shots x %zu trajectories):\n",
                  nr.shots_per_trajectory, nr.trajectories);
      for (std::size_t i = 0; i < top.size(); ++i) {
        std::printf("  ");
        for (unsigned q = c.num_qubits(); q-- > 0;)
          std::printf("%c", (top[i].second >> q) & 1 ? '1' : '0');
        std::printf("  %.6g\n", top[i].first);
      }
    }
    return 0;
  }

  const std::vector<ParamBinding> points = cli::sweep_points(f);
  if (!points.empty()) {
    // Per-point report only: full states don't scale to grids (and
    // --shots with --sweep was already rejected by parse_flags).
    x.want_state = false;
    const std::vector<Result> results = plan.execute_sweep(points, x);
    if (f.json) std::printf("[\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      if (f.json) {
        std::printf("%s%s\n", r.to_json().c_str(),
                    i + 1 < results.size() ? "," : "");
        continue;
      }
      std::printf("point %zu:", i);
      for (const auto& [name, value] : r.params)
        std::printf(" %s=%.6g", name.c_str(), value);
      std::printf("  total=%.4fs norm=%.12f\n", r.total_seconds(), r.norm);
    }
    if (f.json) std::printf("]\n");
    std::fprintf(stderr,
                 "swept %zu points through one plan (compile %.4fs paid "
                 "once)\n",
                 results.size(), plan.compile_seconds());
    return 0;
  }

  const Result r = plan.execute(x);

  if (f.json) {
    std::printf("%s\n", r.to_json().c_str());
  } else if (r.ranks > 0) {
    std::printf(
        "target=%s parts=%zu total=%.4fs norm=%.12f "
        "comm=%.4fs wall=%.4fs overlap=%.4fs\n",
        target_name(r.target), r.parts, r.total_seconds(), r.norm,
        r.measured_comm_seconds, r.measured_wall_seconds,
        r.measured_overlap_seconds);
  } else {
    std::printf("target=%s parts=%zu compile=%.4fs total=%.4fs norm=%.12f\n",
                target_name(r.target), r.parts, r.compile_seconds,
                r.total_seconds(), r.norm);
  }

  for (std::size_t i = 0; i < r.observables.size(); ++i)
    std::printf("observable %s = %.6f\n",
                x.observables[i].to_string().c_str(), r.observables[i]);

  if (!r.samples.empty()) {
    std::map<Index, std::size_t> hist;
    for (Index s : r.samples) ++hist[s];
    std::vector<std::pair<std::size_t, Index>> top;
    for (const auto& [v, n] : hist) top.emplace_back(n, v);
    std::sort(top.rbegin(), top.rend());
    std::printf("top outcomes (%zu shots):\n", r.samples.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(8, top.size()); ++i) {
      std::printf("  ");
      for (unsigned q = c.num_qubits(); q-- > 0;)
        std::printf("%c", (top[i].second >> q) & 1 ? '1' : '0');
      std::printf("  %zu\n", top[i].first);
    }
  }
  return 0;
}

int cmd_partition(const std::string& spec, const cli::Flags& f) {
  const Circuit c = load_circuit(spec, f.qubits);
  std::printf("%s\n", c.summary().c_str());
  const dag::CircuitDag dag(c);
  partition::PartitionOptions opt;
  opt.limit = f.limit == 0 ? std::max(2u, c.num_qubits() / 2) : f.limit;
  opt.strategy = f.strategy;
  const auto parts = partition::make_partition(dag, opt);
  partition::validate(dag, parts);
  std::printf("%s: %s (%.1f us)\n",
              partition::strategy_name(f.strategy).c_str(),
              parts.summary().c_str(), parts.partition_seconds * 1e6);
  if (f.exact) {
    try {
      const auto exact = partition::partition_exact(dag, opt.limit);
      std::printf("exact: %zu parts (%s)\n", exact.partitioning.num_parts(),
                  exact.proven_optimal ? "proven optimal" : "truncated");
    } catch (const Error& e) {
      std::printf("exact: skipped — %s\n", e.what());
    }
  }
  if (!f.dot.empty()) {
    std::ofstream out(f.dot);
    out << dag.to_dot(parts.part_of);
    std::printf("wrote %s\n", f.dot.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hisim <run|partition|suite> [circuit] [flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "suite") return cmd_suite();
    if (argc < 3) {
      std::fprintf(stderr, "missing circuit argument\n");
      return 2;
    }
    const cli::Flags f =
        cli::parse_flags(std::vector<std::string>(argv + 3, argv + argc));
    if (cmd == "run") return cmd_run(argv[2], f);
    if (cmd == "partition") return cmd_partition(argv[2], f);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const hisim::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
