// hisim — command-line front end to the HiSVSIM library.
//
//   hisim run <circuit|file.qasm> [--qubits=N] [--limit=L]
//         [--strategy=dagp|dfs|nat] [--ranks=P] [--level2=L2]
//         [--backend=serial|threaded] [--shots=S] [--json]
//   hisim partition <circuit|file.qasm> [--qubits=N] [--limit=L]
//         [--strategy=...] [--dot=out.dot] [--exact]
//   hisim suite                      # list the built-in benchmark suite
//
// <circuit> is a suite name (bv, qft, ...) or a path ending in .qasm.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "circuits/generators.hpp"
#include "dist/backend.hpp"
#include "hisvsim/hisvsim.hpp"
#include "partition/exact.hpp"
#include "qasm/parser.hpp"
#include "sv/observables.hpp"

namespace {

using namespace hisim;

struct Flags {
  unsigned qubits = 14;
  unsigned limit = 0;
  unsigned ranks_p = 0;
  unsigned level2 = 0;
  std::size_t shots = 0;
  bool json = false;
  bool exact = false;
  std::string dot;
  partition::Strategy strategy = partition::Strategy::DagP;
  dist::BackendKind backend = dist::BackendKind::Serial;
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags f;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      return a.rfind(name, 0) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--qubits=")) f.qubits = std::atoi(v);
    else if (const char* v = val("--limit=")) f.limit = std::atoi(v);
    else if (const char* v = val("--ranks=")) {
      const unsigned r = std::atoi(v);
      unsigned p = 0;
      while ((1u << p) < r) ++p;
      f.ranks_p = p;
    } else if (const char* v = val("--level2=")) f.level2 = std::atoi(v);
    else if (const char* v = val("--shots=")) f.shots = std::atoi(v);
    else if (const char* v = val("--dot=")) f.dot = v;
    else if (const char* v = val("--strategy=")) {
      const std::string s = v;
      f.strategy = s == "nat"   ? partition::Strategy::Nat
                   : s == "dfs" ? partition::Strategy::Dfs
                                : partition::Strategy::DagP;
    } else if (const char* v = val("--backend=")) {
      f.backend = dist::parse_backend(v);
    } else if (a == "--json") f.json = true;
    else if (a == "--exact") f.exact = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      std::exit(2);
    }
  }
  return f;
}

Circuit load_circuit(const std::string& spec, unsigned qubits) {
  if (spec.size() > 5 && spec.substr(spec.size() - 5) == ".qasm")
    return qasm::parse_file(spec);
  return circuits::make_by_name(spec, qubits);
}

int cmd_suite() {
  std::printf("%-10s %8s %8s %10s %10s\n", "name", "paper-q", "paper-g",
              "paper-mem", "default-q");
  for (const auto& b : circuits::qasmbench_suite())
    std::printf("%-10s %8u %8zu %10s %10u\n", b.name.c_str(), b.paper_qubits,
                b.paper_gates, b.paper_memory.c_str(), b.default_qubits);
  return 0;
}

int cmd_run(const std::string& spec, const Flags& f) {
  const Circuit c = load_circuit(spec, f.qubits);
  std::fprintf(stderr, "%s\n", c.summary().c_str());

  RunOptions opt;
  opt.strategy = f.strategy;
  opt.limit = f.limit;
  opt.process_qubits = f.ranks_p;
  opt.level2_limit = f.level2;
  opt.backend = f.backend;
  RunReport rep;
  HiSvSim sim(opt);
  const sv::StateVector state =
      f.ranks_p > 0 ? sim.simulate_distributed(c, &rep) : sim.simulate(c, &rep);

  if (f.json) {
    std::printf("{\n");
    std::printf("  \"circuit\": \"%s\",\n", c.name().c_str());
    std::printf("  \"qubits\": %u,\n", c.num_qubits());
    std::printf("  \"gates\": %zu,\n", c.num_gates());
    std::printf("  \"strategy\": \"%s\",\n",
                partition::strategy_name(f.strategy).c_str());
    std::printf("  \"parts\": %zu,\n", rep.parts);
    std::printf("  \"inner_parts\": %zu,\n", rep.inner_parts);
    std::printf("  \"partition_seconds\": %.6g,\n", rep.partition_seconds);
    if (rep.distributed) {
      std::printf("  \"ranks\": %u,\n", rep.dist.ranks);
      std::printf("  \"backend\": \"%s\",\n",
                  dist::backend_kind_name(f.backend));
      std::printf("  \"comm_bytes\": %llu,\n",
                  (unsigned long long)rep.dist.comm.bytes_total);
      std::printf("  \"comm_seconds_modeled\": %.6g,\n",
                  rep.dist.comm.modeled_max_seconds);
      std::printf("  \"comm_seconds_measured\": %.6g,\n",
                  rep.dist.measured_comm_seconds);
      std::printf("  \"wall_seconds_measured\": %.6g,\n",
                  rep.dist.measured_wall_seconds);
      std::printf("  \"overlap_seconds_measured\": %.6g,\n",
                  rep.dist.measured_overlap_seconds);
      std::printf("  \"compute_seconds\": %.6g,\n", rep.dist.compute_seconds);
    } else {
      std::printf("  \"gather_seconds\": %.6g,\n", rep.hier.gather_seconds);
      std::printf("  \"execute_seconds\": %.6g,\n", rep.hier.execute_seconds);
      std::printf("  \"scatter_seconds\": %.6g,\n", rep.hier.scatter_seconds);
      std::printf("  \"outer_bytes_moved\": %llu,\n",
                  (unsigned long long)rep.hier.outer_bytes_moved);
    }
    std::printf("  \"total_seconds\": %.6g,\n", rep.total_seconds());
    std::printf("  \"norm\": %.12f\n", state.norm());
    std::printf("}\n");
  } else if (rep.distributed) {
    std::printf(
        "parts=%zu total=%.4fs norm=%.12f backend=%s "
        "comm=%.4fs wall=%.4fs overlap=%.4fs\n",
        rep.parts, rep.total_seconds(), state.norm(),
        dist::backend_kind_name(f.backend), rep.dist.measured_comm_seconds,
        rep.dist.measured_wall_seconds, rep.dist.measured_overlap_seconds);
  } else {
    std::printf("parts=%zu total=%.4fs norm=%.12f\n", rep.parts,
                rep.total_seconds(), state.norm());
  }

  if (f.shots > 0) {
    Rng rng(0xC11);
    const auto shots = sv::sample(state, f.shots, rng);
    std::map<Index, std::size_t> hist;
    for (Index s : shots) ++hist[s];
    std::vector<std::pair<std::size_t, Index>> top;
    for (const auto& [v, n] : hist) top.emplace_back(n, v);
    std::sort(top.rbegin(), top.rend());
    std::printf("top outcomes (%zu shots):\n", f.shots);
    for (std::size_t i = 0; i < std::min<std::size_t>(8, top.size()); ++i) {
      std::printf("  ");
      for (unsigned q = c.num_qubits(); q-- > 0;)
        std::printf("%c", (top[i].second >> q) & 1 ? '1' : '0');
      std::printf("  %zu\n", top[i].first);
    }
  }
  return 0;
}

int cmd_partition(const std::string& spec, const Flags& f) {
  const Circuit c = load_circuit(spec, f.qubits);
  std::printf("%s\n", c.summary().c_str());
  const dag::CircuitDag dag(c);
  partition::PartitionOptions opt;
  opt.limit = f.limit == 0 ? std::max(2u, c.num_qubits() / 2) : f.limit;
  opt.strategy = f.strategy;
  const auto parts = partition::make_partition(dag, opt);
  partition::validate(dag, parts);
  std::printf("%s: %s (%.1f us)\n",
              partition::strategy_name(f.strategy).c_str(),
              parts.summary().c_str(), parts.partition_seconds * 1e6);
  if (f.exact) {
    try {
      const auto exact = partition::partition_exact(dag, opt.limit);
      std::printf("exact: %zu parts (%s)\n", exact.partitioning.num_parts(),
                  exact.proven_optimal ? "proven optimal" : "truncated");
    } catch (const Error& e) {
      std::printf("exact: skipped — %s\n", e.what());
    }
  }
  if (!f.dot.empty()) {
    std::ofstream out(f.dot);
    out << dag.to_dot(parts.part_of);
    std::printf("wrote %s\n", f.dot.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hisim <run|partition|suite> [circuit] [flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "suite") return cmd_suite();
    if (argc < 3) {
      std::fprintf(stderr, "missing circuit argument\n");
      return 2;
    }
    const Flags f = parse_flags(argc, argv, 3);
    if (cmd == "run") return cmd_run(argv[2], f);
    if (cmd == "partition") return cmd_partition(argv[2], f);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const hisim::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
