#!/usr/bin/env python3
"""hisim-lint: repository-specific static checks for the HiSVSIM tree.

Four rule families (see docs/ARCHITECTURE.md, "Correctness tooling"):

  rng       Nondeterminism primitives -- libc rand()/srand()/time(),
            std::random_device, and unseeded std::mt19937 -- are forbidden
            outside the sanctioned RNG module. Reproducibility (fixed-seed
            bit-identical runs) is a load-bearing contract of the simulator:
            every draw must flow through hisim::Rng with an explicit seed.

  simd      AVX2 intrinsics (immintrin.h / _mm256_* / __m256*) may appear
            only in the dedicated -mavx2 translation unit. Any other TU
            touching them would execute illegal instructions on non-AVX2
            hosts, defeating the runtime-dispatch design.

  thread    Raw std::thread / std::jthread are confined to the worker-pool
            module. Everything else must go through hisim::task_group so
            thread counts, affinity, and sanitizer suppressions stay
            centralized.

  mutex     Raw std::mutex / std::condition_variable / std::lock_guard /
            std::unique_lock / std::scoped_lock are confined to
            src/common/parallel.* -- everywhere else in src/ must use the
            capability-annotated hisim::Mutex / MutexLock / CondVar
            wrappers, or Clang's thread-safety analysis cannot see the
            locking (src/common/thread_annotations.hpp).

  sleep     std::this_thread::sleep_for/sleep_until are forbidden in src/:
            production code never synchronizes by sleeping -- use a CondVar
            wait or a latch. (Tests/benches are exempt; timing probes
            there are legitimate.)

  chrono    Raw std::chrono (steady_clock and friends) is confined to
            common/timer.hpp and the trace layer (common/trace.*) in src/.
            Everywhere else times through hisim::Timer/Stopwatch or a
            trace::TraceSpan so clock choice, unit conversions, and the
            trace timeline stay in one place -- ad-hoc now() calls are how
            mixed-clock timestamps and double-counted phases creep in.
            (Tests/benches are exempt, same as sleep.)

  include   Hygiene: no relative-parent ("../") includes (all project
            includes are rooted at src/), and no `using namespace` at
            header scope.

Usage:
  hisim_lint.py [REPO_ROOT]   lint the tree (default: script's repo)
  hisim_lint.py --self-test   run the linter against its fixtures

Exit status 0 = clean, 1 = findings (printed one per line as
path:line: [rule] message).
"""

import re
import sys
from pathlib import Path

# Files allowed to use each restricted construct, as POSIX paths relative
# to the repo root.
SANCTIONED = {
    "rng": {
        "src/common/rng.hpp",
        "src/common/rng.cpp",
    },
    "simd": {
        "src/sv/kernels_avx2.cpp",
    },
    "thread": {
        "src/common/parallel.hpp",
        "src/common/parallel.cpp",
    },
    # The annotated wrappers themselves are the only place the raw
    # primitives may appear; everything else uses hisim::Mutex et al.
    "mutex": {
        "src/common/parallel.hpp",
        "src/common/parallel.cpp",
    },
    # The timing wrappers and the trace clock are the only direct
    # std::chrono users; everything else goes through Timer/TraceSpan.
    "chrono": {
        "src/common/timer.hpp",
        "src/common/trace.hpp",
        "src/common/trace.cpp",
    },
}

# Directories scanned, relative to the repo root.
SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
CXX_SUFFIXES = {".hpp", ".cpp", ".inl", ".h", ".cc"}

RNG_PATTERNS = [
    (re.compile(r"\bs?rand\s*\("), "libc rand()/srand()"),
    (re.compile(r"\btime\s*\("), "libc time()"),
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    # Default-constructed (unseeded) mt19937: declaration with no
    # initializer, or an empty ()/{} initializer. A seeded construction
    # (std::mt19937 g(seed)) does not match, but is still nondeterminism
    # smuggled past hisim::Rng -- flag every mt19937 outside the RNG module.
    (re.compile(r"std\s*::\s*mt19937(?:_64)?\b"), "std::mt19937"),
]
SIMD_PATTERNS = [
    (re.compile(r'#\s*include\s*[<"](?:x86)?(?:imm|avx2?)intrin\.h[>"]'),
     "intrinsics header include"),
    (re.compile(r"\b_mm256?_\w+"), "AVX2 intrinsic call"),
    (re.compile(r"\b__m256[id]?\b"), "AVX2 vector type"),
]
THREAD_PATTERN = re.compile(r"std\s*::\s*j?thread\b")
MUTEX_PATTERN = re.compile(
    r"std\s*::\s*(?:recursive_|timed_|shared_)?mutex\b"
    r"|std\s*::\s*condition_variable(?:_any)?\b"
    r"|std\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b")
SLEEP_PATTERN = re.compile(r"std\s*::\s*this_thread\s*::\s*sleep_(?:for|until)\b")
CHRONO_PATTERN = re.compile(
    r"std\s*::\s*chrono\b"
    r"|\b(?:steady|system|high_resolution)_clock\b")
PARENT_INCLUDE = re.compile(r'#\s*include\s*"\.\./')
USING_NAMESPACE = re.compile(r"\busing\s+namespace\b")

_COMMENT_OR_STRING = re.compile(
    r'//[^\n]*'            # line comment
    r'|/\*.*?\*/'          # block comment
    r'|"(?:\\.|[^"\\\n])*"'   # string literal
    r"|'(?:\\.|[^'\\\n])'",   # char literal
    re.DOTALL,
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines so
    line numbers in findings stay exact."""
    def blank(m):
        s = m.group(0)
        # Keep include paths visible: the include-hygiene rules match on
        # the quoted path itself.
        return "".join(c if c == "\n" else " " for c in s)

    # Includes are handled before blanking (see lint_file), so blanking
    # every literal here is safe.
    return _COMMENT_OR_STRING.sub(blank, text)


def lint_file(rel, text, sanctioned=SANCTIONED):
    """Returns findings for one file as (rel, lineno, rule, message)."""
    findings = []
    is_header = rel.endswith((".hpp", ".h", ".inl"))
    # Containment rules police production code: tests spawn raw threads on
    # purpose (thread-safety suites) and may probe hardware_concurrency.
    # The rng rule applies everywhere -- a nondeterministic test is flaky.
    in_src = rel.startswith("src/")

    # Include hygiene runs on the raw text: the offending token is inside a
    # quoted include path, which stripping would blank.
    for i, line in enumerate(text.splitlines(), 1):
        if PARENT_INCLUDE.search(line):
            findings.append((rel, i, "include",
                             'relative-parent include ("../"): project '
                             "includes are rooted at src/"))

    stripped = strip_comments_and_strings(text)
    for i, line in enumerate(stripped.splitlines(), 1):
        if is_header and USING_NAMESPACE.search(line):
            findings.append((rel, i, "include",
                             "`using namespace` at header scope leaks into "
                             "every includer"))
        if rel not in sanctioned["rng"]:
            for pat, what in RNG_PATTERNS:
                if pat.search(line):
                    findings.append((rel, i, "rng",
                                     f"{what}: all randomness must flow "
                                     "through hisim::Rng with an explicit "
                                     "seed (src/common/rng.hpp)"))
        if in_src and rel not in sanctioned["simd"]:
            for pat, what in SIMD_PATTERNS:
                if pat.search(line):
                    findings.append((rel, i, "simd",
                                     f"{what} outside the dedicated -mavx2 "
                                     "TU (src/sv/kernels_avx2.cpp) would "
                                     "crash non-AVX2 hosts"))
        if in_src and rel not in sanctioned["thread"] \
                and THREAD_PATTERN.search(line):
            findings.append((rel, i, "thread",
                             "raw std::thread outside the worker pool "
                             "(src/common/parallel.*); use "
                             "hisim::task_group"))
        if in_src and rel not in sanctioned["mutex"] \
                and MUTEX_PATTERN.search(line):
            findings.append((rel, i, "mutex",
                             "raw std:: locking primitive outside "
                             "src/common/parallel.*; use the annotated "
                             "hisim::Mutex/MutexLock/CondVar wrappers so "
                             "the thread-safety analysis sees the lock"))
        if in_src and SLEEP_PATTERN.search(line):
            findings.append((rel, i, "sleep",
                             "std::this_thread::sleep_* in production "
                             "code: synchronize with a CondVar wait or a "
                             "latch, never by sleeping"))
        if in_src and rel not in sanctioned["chrono"] \
                and CHRONO_PATTERN.search(line):
            findings.append((rel, i, "chrono",
                             "raw std::chrono outside common/timer.hpp "
                             "and common/trace.*; time through "
                             "hisim::Timer/Stopwatch or a "
                             "trace::TraceSpan"))
    return findings


def lint_tree(root):
    findings = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith("tools/lint_fixtures/"):
                continue  # intentionally-bad self-test inputs
            findings.extend(lint_file(rel, path.read_text(errors="replace")))
    return findings


# --- self-test ---------------------------------------------------------------

# fixture file -> set of rule names it must trigger (empty = must be clean).
FIXTURE_EXPECT = {
    "bad_rng.cpp": {"rng"},
    "bad_simd.cpp": {"simd"},
    "bad_thread.cpp": {"thread"},
    "bad_mutex.cpp": {"mutex"},
    "bad_sleep.cpp": {"sleep"},
    "bad_chrono.cpp": {"chrono"},
    "bad_include.hpp": {"include"},
    "good_clean.cpp": set(),
    "good_commented.cpp": set(),
}


def self_test(script_dir):
    fixtures = script_dir / "lint_fixtures"
    failures = []
    for name, expected in sorted(FIXTURE_EXPECT.items()):
        path = fixtures / name
        if not path.is_file():
            failures.append(f"missing fixture {name}")
            continue
        # Fixtures are linted as if they sat under src/, where every rule
        # family applies.
        found = {rule for _, _, rule, _ in
                 lint_file(f"src/{name}", path.read_text())}
        if found != expected:
            failures.append(
                f"{name}: expected rules {sorted(expected)}, got "
                f"{sorted(found)}")
    # A sanctioned file must not be flagged for its own rule.
    sanctioned_probe = lint_file("src/common/rng.hpp",
                                 "#include <random>\nstd::random_device d;\n")
    if any(rule == "rng" for _, _, rule, _ in sanctioned_probe):
        failures.append("sanctioned file src/common/rng.hpp was flagged")
    wrapper_probe = lint_file("src/common/parallel.hpp",
                              "#include <mutex>\nstd::mutex mu;\n"
                              "std::unique_lock<std::mutex> lk(mu);\n")
    if any(rule == "mutex" for _, _, rule, _ in wrapper_probe):
        failures.append("sanctioned file src/common/parallel.hpp was "
                        "flagged for mutex")
    # The mutex/sleep/chrono rules police src/ only: tests may lock,
    # sleep, and time things directly.
    test_probe = lint_file(
        "tests/test_x.cpp",
        "#include <mutex>\nstd::mutex mu;\n"
        "void f() { std::this_thread::sleep_for(d); }\n"
        "auto t = std::chrono::steady_clock::now();\n")
    if any(rule in ("mutex", "sleep", "chrono")
           for _, _, rule, _ in test_probe):
        failures.append("mutex/sleep/chrono rules leaked outside src/")
    # The clock wrappers themselves are sanctioned for chrono.
    chrono_probe = lint_file(
        "src/common/timer.hpp",
        "#include <chrono>\n"
        "auto t = std::chrono::steady_clock::now();\n")
    if any(rule == "chrono" for _, _, rule, _ in chrono_probe):
        failures.append("sanctioned file src/common/timer.hpp was flagged "
                        "for chrono")
    for f in failures:
        print(f"self-test FAIL: {f}")
    if not failures:
        print(f"self-test OK: {len(FIXTURE_EXPECT)} fixtures")
    return 1 if failures else 0


def main(argv):
    script_dir = Path(__file__).resolve().parent
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test(script_dir)
    root = Path(argv[1]).resolve() if len(argv) > 1 else script_dir.parent
    findings = lint_tree(root)
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"hisim-lint: {len(findings)} finding(s)")
        return 1
    print("hisim-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
