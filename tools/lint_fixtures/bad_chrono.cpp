// Lint fixture: raw std::chrono timing in src/ (outside common/timer.hpp
// and common/trace.*) must trigger the `chrono` rule (and only it) —
// everything else times through hisim::Timer/Stopwatch or a
// trace::TraceSpan so clock choice and unit conversions stay centralized.
#include <chrono>
#include <cstdint>

namespace fixture {

double elapsed_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
