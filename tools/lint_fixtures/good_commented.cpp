// Self-test fixture: restricted tokens inside comments and string
// literals must NOT be flagged — the linter strips both before matching.
//
// Discussion of std::thread, std::random_device, rand(), time(nullptr),
// and _mm256_add_pd in prose is fine.
#include <string>

/* block comment: std::mt19937 gen; __m256d v; #include <immintrin.h> */

std::string describe() {
  return "uses std::thread and _mm256_loadu_pd and time(ms) internally";
}
