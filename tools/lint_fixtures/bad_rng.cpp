// Self-test fixture: every construct here must trip the `rng` rule.
#include <cstdlib>
#include <ctime>
#include <random>

int nondeterministic() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  std::random_device rd;
  std::mt19937 gen;  // unseeded
  return std::rand() + static_cast<int>(rd()) + static_cast<int>(gen());
}
