// Self-test fixture: AVX2 intrinsics outside the dedicated -mavx2 TU
// must trip the `simd` rule.
#include <immintrin.h>

double sum2(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  double out[4];
  _mm256_storeu_pd(out, v);
  return out[0] + out[1] + out[2] + out[3];
}
