// Lint fixture: std::this_thread::sleep_for / sleep_until in src/ must
// trigger the `sleep` rule (and only it) — production code synchronizes
// with a CondVar wait or a latch, never by sleeping. The duration/time
// point come in as template parameters so the fixture stays clean of the
// separate `chrono` rule.
#include <thread>

namespace fixture {

template <class Duration>
void nap(Duration d) {
  std::this_thread::sleep_for(d);
}

template <class TimePoint>
void nap_until(TimePoint t) {
  std::this_thread::sleep_until(t);
}

}  // namespace fixture
