// Lint fixture: std::this_thread::sleep_for / sleep_until in src/ must
// trigger the `sleep` rule (and only it) — production code synchronizes
// with a CondVar wait or a latch, never by sleeping.
#include <chrono>
#include <thread>

namespace fixture {

void nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void nap_until() {
  std::this_thread::sleep_until(std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(10));
}

}  // namespace fixture
