// Lint fixture: raw std:: locking primitives outside src/common/parallel.*
// must trigger the `mutex` rule (and only it) — production code uses the
// capability-annotated hisim::Mutex/MutexLock/CondVar wrappers so Clang's
// thread-safety analysis can see the locking.
#include <condition_variable>
#include <mutex>

namespace fixture {

std::mutex g_mu;
std::condition_variable g_cv;
bool g_ready = false;

void wait_ready() {
  std::unique_lock<std::mutex> lk(g_mu);
  while (!g_ready) g_cv.wait(lk);
}

void set_ready() {
  std::lock_guard<std::mutex> lk(g_mu);
  g_ready = true;
}

}  // namespace fixture
