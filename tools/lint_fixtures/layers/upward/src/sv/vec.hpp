#pragma once
struct Vec { double re, im; };
