// Fixture violation: common (layer 0) must not include sv (layer 2).
#pragma once
#include "sv/vec.hpp"
inline double re(const Vec& v) { return v.re; }
