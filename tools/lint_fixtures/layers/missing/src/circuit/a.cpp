// Fixture violation: the included header does not exist under src/.
#include "circuit/gone.hpp"
int main() { return 0; }
