// Fixture violation: a.hpp -> b.hpp -> a.hpp is an include cycle.
#pragma once
#include "circuit/b.hpp"
