#pragma once
#include "circuit/a.hpp"
