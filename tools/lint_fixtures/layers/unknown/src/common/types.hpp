#pragma once
using Index = unsigned long long;
