// Fixture violation: 'widgets' is not a declared module.
#pragma once
#include "common/types.hpp"
