// Fixture: bottom-layer header, includes nothing.
#pragma once
using Index = unsigned long long;
