// Fixture: partition -> circuit/common are declared downward edges.
#pragma once
#include "circuit/gate.hpp"
#include "common/types.hpp"
struct Part { Gate g; };
