// Fixture: circuit -> common is a declared downward edge.
#pragma once
#include "common/types.hpp"
struct Gate { Index mask; };
