// Fixture: sv -> partition is the declared same-tier edge.
#include "partition/part.hpp"
int apply(const Part& p) { return static_cast<int>(p.g.mask); }
