// Self-test fixture: raw std::thread outside the worker pool / threaded
// backend must trip the `thread` rule.
#include <thread>

void fire_and_forget() {
  std::thread t([] {});
  t.join();
}
