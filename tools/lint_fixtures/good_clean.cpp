// Self-test fixture: idiomatic code the linter must not flag.
#include <cstdint>
#include <vector>

namespace hisim {

std::uint64_t runtime(std::uint64_t x) { return x * 2; }

std::vector<int> threads_of_execution() { return {1, 2, 3}; }

}  // namespace hisim
