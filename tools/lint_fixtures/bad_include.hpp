// Self-test fixture: both include-hygiene violations must trip the
// `include` rule.
#pragma once

#include "../common/types.hpp"

using namespace std;
